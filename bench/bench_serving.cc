// Serving-layer throughput: how many pushes per second an
// api::ShardedMonitor sustains as producer threads and router shards
// scale. This is the bench behind the concurrent-serving claim — one
// api::Monitor serializes every push through a single engine lock, while
// a ShardedMonitor with K shards lets pushes to different shards proceed
// in parallel, so throughput should grow with K until the machine (or the
// shard count) saturates.
//
// Usage:
//   bench_serving [--threads 8] [--instances 200000] [--seed 42]
//                 [--mode hash|rr] [--classifier cs-ptree]
//                 [--detector DDM | --detector none] [--batch 256]
//                 [--router-shards 8 | --sweep 1,2,4,8] [--csv out.csv]
//                 [--json out.json]
//
// In hash mode every row also runs a batch leg: the same instances again
// through FeedBatch in --batch-sized chunks (one shard-lock round-trip
// per chunk×shard instead of per push); BatchX is its speedup over the
// per-push rate of the same row.
//
// With --router-shards K a single configuration runs; the default sweeps
// K over {1, 2, 4, 8} at the given thread count so the scaling curve
// (and the K=1 serialized baseline) prints in one table. The stream is
// materialized up front and every configuration pushes the *same*
// instances, so rows differ only in routing.
//
// Each row also measures the durability path (src/io/): Persist() the
// fully loaded fleet to disk and ShardedMonitor::Open() it back — the
// crash-recovery latency an operator actually waits on — and the on-disk
// state size. --json emits the whole run machine-readable (CI archives
// it as a BENCH_serving.json artifact).

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "io/snapshot_store.h"
#include "io/state_codec.h"
#include "runtime/thread_pool.h"
#include "utils/cli.h"
#include "utils/table.h"

namespace {

using Clock = std::chrono::steady_clock;

struct RunResult {
  double seconds = 0.0;
  uint64_t drifts = 0;
  double batch_seconds = 0.0;    ///< Same pushes via FeedBatch (hash mode).
  double persist_seconds = 0.0;  ///< Persist() of the loaded fleet.
  double open_seconds = 0.0;     ///< ShardedMonitor::Open() of the same.
  uint64_t state_bytes = 0;      ///< Manifest-accounted on-disk size.
};

/// One measured configuration: `threads` producers push the materialized
/// stream (striped by index) through a fresh K-shard monitor.
RunResult RunOnce(const ccd::StreamSchema& schema,
                  const std::vector<ccd::Instance>& data, int threads,
                  int shards, ccd::runtime::RoutingMode mode,
                  const std::string& classifier, const std::string& detector,
                  uint64_t seed, int batch) {
  auto make_monitor = [&] {
    ccd::api::ShardedMonitorBuilder builder;
    builder.Schema(schema)
        .Classifier(classifier)
        .Seed(seed)
        .Shards(shards)
        .Mode(mode);
    if (!detector.empty()) builder.Detector(detector);
    return builder.Build();
  };
  auto monitor = make_monitor();

  // Barrier-started producers (runtime::RunThreads): the measured window
  // contains contention, not thread spawn skew, and a producer throw
  // surfaces as the bench's clean error exit.
  const auto t0 = Clock::now();
  ccd::runtime::RunThreads(threads, [&](int t) {
    // Stride striping: thread t pushes instances t, t+N, t+2N, ... so
    // every thread's keys spread over all shards and contend realistically.
    for (size_t i = static_cast<size_t>(t); i < data.size();
         i += static_cast<size_t>(threads)) {
      if (mode == ccd::runtime::RoutingMode::kHashKey) {
        monitor.Feed(static_cast<uint64_t>(i), data[i]);
      } else {
        monitor.Feed(data[i]);
      }
    }
  });
  RunResult result;
  result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  result.drifts = monitor.Result().drifts;
  if (monitor.position() != data.size()) {
    throw std::logic_error("bench_serving: lost pushes — " +
                           std::to_string(monitor.position()) + " of " +
                           std::to_string(data.size()) + " accounted");
  }

  // Batch leg (hash mode): the same instances through FeedBatch — one
  // shard-lock round-trip per (chunk × shard) instead of per push. Chunks
  // are materialized before the clock starts, so the measured delta is
  // purely call granularity. Round-robin routing has no keyed batch form.
  if (mode == ccd::runtime::RoutingMode::kHashKey && batch > 0) {
    std::vector<std::vector<std::vector<ccd::api::ShardedMonitor::KeyedInstance>>>
        chunks(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      auto& mine = chunks[static_cast<size_t>(t)];
      mine.emplace_back();
      for (size_t i = static_cast<size_t>(t); i < data.size();
           i += static_cast<size_t>(threads)) {
        if (mine.back().size() >= static_cast<size_t>(batch)) {
          mine.emplace_back();
        }
        mine.back().push_back(
            ccd::api::ShardedMonitor::KeyedInstance{static_cast<uint64_t>(i),
                                                    data[i]});
      }
    }
    auto batched = make_monitor();
    const auto b0 = Clock::now();
    ccd::runtime::RunThreads(threads, [&](int t) {
      for (const auto& chunk : chunks[static_cast<size_t>(t)]) {
        batched.FeedBatch(chunk);
      }
    });
    result.batch_seconds =
        std::chrono::duration<double>(Clock::now() - b0).count();
    if (batched.position() != data.size()) {
      throw std::logic_error("bench_serving: batch leg lost pushes — " +
                             std::to_string(batched.position()) + " of " +
                             std::to_string(data.size()) + " accounted");
    }
  }

  // Restore-latency leg: persist the fully loaded fleet, then reopen it —
  // the crash-recovery path. Timed separately so the throughput number
  // stays a pure push measurement.
  const std::string dir =
      "/tmp/ccd-bench-serving-" + std::to_string(::getpid());
  const auto p0 = Clock::now();
  monitor.Persist(dir);
  result.persist_seconds =
      std::chrono::duration<double>(Clock::now() - p0).count();
  const auto o0 = Clock::now();
  auto reopened = ccd::api::ShardedMonitor::Open(dir);
  result.open_seconds =
      std::chrono::duration<double>(Clock::now() - o0).count();
  if (reopened.position() != monitor.position()) {
    throw std::logic_error("bench_serving: reopened fleet lost state — " +
                           std::to_string(reopened.position()) + " of " +
                           std::to_string(monitor.position()) + " restored");
  }
  ccd::io::SnapshotStore store(dir);
  const ccd::io::Manifest manifest =
      ccd::io::DecodeManifest(store.Read(ccd::io::kManifestName));
  for (const auto& f : manifest.shards) result.state_bytes += f.size;
  for (const std::string& name : store.List()) store.Remove(name);
  ::rmdir(dir.c_str());
  return result;
}

/// Escapes nothing fancy — the strings here are registry names and CLI
/// words; this bench's JSON needs no general escaper.
void WriteJson(const std::string& path, const std::string& mode,
               const std::string& classifier, const std::string& detector,
               uint64_t instances, int threads, int batch,
               const std::vector<std::pair<int, RunResult>>& rows) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    throw std::runtime_error("bench_serving: cannot write " + path);
  }
  std::fprintf(out,
               "{\n  \"bench\": \"serving\",\n  \"schema_version\": 1,\n"
               "  \"instances\": %llu,\n"
               "  \"threads\": %d,\n  \"batch\": %d,\n  \"mode\": \"%s\",\n"
               "  \"classifier\": \"%s\",\n  \"detector\": \"%s\",\n"
               "  \"rows\": [\n",
               static_cast<unsigned long long>(instances), threads, batch,
               mode.c_str(), classifier.c_str(),
               detector.empty() ? "none" : detector.c_str());
  for (size_t i = 0; i < rows.size(); ++i) {
    const RunResult& r = rows[i].second;
    const double rate =
        static_cast<double>(instances) / (r.seconds > 0 ? r.seconds : 1);
    const double batch_rate =
        r.batch_seconds > 0 ? static_cast<double>(instances) / r.batch_seconds
                            : 0.0;
    std::fprintf(out,
                 "    {\"shards\": %d, \"seconds\": %.6f, "
                 "\"pushes_per_sec\": %.1f, \"batch_seconds\": %.6f, "
                 "\"batch_pushes_per_sec\": %.1f, \"batch_speedup\": %.3f, "
                 "\"drifts\": %llu, "
                 "\"persist_seconds\": %.6f, \"open_seconds\": %.6f, "
                 "\"state_bytes\": %llu}%s\n",
                 rows[i].first, r.seconds, rate, r.batch_seconds, batch_rate,
                 rate > 0 ? batch_rate / rate : 0.0,
                 static_cast<unsigned long long>(r.drifts), r.persist_seconds,
                 r.open_seconds,
                 static_cast<unsigned long long>(r.state_bytes),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) try {
  ccd::Cli cli(argc, argv);
  const int threads = cli.GetInt("threads", 8);
  const uint64_t instances =
      static_cast<uint64_t>(cli.GetInt("instances", 200000));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  const std::string mode_name = cli.GetString("mode", "hash");
  const int batch = cli.GetInt("batch", 256);
  // The paper's base classifier by default: its per-push cost is realistic
  // for a served model, which is exactly when shard-lock contention at
  // K=1 hurts and the scaling curve is informative.
  std::string classifier = cli.GetString("classifier", "cs-ptree");
  std::string detector = cli.GetString("detector", "DDM");
  if (detector == "none") detector.clear();

  ccd::api::Classifiers().Require(classifier);
  if (!detector.empty()) ccd::api::Detectors().Require(detector);
  ccd::runtime::RoutingMode mode;
  if (mode_name == "hash") {
    mode = ccd::runtime::RoutingMode::kHashKey;
  } else if (mode_name == "rr") {
    mode = ccd::runtime::RoutingMode::kRoundRobin;
  } else {
    throw ccd::api::ApiError("unknown --mode '" + mode_name +
                             "'; expected hash or rr");
  }
  std::vector<int> shard_counts;
  if (cli.Has("router-shards")) {
    shard_counts.push_back(cli.GetInt("router-shards", 8));
  } else {
    for (const std::string& s : ccd::bench::SplitCsv(
             cli.GetString("sweep", "1,2,4,8"))) {
      shard_counts.push_back(std::stoi(s));
    }
  }

  // One materialized stream for every row: rows differ only in routing.
  std::unique_ptr<ccd::InstanceStream> stream = [&] {
    ccd::BuildOptions options;
    options.scale = 1.0;  // max_instances bounds us, not the spec scale.
    options.seed = seed;
    return std::move(
        ccd::BuildStream(*ccd::FindStreamSpec("RBF5"), options).stream);
  }();
  const std::vector<ccd::Instance> data =
      ccd::Take(stream.get(), static_cast<size_t>(instances));

  std::printf(
      "Serving push throughput - %llu instances, %d producer threads, "
      "%s routing, classifier=%s, detector=%s\n\n",
      static_cast<unsigned long long>(data.size()), threads,
      mode_name.c_str(), classifier.c_str(),
      detector.empty() ? "none" : detector.c_str());

  ccd::Table table;
  table.SetHeader({"Shards", "Threads", "Seconds", "Kpush/s", "Speedup",
                   "BatchK/s", "BatchX", "Drifts", "Persist ms", "Open ms",
                   "State KB"});
  double baseline_rate = 0.0;
  std::vector<std::pair<int, RunResult>> rows;
  for (int shards : shard_counts) {
    const RunResult run = RunOnce(stream->schema(), data, threads, shards,
                                  mode, classifier, detector, seed, batch);
    const double rate =
        static_cast<double>(data.size()) / (run.seconds > 0 ? run.seconds : 1);
    if (baseline_rate == 0.0) baseline_rate = rate;
    const double batch_rate =
        run.batch_seconds > 0
            ? static_cast<double>(data.size()) / run.batch_seconds
            : 0.0;
    table.AddRow({std::to_string(shards), std::to_string(threads),
                  ccd::Table::Num(run.seconds, 3),
                  ccd::Table::Num(rate / 1000.0, 1),
                  ccd::Table::Num(rate / baseline_rate, 2) + "x",
                  batch_rate > 0 ? ccd::Table::Num(batch_rate / 1000.0, 1)
                                 : "-",
                  batch_rate > 0
                      ? ccd::Table::Num(batch_rate / rate, 2) + "x"
                      : "-",
                  std::to_string(run.drifts),
                  ccd::Table::Num(run.persist_seconds * 1000.0, 2),
                  ccd::Table::Num(run.open_seconds * 1000.0, 2),
                  ccd::Table::Num(run.state_bytes / 1024.0, 1)});
    rows.emplace_back(shards, run);
  }
  std::printf("%s\n", table.ToText().c_str());

  const std::string csv = cli.GetString("csv", "");
  if (!csv.empty() && table.WriteCsv(csv)) {
    std::printf("wrote %s\n", csv.c_str());
  }
  const std::string json = cli.GetString("json", "");
  if (!json.empty()) {
    WriteJson(json, mode_name, classifier, detector, data.size(), threads,
              batch, rows);
    std::printf("wrote %s\n", json.c_str());
  }
  return 0;
} catch (const ccd::api::ApiError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
} catch (const ccd::CliError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
