// Reproduces Fig. 8 of the paper (Experiment 2): pmAUC of each detector as
// a function of the number of classes affected by *local* concept drift,
// on the 12 artificial benchmarks. Drift is injected starting from the
// smallest minority class, adding classes by increasing size (the paper's
// protocol), so the leftmost points are the hardest.
//
// Usage:
//   bench_fig8 [--scale 0.005] [--seed 42] [--threads N] [--shards K]
//              [--streams RBF5,...]
//              [--detectors ...] [--csv fig8.csv] [--json fig8.json]
//
// The (stream, drifted-class-count, detector) grid runs on api::Suite;
// --threads shards it across workers (0 = all cores); --shards K splits
// each cell's stream into K pipelined handoff blocks (bit-identical
// results; eval/sharded.h).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "utils/cli.h"
#include "utils/table.h"

namespace {

using ccd::bench::SplitCsv;

/// Class counts swept per stream (matching the paper's x-axes: every count
/// for K=5, odd counts for K=20 to bound runtime).
std::vector<int> SweepCounts(int num_classes) {
  std::vector<int> out;
  int step = num_classes > 10 ? 4 : (num_classes > 5 ? 2 : 1);
  for (int c = 1; c <= num_classes; c += step) out.push_back(c);
  if (out.back() != num_classes) out.push_back(num_classes);
  return out;
}

}  // namespace

int main(int argc, char** argv) try {
  ccd::Cli cli(argc, argv);
  double scale = cli.GetDouble("scale", 0.005);
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  std::vector<std::string> detectors =
      SplitCsv(cli.GetString("detectors", "WSTD,RDDM,FHDDM,PerfSim,DDM-OCI,RBM-IM"));
  std::vector<std::string> stream_filter = SplitCsv(cli.GetString("streams", ""));
  ccd::bench::RequireDetectors(detectors);
  ccd::bench::RequireStreams(stream_filter, /*artificial_only=*/true);

  ccd::Table table;
  std::vector<std::string> header = {"Dataset", "classes_with_drift"};
  for (const auto& d : detectors) header.push_back(d);
  table.SetHeader(header);

  // Stream axis: one entry per (stream, drifted-class-count) point, each
  // carrying its own BuildOptions. Rows are rebuilt from the entry list.
  struct Point {
    std::string stream;
    int classes;
  };
  std::vector<Point> points;
  ccd::api::Suite suite;
  suite.Detectors(detectors)
      .Threads(cli.GetInt("threads", 0))
      .Shards(cli.GetInt("shards", 1));
  for (const ccd::StreamSpec& spec : ccd::ArtificialStreamSpecs()) {
    if (!stream_filter.empty()) {
      bool keep = false;
      for (const auto& f : stream_filter) keep |= spec.name == f;
      if (!keep) continue;
    }
    for (int c : SweepCounts(spec.num_classes)) {
      ccd::BuildOptions options;
      options.scale = scale;
      options.seed = seed;
      options.local_drift_classes = c;
      suite.Stream(spec, options, spec.name + "#" + std::to_string(c));
      points.push_back({spec.name, c});
    }
  }
  std::vector<std::string> entry_streams;
  for (const Point& p : points) entry_streams.push_back(p.stream);
  ccd::bench::InstallStreamProgress(suite, entry_streams, detectors.size());
  std::string json = cli.GetString("json", "");
  if (!json.empty()) suite.Sink(std::make_unique<ccd::api::JsonSink>(json));

  ccd::api::SuiteResult res = suite.Run();
  for (size_t p = 0; p < points.size(); ++p) {
    std::vector<std::string> row = {points[p].stream,
                                    std::to_string(points[p].classes)};
    for (size_t d = 0; d < detectors.size(); ++d) {
      const ccd::api::SuiteAggregate& agg =
          res.aggregates[p * detectors.size() + d];
      row.push_back(ccd::Table::Num(100.0 * agg.pmauc.mean()));
    }
    table.AddRow(row);
  }

  std::printf(
      "Fig. 8 - pmAUC vs number of classes affected by local drift\n"
      "(smallest classes drift first; scale=%.4f)\n\n%s\n",
      scale, table.ToText().c_str());
  std::string csv = cli.GetString("csv", "");
  if (!csv.empty() && table.WriteCsv(csv)) std::printf("wrote %s\n", csv.c_str());
  return 0;
} catch (const ccd::api::ApiError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
} catch (const ccd::CliError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
