// Reproduces Table I of the paper: properties of the 24 benchmark streams.
//
// For each registered stream the harness instantiates it at --scale, draws
// the instances and reports the *realized* properties (instances, features,
// classes, measured max/min class ratio, drift type) so the synthetic
// substitutes can be audited against the paper's numbers.
//
// The audit runs on api::Suite with a custom cell runner — no classifier
// or detector is involved, but the grid sharding (--threads, 0 = all
// cores) and deterministic per-cell seeding are shared with the
// experiment benches.
//
// Usage: bench_table1 [--scale 0.02] [--seed 42] [--threads N]
//                     [--shards K] [--csv out.csv]
//
// --shards is accepted for flag symmetry with the experiment benches and
// carried on the cells, but the audit runner draws each stream in one
// pass (there is no prequential evaluation to split).

#include <cstdio>
#include <vector>

#include "api/api.h"
#include "generators/registry.h"
#include "utils/cli.h"
#include "utils/table.h"

int main(int argc, char** argv) try {
  ccd::Cli cli(argc, argv);
  double scale = cli.GetDouble("scale", 0.02);
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));

  ccd::BuildOptions options;
  options.scale = scale;
  options.seed = seed;

  ccd::api::Suite suite;
  suite.Options(options)
      .NoDetector()
      .Threads(cli.GetInt("threads", 0))
      .Shards(cli.GetInt("shards", 1));
  for (const ccd::StreamSpec& spec : ccd::AllStreamSpecs()) suite.Stream(spec);
  // Audit cells: draw the realized stream and count class frequencies —
  // no classifier, no detector, just the generator.
  suite.Runner([](const ccd::api::SuiteCell& cell) {
    ccd::BuiltStream built = ccd::BuildStream(cell.spec, cell.options);
    ccd::PrequentialResult r;
    r.instances = built.length;
    r.class_counts.assign(static_cast<size_t>(cell.spec.num_classes), 0);
    for (uint64_t i = 0; i < built.length; ++i) {
      ccd::Instance inst = built.stream->Next();
      if (inst.label >= 0 && inst.label < cell.spec.num_classes) {
        ++r.class_counts[static_cast<size_t>(inst.label)];
      }
    }
    return r;
  });

  ccd::api::SuiteResult res = suite.Run();

  ccd::Table table;
  table.SetHeader({"Dataset", "Instances", "Features", "Classes", "IR(spec)",
                   "IR(measured)", "Drift", "Events"});
  for (const ccd::api::SuiteCellResult& cell : res.cells) {
    const ccd::StreamSpec& spec = cell.cell.spec;
    uint64_t max_c = 0, min_c = UINT64_MAX;
    for (uint64_t c : cell.result.class_counts) {
      max_c = c > max_c ? c : max_c;
      min_c = c < min_c ? c : min_c;
    }
    double measured_ir =
        min_c > 0 ? static_cast<double>(max_c) / static_cast<double>(min_c)
                  : static_cast<double>(max_c);

    table.AddRow({spec.name, std::to_string(cell.result.instances),
                  std::to_string(spec.num_features),
                  std::to_string(spec.num_classes),
                  ccd::Table::Num(spec.imbalance_ratio),
                  ccd::Table::Num(measured_ir),
                  ccd::DriftTypeName(spec.drift_type),
                  std::to_string(spec.drift_events)});
  }

  std::printf("Table I — benchmark stream properties (scale=%.3f)\n\n%s\n",
              scale, table.ToText().c_str());
  std::printf(
      "Note: the measured IR is the time-average of a *dynamic* imbalance\n"
      "schedule oscillating in [IR/2, IR], so it sits below the spec peak.\n");
  std::string csv = cli.GetString("csv", "");
  if (!csv.empty() && table.WriteCsv(csv)) {
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
} catch (const ccd::api::ApiError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
} catch (const ccd::CliError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
