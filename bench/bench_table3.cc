// Reproduces Table III of the paper (pmAUC and pmGM of the six drift
// detectors on all 24 benchmark streams, plus average ranks and detector
// test/update times) and the derived statistical artifacts:
//   * Fig. 4 / Fig. 5 — Friedman + Bonferroni-Dunn critical-difference
//     diagrams for pmAUC / pmGM,
//   * Fig. 6 / Fig. 7 — Bayesian signed test of RBM-IM vs PerfSim and
//     vs DDM-OCI,
//   * Table II     — the detector parameter grids (--grids).
//
// Usage:
//   bench_table3 [--scale 0.01] [--seed 42] [--threads N] [--shards K]
//                [--repeats R]
//                [--streams RBF5,RBF10]
//                [--detectors WSTD,RDDM,FHDDM,PerfSim,DDM-OCI,RBM-IM]
//                [--csv table3.csv] [--json table3.json] [--grids]
//
// --scale is the stream-length multiplier versus the paper (default 0.01
// keeps the full 24x6 matrix under a few minutes on a laptop; see
// EXPERIMENTS.md for shape stability across scales). The grid runs on
// api::Suite: --threads shards the (stream x detector) cells across
// workers (0 = all cores) and --repeats averages R seeded repetitions per
// cell — both without changing any reported number at the defaults.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "stats/ranking.h"
#include "utils/cli.h"
#include "utils/table.h"

namespace {

using ccd::bench::SplitCsv;

void PrintGrids() {
  std::printf(
      "Table II - detector parameter grids (defaults in brackets)\n"
      "  WSTD     window {25,50[x],75,100}  warn alpha {.01[x],.03,.05,.07}\n"
      "           drift alpha {.0005[x],.001,.003,.005}  max old {1000,2000[x],3000,4000}\n"
      "  RDDM     warn {1.773[x]} drift {2.258[x]} min errors {10,30[x],50,70}\n"
      "           min inst {3000[x],...}  max inst {10000,20000,30000[x],40000}  warn limit {800,1000,1200[x],1400}\n"
      "  FHDDM    window {25,50,75,100[x]}  delta {1e-6[x],1e-5,1e-4,1e-3}\n"
      "  PerfSim  lambda {0.1,0.2[x],0.3,0.4}  min errors {10,30[x],50,70}\n"
      "  DDM-OCI  warn {0.90,0.92,0.95[x],0.98}  drift {0.80,0.85,0.90[x],0.95}  min errors {10,30[x],50,70}\n"
      "  RBM-IM   batch M {25,50[x],75,100}  hidden {0.25V,0.5V[x],0.75V,V}\n"
      "           lr {0.01,0.03,0.05[x],0.07}  CD-k {1[x],2,3,4}\n");
}

}  // namespace

int main(int argc, char** argv) try {
  ccd::Cli cli(argc, argv);
  if (cli.Has("grids")) {
    PrintGrids();
    return 0;
  }
  double scale = cli.GetDouble("scale", 0.01);
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));

  std::vector<std::string> detectors =
      SplitCsv(cli.GetString("detectors", "WSTD,RDDM,FHDDM,PerfSim,DDM-OCI,RBM-IM"));
  std::vector<std::string> stream_filter = SplitCsv(cli.GetString("streams", ""));
  ccd::bench::RequireDetectors(detectors);
  ccd::bench::RequireStreams(stream_filter);

  std::vector<ccd::StreamSpec> streams;
  for (const ccd::StreamSpec& spec : ccd::AllStreamSpecs()) {
    if (stream_filter.empty()) {
      streams.push_back(spec);
    } else {
      for (const auto& f : stream_filter) {
        if (spec.name == f) streams.push_back(spec);
      }
    }
  }

  ccd::Table table;
  std::vector<std::string> header = {"Dataset"};
  for (const auto& d : detectors) header.push_back(d + ":pmAUC");
  for (const auto& d : detectors) header.push_back(d + ":pmGM");
  table.SetHeader(header);

  ccd::BuildOptions options;
  options.scale = scale;
  options.seed = seed;

  const int repeats = std::max(1, cli.GetInt("repeats", 1));
  ccd::api::Suite suite;
  suite.Options(options)
      .Detectors(detectors)
      .Repeats(repeats)
      .Threads(cli.GetInt("threads", 0))
      .Shards(cli.GetInt("shards", 1));
  std::vector<std::string> stream_names;
  for (const ccd::StreamSpec& spec : streams) {
    suite.Stream(spec);
    stream_names.push_back(spec.name);
  }
  ccd::bench::InstallStreamProgress(
      suite, stream_names, detectors.size() * static_cast<size_t>(repeats));
  std::string json = cli.GetString("json", "");
  if (!json.empty()) suite.Sink(std::make_unique<ccd::api::JsonSink>(json));

  ccd::api::SuiteResult res = suite.Run();

  // scores[metric][stream][detector] for the rank / Bayesian analyses.
  // Aggregates arrive in grid order: stream-major, detectors inner.
  std::vector<std::vector<double>> auc_rows, gm_rows;
  std::vector<double> test_seconds(detectors.size(), 0.0);
  for (size_t s = 0; s < streams.size(); ++s) {
    std::vector<std::string> row = {streams[s].name};
    std::vector<double> aucs, gms;
    for (size_t d = 0; d < detectors.size(); ++d) {
      const ccd::api::SuiteAggregate& agg =
          res.aggregates[s * detectors.size() + d];
      aucs.push_back(100.0 * agg.pmauc.mean());
      gms.push_back(100.0 * agg.pmgm.mean());
      test_seconds[d] += agg.detector_seconds.mean();
    }
    for (double v : aucs) row.push_back(ccd::Table::Num(v));
    for (double v : gms) row.push_back(ccd::Table::Num(v));
    table.AddRow(row);
    auc_rows.push_back(aucs);
    gm_rows.push_back(gms);
  }

  // Rank rows (paper's "ranks" line).
  ccd::FriedmanResult fr_auc = ccd::FriedmanTest(auc_rows, true);
  ccd::FriedmanResult fr_gm = ccd::FriedmanTest(gm_rows, true);
  std::vector<std::string> rank_row = {"ranks"};
  for (double r : fr_auc.average_ranks) rank_row.push_back(ccd::Table::Num(r));
  for (double r : fr_gm.average_ranks) rank_row.push_back(ccd::Table::Num(r));
  table.AddRow(rank_row);
  std::vector<std::string> time_row = {"avg test time [s]"};
  for (size_t d = 0; d < detectors.size(); ++d) {
    time_row.push_back(ccd::Table::Num(test_seconds[d] / streams.size(), 3));
  }
  table.AddRow(time_row);

  std::printf("Table III - pmAUC / pmGM per detector (scale=%.4f, seed=%llu)\n\n%s\n",
              scale, static_cast<unsigned long long>(seed),
              table.ToText().c_str());

  // Figs. 4-5: Bonferroni-Dunn critical difference diagrams.
  std::printf("Fig. 4 - Bonferroni-Dunn (pmAUC)\n%s\n",
              ccd::RenderCriticalDifferenceDiagram(detectors, fr_auc).c_str());
  std::printf("Fig. 5 - Bonferroni-Dunn (pmGM)\n%s\n",
              ccd::RenderCriticalDifferenceDiagram(detectors, fr_gm).c_str());

  // Figs. 6-7: Bayesian signed test RBM-IM vs the two skew-insensitive
  // baselines (rope = 1 percentage point, per the paper's plots).
  auto index_of = [&detectors](const std::string& name) -> int {
    for (size_t i = 0; i < detectors.size(); ++i) {
      if (detectors[i] == name) return static_cast<int>(i);
    }
    return -1;
  };
  int i_rbm = index_of("RBM-IM");
  for (const char* rival : {"PerfSim", "DDM-OCI"}) {
    int i_rival = index_of(rival);
    if (i_rbm < 0 || i_rival < 0) continue;
    for (const char* metric : {"pmAUC", "pmGM"}) {
      const auto& rows = std::string(metric) == "pmAUC" ? auc_rows : gm_rows;
      std::vector<double> a, b;
      for (const auto& row : rows) {
        a.push_back(row[static_cast<size_t>(i_rbm)]);
        b.push_back(row[static_cast<size_t>(i_rival)]);
      }
      ccd::BayesianSignedResult bs = ccd::BayesianSignedTest(a, b, 1.0);
      std::printf(
          "Fig. 6/7 - Bayesian signed test RBM-IM vs %s (%s): "
          "P(RBM-IM)=%.3f P(rope)=%.3f P(%s)=%.3f\n",
          rival, metric, bs.p_left, bs.p_rope, rival, bs.p_right);
    }
  }

  std::string csv = cli.GetString("csv", "");
  if (!csv.empty() && table.WriteCsv(csv)) std::printf("wrote %s\n", csv.c_str());
  return 0;
} catch (const ccd::api::ApiError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
} catch (const ccd::CliError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
