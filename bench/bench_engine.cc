// Engine hot-path microbench: single-threaded MonitorEngine throughput
// on the four push paths — Feed, FeedBatch, the Predict/Label serving
// cycle, and the PredictBatch/LabelBatch serving cycle. This is the
// recorded perf trajectory behind the allocation-free hot path: the
// numbers land in BENCH_engine.json (CI artifact), and
// tools/bench_gate.py fails the build when a path regresses past the
// tolerance against the committed baseline
// (bench/baselines/BENCH_engine.json).
//
// Usage:
//   bench_engine [--instances 300000] [--classifier naive-bayes]
//                [--detector none] [--batch 256] [--seed 42]
//                [--json out.json]
//
// The stream is materialized up front; every path pushes the same
// instances, so rows differ only in call granularity. tests/alloc_test.cc
// pins the zero-allocation property itself; this bench records what it
// buys.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/api.h"
#include "bench_util.h"
#include "eval/engine.h"
#include "utils/cli.h"
#include "utils/table.h"

namespace {

using Clock = std::chrono::steady_clock;

/// Version of the JSON layout below; tools/bench_gate.py refuses to
/// compare across versions.
constexpr int kSchemaVersion = 1;

struct PathResult {
  std::string path;
  double seconds = 0.0;
  double per_sec = 0.0;
};

/// Protocol for the measured runs: the monitor defaults (window 1000,
/// sample every 250, warmup 500), timing off.
ccd::PrequentialConfig BenchConfig() {
  ccd::PrequentialConfig config;
  config.metric_window = 1000;
  config.eval_interval = 250;
  config.warmup = 500;
  config.timing = false;
  return config;
}

/// A fresh engine per measured path, so paths never observe each other's
/// training state. Components live in the returned pair's unique_ptrs and
/// must outlive the engine.
struct EngineRig {
  std::unique_ptr<ccd::OnlineClassifier> classifier;
  std::unique_ptr<ccd::DriftDetector> detector;
  std::unique_ptr<ccd::MonitorEngine> engine;
};

EngineRig MakeEngine(const ccd::StreamSchema& schema,
                     const std::string& classifier,
                     const std::string& detector, uint64_t seed) {
  EngineRig rig;
  rig.classifier = ccd::api::Classifiers().Create(classifier, schema, seed, {});
  if (!detector.empty()) {
    rig.detector = ccd::api::Detectors().Create(detector, schema, seed, {});
  }
  rig.engine = std::make_unique<ccd::MonitorEngine>(
      schema, rig.classifier.get(), rig.detector.get(), BenchConfig(),
      ccd::EngineHooks{}, /*pending_capacity=*/4096);
  return rig;
}

template <typename Fn>
PathResult Measure(const std::string& path, size_t instances, Fn&& fn) {
  const auto t0 = Clock::now();
  fn();
  PathResult result;
  result.path = path;
  result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  result.per_sec = static_cast<double>(instances) /
                   (result.seconds > 0 ? result.seconds : 1);
  return result;
}

void WriteJson(const std::string& path, const std::string& classifier,
               const std::string& detector, uint64_t instances, int batch,
               const std::vector<PathResult>& rows) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    throw std::runtime_error("bench_engine: cannot write " + path);
  }
  std::fprintf(out,
               "{\n  \"bench\": \"engine\",\n  \"schema_version\": %d,\n"
               "  \"instances\": %llu,\n  \"batch\": %d,\n"
               "  \"classifier\": \"%s\",\n  \"detector\": \"%s\",\n"
               "  \"rows\": [\n",
               kSchemaVersion, static_cast<unsigned long long>(instances),
               batch, classifier.c_str(),
               detector.empty() ? "none" : detector.c_str());
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"path\": \"%s\", \"seconds\": %.6f, "
                 "\"per_sec\": %.1f}%s\n",
                 rows[i].path.c_str(), rows[i].seconds, rows[i].per_sec,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) try {
  ccd::Cli cli(argc, argv);
  const size_t instances =
      static_cast<size_t>(cli.GetInt("instances", 300000));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  const int batch = cli.GetInt("batch", 256);
  const std::string classifier = cli.GetString("classifier", "naive-bayes");
  std::string detector = cli.GetString("detector", "none");
  if (detector == "none") detector.clear();

  ccd::api::Classifiers().Require(classifier);
  if (!detector.empty()) ccd::api::Detectors().Require(detector);
  if (batch < 1) throw ccd::api::ApiError("--batch must be >= 1");

  std::unique_ptr<ccd::InstanceStream> stream = [&] {
    ccd::BuildOptions options;
    options.scale = 1.0;
    options.seed = seed;
    return std::move(
        ccd::BuildStream(*ccd::FindStreamSpec("RBF5"), options).stream);
  }();
  const ccd::StreamSchema schema = stream->schema();
  const std::vector<ccd::Instance> data = ccd::Take(stream.get(), instances);

  std::printf(
      "Engine hot-path throughput - %llu instances, classifier=%s, "
      "detector=%s, batch=%d\n\n",
      static_cast<unsigned long long>(data.size()), classifier.c_str(),
      detector.empty() ? "none" : detector.c_str(), batch);

  std::vector<PathResult> rows;

  {
    EngineRig rig = MakeEngine(schema, classifier, detector, seed);
    rows.push_back(Measure("feed", data.size(), [&] {
      for (const ccd::Instance& instance : data) rig.engine->Feed(instance);
    }));
  }
  {
    EngineRig rig = MakeEngine(schema, classifier, detector, seed);
    std::vector<ccd::Instance> chunk;
    rows.push_back(Measure("feed_batch", data.size(), [&] {
      for (size_t i = 0; i < data.size(); i += static_cast<size_t>(batch)) {
        const size_t end =
            std::min(data.size(), i + static_cast<size_t>(batch));
        chunk.assign(data.begin() + static_cast<long>(i),
                     data.begin() + static_cast<long>(end));
        rig.engine->FeedBatch(chunk);
      }
    }));
  }
  {
    EngineRig rig = MakeEngine(schema, classifier, detector, seed);
    ccd::MonitorEngine::Ticket ticket;
    rows.push_back(Measure("serve", data.size(), [&] {
      for (const ccd::Instance& instance : data) {
        rig.engine->Predict(instance.features, instance.weight, &ticket);
        rig.engine->Label(ticket.id, instance.label);
      }
    }));
  }
  {
    EngineRig rig = MakeEngine(schema, classifier, detector, seed);
    std::vector<ccd::Instance> chunk;
    std::vector<ccd::MonitorEngine::Ticket> tickets;
    std::vector<ccd::LabelRequest> labels;
    rows.push_back(Measure("serve_batch", data.size(), [&] {
      for (size_t i = 0; i < data.size(); i += static_cast<size_t>(batch)) {
        const size_t end =
            std::min(data.size(), i + static_cast<size_t>(batch));
        chunk.assign(data.begin() + static_cast<long>(i),
                     data.begin() + static_cast<long>(end));
        rig.engine->PredictBatch(chunk, &tickets);
        labels.resize(chunk.size());
        for (size_t j = 0; j < chunk.size(); ++j) {
          labels[j].id = tickets[j].id;
          labels[j].label = chunk[j].label;
        }
        rig.engine->LabelBatch(labels, nullptr);
      }
    }));
  }

  ccd::Table table;
  table.SetHeader({"Path", "Seconds", "Kinst/s"});
  for (const PathResult& row : rows) {
    table.AddRow({row.path, ccd::Table::Num(row.seconds, 3),
                  ccd::Table::Num(row.per_sec / 1000.0, 1)});
  }
  std::printf("%s\n", table.ToText().c_str());

  const std::string json = cli.GetString("json", "");
  if (!json.empty()) {
    WriteJson(json, classifier, detector, data.size(), batch, rows);
    std::printf("wrote %s\n", json.c_str());
  }
  return 0;
} catch (const ccd::api::ApiError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
} catch (const ccd::CliError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
