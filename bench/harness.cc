#include "harness.h"

#include "detectors/adwin.h"
#include "detectors/ddm.h"
#include "detectors/ddm_oci.h"
#include "detectors/eddm.h"
#include "detectors/fhddm.h"
#include "detectors/hddm.h"
#include "detectors/perfsim.h"
#include "detectors/rddm.h"
#include "detectors/ecdd.h"
#include "detectors/page_hinkley.h"
#include "detectors/wstd.h"

namespace ccd {
namespace bench {

const std::vector<std::string>& PaperDetectorNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "WSTD", "RDDM", "FHDDM", "PerfSim", "DDM-OCI", "RBM-IM"};
  return *names;
}

std::unique_ptr<DriftDetector> MakeDetector(const std::string& name,
                                            const StreamSchema& schema,
                                            uint64_t seed) {
  if (name == "WSTD") {
    Wstd::Params p;
    return std::make_unique<Wstd>(p);
  }
  if (name == "RDDM") {
    Rddm::Params p;
    return std::make_unique<Rddm>(p);
  }
  if (name == "FHDDM") {
    Fhddm::Params p;
    return std::make_unique<Fhddm>(p);
  }
  if (name == "DDM") {
    return std::make_unique<Ddm>();
  }
  if (name == "EDDM") {
    return std::make_unique<Eddm>();
  }
  if (name == "ADWIN") {
    return std::make_unique<Adwin>();
  }
  if (name == "HDDM-A") {
    return std::make_unique<HddmA>();
  }
  if (name == "PageHinkley") {
    return std::make_unique<PageHinkley>();
  }
  if (name == "ECDD") {
    return std::make_unique<Ecdd>();
  }
  if (name == "PerfSim") {
    PerfSim::Params p;
    p.num_classes = schema.num_classes;
    return std::make_unique<PerfSim>(p);
  }
  if (name == "DDM-OCI") {
    DdmOci::Params p;
    p.num_classes = schema.num_classes;
    return std::make_unique<DdmOci>(p);
  }
  if (name == "RBM-IM" || name == "RBM-IM-adwin" || name == "RBM-IM-granger" ||
      name == "RBM-IM-nobalance") {
    RbmIm::Params p;
    p.num_features = schema.num_features;
    p.num_classes = schema.num_classes;
    if (name == "RBM-IM-adwin") p.trigger = RbmIm::Trigger::kAdwinOnly;
    if (name == "RBM-IM-granger") p.trigger = RbmIm::Trigger::kGranger;
    if (name == "RBM-IM-nobalance") p.class_balanced = false;
    return std::make_unique<RbmIm>(p, seed);
  }
  return nullptr;
}

std::unique_ptr<OnlineClassifier> MakeBaseClassifier(
    const StreamSchema& schema) {
  CsPerceptronTree::Params p;
  return std::make_unique<CsPerceptronTree>(schema, p);
}

PrequentialResult EvaluateDetectorOnStream(const StreamSpec& spec,
                                           const BuildOptions& options,
                                           const std::string& detector_name) {
  BuiltStream built = BuildStream(spec, options);
  std::unique_ptr<OnlineClassifier> classifier =
      MakeBaseClassifier(built.stream->schema());
  std::unique_ptr<DriftDetector> detector =
      MakeDetector(detector_name, built.stream->schema(), options.seed);

  PrequentialConfig config;
  config.max_instances = built.length;
  config.metric_window = 1000;
  config.eval_interval = 250;
  config.warmup = 500;
  return RunPrequential(built.stream.get(), classifier.get(), detector.get(),
                        config);
}

}  // namespace bench
}  // namespace ccd
