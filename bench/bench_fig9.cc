// Reproduces Fig. 9 of the paper (Experiment 3): pmAUC of each detector as
// the multi-class imbalance ratio sweeps over {50, 100, 200, 300, 400, 500}
// on the 12 artificial benchmarks — the robustness-to-extreme-skew test.
//
// Usage:
//   bench_fig9 [--scale 0.005] [--seed 42] [--threads N] [--shards K]
//              [--streams RBF5,...] [--detectors ...] [--csv fig9.csv]
//              [--json fig9.json]
//
// The (stream, IR, detector) grid runs on api::Suite; --threads shards it
// across workers (0 = all cores) and --shards K additionally splits each
// cell's stream into K pipelined handoff blocks (bit-identical results;
// eval/sharded.h).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "utils/cli.h"
#include "utils/table.h"

namespace {

using ccd::bench::SplitCsv;

}  // namespace

int main(int argc, char** argv) try {
  ccd::Cli cli(argc, argv);
  double scale = cli.GetDouble("scale", 0.005);
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  std::vector<std::string> detectors =
      SplitCsv(cli.GetString("detectors", "WSTD,RDDM,FHDDM,PerfSim,DDM-OCI,RBM-IM"));
  std::vector<std::string> stream_filter = SplitCsv(cli.GetString("streams", ""));
  ccd::bench::RequireDetectors(detectors);
  ccd::bench::RequireStreams(stream_filter, /*artificial_only=*/true);

  const std::vector<double> kIrLevels = {50, 100, 200, 300, 400, 500};

  ccd::Table table;
  std::vector<std::string> header = {"Dataset", "IR"};
  for (const auto& d : detectors) header.push_back(d);
  table.SetHeader(header);

  // Stream axis: one entry per (stream, IR) point with its own options.
  struct Point {
    std::string stream;
    double ir;
  };
  std::vector<Point> points;
  ccd::api::Suite suite;
  suite.Detectors(detectors)
      .Threads(cli.GetInt("threads", 0))
      .Shards(cli.GetInt("shards", 1));
  for (const ccd::StreamSpec& spec : ccd::ArtificialStreamSpecs()) {
    if (!stream_filter.empty()) {
      bool keep = false;
      for (const auto& f : stream_filter) keep |= spec.name == f;
      if (!keep) continue;
    }
    for (double ir : kIrLevels) {
      ccd::BuildOptions options;
      options.scale = scale;
      options.seed = seed;
      options.ir_override = ir;
      suite.Stream(spec, options,
                   spec.name + "@IR" + ccd::Table::Num(ir, 0));
      points.push_back({spec.name, ir});
    }
  }
  std::vector<std::string> entry_streams;
  for (const Point& p : points) entry_streams.push_back(p.stream);
  ccd::bench::InstallStreamProgress(suite, entry_streams, detectors.size());
  std::string json = cli.GetString("json", "");
  if (!json.empty()) suite.Sink(std::make_unique<ccd::api::JsonSink>(json));

  ccd::api::SuiteResult res = suite.Run();
  for (size_t p = 0; p < points.size(); ++p) {
    std::vector<std::string> row = {points[p].stream,
                                    ccd::Table::Num(points[p].ir, 0)};
    for (size_t d = 0; d < detectors.size(); ++d) {
      const ccd::api::SuiteAggregate& agg =
          res.aggregates[p * detectors.size() + d];
      row.push_back(ccd::Table::Num(100.0 * agg.pmauc.mean()));
    }
    table.AddRow(row);
  }

  std::printf(
      "Fig. 9 - pmAUC vs multi-class imbalance ratio (scale=%.4f)\n\n%s\n",
      scale, table.ToText().c_str());
  std::string csv = cli.GetString("csv", "");
  if (!csv.empty() && table.WriteCsv(csv)) std::printf("wrote %s\n", csv.c_str());
  return 0;
} catch (const ccd::api::ApiError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
} catch (const ccd::CliError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
