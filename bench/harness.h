#ifndef CCD_BENCH_HARNESS_H_
#define CCD_BENCH_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "classifiers/cs_perceptron_tree.h"
#include "core/rbm_im.h"
#include "detectors/detector.h"
#include "eval/prequential.h"
#include "generators/registry.h"

namespace ccd {
namespace bench {

/// The six detectors of the paper's experimental study, in Table III
/// column order.
const std::vector<std::string>& PaperDetectorNames();

/// Builds a detector by name ("WSTD", "RDDM", "FHDDM", "PerfSim",
/// "DDM-OCI", "RBM-IM" — plus the extra baselines "DDM", "EDDM", "ADWIN",
/// "HDDM-A") configured for a stream with the given schema. Returns nullptr
/// for unknown names.
std::unique_ptr<DriftDetector> MakeDetector(const std::string& name,
                                            const StreamSchema& schema,
                                            uint64_t seed);

/// The paper's base classifier (Adaptive Cost-Sensitive Perceptron Tree)
/// configured for `schema`.
std::unique_ptr<OnlineClassifier> MakeBaseClassifier(const StreamSchema& schema);

/// One (stream, detector) prequential evaluation. Instantiates the spec
/// with `options`, runs test-then-train with drift-triggered resets and
/// returns the aggregate result.
PrequentialResult EvaluateDetectorOnStream(const StreamSpec& spec,
                                           const BuildOptions& options,
                                           const std::string& detector_name);

}  // namespace bench
}  // namespace ccd

#endif  // CCD_BENCH_HARNESS_H_
