// google-benchmark microbenchmarks for the bottom rows of Table III: the
// per-batch monitoring ("test") and model-update cost of each detector, as
// a function of the number of classes and features. The absolute numbers
// are machine-specific; the paper's *shape* claim is that the statistical
// detectors (WSTD/RDDM/FHDDM) are cheapest, while among the skew-aware
// detectors RBM-IM tests faster than PerfSim / DDM-OCI at high K despite
// being trainable.

#include <benchmark/benchmark.h>

#include <memory>

#include "api/api.h"
#include "stream/stream.h"
#include "utils/rng.h"

namespace {

/// Pre-generates a buffer of (instance, prediction, scores) outcomes so the
/// benchmark loop measures only DriftDetector::Observe.
struct Workload {
  ccd::StreamSchema schema;
  std::vector<ccd::Instance> instances;
  std::vector<int> predictions;
  std::vector<std::vector<double>> scores;

  Workload(int d, int k, size_t n) : schema(d, k, "bench") {
    ccd::Rng rng(99);
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> x(static_cast<size_t>(d));
      for (double& v : x) v = rng.NextDouble();
      int y = rng.UniformInt(0, k - 1);
      instances.emplace_back(std::move(x), y);
      predictions.push_back(rng.Bernoulli(0.7) ? y : rng.UniformInt(0, k - 1));
      std::vector<double> s(static_cast<size_t>(k), 1.0 / k);
      s[static_cast<size_t>(predictions.back())] += 0.5;
      scores.push_back(std::move(s));
    }
  }
};

void DetectorObserve(benchmark::State& state, const std::string& name) {
  int k = static_cast<int>(state.range(0));
  int d = static_cast<int>(state.range(1));
  Workload w(d, k, 4096);
  auto detector = ccd::api::MakeDetector(name, w.schema, 7);
  size_t i = 0;
  for (auto _ : state) {
    detector->Observe(w.instances[i], w.predictions[i], w.scores[i]);
    benchmark::DoNotOptimize(detector->state());
    i = (i + 1) % w.instances.size();
  }
  state.SetItemsProcessed(state.iterations());
}

void RegisterAll() {
  for (const char* name :
       {"WSTD", "RDDM", "FHDDM", "PerfSim", "DDM-OCI", "RBM-IM"}) {
    std::string label = std::string("Observe/") + name;
    auto* b = benchmark::RegisterBenchmark(
        label.c_str(),
        [name](benchmark::State& s) { DetectorObserve(s, name); });
    // (classes, features) pairs matching the artificial benchmark scales.
    b->Args({5, 20})->Args({10, 40})->Args({20, 80});
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
