// Microbenchmarks for the bottom rows of Table III: the per-observation
// monitoring ("test") cost of each detector as a function of the number of
// classes and features. The absolute numbers are machine-specific; the
// paper's *shape* claim is that the statistical detectors (WSTD/RDDM/
// FHDDM) are cheapest, while among the skew-aware detectors RBM-IM tests
// faster than PerfSim / DDM-OCI at high K despite being trainable.
//
// The (workload x detector) grid runs on api::Suite with a custom cell
// runner that replays a pre-generated (instance, prediction, scores)
// buffer through DriftDetector::Observe — so the timed loop contains no
// stream or classifier work. --threads shards the grid; note that timing
// cells in parallel on a loaded machine perturbs the absolute ns/op
// (default is 1 thread for quiet numbers).
//
// Usage: bench_detector_times [--iters 200000] [--threads 1] [--shards K]
// (--shards is accepted for flag symmetry and carried on the cells; the
// timing runner drives Observe() in one loop, so it does not split.)
//                             [--detectors WSTD,...] [--csv times.csv]
//                             [--json times.json]

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/api.h"
#include "bench_util.h"
#include "stream/stream.h"
#include "utils/cli.h"
#include "utils/rng.h"
#include "utils/table.h"

namespace {

/// Pre-generates a buffer of (instance, prediction, scores) outcomes so the
/// timed loop measures only DriftDetector::Observe.
struct Workload {
  ccd::StreamSchema schema;
  std::vector<ccd::Instance> instances;
  std::vector<int> predictions;
  std::vector<std::vector<double>> scores;

  Workload(int d, int k, size_t n, uint64_t seed) : schema(d, k, "bench") {
    ccd::Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> x(static_cast<size_t>(d));
      for (double& v : x) v = rng.NextDouble();
      int y = rng.UniformInt(0, k - 1);
      instances.emplace_back(std::move(x), y);
      predictions.push_back(rng.Bernoulli(0.7) ? y : rng.UniformInt(0, k - 1));
      std::vector<double> s(static_cast<size_t>(k), 1.0 / k);
      s[static_cast<size_t>(predictions.back())] += 0.5;
      scores.push_back(std::move(s));
    }
  }
};

}  // namespace

int main(int argc, char** argv) try {
  ccd::Cli cli(argc, argv);
  const uint64_t iters =
      static_cast<uint64_t>(cli.GetInt("iters", 200000));
  std::vector<std::string> detectors = ccd::bench::SplitCsv(
      cli.GetString("detectors", "WSTD,RDDM,FHDDM,PerfSim,DDM-OCI,RBM-IM"));
  ccd::bench::RequireDetectors(detectors);

  // (classes, features) pairs matching the artificial benchmark scales,
  // encoded as synthetic stream-axis specs so the Suite grid machinery
  // (sharding, deterministic seeding, sinks) applies unchanged.
  ccd::api::Suite suite;
  suite.Threads(cli.GetInt("threads", 1))
      .Shards(cli.GetInt("shards", 1))
      .Detectors(detectors);
  for (auto [k, d] : {std::pair<int, int>{5, 20}, {10, 40}, {20, 80}}) {
    ccd::StreamSpec spec;
    spec.name = "K=" + std::to_string(k) + ",d=" + std::to_string(d);
    spec.num_classes = k;
    spec.num_features = d;
    suite.Stream(spec);
  }
  suite.Seed(7);
  suite.Runner([iters](const ccd::api::SuiteCell& cell) {
    Workload w(cell.spec.num_features, cell.spec.num_classes, 4096,
               /*seed=*/99);
    auto detector = ccd::api::MakeDetector(cell.detector, w.schema,
                                           cell.options.seed,
                                           cell.detector_params);
    ccd::PrequentialResult r;
    r.instances = iters;
    auto t0 = std::chrono::steady_clock::now();
    size_t i = 0;
    for (uint64_t n = 0; n < iters; ++n) {
      detector->Observe(w.instances[i], w.predictions[i], w.scores[i]);
      if (detector->state() == ccd::DetectorState::kDrift) ++r.drifts;
      i = (i + 1) % w.instances.size();
    }
    r.detector_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return r;
  });
  std::string json = cli.GetString("json", "");
  if (!json.empty()) suite.Sink(std::make_unique<ccd::api::JsonSink>(json));

  ccd::api::SuiteResult res = suite.Run();

  ccd::Table table;
  table.SetHeader({"Workload", "Detector", "iters", "ns/op", "Mitems/s"});
  for (const ccd::api::SuiteCellResult& cell : res.cells) {
    double seconds = cell.result.detector_seconds;
    double ns_per_op = seconds / static_cast<double>(iters) * 1e9;
    double mitems = seconds > 0.0
                        ? static_cast<double>(iters) / seconds / 1e6
                        : 0.0;
    table.AddRow({cell.cell.stream_label, cell.cell.detector_label,
                  std::to_string(iters), ccd::Table::Num(ns_per_op, 1),
                  ccd::Table::Num(mitems)});
  }
  std::printf("Detector Observe() cost per workload\n\n%s\n",
              table.ToText().c_str());
  std::string csv = cli.GetString("csv", "");
  if (!csv.empty() && table.WriteCsv(csv)) std::printf("wrote %s\n", csv.c_str());
  return 0;
} catch (const ccd::api::ApiError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
} catch (const ccd::CliError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
