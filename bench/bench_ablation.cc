// Ablation study of the RBM-IM design choices called out in DESIGN.md.
// Not a paper table — it regenerates the evidence behind the paper's
// design arguments:
//   * trigger rule: combined (default) vs z-jump-only vs ADWIN-only vs
//     trend/Granger-only (Sec. V-B decision stage),
//   * skew-insensitive loss: class-balanced on vs off (Eq. 13), evaluated
//     on a high-IR stream where the difference should matter.
//
// Each variant is the same registered "RBM-IM" component with ParamMap
// overrides — the ablation needs no dedicated detector names.
//
// Usage: bench_ablation [--scale 0.01] [--seed 42] [--threads N]
//                       [--shards K]
//                       [--csv ablation.csv] [--json ablation.json]
//
// The (stream, IR, variant) grid runs on api::Suite: each variant is a
// labeled detector-axis entry; --threads shards the cells (0 = all cores).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/api.h"
#include "bench_util.h"
#include "utils/cli.h"
#include "utils/table.h"

int main(int argc, char** argv) try {
  ccd::Cli cli(argc, argv);
  double scale = cli.GetDouble("scale", 0.01);
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));

  struct Variant {
    std::string label;
    ccd::api::ParamMap params;
  };
  const std::vector<Variant> variants = {
      {"RBM-IM", {}},  // combined trigger, class-balanced (default)
      {"RBM-IM-granger", {"trigger=granger"}},  // trend/Granger path only
      {"RBM-IM-adwin", {"trigger=adwin"}},      // per-class ADWIN only
      // Combined trigger, plain (skew-sensitive) loss.
      {"RBM-IM-nobalance", {"class_balanced=false"}},
  };
  const std::vector<std::string> streams = {"RBF5", "RBF10", "RBF20",
                                            "Aggrawal10", "Hyperplane10"};

  ccd::Table table;
  std::vector<std::string> header = {"Dataset", "IR"};
  for (const auto& v : variants) header.push_back(v.label + ":pmAUC");
  for (const auto& v : variants) header.push_back(v.label + ":drifts");
  table.SetHeader(header);

  // Detector axis: the four labeled RBM-IM variants. Stream axis: one
  // entry per (stream, IR) point with its own options.
  struct Point {
    std::string stream;
    double ir;
  };
  std::vector<Point> points;
  ccd::api::Suite suite;
  suite.Threads(cli.GetInt("threads", 0)).Shards(cli.GetInt("shards", 1));
  for (const auto& v : variants) suite.Detector("RBM-IM", v.params, v.label);
  for (const std::string& stream_name : streams) {
    const ccd::StreamSpec* spec = ccd::FindStreamSpec(stream_name);
    if (spec == nullptr) continue;
    for (double ir : {spec->imbalance_ratio, 400.0}) {
      ccd::BuildOptions options;
      options.scale = scale;
      options.seed = seed;
      options.ir_override = ir;
      suite.Stream(*spec, options,
                   stream_name + "@IR" + ccd::Table::Num(ir, 0));
      points.push_back({stream_name, ir});
    }
  }
  std::vector<std::string> entry_streams;
  for (const Point& p : points) entry_streams.push_back(p.stream);
  ccd::bench::InstallStreamProgress(suite, entry_streams, variants.size());
  std::string json = cli.GetString("json", "");
  if (!json.empty()) suite.Sink(std::make_unique<ccd::api::JsonSink>(json));

  ccd::api::SuiteResult res = suite.Run();
  for (size_t p = 0; p < points.size(); ++p) {
    std::vector<std::string> row = {points[p].stream,
                                    ccd::Table::Num(points[p].ir, 0)};
    for (size_t v = 0; v < variants.size(); ++v) {
      const ccd::api::SuiteAggregate& agg =
          res.aggregates[p * variants.size() + v];
      row.push_back(ccd::Table::Num(100.0 * agg.pmauc.mean()));
    }
    for (size_t v = 0; v < variants.size(); ++v) {
      const ccd::api::SuiteAggregate& agg =
          res.aggregates[p * variants.size() + v];
      row.push_back(ccd::Table::Num(agg.drifts.mean(), 0));
    }
    table.AddRow(row);
  }

  std::printf("RBM-IM ablation (scale=%.4f)\n\n%s\n", scale,
              table.ToText().c_str());
  std::string csv = cli.GetString("csv", "");
  if (!csv.empty() && table.WriteCsv(csv)) std::printf("wrote %s\n", csv.c_str());
  return 0;
} catch (const ccd::api::ApiError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
} catch (const ccd::CliError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
