#ifndef CCD_BENCH_BENCH_UTIL_H_
#define CCD_BENCH_BENCH_UTIL_H_

// Shared helpers of the benchmark binaries: CSV flag splitting and eager
// validation of sweep filters, so a typo'd --detectors / --streams value
// aborts with the valid names listed before any evaluation work starts
// (a full-scale sweep is hours; failing on its last cell is not an
// acceptable way to report a typo).

#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/api.h"

namespace ccd {
namespace bench {

inline std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Validates every detector name against the registry; throws ApiError
/// listing the registered detectors on the first unknown name.
inline void RequireDetectors(const std::vector<std::string>& names) {
  for (const std::string& name : names) api::Detectors().Require(name);
}

/// Validates every stream name against the registry — restricted to the
/// artificial benchmarks when `artificial_only` (fig8/fig9 sweep only
/// those, so a real-world name would silently match nothing).
inline void RequireStreams(const std::vector<std::string>& names,
                           bool artificial_only = false) {
  const std::vector<StreamSpec> specs =
      artificial_only ? ArtificialStreamSpecs() : AllStreamSpecs();
  for (const std::string& name : names) {
    bool known = false;
    for (const StreamSpec& s : specs) known = known || s.name == name;
    if (!known) {
      std::string msg = std::string("unknown ") +
                        (artificial_only ? "artificial " : "") + "stream '" +
                        name + "'; this bench sweeps:";
      for (const StreamSpec& s : specs) msg += " " + s.name;
      throw api::ApiError(msg);
    }
  }
}

/// Installs the benches' shared progress reporter on a suite: one
/// "done <stream>" stderr line once every cell belonging to that stream
/// has finished. `stream_of_entry` maps each stream-axis entry index to
/// its parent stream name (several entries may share one stream, e.g. a
/// per-stream option sweep); `cells_per_entry` is how many cells each
/// entry expands to (detector-axis size × repeats).
inline void InstallStreamProgress(api::Suite& suite,
                                  std::vector<std::string> stream_of_entry,
                                  size_t cells_per_entry) {
  auto names = std::make_shared<std::vector<std::string>>(
      std::move(stream_of_entry));
  auto remaining = std::make_shared<std::map<std::string, size_t>>();
  for (const std::string& s : *names) (*remaining)[s] += cells_per_entry;
  suite.OnCellDone([names, remaining](const api::SuiteCell& cell,
                                      const PrequentialResult&) {
    const std::string& s = (*names)[cell.stream_index];
    if (--(*remaining)[s] == 0) {
      std::fprintf(stderr, "done %s\n", s.c_str());
    }
  });
}

}  // namespace bench
}  // namespace ccd

#endif  // CCD_BENCH_BENCH_UTIL_H_
