#ifndef CCD_BENCH_BENCH_UTIL_H_
#define CCD_BENCH_BENCH_UTIL_H_

// Shared helpers of the benchmark binaries: CSV flag splitting and eager
// validation of sweep filters, so a typo'd --detectors / --streams value
// aborts with the valid names listed before any evaluation work starts
// (a full-scale sweep is hours; failing on its last cell is not an
// acceptable way to report a typo).

#include <sstream>
#include <string>
#include <vector>

#include "api/api.h"

namespace ccd {
namespace bench {

inline std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Validates every detector name against the registry; throws ApiError
/// listing the registered detectors on the first unknown name.
inline void RequireDetectors(const std::vector<std::string>& names) {
  for (const std::string& name : names) api::Detectors().Require(name);
}

/// Validates every stream name against the registry — restricted to the
/// artificial benchmarks when `artificial_only` (fig8/fig9 sweep only
/// those, so a real-world name would silently match nothing).
inline void RequireStreams(const std::vector<std::string>& names,
                           bool artificial_only = false) {
  const std::vector<StreamSpec> specs =
      artificial_only ? ArtificialStreamSpecs() : AllStreamSpecs();
  for (const std::string& name : names) {
    bool known = false;
    for (const StreamSpec& s : specs) known = known || s.name == name;
    if (!known) {
      std::string msg = std::string("unknown ") +
                        (artificial_only ? "artificial " : "") + "stream '" +
                        name + "'; this bench sweeps:";
      for (const StreamSpec& s : specs) msg += " " + s.name;
      throw api::ApiError(msg);
    }
  }
}

}  // namespace bench
}  // namespace ccd

#endif  // CCD_BENCH_BENCH_UTIL_H_
