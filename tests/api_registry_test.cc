// Coverage of the public component registry and ParamMap: every
// registered name constructs from defaults, Reset() is idempotent,
// typed overrides round-trip, malformed input and unknown names are
// rejected with messages that spell out the valid alternatives.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "api/api.h"
#include "core/rbm_im.h"
#include "utils/rng.h"

namespace ccd {
namespace {

StreamSchema TestSchema() { return StreamSchema(8, 4, "api-test"); }

Instance RandomInstance(Rng* rng, const StreamSchema& schema) {
  std::vector<double> x(static_cast<size_t>(schema.num_features));
  for (double& v : x) v = rng->NextDouble();
  return Instance(std::move(x), rng->UniformInt(0, schema.num_classes - 1));
}

// --- Registry: construction, Reset idempotence, capability flags.

TEST(ApiRegistryTest, EveryDetectorConstructsFromDefaultParams) {
  StreamSchema schema = TestSchema();
  std::vector<std::string> names = api::Detectors().Names();
  ASSERT_GE(names.size(), 12u);
  for (const std::string& name : names) {
    std::unique_ptr<DriftDetector> det =
        api::MakeDetector(name, schema, /*seed=*/7);
    ASSERT_NE(det, nullptr) << name;
    EXPECT_EQ(det->state(), DetectorState::kStable) << name;

    // Drive a few observations so lazily-sized state gets exercised.
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
      Instance inst = RandomInstance(&rng, schema);
      std::vector<double> scores(static_cast<size_t>(schema.num_classes),
                                 1.0 / schema.num_classes);
      det->Observe(inst, rng.UniformInt(0, schema.num_classes - 1), scores);
    }

    // Reset() must be idempotent: twice in a row lands in the same
    // stable, re-usable state.
    det->Reset();
    EXPECT_EQ(det->state(), DetectorState::kStable) << name;
    det->Reset();
    EXPECT_EQ(det->state(), DetectorState::kStable) << name;
  }
}

TEST(ApiRegistryTest, EveryClassifierConstructsFromDefaultParams) {
  StreamSchema schema = TestSchema();
  std::vector<std::string> names = api::Classifiers().Names();
  ASSERT_GE(names.size(), 3u);
  for (const std::string& name : names) {
    std::unique_ptr<OnlineClassifier> clf = api::MakeClassifier(name, schema);
    ASSERT_NE(clf, nullptr) << name;

    Rng rng(5);
    for (int i = 0; i < 100; ++i) clf->Train(RandomInstance(&rng, schema));
    std::vector<double> scores = clf->PredictScores(RandomInstance(&rng, schema));
    ASSERT_EQ(scores.size(), static_cast<size_t>(schema.num_classes)) << name;
    double sum = std::accumulate(scores.begin(), scores.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-6) << name;

    clf->Reset();
    clf->Reset();  // Idempotent.
    std::vector<double> fresh = clf->PredictScores(RandomInstance(&rng, schema));
    EXPECT_EQ(fresh.size(), static_cast<size_t>(schema.num_classes)) << name;
  }
}

TEST(ApiRegistryTest, CapabilityFlagsMatchThePaper) {
  const api::ComponentInfo* rbm = api::Detectors().Find("RBM-IM");
  ASSERT_NE(rbm, nullptr);
  EXPECT_TRUE(rbm->has(api::kTrainable));
  EXPECT_TRUE(rbm->has(api::kExplainsLocalDrift));
  EXPECT_TRUE(rbm->has(api::kNeedsSchema));
  EXPECT_FALSE(rbm->description.empty());

  // The per-class monitors explain local drift; the error-rate detectors
  // cannot (the paper's central distinction).
  for (const char* name : {"PerfSim", "DDM-OCI"}) {
    const api::ComponentInfo* info = api::Detectors().Find(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_TRUE(info->has(api::kExplainsLocalDrift)) << name;
    EXPECT_FALSE(info->has(api::kTrainable)) << name;
  }
  for (const char* name : {"WSTD", "RDDM", "FHDDM", "DDM", "ADWIN"}) {
    const api::ComponentInfo* info = api::Detectors().Find(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_FALSE(info->has(api::kExplainsLocalDrift)) << name;
  }
}

// --- Unknown-name errors (regression for bench::MakeDetector's silent
// --- nullptr): the message must name the offender and list all options.

TEST(ApiRegistryTest, UnknownDetectorErrorListsRegisteredNames) {
  try {
    api::MakeDetector("NoSuchDetector", TestSchema(), 1);
    FAIL() << "expected ApiError";
  } catch (const api::ApiError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("NoSuchDetector"), std::string::npos) << msg;
    for (const std::string& name : api::Detectors().Names()) {
      EXPECT_NE(msg.find(name), std::string::npos) << "missing " << name;
    }
  }
}

TEST(ApiRegistryTest, RequireValidatesWithoutConstructing) {
  EXPECT_NO_THROW(api::Detectors().Require("RBM-IM"));
  EXPECT_NO_THROW(api::Classifiers().Require("cs-ptree"));
  try {
    api::Detectors().Require("RDMM");
    FAIL() << "expected ApiError";
  } catch (const api::ApiError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("RDMM"), std::string::npos);
    EXPECT_NE(msg.find("RDDM"), std::string::npos) << msg;
  }
}

TEST(ApiRegistryTest, UnknownClassifierErrorListsRegisteredNames) {
  try {
    api::MakeClassifier("hoeffding-forest", TestSchema());
    FAIL() << "expected ApiError";
  } catch (const api::ApiError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("hoeffding-forest"), std::string::npos);
    EXPECT_NE(msg.find("cs-ptree"), std::string::npos) << msg;
    EXPECT_NE(msg.find("naive-bayes"), std::string::npos) << msg;
  }
}

TEST(ApiRegistryTest, UnknownParameterKeyIsRejectedWithComponentName) {
  try {
    api::MakeDetector("FHDDM", TestSchema(), 1, {"windw_size=25"});
    FAIL() << "expected ApiError";
  } catch (const api::ApiError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("windw_size"), std::string::npos) << msg;
    EXPECT_NE(msg.find("FHDDM"), std::string::npos) << msg;
  }
}

// --- ParamMap: typed round-trips and malformed input.

TEST(ParamMapTest, TypedOverridesRoundTrip) {
  api::ParamMap p =
      api::ParamMap::Parse("batch_size=75 hidden_ratio=0.25 "
                           "class_balanced=false trigger=granger");
  EXPECT_EQ(p.GetInt("batch_size", 50), 75);
  EXPECT_DOUBLE_EQ(p.GetDouble("hidden_ratio", 0.5), 0.25);
  EXPECT_FALSE(p.GetBool("class_balanced", true));
  EXPECT_EQ(p.GetEnum("trigger", RbmIm::Trigger::kCombined,
                      {{"combined", RbmIm::Trigger::kCombined},
                       {"granger", RbmIm::Trigger::kGranger}}),
            RbmIm::Trigger::kGranger);
  EXPECT_TRUE(p.UnusedKeys().empty());

  // ToString() re-parses to an equivalent map.
  api::ParamMap round = api::ParamMap::Parse(p.ToString());
  EXPECT_EQ(round.ToString(), p.ToString());
  EXPECT_EQ(round.GetInt("batch_size", 0), 75);
}

TEST(ParamMapTest, DefaultsApplyWhenKeyAbsent) {
  api::ParamMap p{"a=1"};
  EXPECT_EQ(p.GetInt("missing", 42), 42);
  EXPECT_DOUBLE_EQ(p.GetDouble("missing", 2.5), 2.5);
  EXPECT_TRUE(p.GetBool("missing", true));
  EXPECT_EQ(p.GetString("missing", "x"), "x");
}

TEST(ParamMapTest, MalformedEntriesAreRejected) {
  EXPECT_THROW(api::ParamMap{"noequals"}, api::ApiError);
  EXPECT_THROW(api::ParamMap{"=value"}, api::ApiError);
  EXPECT_THROW(api::ParamMap{"key="}, api::ApiError);
  EXPECT_THROW((api::ParamMap{"a=1", "a=2"}), api::ApiError);
  EXPECT_THROW(api::ParamMap::Parse("ok=1 broken"), api::ApiError);
}

TEST(ParamMapTest, TypeMismatchesAreRejected) {
  api::ParamMap p{"n=abc", "x=1.5zzz", "b=maybe"};
  EXPECT_THROW(p.GetInt("n", 0), api::ApiError);
  EXPECT_THROW(p.GetDouble("x", 0.0), api::ApiError);
  EXPECT_THROW(p.GetBool("b", false), api::ApiError);
}

TEST(ParamMapTest, OutOfRangeValuesAreRejectedNotTruncated) {
  api::ParamMap p{"n=4294967296", "m=-99999999999999999999", "x=1e999"};
  EXPECT_THROW(p.GetInt("n", 0), api::ApiError);
  EXPECT_THROW(p.GetInt("m", 0), api::ApiError);
  EXPECT_THROW(p.GetDouble("x", 0.0), api::ApiError);
}

TEST(ApiRegistryTest, ReusedParamMapIsRevalidatedPerComponent) {
  // A key consumed by one factory must not vouch for the next component:
  // batch_size is an RBM-IM knob that FHDDM does not have.
  StreamSchema schema = TestSchema();
  api::ParamMap shared{"batch_size=50"};
  EXPECT_NO_THROW(api::MakeDetector("RBM-IM", schema, 1, shared));
  EXPECT_THROW(api::MakeDetector("FHDDM", schema, 1, shared), api::ApiError);
}

TEST(ParamMapTest, InvalidEnumTokenListsChoices) {
  api::ParamMap p{"trigger=bogus"};
  try {
    p.GetEnum("trigger", RbmIm::Trigger::kCombined,
              {{"combined", RbmIm::Trigger::kCombined},
               {"granger", RbmIm::Trigger::kGranger}});
    FAIL() << "expected ApiError";
  } catch (const api::ApiError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("bogus"), std::string::npos);
    EXPECT_NE(msg.find("combined"), std::string::npos) << msg;
    EXPECT_NE(msg.find("granger"), std::string::npos) << msg;
  }
}

// --- End to end: an override string reaches the component's Params.

TEST(ApiRegistryTest, ParamOverridesReachTheComponent) {
  StreamSchema schema = TestSchema();
  std::unique_ptr<DriftDetector> det = api::MakeDetector(
      "RBM-IM", schema, 3, {"hidden_ratio=1.0", "batch_size=25"});
  auto* rbm_im = dynamic_cast<RbmIm*>(det.get());
  ASSERT_NE(rbm_im, nullptr);
  // hidden_ratio=1.0 sizes the hidden layer to the visible layer.
  EXPECT_EQ(rbm_im->rbm().params().hidden, schema.num_features);
}

TEST(ApiRegistryTest, RbmImTriggerVariantsConstruct) {
  StreamSchema schema = TestSchema();
  for (const char* trigger : {"combined", "zscore", "adwin", "granger"}) {
    std::unique_ptr<DriftDetector> det = api::MakeDetector(
        "RBM-IM", schema, 3, {std::string("trigger=") + trigger});
    EXPECT_NE(det, nullptr) << trigger;
  }
}

}  // namespace
}  // namespace ccd
