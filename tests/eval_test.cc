#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <memory>
#include <stdexcept>

#include "classifiers/naive_bayes.h"
#include "detectors/ddm.h"
#include "detectors/fhddm.h"
#include "eval/confusion.h"
#include "eval/metrics.h"
#include "eval/prequential.h"
#include "eval/self_tuning.h"
#include "generators/drifting_stream.h"
#include "generators/rbf.h"
#include "testing_util.h"
#include "utils/rng.h"

namespace ccd {
namespace {

// --------------------------------------------------------------- confusion
TEST(ConfusionMatrixTest, AccuracyRecallKappa) {
  ConfusionMatrix cm(2);
  // 40 TP0, 10 0->1, 5 1->0, 45 TP1.
  for (int i = 0; i < 40; ++i) cm.Add(0, 0);
  for (int i = 0; i < 10; ++i) cm.Add(0, 1);
  for (int i = 0; i < 5; ++i) cm.Add(1, 0);
  for (int i = 0; i < 45; ++i) cm.Add(1, 1);
  EXPECT_NEAR(cm.Accuracy(), 0.85, 1e-12);
  EXPECT_NEAR(cm.Recall(0), 0.8, 1e-12);
  EXPECT_NEAR(cm.Recall(1), 0.9, 1e-12);
  EXPECT_NEAR(cm.GMean(), std::sqrt(0.8 * 0.9), 1e-12);
  // Kappa: po=0.85, pe=0.5*0.45+0.5*0.55=0.5 -> (0.85-0.5)/0.5=0.7.
  EXPECT_NEAR(cm.Kappa(), 0.7, 1e-12);
}

TEST(ConfusionMatrixTest, RemoveSupportsSlidingWindows) {
  ConfusionMatrix cm(2);
  cm.Add(0, 0);
  cm.Add(1, 0);
  cm.Remove(1, 0);
  EXPECT_NEAR(cm.Accuracy(), 1.0, 1e-12);
  EXPECT_NEAR(cm.total(), 1.0, 1e-12);
}

TEST(ConfusionMatrixTest, GMeanZeroWhenClassFullyMissed) {
  ConfusionMatrix cm(2);
  for (int i = 0; i < 10; ++i) cm.Add(0, 0);
  for (int i = 0; i < 10; ++i) cm.Add(1, 0);  // Class 1 never predicted.
  EXPECT_DOUBLE_EQ(cm.GMean(), 0.0);
}

TEST(ConfusionMatrixTest, GMeanIgnoresAbsentClasses) {
  ConfusionMatrix cm(3);
  for (int i = 0; i < 10; ++i) cm.Add(0, 0);
  for (int i = 0; i < 10; ++i) cm.Add(1, 1);
  // Class 2 never appears in the window: ignored, not zeroed.
  EXPECT_NEAR(cm.GMean(), 1.0, 1e-12);
}

TEST(ConfusionMatrixTest, SmoothedGMeanStaysInformative) {
  ConfusionMatrix cm(3);
  for (int i = 0; i < 100; ++i) cm.Add(0, 0);
  for (int i = 0; i < 100; ++i) cm.Add(1, 1);
  cm.Add(2, 0);  // One missed rare-class instance: raw G-mean collapses.
  EXPECT_DOUBLE_EQ(cm.GMean(), 0.0);
  EXPECT_GT(cm.GMeanSmoothed(), 0.4);
  EXPECT_LT(cm.GMeanSmoothed(), 1.0);
}

// ------------------------------------------------------------------- AUC
TEST(BinaryAucTest, PerfectSeparation) {
  EXPECT_NEAR(BinaryAuc({0.9, 0.8, 0.7}, {0.3, 0.2, 0.1}), 1.0, 1e-12);
}

TEST(BinaryAucTest, RandomScoresGiveHalf) {
  Rng rng(3);
  std::vector<double> pos, neg;
  for (int i = 0; i < 3000; ++i) {
    pos.push_back(rng.NextDouble());
    neg.push_back(rng.NextDouble());
  }
  EXPECT_NEAR(BinaryAuc(pos, neg), 0.5, 0.03);
}

TEST(BinaryAucTest, TiesGetMidrankCredit) {
  // All scores equal: AUC must be exactly 0.5.
  EXPECT_NEAR(BinaryAuc({0.5, 0.5}, {0.5, 0.5}), 0.5, 1e-12);
}

TEST(BinaryAucTest, EmptySideReturnsHalf) {
  EXPECT_DOUBLE_EQ(BinaryAuc({}, {0.1}), 0.5);
  EXPECT_DOUBLE_EQ(BinaryAuc({0.9}, {}), 0.5);
}

// ---------------------------------------------------------- windowed metrics
TEST(WindowedMetricsTest, PmAucPerfectScorer) {
  WindowedMetrics m(3, 1000);
  Rng rng(3);
  for (int i = 0; i < 600; ++i) {
    int y = rng.UniformInt(0, 2);
    std::vector<double> scores(3, 0.05);
    scores[static_cast<size_t>(y)] = 0.9;
    m.Add(y, y, scores);
  }
  EXPECT_NEAR(m.PmAuc(), 1.0, 1e-9);
  EXPECT_NEAR(m.PmGMean(), 1.0, 0.02);  // Laplace smoothing: slightly < 1.
}

TEST(WindowedMetricsTest, PmAucRandomScorerNearHalf) {
  WindowedMetrics m(4, 2000);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    int y = rng.UniformInt(0, 3);
    std::vector<double> scores = {rng.NextDouble(), rng.NextDouble(),
                                  rng.NextDouble(), rng.NextDouble()};
    double total = scores[0] + scores[1] + scores[2] + scores[3];
    for (double& s : scores) s /= total;
    int pred = rng.UniformInt(0, 3);
    m.Add(y, pred, scores);
  }
  EXPECT_NEAR(m.PmAuc(), 0.5, 0.05);
}

TEST(WindowedMetricsTest, WindowEviction) {
  WindowedMetrics m(2, 100);
  // First 100: all wrong; next 100: all right. Window holds only the good.
  for (int i = 0; i < 100; ++i) m.Add(0, 1, {0.1, 0.9});
  for (int i = 0; i < 100; ++i) m.Add(0, 0, {0.9, 0.1});
  EXPECT_EQ(m.size(), 100u);
  EXPECT_NEAR(m.Accuracy(), 1.0, 1e-12);
}

TEST(WindowedMetricsTest, ShortOrEmptyScoreVectorsAreMissingSupport) {
  // Regression: PmAuc used to index scores[class] unguarded, so a
  // classifier returning fewer than num_classes scores (or none at all)
  // read out of bounds. Missing support must count as zero.
  WindowedMetrics m(3, 100);
  for (int i = 0; i < 10; ++i) {
    m.Add(0, 0, {0.9});              // Support for class 0 only.
    m.Add(1, 1, {});                 // No scores at all.
    m.Add(2, 2, {0.1, 0.2, 0.7});    // Full-width scores.
  }
  double v = m.PmAuc();
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 1.0);
  // Pair (0,1): class-0 entries score 0.9 vs 0 -> ratio 1; class-1
  // entries have no support on either side -> ratio 0.5. Perfect order.
  WindowedMetrics pair01(2, 100);
  for (int i = 0; i < 5; ++i) {
    pair01.Add(0, 0, {0.9});
    pair01.Add(1, 1, {});
  }
  EXPECT_NEAR(pair01.PmAuc(), 1.0, 1e-12);
}

TEST(WindowedMetricsTest, PmAucSkipsAbsentClassPairs) {
  WindowedMetrics m(5, 100);
  // Only classes 0 and 1 appear: the metric is the single pairwise AUC.
  for (int i = 0; i < 50; ++i) {
    m.Add(0, 0, {0.8, 0.05, 0.05, 0.05, 0.05});
    m.Add(1, 1, {0.05, 0.8, 0.05, 0.05, 0.05});
  }
  EXPECT_NEAR(m.PmAuc(), 1.0, 1e-9);
}

// ------------------------------------------- windowed-metrics differential
//
// The production WindowedMetrics keeps a slot ring plus per-class index
// rings so eviction and PmAuc bucketing are incremental (no O(window x
// classes) re-bucketing per evaluation tick, no allocation per push).
// This is the pre-rewrite deque implementation, kept verbatim as the
// executable spec: push-then-evict, re-bucket the whole window on every
// PmAuc() call. Both walk entries in insertion order and midrank ties,
// so every metric must match the ring implementation bit for bit.
class DequeWindowedMetricsOracle {
 public:
  DequeWindowedMetricsOracle(int num_classes, int window)
      : num_classes_(num_classes), window_(window), confusion_(num_classes) {}

  void Add(int truth, int predicted, const std::vector<double>& scores) {
    entries_.push_back({truth, predicted, scores});
    confusion_.Add(truth, predicted);
    if (static_cast<int>(entries_.size()) > window_) {
      const WindowedMetrics::Entry& old = entries_.front();
      confusion_.Remove(old.truth, old.predicted);
      entries_.pop_front();
    }
  }

  double PmAuc() const {
    std::vector<std::vector<const WindowedMetrics::Entry*>> by_class(
        static_cast<size_t>(num_classes_));
    for (const WindowedMetrics::Entry& e : entries_) {
      if (e.truth >= 0 && e.truth < num_classes_) {
        by_class[static_cast<size_t>(e.truth)].push_back(&e);
      }
    }
    double auc_sum = 0.0;
    int pairs = 0;
    for (int i = 0; i < num_classes_; ++i) {
      if (by_class[static_cast<size_t>(i)].empty()) continue;
      for (int j = i + 1; j < num_classes_; ++j) {
        if (by_class[static_cast<size_t>(j)].empty()) continue;
        std::vector<double> pos, neg;
        auto support = [](const WindowedMetrics::Entry* e, int c) {
          return static_cast<size_t>(c) < e->scores.size()
                     ? e->scores[static_cast<size_t>(c)]
                     : 0.0;
        };
        auto score_ratio = [&](const WindowedMetrics::Entry* e) {
          double si = support(e, i);
          double sj = support(e, j);
          double denom = si + sj;
          return denom > 0.0 ? si / denom : 0.5;
        };
        for (const WindowedMetrics::Entry* e :
             by_class[static_cast<size_t>(i)]) {
          pos.push_back(score_ratio(e));
        }
        for (const WindowedMetrics::Entry* e :
             by_class[static_cast<size_t>(j)]) {
          neg.push_back(score_ratio(e));
        }
        auc_sum += BinaryAuc(pos, neg);
        ++pairs;
      }
    }
    return pairs > 0 ? auc_sum / pairs : 0.5;
  }

  double PmGMean() const { return confusion_.GMeanSmoothed(); }
  double Accuracy() const { return confusion_.Accuracy(); }
  double Kappa() const { return confusion_.Kappa(); }

  std::vector<WindowedMetrics::Entry> Window() const {
    return {entries_.begin(), entries_.end()};
  }

 private:
  int num_classes_;
  int window_;
  std::deque<WindowedMetrics::Entry> entries_;
  ConfusionMatrix confusion_;
};

/// Drives the ring implementation and the deque oracle with an identical
/// outcome sequence from a real classifier on a real drifting stream,
/// comparing every metric (and periodically the full window contents)
/// for exact equality at every step.
void RunMetricsDifferential(int num_classes, int window, uint64_t seed,
                            int steps) {
  auto stream = test_util::MakeRbfDriftStream(
      static_cast<uint64_t>(steps) / 2, seed);
  GaussianNaiveBayes classifier(stream->schema());
  WindowedMetrics ring(num_classes, window);
  DequeWindowedMetricsOracle oracle(num_classes, window);
  Rng rng(seed ^ 0xabcd);
  std::vector<double> scores;
  for (int i = 0; i < steps; ++i) {
    Instance x = stream->Next();
    classifier.PredictScoresInto(x, scores);
    int predicted = 0;
    for (size_t c = 1; c < scores.size(); ++c) {
      if (scores[c] > scores[predicted]) predicted = static_cast<int>(c);
    }
    classifier.Train(x);
    // Adversarial inputs ride along: occasional short/empty score vectors
    // (a classifier scoring only seen classes) and out-of-range labels.
    std::vector<double> pushed = scores;
    if (i % 17 == 0) pushed.resize(pushed.size() / 2);
    if (i % 31 == 0) pushed.clear();
    int truth = (i % 41 == 0) ? -1 : x.label;
    ring.Add(truth, predicted, pushed);
    oracle.Add(truth, predicted, pushed);

    ASSERT_EQ(ring.Accuracy(), oracle.Accuracy()) << "step " << i;
    ASSERT_EQ(ring.Kappa(), oracle.Kappa()) << "step " << i;
    ASSERT_EQ(ring.PmGMean(), oracle.PmGMean()) << "step " << i;
    if (i % 50 == 0 || i + 1 == steps) {
      ASSERT_EQ(ring.PmAuc(), oracle.PmAuc()) << "step " << i;
      std::vector<WindowedMetrics::Entry> ring_window;
      ring.CopyWindow(&ring_window);
      ASSERT_EQ(ring_window, oracle.Window()) << "step " << i;
    }
  }
}

TEST(WindowedMetricsDifferentialTest, MatchesDequeOracleAcrossGrid) {
  // The suite-grid shape: window sizes from degenerate to larger than the
  // run, crossed with seeds. The stream is 3-class / 10:1 imbalanced, so
  // minority-class buckets stay small and eviction crosses class buckets.
  for (int window : {1, 7, 64, 256, 5000}) {
    for (uint64_t seed : {11ull, 29ull}) {
      SCOPED_TRACE("window=" + std::to_string(window) +
                   " seed=" + std::to_string(seed));
      RunMetricsDifferential(3, window, seed, 600);
    }
  }
}

TEST(WindowedMetricsDifferentialTest, DegenerateZeroWindowMatchesOracle) {
  // window=0: the ring keeps nothing; the oracle pushes then immediately
  // evicts. Confusion-derived metrics must agree (all zero-ish), and
  // PmAuc falls back to 0.5 on both.
  WindowedMetrics ring(3, 0);
  DequeWindowedMetricsOracle oracle(3, 0);
  Rng rng(7);
  for (int i = 0; i < 64; ++i) {
    int truth = rng.UniformInt(0, 2);
    int predicted = rng.UniformInt(0, 2);
    std::vector<double> scores = {rng.NextDouble(), rng.NextDouble(),
                                  rng.NextDouble()};
    ring.Add(truth, predicted, scores);
    oracle.Add(truth, predicted, scores);
    ASSERT_EQ(ring.Accuracy(), oracle.Accuracy()) << "step " << i;
    ASSERT_EQ(ring.PmAuc(), oracle.PmAuc()) << "step " << i;
    ASSERT_EQ(ring.size(), 0u);
  }
}

// --------------------------------------------------------------- prequential
using test_util::CountingStubClassifier;
using test_util::ScorelessClassifier;

std::unique_ptr<DriftingClassStream> MakeDriftStream(uint64_t drift_at,
                                                     uint64_t seed) {
  return test_util::MakeRbfDriftStream(drift_at, seed);
}

/// Scripted detector that fires at a fixed Observe() count and *latches*:
/// the drift flag stays raised until the harness reads state(). Models
/// consumer-cleared detectors, which the warmup branch used to starve —
/// the warmup alarm then leaked into the first measured instance.
class LatchingScriptedDetector : public DriftDetector {
 public:
  explicit LatchingScriptedDetector(uint64_t fire_at) : fire_at_(fire_at) {}
  void Observe(const Instance&, int, const std::vector<double>&) override {
    if (++observed_ == fire_at_) latched_ = true;
  }
  DetectorState state() const override {
    if (latched_) {
      latched_ = false;  // Consume-on-read.
      return DetectorState::kDrift;
    }
    return DetectorState::kStable;
  }
  void Reset() override { latched_ = false; }
  std::string name() const override { return "latching-scripted"; }

 private:
  uint64_t fire_at_;
  uint64_t observed_ = 0;
  mutable bool latched_ = false;
};

TEST(PrequentialTest, ProducesSaneMetricsWithoutDetector) {
  auto stream = MakeDriftStream(1 << 30, 7);  // Effectively no drift.
  GaussianNaiveBayes clf(stream->schema());
  PrequentialConfig cfg;
  cfg.max_instances = 8000;
  cfg.warmup = 200;
  PrequentialResult r = RunPrequential(stream.get(), &clf, nullptr, cfg);
  EXPECT_EQ(r.instances, 8000u);
  EXPECT_GT(r.mean_pmauc, 0.8);  // RBF concepts are learnable.
  EXPECT_GT(r.mean_pmgm, 0.5);
  EXPECT_EQ(r.drifts, 0u);
  EXPECT_FALSE(r.pmauc_series.empty());
}

TEST(PrequentialTest, DetectorResetAidsRecovery) {
  // With a real drift, resetting on detection should not hurt and the
  // detector should record drift positions after the true change point.
  auto s1 = MakeDriftStream(5000, 7);
  auto s2 = MakeDriftStream(5000, 7);
  GaussianNaiveBayes c1(s1->schema()), c2(s2->schema());
  Ddm ddm;
  PrequentialConfig cfg;
  cfg.max_instances = 10000;
  cfg.warmup = 200;
  PrequentialResult with_det = RunPrequential(s1.get(), &c1, &ddm, cfg);
  PrequentialResult without = RunPrequential(s2.get(), &c2, nullptr, cfg);
  EXPECT_EQ(without.drifts, 0u);
  // DDM on a real jump: at least one detection lands after the true change
  // point (early spurious alarms from young statistics are tolerated).
  if (with_det.drifts > 0) {
    bool any_after = false;
    for (uint64_t pos : with_det.drift_positions) any_after |= pos >= 4500;
    EXPECT_TRUE(any_after);
  }
  // Resetting on detection must not wreck the pipeline.
  EXPECT_GT(with_det.mean_pmauc, without.mean_pmauc - 0.15);
}

TEST(PrequentialTest, WarmupExcludedFromMetrics) {
  auto stream = MakeDriftStream(1 << 30, 9);
  GaussianNaiveBayes clf(stream->schema());
  PrequentialConfig cfg;
  cfg.max_instances = 3000;
  cfg.warmup = 2900;
  cfg.eval_interval = 10;
  PrequentialResult r = RunPrequential(stream.get(), &clf, nullptr, cfg);
  // Only ~100 post-warmup instances: few samples, all sane.
  for (const auto& [pos, v] : r.pmauc_series) {
    EXPECT_GE(pos, 2900u);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(PrequentialTest, TimingAccumulates) {
  auto stream = MakeDriftStream(1 << 30, 11);
  GaussianNaiveBayes clf(stream->schema());
  Ddm ddm;
  PrequentialConfig cfg;
  cfg.max_instances = 3000;
  cfg.timing = true;
  PrequentialResult r = RunPrequential(stream.get(), &clf, &ddm, cfg);
  EXPECT_GT(r.classifier_seconds, 0.0);
  EXPECT_GT(r.detector_seconds, 0.0);
}

TEST(PrequentialTest, RejectsDegenerateConfig) {
  // Regression: eval_interval <= 0 was a literal division by zero and
  // metric_window <= 0 degenerated the metric window — both now fail fast.
  auto stream = MakeDriftStream(1 << 30, 5);
  GaussianNaiveBayes clf(stream->schema());
  PrequentialConfig bad;
  bad.eval_interval = 0;
  EXPECT_THROW(RunPrequential(stream.get(), &clf, nullptr, bad),
               std::invalid_argument);
  bad = PrequentialConfig{};
  bad.metric_window = -5;
  EXPECT_THROW(RunPrequential(stream.get(), &clf, nullptr, bad),
               std::invalid_argument);
  EXPECT_NO_THROW(ValidatePrequentialConfig(PrequentialConfig{}));
}

TEST(PrequentialTest, SurvivesEmptyScoreVectors) {
  // Regression companion to the PmAuc guard: a classifier returning no
  // scores must flow through argmax, windowed metrics and sampling
  // without reading out of bounds. All ratios tie -> pmAUC 0.5.
  auto stream = MakeDriftStream(1 << 30, 17);
  ScorelessClassifier clf(stream->schema());
  PrequentialConfig cfg;
  cfg.max_instances = 2000;
  cfg.warmup = 100;
  cfg.eval_interval = 100;
  cfg.metric_window = 500;
  PrequentialResult r = RunPrequential(stream.get(), &clf, nullptr, cfg);
  EXPECT_EQ(r.instances, 2000u);
  EXPECT_NEAR(r.mean_pmauc, 0.5, 1e-9);
}

TEST(PrequentialTest, WarmupDriftIsConsumedNotReplayed) {
  // Regression: a drift signaled during the warmup prefix must be
  // consumed there — not carried into the first measured instance, where
  // it would count as a detection and spuriously reset the classifier.
  auto stream = MakeDriftStream(1 << 30, 21);
  CountingStubClassifier clf(stream->schema());
  LatchingScriptedDetector det(/*fire_at=*/300);  // Inside warmup (500).
  PrequentialConfig cfg;
  cfg.max_instances = 2000;
  cfg.warmup = 500;
  PrequentialResult r = RunPrequential(stream.get(), &clf, &det, cfg);
  EXPECT_EQ(r.drifts, 0u);
  EXPECT_TRUE(r.drift_positions.empty());
  EXPECT_EQ(clf.resets, 0);
}

TEST(PrequentialTest, PostWarmupScriptedDriftStillCounts) {
  // The same latching detector firing after warmup must be seen exactly
  // once and drive exactly one reset — the consumption fix must not eat
  // genuine signals.
  auto stream = MakeDriftStream(1 << 30, 21);
  CountingStubClassifier clf(stream->schema());
  LatchingScriptedDetector det(/*fire_at=*/600);
  PrequentialConfig cfg;
  cfg.max_instances = 2000;
  cfg.warmup = 500;
  PrequentialResult r = RunPrequential(stream.get(), &clf, &det, cfg);
  EXPECT_EQ(r.drifts, 1u);
  ASSERT_EQ(r.drift_positions.size(), 1u);
  EXPECT_EQ(r.drift_positions[0], 599u);  // The 600th Observe() call.
  EXPECT_EQ(clf.resets, 1);
}

/// Detector that always blames a fixed class set, to check the harness
/// surfaces local-drift explanations instead of dropping them.
class BlamingDetector : public DriftDetector {
 public:
  void Observe(const Instance&, int, const std::vector<double>&) override {
    ++observed_;
  }
  DetectorState state() const override {
    return observed_ == 700 ? DetectorState::kDrift : DetectorState::kStable;
  }
  void Reset() override {}
  std::string name() const override { return "blaming"; }
  std::vector<int> drifted_classes() const override { return {2}; }

 private:
  uint64_t observed_ = 0;
};

TEST(PrequentialTest, DriftEventsCarryLocalDriftInformation) {
  // Satellite regression: detectors compute drifted_classes() but the old
  // harness kept only positions. The result must now carry both.
  auto stream = MakeDriftStream(1 << 30, 25);
  CountingStubClassifier clf(stream->schema());
  BlamingDetector det;
  PrequentialConfig cfg;
  cfg.max_instances = 2000;
  cfg.warmup = 500;
  PrequentialResult r = RunPrequential(stream.get(), &clf, &det, cfg);
  ASSERT_EQ(r.drift_events.size(), r.drift_positions.size());
  ASSERT_EQ(r.drift_events.size(), 1u);
  EXPECT_EQ(r.drift_events[0].position, r.drift_positions[0]);
  EXPECT_EQ(r.drift_events[0].drifted_classes, std::vector<int>{2});
}

TEST(PrequentialTest, CountsRealizedClassDistribution) {
  auto stream = MakeDriftStream(1 << 30, 23);
  GaussianNaiveBayes clf(stream->schema());
  PrequentialConfig cfg;
  cfg.max_instances = 3000;
  cfg.warmup = 200;
  PrequentialResult r = RunPrequential(stream.get(), &clf, nullptr, cfg);
  ASSERT_EQ(r.class_counts.size(), 3u);
  uint64_t total = 0;
  for (uint64_t c : r.class_counts) total += c;
  EXPECT_EQ(total, 3000u);  // Every instance (warmup included) is counted.
}

TEST(SelfTuningTest, FindsBetterFhddmDelta) {
  // Tune FHDDM's log10(delta) on a drifting prefix: the objective is the
  // prequential pmAUC of the standard pipeline. The tuner must return a
  // parameter no worse than the grid's worst corner.
  auto evaluate = [](const std::vector<double>& params) {
    auto stream = MakeDriftStream(3000, 13);
    GaussianNaiveBayes clf(stream->schema());
    Fhddm::Params fp;
    fp.delta = std::pow(10.0, params[0]);
    Fhddm detector(fp);
    PrequentialConfig cfg;
    cfg.max_instances = 6000;
    cfg.warmup = 200;
    cfg.timing = false;
    return RunPrequential(stream.get(), &clf, &detector, cfg).mean_pmauc;
  };
  SelfTuningResult r =
      SelfTuneOnPrefix(evaluate, {-4.0}, {-7.0}, {-1.0}, /*budget=*/12);
  EXPECT_GE(r.evaluations, 3);
  EXPECT_GE(r.best_metric, evaluate({-7.0}) - 0.02);
  EXPECT_GE(r.best_params[0], -7.0);
  EXPECT_LE(r.best_params[0], -1.0);
}

}  // namespace
}  // namespace ccd
