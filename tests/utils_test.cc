#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "utils/cli.h"
#include "utils/matrix.h"
#include "utils/rng.h"
#include "utils/table.h"

namespace ccd {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(2, 5));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(2));
  EXPECT_TRUE(seen.count(5));
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(13);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(rng.Discrete(w))];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, DiscreteAllZeroWeightsReturnsZero) {
  Rng rng(17);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_EQ(rng.Discrete(w), 0);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.25, 0.01);
}

TEST(MatrixTest, SolveLinearSystemIdentity) {
  Matrix a(3, 3);
  for (int i = 0; i < 3; ++i) a(i, i) = 1.0;
  std::vector<double> b = {1.0, 2.0, 3.0};
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem(a, b, &x));
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x[static_cast<size_t>(i)], b[static_cast<size_t>(i)], 1e-12);
}

TEST(MatrixTest, SolveLinearSystemGeneral) {
  // 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3.
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  std::vector<double> b = {5.0, 10.0};
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem(a, b, &x));
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 3.0, 1e-10);
}

TEST(MatrixTest, SolveSingularReturnsFalse) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  std::vector<double> x;
  EXPECT_FALSE(SolveLinearSystem(a, {1.0, 2.0}, &x));
}

TEST(MatrixTest, LeastSquaresRecoversLine) {
  // y = 2 + 3t, exactly.
  const int n = 10;
  Matrix a(n, 2);
  std::vector<double> y(n);
  for (int t = 0; t < n; ++t) {
    a(t, 0) = 1.0;
    a(t, 1) = t;
    y[static_cast<size_t>(t)] = 2.0 + 3.0 * t;
  }
  std::vector<double> beta;
  ASSERT_TRUE(SolveLeastSquares(a, y, &beta));
  EXPECT_NEAR(beta[0], 2.0, 1e-8);
  EXPECT_NEAR(beta[1], 3.0, 1e-8);
  EXPECT_NEAR(ResidualSumSquares(a, y, beta), 0.0, 1e-10);
}

TEST(MatrixTest, GramAndTransposeTimes) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  Matrix g = a.Gram();
  EXPECT_NEAR(g(0, 0), 10.0, 1e-12);  // 1+9
  EXPECT_NEAR(g(0, 1), 14.0, 1e-12);  // 2+12
  EXPECT_NEAR(g(1, 1), 20.0, 1e-12);  // 4+16
  std::vector<double> v = a.TransposeTimes({1.0, 1.0});
  EXPECT_NEAR(v[0], 4.0, 1e-12);
  EXPECT_NEAR(v[1], 6.0, 1e-12);
}

TEST(TableTest, TextAndCsvRendering) {
  Table t;
  t.SetHeader({"name", "value"});
  t.AddRow({"alpha", Table::Num(1.2345, 2)});
  t.AddRow({"beta", "x,y"});
  std::string text = t.ToText();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("1.23"), std::string::npos);
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(CliTest, MalformedIntIsACliErrorNamingTheFlag) {
  // Regression: GetInt used atoi, so "--threads abc" silently became 0 and
  // "--seed 10x" silently truncated to 10. Both are now hard errors.
  const char* argv[] = {"prog", "--threads", "abc", "--seed", "10x"};
  Cli cli(5, const_cast<char**>(argv));
  try {
    cli.GetInt("threads", 1);
    FAIL() << "expected CliError";
  } catch (const CliError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("--threads"), std::string::npos) << msg;
    EXPECT_NE(msg.find("abc"), std::string::npos) << msg;
  }
  EXPECT_THROW(cli.GetInt("seed", 1), CliError);  // Trailing garbage.
}

TEST(CliTest, IntOverflowIsACliError) {
  const char* argv[] = {"prog", "--big", "99999999999999999999",
                        "--huge", "5000000000"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_THROW(cli.GetInt("big", 1), CliError);   // > LONG_MAX.
  EXPECT_THROW(cli.GetInt("huge", 1), CliError);  // Fits long, not int.
}

TEST(CliTest, MalformedDoubleIsACliError) {
  const char* argv[] = {"prog", "--scale", "fast", "--rate", "1.5e",
                        "--big", "1e999"};
  Cli cli(7, const_cast<char**>(argv));
  EXPECT_THROW(cli.GetDouble("scale", 1.0), CliError);
  EXPECT_THROW(cli.GetDouble("rate", 1.0), CliError);
  EXPECT_THROW(cli.GetDouble("big", 1.0), CliError);    // Overflow.
  EXPECT_THROW(cli.GetBool("scale", false), CliError);  // "fast" is no bool.
}

TEST(CliTest, DoubleUnderflowIsNotAnError) {
  // strtod sets ERANGE on underflow too, while still returning the best
  // representable value — a subnormal must parse, not abort.
  const char* argv[] = {"prog", "--tiny", "1e-320", "--zeroish", "1e-999"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_GT(cli.GetDouble("tiny", 1.0), 0.0);
  EXPECT_LT(cli.GetDouble("tiny", 1.0), 1e-300);
  EXPECT_EQ(cli.GetDouble("zeroish", 1.0), 0.0);
}

TEST(CliTest, WellFormedValuesStillParse) {
  const char* argv[] = {"prog", "--threads", "8",    "--scale", "0.5",
                        "--neg", "-3",      "--on",  "yes",     "--off",
                        "off",   "--exp",   "1e-3"};
  Cli cli(13, const_cast<char**>(argv));
  EXPECT_EQ(cli.GetInt("threads", 1), 8);
  EXPECT_EQ(cli.GetInt("neg", 1), -3);
  EXPECT_DOUBLE_EQ(cli.GetDouble("scale", 1.0), 0.5);
  EXPECT_DOUBLE_EQ(cli.GetDouble("exp", 1.0), 1e-3);
  EXPECT_TRUE(cli.GetBool("on", false));
  EXPECT_FALSE(cli.GetBool("off", true));
  // Bare flags carry the implicit value "1".
  const char* argv2[] = {"prog", "--verbose"};
  Cli cli2(2, const_cast<char**>(argv2));
  EXPECT_TRUE(cli2.GetBool("verbose", false));
  EXPECT_EQ(cli2.GetInt("verbose", 0), 1);
}

TEST(CliTest, ParsesFlagsAndPositional) {
  // Note: a bare flag followed by a non-flag token would consume it as a
  // value (greedy rule), so positional arguments precede flags here.
  const char* argv[] = {"prog", "pos1", "--scale", "0.5", "--verbose",
                        "--name=abc"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.GetDouble("scale", 1.0), 0.5);
  EXPECT_TRUE(cli.GetBool("verbose", false));
  EXPECT_EQ(cli.GetString("name", ""), "abc");
  EXPECT_FALSE(cli.Has("missing"));
  EXPECT_EQ(cli.GetInt("missing", 7), 7);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

}  // namespace
}  // namespace ccd
