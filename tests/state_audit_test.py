#!/usr/bin/env python3
"""Self-test for tools/state_audit.py (run via ctest: state_audit_selftest).

Proves each of the auditor's three checks fires on a known-bad fixture
tree and stays quiet on a clean one:

  * missing field            -> [state-coverage]
  * Save/Load order mismatch -> [save-load-symmetry]
  * unjustified / unknown skip -> [state-skip]
  * stale manifest without a kStateSchemaVersion bump -> [schema-drift],
    and --update refuses until the constant is bumped
  * clean class              -> exit 0

Also pins the clang frontend's AST interpretation against a hand-written
`-ast-dump=json` fixture (fields, out-of-line bodies via
parentDeclContextId, loop/conditional frames, member refs, *this), so
the CI job's clang leg is exercised by logic tests even in containers
without a clang binary.
"""

import contextlib
import io
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
import state_audit  # noqa: E402


CLEAN_HEADER = """
namespace fix {
class Gauge {
 public:
  void SaveState(io::Writer& w) const;
  void LoadState(io::Reader& r);
  Gauge CloneState() const;
 private:
  double mean_ = 0.0;
  long long count_ = 0;
  // ccd:state-skip(scratch_, transient per-batch scratch buffer)
  int scratch_ = 0;
};
}  // namespace fix
"""

CLEAN_SOURCE = """
namespace fix {
void Gauge::SaveState(io::Writer& w) const {
  w.BeginSection("Gauge");
  w.F64("mean", mean_);
  w.I64("count", count_);
  w.EndSection();
}
void Gauge::LoadState(io::Reader& r) {
  r.BeginSection("Gauge");
  mean_ = r.F64("mean");
  count_ = r.I64("count");
  r.EndSection();
}
Gauge Gauge::CloneState() const { return Gauge(*this); }
}  // namespace fix
"""

WIRE_HEADER_V1 = "inline constexpr uint32_t kStateSchemaVersion = 1;\n"
WIRE_HEADER_V2 = "inline constexpr uint32_t kStateSchemaVersion = 2;\n"


class FixtureTree:
    """A throwaway repo layout: src/, a wire header, a manifest path."""

    def __init__(self, tmp, header=CLEAN_HEADER, source=CLEAN_SOURCE):
        self.root = Path(tmp)
        (self.root / "src").mkdir()
        self.write(header, source)
        self.wire_header = self.root / "codecs.h"
        self.wire_header.write_text(WIRE_HEADER_V1)
        self.manifest = self.root / "wire_schema.json"

    def write(self, header, source):
        (self.root / "src" / "gauge.h").write_text(header)
        (self.root / "src" / "gauge.cc").write_text(source)

    def run(self, *extra):
        argv = [
            "--src", str(self.root / "src"),
            "--manifest", str(self.manifest),
            "--wire-header", str(self.wire_header),
            "--frontend", "text",
        ] + list(extra)
        out = io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(out):
            code = state_audit.main(argv)
        return code, out.getvalue()

    def pin_manifest(self):
        code, out = self.run("--update")
        assert code == 0, out


class CleanTreeTest(unittest.TestCase):
    def test_clean_class_passes(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = FixtureTree(tmp)
            tree.pin_manifest()
            code, out = tree.run()
            self.assertEqual(code, 0, out)
            self.assertIn("clean", out)
            self.assertIn("1 serialized", out)


class CoverageTest(unittest.TestCase):
    def test_missing_field_fires(self):
        # count_ exists but moves through no surface: both SaveState and
        # LoadState must be flagged (CloneState copies *this — exempt).
        source = CLEAN_SOURCE.replace(
            'w.I64("count", count_);', "").replace(
            'count_ = r.I64("count");', "")
        with tempfile.TemporaryDirectory() as tmp:
            tree = FixtureTree(tmp, source=source)
            tree.pin_manifest()
            code, out = tree.run()
            self.assertEqual(code, 1, out)
            self.assertIn("[state-coverage]", out)
            self.assertIn("Gauge::count_", out)
            self.assertIn("SaveState", out)
            self.assertIn("LoadState", out)
            self.assertNotIn("Gauge::scratch_", out)  # justified skip

    def test_whole_object_copy_covers_everything(self):
        # CloneState's `return Gauge(*this)` never yields coverage
        # findings — pinned here so the exemption does not regress.
        with tempfile.TemporaryDirectory() as tmp:
            tree = FixtureTree(tmp)
            tree.pin_manifest()
            code, out = tree.run()
            self.assertEqual(code, 0, out)


class SymmetryTest(unittest.TestCase):
    def test_type_order_mismatch_fires(self):
        # LoadState reads count before mean: same fields, same types,
        # wrong order — exactly the bug a round-trip test may mask when
        # both sides share the transposition.
        source = CLEAN_SOURCE.replace(
            '  mean_ = r.F64("mean");\n  count_ = r.I64("count");',
            '  count_ = r.I64("count");\n  mean_ = r.F64("mean");')
        with tempfile.TemporaryDirectory() as tmp:
            tree = FixtureTree(tmp, source=source)
            tree.pin_manifest()
            code, out = tree.run()
            self.assertEqual(code, 1, out)
            self.assertIn("[save-load-symmetry]", out)
            self.assertIn("first divergence at call 2", out)

    def test_missing_read_fires(self):
        source = CLEAN_SOURCE.replace('count_ = r.I64("count");', "count_ = 0;")
        with tempfile.TemporaryDirectory() as tmp:
            tree = FixtureTree(tmp, source=source)
            tree.pin_manifest()
            code, out = tree.run()
            self.assertEqual(code, 1, out)
            self.assertIn("[save-load-symmetry]", out)
            self.assertIn("writes 4 wire value(s), LoadState reads 3", out)

    def test_loop_nesting_must_match(self):
        # Writer emits per-element inside a loop, reader reads the same
        # unit outside one: counts can even agree at runtime for a
        # one-element container, but the shapes differ.
        source = CLEAN_SOURCE.replace(
            'w.F64("mean", mean_);',
            'for (int i = 0; i < 2; ++i) w.F64("mean", mean_);')
        with tempfile.TemporaryDirectory() as tmp:
            tree = FixtureTree(tmp, source=source)
            tree.pin_manifest()
            code, out = tree.run()
            self.assertEqual(code, 1, out)
            self.assertIn("[save-load-symmetry]", out)


class SkipHygieneTest(unittest.TestCase):
    def test_unjustified_skip_fires(self):
        header = CLEAN_HEADER.replace(
            "transient per-batch scratch buffer", "temp")
        with tempfile.TemporaryDirectory() as tmp:
            tree = FixtureTree(tmp, header=header)
            tree.pin_manifest()
            code, out = tree.run()
            self.assertEqual(code, 1, out)
            self.assertIn("[state-skip]", out)
            self.assertIn("unjustified skip", out)

    def test_unknown_field_skip_fires(self):
        header = CLEAN_HEADER.replace(
            "ccd:state-skip(scratch_,", "ccd:state-skip(nonexistent_,")
        with tempfile.TemporaryDirectory() as tmp:
            tree = FixtureTree(tmp, header=header)
            tree.pin_manifest()
            code, out = tree.run()
            self.assertEqual(code, 1, out)
            self.assertIn("unknown field 'nonexistent_'", out)
            # The no-longer-skipped scratch_ also turns uncovered.
            self.assertIn("[state-coverage]", out)

    def test_stale_skip_fires(self):
        # scratch_ annotated as skipped but actually serialized
        # everywhere: the annotation must be dropped.
        source = CLEAN_SOURCE.replace(
            'w.I64("count", count_);',
            'w.I64("count", count_);\n  w.U32("scratch", scratch_);').replace(
            'count_ = r.I64("count");',
            'count_ = r.I64("count");\n  scratch_ = r.U32("scratch");')
        with tempfile.TemporaryDirectory() as tmp:
            tree = FixtureTree(tmp, source=source)
            tree.pin_manifest()
            code, out = tree.run()
            self.assertEqual(code, 1, out)
            self.assertIn("stale skip", out)


class SchemaDriftTest(unittest.TestCase):
    def grown_source(self):
        return CLEAN_SOURCE.replace(
            'w.I64("count", count_);',
            'w.I64("count", count_);\n  w.Bool("armed", armed_);').replace(
            'count_ = r.I64("count");',
            'count_ = r.I64("count");\n  armed_ = r.Bool("armed");')

    def grown_header(self):
        return CLEAN_HEADER.replace(
            "long long count_ = 0;",
            "long long count_ = 0;\n  bool armed_ = false;")

    def test_stale_manifest_fires_without_bump(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = FixtureTree(tmp)
            tree.pin_manifest()
            # Grow the class; same kStateSchemaVersion.
            tree.write(self.grown_header(), self.grown_source())
            code, out = tree.run()
            self.assertEqual(code, 1, out)
            self.assertIn("[schema-drift]", out)
            self.assertIn("+armed_", out)
            self.assertIn("kStateSchemaVersion is still 1", out)

    def test_update_refuses_without_bump_then_accepts(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = FixtureTree(tmp)
            tree.pin_manifest()
            tree.write(self.grown_header(), self.grown_source())
            code, out = tree.run("--update")
            self.assertEqual(code, 1, out)
            self.assertIn("refusing --update", out)
            # Bump the constant: --update re-pins, the check goes green.
            tree.wire_header.write_text(WIRE_HEADER_V2)
            code, out = tree.run("--update")
            self.assertEqual(code, 0, out)
            code, out = tree.run()
            self.assertEqual(code, 0, out)

    def test_version_bump_without_update_fires(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = FixtureTree(tmp)
            tree.pin_manifest()
            tree.wire_header.write_text(WIRE_HEADER_V2)
            code, out = tree.run()
            self.assertEqual(code, 1, out)
            self.assertIn("re-run tools/state_audit.py --update", out)

    def test_missing_manifest_fires(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = FixtureTree(tmp)
            code, out = tree.run()
            self.assertEqual(code, 1, out)
            self.assertIn("manifest missing", out)


class WirePatternTest(unittest.TestCase):
    def test_manifest_pattern_handles_nested_loops(self):
        # The emission grammar of nested loops must group by frame
        # identity: u (outer u (inner qdd*))* — a flat-depth grouping
        # would reject interleaved streams like `u u qdd u qdd qdd`.
        source = CLEAN_SOURCE.replace(
            '  w.F64("mean", mean_);\n  w.I64("count", count_);',
            """  w.Count("rows", 2);
  for (int i = 0; i < 2; ++i) {
    w.Count("cols", 2);
    for (int j = 0; j < 2; ++j) {
      w.F64("cell", mean_);
    }
  }
  w.I64("count", count_);""").replace(
            '  mean_ = r.F64("mean");\n  count_ = r.I64("count");',
            """  const uint32_t rows = r.Count("rows", 64);
  for (uint32_t i = 0; i < rows; ++i) {
    const uint32_t cols = r.Count("cols", 64);
    for (uint32_t j = 0; j < cols; ++j) {
      mean_ = r.F64("cell");
    }
  }
  count_ = r.I64("count");""")
        with tempfile.TemporaryDirectory() as tmp:
            tree = FixtureTree(tmp, source=source)
            tree.pin_manifest()
            code, out = tree.run()
            self.assertEqual(code, 0, out)
            import json
            import re
            entry = json.loads(tree.manifest.read_text())["classes"]["Gauge"]
            pattern = entry["wire_pattern"]
            self.assertEqual(pattern, "^u(?:u(?:d)*)*i$")
            for stream in ("ui", "uudi", "uuddudddi"):
                self.assertTrue(re.fullmatch(pattern[1:-1], stream), stream)
            for stream in ("udi", "uu", "uudid"):
                self.assertFalse(re.fullmatch(pattern[1:-1], stream), stream)


# ------------------------------------------------------- clang frontend

def _writer_call(method, *args):
    """A `w.<method>(...)` CXXMemberCallExpr AST node."""
    return {
        "kind": "CXXMemberCallExpr",
        "inner": [
            {"kind": "MemberExpr", "name": method,
             "inner": [{"kind": "DeclRefExpr",
                        "type": {"qualType": "ccd::io::Writer"}}]},
        ] + list(args),
    }


def _reader_call(method, *args):
    node = _writer_call(method, *args)
    node["inner"][0]["inner"][0]["type"]["qualType"] = "ccd::io::Reader &"
    return node


def _member(name, decl_id):
    return {"kind": "MemberExpr", "name": name,
            "referencedMemberDecl": decl_id}


CLANG_AST_FIXTURE = {
    "kind": "TranslationUnitDecl",
    "inner": [
        {
            "kind": "CXXRecordDecl", "id": "0x100", "name": "Gauge",
            "completeDefinition": True,
            "loc": {"file": "src/gauge.h", "line": 3},
            "inner": [
                {"kind": "FieldDecl", "id": "0x101", "name": "mean_",
                 "loc": {"line": 8}},
                {"kind": "FieldDecl", "id": "0x102", "name": "count_",
                 "loc": {"line": 9}},
                # In-class declarations (no body).
                {"kind": "CXXMethodDecl", "id": "0x110", "name": "SaveState",
                 "loc": {"line": 5},
                 "inner": [{"kind": "ParmVarDecl",
                            "type": {"qualType": "ccd::io::Writer &"}}]},
                {"kind": "CXXMethodDecl", "id": "0x111", "name": "LoadState",
                 "loc": {"line": 6},
                 "inner": [{"kind": "ParmVarDecl",
                            "type": {"qualType": "ccd::io::Reader &"}}]},
                {"kind": "CXXMethodDecl", "id": "0x112", "name": "CloneState",
                 "loc": {"line": 7}, "inner": []},
            ],
        },
        # Out-of-line SaveState: w.F64 at top level, w.I64 inside a for.
        {
            "kind": "CXXMethodDecl", "id": "0x200", "name": "SaveState",
            "parentDeclContextId": "0x100",
            "inner": [
                {"kind": "ParmVarDecl",
                 "type": {"qualType": "ccd::io::Writer &"}},
                {"kind": "CompoundStmt", "inner": [
                    _writer_call("F64",
                                 {"kind": "StringLiteral",
                                  "value": "\"mean\""},
                                 _member("mean_", "0x101")),
                    {"kind": "ForStmt", "id": "0x300", "inner": [
                        _writer_call("I64", _member("count_", "0x102")),
                    ]},
                ]},
            ],
        },
        # Out-of-line LoadState: the if *condition* call is
        # unconditional, the then-branch call is conditional.
        {
            "kind": "CXXMethodDecl", "id": "0x201", "name": "LoadState",
            "parentDeclContextId": "0x100",
            "inner": [
                {"kind": "ParmVarDecl",
                 "type": {"qualType": "ccd::io::Reader &"}},
                {"kind": "CompoundStmt", "inner": [
                    {"kind": "IfStmt", "id": "0x400", "inner": [
                        _reader_call("Bool"),                 # condition
                        {"kind": "CompoundStmt", "inner": [   # then-branch
                            _reader_call("F64",
                                         _member("mean_", "0x101")),
                        ]},
                    ]},
                ]},
            ],
        },
        # Out-of-line CloneState returning Gauge(*this).
        {
            "kind": "CXXMethodDecl", "id": "0x202", "name": "CloneState",
            "parentDeclContextId": "0x100",
            "inner": [
                {"kind": "CompoundStmt", "inner": [
                    {"kind": "UnaryOperator", "opcode": "Deref",
                     "inner": [{"kind": "CXXThisExpr"}]},
                ]},
            ],
        },
    ],
}


class ClangFrontendTest(unittest.TestCase):
    """Pins ClangTU's reading of -ast-dump=json against a hand-written
    fixture, so the CI clang leg's parsing logic is tested without a
    clang binary in the container."""

    def setUp(self):
        tu = state_audit.ClangTU(CLANG_AST_FIXTURE, {"Gauge"})
        self.assertIn("Gauge", tu.classes)
        self.model = tu.classes["Gauge"]

    def test_fields_and_location(self):
        self.assertEqual([f for f, _ in self.model.fields],
                         ["mean_", "count_"])
        self.assertEqual(self.model.file, "src/gauge.h")

    def test_out_of_line_save_body_linked_by_context_id(self):
        save = self.model.surfaces["SaveState"]
        self.assertTrue(save.has_body)
        self.assertEqual([(c.unit, c.loop) for c in save.calls],
                         [("F64", 0), ("I64", 1)])
        self.assertEqual(save.refs, {"mean_", "count_"})

    def test_condition_calls_are_unconditional(self):
        load = self.model.surfaces["LoadState"]
        self.assertEqual([(c.unit, c.cond) for c in load.calls],
                         [("Bool", 0), ("F64", 1)])

    def test_whole_object_clone(self):
        self.assertTrue(self.model.surfaces["CloneState"].whole_object)


if __name__ == "__main__":
    unittest.main()
