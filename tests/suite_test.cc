// api::Suite — the deterministic parallel experiment-suite runner: grid
// expansion, per-repeat seeding, thread-count-independent results, Welford
// aggregation, sinks, and error propagation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "api/api.h"

namespace ccd {
namespace {

PrequentialConfig ShortConfig() {
  PrequentialConfig cfg;
  cfg.max_instances = 1500;
  cfg.metric_window = 500;
  cfg.eval_interval = 100;
  cfg.warmup = 200;
  cfg.timing = false;  // Wall-clock fields are inherently nondeterministic.
  return cfg;
}

api::Suite MakeGrid(int threads) {
  api::Suite suite;
  suite.Streams({"RBF5", "Aggrawal5"})
      .Detectors({"FHDDM", "DDM"})
      .Scale(0.001)
      .Seed(42)
      .Prequential(ShortConfig())
      .Repeats(2)
      .Threads(threads);
  return suite;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The acceptance bar of the subsystem: the same grid with 1 worker and
// with 8 workers yields bit-identical per-experiment results — same
// metrics, same drift count, same drift positions, same series.
TEST(SuiteTest, SameGridIsBitIdenticalAcrossThreadCounts) {
  api::SuiteResult a = MakeGrid(1).Run();
  api::SuiteResult b = MakeGrid(8).Run();
  ASSERT_EQ(a.cells.size(), 8u);  // 2 streams x 2 detectors x 2 repeats.
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (size_t i = 0; i < a.cells.size(); ++i) {
    const api::SuiteCellResult& ca = a.cells[i];
    const api::SuiteCellResult& cb = b.cells[i];
    EXPECT_EQ(ca.cell.stream_label, cb.cell.stream_label);
    EXPECT_EQ(ca.cell.detector_label, cb.cell.detector_label);
    EXPECT_EQ(ca.cell.repeat, cb.cell.repeat);
    EXPECT_EQ(ca.cell.options.seed, cb.cell.options.seed);
    EXPECT_EQ(ca.result.instances, cb.result.instances);
    EXPECT_EQ(ca.result.mean_pmauc, cb.result.mean_pmauc);
    EXPECT_EQ(ca.result.mean_pmgm, cb.result.mean_pmgm);
    EXPECT_EQ(ca.result.mean_accuracy, cb.result.mean_accuracy);
    EXPECT_EQ(ca.result.mean_kappa, cb.result.mean_kappa);
    EXPECT_EQ(ca.result.drifts, cb.result.drifts);
    EXPECT_EQ(ca.result.drift_positions, cb.result.drift_positions);
    EXPECT_EQ(ca.result.pmauc_series, cb.result.pmauc_series);
    EXPECT_EQ(ca.result.class_counts, cb.result.class_counts);
  }
}

TEST(SuiteTest, GridExpandsStreamMajorWithPerRepeatSeeds) {
  std::vector<api::SuiteCell> cells = MakeGrid(1).Cells();
  ASSERT_EQ(cells.size(), 8u);
  // Stream-major, detectors inner, repeats innermost.
  EXPECT_EQ(cells[0].stream_label, "RBF5");
  EXPECT_EQ(cells[0].detector_label, "FHDDM");
  EXPECT_EQ(cells[0].repeat, 0);
  EXPECT_EQ(cells[1].repeat, 1);
  EXPECT_EQ(cells[2].detector_label, "DDM");
  EXPECT_EQ(cells[4].stream_label, "Aggrawal5");
  // Repeat r runs with seed (axis seed + r) — deterministic, scheduling
  // never involved.
  EXPECT_EQ(cells[0].options.seed, 42u);
  EXPECT_EQ(cells[1].options.seed, 43u);
}

TEST(SuiteTest, PerEntryStreamOptionsAndLabelsAreHonored) {
  const StreamSpec* spec = FindStreamSpec("RBF5");
  ASSERT_NE(spec, nullptr);
  BuildOptions sweep;
  sweep.scale = 0.001;
  sweep.seed = 7;
  sweep.ir_override = 400.0;
  api::Suite suite;
  suite.Scale(0.5).Stream(*spec, sweep, "RBF5@IR400");
  std::vector<api::SuiteCell> cells = suite.Cells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].stream_label, "RBF5@IR400");
  EXPECT_DOUBLE_EQ(cells[0].options.ir_override, 400.0);
  EXPECT_DOUBLE_EQ(cells[0].options.scale, 0.001);  // Entry, not base.
  EXPECT_EQ(cells[0].options.seed, 7u);
  // Missing axes fall back to the Experiment defaults.
  EXPECT_EQ(cells[0].detector_label, "none");
  EXPECT_EQ(cells[0].classifier, "cs-ptree");
}

TEST(SuiteTest, AggregatesCollapseRepeatsWithWelford) {
  api::SuiteResult res = MakeGrid(4).Run();
  ASSERT_EQ(res.aggregates.size(), 4u);  // Repeats collapsed.
  for (size_t g = 0; g < res.aggregates.size(); ++g) {
    const api::SuiteAggregate& agg = res.aggregates[g];
    EXPECT_EQ(agg.pmauc.count(), 2u);
    double manual = 0.5 * (res.cells[2 * g].result.mean_pmauc +
                           res.cells[2 * g + 1].result.mean_pmauc);
    EXPECT_NEAR(agg.pmauc.mean(), manual, 1e-12);
    EXPECT_GE(agg.pmauc.StdDev(), 0.0);
  }
  // Grid order: aggregate g maps to cells [2g, 2g+1].
  EXPECT_EQ(res.aggregates[0].stream_label, "RBF5");
  EXPECT_EQ(res.aggregates[3].detector_label, "DDM");
}

TEST(SuiteTest, CustomRunnerKeepsGridAndOrdering) {
  api::Suite suite;
  suite.Streams({"RBF5", "RBF10"}).Detector("anything-goes").Threads(8);
  suite.Runner([](const api::SuiteCell& cell) {
    PrequentialResult r;
    r.mean_pmauc = static_cast<double>(cell.stream_index) +
                   0.1 * static_cast<double>(cell.detector_index);
    r.instances = 1;
    return r;
  });
  api::SuiteResult res = suite.Run();  // Unknown detector: not validated.
  ASSERT_EQ(res.cells.size(), 2u);
  EXPECT_DOUBLE_EQ(res.cells[0].result.mean_pmauc, 0.0);
  EXPECT_DOUBLE_EQ(res.cells[1].result.mean_pmauc, 1.0);
}

TEST(SuiteTest, SinksReceiveTheCompletedRun) {
  const std::string cells_csv = ::testing::TempDir() + "ccd_suite_cells.csv";
  const std::string agg_csv = ::testing::TempDir() + "ccd_suite_agg.csv";
  const std::string json = ::testing::TempDir() + "ccd_suite.json";
  api::Suite suite = MakeGrid(4);
  suite.Sink(std::make_unique<api::CsvSink>(cells_csv))
      .Sink(std::make_unique<api::CsvSink>(agg_csv,
                                           api::CsvSink::kAggregates))
      .Sink(std::make_unique<api::JsonSink>(json));
  suite.Run();

  std::string cells_text = Slurp(cells_csv);
  EXPECT_NE(cells_text.find("stream,detector,classifier,repeat,seed"),
            std::string::npos);
  EXPECT_NE(cells_text.find("RBF5"), std::string::npos);
  // 8 cells + header.
  EXPECT_EQ(std::count(cells_text.begin(), cells_text.end(), '\n'), 9);

  std::string agg_text = Slurp(agg_csv);
  EXPECT_NE(agg_text.find("pmauc_mean,pmauc_std"), std::string::npos);
  EXPECT_EQ(std::count(agg_text.begin(), agg_text.end(), '\n'), 5);

  std::string json_text = Slurp(json);
  EXPECT_NE(json_text.find("\"cells\""), std::string::npos);
  EXPECT_NE(json_text.find("\"aggregates\""), std::string::npos);
  EXPECT_NE(json_text.find("\"drift_positions\""), std::string::npos);
  EXPECT_NE(json_text.find("\"drift_events\""), std::string::npos);
  EXPECT_NE(json_text.find("\"drifted_classes\""), std::string::npos);
  std::remove(cells_csv.c_str());
  std::remove(agg_csv.c_str());
  std::remove(json.c_str());
}

TEST(SuiteTest, UnknownComponentFailsBeforeAnyCellRuns) {
  api::Suite suite;
  suite.Stream("RBF5").Scale(0.001).Detector("NotADetector");
  try {
    suite.Run();
    FAIL() << "expected ApiError";
  } catch (const api::ApiError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("NotADetector"), std::string::npos);
    EXPECT_NE(msg.find("RBM-IM"), std::string::npos) << msg;
  }
}

TEST(SuiteTest, UnknownStreamNameThrowsAtAddTime) {
  api::Suite suite;
  EXPECT_THROW(suite.Stream("RBF7"), api::ApiError);
}

TEST(SuiteTest, EmptyGridIsAnError) {
  EXPECT_THROW(api::Suite().Run(), api::ApiError);
}

TEST(SuiteTest, DegenerateProtocolRejectedBeforeRunning) {
  PrequentialConfig bad = ShortConfig();
  bad.eval_interval = 0;
  api::Suite suite;
  suite.Stream("RBF5").Scale(0.001).Prequential(bad);
  EXPECT_THROW(suite.Run(), api::ApiError);
}

TEST(SuiteTest, CellErrorPropagatesAfterSiblingsFinish) {
  api::Suite suite;
  suite.Streams({"RBF5", "RBF10", "RBF20"}).Threads(4);
  suite.Runner([](const api::SuiteCell& cell) {
    if (cell.stream_index == 1) throw std::runtime_error("cell exploded");
    return PrequentialResult{};
  });
  EXPECT_THROW(suite.Run(), std::runtime_error);
}

}  // namespace
}  // namespace ccd
