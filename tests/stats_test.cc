#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.h"
#include "stats/granger.h"
#include "stats/nelder_mead.h"
#include "stats/ranking.h"
#include "stats/trend.h"
#include "stats/welford.h"
#include "stats/wilcoxon.h"
#include "utils/rng.h"

namespace ccd {
namespace {

// ---------------------------------------------------------------- special fn
TEST(DistributionsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.9750021, 1e-5);
  EXPECT_NEAR(NormalCdf(-1.96), 0.0249979, 1e-5);
}

TEST(DistributionsTest, ChiSquareCdfKnownValues) {
  // Chi2(k=1): P(X <= 3.841) ~ 0.95.
  EXPECT_NEAR(ChiSquareCdf(3.841, 1), 0.95, 1e-3);
  // Chi2(k=5): P(X <= 11.07) ~ 0.95.
  EXPECT_NEAR(ChiSquareCdf(11.07, 5), 0.95, 1e-3);
  EXPECT_DOUBLE_EQ(ChiSquareCdf(0.0, 3), 0.0);
}

TEST(DistributionsTest, FCdfKnownValues) {
  // F(1, 10): 95th percentile ~ 4.965.
  EXPECT_NEAR(FCdf(4.965, 1, 10), 0.95, 2e-3);
  // F(5, 20): 95th percentile ~ 2.711.
  EXPECT_NEAR(FCdf(2.711, 5, 20), 0.95, 2e-3);
}

TEST(DistributionsTest, StudentTKnownValues) {
  // t with 10 dof: |t|=2.228 -> two-sided p ~ 0.05.
  EXPECT_NEAR(StudentTTwoSidedPValue(2.228, 10), 0.05, 2e-3);
  EXPECT_NEAR(StudentTTwoSidedPValue(0.0, 10), 1.0, 1e-9);
}

TEST(DistributionsTest, LogGammaMatchesFactorials) {
  // Gamma(n) = (n-1)!.
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-10);
}

TEST(DistributionsTest, RegularizedBetaSymmetry) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (double x : {0.1, 0.3, 0.7}) {
    EXPECT_NEAR(RegularizedBeta(2.0, 3.0, x),
                1.0 - RegularizedBeta(3.0, 2.0, 1.0 - x), 1e-10);
  }
}

// ------------------------------------------------------------------- welford
TEST(WelfordTest, MatchesClosedForm) {
  Welford w;
  std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) w.Add(x);
  EXPECT_EQ(w.count(), xs.size());
  EXPECT_NEAR(w.mean(), 5.0, 1e-12);
  EXPECT_NEAR(w.Variance(), 4.0, 1e-12);
  EXPECT_NEAR(w.StdDev(), 2.0, 1e-12);
}

TEST(WelfordTest, ResetClears) {
  Welford w;
  w.Add(1.0);
  w.Add(2.0);
  w.Reset();
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
}

TEST(HoeffdingBoundTest, ShrinksWithN) {
  double e10 = HoeffdingBound(1.0, 0.05, 10);
  double e1000 = HoeffdingBound(1.0, 0.05, 1000);
  EXPECT_GT(e10, e1000);
  EXPECT_NEAR(e1000, std::sqrt(std::log(20.0) / 2000.0), 1e-12);
}

// --------------------------------------------------------------------- trend
TEST(SlidingTrendTest, ExactSlopeOnLine) {
  SlidingTrend trend(100);
  for (int t = 1; t <= 50; ++t) trend.Push(2.0 + 0.5 * t);
  EXPECT_NEAR(trend.Slope(), 0.5, 1e-9);
}

TEST(SlidingTrendTest, ZeroSlopeOnConstant) {
  SlidingTrend trend(32);
  for (int t = 0; t < 64; ++t) trend.Push(3.14);
  EXPECT_NEAR(trend.Slope(), 0.0, 1e-9);
  EXPECT_NEAR(trend.Mean(), 3.14, 1e-12);
}

TEST(SlidingTrendTest, WindowEvictionTracksRecentSlope) {
  SlidingTrend trend(10);
  // First a decreasing phase, then an increasing one; with W=10 only the
  // increasing tail should drive the slope.
  for (int t = 0; t < 50; ++t) trend.Push(100.0 - t);
  for (int t = 0; t < 20; ++t) trend.Push(50.0 + 2.0 * t);
  EXPECT_NEAR(trend.Slope(), 2.0, 1e-6);
  EXPECT_EQ(trend.size(), 10u);
}

TEST(SlidingTrendTest, ShrinkWindowEvictsImmediately) {
  SlidingTrend trend(20);
  for (int t = 0; t < 20; ++t) trend.Push(t);
  trend.set_window(5);
  EXPECT_EQ(trend.size(), 5u);
  EXPECT_NEAR(trend.Slope(), 1.0, 1e-9);
}

// ------------------------------------------------------------------ wilcoxon
TEST(WilcoxonRankSumTest, IdenticalSamplesNotSignificant) {
  std::vector<double> a = {1, 2, 3, 4, 5, 6, 7, 8};
  RankTestResult r = WilcoxonRankSum(a, a);
  ASSERT_TRUE(r.valid);
  EXPECT_GT(r.p_value, 0.9);
}

TEST(WilcoxonRankSumTest, ShiftedSamplesSignificant) {
  Rng rng(3);
  std::vector<double> a, b;
  for (int i = 0; i < 60; ++i) {
    a.push_back(rng.Gaussian(0.0, 1.0));
    b.push_back(rng.Gaussian(2.0, 1.0));
  }
  RankTestResult r = WilcoxonRankSum(a, b);
  ASSERT_TRUE(r.valid);
  EXPECT_LT(r.p_value, 1e-4);
}

TEST(WilcoxonRankSumTest, TooSmallSamplesInvalid) {
  EXPECT_FALSE(WilcoxonRankSum({1.0}, {2.0, 3.0}).valid);
}

TEST(WilcoxonSignedRankTest, PairedShiftDetected) {
  Rng rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 40; ++i) {
    double base = rng.Gaussian(0.0, 1.0);
    a.push_back(base + 1.0);
    b.push_back(base);
  }
  RankTestResult r = WilcoxonSignedRank(a, b);
  ASSERT_TRUE(r.valid);
  EXPECT_LT(r.p_value, 1e-4);
  EXPECT_GT(r.z, 0.0);
}

// ------------------------------------------------------------------- granger
TEST(GrangerTest, DetectsCausalLink) {
  // y_t = 0.9 * x_{t-1} + small noise: x Granger-causes y.
  Rng rng(7);
  std::vector<double> x, y;
  x.push_back(rng.Gaussian());
  y.push_back(0.0);
  for (int t = 1; t < 200; ++t) {
    x.push_back(rng.Gaussian());
    y.push_back(0.9 * x[static_cast<size_t>(t - 1)] +
                rng.Gaussian(0.0, 0.05));
  }
  GrangerResult g = GrangerCausality(x, y, 1, 0.05);
  ASSERT_TRUE(g.valid);
  EXPECT_TRUE(g.causality_rejected);  // Null of no-causality rejected.
  EXPECT_LT(g.p_value, 1e-6);
}

TEST(GrangerTest, IndependentSeriesNoCausality) {
  Rng rng(9);
  int rejections = 0;
  const int trials = 40;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<double> x, y;
    for (int t = 0; t < 120; ++t) {
      x.push_back(rng.Gaussian());
      y.push_back(rng.Gaussian());
    }
    GrangerResult g = GrangerCausality(x, y, 1, 0.05);
    ASSERT_TRUE(g.valid);
    if (g.causality_rejected) ++rejections;
  }
  // Should reject near the nominal 5% rate; allow generous slack.
  EXPECT_LE(rejections, trials / 4);
}

TEST(GrangerTest, TooShortSeriesInvalid) {
  EXPECT_FALSE(GrangerCausality({1, 2}, {1, 2}, 1, 0.05).valid);
}

TEST(GrangerTest, FirstDiffHandlesTrendingSeries) {
  // A deterministic shared linear trend is removed by differencing; the
  // differenced series are constants -> perfect fit path must not blow up.
  std::vector<double> x, y;
  for (int t = 0; t < 60; ++t) {
    x.push_back(2.0 * t);
    y.push_back(3.0 * t);
  }
  GrangerResult g = GrangerCausalityFirstDiff(x, y, 1, 0.05);
  // Degenerate constant series: either invalid or a definite answer, but
  // never NaN.
  if (g.valid) {
    EXPECT_FALSE(std::isnan(g.p_value));
  }
}

// ------------------------------------------------------------------- ranking
TEST(FriedmanTest, PerfectOrderingRanks) {
  // Algorithm 2 always best, then 1, then 0.
  std::vector<std::vector<double>> scores;
  for (int d = 0; d < 10; ++d) {
    scores.push_back({0.5, 0.7, 0.9});
  }
  FriedmanResult r = FriedmanTest(scores, /*higher_is_better=*/true);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.average_ranks[2], 1.0, 1e-12);
  EXPECT_NEAR(r.average_ranks[1], 2.0, 1e-12);
  EXPECT_NEAR(r.average_ranks[0], 3.0, 1e-12);
  EXPECT_LT(r.p_value, 0.01);
  EXPECT_GT(r.critical_difference, 0.0);
}

TEST(FriedmanTest, TiesGetMidranks) {
  std::vector<std::vector<double>> scores = {{0.5, 0.5, 0.9}};
  FriedmanResult r = FriedmanTest(scores, true);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.average_ranks[0], 2.5, 1e-12);
  EXPECT_NEAR(r.average_ranks[1], 2.5, 1e-12);
  EXPECT_NEAR(r.average_ranks[2], 1.0, 1e-12);
}

TEST(FriedmanTest, RenderDiagramMentionsBest) {
  std::vector<std::vector<double>> scores;
  for (int d = 0; d < 6; ++d) scores.push_back({0.2, 0.9});
  FriedmanResult r = FriedmanTest(scores, true);
  std::string diagram = RenderCriticalDifferenceDiagram({"weak", "strong"}, r);
  EXPECT_NE(diagram.find("strong"), std::string::npos);
  EXPECT_NE(diagram.find("(best)"), std::string::npos);
}

TEST(BayesianSignedTest, ClearWinnerGetsMass) {
  std::vector<double> a, b;
  for (int i = 0; i < 20; ++i) {
    a.push_back(0.9);
    b.push_back(0.5);
  }
  BayesianSignedResult r = BayesianSignedTest(a, b, 0.01, 5000, 3);
  ASSERT_TRUE(r.valid);
  EXPECT_GT(r.p_left, 0.95);
  EXPECT_LT(r.p_right, 0.01);
}

TEST(BayesianSignedTest, EquivalentAlgorithmsLandInRope) {
  std::vector<double> a, b;
  for (int i = 0; i < 20; ++i) {
    a.push_back(0.80 + 0.001 * (i % 3));
    b.push_back(0.80);
  }
  BayesianSignedResult r = BayesianSignedTest(a, b, 0.01, 5000, 3);
  ASSERT_TRUE(r.valid);
  EXPECT_GT(r.p_rope, 0.9);
}

// --------------------------------------------------------------- nelder-mead
TEST(NelderMeadTest, MinimizesQuadratic) {
  auto f = [](const std::vector<double>& x) {
    double a = x[0] - 1.5, b = x[1] + 0.5;
    return a * a + 2.0 * b * b;
  };
  NelderMeadOptions opt;
  opt.max_evaluations = 400;
  NelderMeadResult r =
      NelderMeadMinimize(f, {0.0, 0.0}, {-5.0, -5.0}, {5.0, 5.0}, opt);
  EXPECT_NEAR(r.best_point[0], 1.5, 0.05);
  EXPECT_NEAR(r.best_point[1], -0.5, 0.05);
  EXPECT_LT(r.best_value, 0.01);
}

TEST(NelderMeadTest, RespectsBoxBounds) {
  auto f = [](const std::vector<double>& x) { return -x[0]; };  // Wants +inf.
  NelderMeadResult r = NelderMeadMinimize(f, {0.5}, {0.0}, {2.0}, {});
  EXPECT_LE(r.best_point[0], 2.0 + 1e-12);
  EXPECT_NEAR(r.best_point[0], 2.0, 0.01);
}

}  // namespace
}  // namespace ccd
