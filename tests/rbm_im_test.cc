#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/rbm_im.h"
#include "generators/drifting_stream.h"
#include "generators/rbf.h"
#include "generators/registry.h"

namespace ccd {
namespace {

RbmIm::Params DetectorParams(int d, int k) {
  RbmIm::Params p;
  p.num_features = d;
  p.num_classes = k;
  return p;
}

std::unique_ptr<DriftingClassStream> MakeStream(
    int d, int k, double ir, std::vector<DriftEvent> events, uint64_t seed,
    uint64_t concept_seed_b = 2) {
  RbfConcept::Options co;
  co.num_features = d;
  co.num_classes = k;
  std::vector<std::unique_ptr<Concept>> cs;
  cs.push_back(std::make_unique<RbfConcept>(co, 1));
  for (size_t i = 0; i < events.size(); ++i) {
    cs.push_back(std::make_unique<RbfConcept>(co, concept_seed_b + i));
  }
  ImbalanceSchedule::Options io;
  io.num_classes = k;
  io.base_ir = ir;
  return std::make_unique<DriftingClassStream>(std::move(cs), std::move(events),
                                               ImbalanceSchedule(io), seed);
}

struct RunStats {
  int detections = 0;
  int hits = 0;  ///< Detections within [drift, drift + slack).
  long long first_delay = -1;
  std::vector<int> last_flagged;
};

RunStats Drive(DriftingClassStream* stream, RbmIm* det, uint64_t n,
               uint64_t drift_at, uint64_t slack) {
  RunStats out;
  for (uint64_t i = 0; i < n; ++i) {
    Instance inst = stream->Next();
    det->Observe(inst, inst.label, {});
    if (det->state() == DetectorState::kDrift) {
      ++out.detections;
      out.last_flagged = det->drifted_classes();
      if (i >= drift_at && i < drift_at + slack) {
        ++out.hits;
        if (out.first_delay < 0) {
          out.first_delay = static_cast<long long>(i - drift_at);
        }
      }
    }
  }
  return out;
}

TEST(RbmImTest, QuietOnStationaryStream) {
  auto stream = MakeStream(10, 4, 15.0, {}, 7);
  RbmIm det(DetectorParams(10, 4), 7);
  RunStats s = Drive(stream.get(), &det, 40000, 1 << 30, 0);
  // The CUSUM stage trades a small stationary false-alarm rate (here ~1 per
  // 13k instances) for sensitivity to minority-class drift; see DESIGN.md.
  EXPECT_LE(s.detections, 5);
}

TEST(RbmImTest, DetectsSuddenGlobalDrift) {
  DriftEvent ev;
  ev.start = 15000;
  ev.type = DriftType::kSudden;
  auto stream = MakeStream(12, 5, 20.0, {ev}, 7);
  RbmIm det(DetectorParams(12, 5), 7);
  RunStats s = Drive(stream.get(), &det, 30000, 15000, 5000);
  EXPECT_GE(s.hits, 1);
  EXPECT_LT(s.first_delay, 2000);
  EXPECT_LE(s.detections - s.hits, 2);  // Few false alarms.
}

TEST(RbmImTest, DetectsLocalDriftOnSingleMinorityClass) {
  DriftEvent ev;
  ev.start = 15000;
  ev.type = DriftType::kSudden;
  ev.affected = {4};  // Smallest class only (geometric ladder).
  auto stream = MakeStream(12, 5, 20.0, {ev}, 7);
  RbmIm det(DetectorParams(12, 5), 7);
  // Collect the flagged classes of every detection inside the drift window.
  std::vector<int> flagged;
  int hits = 0;
  for (uint64_t i = 0; i < 30000; ++i) {
    Instance inst = stream->Next();
    det.Observe(inst, inst.label, {});
    if (det.state() == DetectorState::kDrift && i >= 15000 && i < 23000) {
      ++hits;
      for (int k : det.drifted_classes()) flagged.push_back(k);
    }
  }
  ASSERT_GE(hits, 1);
  // The flagged set of in-window detections must include the drifted class.
  bool found = false;
  for (int k : flagged) found |= (k == 4);
  EXPECT_TRUE(found);
}

TEST(RbmImTest, LocalizationNamesAffectedNotStableClasses) {
  DriftEvent ev;
  ev.start = 12000;
  ev.type = DriftType::kSudden;
  ev.affected = {3, 4};
  auto stream = MakeStream(10, 5, 10.0, {ev}, 11);
  RbmIm det(DetectorParams(10, 5), 11);
  std::vector<int> flagged_during_drift;
  for (uint64_t i = 0; i < 30000; ++i) {
    Instance inst = stream->Next();
    det.Observe(inst, inst.label, {});
    if (det.state() == DetectorState::kDrift && i >= 12000 && i < 20000) {
      for (int k : det.drifted_classes()) flagged_during_drift.push_back(k);
    }
  }
  ASSERT_FALSE(flagged_during_drift.empty());
  int on_target = 0;
  for (int k : flagged_during_drift) on_target += (k == 3 || k == 4);
  // Majority of flags point at the truly drifted classes.
  EXPECT_GE(on_target * 2, static_cast<int>(flagged_during_drift.size()));
}

TEST(RbmImTest, HandlesExtremeImbalance) {
  DriftEvent ev;
  ev.start = 20000;
  ev.type = DriftType::kSudden;
  auto stream = MakeStream(10, 5, 400.0, {ev}, 13);
  RbmIm det(DetectorParams(10, 5), 13);
  RunStats s = Drive(stream.get(), &det, 40000, 20000, 10000);
  EXPECT_GE(s.hits, 1);  // Still reactive at IR=400.
}

TEST(RbmImTest, RearmsForRepeatedDrifts) {
  DriftEvent e1, e2;
  e1.start = 12000;
  e1.type = DriftType::kSudden;
  e2.start = 24000;
  e2.type = DriftType::kSudden;
  auto stream = MakeStream(10, 4, 10.0, {e1, e2}, 17);
  RbmIm det(DetectorParams(10, 4), 17);
  int hits1 = 0, hits2 = 0;
  for (uint64_t i = 0; i < 36000; ++i) {
    Instance inst = stream->Next();
    det.Observe(inst, inst.label, {});
    if (det.state() == DetectorState::kDrift) {
      if (i >= 12000 && i < 18000) ++hits1;
      if (i >= 24000 && i < 30000) ++hits2;
    }
  }
  EXPECT_GE(hits1, 1);
  EXPECT_GE(hits2, 1);
}

TEST(RbmImTest, DriftStateIsStickyForOneObservation) {
  DriftEvent ev;
  ev.start = 10000;
  ev.type = DriftType::kSudden;
  auto stream = MakeStream(10, 3, 5.0, {ev}, 19);
  RbmIm det(DetectorParams(10, 3), 19);
  for (uint64_t i = 0; i < 20000; ++i) {
    Instance inst = stream->Next();
    det.Observe(inst, inst.label, {});
    if (det.state() == DetectorState::kDrift) {
      EXPECT_FALSE(det.drifted_classes().empty());
      Instance next = stream->Next();
      det.Observe(next, next.label, {});
      // One more observation clears the sticky signal (a fresh drift on the
      // very next batch boundary is possible but requires a batch to
      // complete; mid-batch the state must be stable).
      if ((det.batches_processed() * 50) % 50 != 0) {
        EXPECT_NE(det.state(), DetectorState::kDrift);
      }
      break;
    }
  }
}

TEST(RbmImTest, ResetReinitializesEverything) {
  auto stream = MakeStream(8, 3, 5.0, {}, 21);
  RbmIm det(DetectorParams(8, 3), 21);
  for (uint64_t i = 0; i < 5000; ++i) {
    Instance inst = stream->Next();
    det.Observe(inst, inst.label, {});
  }
  EXPECT_GT(det.batches_processed(), 0u);
  det.Reset();
  EXPECT_EQ(det.batches_processed(), 0u);
  EXPECT_EQ(det.state(), DetectorState::kStable);
}

TEST(RbmImTest, TriggerVariantsAllFunctional) {
  for (RbmIm::Trigger trig :
       {RbmIm::Trigger::kCombined, RbmIm::Trigger::kZScore,
        RbmIm::Trigger::kAdwinOnly, RbmIm::Trigger::kGranger}) {
    DriftEvent ev;
    ev.start = 15000;
    ev.type = DriftType::kSudden;
    auto stream = MakeStream(10, 4, 10.0, {ev}, 23);
    RbmIm::Params p = DetectorParams(10, 4);
    p.trigger = trig;
    RbmIm det(p, 23);
    RunStats s = Drive(stream.get(), &det, 30000, 15000, 10000);
    // Every variant must run clean; the sensitive variants must also hit.
    if (trig == RbmIm::Trigger::kCombined || trig == RbmIm::Trigger::kZScore) {
      EXPECT_GE(s.hits, 1) << "trigger variant " << static_cast<int>(trig);
    }
  }
}

TEST(RbmImTest, BatchSizeGridFunctional) {
  // Table II: M in {25, 50, 75, 100} — all batch sizes must detect.
  for (int batch : {25, 50, 75, 100}) {
    DriftEvent ev;
    ev.start = 15000;
    ev.type = DriftType::kSudden;
    auto stream = MakeStream(10, 4, 10.0, {ev}, 29);
    RbmIm::Params p = DetectorParams(10, 4);
    p.batch_size = batch;
    RbmIm det(p, 29);
    RunStats s = Drive(stream.get(), &det, 30000, 15000, 10000);
    EXPECT_GE(s.hits, 1) << "batch size " << batch;
  }
}

TEST(RbmImTest, WorksOnRegistryStream) {
  const StreamSpec* spec = FindStreamSpec("RBF5");
  ASSERT_NE(spec, nullptr);
  BuildOptions o;
  o.scale = 0.03;
  o.seed = 31;
  BuiltStream built = BuildStream(*spec, o);
  RbmIm det(DetectorParams(spec->num_features, spec->num_classes), 31);
  int in_window = 0, total = 0;
  for (uint64_t i = 0; i < built.length; ++i) {
    Instance inst = built.stream->Next();
    det.Observe(inst, inst.label, {});
    if (det.state() == DetectorState::kDrift) {
      ++total;
      for (const DriftEvent& ev : built.stream->events()) {
        if (i >= ev.start && i < ev.start + built.length / 8) {
          ++in_window;
          break;
        }
      }
    }
  }
  EXPECT_GE(in_window, 1);
  EXPECT_LE(total - in_window, 3);
}

TEST(RbmImTest, RejectsInstanceWiderThanDeclaredSchema) {
  // Regression: RBM-IM feeds raw stream features to its MinMaxNormalizer,
  // which is sized for Params::num_features — a wider instance used to
  // read and write past the bounds arrays; it now throws.
  RbmIm det(DetectorParams(4, 3), /*seed=*/1);
  Instance ok(std::vector<double>(4, 0.5), 0);
  det.Observe(ok, 0, {});
  Instance bad(std::vector<double>(7, 0.5), 0);
  EXPECT_THROW(det.Observe(bad, 0, {}), std::invalid_argument);
}

}  // namespace
}  // namespace ccd
