// End-to-end integration tests: registry streams -> base classifier ->
// detector -> prequential metrics, exercising the exact pipeline the
// benchmark harnesses run.

#include <gtest/gtest.h>

#include <memory>

#include "classifiers/cs_perceptron_tree.h"
#include "core/rbm_im.h"
#include "detectors/ddm_oci.h"
#include "detectors/fhddm.h"
#include "detectors/perfsim.h"
#include "eval/prequential.h"
#include "generators/registry.h"

namespace ccd {
namespace {

PrequentialResult RunPipeline(const std::string& stream_name,
                              const std::string& detector, double scale,
                              BuildOptions base = {}) {
  const StreamSpec* spec = FindStreamSpec(stream_name);
  EXPECT_NE(spec, nullptr) << stream_name;
  base.scale = scale;
  BuiltStream built = BuildStream(*spec, base);

  CsPerceptronTree classifier(built.stream->schema());
  std::unique_ptr<DriftDetector> det;
  if (detector == "RBM-IM") {
    RbmIm::Params p;
    p.num_features = spec->num_features;
    p.num_classes = spec->num_classes;
    det = std::make_unique<RbmIm>(p, base.seed);
  } else if (detector == "DDM-OCI") {
    DdmOci::Params p;
    p.num_classes = spec->num_classes;
    det = std::make_unique<DdmOci>(p);
  } else if (detector == "PerfSim") {
    PerfSim::Params p;
    p.num_classes = spec->num_classes;
    det = std::make_unique<PerfSim>(p);
  } else if (detector == "FHDDM") {
    det = std::make_unique<Fhddm>();
  }

  PrequentialConfig cfg;
  cfg.max_instances = built.length;
  cfg.warmup = 500;
  return RunPrequential(built.stream.get(), &classifier, det.get(), cfg);
}

TEST(IntegrationTest, Rbf5PipelineWithRbmIm) {
  PrequentialResult r = RunPipeline("RBF5", "RBM-IM", 0.02);
  EXPECT_GT(r.mean_pmauc, 0.75);  // RBF concepts are learnable.
  EXPECT_GT(r.mean_pmgm, 0.3);
  EXPECT_GE(r.drifts, 1u);   // Three injected drifts.
  EXPECT_LE(r.drifts, 25u);  // Not thrashing.
}

TEST(IntegrationTest, AllPaperDetectorsRunOnMulticlassStream) {
  for (const char* det : {"RBM-IM", "DDM-OCI", "PerfSim", "FHDDM"}) {
    PrequentialResult r = RunPipeline("RBF10", det, 0.008);
    EXPECT_GT(r.mean_pmauc, 0.5) << det;
    EXPECT_EQ(r.instances, 8000u) << det;
  }
}

TEST(IntegrationTest, RealWorldSubstituteRuns) {
  PrequentialResult r = RunPipeline("Gas", "RBM-IM", 0.6);
  EXPECT_GT(r.mean_pmauc, 0.5);
  EXPECT_GT(r.instances, 8000u);
}

TEST(IntegrationTest, TwoClassStreamRuns) {
  // Binary streams (EEG/Electricity substitutes) exercise the K=2 paths.
  PrequentialResult r = RunPipeline("Electricity", "RBM-IM", 0.25);
  EXPECT_GT(r.mean_pmauc, 0.5);
}

TEST(IntegrationTest, ManyClassStreamRuns) {
  // Crimes substitute has 39 classes: stresses per-class monitors.
  PrequentialResult r = RunPipeline("Crimes", "RBM-IM", 0.01);
  EXPECT_GT(r.mean_pmauc, 0.5);
}

TEST(IntegrationTest, LocalDriftExperimentPath) {
  // Experiment 2 configuration: only the smallest class drifts.
  BuildOptions o;
  o.local_drift_classes = 1;
  PrequentialResult r = RunPipeline("RBF5", "RBM-IM", 0.02, o);
  EXPECT_GT(r.mean_pmauc, 0.7);
}

TEST(IntegrationTest, IrSweepExperimentPath) {
  // Experiment 3 configuration: IR override at 500.
  BuildOptions o;
  o.ir_override = 500.0;
  PrequentialResult r = RunPipeline("RBF5", "RBM-IM", 0.02, o);
  EXPECT_GT(r.mean_pmauc, 0.6);
}

TEST(IntegrationTest, RoleSwitchingScenarioRuns) {
  // Scenario 2: dynamic IR with rotating class roles.
  BuildOptions o;
  o.role_switching = true;
  PrequentialResult r = RunPipeline("RBF5", "RBM-IM", 0.02, o);
  EXPECT_GT(r.mean_pmauc, 0.6);
  EXPECT_EQ(r.instances, 20000u);
}

}  // namespace
}  // namespace ccd
