// End-to-end integration tests: registry streams -> base classifier ->
// detector -> prequential metrics, composed exclusively through the
// public ccd::api layer — the exact pipeline the benchmark harnesses run.

#include <gtest/gtest.h>

#include "api/api.h"

namespace ccd {
namespace {

PrequentialResult RunPipeline(const std::string& stream_name,
                              const std::string& detector, double scale,
                              BuildOptions base = {}) {
  base.scale = scale;
  return api::Experiment()
      .Stream(stream_name)
      .Options(base)
      .Detector(detector)
      .Run();
}

TEST(IntegrationTest, Rbf5PipelineWithRbmIm) {
  PrequentialResult r = RunPipeline("RBF5", "RBM-IM", 0.02);
  EXPECT_GT(r.mean_pmauc, 0.75);  // RBF concepts are learnable.
  EXPECT_GT(r.mean_pmgm, 0.3);
  EXPECT_GE(r.drifts, 1u);   // Three injected drifts.
  EXPECT_LE(r.drifts, 25u);  // Not thrashing.
}

TEST(IntegrationTest, AllPaperDetectorsRunOnMulticlassStream) {
  for (const char* det : {"RBM-IM", "DDM-OCI", "PerfSim", "FHDDM"}) {
    PrequentialResult r = RunPipeline("RBF10", det, 0.008);
    EXPECT_GT(r.mean_pmauc, 0.5) << det;
    EXPECT_EQ(r.instances, 8000u) << det;
  }
}

TEST(IntegrationTest, RealWorldSubstituteRuns) {
  PrequentialResult r = RunPipeline("Gas", "RBM-IM", 0.6);
  EXPECT_GT(r.mean_pmauc, 0.5);
  EXPECT_GT(r.instances, 8000u);
}

TEST(IntegrationTest, TwoClassStreamRuns) {
  // Binary streams (EEG/Electricity substitutes) exercise the K=2 paths.
  PrequentialResult r = RunPipeline("Electricity", "RBM-IM", 0.25);
  EXPECT_GT(r.mean_pmauc, 0.5);
}

TEST(IntegrationTest, ManyClassStreamRuns) {
  // Crimes substitute has 39 classes: stresses per-class monitors.
  PrequentialResult r = RunPipeline("Crimes", "RBM-IM", 0.01);
  EXPECT_GT(r.mean_pmauc, 0.5);
}

TEST(IntegrationTest, LocalDriftExperimentPath) {
  // Experiment 2 configuration: only the smallest class drifts.
  BuildOptions o;
  o.local_drift_classes = 1;
  PrequentialResult r = RunPipeline("RBF5", "RBM-IM", 0.02, o);
  EXPECT_GT(r.mean_pmauc, 0.7);
}

TEST(IntegrationTest, IrSweepExperimentPath) {
  // Experiment 3 configuration: IR override at 500.
  BuildOptions o;
  o.ir_override = 500.0;
  PrequentialResult r = RunPipeline("RBF5", "RBM-IM", 0.02, o);
  EXPECT_GT(r.mean_pmauc, 0.6);
}

TEST(IntegrationTest, RoleSwitchingScenarioRuns) {
  // Scenario 2: dynamic IR with rotating class roles.
  BuildOptions o;
  o.role_switching = true;
  PrequentialResult r = RunPipeline("RBF5", "RBM-IM", 0.02, o);
  EXPECT_GT(r.mean_pmauc, 0.6);
  EXPECT_EQ(r.instances, 20000u);
}

}  // namespace
}  // namespace ccd
