// The fluent Experiment builder: run composition, defaults, overrides,
// and the error paths that replaced the old silent-nullptr factories.

#include <gtest/gtest.h>

#include "api/api.h"

namespace ccd {
namespace {

TEST(ApiExperimentTest, FluentRunProducesResult) {
  // Tiny scale floors at 4000 instances (the registry's documented floor).
  PrequentialResult r = api::Experiment()
                            .Stream("RBF5")
                            .Scale(0.001)
                            .Seed(42)
                            .Detector("FHDDM")
                            .Run();
  EXPECT_EQ(r.instances, 4000u);
  EXPECT_GT(r.mean_pmauc, 0.5);
  EXPECT_GT(r.mean_accuracy, 0.0);
}

TEST(ApiExperimentTest, NoDetectorBaselineRuns) {
  PrequentialResult r =
      api::Experiment().Stream("RBF5").Scale(0.001).NoDetector().Run();
  EXPECT_EQ(r.instances, 4000u);
  EXPECT_EQ(r.drifts, 0u);
}

TEST(ApiExperimentTest, DetectorAndClassifierOverridesApply) {
  PrequentialResult r = api::Experiment()
                            .Stream("RBF5")
                            .Scale(0.001)
                            .Classifier("cs-ptree", {"grace_period=100"})
                            .Detector("RBM-IM", {"batch_size=25",
                                                 "trigger=granger"})
                            .Run();
  EXPECT_EQ(r.instances, 4000u);
  EXPECT_GT(r.mean_pmauc, 0.0);
}

TEST(ApiExperimentTest, AlternativeClassifierRuns) {
  PrequentialResult r = api::Experiment()
                            .Stream("RBF5")
                            .Scale(0.001)
                            .Classifier("naive-bayes")
                            .Detector("DDM")
                            .Run();
  EXPECT_EQ(r.instances, 4000u);
  EXPECT_GT(r.mean_pmauc, 0.5);
}

TEST(ApiExperimentTest, ExplicitPrequentialConfigIsHonored) {
  PrequentialConfig cfg;
  cfg.max_instances = 2000;
  cfg.warmup = 100;
  PrequentialResult r = api::Experiment()
                            .Stream("RBF5")
                            .Scale(0.001)
                            .Detector("FHDDM")
                            .Prequential(cfg)
                            .Run();
  EXPECT_EQ(r.instances, 2000u);
}

TEST(ApiExperimentTest, ZeroMaxInstancesMeansFullStream) {
  PrequentialConfig cfg;
  cfg.max_instances = 0;
  PrequentialResult r =
      api::Experiment().Stream("RBF5").Scale(0.001).Prequential(cfg).Run();
  EXPECT_EQ(r.instances, 4000u);
}

TEST(ApiExperimentTest, BuildExposesComponentsForCustomLoops) {
  api::Experiment::Built b = api::Experiment()
                                 .Stream("RBF10")
                                 .Scale(0.001)
                                 .Detector("DDM-OCI")
                                 .Build();
  ASSERT_NE(b.stream.stream, nullptr);
  ASSERT_NE(b.classifier, nullptr);
  ASSERT_NE(b.detector, nullptr);
  EXPECT_EQ(b.detector->name(), "DDM-OCI");
  EXPECT_EQ(b.stream.stream->schema().num_classes, 10);
  EXPECT_EQ(b.config.max_instances, b.stream.length);
}

TEST(ApiExperimentTest, UnknownStreamErrorListsRegisteredStreams) {
  try {
    api::Experiment().Stream("RBF7");
    FAIL() << "expected ApiError";
  } catch (const api::ApiError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("RBF7"), std::string::npos);
    EXPECT_NE(msg.find("RBF5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("Electricity"), std::string::npos) << msg;
  }
}

TEST(ApiExperimentTest, UnknownDetectorSurfacesAtBuild) {
  api::Experiment e;
  e.Stream("RBF5").Scale(0.001).Detector("WSTD2");
  EXPECT_THROW(e.Run(), api::ApiError);
}

TEST(ApiExperimentTest, MissingStreamIsAnError) {
  EXPECT_THROW(api::Experiment().Run(), api::ApiError);
}

TEST(ApiExperimentTest, DegenerateProtocolRejectedAtBuild) {
  // Companion to RunPrequential's own validation: the builder reports a
  // degenerate protocol as an ApiError at Build(), where it was composed.
  PrequentialConfig bad;
  bad.eval_interval = 0;
  api::Experiment e;
  e.Stream("RBF5").Scale(0.001).Prequential(bad);
  EXPECT_THROW(e.Build(), api::ApiError);

  bad = PrequentialConfig{};
  bad.metric_window = -1;
  api::Experiment e2;
  e2.Stream("RBF5").Scale(0.001).Prequential(bad);
  EXPECT_THROW(e2.Run(), api::ApiError);
}

TEST(ApiExperimentTest, MatchesDirectPipelineComposition) {
  // The builder is sugar, not a different pipeline: the same (spec,
  // options, components) must reproduce the same result numbers.
  const StreamSpec* spec = FindStreamSpec("RBF5");
  ASSERT_NE(spec, nullptr);
  BuildOptions options;
  options.scale = 0.001;
  options.seed = 7;

  BuiltStream built = BuildStream(*spec, options);
  auto clf = api::MakeClassifier("cs-ptree", built.stream->schema());
  auto det = api::MakeDetector("FHDDM", built.stream->schema(), options.seed);
  PrequentialConfig cfg;
  cfg.max_instances = built.length;
  cfg.metric_window = 1000;
  cfg.eval_interval = 250;
  cfg.warmup = 500;
  PrequentialResult direct =
      RunPrequential(built.stream.get(), clf.get(), det.get(), cfg);

  PrequentialResult fluent = api::Experiment()
                                 .Stream(*spec)
                                 .Options(options)
                                 .Detector("FHDDM")
                                 .Run();
  EXPECT_DOUBLE_EQ(fluent.mean_pmauc, direct.mean_pmauc);
  EXPECT_DOUBLE_EQ(fluent.mean_pmgm, direct.mean_pmgm);
  EXPECT_EQ(fluent.instances, direct.instances);
  EXPECT_EQ(fluent.drifts, direct.drifts);
}

}  // namespace
}  // namespace ccd
