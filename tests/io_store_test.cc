// Snapshot persistence (io/snapshot_store.h + ShardedMonitor::Persist/
// Open) — the crash-safety harness: atomic writes, generation turnover,
// reopen-bit-identical serving, and the headline test, a child process
// SIGKILLed at an arbitrary moment mid-serving whose reopened monitor
// continues exactly like an uninterrupted oracle. Every corruption of
// the on-disk artifacts must surface as io::WireError.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "api/api.h"
#include "api/sharded_monitor.h"
#include "io/schema_check.h"
#include "io/snapshot_store.h"
#include "io/state_codec.h"
#include "io/wire.h"
#include "testing_util.h"

namespace ccd {
namespace {

using test_util::ExpectBitIdentical;
using test_util::ExpectSnapshotEq;
using test_util::MakeRbfDriftStream;
using test_util::ShortConfig;

/// A fresh, unique scratch directory per test invocation.
std::string ScratchDir(const std::string& name) {
  return ::testing::TempDir() + "ccd-" + name + "-" +
         std::to_string(::getpid());
}

void RemoveTree(const std::string& dir) {
  io::SnapshotStore store(dir);
  for (const std::string& name : store.List()) store.Remove(name);
  ::rmdir(dir.c_str());
}

// ---------------------------------------------------------- SnapshotStore

TEST(SnapshotStoreTest, WriteReadRemoveListRoundTrip) {
  const std::string dir = ScratchDir("store-basic");
  io::SnapshotStore store(dir);
  const std::string payload("\x00\x01\xFFhello", 8);
  store.Write("a.state", payload);
  store.Write("b.state", "other");
  EXPECT_TRUE(store.Exists("a.state"));
  EXPECT_EQ(store.Read("a.state"), payload);
  EXPECT_EQ(store.List(), (std::vector<std::string>{"a.state", "b.state"}));

  // Overwrite is atomic-replace, not append.
  store.Write("a.state", "v2");
  EXPECT_EQ(store.Read("a.state"), "v2");

  store.Remove("a.state");
  EXPECT_FALSE(store.Exists("a.state"));
  store.Remove("a.state");  // Idempotent.
  EXPECT_EQ(store.List(), (std::vector<std::string>{"b.state"}));
  RemoveTree(dir);
}

TEST(SnapshotStoreTest, FailureModesAreTypedErrors) {
  const std::string dir = ScratchDir("store-errors");
  io::SnapshotStore store(dir);
  EXPECT_THROW(store.Read("absent"), io::WireError);
  EXPECT_THROW(store.Write("nested/name", "x"), io::WireError);
  EXPECT_THROW(store.Write("..", "x"), io::WireError);
  EXPECT_THROW(store.Write("", "x"), io::WireError);
  // A path that exists as a *file* cannot become a store.
  store.Write("plain", "data");
  EXPECT_THROW(io::SnapshotStore(dir + "/plain"), io::WireError);
  RemoveTree(dir);
}

// ------------------------------------------------- keyed serving schedule

struct KeyedFeed {
  uint64_t key = 0;
  Instance instance;
};

/// Deterministic Feed-only schedule: with immediate labels every push
/// completes, so the monitor's total position *is* the schedule index —
/// the property the crash-restart test uses to find its resume point.
std::vector<KeyedFeed> MakeSchedule(size_t count, uint64_t seed) {
  auto stream = MakeRbfDriftStream(count / 2, seed);
  const std::vector<Instance> data = Take(stream.get(), count);
  std::vector<KeyedFeed> schedule(count);
  for (size_t i = 0; i < count; ++i) {
    schedule[i].key = 1000 + (i * 7919) % 97;  // Spread over the shards.
    schedule[i].instance = data[i];
  }
  return schedule;
}

api::ShardedMonitor BuildMonitor(int shards) {
  StreamSchema schema = MakeRbfDriftStream(10, 1)->schema();
  PrequentialConfig cfg = ShortConfig();
  cfg.warmup = 100;
  return api::ShardedMonitorBuilder()
      .Schema(schema)
      .Classifier("naive-bayes")
      .Detector("DDM")
      .Seed(42)
      .Shards(shards)
      .Protocol(cfg)
      .Build();
}

void ExpectMonitorsEqual(const api::ShardedMonitor& a,
                         const api::ShardedMonitor& b) {
  ASSERT_EQ(a.shards(), b.shards());
  for (int i = 0; i < a.shards(); ++i) {
    SCOPED_TRACE("shard " + std::to_string(i));
    ExpectSnapshotEq(a.ShardSnapshot(i), b.ShardSnapshot(i));
  }
  ExpectBitIdentical(a.Result(), b.Result());
}

// ------------------------------------------------------- Persist() / Open()

// Persist mid-serving, reopen, continue both monitors on the identical
// remaining schedule: the reopened monitor must be bit-identical —
// per-shard snapshots included — to the one that never stopped.
TEST(PersistOpenTest, ReopenedMonitorContinuesBitIdentically) {
  const std::string dir = ScratchDir("persist-open");
  const std::vector<KeyedFeed> schedule = MakeSchedule(1400, 11);

  api::ShardedMonitor original = BuildMonitor(3);
  for (size_t i = 0; i < 900; ++i) {
    original.Feed(schedule[i].key, schedule[i].instance);
  }
  original.Persist(dir);
  api::ShardedMonitor reopened = api::ShardedMonitor::Open(dir);
  EXPECT_EQ(reopened.position(), original.position());

  for (size_t i = 900; i < schedule.size(); ++i) {
    original.Feed(schedule[i].key, schedule[i].instance);
    reopened.Feed(schedule[i].key, schedule[i].instance);
  }
  ExpectMonitorsEqual(original, reopened);
  RemoveTree(dir);
}

// Re-persisting writes a new generation and retires the old one only
// after the new manifest committed; the directory never holds a mix.
TEST(PersistOpenTest, RepersistTurnsOverGenerations) {
  const std::string dir = ScratchDir("persist-gen");
  const std::vector<KeyedFeed> schedule = MakeSchedule(600, 13);

  api::ShardedMonitor monitor = BuildMonitor(2);
  for (size_t i = 0; i < 300; ++i) {
    monitor.Feed(schedule[i].key, schedule[i].instance);
  }
  monitor.Persist(dir);
  io::SnapshotStore store(dir);
  io::Manifest first = io::DecodeManifest(store.Read(io::kManifestName));
  EXPECT_EQ(first.generation, 1u);

  for (size_t i = 300; i < schedule.size(); ++i) {
    monitor.Feed(schedule[i].key, schedule[i].instance);
  }
  monitor.Persist(dir);
  io::Manifest second = io::DecodeManifest(store.Read(io::kManifestName));
  EXPECT_EQ(second.generation, 2u);

  // Exactly the manifest + the new generation's shard files remain.
  std::vector<std::string> expected{io::kManifestName};
  for (const io::Manifest::ShardFile& f : second.shards) {
    expected.push_back(f.file);
    EXPECT_NE(f.file.find("-g2."), std::string::npos);
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(store.List(), expected);

  // A reopened second generation carries the full history.
  api::ShardedMonitor reopened = api::ShardedMonitor::Open(dir);
  EXPECT_EQ(reopened.position(), schedule.size());
  RemoveTree(dir);
}

TEST(PersistOpenTest, CorruptedArtifactsAreTypedErrors) {
  const std::string dir = ScratchDir("persist-corrupt");
  const std::vector<KeyedFeed> schedule = MakeSchedule(400, 17);
  api::ShardedMonitor monitor = BuildMonitor(2);
  for (const KeyedFeed& f : schedule) monitor.Feed(f.key, f.instance);
  monitor.Persist(dir);

  io::SnapshotStore store(dir);
  io::Manifest manifest = io::DecodeManifest(store.Read(io::kManifestName));

  // Swapping two shard files is caught even though both are internally
  // valid envelopes: the manifest CRCs are seeded with the shard index.
  const std::string a = store.Read(manifest.shards[0].file);
  const std::string b = store.Read(manifest.shards[1].file);
  store.Write(manifest.shards[0].file, b);
  store.Write(manifest.shards[1].file, a);
  EXPECT_THROW(api::ShardedMonitor::Open(dir), io::WireError);
  store.Write(manifest.shards[0].file, a);
  store.Write(manifest.shards[1].file, b);

  // Flip one byte in a shard file: the manifest CRC check rejects it
  // before a byte of the image is decoded.
  const std::string name = manifest.shards[0].file;
  std::string bytes = store.Read(name);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  store.Write(name, bytes);
  EXPECT_THROW(api::ShardedMonitor::Open(dir), io::WireError);

  // A missing shard file fails typed, too.
  store.Remove(name);
  EXPECT_THROW(api::ShardedMonitor::Open(dir), io::WireError);

  // And an absent / foreign manifest.
  store.Write(io::kManifestName, "not an envelope");
  EXPECT_THROW(api::ShardedMonitor::Open(dir), io::WireError);
  store.Remove(io::kManifestName);
  EXPECT_THROW(api::ShardedMonitor::Open(dir), io::WireError);
  RemoveTree(dir);
}

// ------------------------------------------------------ schema conformance

// statedump --schema / CheckStateSchema: serialized images must conform
// to the wire grammars the static auditor pinned in tools/wire_schema.json
// (path injected by CMake as CCD_WIRE_SCHEMA_PATH).

std::string ReadCommittedManifest() {
  std::ifstream in(CCD_WIRE_SCHEMA_PATH);
  EXPECT_TRUE(in.good()) << "missing " << CCD_WIRE_SCHEMA_PATH;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(WireSchemaCheckTest, SerializedShardMatchesAuditedGrammar) {
  const std::map<std::string, std::string> schema =
      io::ParseWireSchema(ReadCommittedManifest());
  api::ShardedMonitor monitor = BuildMonitor(2);
  for (const KeyedFeed& f : MakeSchedule(400, 31)) {
    monitor.Feed(f.key, f.instance);
  }
  const io::SchemaCheckReport report =
      io::CheckStateSchema(monitor.SerializeShard(0), schema);
  EXPECT_TRUE(report.ok()) << (report.errors.empty()
                                   ? "no audited section found"
                                   : report.errors.front());
  // The image embeds at least the classifier (GaussianNB) and detector
  // (DDM) sections — both must have been found and matched.
  EXPECT_GE(report.sections_matched, 2);
}

// A manifest whose pattern no longer matches what the code writes — the
// corrupted / stale-manifest case — must be reported per section, and a
// blob containing *no* audited section must not pass vacuously.
TEST(WireSchemaCheckTest, CorruptedManifestIsCaught) {
  api::ShardedMonitor monitor = BuildMonitor(2);
  for (const KeyedFeed& f : MakeSchedule(200, 37)) {
    monitor.Feed(f.key, f.instance);
  }
  const std::string image = monitor.SerializeShard(0);

  std::map<std::string, std::string> doctored =
      io::ParseWireSchema(ReadCommittedManifest());
  ASSERT_EQ(doctored.count("DDM"), 1u);
  doctored["DDM"] = "^qqq$";  // DDM actually writes ^ddibiddd$.
  const io::SchemaCheckReport report = io::CheckStateSchema(image, doctored);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors.front().find("DDM"), std::string::npos);

  const io::SchemaCheckReport vacuous =
      io::CheckStateSchema(image, {{"NoSuchSection", "^d$"}});
  EXPECT_FALSE(vacuous.ok());

  // Bytes that are not an envelope fail at the seal, not with a crash.
  const io::SchemaCheckReport garbage = io::CheckStateSchema(
      "garbage", io::ParseWireSchema(ReadCommittedManifest()));
  EXPECT_FALSE(garbage.ok());
}

// A mangled manifest file fails loudly at parse time instead of silently
// checking nothing.
TEST(WireSchemaCheckTest, MalformedManifestThrows) {
  EXPECT_THROW(io::ParseWireSchema("{\"classes\": {\"A\": "),
               std::runtime_error);
  EXPECT_THROW(io::ParseWireSchema("{\"wire_version\": 1}"),
               std::runtime_error);
  EXPECT_THROW(io::ParseWireSchema("not json at all"), std::runtime_error);
}

// ------------------------------------------------------ SIGKILL the child

// The headline crash test: a child process serves the schedule, persisting
// every 128 feeds, and is SIGKILLed — no atexit, no destructors, no
// flushing — at whatever instant the parent's trigger lands (including,
// sometimes, mid-Persist). The reopened directory must (a) decode
// cleanly at *some* persisted cut ≤ the kill point, and (b) continuing
// the remaining schedule from that cut must be bit-identical to an
// uninterrupted oracle over the full schedule.
TEST(CrashRestartTest, KilledChildReopensAndContinuesBitIdentically) {
  const std::string dir = ScratchDir("crash-restart");
  constexpr size_t kTotal = 2000;
  constexpr size_t kEvery = 128;
  const std::vector<KeyedFeed> schedule = MakeSchedule(kTotal, 23);

  pid_t child = ::fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    // Child: single-threaded serving loop; persists every kEvery feeds.
    // _exit on every path — gtest must not run twice.
    try {
      api::ShardedMonitor monitor = BuildMonitor(3);
      for (size_t i = 0; i < schedule.size(); ++i) {
        monitor.Feed(schedule[i].key, schedule[i].instance);
        if ((i + 1) % kEvery == 0) monitor.Persist(dir);
      }
      // Finished before the kill landed — still a valid crash point
      // (the parent resumes from the last persisted cut either way).
      for (;;) ::pause();
    } catch (...) {
      ::_exit(13);
    }
  }

  // Parent: wait until a few generations are durable, then kill -9.
  uint64_t seen_generation = 0;
  for (int spin = 0; spin < 20000; ++spin) {
    try {
      io::SnapshotStore store(dir);
      if (store.Exists(io::kManifestName)) {
        seen_generation =
            io::DecodeManifest(store.Read(io::kManifestName)).generation;
      }
    } catch (const io::WireError&) {
      // Mid-rename or not yet written — keep polling.
    }
    if (seen_generation >= 5) break;
    ::usleep(1000);
  }
  ASSERT_GE(seen_generation, 5u) << "child never persisted far enough";
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Reopen: must decode cleanly at a persisted cut on a feed boundary.
  api::ShardedMonitor reopened = api::ShardedMonitor::Open(dir);
  const uint64_t resumed_at = reopened.position();
  ASSERT_GT(resumed_at, 0u);
  ASSERT_LE(resumed_at, kTotal);
  ASSERT_EQ(resumed_at % kEvery, 0u)
      << "persisted cut must align with a Persist() call";

  // Continue the schedule from the cut; compare against the oracle that
  // was never interrupted (and never persisted).
  for (size_t i = resumed_at; i < schedule.size(); ++i) {
    reopened.Feed(schedule[i].key, schedule[i].instance);
  }
  api::ShardedMonitor oracle = BuildMonitor(3);
  for (const KeyedFeed& f : schedule) oracle.Feed(f.key, f.instance);
  ExpectMonitorsEqual(oracle, reopened);
  RemoveTree(dir);
}

// ------------------------------------------- SerializeShard/RestoreShard

// The in-process half of shard migration: serialize a live shard of A,
// restore it into B (same identity), and B's shard must continue exactly
// like A's would have.
TEST(ShardMigrationTest, SerializedShardRestoresBitIdentically) {
  const std::vector<KeyedFeed> schedule = MakeSchedule(1000, 29);
  api::ShardedMonitor a = BuildMonitor(2);
  api::ShardedMonitor b = BuildMonitor(2);
  for (size_t i = 0; i < 700; ++i) {
    a.Feed(schedule[i].key, schedule[i].instance);
  }

  const std::string image = a.SerializeShard(1);
  b.RestoreShard(1, image);
  ExpectSnapshotEq(b.ShardSnapshot(1), a.ShardSnapshot(1));

  // Malformed bytes and schema mismatches leave the target serving.
  EXPECT_THROW(b.RestoreShard(0, "garbage"), io::WireError);
  EXPECT_THROW(b.RestoreShard(5, image), std::out_of_range);

  // ShipShard pauses the source: pushes routed to it now throw, while
  // the serialized state keeps serving at the target.
  const std::string shipped = a.ShipShard(1);
  bool source_paused = false;
  for (const KeyedFeed& f : schedule) {
    try {
      a.Feed(f.key, f.instance);
    } catch (const std::logic_error&) {
      source_paused = true;  // This key routed to the shipped shard.
      break;
    }
  }
  EXPECT_TRUE(source_paused);
  b.RestoreShard(1, shipped);
  EXPECT_EQ(b.ShardSnapshot(1).position, a.ShardSnapshot(1).position);
}

}  // namespace
}  // namespace ccd
