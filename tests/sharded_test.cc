// Intra-stream sharded evaluation (eval/sharded.h) — the differential /
// property harness proving the load-bearing claim: evaluating a stream as
// K sequential-handoff blocks through EngineState (Snapshot() + component
// CloneState() → Restore()) is *bit-identical* to the uninterrupted
// sequential run, for every shard count, generator, detector and
// classifier. Also covers the EngineSnapshot round-trip contract (pending
// buffer, eviction/unmatched counters, warning-zone latch) and the
// failure modes (components without CloneState, degenerate shard counts,
// inconsistent snapshots).

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "api/api.h"
#include "eval/engine.h"
#include "eval/prequential.h"
#include "eval/sharded.h"
#include "generators/registry.h"
#include "runtime/thread_pool.h"
#include "stream/stream.h"
#include "testing_util.h"

namespace ccd {
namespace {

// EngineState is a handoff token with exactly one owner: copying would
// alias live component clones across shards and allow a state to be
// silently restored twice, so the copy operations are deleted.
static_assert(!std::is_copy_constructible<EngineState>::value,
              "EngineState must not be copyable");
static_assert(!std::is_copy_assignable<EngineState>::value,
              "EngineState must not be copy-assignable");
static_assert(std::is_move_constructible<EngineState>::value,
              "EngineState must stay movable");
static_assert(std::is_move_assignable<EngineState>::value,
              "EngineState must stay move-assignable");

using test_util::ExpectBitIdentical;
using test_util::ExpectSnapshotEq;
using test_util::FrozenClassifier;
using test_util::MakeRbfDriftStream;
using test_util::MakeSeaDriftStream;
using test_util::ShortConfig;
using test_util::WarningRegionDetector;

// ------------------------------------------------------------ ShardBlocks

TEST(ShardBlocksTest, SplitsCoverTheStreamContiguously) {
  // Divisible.
  auto blocks = ShardBlocks(1000, 4);
  ASSERT_EQ(blocks.size(), 4u);
  EXPECT_EQ(blocks.front().first, 0u);
  EXPECT_EQ(blocks.back().second, 1000u);
  for (size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(blocks[i].second - blocks[i].first, 250u);
    if (i > 0) {
      EXPECT_EQ(blocks[i].first, blocks[i - 1].second);
    }
  }
  // Non-divisible: earlier blocks absorb the remainder, sizes differ by
  // at most one.
  blocks = ShardBlocks(2600, 7);
  ASSERT_EQ(blocks.size(), 7u);
  uint64_t total = 0;
  for (size_t i = 0; i < blocks.size(); ++i) {
    const uint64_t size = blocks[i].second - blocks[i].first;
    EXPECT_TRUE(size == 371 || size == 372);
    if (i > 0) {
      EXPECT_EQ(blocks[i].first, blocks[i - 1].second);
    }
    total += size;
  }
  EXPECT_EQ(total, 2600u);
  // More shards than instances: clamped to one block per instance.
  blocks = ShardBlocks(3, 8);
  ASSERT_EQ(blocks.size(), 3u);
  // Empty stream: a single empty block.
  blocks = ShardBlocks(0, 5);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], (std::pair<uint64_t, uint64_t>{0, 0}));
}

// ------------------------------------------------- differential grid test

/// A fresh, identically seeded stream per run, so sequential and sharded
/// evaluations see the same realization.
using StreamFactory = std::function<std::unique_ptr<InstanceStream>()>;

PrequentialResult RunWithShards(const StreamFactory& make_stream,
                                const std::string& detector_name,
                                const PrequentialConfig& base, int shards) {
  std::unique_ptr<InstanceStream> stream = make_stream();
  auto classifier =
      api::MakeClassifier("cs-ptree", stream->schema(), /*seed=*/42);
  auto detector =
      api::MakeDetector(detector_name, stream->schema(), /*seed=*/42);
  PrequentialConfig cfg = base;
  cfg.shards = shards;
  return RunPrequential(stream.get(), classifier.get(), detector.get(), cfg);
}

// The acceptance grid: shards {2, 4, 7} x three structurally different
// generators x two detectors, all bit-identical to the sequential run.
// max_instances = 2600 is divisible by neither 4 nor 7, and warmup = 400
// exceeds the 7-shard block size (371/372), so the train-only prefix
// itself crosses a handoff boundary.
TEST(ShardedDifferentialTest, GridMatchesSequentialBitForBit) {
  PrequentialConfig cfg = ShortConfig();
  cfg.max_instances = 2600;
  cfg.warmup = 400;

  std::vector<std::pair<std::string, StreamFactory>> streams;
  streams.emplace_back("SEA", [] {
    return std::unique_ptr<InstanceStream>(MakeSeaDriftStream(1300, 9));
  });
  for (const std::string name : {"RBF5", "Aggrawal5"}) {
    const StreamSpec* spec = FindStreamSpec(name);
    ASSERT_NE(spec, nullptr);
    streams.emplace_back(name, [spec] {
      BuildOptions options;
      options.scale = 0.001;
      options.seed = 42;
      return std::unique_ptr<InstanceStream>(
          std::move(BuildStream(*spec, options).stream));
    });
  }

  for (const auto& [stream_name, factory] : streams) {
    for (const std::string detector : {"DDM", "ADWIN"}) {
      SCOPED_TRACE(stream_name + " / " + detector);
      PrequentialResult sequential = RunWithShards(factory, detector, cfg, 1);
      // A run this size through a learning tree must produce a non-trivial
      // trajectory, or the bit-identity below would be vacuous.
      EXPECT_EQ(sequential.instances, 2600u);
      EXPECT_FALSE(sequential.pmauc_series.empty());
      for (int shards : {2, 4, 7}) {
        SCOPED_TRACE("shards=" + std::to_string(shards));
        PrequentialResult sharded =
            RunWithShards(factory, detector, cfg, shards);
        ExpectBitIdentical(sequential, sharded);
      }
    }
  }
}

// Sharded runs on a caller-provided shared pool (the api::Suite shape:
// several runs interleaving their blocks on one pool) are the same
// numbers again.
TEST(ShardedDifferentialTest, SharedPoolMatchesPrivatePool) {
  PrequentialConfig cfg = ShortConfig();
  cfg.max_instances = 2200;
  cfg.shards = 5;

  auto make = [] { return MakeRbfDriftStream(1100, 33); };
  auto s1 = make();
  auto c1 = api::MakeClassifier("cs-ptree", s1->schema(), 42);
  auto d1 = api::MakeDetector("DDM", s1->schema(), 42);
  PrequentialResult private_pool =
      RunShardedPrequential(s1.get(), c1.get(), d1.get(), cfg);

  runtime::ThreadPool pool(4);
  auto s2 = make();
  auto c2 = api::MakeClassifier("cs-ptree", s2->schema(), 42);
  auto d2 = api::MakeDetector("DDM", s2->schema(), 42);
  PrequentialResult shared_pool =
      RunShardedPrequential(s2.get(), c2.get(), d2.get(), cfg, &pool);
  ExpectBitIdentical(private_pool, shared_pool);
}

// ------------------------------------------ registry-wide property tests

/// Runs `data` through an engine; `interrupt_at` > 0 stops there, captures
/// the full EngineState, and finishes the run on a *restored* engine built
/// from the state's component clones. Returns (result, final snapshot).
std::pair<PrequentialResult, EngineSnapshot> RunMaybeInterrupted(
    const std::vector<Instance>& data, const StreamSchema& schema,
    const std::string& classifier_name, const std::string& detector_name,
    const PrequentialConfig& cfg, size_t interrupt_at) {
  auto classifier = api::MakeClassifier(classifier_name, schema, /*seed=*/42);
  std::unique_ptr<DriftDetector> detector;
  if (!detector_name.empty()) {
    detector = api::MakeDetector(detector_name, schema, /*seed=*/42);
  }
  MonitorEngine engine(schema, classifier.get(), detector.get(), cfg);
  if (interrupt_at == 0) {
    for (const Instance& inst : data) engine.Feed(inst);
    return {engine.Result(), engine.Snapshot()};
  }
  for (size_t i = 0; i < interrupt_at; ++i) engine.Feed(data[i]);
  EngineState state = CaptureEngineState(engine, *classifier, detector.get());
  MonitorEngine restored = RestoreEngineState(schema, cfg, state);
  for (size_t i = interrupt_at; i < data.size(); ++i) {
    restored.Feed(data[i]);
  }
  return {restored.Result(), restored.Snapshot()};
}

// Snapshot() → CloneState() → Restore() → continue is bit-identical to an
// uninterrupted run for EVERY registered detector — new registrations are
// covered the moment they self-register. The interruption point (777) is
// mid-minibatch for RBM-IM and mid-warning-region for DDM-family
// detectors on noisy data.
TEST(SnapshotRestorePropertyTest, EveryRegisteredDetectorRoundTrips) {
  auto stream = MakeRbfDriftStream(900, 17);
  const StreamSchema schema = stream->schema();
  const std::vector<Instance> data = Take(stream.get(), 1600);
  PrequentialConfig cfg = ShortConfig();

  const std::vector<api::ComponentInfo> detectors = api::Detectors().List();
  ASSERT_FALSE(detectors.empty());
  for (const api::ComponentInfo& info : detectors) {
    SCOPED_TRACE(info.name);
    auto uninterrupted =
        RunMaybeInterrupted(data, schema, "naive-bayes", info.name, cfg, 0);
    auto interrupted =
        RunMaybeInterrupted(data, schema, "naive-bayes", info.name, cfg, 777);
    ExpectBitIdentical(uninterrupted.first, interrupted.first);
    ExpectSnapshotEq(uninterrupted.second, interrupted.second);
  }
}

// ... and for EVERY registered classifier (no detector: isolates the
// classifier's own CloneState).
TEST(SnapshotRestorePropertyTest, EveryRegisteredClassifierRoundTrips) {
  auto stream = MakeRbfDriftStream(900, 19);
  const StreamSchema schema = stream->schema();
  const std::vector<Instance> data = Take(stream.get(), 1600);
  PrequentialConfig cfg = ShortConfig();

  const std::vector<api::ComponentInfo> classifiers = api::Classifiers().List();
  ASSERT_FALSE(classifiers.empty());
  for (const api::ComponentInfo& info : classifiers) {
    SCOPED_TRACE(info.name);
    auto uninterrupted =
        RunMaybeInterrupted(data, schema, info.name, "", cfg, 0);
    auto interrupted =
        RunMaybeInterrupted(data, schema, info.name, "", cfg, 777);
    ExpectBitIdentical(uninterrupted.first, interrupted.first);
    ExpectSnapshotEq(uninterrupted.second, interrupted.second);
  }
}

// --------------------------------------- snapshot round-trip (regression)

// Regression for the Snapshot() gaps: evicted/unmatched counters, the
// pending buffer contents and the warning-zone latch used to be absent or
// read-only, so a restored engine could neither serve its predecessor's
// in-flight predictions nor suppress a re-fired warning. A restored
// engine's own Snapshot() must now reproduce the source snapshot exactly.
TEST(EngineSnapshotTest, RestoredEngineSnapshotRoundTripsExactly) {
  StreamSchema schema(3, 4, "synthetic");
  FrozenClassifier clf(schema);
  WarningRegionDetector det;
  PrequentialConfig cfg = ShortConfig();
  cfg.warmup = 100;

  MonitorEngine engine(schema, &clf, &det, cfg, EngineHooks{},
                       /*pending_capacity=*/4);
  // 620 completed instances: the detector has seen 620 observations and is
  // inside its second warning region [600, 650) — the latch is armed.
  for (int i = 0; i < 620; ++i) {
    engine.Feed(Instance({static_cast<double>(i % 5), 0.0, 0.0}, i % 4));
  }
  ASSERT_EQ(engine.last_detector_state(), DetectorState::kWarning);
  // Park predictions past capacity (3 evictions) and throw in unmatched
  // labels, so every counter is non-trivial.
  std::vector<uint64_t> ids;
  for (int i = 0; i < 7; ++i) {
    ids.push_back(engine.Predict({static_cast<double>(i), 0.0, 0.0}).id);
  }
  EXPECT_EQ(engine.Label(999999, 1), LabelOutcome::kUnknown);
  EXPECT_EQ(engine.Label(ids[0], 1), LabelOutcome::kUnknown);  // Evicted.
  EXPECT_EQ(engine.evicted(), 3u);
  EXPECT_EQ(engine.unmatched_labels(), 2u);

  EngineSnapshot s1 = engine.Snapshot();
  EXPECT_EQ(s1.last_detector_state, DetectorState::kWarning);
  EXPECT_EQ(s1.pending_predictions.size(), 4u);

  auto clf2 = clf.CloneState();
  auto det2 = det.CloneState();
  int warnings_after_restore = 0;
  EngineHooks hooks;
  hooks.on_warning = [&](uint64_t, const MetricsSnapshot&) {
    ++warnings_after_restore;
  };
  MonitorEngine restored(schema, clf2.get(), det2.get(), cfg,
                         std::move(hooks), /*pending_capacity=*/4);
  restored.Restore(s1);
  ExpectSnapshotEq(s1, restored.Snapshot());

  // The predecessor's in-flight predictions are servable.
  EXPECT_EQ(restored.Label(ids[4], 2), LabelOutcome::kApplied);
  EXPECT_EQ(restored.position(), 621u);
  // The warning latch survived: instances 622..660 sit in the same warning
  // region the original already entered, so on_warning must NOT re-fire.
  for (int i = 621; i < 660; ++i) {
    restored.Feed(Instance({static_cast<double>(i % 5), 0.0, 0.0}, i % 4));
  }
  EXPECT_EQ(warnings_after_restore, 0);
}

TEST(EngineSnapshotTest, RestoreRejectsInconsistentSnapshots) {
  StreamSchema schema(3, 4, "synthetic");
  FrozenClassifier clf(schema);
  PrequentialConfig cfg = ShortConfig();
  MonitorEngine engine(schema, &clf, nullptr, cfg);
  for (int i = 0; i < 500; ++i) {
    engine.Feed(Instance({static_cast<double>(i % 5), 0.0, 0.0}, i % 4));
  }
  const EngineSnapshot good = engine.Snapshot();
  ASSERT_FALSE(good.window.empty());

  // Window wider than the configured metric window.
  EngineSnapshot bad = good;
  bad.window.resize(static_cast<size_t>(cfg.metric_window) + 1,
                    bad.window.front());
  EXPECT_THROW(engine.Restore(bad), std::invalid_argument);
  // Class-count vector not matching the schema.
  bad = good;
  bad.class_counts.push_back(0);
  EXPECT_THROW(engine.Restore(bad), std::invalid_argument);
  // Pending ids out of order / colliding.
  bad = good;
  bad.pending_predictions.resize(2);
  bad.pending_predictions[0].id = 7;
  bad.pending_predictions[1].id = 7;
  bad.next_id = 10;
  EXPECT_THROW(engine.Restore(bad), std::invalid_argument);
  // More pending predictions than the target engine's capacity: accepting
  // them would permanently break the bounded-buffer contract (Predict()
  // evicts one entry per overflow, so an oversized restore never drains).
  bad = good;
  bad.pending_predictions.resize(3);
  for (size_t i = 0; i < 3; ++i) bad.pending_predictions[i].id = i + 1;
  bad.next_id = 10;
  MonitorEngine tiny(schema, &clf, nullptr, cfg, EngineHooks{},
                     /*pending_capacity=*/2);
  EXPECT_THROW(tiny.Restore(bad), std::invalid_argument);
  // The good snapshot still restores after the failed attempts.
  EXPECT_NO_THROW(engine.Restore(good));
  ExpectSnapshotEq(good, engine.Snapshot());
}

// ------------------------------------------------ failure-mode contracts

/// Detector without CloneState(): legal for plain monitoring, must be
/// rejected loudly the moment it is asked to cross a shard boundary.
class NoHandoffDetector : public DriftDetector {
 public:
  void Observe(const Instance&, int, const std::vector<double>&) override {}
  DetectorState state() const override { return DetectorState::kStable; }
  void Reset() override {}
  std::string name() const override { return "no-handoff"; }
};

TEST(ShardedTest, ComponentWithoutCloneStateFailsLoudly) {
  auto stream = MakeRbfDriftStream(1u << 30, 5);
  auto classifier = api::MakeClassifier("naive-bayes", stream->schema(), 42);
  NoHandoffDetector detector;
  PrequentialConfig cfg = ShortConfig();
  cfg.max_instances = 1200;
  cfg.shards = 3;
  try {
    RunPrequential(stream.get(), classifier.get(), &detector, cfg);
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("no-handoff"), std::string::npos);
  }
  // shards=1 never crosses a boundary: the same detector is fine.
  auto stream2 = MakeRbfDriftStream(1u << 30, 5);
  cfg.shards = 1;
  EXPECT_NO_THROW(
      RunPrequential(stream2.get(), classifier.get(), &detector, cfg));
}

TEST(ShardedTest, DegenerateShardCountsAreRejected) {
  auto stream = MakeRbfDriftStream(1u << 30, 5);
  auto classifier = api::MakeClassifier("naive-bayes", stream->schema(), 42);
  PrequentialConfig cfg = ShortConfig();
  cfg.shards = 0;
  EXPECT_THROW(RunPrequential(stream.get(), classifier.get(), nullptr, cfg),
               std::invalid_argument);
  cfg.shards = -4;
  EXPECT_THROW(RunPrequential(stream.get(), classifier.get(), nullptr, cfg),
               std::invalid_argument);
}

// More shards than instances: clamped, still correct.
TEST(ShardedTest, MoreShardsThanInstancesStillMatches) {
  PrequentialConfig cfg = ShortConfig();
  cfg.max_instances = 40;
  cfg.warmup = 10;

  auto run = [&](int shards) {
    auto stream = MakeRbfDriftStream(1u << 30, 3);
    auto classifier = api::MakeClassifier("naive-bayes", stream->schema(), 42);
    PrequentialConfig c = cfg;
    c.shards = shards;
    return RunPrequential(stream.get(), classifier.get(), nullptr, c);
  };
  ExpectBitIdentical(run(1), run(64));
}

// ----------------------------------------------------- api-layer routing

TEST(ShardedApiTest, ExperimentShardsIsBitIdenticalAndValidated) {
  PrequentialConfig cfg = ShortConfig();
  api::Experiment base = api::Experiment()
                             .Stream("RBF5")
                             .Scale(0.001)
                             .Seed(42)
                             .Detector("DDM")
                             .Prequential(cfg);
  PrequentialResult sequential = base.Run();
  PrequentialResult sharded = api::Experiment(base).Shards(4).Run();
  ExpectBitIdentical(sequential, sharded);
  // Build() reports the resolved shard count.
  EXPECT_EQ(api::Experiment(base).Shards(4).Build().config.shards, 4);
  // Degenerate shard counts are an ApiError at Build(), not UB later.
  EXPECT_THROW(api::Experiment(base).Shards(0).Run(), api::ApiError);
  EXPECT_THROW(api::Experiment(base).Shards(-2).Run(), api::ApiError);
}

TEST(ShardedApiTest, SuiteShardsLeavesGridResultsUnchanged) {
  PrequentialConfig cfg = ShortConfig();
  cfg.max_instances = 1400;
  auto run = [&](int shards) {
    return api::Suite()
        .Streams({"RBF5"})
        .Detectors({"DDM", "ADWIN"})
        .Scale(0.001)
        .Seed(42)
        .Prequential(cfg)
        .Threads(2)
        .Shards(shards)
        .Run();
  };
  api::SuiteResult sequential = run(1);
  api::SuiteResult sharded = run(3);
  ASSERT_EQ(sequential.cells.size(), sharded.cells.size());
  for (size_t i = 0; i < sequential.cells.size(); ++i) {
    SCOPED_TRACE(sequential.cells[i].cell.detector_label);
    EXPECT_EQ(sharded.cells[i].cell.shards, 3);
    ExpectBitIdentical(sequential.cells[i].result, sharded.cells[i].result);
  }
}

}  // namespace
}  // namespace ccd
