// Zero-allocation hot-path regression tests: a counting global operator
// new proves that a warmed-up engine's steady-state push path — Feed,
// FeedBatch, the Predict/Label serving cycle, and the batch serving
// forms — never touches the heap. Every scratch surface involved
// (classifier score buffers, the metric window's recycled entries, the
// pending-prediction ring, RBM-IM's recycled mini-batch slots) is pinned
// by these counts: a reintroduced per-push allocation fails the suite
// instead of quietly costing throughput.
//
// Under sanitizers the counting allocator is compiled out and the tests
// skip — ASan/TSan interpose their own allocator and the counts would
// measure the tool, not the code.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "api/component_registry.h"
#include "api/monitor.h"
#include "eval/engine.h"
#include "eval/prequential.h"
#include "stream/stream.h"
#include "testing_util.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CCD_ALLOC_TEST_DISABLED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define CCD_ALLOC_TEST_DISABLED 1
#endif
#endif

namespace {
std::atomic<uint64_t> g_allocation_count{0};
}  // namespace

#ifndef CCD_ALLOC_TEST_DISABLED

// Counting global allocator: every path that can reach the heap from the
// measured regions goes through one of these. All plain forms are
// replaced together (new/new[]/nothrow and their deletes) so every
// allocation pairs with a matching deallocation function.

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // CCD_ALLOC_TEST_DISABLED

namespace ccd {
namespace {

using test_util::MakeRbfDriftStream;

/// Allocations performed by `fn` (single-threaded tests: the delta is
/// exactly the calls the region made).
template <typename Fn>
uint64_t AllocationsDuring(Fn&& fn) {
  const uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  fn();
  return g_allocation_count.load(std::memory_order_relaxed) - before;
}

/// Protocol for the steady-state legs: small window (fills fast), warmup
/// short, and an eval_interval past any run length here — periodic
/// sampling appends to pmauc_series, which is amortized-allocating by
/// design and not part of the per-push contract.
PrequentialConfig SteadyConfig() {
  PrequentialConfig config;
  config.metric_window = 256;
  config.eval_interval = 1 << 30;
  config.warmup = 100;
  config.timing = false;
  return config;
}

/// Stationary imbalanced stream data (drift far beyond the run), fully
/// materialized before measurement so generation cost never pollutes the
/// counts.
std::vector<Instance> MakeData(size_t count, uint64_t seed) {
  auto stream = MakeRbfDriftStream(/*drift_at=*/1u << 30, seed);
  std::vector<Instance> data;
  data.reserve(count);
  for (size_t i = 0; i < count; ++i) data.push_back(stream->Next());
  return data;
}

constexpr size_t kWarm = 1500;    ///< Past warmup + window fill + buffer growth.
constexpr size_t kMeasure = 500;  ///< Steady-state pushes counted.

/// Feed leg: warm a monitor past every growth phase, then demand zero
/// allocations across the next kMeasure pushes.
void ExpectFeedAllocationFree(const std::string& classifier,
                              const std::string& detector) {
  const std::vector<Instance> data = MakeData(kWarm + kMeasure, 11);
  api::MonitorBuilder builder;
  builder.Schema(6, 3).Classifier(classifier).Protocol(SteadyConfig());
  if (detector.empty()) {
    builder.NoDetector();
  } else {
    builder.Detector(detector);
  }
  api::Monitor monitor = builder.Build();
  for (size_t i = 0; i < kWarm; ++i) monitor.Feed(data[i]);

  const uint64_t allocations = AllocationsDuring([&] {
    for (size_t i = kWarm; i < data.size(); ++i) monitor.Feed(data[i]);
  });
  EXPECT_EQ(allocations, 0u)
      << allocations << " allocations across " << kMeasure
      << " steady-state Feed() calls (classifier=" << classifier
      << ", detector=" << (detector.empty() ? "none" : detector) << ")";
}

#ifdef CCD_ALLOC_TEST_DISABLED
#define CCD_ALLOC_GUARD() \
  GTEST_SKIP() << "counting allocator disabled under sanitizers"
#else
#define CCD_ALLOC_GUARD() (void)0
#endif

TEST(AllocTest, FeedIsAllocationFreeNaiveBayes) {
  CCD_ALLOC_GUARD();
  ExpectFeedAllocationFree("naive-bayes", "");
}

TEST(AllocTest, FeedIsAllocationFreePerceptron) {
  CCD_ALLOC_GUARD();
  ExpectFeedAllocationFree("perceptron", "");
}

TEST(AllocTest, FeedIsAllocationFreeWithDdm) {
  CCD_ALLOC_GUARD();
  ExpectFeedAllocationFree("naive-bayes", "DDM");
}

TEST(AllocTest, FeedIsAllocationFreeWithRbmIm) {
  CCD_ALLOC_GUARD();
  // RBM-IM buffers each push into a recycled pending slot and only does
  // real work every batch_size (50) observations. The contract is split
  // accordingly: pushes inside a batch are strictly allocation-free, and
  // the batch boundary — whose pooling bookkeeping reuses member scratch
  // and recycled pool buffers — allocates only inside the decision
  // statistics (Granger regressions, ADWIN buckets, deque chunk churn),
  // a small amortized constant per batch, never per push.
  constexpr size_t kBatchSize = 50;  // RbmIm::Params default.
  static_assert(kWarm % kBatchSize == 0,
                "warmup must end on a batch boundary");
  const std::vector<Instance> data = MakeData(kWarm + kMeasure, 11);
  api::MonitorBuilder builder;
  builder.Schema(6, 3).Classifier("naive-bayes").Detector("RBM-IM").Protocol(
      SteadyConfig());
  api::Monitor monitor = builder.Build();
  for (size_t i = 0; i < kWarm; ++i) monitor.Feed(data[i]);

  const uint64_t within_batch = AllocationsDuring([&] {
    for (size_t i = kWarm; i < kWarm + kBatchSize - 1; ++i) {
      monitor.Feed(data[i]);
    }
  });
  EXPECT_EQ(within_batch, 0u)
      << within_batch << " allocations across " << (kBatchSize - 1)
      << " within-batch Feed() calls (classifier=naive-bayes, "
         "detector=RBM-IM)";

  const uint64_t with_boundaries = AllocationsDuring([&] {
    for (size_t i = kWarm + kBatchSize - 1; i < data.size(); ++i) {
      monitor.Feed(data[i]);
    }
  });
  const uint64_t boundaries = (kMeasure - (kBatchSize - 1)) / kBatchSize + 1;
  // Measured ~3/batch on libstdc++; x4 headroom so only a reintroduced
  // per-push or per-instance allocation trips the gate.
  EXPECT_LE(with_boundaries, boundaries * 12)
      << with_boundaries << " allocations across " << boundaries
      << " batch boundaries — per-instance allocation crept back into "
         "RbmIm::ProcessBatch";
}

TEST(AllocTest, FeedBatchIsAllocationFree) {
  CCD_ALLOC_GUARD();
  const std::vector<Instance> data = MakeData(kWarm + kMeasure, 13);
  api::MonitorBuilder builder;
  builder.Schema(6, 3).Classifier("naive-bayes").NoDetector().Protocol(
      SteadyConfig());
  api::Monitor monitor = builder.Build();
  const std::vector<Instance> warm(data.begin(), data.begin() + kWarm);
  const std::vector<Instance> batch(data.begin() + kWarm, data.end());
  monitor.FeedBatch(warm);

  const uint64_t allocations =
      AllocationsDuring([&] { monitor.FeedBatch(batch); });
  EXPECT_EQ(allocations, 0u)
      << allocations << " allocations in a steady-state FeedBatch of "
      << batch.size();
}

TEST(AllocTest, PredictLabelCycleIsAllocationFree) {
  CCD_ALLOC_GUARD();
  // Engine-level serving cycle with a reused ticket: the pending ring and
  // the ticket's score capacity absorb every push.
  const std::vector<Instance> data = MakeData(kWarm + kMeasure, 17);
  const StreamSchema schema(6, 3, "alloc-test");
  std::unique_ptr<OnlineClassifier> classifier =
      api::Classifiers().Create("naive-bayes", schema, 42, {});
  MonitorEngine engine(schema, classifier.get(), nullptr, SteadyConfig(), {},
                       /*pending_capacity=*/64);
  MonitorEngine::Ticket ticket;
  for (size_t i = 0; i < kWarm; ++i) {
    engine.Predict(data[i].features, data[i].weight, &ticket);
    engine.Label(ticket.id, data[i].label);
  }

  const uint64_t allocations = AllocationsDuring([&] {
    for (size_t i = kWarm; i < data.size(); ++i) {
      engine.Predict(data[i].features, data[i].weight, &ticket);
      engine.Label(ticket.id, data[i].label);
    }
  });
  EXPECT_EQ(allocations, 0u)
      << allocations << " allocations across " << kMeasure
      << " steady-state Predict/Label cycles";
}

TEST(AllocTest, BatchServingCycleIsAllocationFree) {
  CCD_ALLOC_GUARD();
  // PredictBatch/LabelBatch with caller-owned, capacity-warmed output
  // vectors: after the first lap nothing grows.
  const std::vector<Instance> data = MakeData(kWarm + kMeasure, 19);
  const StreamSchema schema(6, 3, "alloc-test");
  std::unique_ptr<OnlineClassifier> classifier =
      api::Classifiers().Create("naive-bayes", schema, 42, {});
  MonitorEngine engine(schema, classifier.get(), nullptr, SteadyConfig(), {},
                       /*pending_capacity=*/128);

  constexpr size_t kBatch = 50;
  std::vector<Instance> batch;
  std::vector<MonitorEngine::Ticket> tickets;
  std::vector<LabelRequest> labels(kBatch);
  std::vector<LabelOutcome> outcomes;
  outcomes.reserve(kBatch);
  auto run_lap = [&](size_t offset) {
    batch.assign(data.begin() + static_cast<long>(offset),
                 data.begin() + static_cast<long>(offset + kBatch));
    engine.PredictBatch(batch, &tickets);
    for (size_t j = 0; j < kBatch; ++j) {
      labels[j].id = tickets[j].id;
      labels[j].label = batch[j].label;
    }
    engine.LabelBatch(labels, &outcomes);
  };
  for (size_t offset = 0; offset + kBatch <= kWarm; offset += kBatch) {
    run_lap(offset);
  }

  const uint64_t allocations = AllocationsDuring([&] {
    for (size_t offset = kWarm; offset + kBatch <= data.size();
         offset += kBatch) {
      run_lap(offset);
    }
  });
  EXPECT_EQ(allocations, 0u)
      << allocations
      << " allocations across steady-state PredictBatch/LabelBatch laps";
}

}  // namespace
}  // namespace ccd
