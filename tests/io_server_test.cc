// The framed socket front door (io/frame.h, io/frame_server.h,
// io/monitor_service.h): frame codec on raw fds, request/response over a
// real Unix-domain socket with concurrent clients, the MonitorService
// text dialect end to end against a live ShardedMonitor, and the
// SHIP/LOAD migration handshake between two monitors — proven equivalent
// to driving the monitor directly in-process.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/api.h"
#include "api/sharded_monitor.h"
#include "io/frame.h"
#include "io/frame_server.h"
#include "io/monitor_service.h"
#include "io/wire.h"
#include "testing_util.h"

namespace ccd {
namespace {

using test_util::ExpectBitIdentical;
using test_util::ExpectSnapshotEq;
using test_util::MakeRbfDriftStream;
using test_util::RunProducers;
using test_util::ShortConfig;

/// Short, unique socket path (sun_path caps out near 108 bytes, so no
/// ::testing::TempDir() nesting here).
std::string SocketPath(const char* name) {
  return "/tmp/ccd-" + std::string(name) + "-" + std::to_string(::getpid()) +
         ".sock";
}

// ------------------------------------------------------------ frame codec

TEST(FrameTest, RoundTripsOverAPipeAndDetectsTruncation) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload = std::string("\x00\x01", 2) + '\xFF' + "frame";
  io::WriteFrame(fds[1], payload);
  io::WriteFrame(fds[1], "");  // Empty payloads are legal frames.
  std::string got;
  ASSERT_TRUE(io::ReadFrame(fds[0], &got));
  EXPECT_EQ(got, payload);
  ASSERT_TRUE(io::ReadFrame(fds[0], &got));
  EXPECT_EQ(got, "");

  // Clean EOF at a frame boundary: false, not an error.
  ::close(fds[1]);
  EXPECT_FALSE(io::ReadFrame(fds[0], &got));
  ::close(fds[0]);

  // EOF in the middle of a frame: a typed error — the peer died mid-send.
  ASSERT_EQ(::pipe(fds), 0);
  const char partial[] = {8, 0, 0, 0, 'h', 'a'};  // Promises 8, sends 2.
  ASSERT_EQ(::write(fds[1], partial, sizeof(partial)),
            static_cast<ssize_t>(sizeof(partial)));
  ::close(fds[1]);
  EXPECT_THROW(io::ReadFrame(fds[0], &got), io::WireError);
  ::close(fds[0]);
}

TEST(FrameTest, OversizedLengthPrefixIsRejectedBeforeAllocating) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const unsigned char huge[] = {0xFF, 0xFF, 0xFF, 0x7F};  // ~2 GiB claim.
  ASSERT_EQ(::write(fds[1], huge, sizeof(huge)),
            static_cast<ssize_t>(sizeof(huge)));
  std::string got;
  EXPECT_THROW(io::ReadFrame(fds[0], &got), io::WireError);
  ::close(fds[0]);
  ::close(fds[1]);
}

// ------------------------------------------------------------ FrameServer

TEST(FrameServerTest, ServesConcurrentClientsAndStopsCleanly) {
  const std::string path = SocketPath("echo");
  io::FrameServer server(path, [](const std::string& request) {
    return "echo:" + request;
  });

  // 4 clients hammering concurrently; each has its own connection, so
  // the one-in-one-out contract holds per client.
  RunProducers(4, [&](int who) {
    io::FrameClient client(path);
    for (int i = 0; i < 50; ++i) {
      const std::string msg =
          std::to_string(who) + "/" + std::to_string(i);
      ASSERT_EQ(client.Call(msg), "echo:" + msg);
    }
  });

  server.Stop();
  server.Stop();  // Idempotent.
  // The socket file is gone; a fresh client cannot connect.
  EXPECT_THROW(io::FrameClient{path}, io::WireError);
}

TEST(FrameServerTest, HandlerExceptionClosesOnlyThatConnection) {
  const std::string path = SocketPath("throwy");
  io::FrameServer server(path, [](const std::string& request) -> std::string {
    if (request == "boom") throw std::runtime_error("handler exploded");
    return "ok";
  });

  io::FrameClient victim(path);
  EXPECT_THROW(victim.Call("boom"), io::WireError);  // Server hung up.
  // The server survives: a new connection serves normally.
  io::FrameClient fresh(path);
  EXPECT_EQ(fresh.Call("ping"), "ok");
  server.Stop();
}

// --------------------------------------------------------- MonitorService

class MonitorServiceTest : public ::testing::Test {
 protected:
  static api::ShardedMonitor MakeMonitor() {
    StreamSchema schema = MakeRbfDriftStream(10, 1)->schema();
    PrequentialConfig cfg = ShortConfig();
    cfg.warmup = 100;
    return api::ShardedMonitorBuilder()
        .Schema(schema)
        .Classifier("naive-bayes")
        .Detector("DDM")
        .Seed(42)
        .Shards(2)
        .Protocol(cfg)
        .Build();
  }

  static std::string FeedLine(uint64_t key, const Instance& inst) {
    std::ostringstream line;
    line << "FEED " << key << " " << inst.label;
    char buf[32];
    for (double f : inst.features) {
      std::snprintf(buf, sizeof(buf), "%.17g", f);
      line << " " << buf;
    }
    return line.str();
  }
};

// Drive a monitor purely through the socket dialect and compare with a
// twin driven directly in-process: the text protocol must not be where
// bit-identical serving dies (doubles travel as %.17g).
TEST_F(MonitorServiceTest, SocketServingMatchesDirectServingBitIdentically) {
  api::ShardedMonitor served = MakeMonitor();
  api::ShardedMonitor oracle = MakeMonitor();
  io::MonitorService service(&served);
  const std::string path = SocketPath("serve");
  io::FrameServer server(path, service.Handler());
  io::FrameClient client(path);

  auto stream = MakeRbfDriftStream(400, 7);
  const std::vector<Instance> data = Take(stream.get(), 800);
  for (size_t i = 0; i < data.size(); ++i) {
    const uint64_t key = 100 + (i * 31) % 41;
    const std::string reply = client.Call(FeedLine(key, data[i]));
    ASSERT_EQ(reply, "OK") << "instance " << i;
    oracle.Feed(key, data[i]);
  }

  ExpectBitIdentical(served.Result(), oracle.Result());
  ExpectSnapshotEq(served.Snapshot(), oracle.Snapshot());

  // STATS and RESULT report the same numbers the direct API returns.
  const std::string stats = client.Call("STATS");
  EXPECT_NE(stats.find("position=" + std::to_string(oracle.position())),
            std::string::npos)
      << stats;
  char expect_pmauc[64];
  std::snprintf(expect_pmauc, sizeof(expect_pmauc), "pmauc=%.17g",
                oracle.Result().mean_pmauc);
  EXPECT_NE(client.Call("RESULT").find(expect_pmauc), std::string::npos);
  server.Stop();
}

TEST_F(MonitorServiceTest, PredictLabelTicketFlowWorksOverTheWire) {
  api::ShardedMonitor monitor = MakeMonitor();
  io::MonitorService service(&monitor);

  const std::string reply = service.Handle("PREDICT 7 0.5 -1 0.25 3 0.125 2");
  ASSERT_EQ(reply.rfind("OK ", 0), 0u) << reply;
  std::istringstream in(reply);
  std::string ok;
  int shard = -1, label = -1;
  uint64_t id = 0;
  in >> ok >> shard >> id >> label;
  EXPECT_GE(shard, 0);
  EXPECT_LT(shard, monitor.shards());

  EXPECT_EQ(service.Handle("LABEL " + std::to_string(shard) + " " +
                           std::to_string(id) + " 1"),
            "OK applied");
  // The ticket is spent now.
  EXPECT_EQ(service.Handle("LABEL " + std::to_string(shard) + " " +
                           std::to_string(id) + " 1"),
            "OK unknown");
  EXPECT_EQ(monitor.position(), 1u);
}

TEST_F(MonitorServiceTest, MalformedRequestsReturnErrNeverThrow) {
  api::ShardedMonitor monitor = MakeMonitor();
  io::MonitorService service(&monitor);
  const std::vector<std::string> bad = {
      "",                        // Empty request.
      "NOSUCH 1 2 3",            // Unknown command.
      "PREDICT",                 // Missing key + features.
      "PREDICT notakey 1 2",     // Key is not a number.
      "FEED 7 notalabel 1 2",    // Label is not a number.
      "FEED 7 1 0.5 bogus",      // Feature is not a number.
      "LABEL 0 1",               // Wrong arity.
      "LABEL 99 1 0",            // Shard out of range.
      "PERSIST",                 // No directory configured.
      "SHIP notashard",          // Shard is not a number.
      "LOAD 0",                  // Binary command without payload.
      "LOAD 0\nnot a state image",
  };
  for (const std::string& request : bad) {
    SCOPED_TRACE(request);
    const std::string reply = service.Handle(request);
    EXPECT_EQ(reply.rfind("ERR ", 0), 0u) << reply;
  }
  // The monitor is untouched by the whole gauntlet.
  EXPECT_EQ(monitor.position(), 0u);
}

// The cross-process migration handshake, in-process: SHIP a live shard
// out of monitor A (which pauses it) and LOAD the payload into monitor B;
// B's shard must continue exactly where A's stopped.
TEST_F(MonitorServiceTest, ShipLoadHandshakeMovesAShardBetweenMonitors) {
  api::ShardedMonitor a = MakeMonitor();
  api::ShardedMonitor b = MakeMonitor();
  io::MonitorService service_a(&a);
  io::MonitorService service_b(&b);

  auto stream = MakeRbfDriftStream(300, 9);
  const std::vector<Instance> data = Take(stream.get(), 600);
  for (size_t i = 0; i < data.size(); ++i) {
    a.Feed(100 + (i * 31) % 41, data[i]);
  }
  const EngineSnapshot before = a.ShardSnapshot(1);

  const std::string shipped = service_a.Handle("SHIP 1");
  ASSERT_EQ(shipped.rfind("OK\n", 0), 0u);
  const std::string payload = shipped.substr(3);

  EXPECT_EQ(service_b.Handle("LOAD 1\n" + payload), "OK");
  ExpectSnapshotEq(b.ShardSnapshot(1), before);

  // Source shard is paused; a push routed to it is refused (ERR), while
  // the same key keeps serving at the target.
  const uint64_t key = test_util::KeysForSlot(/*slot=*/1, /*slots=*/2, 1)[0];
  EXPECT_EQ(service_a.Handle(FeedLine(key, data[0])).rfind("ERR ", 0), 0u);
  EXPECT_EQ(service_b.Handle(FeedLine(key, data[0])), "OK");
}

}  // namespace
}  // namespace ccd
