// Negative-compile case: Router::AddSlot without this router's exclusive
// table lock.
//
// AddSlot is annotated CCD_REQUIRES(table_mutex_): growing the routing
// table while readers hold shared table locks would tear RouteKey's
// modulus out from under them. The contract has two halves:
//   * compile time (this file): clang rejects the call when the caller
//     does not hold an exclusive lock on *this* router's table —
//     holding a different router's lock does not satisfy it.
//   * runtime (tests/router_test.cc): on non-clang builds the
//     WriterLock identity check throws std::logic_error.
//
// Control build: AddSlot under this router's own WriterLock — compiles.
// -DCCD_EXPECT_VIOLATION=1: AddSlot under a *different* router's
// WriterLock — must fail with -Werror=thread-safety.

#include "runtime/router.h"
#include "runtime/sync.h"

int GrowTable() {
  ccd::runtime::Router router(2, ccd::runtime::RoutingMode::kHashKey);
#if defined(CCD_EXPECT_VIOLATION)
  ccd::runtime::Router other(1, ccd::runtime::RoutingMode::kHashKey);
  ccd::runtime::WriterLock table(&other.TableMutex());  // wrong router!
  return router.AddSlot(table);
#else
  ccd::runtime::WriterLock table(&router.TableMutex());
  return router.AddSlot(table);
#endif
}
