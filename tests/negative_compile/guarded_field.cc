// Negative-compile case: a CCD_GUARDED_BY field touched without its lock.
//
// Compiled twice by cmake/NegativeCompile.cmake (clang only, with
// -Werror=thread-safety):
//   * control build (no defines)         — must COMPILE: the same access
//     under a MutexLock is legal, proving the harness isn't rejecting
//     everything.
//   * -DCCD_EXPECT_VIOLATION=1           — must FAIL TO COMPILE: the
//     unlocked write trips -Wthread-safety-analysis.
//
// This is the proof that the annotations in src/ are live: if someone
// neuters CCD_GUARDED_BY (or drops -Wthread-safety from the gate), the
// violation build starts succeeding and CMake aborts the configure.

#include "runtime/sync.h"

namespace {

struct Account {
  ccd::runtime::Mutex mu;
  int balance CCD_GUARDED_BY(mu) = 0;
};

int Deposit(Account& account, int amount) {
#if defined(CCD_EXPECT_VIOLATION)
  account.balance += amount;  // no lock held: must not compile
  return account.balance;
#else
  ccd::runtime::MutexLock lock(&account.mu);
  account.balance += amount;
  return account.balance;
#endif
}

}  // namespace

int TouchForLinker() {
  Account account;
  return Deposit(account, 1);
}
