#ifndef CCD_TESTS_SIM_HARNESS_H_
#define CCD_TESTS_SIM_HARNESS_H_

// Fault-injection harness over the deterministic scheduler
// (runtime/sim.h): a recording wrapper capturing the linearization a
// simulated run actually produced, a fault plane that drops/duplicates
// labels from the scheduler's seed stream, and a history checker that
// replays the recorded linearization against per-shard sequential
// api::Monitor oracles — router_test's differential oracle, generalized
// to histories containing reshard, drain, SHIP/LOAD, persist and crash
// events.
//
// Soundness: the scheduler yields only *before* lock acquisitions (see
// the atomicity model in runtime/sim.h), so everything a RecordingMonitor
// method does after its inner ShardedMonitor call returns — reading the
// tracked table width, appending to the history — happens in the same
// atomic step as the tail of that call. The recorded order therefore IS
// the order the shard engines observed their operations in, and a
// per-shard sequential replay is a valid oracle. The same argument makes
// the plain (unlocked) history vector and width field safe: only one
// task runs at a time, and the scheduler's own mutex orders the handoffs
// (TSan agrees).
//
// Outside a simulation the wrapper degrades gracefully — sim::Chance on
// a zero fault plane returns false without drawing — so single-threaded
// tests (router_test's differential suite) can use the same checker.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "api/monitor.h"
#include "api/sharded_monitor.h"
#include "eval/engine.h"
#include "eval/prequential.h"
#include "runtime/router.h"
#include "runtime/sim.h"
#include "testing_util.h"

namespace ccd {
namespace test_util {

// ----------------------------------------------------- serving config

/// One description both the live ShardedMonitor and the sequential
/// per-shard spec monitors are built from — the checker is only sound
/// when the two sides agree on every knob.
struct SimServingConfig {
  int num_features = 6;  ///< MakeRbfDriftStream's schema.
  int num_classes = 3;
  std::string classifier = "naive-bayes";
  std::string detector = "DDM";  ///< Empty string = NoDetector().
  uint64_t seed = 100;
  PrequentialConfig protocol = ShortConfig();
  size_t pending_capacity = 1024;
  size_t ingress_capacity = 1024;  ///< Per-shard FeedAsync queue bound.
  int shards = 4;
};

/// The live system under test. Returned as a prvalue (ShardedMonitor is
/// neither copyable nor movable); bind with `auto monitor = ...`.
inline api::ShardedMonitor MakeServing(const SimServingConfig& config) {
  api::ShardedMonitorBuilder builder;
  builder.Schema(config.num_features, config.num_classes)
      .Classifier(config.classifier)
      .Seed(config.seed)
      .Protocol(config.protocol)
      .PendingCapacity(config.pending_capacity)
      .IngressCapacity(config.ingress_capacity)
      .Shards(config.shards);
  if (config.detector.empty()) {
    builder.NoDetector();
  } else {
    builder.Detector(config.detector);
  }
  return builder.Build();
}

/// The sequential-spec oracle for shard `shard_index`: an api::Monitor on
/// identical components, seeded `seed + shard_index` (ShardedMonitor's
/// documented per-shard seeding contract).
inline std::unique_ptr<api::Monitor> MakeSpecShard(
    const SimServingConfig& config, int shard_index) {
  api::MonitorBuilder builder;
  builder.Schema(config.num_features, config.num_classes)
      .Classifier(config.classifier)
      .Seed(config.seed + static_cast<uint64_t>(shard_index))
      .Protocol(config.protocol)
      .PendingCapacity(config.pending_capacity);
  if (config.detector.empty()) {
    builder.NoDetector();
  } else {
    builder.Detector(config.detector);
  }
  return std::make_unique<api::Monitor>(builder.Build());
}

// ----------------------------------------------------------- history

enum class SimOpKind {
  kPredict,       ///< Keyed Predict; outcome = ticket (shard, id, label, scores).
  kFeed,          ///< Keyed Feed (immediate label path).
  kLabel,         ///< Label(shard, id, truth); outcome = applied flag.
  kAddShard,      ///< Table grew; outcome = new shard index.
  kDrainShard,    ///< Shard state migrated in place — spec no-op.
  kShipShard,     ///< SHIP: shard state captured + engine paused. Marks
                  ///< the cut a later kShipRestore rolls the shard to.
  kShipRestore,   ///< LOAD of the shipped bytes: the shard is exactly its
                  ///< kShipShard state again — labels that drained into
                  ///< the paused engine inside the window are discarded.
  kPersist,       ///< Durable cut: marks the prefix a crash rolls back to.
  kCrashRestart,  ///< Process death + Open(): history after the last
                  ///< kPersist never happened.
};

inline const char* SimOpKindName(SimOpKind kind) {
  switch (kind) {
    case SimOpKind::kPredict: return "Predict";
    case SimOpKind::kFeed: return "Feed";
    case SimOpKind::kLabel: return "Label";
    case SimOpKind::kAddShard: return "AddShard";
    case SimOpKind::kDrainShard: return "DrainShard";
    case SimOpKind::kShipShard: return "ShipShard";
    case SimOpKind::kShipRestore: return "ShipRestore";
    case SimOpKind::kPersist: return "Persist";
    case SimOpKind::kCrashRestart: return "CrashRestart";
  }
  return "?";
}

/// One recorded operation: its inputs plus the outcome the live monitor
/// handed back. The checker replays the inputs on the spec and demands
/// the same outcome.
struct SimOp {
  SimOpKind kind = SimOpKind::kPredict;
  int shard = -1;  ///< Shard the op landed on (ticket or routed).
  uint64_t key = 0;
  std::vector<double> features;  ///< kPredict input.
  double weight = 1.0;
  Instance instance;   ///< kFeed input.
  int true_label = 0;  ///< kLabel input.
  uint64_t id = 0;     ///< kPredict outcome / kLabel target.
  int predicted = 0;   ///< kPredict outcome: argmax label.
  std::vector<double> scores;  ///< kPredict outcome.
  bool applied = false;        ///< kLabel outcome.
  int new_shard = -1;          ///< kAddShard outcome.
};

struct SimHistory {
  std::vector<SimOp> ops;
};

/// Probabilities of the label-plane faults, drawn per Label() call from
/// the scheduler's seed stream. Zero planes never draw, so a
/// fault-free RecordingMonitor works outside a simulation too.
struct FaultPlane {
  double drop_label = 0.0;  ///< Label lost before reaching the monitor.
  double dup_label = 0.0;   ///< Label delivered twice (at-least-once bus).
};

// ------------------------------------------------- recording wrapper

/// Wraps a live ShardedMonitor, forwarding every call and appending the
/// observed (input, outcome) pair to a shared SimHistory. Concurrent use
/// is safe *under a sim Scheduler only* (sim-atomic appends — see the
/// header comment); outside one it is a single-threaded test aid.
class RecordingMonitor {
 public:
  RecordingMonitor(api::ShardedMonitor* live, SimHistory* history,
                   FaultPlane faults = FaultPlane())
      : live_(live), history_(history), faults_(faults),
        width_(live->shards()) {}

  api::ShardedMonitor::Prediction Predict(uint64_t key,
                                          const std::vector<double>& features,
                                          double weight = 1.0) {
    api::ShardedMonitor::Prediction ticket =
        live_->Predict(key, features, weight);
    SimOp op;
    op.kind = SimOpKind::kPredict;
    op.shard = ticket.shard;
    op.key = key;
    op.features = features;
    op.weight = weight;
    op.id = ticket.id;
    op.predicted = ticket.label;
    op.scores = ticket.scores;
    history_->ops.push_back(std::move(op));
    return ticket;
  }

  void Feed(uint64_t key, const Instance& instance) {
    live_->Feed(key, instance);
    SimOp op;
    op.kind = SimOpKind::kFeed;
    // No yield since Feed released its locks, and AddShard needs the
    // exclusive table lock, so `width_` still matches the table Feed
    // routed over.
    op.shard = runtime::Router::KeySlot(key, width_);
    op.key = key;
    op.instance = instance;
    history_->ops.push_back(std::move(op));
  }

  /// Lock-free ingress: enqueue onto the routed shard's bounded queue.
  /// Recorded as a plain kFeed *only when the live enqueue succeeds* —
  /// the queue is drained FIFO under the shard lock before that shard's
  /// next locked operation, so enqueue order per shard IS the order the
  /// engine will apply the entries in, and the locked op recorded after
  /// this one sees them applied first. A full queue (false) records
  /// nothing: the entry never existed. The width_/sim-atomicity argument
  /// is the same as Feed's — TryPush is a plain atomic op, no yield
  /// happens between it and the history append.
  bool FeedAsync(uint64_t key, const Instance& instance) {
    if (!live_->FeedAsync(key, instance)) {
      ++rejected_feeds_;
      return false;
    }
    SimOp op;
    op.kind = SimOpKind::kFeed;
    op.shard = runtime::Router::KeySlot(key, width_);
    op.key = key;
    op.instance = instance;
    history_->ops.push_back(std::move(op));
    return true;
  }

  /// Drains every shard's ingress queue. No history op: flushing only
  /// applies feeds that were already recorded at enqueue time. Scenarios
  /// using FeedAsync must call this before HistoryChecker::Check —
  /// aggregate reads do not drain, so queued entries would otherwise be
  /// recorded but not yet applied.
  void Flush() { live_->Flush(); }

  /// Label with the fault plane applied: may silently drop the delivery
  /// (returns false — the caller's label never arrived) or deliver it
  /// twice (the duplicate must bounce off exactly-once application).
  bool Label(int shard, uint64_t id, int true_label) {
    if (runtime::sim::Chance(faults_.drop_label)) {
      ++dropped_labels_;
      return false;
    }
    const bool applied = LabelOnce(shard, id, true_label);
    if (runtime::sim::Chance(faults_.dup_label)) {
      ++duplicated_labels_;
      LabelOnce(shard, id, true_label);
    }
    return applied;
  }

  int AddShard() {
    const int index = live_->AddShard();
    width_ = index + 1;
    SimOp op;
    op.kind = SimOpKind::kAddShard;
    op.new_shard = index;
    history_->ops.push_back(std::move(op));
    return index;
  }

  void DrainShard(int shard) {
    live_->DrainShard(shard);
    SimOp op;
    op.kind = SimOpKind::kDrainShard;
    op.shard = shard;
    history_->ops.push_back(std::move(op));
  }

  /// SHIP then LOAD of the same bytes back onto the same shard — the
  /// migration round-trip. Between the two calls the shard is paused;
  /// with `hold_ticks` > 0 the window is stretched so other tasks
  /// provably run into it (Predict/Feed throw std::logic_error — retry
  /// with PredictRetry below; Label keeps draining into the paused
  /// engine, and LOAD then discards exactly those window labels — the
  /// checker models that via the kShipShard cut).
  void ShipRestore(int shard, uint64_t hold_ticks = 0) {
    const std::string bytes = live_->ShipShard(shard);
    {
      // No yield since ShipShard released its locks, so this marker sits
      // at the exact cut the shipped bytes captured.
      SimOp op;
      op.kind = SimOpKind::kShipShard;
      op.shard = shard;
      history_->ops.push_back(std::move(op));
    }
    if (hold_ticks > 0) runtime::sim::SleepFor(hold_ticks);
    live_->RestoreShard(shard, bytes);
    SimOp op;
    op.kind = SimOpKind::kShipRestore;
    op.shard = shard;
    history_->ops.push_back(std::move(op));
  }

  void Persist(const std::string& directory) {
    live_->Persist(directory);
    SimOp op;
    op.kind = SimOpKind::kPersist;
    history_->ops.push_back(std::move(op));
  }

  // (The crash plane lives outside the wrapper: the test destroys the
  // live monitor — process death — reopens via ShardedMonitor::Open,
  // appends the event with RecordCrashRestart below, and constructs a
  // fresh wrapper over the reopened monitor.)

  api::ShardedMonitor& live() { return *live_; }
  uint64_t dropped_labels() const { return dropped_labels_; }
  uint64_t duplicated_labels() const { return duplicated_labels_; }
  uint64_t rejected_feeds() const { return rejected_feeds_; }

 private:
  bool LabelOnce(int shard, uint64_t id, int true_label) {
    const bool applied = live_->Label(shard, id, true_label);
    SimOp op;
    op.kind = SimOpKind::kLabel;
    op.shard = shard;
    op.id = id;
    op.true_label = true_label;
    op.applied = applied;
    history_->ops.push_back(std::move(op));
    return applied;
  }

  api::ShardedMonitor* live_;
  SimHistory* history_;
  FaultPlane faults_;
  // Sim-atomic (see header comment): updated in AddShard's record step,
  // read in Feed's — never concurrently.
  int width_;
  uint64_t dropped_labels_ = 0;
  uint64_t duplicated_labels_ = 0;
  uint64_t rejected_feeds_ = 0;  ///< FeedAsync backpressure rejections.
};

/// Marks a process death in the history: the checker discards every
/// state effect after the last kPersist (it never happened, durably)
/// and replays the surviving prefix onto fresh specs.
inline void RecordCrashRestart(SimHistory* history) {
  SimOp op;
  op.kind = SimOpKind::kCrashRestart;
  history->ops.push_back(std::move(op));
}

/// Predict that rides out a SHIP/LOAD pause window: a paused shard throws
/// std::logic_error; sleep a few virtual ticks and retry. The scheduler's
/// step limit converts a shard that never resumes into a test failure.
inline api::ShardedMonitor::Prediction PredictRetry(
    RecordingMonitor& monitor, uint64_t key, const std::vector<double>& features,
    double weight = 1.0) {
  for (;;) {
    try {
      return monitor.Predict(key, features, weight);
    } catch (const std::logic_error&) {
      runtime::sim::SleepFor(3);
    }
  }
}

/// Feed counterpart of PredictRetry.
inline void FeedRetry(RecordingMonitor& monitor, uint64_t key,
                      const Instance& instance) {
  for (;;) {
    try {
      monitor.Feed(key, instance);
      return;
    } catch (const std::logic_error&) {
      runtime::sim::SleepFor(3);
    }
  }
}

/// Drives one producer's delayed schedule through the wrapper:
/// Predict immediately, park the ticket in a bounded in-flight queue
/// (verification latency), Label the oldest once the queue holds `depth`,
/// drain at the end. `label_delay` ticks of virtual clock elapse before
/// each push.
inline void RunDelayedProducer(RecordingMonitor& monitor,
                               const std::vector<DelayedPush>& schedule,
                               size_t depth) {
  std::deque<std::pair<api::ShardedMonitor::Prediction, int>> in_flight;
  for (const DelayedPush& push : schedule) {
    if (push.label_delay > 0) runtime::sim::SleepFor(push.label_delay);
    in_flight.emplace_back(PredictRetry(monitor, push.push.key,
                                        push.push.instance.features,
                                        push.push.instance.weight),
                           push.push.instance.label);
    if (in_flight.size() >= depth) {
      const auto& front = in_flight.front();
      monitor.Label(front.first.shard, front.first.id, front.second);
      in_flight.pop_front();
    }
  }
  while (!in_flight.empty()) {
    const auto& front = in_flight.front();
    monitor.Label(front.first.shard, front.first.id, front.second);
    in_flight.pop_front();
  }
}

// ----------------------------------------------------------- checker

struct SimCheckResult {
  bool ok = true;
  std::string error;  ///< First violation, with op index and field.
};

/// Value-returning twin of ExpectSnapshotEq: "" when bit-identical, else
/// the first differing field — so injected-bug self-tests can assert the
/// checker *fires* instead of failing themselves.
inline std::string DescribeSnapshotDiff(const EngineSnapshot& a,
                                        const EngineSnapshot& b) {
  if (a.position != b.position) return "position";
  if (a.pending != b.pending) return "pending";
  if (a.evicted != b.evicted) return "evicted";
  if (a.unmatched_labels != b.unmatched_labels) return "unmatched_labels";
  if (a.metric_samples != b.metric_samples) return "metric_samples";
  if (a.next_id != b.next_id) return "next_id";
  if (a.last_detector_state != b.last_detector_state) {
    return "last_detector_state";
  }
  if (!(a.drift_log == b.drift_log)) return "drift_log";
  if (a.class_counts != b.class_counts) return "class_counts";
  if (!(a.window == b.window)) return "window";
  if (a.pending_predictions.size() != b.pending_predictions.size()) {
    return "pending_predictions.size";
  }
  for (size_t i = 0; i < a.pending_predictions.size(); ++i) {
    const auto& pa = a.pending_predictions[i];
    const auto& pb = b.pending_predictions[i];
    if (pa.id != pb.id || pa.predicted != pb.predicted ||
        pa.scores != pb.scores || pa.instance.features != pb.instance.features ||
        pa.instance.label != pb.instance.label ||
        pa.instance.weight != pb.instance.weight) {
      return "pending_predictions[" + std::to_string(i) + "]";
    }
  }
  if (a.sum_pmauc != b.sum_pmauc) return "sum_pmauc";
  if (a.sum_pmgm != b.sum_pmgm) return "sum_pmgm";
  if (a.sum_accuracy != b.sum_accuracy) return "sum_accuracy";
  if (a.sum_kappa != b.sum_kappa) return "sum_kappa";
  if (a.pmauc_series != b.pmauc_series) return "pmauc_series";
  return "";
}

/// Value-returning twin of ExpectBitIdentical over the deterministic
/// PrequentialResult fields.
inline std::string DescribeResultDiff(const PrequentialResult& a,
                                      const PrequentialResult& b) {
  if (a.instances != b.instances) return "instances";
  if (a.mean_pmauc != b.mean_pmauc) return "mean_pmauc";
  if (a.mean_pmgm != b.mean_pmgm) return "mean_pmgm";
  if (a.mean_accuracy != b.mean_accuracy) return "mean_accuracy";
  if (a.mean_kappa != b.mean_kappa) return "mean_kappa";
  if (a.drifts != b.drifts) return "drifts";
  if (a.drift_positions != b.drift_positions) return "drift_positions";
  if (!(a.drift_events == b.drift_events)) return "drift_events";
  if (a.pmauc_series != b.pmauc_series) return "pmauc_series";
  if (a.class_counts != b.class_counts) return "class_counts";
  return "";
}

/// Replays a recorded history against per-shard sequential api::Monitor
/// oracles and compares every observed outcome plus the final per-shard
/// snapshots and the merged aggregate result.
///
/// Rollback semantics, all expressed over the *effective history* (the
/// ordered op indices whose state effects the live system still holds):
///  * kPersist marks the durable cut; kCrashRestart discards every
///    effective op after the last cut (their recorded outcomes were
///    already checked when applied — only their state is gone) and
///    rebuilds the spec fleet by silent replay of the surviving prefix.
///  * kShipShard marks a per-shard cut; kShipRestore rolls exactly that
///    shard back to it — labels that drained into the paused engine
///    inside the SHIP→LOAD window are discarded, everything on other
///    shards stands. A window with no interleaved ops degenerates to the
///    transparency property: bit-identical to never having moved.
///  * kDrainShard applies no spec operation at all — same transparency.
/// Not modeled: a kPersist *inside* an open SHIP window (the durable cut
/// would capture window labels that LOAD then discards); no scenario
/// persists mid-migration.
class HistoryChecker {
 public:
  explicit HistoryChecker(SimServingConfig config)
      : config_(std::move(config)) {}

  SimCheckResult Check(const SimHistory& history,
                       const api::ShardedMonitor& live) {
    ResetSpecs();
    // Ordered history indices of the state-bearing ops applied so far.
    // Cuts are recorded as history indices too, so erasures elsewhere in
    // the list never invalidate them.
    std::vector<size_t> effective;
    size_t durable_cut = 0;              // Op index of the last kPersist.
    std::vector<size_t> ship_cut;        // Per shard: op index of open SHIP.

    for (size_t i = 0; i < history.ops.size(); ++i) {
      const SimOp& op = history.ops[i];
      if (op.kind == SimOpKind::kPersist) {
        durable_cut = i;
        continue;
      }
      if (op.kind == SimOpKind::kCrashRestart) {
        effective.erase(
            std::lower_bound(effective.begin(), effective.end(), durable_cut),
            effective.end());
        ResetSpecs();
        for (size_t j : effective) {
          const std::string err = Apply(history.ops[j], /*check=*/false);
          if (!err.empty()) return Fail(j, history.ops[j], "replay: " + err);
        }
        continue;
      }
      if (op.kind == SimOpKind::kShipShard) {
        if (op.shard < 0) return Fail(i, op, "ship of a negative shard");
        ship_cut.resize(
            std::max(ship_cut.size(), static_cast<size_t>(op.shard) + 1),
            kNoShip);
        ship_cut[static_cast<size_t>(op.shard)] = i;
        continue;
      }
      if (op.kind == SimOpKind::kShipRestore) {
        if (op.shard < 0 ||
            static_cast<size_t>(op.shard) >= ship_cut.size() ||
            ship_cut[static_cast<size_t>(op.shard)] == kNoShip) {
          return Fail(i, op, "LOAD without a matching SHIP");
        }
        const size_t shard = static_cast<size_t>(op.shard);
        const auto window_begin = std::lower_bound(
            effective.begin(), effective.end(), ship_cut[shard]);
        // The shard is its SHIP-time state again: rebuild its spec from
        // the pre-window prefix, drop its window ops from the history.
        specs_[shard] = MakeSpecShard(config_, op.shard);
        for (auto it = effective.begin(); it != window_begin; ++it) {
          if (history.ops[*it].shard != op.shard) continue;
          const std::string err = Apply(history.ops[*it], /*check=*/false);
          if (!err.empty()) return Fail(*it, history.ops[*it], "replay: " + err);
        }
        effective.erase(
            std::remove_if(window_begin, effective.end(),
                           [&](size_t j) {
                             return history.ops[j].shard == op.shard;
                           }),
            effective.end());
        ship_cut[shard] = kNoShip;
        continue;
      }
      const std::string err = Apply(op, /*check=*/true);
      if (!err.empty()) return Fail(i, op, err);
      effective.push_back(i);
    }

    // Final state: every shard of the live monitor must be bit-identical
    // to its sequential oracle, and the aggregate must be their merge.
    if (static_cast<int>(specs_.size()) != live.shards()) {
      SimCheckResult result;
      result.ok = false;
      result.error = "final: live has " + std::to_string(live.shards()) +
                     " shards, spec has " + std::to_string(specs_.size());
      return result;
    }
    std::vector<EngineSnapshot> spec_snapshots;
    spec_snapshots.reserve(specs_.size());
    for (size_t s = 0; s < specs_.size(); ++s) {
      EngineSnapshot spec_snapshot = specs_[s]->Snapshot();
      const std::string field = DescribeSnapshotDiff(
          live.ShardSnapshot(static_cast<int>(s)), spec_snapshot);
      if (!field.empty()) {
        SimCheckResult result;
        result.ok = false;
        result.error =
            "final: shard " + std::to_string(s) + " diverges at " + field;
        return result;
      }
      spec_snapshots.push_back(std::move(spec_snapshot));
    }
    const std::string field =
        DescribeResultDiff(live.Result(), MergedResult(spec_snapshots));
    if (!field.empty()) {
      SimCheckResult result;
      result.ok = false;
      result.error = "final: merged result diverges at " + field;
      return result;
    }
    return SimCheckResult();
  }

 private:
  static constexpr size_t kNoShip = static_cast<size_t>(-1);

  void ResetSpecs() {
    specs_.clear();
    for (int s = 0; s < config_.shards; ++s) {
      specs_.push_back(MakeSpecShard(config_, s));
    }
  }

  /// Applies one op to its spec shard. With `check`, demands the spec's
  /// outcome matches the recorded one. Returns "" or the violation.
  std::string Apply(const SimOp& op, bool check) {
    try {
      switch (op.kind) {
        case SimOpKind::kPredict: {
          api::Monitor* spec = Shard(op.shard);
          if (spec == nullptr) return "shard index out of spec range";
          const api::Monitor::Prediction p =
              spec->Predict(op.features, op.weight);
          if (check && p.id != op.id) {
            return "ticket id: spec " + std::to_string(p.id) + " vs observed " +
                   std::to_string(op.id);
          }
          if (check && p.label != op.predicted) {
            return "predicted label: spec " + std::to_string(p.label) +
                   " vs observed " + std::to_string(op.predicted);
          }
          if (check && p.scores != op.scores) return "prediction scores";
          return "";
        }
        case SimOpKind::kFeed: {
          api::Monitor* spec = Shard(op.shard);
          if (spec == nullptr) return "shard index out of spec range";
          spec->Feed(op.instance);
          return "";
        }
        case SimOpKind::kLabel: {
          api::Monitor* spec = Shard(op.shard);
          if (spec == nullptr) return "shard index out of spec range";
          const bool applied = spec->Label(op.id, op.true_label);
          if (check && applied != op.applied) {
            return std::string("label applied: spec ") +
                   (applied ? "true" : "false") + " vs observed " +
                   (op.applied ? "true" : "false");
          }
          return "";
        }
        case SimOpKind::kAddShard: {
          const int expected = static_cast<int>(specs_.size());
          if (check && op.new_shard != expected) {
            return "new shard index: spec " + std::to_string(expected) +
                   " vs observed " + std::to_string(op.new_shard);
          }
          specs_.push_back(MakeSpecShard(config_, expected));
          return "";
        }
        case SimOpKind::kDrainShard:
          return "";  // Migration transparency: spec no-op.
        case SimOpKind::kShipShard:
        case SimOpKind::kShipRestore:
        case SimOpKind::kPersist:
        case SimOpKind::kCrashRestart:
          return "marker op reached Apply()";  // Check() handles these.
      }
    } catch (const std::exception& e) {
      return std::string("spec replay threw: ") + e.what();
    }
    return "unknown op kind";
  }

  api::Monitor* Shard(int shard) {
    if (shard < 0 || static_cast<size_t>(shard) >= specs_.size()) {
      return nullptr;
    }
    return specs_[static_cast<size_t>(shard)].get();
  }

  static SimCheckResult Fail(size_t index, const SimOp& op,
                             const std::string& why) {
    SimCheckResult result;
    result.ok = false;
    std::ostringstream out;
    out << "op " << index << " (" << SimOpKindName(op.kind) << ", shard "
        << op.shard << "): " << why;
    result.error = out.str();
    return result;
  }

  SimServingConfig config_;
  std::vector<std::unique_ptr<api::Monitor>> specs_;
};

}  // namespace test_util
}  // namespace ccd

#endif  // CCD_TESTS_SIM_HARNESS_H_
