#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "classifiers/cs_perceptron_tree.h"
#include "classifiers/naive_bayes.h"
#include "classifiers/perceptron.h"
#include "generators/rbf.h"
#include "utils/rng.h"

namespace ccd {
namespace {

/// Simple two-Gaussian binary task: class 0 around 0.25, class 1 around
/// 0.75 in every dimension.
Instance DrawGaussianTask(Rng* rng, int d, double sep = 0.25) {
  int y = rng->Bernoulli(0.5) ? 1 : 0;
  std::vector<double> x(static_cast<size_t>(d));
  double center = y == 0 ? 0.5 - sep : 0.5 + sep;
  for (double& v : x) v = rng->Gaussian(center, 0.08);
  return Instance(std::move(x), y);
}

using ClassifierFactory =
    std::function<std::unique_ptr<OnlineClassifier>(const StreamSchema&)>;

struct NamedClassifier {
  std::string name;
  ClassifierFactory make;
};

class ClassifierSuite : public ::testing::TestWithParam<NamedClassifier> {};

TEST_P(ClassifierSuite, LearnsSeparableTask) {
  StreamSchema schema(4, 2);
  auto clf = GetParam().make(schema);
  Rng rng(3);
  for (int i = 0; i < 3000; ++i) clf->Train(DrawGaussianTask(&rng, 4));
  int correct = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    Instance inst = DrawGaussianTask(&rng, 4);
    if (clf->Predict(inst) == inst.label) ++correct;
  }
  EXPECT_GT(correct, static_cast<int>(0.9 * n)) << GetParam().name;
}

TEST_P(ClassifierSuite, ScoresAreNormalizedProbabilities) {
  StreamSchema schema(3, 4);
  auto clf = GetParam().make(schema);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x = {rng.NextDouble(), rng.NextDouble(),
                             rng.NextDouble()};
    clf->Train(Instance(x, rng.UniformInt(0, 3)));
  }
  Instance probe({0.5, 0.5, 0.5}, -1);
  auto scores = clf->PredictScores(probe);
  ASSERT_EQ(scores.size(), 4u) << GetParam().name;
  double sum = 0.0;
  for (double s : scores) {
    EXPECT_GE(s, 0.0) << GetParam().name;
    sum += s;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6) << GetParam().name;
}

TEST_P(ClassifierSuite, ResetForgetsEverything) {
  StreamSchema schema(4, 2);
  auto clf = GetParam().make(schema);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) clf->Train(DrawGaussianTask(&rng, 4));
  clf->Reset();
  // After reset the scores must be (near) uninformative on both classes.
  Instance a = DrawGaussianTask(&rng, 4);
  auto scores = clf->PredictScores(a);
  EXPECT_NEAR(scores[0], scores[1], 0.2) << GetParam().name;
}

TEST_P(ClassifierSuite, CloneIsFreshAndIndependent) {
  StreamSchema schema(4, 2);
  auto clf = GetParam().make(schema);
  Rng rng(9);
  for (int i = 0; i < 500; ++i) clf->Train(DrawGaussianTask(&rng, 4));
  auto clone = clf->Clone();
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->schema().num_classes, 2);
  // The clone is untrained: training it must not affect the original.
  Instance probe = DrawGaussianTask(&rng, 4);
  auto before = clf->PredictScores(probe);
  for (int i = 0; i < 100; ++i) clone->Train(DrawGaussianTask(&rng, 4));
  auto after = clf->PredictScores(probe);
  EXPECT_EQ(before, after) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllClassifiers, ClassifierSuite,
    ::testing::Values(
        NamedClassifier{"SoftmaxPerceptron",
                        [](const StreamSchema& s) {
                          return std::make_unique<SoftmaxPerceptron>(s);
                        }},
        NamedClassifier{"GaussianNB",
                        [](const StreamSchema& s) {
                          return std::make_unique<GaussianNaiveBayes>(s);
                        }},
        NamedClassifier{"CSPerceptronTree",
                        [](const StreamSchema& s) {
                          return std::make_unique<CsPerceptronTree>(s);
                        }}),
    [](const ::testing::TestParamInfo<NamedClassifier>& info) {
      return info.param.name;
    });

// ------------------------------------------------------ cost-sensitivity
TEST(SoftmaxPerceptronTest, CostWeightBoostsMinority) {
  StreamSchema schema(2, 2);
  SoftmaxPerceptron clf(schema);
  Rng rng(3);
  // 95:5 imbalance.
  for (int i = 0; i < 2000; ++i) {
    int y = rng.Bernoulli(0.05) ? 1 : 0;
    clf.Train(Instance({rng.NextDouble(), rng.NextDouble()}, y));
  }
  EXPECT_GT(clf.CostWeight(1), clf.CostWeight(0));
  EXPECT_GE(clf.CostWeight(1), 2.0);
}

TEST(SoftmaxPerceptronTest, CostSensitiveImprovesMinorityRecall) {
  StreamSchema schema(2, 2);
  SoftmaxPerceptron::Params cs;
  cs.cost_sensitive = true;
  SoftmaxPerceptron::Params plain;
  plain.cost_sensitive = false;
  SoftmaxPerceptron with_cs(schema, cs), without(schema, plain);

  auto draw = [](Rng* rng) {
    // Overlapping classes, 97:3 imbalance: cost-blind learners collapse to
    // the majority.
    int y = rng->Bernoulli(0.03) ? 1 : 0;
    double center = y == 0 ? 0.45 : 0.55;
    return Instance({rng->Gaussian(center, 0.08), rng->Gaussian(center, 0.08)},
                    y);
  };
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    Instance inst = draw(&rng);
    with_cs.Train(inst);
    without.Train(inst);
  }
  int rec_cs = 0, rec_plain = 0, n1 = 0;
  for (int i = 0; i < 20000; ++i) {
    Instance inst = draw(&rng);
    if (inst.label != 1) continue;
    ++n1;
    rec_cs += with_cs.Predict(inst) == 1;
    rec_plain += without.Predict(inst) == 1;
  }
  ASSERT_GT(n1, 100);
  EXPECT_GT(static_cast<double>(rec_cs) / n1,
            static_cast<double>(rec_plain) / n1 + 0.1);
}

// ----------------------------------------------------------------- NB
TEST(GaussianNaiveBayesTest, UsesFeatureLikelihood) {
  StreamSchema schema(1, 2);
  GaussianNaiveBayes nb(schema);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    nb.Train(Instance({rng.Gaussian(0.2, 0.05)}, 0));
    nb.Train(Instance({rng.Gaussian(0.8, 0.05)}, 1));
  }
  EXPECT_EQ(nb.Predict(Instance({0.15}, -1)), 0);
  EXPECT_EQ(nb.Predict(Instance({0.85}, -1)), 1);
  auto s = nb.PredictScores(Instance({0.2}, -1));
  EXPECT_GT(s[0], 0.95);
}

// ----------------------------------------------------------------- tree
TEST(CsPerceptronTreeTest, SplitsOnAxisAlignedStructure) {
  StreamSchema schema(2, 2);  // Binary band task below.
  CsPerceptronTree::Params p;
  p.grace_period = 100;
  p.max_depth = 6;
  CsPerceptronTree tree(schema, p);
  Rng rng(3);
  // Three well-separated bands along feature 0: the Gaussian class models
  // see distinct means, so the tree must split (and beat a single leaf).
  auto draw = [&rng]() {
    double x = rng.NextDouble(), y = rng.NextDouble();
    int label = x < 0.33 ? 0 : 1;
    return Instance({x, y}, label);
  };
  for (int i = 0; i < 20000; ++i) tree.Train(draw());
  EXPECT_GT(tree.num_leaves(), 1) << "tree never split";
  int correct = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    Instance inst = draw();
    if (tree.Predict(inst) == inst.label) ++correct;
  }
  EXPECT_GT(correct, static_cast<int>(0.9 * n));
}

TEST(CsPerceptronTreeTest, RespectsDepthAndLeafCaps) {
  StreamSchema schema(4, 3);
  CsPerceptronTree::Params p;
  p.grace_period = 50;
  p.max_depth = 3;
  p.max_leaves = 6;
  CsPerceptronTree tree(schema, p);
  Rng rng(5);
  for (int i = 0; i < 30000; ++i) {
    std::vector<double> x = {rng.NextDouble(), rng.NextDouble(),
                             rng.NextDouble(), rng.NextDouble()};
    int label = static_cast<int>(x[0] * 2.9999) % 3;
    tree.Train(Instance(x, label));
  }
  EXPECT_LE(tree.depth(), 3);
  EXPECT_LE(tree.num_leaves(), 6);
}

TEST(CsPerceptronTreeTest, MulticlassOnRbfConcept) {
  RbfConcept::Options o;
  o.num_features = 8;
  o.num_classes = 5;
  RbfConcept gen(o, 3);
  CsPerceptronTree tree(gen.schema());
  Rng rng(7);
  for (int i = 0; i < 8000; ++i) tree.Train(gen.Sample(&rng));
  int correct = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    Instance inst = gen.Sample(&rng);
    if (tree.Predict(inst) == inst.label) ++correct;
  }
  EXPECT_GT(correct, static_cast<int>(0.75 * n));
}

}  // namespace
}  // namespace ccd
