#ifndef CCD_TESTS_TESTING_UTIL_H_
#define CCD_TESTS_TESTING_UTIL_H_

// Shared fixtures of the evaluation-layer tests (eval_test, monitor_test,
// sharded_test): tiny deterministic streams, stub classifiers/detectors
// with known behavior, and result/snapshot equality helpers. Everything
// here is deterministic from its seed so tests can assert bit-identity.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "classifiers/classifier.h"
#include "detectors/detector.h"
#include "eval/engine.h"
#include "eval/prequential.h"
#include "generators/drifting_stream.h"
#include "generators/rbf.h"
#include "generators/sea.h"
#include "runtime/router.h"
#include "runtime/thread_pool.h"
#include "stream/stream.h"

namespace ccd {
namespace test_util {

/// A short, cheap protocol for equivalence tests: small window, frequent
/// samples, nondeterministic wall-clock timing off.
inline PrequentialConfig ShortConfig() {
  PrequentialConfig cfg;
  cfg.max_instances = 2000;
  cfg.metric_window = 400;
  cfg.eval_interval = 100;
  cfg.warmup = 150;
  cfg.timing = false;  // Wall-clock fields are inherently nondeterministic.
  return cfg;
}

/// Asserts every deterministic field of two PrequentialResults is equal,
/// bit for bit (the *_seconds wall-clock fields are excluded by design).
inline void ExpectBitIdentical(const PrequentialResult& a,
                               const PrequentialResult& b) {
  EXPECT_EQ(a.instances, b.instances);
  EXPECT_EQ(a.mean_pmauc, b.mean_pmauc);
  EXPECT_EQ(a.mean_pmgm, b.mean_pmgm);
  EXPECT_EQ(a.mean_accuracy, b.mean_accuracy);
  EXPECT_EQ(a.mean_kappa, b.mean_kappa);
  EXPECT_EQ(a.drifts, b.drifts);
  EXPECT_EQ(a.drift_positions, b.drift_positions);
  EXPECT_EQ(a.drift_events, b.drift_events);
  EXPECT_EQ(a.pmauc_series, b.pmauc_series);
  EXPECT_EQ(a.class_counts, b.class_counts);
}

/// Asserts two Instances are bit-identical.
inline void ExpectInstanceEq(const Instance& a, const Instance& b) {
  EXPECT_EQ(a.features, b.features);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.weight, b.weight);
}

/// Asserts every field of two EngineSnapshots is equal, bit for bit —
/// timing fields included, since snapshots of the *same* engine state must
/// round-trip exactly.
inline void ExpectSnapshotEq(const EngineSnapshot& a, const EngineSnapshot& b) {
  EXPECT_EQ(a.position, b.position);
  EXPECT_EQ(a.pending, b.pending);
  EXPECT_EQ(a.evicted, b.evicted);
  EXPECT_EQ(a.unmatched_labels, b.unmatched_labels);
  EXPECT_EQ(a.metric_samples, b.metric_samples);
  EXPECT_EQ(a.next_id, b.next_id);
  EXPECT_EQ(a.last_detector_state, b.last_detector_state);
  EXPECT_EQ(a.drift_log, b.drift_log);
  EXPECT_EQ(a.class_counts, b.class_counts);
  EXPECT_EQ(a.window, b.window);
  ASSERT_EQ(a.pending_predictions.size(), b.pending_predictions.size());
  for (size_t i = 0; i < a.pending_predictions.size(); ++i) {
    EXPECT_EQ(a.pending_predictions[i].id, b.pending_predictions[i].id);
    EXPECT_EQ(a.pending_predictions[i].predicted,
              b.pending_predictions[i].predicted);
    EXPECT_EQ(a.pending_predictions[i].scores, b.pending_predictions[i].scores);
    ExpectInstanceEq(a.pending_predictions[i].instance,
                     b.pending_predictions[i].instance);
  }
  EXPECT_EQ(a.sum_pmauc, b.sum_pmauc);
  EXPECT_EQ(a.sum_pmgm, b.sum_pmgm);
  EXPECT_EQ(a.sum_accuracy, b.sum_accuracy);
  EXPECT_EQ(a.sum_kappa, b.sum_kappa);
  EXPECT_EQ(a.pmauc_series, b.pmauc_series);
  EXPECT_EQ(a.detector_seconds, b.detector_seconds);
  EXPECT_EQ(a.classifier_seconds, b.classifier_seconds);
}

/// Stateless classifier: scores depend only on the instance (first feature
/// modulo the class count gets the mass), Train is a no-op. Under it, a
/// prediction made early is identical to one made late, so any label delay
/// must leave the detector path untouched.
class FrozenClassifier : public OnlineClassifier {
 public:
  explicit FrozenClassifier(const StreamSchema& schema) : schema_(schema) {}
  const StreamSchema& schema() const override { return schema_; }
  void Train(const Instance&) override {}
  std::vector<double> PredictScores(const Instance& instance) const override {
    const size_t k = static_cast<size_t>(schema_.num_classes);
    std::vector<double> scores(k, 0.1 / static_cast<double>(k));
    double f = instance.features.empty() ? 0.0 : instance.features[0];
    size_t hot = static_cast<size_t>(std::abs(static_cast<long>(f * 7))) % k;
    scores[hot] += 0.9;
    return scores;
  }
  void Reset() override {}
  std::unique_ptr<OnlineClassifier> Clone() const override {
    return std::make_unique<FrozenClassifier>(schema_);
  }
  std::unique_ptr<OnlineClassifier> CloneState() const override {
    return Clone();  // Stateless: a fresh copy *is* the state.
  }
  std::string name() const override { return "frozen"; }

 private:
  StreamSchema schema_;
};

/// Minimal classifier stub: uniform scores, counts Reset() calls so tests
/// can observe whether a drift signal reached the coupling.
class CountingStubClassifier : public OnlineClassifier {
 public:
  explicit CountingStubClassifier(const StreamSchema& schema)
      : schema_(schema) {}
  const StreamSchema& schema() const override { return schema_; }
  void Train(const Instance&) override {}
  std::vector<double> PredictScores(const Instance&) const override {
    return std::vector<double>(static_cast<size_t>(schema_.num_classes),
                               1.0 / schema_.num_classes);
  }
  void Reset() override { ++resets; }
  std::unique_ptr<OnlineClassifier> Clone() const override {
    return std::make_unique<CountingStubClassifier>(schema_);
  }
  std::string name() const override { return "counting-stub"; }

  int resets = 0;

 private:
  StreamSchema schema_;
};

/// Classifier that returns no scores at all — the degenerate case the
/// argmax and metrics paths must survive (missing support == 0).
class ScorelessClassifier : public OnlineClassifier {
 public:
  explicit ScorelessClassifier(const StreamSchema& schema)
      : schema_(schema) {}
  const StreamSchema& schema() const override { return schema_; }
  void Train(const Instance&) override {}
  std::vector<double> PredictScores(const Instance&) const override {
    return {};
  }
  void Reset() override {}
  std::unique_ptr<OnlineClassifier> Clone() const override {
    return std::make_unique<ScorelessClassifier>(schema_);
  }
  std::string name() const override { return "scoreless"; }

 private:
  StreamSchema schema_;
};

/// Detector that sits in persistent warning regions — the DDM-family shape
/// the engine's warning-zone latch exists for (on_warning must fire on
/// region *entry*, not per instance, and a snapshot/restore inside a
/// region must not re-fire it).
class WarningRegionDetector : public DriftDetector {
 public:
  void Observe(const Instance&, int, const std::vector<double>&) override {
    ++observed_;
  }
  DetectorState state() const override {
    // Two warning regions: [300, 400) and [600, 650).
    const bool warn = (observed_ >= 300 && observed_ < 400) ||
                      (observed_ >= 600 && observed_ < 650);
    return warn ? DetectorState::kWarning : DetectorState::kStable;
  }
  void Reset() override {}
  std::unique_ptr<DriftDetector> CloneState() const override {
    return std::make_unique<WarningRegionDetector>(*this);
  }
  std::string name() const override { return "warning-region"; }

 private:
  uint64_t observed_ = 0;
};

/// Tiny deterministic drifting stream: two RBF concepts with a sudden
/// switch at `drift_at` and a 10:1 class imbalance (3 classes, 6
/// features). The workhorse stream of the evaluation tests.
inline std::unique_ptr<DriftingClassStream> MakeRbfDriftStream(
    uint64_t drift_at, uint64_t seed) {
  RbfConcept::Options co;
  co.num_features = 6;
  co.num_classes = 3;
  std::vector<std::unique_ptr<Concept>> cs;
  cs.push_back(std::make_unique<RbfConcept>(co, 1));
  cs.push_back(std::make_unique<RbfConcept>(co, 2));
  DriftEvent ev;
  ev.start = drift_at;
  ev.type = DriftType::kSudden;
  ImbalanceSchedule::Options io;
  io.num_classes = 3;
  io.base_ir = 10.0;
  return std::make_unique<DriftingClassStream>(
      std::move(cs), std::vector<DriftEvent>{ev}, ImbalanceSchedule(io), seed);
}

/// SEA companion of MakeRbfDriftStream: two SEA concept variants (the
/// relevant feature pair rotates at the drift), 4 features, 3 classes,
/// 5:1 imbalance — a structurally different generator for differential
/// grids.
inline std::unique_ptr<DriftingClassStream> MakeSeaDriftStream(
    uint64_t drift_at, uint64_t seed) {
  SeaConcept::Options so;
  so.num_features = 4;
  so.num_classes = 3;
  std::vector<std::unique_ptr<Concept>> cs;
  so.variant = 0;
  cs.push_back(std::make_unique<SeaConcept>(so, 1));
  so.variant = 1;
  cs.push_back(std::make_unique<SeaConcept>(so, 2));
  DriftEvent ev;
  ev.start = drift_at;
  ev.type = DriftType::kSudden;
  ImbalanceSchedule::Options io;
  io.num_classes = 3;
  io.base_ir = 5.0;
  return std::make_unique<DriftingClassStream>(
      std::move(cs), std::vector<DriftEvent>{ev}, ImbalanceSchedule(io), seed);
}

// ------------------------------------------------- concurrency harness

/// Runs `fn(0) .. fn(producers-1)` on `producers` dedicated threads that
/// all start together (runtime::RunThreads): every thread parks on a
/// start barrier until the last one is up, so the calls genuinely contend
/// instead of running in spawn order. The first exception (in
/// thread-index order) is rethrown on the calling thread, so a producer
/// failure is a test failure, not a std::terminate.
inline void RunProducers(int producers, const std::function<void(int)>& fn) {
  runtime::RunThreads(producers, fn);
}

/// One push of a keyed serving schedule.
struct KeyedInstance {
  uint64_t key = 0;
  Instance instance;
};

/// The first `count` keys (scanning k = 0, 1, 2, ...) that a
/// `slots`-wide hash router sends to `slot` — the key pool a producer
/// thread that must own exactly one shard draws from.
inline std::vector<uint64_t> KeysForSlot(int slot, int slots, size_t count) {
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; keys.size() < count; ++k) {
    if (runtime::Router::KeySlot(k, slots) == slot) keys.push_back(k);
  }
  return keys;
}

/// Deterministic per-producer schedule: `count` instances drawn from a
/// seeded RBF drift stream (drift mid-schedule), keys cycling over
/// `keys`. Two calls with the same arguments produce the same pushes, so
/// a multi-threaded run can be replayed single-threaded for comparison.
inline std::vector<KeyedInstance> MakeKeyedSchedule(
    const std::vector<uint64_t>& keys, size_t count, uint64_t seed) {
  auto stream = MakeRbfDriftStream(/*drift_at=*/count / 2, seed);
  const std::vector<Instance> data = Take(stream.get(), count);
  std::vector<KeyedInstance> schedule;
  schedule.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    schedule.push_back(KeyedInstance{keys[i % keys.size()], data[i]});
  }
  return schedule;
}

/// A keyed push plus the virtual-clock delay that precedes it — the unit
/// of a simulated stream with label latency (runtime/sim.h SleepFor
/// ticks; meaningless outside a simulation, where delay 0 fixtures still
/// work unchanged).
struct DelayedPush {
  KeyedInstance push;
  uint64_t label_delay = 0;
};

/// MakeKeyedSchedule with deterministic per-push delays in
/// [0, max_delay], drawn via the pinned Router::HashKey mix so the
/// schedule is identical across runs and platforms for a given seed.
inline std::vector<DelayedPush> MakeDelaySchedule(
    const std::vector<uint64_t>& keys, size_t count, uint64_t seed,
    uint64_t max_delay) {
  const std::vector<KeyedInstance> base = MakeKeyedSchedule(keys, count, seed);
  std::vector<DelayedPush> schedule;
  schedule.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    DelayedPush push;
    push.push = base[i];
    push.label_delay =
        max_delay == 0
            ? 0
            : runtime::Router::HashKey(seed * 0x9e3779b9u + i) %
                  (max_delay + 1);
    schedule.push_back(std::move(push));
  }
  return schedule;
}

}  // namespace test_util
}  // namespace ccd

#endif  // CCD_TESTS_TESTING_UTIL_H_
