#include <gtest/gtest.h>

#include <cmath>

#include "core/rbm.h"
#include "utils/rng.h"

namespace ccd {
namespace {

Rbm::Params SmallParams() {
  Rbm::Params p;
  p.visible = 6;
  p.hidden = 8;
  p.classes = 3;
  p.learning_rate = 0.1;
  return p;
}

/// Two well-separated class prototypes in [0,1]^6 with jitter.
Instance DrawProto(Rng* rng, int y) {
  std::vector<double> x(6);
  for (size_t i = 0; i < 6; ++i) {
    double base = y == 0 ? 0.15 : (y == 1 ? 0.5 : 0.85);
    x[i] = std::clamp(base + rng->Gaussian(0.0, 0.05), 0.0, 1.0);
  }
  return Instance(std::move(x), y);
}

std::vector<Instance> DrawBatch(Rng* rng, int n, double p0 = 0.34,
                                double p1 = 0.33) {
  std::vector<Instance> batch;
  for (int i = 0; i < n; ++i) {
    double u = rng->NextDouble();
    int y = u < p0 ? 0 : (u < p0 + p1 ? 1 : 2);
    batch.push_back(DrawProto(rng, y));
  }
  return batch;
}

TEST(RbmTest, ProbabilityOutputsAreValid) {
  Rbm rbm(SmallParams(), 3);
  std::vector<double> v = {0.1, 0.9, 0.5, 0.3, 0.7, 0.2};
  std::vector<double> z = {1.0, 0.0, 0.0};
  auto h = rbm.HiddenProbs(v, z);
  ASSERT_EQ(h.size(), 8u);
  for (double p : h) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
  auto vr = rbm.VisibleProbs(h);
  ASSERT_EQ(vr.size(), 6u);
  for (double p : vr) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
  auto zr = rbm.ClassProbs(h);
  double sum = 0.0;
  for (double p : zr) {
    EXPECT_GT(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(RbmTest, EnergyDecreasesForTrainedPatterns) {
  // After training, the (v, h(v,z), z) configuration of in-distribution
  // data should have lower energy than random noise configurations.
  Rbm rbm(SmallParams(), 3);
  Rng rng(5);
  for (int b = 0; b < 300; ++b) rbm.TrainBatch(DrawBatch(&rng, 20));

  double trained_energy = 0.0, noise_energy = 0.0;
  for (int i = 0; i < 100; ++i) {
    Instance inst = DrawProto(&rng, rng.UniformInt(0, 2));
    std::vector<double> z(3, 0.0);
    z[static_cast<size_t>(inst.label)] = 1.0;
    auto h = rbm.HiddenProbs(inst.features, z);
    trained_energy += rbm.Energy(inst.features, h, z);

    std::vector<double> vn(6);
    for (double& v : vn) v = rng.NextDouble();
    std::vector<double> zn(3, 0.0);
    zn[static_cast<size_t>(rng.UniformInt(0, 2))] = 1.0;
    auto hn = rbm.HiddenProbs(vn, zn);
    noise_energy += rbm.Energy(vn, hn, zn);
  }
  EXPECT_LT(trained_energy, noise_energy);
}

TEST(RbmTest, ReconstructionErrorDropsWithTraining) {
  Rbm rbm(SmallParams(), 3);
  Rng rng(7);
  auto mean_recon = [&rbm](Rng* r) {
    double sum = 0.0;
    for (int i = 0; i < 200; ++i) {
      Instance inst = DrawProto(r, r->UniformInt(0, 2));
      sum += rbm.ReconstructionError(inst.features, inst.label);
    }
    return sum / 200.0;
  };
  double before = mean_recon(&rng);
  for (int b = 0; b < 400; ++b) rbm.TrainBatch(DrawBatch(&rng, 20));
  double after = mean_recon(&rng);
  EXPECT_LT(after, before - 0.02);
}

TEST(RbmTest, ReconstructionErrorIsNormalized) {
  Rbm rbm(SmallParams(), 3);
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    Instance inst = DrawProto(&rng, rng.UniformInt(0, 2));
    double r = rbm.ReconstructionError(inst.features, inst.label);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(RbmTest, ReconstructionHigherForUnseenConcept) {
  Rbm rbm(SmallParams(), 3);
  Rng rng(11);
  for (int b = 0; b < 400; ++b) rbm.TrainBatch(DrawBatch(&rng, 20));
  // In-distribution error.
  double in_dist = 0.0;
  for (int i = 0; i < 200; ++i) {
    Instance inst = DrawProto(&rng, 0);
    in_dist += rbm.ReconstructionError(inst.features, inst.label);
  }
  // Shifted concept: class-0 instances moved to an unseen prototype.
  double shifted = 0.0;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x(6);
    for (double& v : x) v = std::clamp(0.95 + rng.Gaussian(0.0, 0.03), 0.0, 1.0);
    shifted += rbm.ReconstructionError(x, 0);
  }
  EXPECT_GT(shifted / 200.0, in_dist / 200.0 + 0.02);
}

TEST(RbmTest, ClassReadoutLearnsPosterior) {
  Rbm rbm(SmallParams(), 3);
  Rng rng(13);
  for (int b = 0; b < 600; ++b) rbm.TrainBatch(DrawBatch(&rng, 20));
  int correct = 0;
  for (int i = 0; i < 300; ++i) {
    int y = rng.UniformInt(0, 2);
    Instance inst = DrawProto(&rng, y);
    auto probs = rbm.ClassReadout(inst.features);
    int arg = 0;
    for (int k = 1; k < 3; ++k) {
      if (probs[static_cast<size_t>(k)] > probs[static_cast<size_t>(arg)]) arg = k;
    }
    correct += arg == y;
  }
  EXPECT_GT(correct, 240);  // >80% on a trivially separable task.
}

TEST(RbmTest, ClassWeightFavorsMinority) {
  Rbm::Params p = SmallParams();
  Rbm rbm(p, 3);
  Rng rng(15);
  // 90:9:1 imbalance.
  for (int b = 0; b < 100; ++b) {
    std::vector<Instance> batch;
    for (int i = 0; i < 20; ++i) {
      double u = rng.NextDouble();
      int y = u < 0.90 ? 0 : (u < 0.99 ? 1 : 2);
      batch.push_back(DrawProto(&rng, y));
    }
    rbm.TrainBatch(batch);
  }
  EXPECT_GT(rbm.ClassWeight(2), rbm.ClassWeight(1));
  EXPECT_GT(rbm.ClassWeight(1), rbm.ClassWeight(0));
  EXPECT_GT(rbm.class_count(0), rbm.class_count(2));
}

TEST(RbmTest, BalancedWeightsWhenDisabled) {
  Rbm::Params p = SmallParams();
  p.class_balanced = false;
  Rbm rbm(p, 3);
  Rng rng(17);
  for (int b = 0; b < 50; ++b) rbm.TrainBatch(DrawBatch(&rng, 20, 0.9, 0.09));
  EXPECT_DOUBLE_EQ(rbm.ClassWeight(0), 1.0);
  EXPECT_DOUBLE_EQ(rbm.ClassWeight(2), 1.0);
}

TEST(RbmTest, SkewInsensitiveLossHelpsMinorityRepresentation) {
  // Train one balanced-loss and one plain RBM on a 97:2:1 stream; the
  // balanced model must reconstruct the rare class better.
  Rbm::Params balanced = SmallParams();
  balanced.class_balanced = true;
  Rbm::Params plain = SmallParams();
  plain.class_balanced = false;
  Rbm rbm_b(balanced, 3), rbm_p(plain, 3);
  Rng rng(19);
  for (int b = 0; b < 500; ++b) {
    std::vector<Instance> batch;
    for (int i = 0; i < 25; ++i) {
      double u = rng.NextDouble();
      int y = u < 0.97 ? 0 : (u < 0.99 ? 1 : 2);
      batch.push_back(DrawProto(&rng, y));
    }
    rbm_b.TrainBatch(batch);
    rbm_p.TrainBatch(batch);
  }
  double err_b = 0.0, err_p = 0.0;
  for (int i = 0; i < 300; ++i) {
    Instance inst = DrawProto(&rng, 2);
    err_b += rbm_b.ReconstructionError(inst.features, 2);
    err_p += rbm_p.ReconstructionError(inst.features, 2);
  }
  EXPECT_LT(err_b, err_p);
}

TEST(RbmTest, DeterministicGivenSeed) {
  Rbm a(SmallParams(), 21), b(SmallParams(), 21);
  Rng ra(23), rb(23);
  for (int i = 0; i < 20; ++i) {
    a.TrainBatch(DrawBatch(&ra, 10));
    b.TrainBatch(DrawBatch(&rb, 10));
  }
  Instance probe = DrawProto(&ra, 1);
  EXPECT_DOUBLE_EQ(a.ReconstructionError(probe.features, 1),
                   b.ReconstructionError(probe.features, 1));
}

TEST(RbmTest, ClassifyProbsFreeEnergyIsDistribution) {
  Rbm rbm(SmallParams(), 3);
  Rng rng(25);
  for (int b = 0; b < 100; ++b) rbm.TrainBatch(DrawBatch(&rng, 20));
  auto probs = rbm.ClassifyProbs(DrawProto(&rng, 0).features);
  double sum = 0.0;
  for (double p : probs) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace ccd
