#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "generators/agrawal.h"
#include "generators/drift.h"
#include "generators/drifting_stream.h"
#include "generators/hyperplane.h"
#include "generators/imbalance.h"
#include "generators/random_tree.h"
#include "generators/rbf.h"
#include "generators/registry.h"
#include "generators/sea.h"

namespace ccd {
namespace {

// ------------------------------------------------------------------ helpers
std::vector<int> CountLabels(Concept* gen, int k, int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int> counts(static_cast<size_t>(k), 0);
  for (int i = 0; i < n; ++i) {
    Instance inst = gen->Sample(&rng);
    EXPECT_GE(inst.label, 0);
    EXPECT_LT(inst.label, k);
    ++counts[static_cast<size_t>(inst.label)];
  }
  return counts;
}

// ------------------------------------------------------------------- drift
TEST(DriftEventTest, AlphaProgression) {
  DriftEvent e;
  e.start = 100;
  e.width = 50;
  e.type = DriftType::kGradual;
  EXPECT_DOUBLE_EQ(e.Alpha(0), 0.0);
  EXPECT_DOUBLE_EQ(e.Alpha(99), 0.0);
  EXPECT_DOUBLE_EQ(e.Alpha(100), 0.0);
  EXPECT_DOUBLE_EQ(e.Alpha(125), 0.5);
  EXPECT_DOUBLE_EQ(e.Alpha(150), 1.0);
  EXPECT_DOUBLE_EQ(e.Alpha(1000), 1.0);
}

TEST(DriftEventTest, SuddenAlphaIsStep) {
  DriftEvent e;
  e.start = 10;
  e.width = 0;
  EXPECT_DOUBLE_EQ(e.Alpha(9), 0.0);
  EXPECT_DOUBLE_EQ(e.Alpha(10), 1.0);
}

TEST(DriftEventTest, AffectsSubset) {
  DriftEvent e;
  e.affected = {1, 3};
  EXPECT_TRUE(e.Affects(1));
  EXPECT_TRUE(e.Affects(3));
  EXPECT_FALSE(e.Affects(0));
  DriftEvent global;
  EXPECT_TRUE(global.Affects(0));
  EXPECT_TRUE(global.Affects(42));
}

TEST(EvenlySpacedEventsTest, PositionsAndWidths) {
  auto events = EvenlySpacedEvents(1000, 3, DriftType::kGradual, 100);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].start, 250u);
  EXPECT_EQ(events[1].start, 500u);
  EXPECT_EQ(events[2].start, 750u);
  for (const auto& e : events) EXPECT_EQ(e.width, 100u);
  auto sudden = EvenlySpacedEvents(1000, 2, DriftType::kSudden, 100);
  for (const auto& e : sudden) EXPECT_EQ(e.width, 0u);
}

// --------------------------------------------------------------- imbalance
TEST(ImbalanceScheduleTest, StaticLadderMatchesIr) {
  ImbalanceSchedule::Options o;
  o.num_classes = 5;
  o.base_ir = 100.0;
  ImbalanceSchedule s(o);
  auto p = s.PriorsAt(0);
  double sum = 0.0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(p[0] / p[4], 100.0, 1e-6);
  // Monotone decreasing ladder.
  for (int i = 1; i < 5; ++i) EXPECT_LT(p[static_cast<size_t>(i)], p[static_cast<size_t>(i - 1)]);
}

TEST(ImbalanceScheduleTest, UniformWhenIrOne) {
  ImbalanceSchedule s = ImbalanceSchedule::Uniform(4);
  auto p = s.PriorsAt(123);
  for (double v : p) EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(ImbalanceScheduleTest, DynamicIrOscillates) {
  ImbalanceSchedule::Options o;
  o.num_classes = 3;
  o.dynamic = true;
  o.ir_low = 10.0;
  o.ir_high = 100.0;
  o.ir_period = 1000;
  ImbalanceSchedule s(o);
  EXPECT_NEAR(s.IrAt(0), 10.0, 1e-9);
  EXPECT_NEAR(s.IrAt(500), 100.0, 1e-9);
  EXPECT_NEAR(s.IrAt(250), 55.0, 1e-9);
  EXPECT_NEAR(s.IrAt(1000), 10.0, 1e-9);  // Periodic.
}

TEST(ImbalanceScheduleTest, RoleSwitchRotatesMajority) {
  ImbalanceSchedule::Options o;
  o.num_classes = 3;
  o.base_ir = 10.0;
  o.role_switch_period = 1000;
  o.role_switch_width = 10;
  ImbalanceSchedule s(o);
  // In period 0 class 0 is the majority; in period 1 class 1 is.
  EXPECT_EQ(s.ClassAtRung(0, 0), 0);
  EXPECT_EQ(s.ClassAtRung(1500, 0), 1);
  EXPECT_EQ(s.ClassAtRung(2500, 0), 2);
  auto p0 = s.PriorsAt(100);
  auto p1 = s.PriorsAt(1100);
  EXPECT_GT(p0[0], p0[1]);
  EXPECT_GT(p1[1], p1[0]);
}

TEST(ImbalanceScheduleTest, PriorsAlwaysNormalizedDuringCrossfade) {
  ImbalanceSchedule::Options o;
  o.num_classes = 4;
  o.base_ir = 50.0;
  o.role_switch_period = 100;
  o.role_switch_width = 20;
  ImbalanceSchedule s(o);
  for (uint64_t t = 0; t < 400; ++t) {
    auto p = s.PriorsAt(t);
    double sum = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

// ---------------------------------------------------------------- concepts
TEST(RbfConceptTest, SchemaAndLabels) {
  RbfConcept::Options o;
  o.num_features = 8;
  o.num_classes = 4;
  RbfConcept c(o, 3);
  EXPECT_EQ(c.schema().num_features, 8);
  EXPECT_EQ(c.schema().num_classes, 4);
  auto counts = CountLabels(&c, 4, 2000, 5);
  for (int cnt : counts) EXPECT_GT(cnt, 0);
}

TEST(RbfConceptTest, ClassConditionalSamplingIsExactClass) {
  RbfConcept::Options o;
  o.num_features = 6;
  o.num_classes = 3;
  RbfConcept c(o, 3);
  Rng rng(7);
  for (int k = 0; k < 3; ++k) {
    auto x = c.SampleForClass(k, &rng);
    EXPECT_EQ(x.size(), 6u);
    for (double v : x) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(RbfConceptTest, DifferentSeedsDifferentConcepts) {
  RbfConcept::Options o;
  o.num_features = 6;
  o.num_classes = 3;
  RbfConcept a(o, 1), b(o, 2);
  Rng r1(9), r2(9);
  // Class-conditional means should differ between the two concepts.
  double diff = 0.0;
  for (int i = 0; i < 200; ++i) {
    auto xa = a.SampleForClass(0, &r1);
    auto xb = b.SampleForClass(0, &r2);
    for (size_t d = 0; d < xa.size(); ++d) diff += std::fabs(xa[d] - xb[d]);
  }
  EXPECT_GT(diff / 200.0, 0.1);
}

TEST(RbfConceptTest, InterpolationMovesBetweenConcepts) {
  RbfConcept::Options o;
  o.num_features = 4;
  o.num_classes = 2;
  RbfConcept a(o, 1), b(o, 2);
  auto mid = a.Interpolate(b, 0.5);
  ASSERT_NE(mid, nullptr);
  auto at_zero = a.Interpolate(b, 0.0);
  auto at_one = a.Interpolate(b, 1.0);
  // Means of class-0 samples: interpolant must lie between endpoints.
  auto mean_of = [](const Concept& c) {
    Rng rng(11);
    std::vector<double> m(4, 0.0);
    for (int i = 0; i < 3000; ++i) {
      auto x = c.SampleForClass(0, &rng);
      for (size_t d = 0; d < 4; ++d) m[d] += x[d];
    }
    for (double& v : m) v /= 3000.0;
    return m;
  };
  auto m0 = mean_of(*at_zero), m1 = mean_of(*at_one), mm = mean_of(*mid);
  for (size_t d = 0; d < 4; ++d) {
    double lo = std::min(m0[d], m1[d]) - 0.05;
    double hi = std::max(m0[d], m1[d]) + 0.05;
    EXPECT_GE(mm[d], lo);
    EXPECT_LE(mm[d], hi);
  }
}

TEST(HyperplaneConceptTest, BandsRoughlyBalancedNaturally) {
  HyperplaneConcept::Options o;
  o.num_features = 10;
  o.num_classes = 5;
  HyperplaneConcept c(o, 3);
  auto counts = CountLabels(&c, 5, 5000, 5);
  for (int cnt : counts) {
    EXPECT_GT(cnt, 500);  // Expected 1000 each; quantile bands are coarse.
    EXPECT_LT(cnt, 1600);
  }
}

TEST(HyperplaneConceptTest, InterpolationSupported) {
  HyperplaneConcept::Options o;
  o.num_features = 5;
  o.num_classes = 3;
  HyperplaneConcept a(o, 1), b(o, 2);
  auto mid = a.Interpolate(b, 0.5);
  ASSERT_NE(mid, nullptr);
  const auto* m = dynamic_cast<const HyperplaneConcept*>(mid.get());
  ASSERT_NE(m, nullptr);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(m->weights()[i], 0.5 * (a.weights()[i] + b.weights()[i]),
                1e-12);
  }
}

TEST(AgrawalConceptTest, LabelsCoverAllClassesAndFeaturesBounded) {
  AgrawalConcept::Options o;
  o.num_features = 20;
  o.num_classes = 5;
  o.function_id = 2;
  AgrawalConcept c(o, 3);
  Rng rng(5);
  std::set<int> seen;
  for (int i = 0; i < 3000; ++i) {
    Instance inst = c.Sample(&rng);
    seen.insert(inst.label);
    EXPECT_EQ(inst.features.size(), 20u);
    for (double v : inst.features) {
      EXPECT_GE(v, -0.01);
      EXPECT_LE(v, 1.01);
    }
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(AgrawalConceptTest, FunctionSwitchChangesLabeling) {
  AgrawalConcept::Options o1;
  o1.num_features = 9;
  o1.num_classes = 4;
  o1.function_id = 0;
  auto o2 = o1;
  o2.function_id = 6;
  AgrawalConcept f0(o1, 3), f6(o2, 3);
  // Same RNG stream: both concepts see identical raw attributes, so label
  // disagreement measures how different the concept functions are.
  Rng ra(13), rb(13);
  int disagreements = 0;
  for (int i = 0; i < 2000; ++i) {
    if (f0.Sample(&ra).label != f6.Sample(&rb).label) ++disagreements;
  }
  EXPECT_GT(disagreements, 400);
}

TEST(AgrawalConceptTest, MinimumNineFeatures) {
  AgrawalConcept::Options o;
  o.num_features = 3;  // Below the attribute count: padded up.
  o.num_classes = 2;
  AgrawalConcept c(o, 3);
  EXPECT_EQ(c.schema().num_features, 9);
}

TEST(RandomTreeConceptTest, AllClassesHaveLeaves) {
  RandomTreeConcept::Options o;
  o.num_features = 10;
  o.num_classes = 8;
  RandomTreeConcept c(o, 3);
  EXPECT_GE(c.num_leaves(), 8u);
  auto counts = CountLabels(&c, 8, 4000, 5);
  for (int cnt : counts) EXPECT_GT(cnt, 0);
}

TEST(RandomTreeConceptTest, ClassConditionalSamplesLandInClassRegion) {
  RandomTreeConcept::Options o;
  o.num_features = 6;
  o.num_classes = 3;
  RandomTreeConcept c(o, 7);
  Rng rng(9);
  // Class-conditional samples are drawn uniformly inside a leaf box of the
  // requested class, so they must stay within [0,1]^d and have full arity.
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < 50; ++i) {
      auto x = c.SampleForClass(k, &rng);
      ASSERT_EQ(x.size(), 6u);
      for (double v : x) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
      }
    }
  }
}

TEST(SeaConceptTest, VariantChangesRelevantFeatures) {
  SeaConcept::Options o1;
  o1.num_features = 6;
  o1.num_classes = 3;
  o1.variant = 0;
  auto o2 = o1;
  o2.variant = 2;
  SeaConcept a(o1, 3), b(o2, 3);
  Rng ra(13), rb(13);
  int disagreements = 0;
  for (int i = 0; i < 2000; ++i) {
    if (a.Sample(&ra).label != b.Sample(&rb).label) ++disagreements;
  }
  EXPECT_GT(disagreements, 300);
}

// --------------------------------------------------------- drifting stream
TEST(DriftingClassStreamTest, PriorsRespectImbalance) {
  RbfConcept::Options co;
  co.num_features = 5;
  co.num_classes = 3;
  std::vector<std::unique_ptr<Concept>> cs;
  cs.push_back(std::make_unique<RbfConcept>(co, 1));
  ImbalanceSchedule::Options io;
  io.num_classes = 3;
  io.base_ir = 50.0;
  DriftingClassStream s(std::move(cs), {}, ImbalanceSchedule(io), 7);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[static_cast<size_t>(s.Next().label)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[2]);
  double ir = static_cast<double>(counts[0]) / std::max(counts[2], 1);
  EXPECT_GT(ir, 20.0);
  EXPECT_LT(ir, 120.0);
}

TEST(DriftingClassStreamTest, SuddenDriftSwitchesConcept) {
  RbfConcept::Options co;
  co.num_features = 4;
  co.num_classes = 2;
  std::vector<std::unique_ptr<Concept>> cs;
  cs.push_back(std::make_unique<RbfConcept>(co, 1));
  cs.push_back(std::make_unique<RbfConcept>(co, 99));
  DriftEvent ev;
  ev.start = 5000;
  ev.type = DriftType::kSudden;
  DriftingClassStream s(std::move(cs), {ev}, ImbalanceSchedule::Uniform(2), 7);

  std::vector<double> mean_before(4, 0.0), mean_after(4, 0.0);
  int nb = 0, na = 0;
  for (int i = 0; i < 10000; ++i) {
    Instance inst = s.Next();
    if (inst.label != 0) continue;
    auto& m = i < 5000 ? mean_before : mean_after;
    for (size_t d = 0; d < 4; ++d) m[d] += inst.features[d];
    (i < 5000 ? nb : na)++;
  }
  double shift = 0.0;
  for (size_t d = 0; d < 4; ++d) {
    shift += std::fabs(mean_before[d] / nb - mean_after[d] / na);
  }
  EXPECT_GT(shift, 0.2);  // Concept moved.
}

TEST(DriftingClassStreamTest, LocalDriftLeavesOtherClassesAlone) {
  RbfConcept::Options co;
  co.num_features = 4;
  co.num_classes = 3;
  std::vector<std::unique_ptr<Concept>> cs;
  cs.push_back(std::make_unique<RbfConcept>(co, 1));
  cs.push_back(std::make_unique<RbfConcept>(co, 99));
  DriftEvent ev;
  ev.start = 5000;
  ev.type = DriftType::kSudden;
  ev.affected = {2};  // Only class 2 drifts.
  DriftingClassStream s(std::move(cs), {ev}, ImbalanceSchedule::Uniform(3), 7);

  std::vector<double> m0b(4, 0), m0a(4, 0), m2b(4, 0), m2a(4, 0);
  int n0b = 0, n0a = 0, n2b = 0, n2a = 0;
  for (int i = 0; i < 10000; ++i) {
    Instance inst = s.Next();
    bool before = i < 5000;
    if (inst.label == 0) {
      auto& m = before ? m0b : m0a;
      for (size_t d = 0; d < 4; ++d) m[d] += inst.features[d];
      (before ? n0b : n0a)++;
    } else if (inst.label == 2) {
      auto& m = before ? m2b : m2a;
      for (size_t d = 0; d < 4; ++d) m[d] += inst.features[d];
      (before ? n2b : n2a)++;
    }
  }
  double shift0 = 0.0, shift2 = 0.0;
  for (size_t d = 0; d < 4; ++d) {
    shift0 += std::fabs(m0b[d] / n0b - m0a[d] / n0a);
    shift2 += std::fabs(m2b[d] / n2b - m2a[d] / n2a);
  }
  EXPECT_LT(shift0, 0.1);  // Unaffected class is stationary.
  EXPECT_GT(shift2, 0.2);  // Affected class moved.
  EXPECT_TRUE(s.ClassDriftActiveAt(5000, 2));
  EXPECT_FALSE(s.ClassDriftActiveAt(5000, 0));
  EXPECT_FALSE(s.ClassDriftActiveAt(100, 2));
}

TEST(DriftingClassStreamTest, LabelNoiseInjectsMislabels) {
  RbfConcept::Options co;
  co.num_features = 3;
  co.num_classes = 2;
  std::vector<std::unique_ptr<Concept>> cs;
  cs.push_back(std::make_unique<RbfConcept>(co, 1));
  DriftingClassStream::Options opt;
  opt.label_noise = 0.5;
  ImbalanceSchedule::Options io;
  io.num_classes = 2;
  io.base_ir = 1000.0;  // Without noise, almost everything is class 0.
  DriftingClassStream s(std::move(cs), {}, ImbalanceSchedule(io), 7, opt);
  int minority = 0;
  for (int i = 0; i < 4000; ++i) {
    if (s.Next().label == 1) ++minority;
  }
  // Noise reassigns ~25% of instances to class 1.
  EXPECT_GT(minority, 600);
}

// ---------------------------------------------------------------- registry
TEST(RegistryTest, Has24SpecsMatchingTable1) {
  const auto& specs = AllStreamSpecs();
  EXPECT_EQ(specs.size(), 24u);
  int real = 0;
  for (const auto& s : specs) real += s.real_world ? 1 : 0;
  EXPECT_EQ(real, 12);
  EXPECT_EQ(ArtificialStreamSpecs().size(), 12u);
}

TEST(RegistryTest, FindByName) {
  const StreamSpec* s = FindStreamSpec("Covertype");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->num_features, 54);
  EXPECT_EQ(s->num_classes, 7);
  EXPECT_NEAR(s->imbalance_ratio, 96.14, 1e-9);
  EXPECT_EQ(FindStreamSpec("DoesNotExist"), nullptr);
}

TEST(RegistryTest, BuildRespectsScaleFloor) {
  const StreamSpec* s = FindStreamSpec("EEG");
  BuildOptions o;
  o.scale = 0.0001;
  BuiltStream b = BuildStream(*s, o);
  EXPECT_GE(b.length, 4000u);
  ASSERT_NE(b.stream, nullptr);
  EXPECT_EQ(b.stream->schema().num_features, 14);
}

TEST(RegistryTest, DeterministicForSameSeed) {
  const StreamSpec* s = FindStreamSpec("RBF5");
  BuildOptions o;
  o.scale = 0.005;
  o.seed = 99;
  BuiltStream b1 = BuildStream(*s, o);
  BuiltStream b2 = BuildStream(*s, o);
  for (int i = 0; i < 500; ++i) {
    Instance i1 = b1.stream->Next();
    Instance i2 = b2.stream->Next();
    ASSERT_EQ(i1.label, i2.label);
    ASSERT_EQ(i1.features, i2.features);
  }
}

TEST(RegistryTest, LocalDriftOptionRestrictsAffectedClasses) {
  const StreamSpec* s = FindStreamSpec("RBF10");
  BuildOptions o;
  o.scale = 0.005;
  o.local_drift_classes = 2;
  BuiltStream b = BuildStream(*s, o);
  for (const DriftEvent& e : b.stream->events()) {
    ASSERT_EQ(e.affected.size(), 2u);
    // Smallest classes first: 9, then 8.
    EXPECT_EQ(e.affected[0], 9);
    EXPECT_EQ(e.affected[1], 8);
  }
}

TEST(RegistryTest, IrOverrideChangesPriors) {
  const StreamSpec* s = FindStreamSpec("RBF5");
  BuildOptions o;
  o.scale = 0.005;
  o.ir_override = 500.0;
  BuiltStream b = BuildStream(*s, o);
  EXPECT_NEAR(b.stream->imbalance().options().ir_high, 500.0, 1e-9);
}

}  // namespace
}  // namespace ccd
