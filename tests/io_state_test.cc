// State serialization (io/state_codec.h + every component's SaveState/
// LoadState) — the property harness proving the durable half of the
// handoff claim: Encode → Decode of a live shard's StateImage, then
// continuing on the decoded components, is *bit-identical* to never
// having serialized, for EVERY registered detector and classifier (new
// registrations are covered the moment they self-register). Also pins
// down EngineState's move-only contract and the snapshot/config codecs.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "api/api.h"
#include "eval/engine.h"
#include "eval/sharded.h"
#include "io/state_codec.h"
#include "io/wire.h"
#include "testing_util.h"

namespace ccd {
namespace {

using test_util::ExpectBitIdentical;
using test_util::ExpectSnapshotEq;
using test_util::MakeRbfDriftStream;
using test_util::ShortConfig;

// EngineState is a handoff token: exactly one owner. Copying would alias
// live classifiers across shards, so the copy operations are deleted.
static_assert(!std::is_copy_constructible<EngineState>::value,
              "EngineState must not be copyable");
static_assert(!std::is_copy_assignable<EngineState>::value,
              "EngineState must not be copy-assignable");
static_assert(std::is_move_constructible<EngineState>::value,
              "EngineState must stay movable");
static_assert(std::is_move_assignable<EngineState>::value,
              "EngineState must stay move-assignable");

/// Runs `data` through an engine; `interrupt_at` > 0 stops there, pushes
/// the complete state THROUGH THE WIRE (StateImage encode → decode) and
/// finishes the run on the decoded components — the durable twin of
/// sharded_test's CloneState() harness. Returns (result, final snapshot).
std::pair<PrequentialResult, EngineSnapshot> RunMaybeSerialized(
    const std::vector<Instance>& data, const StreamSchema& schema,
    const std::string& classifier_name, const std::string& detector_name,
    const PrequentialConfig& cfg, size_t interrupt_at) {
  auto classifier = api::MakeClassifier(classifier_name, schema, /*seed=*/42);
  std::unique_ptr<DriftDetector> detector;
  if (!detector_name.empty()) {
    detector = api::MakeDetector(detector_name, schema, /*seed=*/42);
  }
  MonitorEngine engine(schema, classifier.get(), detector.get(), cfg);
  if (interrupt_at == 0) {
    for (const Instance& inst : data) engine.Feed(inst);
    return {engine.Result(), engine.Snapshot()};
  }
  for (size_t i = 0; i < interrupt_at; ++i) engine.Feed(data[i]);

  io::StateImage image;
  image.schema = schema;
  image.classifier = classifier_name;
  image.detector = detector_name;
  image.seed = 42;
  image.config = cfg;
  image.state = CaptureEngineState(engine, *classifier, detector.get());
  const std::string bytes = io::EncodeStateImage(image);

  io::StateImage decoded = io::DecodeStateImage(bytes);
  MonitorEngine restored = RestoreEngineState(schema, cfg, decoded.state);
  for (size_t i = interrupt_at; i < data.size(); ++i) {
    restored.Feed(data[i]);
  }
  return {restored.Result(), restored.Snapshot()};
}

// Save → wire → Load → continue is bit-identical to an uninterrupted run
// for EVERY registered detector. The interruption point (777) is
// mid-minibatch for RBM-IM and mid-warning-region for DDM-family
// detectors on noisy data — exactly where forgotten state would show.
TEST(StateImagePropertyTest, EveryRegisteredDetectorRoundTrips) {
  auto stream = MakeRbfDriftStream(900, 17);
  const StreamSchema schema = stream->schema();
  const std::vector<Instance> data = Take(stream.get(), 1600);
  PrequentialConfig cfg = ShortConfig();

  const std::vector<api::ComponentInfo> detectors = api::Detectors().List();
  ASSERT_FALSE(detectors.empty());
  for (const api::ComponentInfo& info : detectors) {
    SCOPED_TRACE(info.name);
    auto uninterrupted =
        RunMaybeSerialized(data, schema, "naive-bayes", info.name, cfg, 0);
    auto serialized =
        RunMaybeSerialized(data, schema, "naive-bayes", info.name, cfg, 777);
    ExpectBitIdentical(uninterrupted.first, serialized.first);
    ExpectSnapshotEq(uninterrupted.second, serialized.second);
  }
}

// ... and for EVERY registered classifier (no detector: isolates the
// classifier's own SaveState/LoadState).
TEST(StateImagePropertyTest, EveryRegisteredClassifierRoundTrips) {
  auto stream = MakeRbfDriftStream(900, 19);
  const StreamSchema schema = stream->schema();
  const std::vector<Instance> data = Take(stream.get(), 1600);
  PrequentialConfig cfg = ShortConfig();

  const std::vector<api::ComponentInfo> classifiers = api::Classifiers().List();
  ASSERT_FALSE(classifiers.empty());
  for (const api::ComponentInfo& info : classifiers) {
    SCOPED_TRACE(info.name);
    auto uninterrupted = RunMaybeSerialized(data, schema, info.name, "", cfg, 0);
    auto serialized = RunMaybeSerialized(data, schema, info.name, "", cfg, 777);
    ExpectBitIdentical(uninterrupted.first, serialized.first);
    ExpectSnapshotEq(uninterrupted.second, serialized.second);
  }
}

// Double round-trip: decode(encode(decode(encode(x)))) — the decoded
// image's own encoding must be byte-identical, proving the codec has one
// canonical form (no drift across generations of persistence).
TEST(StateImagePropertyTest, EncodingIsCanonicalAcrossRoundTrips) {
  auto stream = MakeRbfDriftStream(400, 29);
  const StreamSchema schema = stream->schema();
  const std::vector<Instance> data = Take(stream.get(), 800);
  PrequentialConfig cfg = ShortConfig();

  auto classifier = api::MakeClassifier("cs-ptree", schema, 42);
  auto detector = api::MakeDetector("RBM-IM", schema, 42);
  MonitorEngine engine(schema, classifier.get(), detector.get(), cfg);
  for (const Instance& inst : data) engine.Feed(inst);

  io::StateImage image;
  image.schema = schema;
  image.classifier = "cs-ptree";
  image.detector = "RBM-IM";
  image.seed = 42;
  image.config = cfg;
  image.state = CaptureEngineState(engine, *classifier, detector.get());
  const std::string once = io::EncodeStateImage(image);

  io::StateImage decoded = io::DecodeStateImage(once);
  const std::string twice = io::EncodeStateImage(decoded);
  EXPECT_EQ(once, twice);
}

// --------------------------------------------- snapshot / config codecs

TEST(SnapshotCodecTest, PopulatedSnapshotRoundTripsFieldForField) {
  EngineSnapshot s;
  s.position = 12345;
  s.pending = 2;
  s.evicted = 7;
  s.unmatched_labels = 3;
  s.metric_samples = 11;
  s.next_id = 99;
  s.last_detector_state = DetectorState::kWarning;
  s.drift_log.push_back(DriftAlarm{777, {0, 2}});
  s.drift_log.push_back(DriftAlarm{900, {}});
  s.class_counts = {10, 20, 30};
  s.window.push_back(WindowedMetrics::Entry{1, 2, {0.1, 0.2, 0.7}});
  EngineSnapshot::PendingEntry p;
  p.id = 98;
  p.instance.features = {1.0, -2.5};
  p.instance.label = -1;
  p.instance.weight = 0.5;
  p.predicted = 1;
  p.scores = {0.3, 0.4, 0.3};
  s.pending_predictions.push_back(p);
  s.sum_pmauc = 1.25;
  s.sum_pmgm = 2.5;
  s.sum_accuracy = 3.75;
  s.sum_kappa = -0.5;
  s.pmauc_series.emplace_back(500, 0.75);
  s.detector_seconds = 0.125;
  s.classifier_seconds = 0.0625;

  io::Writer w;
  io::WriteSnapshot(w, s);
  io::Reader r(w.data());
  ExpectSnapshotEq(io::ReadSnapshot(r), s);
  EXPECT_TRUE(r.AtEnd());
}

TEST(ConfigCodecTest, RoundTripsAndRejectsDegenerateConfigs) {
  PrequentialConfig cfg;
  cfg.max_instances = 5000;
  cfg.metric_window = 123;
  cfg.eval_interval = 17;
  cfg.warmup = 250;
  cfg.reset_on_drift = false;
  cfg.timing = true;
  cfg.shards = 3;
  io::Writer w;
  io::WriteConfig(w, cfg);
  io::Reader r(w.data());
  PrequentialConfig back = io::ReadConfig(r);
  EXPECT_EQ(back.max_instances, cfg.max_instances);
  EXPECT_EQ(back.metric_window, cfg.metric_window);
  EXPECT_EQ(back.eval_interval, cfg.eval_interval);
  EXPECT_EQ(back.warmup, cfg.warmup);
  EXPECT_EQ(back.reset_on_drift, cfg.reset_on_drift);
  EXPECT_EQ(back.timing, cfg.timing);
  EXPECT_EQ(back.shards, cfg.shards);

  // A config that would divide by zero must not survive deserialization.
  PrequentialConfig bad = cfg;
  bad.eval_interval = 0;
  io::Writer wbad;
  io::WriteConfig(wbad, bad);
  io::Reader rbad(wbad.data());
  EXPECT_THROW(io::ReadConfig(rbad), io::WireError);
}

// LoadState validates dimensions against the serialized schema, so bytes
// of a structurally different shard cannot smear into a live component.
TEST(ComponentStateValidationTest, MismatchedDimensionsAreTypedErrors) {
  StreamSchema wide(8, 4, "wide");
  StreamSchema narrow(3, 2, "narrow");
  auto stream = MakeRbfDriftStream(200, 31);
  // Serialize a classifier trained on the stream's schema...
  auto trained = api::MakeClassifier("perceptron", stream->schema(), 42);
  for (const Instance& inst : Take(stream.get(), 120)) trained->Train(inst);
  io::Writer w;
  trained->SaveState(w);
  // ...and load it into a same-type classifier: fine (schema travels).
  auto target = api::MakeClassifier("perceptron", stream->schema(), 1);
  io::Reader ok(w.data());
  target->LoadState(ok);

  // Corrupt the payload row count so rows disagree with the schema.
  // (Schema num_classes is serialized before weights; change one weight
  // row count by truncating inside the section → typed error.)
  const std::string bytes = w.data();
  io::Reader truncated(bytes.data(), bytes.size() - 9);
  auto victim = api::MakeClassifier("perceptron", stream->schema(), 2);
  EXPECT_THROW(victim->LoadState(truncated), io::WireError);

  (void)wide;
  (void)narrow;
}

}  // namespace
}  // namespace ccd
