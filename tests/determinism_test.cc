// BuildStream's documented contract — "the same (spec, options) pair
// always produces an identical instance sequence" — verified across two
// independent instantiations, including the experiment-specific option
// paths (local drift, IR override, role switching).

#include <gtest/gtest.h>

#include <cmath>

#include "generators/registry.h"

namespace ccd {
namespace {

void ExpectIdenticalPrefix(const StreamSpec& spec, const BuildOptions& options,
                           size_t n, const std::string& label) {
  BuiltStream a = BuildStream(spec, options);
  BuiltStream b = BuildStream(spec, options);
  ASSERT_EQ(a.length, b.length) << label;
  for (size_t i = 0; i < n; ++i) {
    Instance x = a.stream->Next();
    Instance y = b.stream->Next();
    ASSERT_EQ(x.label, y.label) << label << " at " << i;
    ASSERT_EQ(x.features.size(), y.features.size()) << label << " at " << i;
    for (size_t f = 0; f < x.features.size(); ++f) {
      // Bitwise equality: the generators are pure functions of the seed.
      ASSERT_EQ(x.features[f], y.features[f])
          << label << " at " << i << " feature " << f;
    }
  }
}

TEST(DeterminismTest, DefaultOptionsYieldIdenticalPrefix) {
  for (const char* name : {"RBF5", "Aggrawal10", "Hyperplane20",
                           "RandomTree5", "Gas", "Electricity"}) {
    const StreamSpec* spec = FindStreamSpec(name);
    ASSERT_NE(spec, nullptr) << name;
    BuildOptions options;
    options.scale = 0.001;
    ExpectIdenticalPrefix(*spec, options, 2000, name);
  }
}

TEST(DeterminismTest, ExperimentOptionPathsYieldIdenticalPrefix) {
  const StreamSpec* spec = FindStreamSpec("RBF10");
  ASSERT_NE(spec, nullptr);

  BuildOptions local_drift;
  local_drift.scale = 0.001;
  local_drift.local_drift_classes = 2;
  ExpectIdenticalPrefix(*spec, local_drift, 2000, "local drift");

  BuildOptions ir_override;
  ir_override.scale = 0.001;
  ir_override.ir_override = 400.0;
  ExpectIdenticalPrefix(*spec, ir_override, 2000, "IR override");

  BuildOptions role_switching;
  role_switching.scale = 0.001;
  role_switching.role_switching = true;
  role_switching.label_noise = 0.05;
  ExpectIdenticalPrefix(*spec, role_switching, 2000, "role switching");
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  const StreamSpec* spec = FindStreamSpec("RBF5");
  ASSERT_NE(spec, nullptr);
  BuildOptions a, b;
  a.scale = b.scale = 0.001;
  a.seed = 1;
  b.seed = 2;
  BuiltStream sa = BuildStream(*spec, a);
  BuiltStream sb = BuildStream(*spec, b);
  bool any_diff = false;
  for (int i = 0; i < 500 && !any_diff; ++i) {
    Instance x = sa.stream->Next();
    Instance y = sb.stream->Next();
    if (x.label != y.label) any_diff = true;
    for (size_t f = 0; f < x.features.size() && !any_diff; ++f) {
      if (x.features[f] != y.features[f]) any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace ccd
