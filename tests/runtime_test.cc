// The runtime layer: fixed-size thread pool + work queue semantics that
// api::Suite's determinism contract rests on.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "runtime/thread_pool.h"

namespace ccd {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  runtime::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, WaitCanBeReusedAcrossBatches) {
  runtime::ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 50; ++i) pool.Submit([&count] { ++count; });
    pool.Wait();
    EXPECT_EQ(count.load(), 50 * (batch + 1));
  }
}

TEST(ThreadPoolTest, ClampsWorkerCountToAtLeastOne) {
  runtime::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(runtime::ThreadPool::DefaultThreads(), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  // Each index writes only its own slot — the determinism contract cells
  // rely on — so no synchronization is needed to check coverage.
  std::vector<int> hits(500, 0);
  runtime::ParallelFor(8, hits.size(), [&hits](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, ZeroIterationsIsANoop) {
  runtime::ParallelFor(4, 0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, PropagatesExceptionsAfterAllIndicesRan) {
  std::atomic<int> ran{0};
  try {
    runtime::ParallelFor(4, 20, [&ran](size_t i) {
      ++ran;
      if (i == 3) throw std::runtime_error("cell 3 failed");
    });
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "cell 3 failed");
  }
  // The failing index must not cancel its siblings.
  EXPECT_EQ(ran.load(), 20);
}

}  // namespace
}  // namespace ccd
