// The runtime layer: fixed-size thread pool + work queue semantics that
// api::Suite's determinism contract rests on, plus the capability-annotated
// lock wrappers (runtime/sync.h) every mutex in src/ goes through.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/sync.h"
#include "runtime/thread_pool.h"

namespace ccd {
namespace {

// ------------------------------------------------------- sync primitives

TEST(SyncTest, MutexLockExcludesConcurrentWriters) {
  runtime::Mutex mu;
  int counter CCD_GUARDED_BY(mu) = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < 1000; ++i) {
        runtime::MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  runtime::MutexLock lock(&mu);
  EXPECT_EQ(counter, 4000);
}

TEST(SyncTest, TryLockReportsContention) {
  runtime::Mutex mu;
  mu.Lock();
  EXPECT_FALSE(mu.TryLock());
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncTest, SharedMutexReadersSeeWriterResults) {
  runtime::SharedMutex mu;
  int value CCD_GUARDED_BY(mu) = 0;
  {
    runtime::WriterLock writer(&mu);
    value = 7;
    EXPECT_EQ(writer.mutex(), &mu);
  }
  // Reader locks in two threads may overlap freely; each sees the
  // published value. (The TSan job catches it if ReaderLock were
  // secretly exclusive-and-broken; here we pin the happy path.)
  std::thread reader([&mu, &value] {
    runtime::ReaderLock lock(&mu);
    EXPECT_EQ(value, 7);
  });
  {
    runtime::ReaderLock lock(&mu);
    EXPECT_EQ(value, 7);
  }
  reader.join();
}

TEST(SyncTest, CondVarWakesBlockedWaiter) {
  runtime::Mutex mu;
  runtime::CondVar cv;
  bool ready CCD_GUARDED_BY(mu) = false;
  std::thread waker([&mu, &cv, &ready] {
    runtime::MutexLock lock(&mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    runtime::MutexLock lock(&mu);
    while (!ready) cv.Wait(mu);
    EXPECT_TRUE(ready);
  }
  waker.join();
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  runtime::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, WaitCanBeReusedAcrossBatches) {
  runtime::ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 50; ++i) pool.Submit([&count] { ++count; });
    pool.Wait();
    EXPECT_EQ(count.load(), 50 * (batch + 1));
  }
}

TEST(ThreadPoolTest, ClampsWorkerCountToAtLeastOne) {
  runtime::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(runtime::ThreadPool::DefaultThreads(), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  // Each index writes only its own slot — the determinism contract cells
  // rely on — so no synchronization is needed to check coverage.
  std::vector<int> hits(500, 0);
  runtime::ParallelFor(8, hits.size(), [&hits](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, ZeroIterationsIsANoop) {
  runtime::ParallelFor(4, 0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, PropagatesExceptionsAfterAllIndicesRan) {
  std::atomic<int> ran{0};
  try {
    runtime::ParallelFor(4, 20, [&ran](size_t i) {
      ++ran;
      if (i == 3) throw std::runtime_error("cell 3 failed");
    });
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "cell 3 failed");
  }
  // The failing index must not cancel its siblings.
  EXPECT_EQ(ran.load(), 20);
}

}  // namespace
}  // namespace ccd
