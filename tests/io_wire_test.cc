// The wire-format contract (io/wire.h): primitives round-trip bit for
// bit, the envelope detects torn/flipped/foreign bytes, and — the
// load-bearing half — *no* corrupted input is ever undefined behavior:
// the corruption matrix truncates a real state image at every byte
// offset and flips bytes through the whole body, asserting every
// malformed variant dies as a typed io::WireError (the CI ASan+UBSan
// jobs run this file, so an out-of-bounds read or overflow would fail
// loudly, not flakily).

#include <gtest/gtest.h>

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "api/api.h"
#include "eval/engine.h"
#include "io/state_codec.h"
#include "io/wire.h"
#include "testing_util.h"

namespace ccd {
namespace {

using test_util::ShortConfig;

// ------------------------------------------------------------- ErrnoText

TEST(ErrnoTextTest, DescribesKnownErrnoValuesNonEmpty) {
  // The exact wording is libc-specific; what matters is that the helper
  // yields a usable description without touching strerror()'s shared
  // static buffer (it's called from concurrent FrameServer handlers).
  EXPECT_FALSE(io::ErrnoText(ENOENT).empty());
  EXPECT_FALSE(io::ErrnoText(ECONNRESET).empty());
  EXPECT_NE(io::ErrnoText(ENOENT), io::ErrnoText(ECONNRESET));
}

// ------------------------------------------------------------ primitives

TEST(WireWriterReaderTest, PrimitivesRoundTripBitExactly) {
  io::Writer w;
  w.U8(0);
  w.U8(255);
  w.U32(0xDEADBEEFu);
  w.U64(std::numeric_limits<uint64_t>::max());
  w.I64(-42);
  w.I64(std::numeric_limits<int64_t>::min());
  w.F64(0.1);
  w.F64(-0.0);
  w.F64(std::numeric_limits<double>::infinity());
  w.F64(std::nan(""));
  w.Bool(true);
  w.Bool(false);
  w.String("");
  w.String("hello \x01\x02 wire");
  w.Bytes(std::string("\x00\xFF\x7F", 3));
  w.F64Array({1.5, -2.25, 1e300, 5e-324});

  io::Reader r(w.data());
  EXPECT_EQ(r.U8("a"), 0u);
  EXPECT_EQ(r.U8("b"), 255u);
  EXPECT_EQ(r.U32("c"), 0xDEADBEEFu);
  EXPECT_EQ(r.U64("d"), std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(r.I64("e"), -42);
  EXPECT_EQ(r.I64("f"), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(r.F64("g"), 0.1);
  {
    double z = r.F64("h");
    EXPECT_EQ(z, 0.0);
    EXPECT_TRUE(std::signbit(z));
  }
  EXPECT_EQ(r.F64("i"), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(r.F64("j")));  // NaN payload survives the trip.
  EXPECT_TRUE(r.Bool("k"));
  EXPECT_FALSE(r.Bool("l"));
  EXPECT_EQ(r.String("m"), "");
  EXPECT_EQ(r.String("n"), "hello \x01\x02 wire");
  EXPECT_EQ(r.Bytes("o"), std::string("\x00\xFF\x7F", 3));
  EXPECT_EQ(r.F64Array("p"), (std::vector<double>{1.5, -2.25, 1e300, 5e-324}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireWriterReaderTest, WrongTagIsATypedError) {
  io::Writer w;
  w.U32(7);
  io::Reader r(w.data());
  try {
    r.F64("the_field");
    FAIL() << "expected WireError";
  } catch (const io::WireError& e) {
    EXPECT_EQ(e.field(), "the_field");
    EXPECT_NE(std::string(e.what()).find("the_field"), std::string::npos);
  }
}

TEST(WireWriterReaderTest, SectionsNestAndMismatchedNameFails) {
  io::Writer w;
  w.BeginSection("outer");
  w.U32(1);
  w.BeginSection("inner");
  w.F64(2.5);
  w.EndSection();
  w.EndSection();

  io::Reader ok(w.data());
  ok.BeginSection("outer");
  EXPECT_EQ(ok.U32("x"), 1u);
  ok.BeginSection("inner");
  EXPECT_EQ(ok.F64("y"), 2.5);
  ok.EndSection("inner");
  ok.EndSection("outer");
  EXPECT_TRUE(ok.AtEnd());

  // The "bytes of the wrong component" failure mode.
  io::Reader wrong(w.data());
  EXPECT_THROW(wrong.BeginSection("other"), io::WireError);
}

TEST(WireWriterReaderTest, TrailingBytesInsideASectionFail) {
  io::Writer w;
  w.BeginSection("s");
  w.U32(1);
  w.U32(2);
  w.EndSection();
  io::Reader r(w.data());
  r.BeginSection("s");
  r.U32("first");
  // Leaving with an undecoded value inside means reader and writer
  // disagree on the layout — that must not pass silently.
  EXPECT_THROW(r.EndSection("s"), io::WireError);
}

TEST(WireWriterReaderTest, OversizedLengthPrefixFailsBeforeAllocating) {
  // Hand-craft [kString tag][u32 length ~ 2^31] with no payload.
  std::string bytes;
  bytes.push_back(static_cast<char>(io::Tag::kString));
  for (unsigned char b : {0x00, 0x00, 0x00, 0x80}) {
    bytes.push_back(static_cast<char>(b));
  }
  io::Reader r(bytes);
  EXPECT_THROW(r.String("s"), io::WireError);

  // Same for a count prefix: a section claiming more elements than bytes.
  io::Writer w;
  w.U32(1000000);  // Count written honestly...
  io::Reader rc(w.data());
  // ...but the buffer ends right after it: more elements than bytes left.
  EXPECT_THROW(rc.Count("n"), io::WireError);
}

TEST(WireWriterReaderTest, UnbalancedWriterIsACallerBug) {
  io::Writer w;
  w.BeginSection("open");
  EXPECT_THROW(w.data(), std::logic_error);
  io::Writer w2;
  EXPECT_THROW(w2.EndSection(), std::logic_error);
}

TEST(WireCrcTest, MatchesKnownVector) {
  // The canonical IEEE 802.3 check value.
  const std::string check = "123456789";
  EXPECT_EQ(io::Crc32(check.data(), check.size()), 0xCBF43926u);
  // Chaining two halves equals one pass.
  uint32_t half = io::Crc32(check.data(), 4);
  EXPECT_EQ(io::Crc32(check.data() + 4, 5, half), 0xCBF43926u);
}

// -------------------------------------------------------------- envelope

TEST(WireEnvelopeTest, SealOpenRoundTripsAndRejectsTampering) {
  io::Writer w;
  w.String("payload");
  const std::string sealed = io::SealEnvelope(w.data());
  EXPECT_EQ(io::OpenEnvelope(sealed), w.data());

  // Flipped CRC byte.
  std::string bad = sealed;
  bad.back() = static_cast<char>(bad.back() ^ 0x01);
  EXPECT_THROW(io::OpenEnvelope(bad), io::WireError);

  // Flipped body bit (CRC catches it).
  bad = sealed;
  bad[9] = static_cast<char>(bad[9] ^ 0x40);
  EXPECT_THROW(io::OpenEnvelope(bad), io::WireError);

  // Wrong format version (CRC recomputed so only the version check trips).
  bad = sealed;
  bad[4] = static_cast<char>(io::kFormatVersion + 1);
  {
    uint32_t crc = io::Crc32(bad.data(), bad.size() - 4);
    for (int i = 0; i < 4; ++i) {
      bad[bad.size() - 4 + static_cast<size_t>(i)] =
          static_cast<char>((crc >> (8 * i)) & 0xFF);
    }
    try {
      io::OpenEnvelope(bad);
      FAIL() << "expected WireError";
    } catch (const io::WireError& e) {
      EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
  }

  // Foreign magic.
  bad = sealed;
  bad[0] = 'X';
  EXPECT_THROW(io::OpenEnvelope(bad), io::WireError);

  // Too short to even hold the envelope.
  EXPECT_THROW(io::OpenEnvelope(std::string("CCD")), io::WireError);
}

// ----------------------------------------------- component-name mismatch

TEST(ComponentStateTest, LoadingBytesOfAnotherComponentFailsTyped) {
  StreamSchema schema(4, 3, "wire-test");
  auto ddm = api::MakeDetector("DDM", schema, 7);
  Instance inst;
  inst.features = {0.5, 0.5, 0.5, 0.5};
  inst.label = 0;
  const std::vector<double> scores{1.0, 0.0, 0.0};
  for (int i = 0; i < 100; ++i) ddm->Observe(inst, i % 3 == 0 ? 1 : 0, scores);

  io::Writer w;
  ddm->SaveState(w);

  auto eddm = api::MakeDetector("EDDM", schema, 7);
  io::Reader r(w.data());
  try {
    eddm->LoadState(r);
    FAIL() << "expected WireError";
  } catch (const io::WireError&) {
    // Section name "DDM" != "EDDM": typed rejection, no partial state.
  }
}

TEST(ComponentStateTest, UnimplementedSaveStateNamesTheComponent) {
  StreamSchema schema(4, 3, "wire-test");
  test_util::FrozenClassifier frozen(schema);
  io::Writer w;
  try {
    frozen.SaveState(w);
    FAIL() << "expected logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("frozen"), std::string::npos);
  }
}

// ------------------------------------------------------ corruption matrix

/// A small but *real* state image: a DDM-backed engine run far enough to
/// populate the metric window, drift log and counters.
std::string MakeSmallImage() {
  auto stream = test_util::MakeRbfDriftStream(150, 23);
  const std::vector<Instance> data = Take(stream.get(), 300);

  PrequentialConfig cfg = ShortConfig();
  cfg.metric_window = 50;
  cfg.eval_interval = 25;
  cfg.warmup = 40;

  auto classifier = api::MakeClassifier("naive-bayes", stream->schema(), 42);
  auto detector = api::MakeDetector("DDM", stream->schema(), 42);
  MonitorEngine engine(stream->schema(), classifier.get(), detector.get(), cfg);
  for (const Instance& inst : data) engine.Feed(inst);

  io::StateImage image;
  image.schema = stream->schema();
  image.classifier = "naive-bayes";
  image.detector = "DDM";
  image.seed = 42;
  image.config = cfg;
  image.state = CaptureEngineState(engine, *classifier, detector.get());
  return io::EncodeStateImage(image);
}

TEST(CorruptionMatrixTest, TheImageItselfDecodes) {
  const std::string bytes = MakeSmallImage();
  io::StateImage image = io::DecodeStateImage(bytes);
  EXPECT_EQ(image.classifier, "naive-bayes");
  EXPECT_EQ(image.detector, "DDM");
  EXPECT_GT(image.state.snapshot.position, 0u);
  ASSERT_NE(image.state.classifier, nullptr);
  ASSERT_NE(image.state.detector, nullptr);
}

// Truncation at every byte offset of the sealed file: every prefix must
// be rejected as WireError (the CRC trailer catches them all) — never a
// crash, never a silently partial image.
TEST(CorruptionMatrixTest, EveryFileTruncationIsATypedError) {
  const std::string bytes = MakeSmallImage();
  ASSERT_GT(bytes.size(), 16u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(io::DecodeStateImage(bytes.substr(0, len)), io::WireError)
        << "prefix length " << len;
  }
}

// Truncation at every byte offset of the *body*, re-sealed so the
// envelope passes and the Reader's own bounds checks take the hit. This
// is the matrix that would expose an out-of-bounds read under ASan: a
// reader that trusted any length or count would walk off the buffer.
TEST(CorruptionMatrixTest, EveryBodyTruncationIsATypedError) {
  const std::string body = io::OpenEnvelope(MakeSmallImage());
  for (size_t len = 0; len < body.size(); ++len) {
    EXPECT_THROW(io::DecodeStateImage(io::SealEnvelope(body.substr(0, len))),
                 io::WireError)
        << "body prefix length " << len;
  }
}

// Byte flips through the whole body (re-sealed): a flipped byte may land
// in a double payload and decode fine, but it must only ever decode fine
// or throw WireError — nothing else escapes, nothing crashes.
TEST(CorruptionMatrixTest, BodyByteFlipsNeverEscapeTheTypedError) {
  const std::string body = io::OpenEnvelope(MakeSmallImage());
  for (size_t i = 0; i < body.size(); ++i) {
    std::string flipped = body;
    flipped[i] = static_cast<char>(flipped[i] ^ 0xFF);
    try {
      io::StateImage image = io::DecodeStateImage(io::SealEnvelope(flipped));
      // A flip confined to a value payload is legitimate data.
    } catch (const io::WireError&) {
      // The typed rejection — the only acceptable failure.
    }
  }
}

TEST(CorruptionMatrixTest, UnknownRegistryNameFailsAsWireError) {
  const std::string body = io::OpenEnvelope(MakeSmallImage());
  // "naive-bayes" appears as a length-prefixed string; corrupt one byte
  // of the *name* so the registry lookup fails.
  const size_t at = body.find("naive-bayes");
  ASSERT_NE(at, std::string::npos);
  std::string renamed = body;
  renamed[at] = 'x';
  EXPECT_THROW(io::DecodeStateImage(io::SealEnvelope(renamed)), io::WireError);
}

}  // namespace
}  // namespace ccd
