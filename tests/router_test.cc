// Concurrent serving router (runtime/router.h + api/sharded_monitor.h) —
// the harness proving the serving layer's load-bearing claims:
//
//  (a) differential — a hash-routed ShardedMonitor with K shards fed
//      single-threaded is bit-identical, per shard, to K independent
//      api::Monitors fed the same key-partitioned substreams;
//  (b) multi-threaded stress — producer threads pushing interleaved
//      Predict/Label land per-shard results bit-identical to the
//      single-threaded replay of the same per-key sequences (plus a
//      contended variant that hammers shared shards for TSan);
//  (c) resharding — DrainShard mid-stream migrates the complete
//      EngineState (pending-label buffer included) and the run continues
//      exactly as if nothing moved; AddShard re-routes keys over the
//      grown table.
//
// Also covers the Router's hash/slot contracts, the EngineSnapshot merge
// helpers and the shard-tagged callback fan-in. This suite is part of the
// TSan CI gate.

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "api/api.h"
#include "eval/engine.h"
#include "runtime/router.h"
#include "runtime/sync.h"
#include "sim_harness.h"
#include "testing_util.h"

namespace ccd {
namespace {

using runtime::Router;
using runtime::RoutingMode;
using test_util::ExpectSnapshotEq;
using test_util::KeyedInstance;
using test_util::KeysForSlot;
using test_util::MakeKeyedSchedule;
using test_util::MakeRbfDriftStream;
using test_util::RunProducers;
using test_util::ShortConfig;

/// The serving schema of MakeRbfDriftStream / MakeKeyedSchedule.
StreamSchema ServingSchema() { return StreamSchema(6, 3, "serving"); }

/// A sharded monitor on cheap components — lock behavior, not learning, is
/// under test here.
api::ShardedMonitorBuilder ServingBuilder(int shards, uint64_t seed = 100) {
  return api::ShardedMonitorBuilder()
      .Schema(ServingSchema())
      .Classifier("naive-bayes")
      .Detector("DDM")
      .Seed(seed)
      .Protocol(ShortConfig())
      .Shards(shards);
}

// ------------------------------------------------------- Router contracts

TEST(RouterTest, HashKeyIsPinnedAndStable) {
  // The placement contract is pure integer arithmetic; these pinned values
  // guarantee it never drifts across platforms, compilers or refactors —
  // external balancers compute shard ownership from the same numbers.
  EXPECT_EQ(Router::HashKey(0), 16294208416658607535ull);
  EXPECT_EQ(Router::HashKey(1), 10451216379200822465ull);
  EXPECT_EQ(Router::HashKey(42), 13679457532755275413ull);
  EXPECT_EQ(Router::HashKey(123456789), 2466975172287755897ull);
  EXPECT_EQ(Router::KeySlot(0, 8), 7);
  EXPECT_EQ(Router::KeySlot(1, 8), 1);
  EXPECT_EQ(Router::KeySlot(42, 8), 5);
  // One slot swallows everything; sequential keys spread over many.
  std::vector<int> hits(8, 0);
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(Router::KeySlot(k, 1), 0);
    ++hits[static_cast<size_t>(Router::KeySlot(k, 8))];
  }
  for (int h : hits) EXPECT_GT(h, 0);
  EXPECT_THROW(Router::KeySlot(7, 0), std::invalid_argument);
}

TEST(RouterTest, RoutesUnderSharedTableLockAndModeIsEnforced) {
  Router hash_router(4, RoutingMode::kHashKey);
  EXPECT_EQ(hash_router.slots(), 4);
  {
    runtime::ReaderLock table(&hash_router.TableMutex());
    EXPECT_EQ(hash_router.RouteKey(42), Router::KeySlot(42, 4));
    // Round-robining keyed traffic would break per-key ordering — rejected.
    EXPECT_THROW(hash_router.RouteNext(), std::logic_error);
    EXPECT_THROW(hash_router.RequireSlot(4), std::out_of_range);
    EXPECT_THROW(hash_router.RequireSlot(-1), std::out_of_range);
    EXPECT_NO_THROW(hash_router.RequireSlot(3));
  }

  Router rr_router(3, RoutingMode::kRoundRobin);
  runtime::ReaderLock table(&rr_router.TableMutex());
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(rr_router.RouteNext(), i % 3);
  }
  // Keyed lookups stay legal on a round-robin table (ticket labelling).
  EXPECT_NO_THROW(rr_router.RouteKey(7));
}

/// The runtime half of the AddSlot lock-identity contract, exercised with
/// the thread-safety analysis off: under clang the same call does not even
/// compile (tests/negative_compile/add_slot_without_table_lock.cc proves
/// it), so this body must opt out of the analysis to exist at all.
void ExpectForeignLockRejected(Router& router) CCD_NO_THREAD_SAFETY_ANALYSIS {
  Router other(1, RoutingMode::kHashKey);
  runtime::WriterLock foreign(&other.TableMutex());
  EXPECT_THROW(router.AddSlot(foreign), std::logic_error);
}

TEST(RouterTest, AddSlotGrowsTableUnderExclusiveLockOnly) {
  Router router(2, RoutingMode::kHashKey);
  {
    runtime::WriterLock table(&router.TableMutex());
    EXPECT_EQ(router.AddSlot(table), 2);
  }
  EXPECT_EQ(router.slots(), 3);
  {
    runtime::ReaderLock table(&router.TableMutex());
    EXPECT_NO_THROW(router.RequireSlot(2));
  }
  // A *different* router's exclusive lock is not good enough.
  ExpectForeignLockRejected(router);
}

// --------------------------------------------------------- merge helpers

TEST(MergeSnapshotsTest, SumsCountersAndOrdersLogs) {
  EngineSnapshot a;
  a.position = 10;
  a.pending = 2;
  a.evicted = 1;
  a.metric_samples = 3;
  a.next_id = 5;
  a.last_detector_state = DetectorState::kWarning;
  a.class_counts = {4, 6};
  a.drift_log = {DriftAlarm{7, {0}}};
  a.pmauc_series = {{7, 0.5}};
  a.sum_pmauc = 1.5;
  EngineSnapshot b;
  b.position = 20;
  b.unmatched_labels = 4;
  b.metric_samples = 1;
  b.next_id = 9;
  b.last_detector_state = DetectorState::kDrift;
  b.class_counts = {1, 2};
  b.drift_log = {DriftAlarm{3, {}}, DriftAlarm{7, {1}}};
  b.pmauc_series = {{3, 0.25}};
  b.sum_pmauc = 0.5;

  const EngineSnapshot m = MergeSnapshots({a, b});
  EXPECT_EQ(m.position, 30u);
  EXPECT_EQ(m.pending, 2u);
  EXPECT_EQ(m.evicted, 1u);
  EXPECT_EQ(m.unmatched_labels, 4u);
  EXPECT_EQ(m.metric_samples, 4u);
  EXPECT_EQ(m.next_id, 9u);
  EXPECT_EQ(m.last_detector_state, DetectorState::kDrift);
  EXPECT_EQ(m.class_counts, (std::vector<uint64_t>{5, 8}));
  // Ascending position, shard order on ties (a's alarm at 7 before b's).
  ASSERT_EQ(m.drift_log.size(), 3u);
  EXPECT_EQ(m.drift_log[0], (DriftAlarm{3, {}}));
  EXPECT_EQ(m.drift_log[1], (DriftAlarm{7, {0}}));
  EXPECT_EQ(m.drift_log[2], (DriftAlarm{7, {1}}));
  EXPECT_EQ(m.pmauc_series,
            (std::vector<std::pair<uint64_t, double>>{{3, 0.25}, {7, 0.5}}));
  EXPECT_EQ(m.sum_pmauc, 2.0);

  const std::vector<ShardAlarm> alarms = MergeShardAlarms({a, b});
  ASSERT_EQ(alarms.size(), 3u);
  EXPECT_EQ(alarms[0], (ShardAlarm{1, DriftAlarm{3, {}}}));
  EXPECT_EQ(alarms[1], (ShardAlarm{0, DriftAlarm{7, {0}}}));
  EXPECT_EQ(alarms[2], (ShardAlarm{1, DriftAlarm{7, {1}}}));

  const PrequentialResult r = MergedResult({a, b});
  EXPECT_EQ(r.instances, 30u);
  EXPECT_EQ(r.drifts, 3u);
  EXPECT_EQ(r.drift_positions, (std::vector<uint64_t>{3, 7, 7}));
  EXPECT_EQ(r.mean_pmauc, 0.5);  // (1.5 + 0.5) / 4 samples.

  // Shards disagreeing on class arity are a caller bug, not a zero-fill.
  EngineSnapshot c;
  c.class_counts = {1, 2, 3};
  EXPECT_THROW(MergeSnapshots({a, c}), std::invalid_argument);
  // Degenerate inputs.
  EXPECT_EQ(MergeSnapshots({}).position, 0u);
  EXPECT_EQ(MergedResult({}).instances, 0u);
}

TEST(MergeSnapshotsTest, SingleShardMergeMatchesEngineResult) {
  auto stream = MakeRbfDriftStream(900, 21);
  test_util::FrozenClassifier clf(stream->schema());
  MonitorEngine engine(stream->schema(), &clf, nullptr, ShortConfig());
  for (const Instance& instance : Take(stream.get(), 1500)) {
    engine.Feed(instance);
  }
  test_util::ExpectBitIdentical(engine.Result(),
                                MergedResult({engine.Snapshot()}));
}

// ------------------------------------------------- (a) differential test

// A hash-routed ShardedMonitor fed single-threaded is bit-identical, per
// shard, to K independent api::Monitors fed the key-partitioned
// substreams — the router adds routing, not arithmetic. The baseline uses
// the documented contracts: shard i's components are seeded Seed() + i,
// and keys partition by Router::KeySlot(key, K).
// The oracle itself lives in tests/sim_harness.h now: HistoryChecker
// replays the recorded linearization against per-shard api::Monitors
// seeded Seed() + i and compares every outcome plus the final per-shard
// snapshots and the merged aggregate — the same checker the simulation
// sweeps (sim_test, sim_crash_test) run over seeded interleavings with
// reshard/drain/SHIP/crash faults. Here it gets the degenerate history:
// single-threaded, fault-free, Feed-only.
TEST(ShardedDifferentialTest, HashRoutedEqualsIndependentEnginesPerShard) {
  test_util::SimServingConfig config;
  config.shards = 4;
  config.seed = 100;
  auto monitor = test_util::MakeServing(config);
  EXPECT_EQ(monitor.mode(), RoutingMode::kHashKey);
  EXPECT_EQ(monitor.shards(), config.shards);

  test_util::SimHistory history;
  test_util::RecordingMonitor recording(&monitor, &history);
  auto stream = MakeRbfDriftStream(1500, 11);
  const std::vector<Instance> data = Take(stream.get(), 3000);
  for (size_t i = 0; i < data.size(); ++i) {
    recording.Feed(/*key=*/i, data[i]);
  }

  EXPECT_EQ(monitor.position(), 3000u);
  test_util::HistoryChecker checker(config);
  const test_util::SimCheckResult verdict = checker.Check(history, monitor);
  EXPECT_TRUE(verdict.ok) << verdict.error;
}

// ------------------------------------------------ (b) multi-thread stress

/// Pushes one producer's schedule through the monitor: Predict/Label
/// interleaved with a 3-deep verification-latency queue, drained at the
/// end. Deterministic per shard, whatever the cross-shard interleaving.
void PushSchedule(api::ShardedMonitor& monitor,
                  const std::vector<KeyedInstance>& schedule) {
  std::deque<std::pair<api::ShardedMonitor::Prediction, int>> in_flight;
  for (const KeyedInstance& push : schedule) {
    in_flight.emplace_back(
        monitor.Predict(push.key, push.instance.features,
                        push.instance.weight),
        push.instance.label);
    if (in_flight.size() > 3) {
      const auto& [prediction, label] = in_flight.front();
      ASSERT_TRUE(monitor.Label(prediction.shard, prediction.id, label));
      in_flight.pop_front();
    }
  }
  while (!in_flight.empty()) {
    const auto& [prediction, label] = in_flight.front();
    ASSERT_TRUE(monitor.Label(prediction.shard, prediction.id, label));
    in_flight.pop_front();
  }
}

// The acceptance stress: 4 producer threads × 4 shards, each thread
// owning the keys of exactly one shard, so the per-shard push sequences
// are deterministic while the threads genuinely interleave. Per-shard
// counts, metric windows and drift logs must be bit-identical to a
// single-threaded replay of the same per-key sequences.
TEST(RouterStressTest, DisjointKeyProducersMatchSingleThreadedRun) {
  constexpr int kShards = 4;
  constexpr int kProducers = 4;
  constexpr size_t kPushes = 1500;

  std::vector<std::vector<KeyedInstance>> schedules;
  for (int t = 0; t < kProducers; ++t) {
    schedules.push_back(MakeKeyedSchedule(KeysForSlot(t, kShards, 8), kPushes,
                                          /*seed=*/7 + t));
  }

  auto concurrent = ServingBuilder(kShards).Build();
  RunProducers(kProducers, [&](int t) {
    PushSchedule(concurrent, schedules[static_cast<size_t>(t)]);
  });

  auto sequential = ServingBuilder(kShards).Build();
  for (const auto& schedule : schedules) {
    PushSchedule(sequential, schedule);
  }

  EXPECT_EQ(concurrent.position(), kProducers * kPushes);
  for (int s = 0; s < kShards; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    ExpectSnapshotEq(sequential.ShardSnapshot(s), concurrent.ShardSnapshot(s));
  }
  test_util::ExpectBitIdentical(sequential.Result(), concurrent.Result());
}

// The contended variant: more producers than shards and overlapping key
// sets, so threads hammer the *same* slot mutexes. Per-shard order is
// nondeterministic here; the invariant is accounting — every push lands
// exactly once and the striped locks never lose or double-count one.
// (This is the test that makes the TSan job bite.)
TEST(RouterStressTest, ContendedShardsKeepAggregateCounts) {
  constexpr int kShards = 2;
  constexpr int kProducers = 4;
  constexpr size_t kPushes = 1000;

  auto monitor = ServingBuilder(kShards).Build();
  std::vector<std::vector<KeyedInstance>> schedules;
  for (int t = 0; t < kProducers; ++t) {
    // Same key pool for everyone: maximal contention.
    schedules.push_back(MakeKeyedSchedule({0, 1, 2, 3, 4, 5}, kPushes,
                                          /*seed=*/50 + t));
  }
  std::vector<uint64_t> expected_class_counts(3, 0);
  for (const auto& schedule : schedules) {
    for (const KeyedInstance& push : schedule) {
      ++expected_class_counts[static_cast<size_t>(push.instance.label)];
    }
  }

  RunProducers(kProducers, [&](int t) {
    for (const KeyedInstance& push : schedules[static_cast<size_t>(t)]) {
      monitor.Feed(push.key, push.instance);
    }
  });

  EXPECT_EQ(monitor.position(), kProducers * kPushes);
  EXPECT_EQ(monitor.pending(), 0u);
  EXPECT_EQ(monitor.Snapshot().class_counts, expected_class_counts);
}

// --------------------------------------------------- (c) resharding tests

// DrainShard mid-stream: the drained shard's complete EngineState —
// pending-label buffer included — moves onto the replacement engine, and
// everything afterwards (late labels, metric windows, drift logs, further
// pushes) is bit-identical to a run that never drained.
TEST(ReshardTest, DrainShardMidStreamIsBitIdenticalToNeverDraining) {
  constexpr int kShards = 3;
  const std::vector<KeyedInstance> schedule =
      MakeKeyedSchedule({0, 1, 2, 3, 4, 5, 6, 7}, 2400, /*seed=*/13);

  auto collect = [&](bool drain) {
    auto monitor = ServingBuilder(kShards).Build();
    // First half, plus two predictions left in flight across the drain.
    for (size_t i = 0; i < 1200; ++i) {
      monitor.Feed(schedule[i].key, schedule[i].instance);
    }
    auto p1 = monitor.Predict(schedule[1200].key,
                              schedule[1200].instance.features);
    auto p2 = monitor.Predict(schedule[1201].key,
                              schedule[1201].instance.features);
    if (drain) monitor.DrainShard(1);
    // The parked predictions stay servable on the new owner.
    EXPECT_TRUE(monitor.Label(p1.shard, p1.id, schedule[1200].instance.label));
    EXPECT_TRUE(monitor.Label(p2.shard, p2.id, schedule[1201].instance.label));
    if (drain) monitor.DrainShard(0);
    for (size_t i = 1202; i < schedule.size(); ++i) {
      monitor.Feed(schedule[i].key, schedule[i].instance);
    }
    std::vector<EngineSnapshot> snapshots;
    for (int s = 0; s < kShards; ++s) {
      snapshots.push_back(monitor.ShardSnapshot(s));
    }
    return snapshots;
  };

  const std::vector<EngineSnapshot> undrained = collect(false);
  const std::vector<EngineSnapshot> drained = collect(true);
  ASSERT_EQ(undrained.size(), drained.size());
  for (size_t s = 0; s < undrained.size(); ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    ExpectSnapshotEq(undrained[s], drained[s]);
  }
}

TEST(ReshardTest, AddShardGrowsTableAndReroutesKeys) {
  auto monitor = ServingBuilder(2).Build();
  const std::vector<KeyedInstance> schedule =
      MakeKeyedSchedule({0, 1, 2, 3, 4, 5, 6, 7}, 600, /*seed=*/23);
  for (const KeyedInstance& push : schedule) {
    monitor.Feed(push.key, push.instance);
  }
  EXPECT_EQ(monitor.AddShard(), 2);
  EXPECT_EQ(monitor.shards(), 3);
  // Histories stayed put; the new shard starts empty.
  EXPECT_EQ(monitor.position(), 600u);
  EXPECT_EQ(monitor.ShardSnapshot(2).position, 0u);
  // Keyed routing now hashes over the grown table.
  for (uint64_t key = 0; key < 32; ++key) {
    auto p = monitor.Predict(key, schedule[0].instance.features);
    EXPECT_EQ(p.shard, Router::KeySlot(key, 3));
    EXPECT_TRUE(monitor.Label(p.shard, p.id, schedule[0].instance.label));
  }
  // Some of those keys actually landed on the new shard (pinned: of keys
  // 0..31, several hash to slot 2 in a 3-wide table).
  EXPECT_GT(monitor.ShardSnapshot(2).position, 0u);
}

// ----------------------------------------- round-robin + aggregate fan-in

TEST(RoundRobinTest, CyclesShardsAndAggregates) {
  constexpr int kShards = 3;
  std::vector<std::pair<uint64_t, size_t>> merged_samples;  // position, window
  auto monitor = api::ShardedMonitorBuilder()
                     .Schema(ServingSchema())
                     .Classifier("naive-bayes")
                     .Detector("DDM")
                     .Seed(100)
                     .Protocol(ShortConfig())
                     .Shards(kShards)
                     .Mode(RoutingMode::kRoundRobin)
                     .MergeEvery(500)
                     .OnMergedMetrics([&](const MetricsSnapshot& m) {
                       merged_samples.emplace_back(m.position, m.window_size);
                     })
                     .Build();

  auto stream = MakeRbfDriftStream(1500, 29);
  const std::vector<Instance> data = Take(stream.get(), 3000);
  for (const Instance& instance : data) monitor.Feed(instance);

  // Perfect rotation: every shard saw exactly a third of the stream.
  for (int s = 0; s < kShards; ++s) {
    EXPECT_EQ(monitor.ShardSnapshot(s).position, 1000u);
  }
  EXPECT_EQ(monitor.Result().instances, 3000u);
  // The periodic EngineState merge fired on schedule, at the aggregate
  // positions, with the summed window sizes.
  ASSERT_EQ(merged_samples.size(), 6u);
  for (size_t i = 0; i < merged_samples.size(); ++i) {
    EXPECT_EQ(merged_samples[i].first, (i + 1) * 500);
  }
  EXPECT_GT(merged_samples.back().second, 0u);

  // Ticket-based serving works in rotation mode too.
  auto p = monitor.Predict(data[0].features);
  EXPECT_TRUE(monitor.Label(p.shard, p.id, data[0].label));

  // Keyed pushes are the hash-mode surface.
  EXPECT_THROW(monitor.Feed(7, data[0]), std::logic_error);
  EXPECT_THROW(monitor.Predict(7, data[0].features), std::logic_error);
  EXPECT_THROW(monitor.LabelKey(7, 1, 0), std::logic_error);
}

TEST(RoutingModeTest, HashModeRejectsUnkeyedPushes) {
  auto monitor = ServingBuilder(2).Build();
  auto stream = MakeRbfDriftStream(100, 3);
  const Instance instance = Take(stream.get(), 1).front();
  EXPECT_THROW(monitor.Feed(instance), std::logic_error);
  EXPECT_THROW(monitor.Predict(instance.features), std::logic_error);
  EXPECT_THROW(monitor.Label(5, 1, 0), std::out_of_range);
  EXPECT_THROW(monitor.DrainShard(2), std::out_of_range);
  EXPECT_THROW(monitor.ShardSnapshot(-1), std::out_of_range);
}

// Shard-tagged drift fan-in: every alarm a shard engine raises arrives at
// the aggregate callback tagged with that shard's id, and the aggregate
// DriftLog() is exactly the fan-in history.
TEST(ShardedCallbackTest, DriftAlarmsFanInWithShardIds) {
  runtime::Mutex mutex;
  std::vector<ShardAlarm> seen;
  auto monitor = api::ShardedMonitorBuilder()
                     .Schema(ServingSchema())
                     .Classifier("naive-bayes")
                     .Detector("DDM")
                     .Seed(100)
                     .Protocol(ShortConfig())
                     .Shards(3)
                     .OnDrift([&](int shard, const DriftAlarm& alarm,
                                  const MetricsSnapshot&) {
                       runtime::MutexLock lock(&mutex);
                       seen.push_back(ShardAlarm{shard, alarm});
                     })
                     .Build();

  // A sudden concept switch on every key's substream: DDM sees the error
  // rate jump on each shard.
  const std::vector<KeyedInstance> schedule =
      MakeKeyedSchedule({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, 6000,
                        /*seed=*/31);
  for (const KeyedInstance& push : schedule) {
    monitor.Feed(push.key, push.instance);
  }

  const std::vector<ShardAlarm> log = monitor.DriftLog();
  ASSERT_FALSE(log.empty());  // The drift actually fired somewhere.
  // Fan-in history == aggregate log (same alarms; fan-in order is the
  // firing order, the log is position-sorted — compare as multisets via
  // per-shard sequences).
  for (int s = 0; s < 3; ++s) {
    std::vector<DriftAlarm> from_callbacks;
    for (const ShardAlarm& a : seen) {
      if (a.shard == s) from_callbacks.push_back(a.alarm);
    }
    EXPECT_EQ(from_callbacks, monitor.ShardSnapshot(s).drift_log)
        << "shard " << s;
  }
}

// ------------------------------------------------------ builder contracts

TEST(ShardedMonitorBuilderTest, ValidatesConfiguration) {
  EXPECT_THROW(api::ShardedMonitorBuilder().Build(), api::ApiError);
  EXPECT_THROW(
      api::ShardedMonitorBuilder().Schema(0, 3).Build(), api::ApiError);
  EXPECT_THROW(
      api::ShardedMonitorBuilder().Schema(6, 3).Shards(0).Build(),
      api::ApiError);
  EXPECT_THROW(
      api::ShardedMonitorBuilder().Schema(6, 3).Shards(-2).Build(),
      api::ApiError);
  EXPECT_THROW(api::ShardedMonitorBuilder()
                   .Schema(6, 3)
                   .Classifier("no-such-classifier")
                   .Build(),
               api::ApiError);
  EXPECT_THROW(api::ShardedMonitorBuilder()
                   .Schema(6, 3)
                   .Detector("no-such-detector")
                   .Build(),
               api::ApiError);
  PrequentialConfig bad = ShortConfig();
  bad.eval_interval = 0;
  EXPECT_THROW(
      api::ShardedMonitorBuilder().Schema(6, 3).Protocol(bad).Build(),
      api::ApiError);
}

}  // namespace
}  // namespace ccd
