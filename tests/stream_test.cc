#include <gtest/gtest.h>

#include <stdexcept>

#include "stream/instance.h"
#include "stream/normalizer.h"
#include "stream/stream.h"
#include "stream/window.h"

namespace ccd {
namespace {

TEST(SchemaTest, Validity) {
  EXPECT_TRUE(StreamSchema(3, 2).Valid());
  EXPECT_FALSE(StreamSchema(0, 2).Valid());
  EXPECT_FALSE(StreamSchema(3, 1).Valid());
}

TEST(VectorStreamTest, ReplaysInOrder) {
  std::vector<Instance> data = {Instance({0.0}, 0), Instance({1.0}, 1)};
  VectorStream s(StreamSchema(1, 2), data);
  EXPECT_EQ(s.position(), 0u);
  EXPECT_EQ(s.Next().label, 0);
  EXPECT_EQ(s.Next().label, 1);
  EXPECT_EQ(s.position(), 2u);
}

TEST(VectorStreamTest, LoopWrapsAround) {
  std::vector<Instance> data = {Instance({0.0}, 0), Instance({1.0}, 1)};
  VectorStream s(StreamSchema(1, 2), data, /*loop=*/true);
  s.Next();
  s.Next();
  EXPECT_EQ(s.Next().label, 0);
}

TEST(TakeTest, MaterializesN) {
  std::vector<Instance> data = {Instance({0.0}, 0)};
  VectorStream s(StreamSchema(1, 2), data, true);
  auto out = Take(&s, 5);
  EXPECT_EQ(out.size(), 5u);
}

TEST(SlidingWindowTest, EvictsOldestAndTracksSum) {
  SlidingWindow w(3);
  w.Push(1.0);
  w.Push(2.0);
  w.Push(3.0);
  EXPECT_TRUE(w.Full());
  EXPECT_DOUBLE_EQ(w.Sum(), 6.0);
  w.Push(4.0);  // Evicts 1.0.
  EXPECT_DOUBLE_EQ(w.Sum(), 9.0);
  EXPECT_DOUBLE_EQ(w.Front(), 2.0);
  EXPECT_DOUBLE_EQ(w.Back(), 4.0);
  EXPECT_DOUBLE_EQ(w.Mean(), 3.0);
  EXPECT_EQ(w.size(), 3u);
}

TEST(SlidingWindowTest, ClearResets) {
  SlidingWindow w(2);
  w.Push(5.0);
  w.Clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_DOUBLE_EQ(w.Mean(), 0.0);
}

TEST(BatcherTest, SignalsFullBatches) {
  Batcher<int> b(3);
  EXPECT_FALSE(b.Push(1));
  EXPECT_FALSE(b.Push(2));
  EXPECT_TRUE(b.Push(3));
  auto batch = b.TakeBatch();
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(b.pending(), 0u);
}

TEST(NormalizerTest, MapsIntoUnitInterval) {
  MinMaxNormalizer n(2);
  n.Observe({0.0, -10.0});
  n.Observe({10.0, 10.0});
  auto t = n.Transform({5.0, 0.0});
  EXPECT_NEAR(t[0], 0.5, 1e-12);
  EXPECT_NEAR(t[1], 0.5, 1e-12);
}

TEST(NormalizerTest, ClampsOutOfRange) {
  MinMaxNormalizer n(1);
  n.Observe({0.0});
  n.Observe({1.0});
  EXPECT_DOUBLE_EQ(n.Transform({5.0})[0], 1.0);
  EXPECT_DOUBLE_EQ(n.Transform({-5.0})[0], 0.0);
}

TEST(NormalizerTest, ConstantFeatureMapsToHalf) {
  MinMaxNormalizer n(1);
  n.Observe({3.0});
  n.Observe({3.0});
  EXPECT_DOUBLE_EQ(n.Transform({3.0})[0], 0.5);
}

TEST(NormalizerTest, UnseenReturnsHalf) {
  MinMaxNormalizer n(2);
  auto t = n.Transform({1.0, 2.0});
  EXPECT_DOUBLE_EQ(t[0], 0.5);
  EXPECT_DOUBLE_EQ(t[1], 0.5);
}

TEST(NormalizerTest, RejectsWidthMismatch) {
  // Regression: Observe/Transform used to iterate over x.size() while
  // lo_/hi_ were sized by the constructor — an instance wider than
  // declared read and wrote out of bounds.
  MinMaxNormalizer n(2);
  EXPECT_THROW(n.Observe({1.0, 2.0, 3.0}), std::invalid_argument);
  EXPECT_THROW(n.Transform({1.0}), std::invalid_argument);
  EXPECT_THROW(n.ObserveTransform({1.0, 2.0, 3.0}), std::invalid_argument);
  // The failed calls must not have corrupted state; matching widths work.
  EXPECT_FALSE(n.seen());
  n.Observe({0.0, 1.0});
  n.Observe({1.0, 0.0});
  auto t = n.Transform({0.5, 0.5});
  EXPECT_NEAR(t[0], 0.5, 1e-12);
  EXPECT_NEAR(t[1], 0.5, 1e-12);
}

}  // namespace
}  // namespace ccd
