#!/usr/bin/env python3
"""Self-test for tools/lint_determinism.py (ctest: lint_determinism_selftest).

Builds throwaway fixture trees and proves that:

  * the io-layer memcpy / reinterpret_cast rules fire inside src/io/,
  * they do NOT fire outside their src/io/ scope,
  * the (file, rule) allowlist is honored (wire.cc may pun floats),
  * the pre-existing rules (std::random_device, ...) still fire,
  * a clean tree exits 0.
"""

import contextlib
import io
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
import lint_determinism  # noqa: E402


def run_lint(root):
    out = io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(out):
        code = lint_determinism.main(["--repo", str(root)])
    return code, out.getvalue()


def make_tree(tmp, files):
    root = Path(tmp)
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return root


FLOAT_PUN = """
#include <cstring>
static unsigned long long Pun(double v) {
  unsigned long long bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}
"""

ALIAS_CAST = """
static unsigned char First(const char* p) {
  return *reinterpret_cast<const unsigned char*>(p);
}
"""


class IoScopedRulesTest(unittest.TestCase):
    def test_memcpy_in_io_fires(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_tree(tmp, {"src/io/bad.cc": FLOAT_PUN})
            code, out = run_lint(root)
            self.assertEqual(code, 1, out)
            self.assertIn("[io_memcpy]", out)
            self.assertIn("src/io/bad.cc:5", out)

    def test_reinterpret_cast_in_io_fires(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_tree(tmp, {"src/io/bad.cc": ALIAS_CAST})
            code, out = run_lint(root)
            self.assertEqual(code, 1, out)
            self.assertIn("[io_reinterpret_cast]", out)

    def test_scope_excludes_non_io(self):
        # The same punning outside src/io/ is not this rule's business.
        with tempfile.TemporaryDirectory() as tmp:
            root = make_tree(tmp, {"src/core/fast_path.cc": FLOAT_PUN})
            code, out = run_lint(root)
            self.assertEqual(code, 0, out)

    def test_allowlist_honored_for_wire_cc(self):
        # wire.cc is the audited codec: both rules are allowlisted there,
        # but a neighboring io file gets no such grace.
        with tempfile.TemporaryDirectory() as tmp:
            root = make_tree(tmp, {
                "src/io/wire.cc": FLOAT_PUN + ALIAS_CAST,
                "src/io/sneaky.cc": FLOAT_PUN,
            })
            code, out = run_lint(root)
            self.assertEqual(code, 1, out)
            self.assertIn("src/io/sneaky.cc", out)
            self.assertNotIn("src/io/wire.cc", out)

    def test_comments_and_strings_do_not_fire(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_tree(tmp, {"src/io/doc.cc": """
// memcpy(&a, &b, 4) would be wrong here; reinterpret_cast<int*> too.
static const char* kMsg = "never std::memcpy in the io layer";
"""})
            code, out = run_lint(root)
            self.assertEqual(code, 0, out)


RAW_MUTEX = """
#include <mutex>
static std::mutex raw_lock;
static std::condition_variable raw_cv;
"""


class SimAllowlistTest(unittest.TestCase):
    def test_sim_cc_raw_primitives_are_allowlisted(self):
        # The simulation scheduler is the machinery *beneath* the sync.h
        # wrappers; its raw primitives carry a standing justification.
        with tempfile.TemporaryDirectory() as tmp:
            root = make_tree(tmp, {"src/runtime/sim.cc": RAW_MUTEX})
            code, out = run_lint(root)
            self.assertEqual(code, 0, out)

    def test_unjustified_raw_primitive_next_to_sim_still_fires(self):
        # The grant is (file, rule)-narrow: a neighboring runtime file —
        # say a second scheduler half someone splits out without updating
        # the allowlist justification — still fails.
        with tempfile.TemporaryDirectory() as tmp:
            root = make_tree(tmp, {
                "src/runtime/sim.cc": RAW_MUTEX,
                "src/runtime/sim_extra.cc": RAW_MUTEX,
            })
            code, out = run_lint(root)
            self.assertEqual(code, 1, out)
            self.assertIn("[raw_mutex]", out)
            self.assertIn("src/runtime/sim_extra.cc", out)
            self.assertNotIn("src/runtime/sim.cc:", out)


class ExistingRulesStillFireTest(unittest.TestCase):
    def test_random_device_fires_anywhere_in_src(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_tree(tmp, {"src/core/seed.cc": """
#include <random>
static unsigned Seed() { return std::random_device{}(); }
"""})
            code, out = run_lint(root)
            self.assertEqual(code, 1, out)
            self.assertIn("[random_device]", out)

    def test_clean_tree_passes(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = make_tree(tmp, {"src/core/ok.cc": """
static int Add(int a, int b) { return a + b; }
"""})
            code, out = run_lint(root)
            self.assertEqual(code, 0, out)
            self.assertIn("clean", out)


class RealTreeTest(unittest.TestCase):
    def test_repo_src_is_clean(self):
        # The committed tree must hold the bar the fixtures prove exists.
        repo = Path(__file__).resolve().parent.parent
        code, out = run_lint(repo)
        self.assertEqual(code, 0, out)


if __name__ == "__main__":
    unittest.main()
