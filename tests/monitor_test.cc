// MonitorEngine + api::Monitor — the push-based online monitoring
// surface. The load-bearing claims:
//   (a) pushing a stream through the engine with immediate labels is
//       bit-identical to RunPrequential (offline eval and online serving
//       share one engine),
//   (b) delayed labels applied in arrival order reproduce the same
//       detector state and run result,
//   (c) the bounded pending buffer evicts oldest-first, counts what it
//       drops, and never goes out of bounds.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <deque>
#include <memory>
#include <stdexcept>
#include <vector>

#include "api/api.h"
#include "classifiers/naive_bayes.h"
#include "detectors/ddm.h"
#include "detectors/fhddm.h"
#include "eval/engine.h"
#include "eval/prequential.h"
#include "generators/registry.h"
#include "stream/stream.h"
#include "testing_util.h"

namespace ccd {
namespace {

using test_util::ExpectBitIdentical;
using test_util::FrozenClassifier;
using test_util::ShortConfig;
using test_util::WarningRegionDetector;

/// Scripted detector with drifted-classes payloads, for testing that the
/// engine surfaces local-drift information instead of dropping it.
class ScriptedLocalDetector : public DriftDetector {
 public:
  void Observe(const Instance&, int, const std::vector<double>&) override {
    ++observed_;
    fired_ = observed_ == 400 || observed_ == 900;
  }
  DetectorState state() const override {
    return fired_ ? DetectorState::kDrift : DetectorState::kStable;
  }
  void Reset() override { fired_ = false; }
  std::string name() const override { return "scripted-local"; }
  std::vector<int> drifted_classes() const override {
    return fired_ ? std::vector<int>{1, 2} : std::vector<int>{};
  }

 private:
  uint64_t observed_ = 0;
  bool fired_ = false;
};

// ------------------------------------------------ (a) engine equivalence

// Push-with-immediate-labels (engine Feed) == offline RunPrequential,
// bit for bit, across a seeded (stream x detector) grid.
TEST(MonitorEngineTest, FeedIsBitIdenticalToRunPrequential) {
  const std::vector<std::string> streams = {"RBF5", "Aggrawal5"};
  const std::vector<std::string> detectors = {"DDM", "FHDDM", "PerfSim"};
  for (const std::string& stream_name : streams) {
    for (const std::string& detector_name : detectors) {
      SCOPED_TRACE(stream_name + " / " + detector_name);
      const StreamSpec* spec = FindStreamSpec(stream_name);
      ASSERT_NE(spec, nullptr);
      BuildOptions options;
      options.scale = 0.001;
      options.seed = 42;

      PrequentialConfig cfg = ShortConfig();

      // Offline: the pull-based adapter.
      BuiltStream offline = BuildStream(*spec, options);
      auto offline_clf = api::MakeClassifier("cs-ptree", offline.stream->schema(),
                                             options.seed);
      auto offline_det = api::MakeDetector(detector_name,
                                           offline.stream->schema(),
                                           options.seed);
      PrequentialResult pulled = RunPrequential(
          offline.stream.get(), offline_clf.get(), offline_det.get(), cfg);

      // Online: the same realization pushed through the engine.
      BuiltStream online = BuildStream(*spec, options);
      auto online_clf = api::MakeClassifier("cs-ptree", online.stream->schema(),
                                            options.seed);
      auto online_det = api::MakeDetector(detector_name,
                                          online.stream->schema(),
                                          options.seed);
      MonitorEngine engine(online.stream->schema(), online_clf.get(),
                           online_det.get(), cfg);
      for (uint64_t i = 0; i < cfg.max_instances; ++i) {
        engine.Feed(online.stream->Next());
      }
      ExpectBitIdentical(pulled, engine.Result());
    }
  }
}

// Predict()+Label() back to back is the same step as Feed().
TEST(MonitorEngineTest, SplitPredictLabelMatchesFeed) {
  const StreamSpec* spec = FindStreamSpec("RBF5");
  ASSERT_NE(spec, nullptr);
  BuildOptions options;
  options.scale = 0.001;
  PrequentialConfig cfg = ShortConfig();

  BuiltStream a = BuildStream(*spec, options);
  std::vector<Instance> data = Take(a.stream.get(), cfg.max_instances);

  GaussianNaiveBayes clf_feed(a.stream->schema());
  Fhddm det_feed;
  MonitorEngine feed_engine(a.stream->schema(), &clf_feed, &det_feed, cfg);
  for (const Instance& inst : data) feed_engine.Feed(inst);

  GaussianNaiveBayes clf_split(a.stream->schema());
  Fhddm det_split;
  MonitorEngine split_engine(a.stream->schema(), &clf_split, &det_split, cfg);
  for (const Instance& inst : data) {
    MonitorEngine::Ticket t = split_engine.Predict(inst.features, inst.weight);
    EXPECT_EQ(split_engine.Label(t.id, inst.label), LabelOutcome::kApplied);
  }
  ExpectBitIdentical(feed_engine.Result(), split_engine.Result());
  EXPECT_EQ(split_engine.pending(), 0u);
  EXPECT_EQ(split_engine.evicted(), 0u);
}

// ------------------------------------------- (b) delayed-label semantics

// With a stateless classifier, delaying every label by k predictions (in
// arrival order) reproduces the exact detector state and result of the
// immediate-label run: the decoupled path itself introduces no drift in
// behavior — any difference under a *learning* classifier is purely model
// staleness, not engine state corruption.
TEST(MonitorEngineTest, DelayedLabelsInArrivalOrderMatchImmediate) {
  const StreamSpec* spec = FindStreamSpec("RBF5");
  ASSERT_NE(spec, nullptr);
  BuildOptions options;
  options.scale = 0.001;
  PrequentialConfig cfg = ShortConfig();

  BuiltStream built = BuildStream(*spec, options);
  std::vector<Instance> data = Take(built.stream.get(), cfg.max_instances);

  for (size_t delay : {0u, 1u, 7u, 64u}) {
    SCOPED_TRACE("delay=" + std::to_string(delay));
    FrozenClassifier clf_now(built.stream->schema());
    Ddm det_now;
    MonitorEngine now(built.stream->schema(), &clf_now, &det_now, cfg);
    for (const Instance& inst : data) now.Feed(inst);

    FrozenClassifier clf_late(built.stream->schema());
    Ddm det_late;
    MonitorEngine late(built.stream->schema(), &clf_late, &det_late, cfg,
                       EngineHooks{}, /*pending_capacity=*/delay + 1);
    std::deque<std::pair<uint64_t, int>> queue;  // (id, true label)
    for (const Instance& inst : data) {
      MonitorEngine::Ticket t = late.Predict(inst.features, inst.weight);
      queue.emplace_back(t.id, inst.label);
      if (queue.size() > delay) {
        EXPECT_EQ(late.Label(queue.front().first, queue.front().second),
                  LabelOutcome::kApplied);
        queue.pop_front();
      }
    }
    while (!queue.empty()) {  // Drain the tail.
      EXPECT_EQ(late.Label(queue.front().first, queue.front().second),
                LabelOutcome::kApplied);
      queue.pop_front();
    }
    ExpectBitIdentical(now.Result(), late.Result());
    EXPECT_EQ(late.last_detector_state(), now.last_detector_state());
    EXPECT_EQ(late.evicted(), 0u);
  }
}

// Out-of-order labels: every prediction still completes exactly once and
// the run accounts for every instance.
TEST(MonitorEngineTest, OutOfOrderLabelsAllComplete) {
  const StreamSpec* spec = FindStreamSpec("RBF5");
  ASSERT_NE(spec, nullptr);
  BuildOptions options;
  options.scale = 0.001;
  PrequentialConfig cfg = ShortConfig();
  cfg.max_instances = 600;

  BuiltStream built = BuildStream(*spec, options);
  std::vector<Instance> data = Take(built.stream.get(), cfg.max_instances);
  GaussianNaiveBayes clf(built.stream->schema());
  MonitorEngine engine(built.stream->schema(), &clf, nullptr, cfg);

  // Predict in batches of 4, label each batch in reverse.
  std::vector<std::pair<uint64_t, int>> batch;
  for (const Instance& inst : data) {
    MonitorEngine::Ticket t = engine.Predict(inst.features, inst.weight);
    batch.emplace_back(t.id, inst.label);
    if (batch.size() == 4) {
      for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
        EXPECT_EQ(engine.Label(it->first, it->second), LabelOutcome::kApplied);
      }
      batch.clear();
    }
  }
  PrequentialResult r = engine.Result();
  EXPECT_EQ(r.instances, 600u);
  EXPECT_EQ(engine.pending(), 0u);
  uint64_t total = 0;
  for (uint64_t c : r.class_counts) total += c;
  EXPECT_EQ(total, 600u);
}

// --------------------------------------------- (c) bounded pending buffer

TEST(MonitorEngineTest, EvictionIsCountedOldestFirstAndNeverOOBs) {
  StreamSchema schema(4, 3, "synthetic");
  FrozenClassifier clf(schema);
  PrequentialConfig cfg = ShortConfig();
  MonitorEngine engine(schema, &clf, nullptr, cfg, EngineHooks{},
                       /*pending_capacity=*/8);

  std::vector<uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    MonitorEngine::Ticket t =
        engine.Predict({static_cast<double>(i), 0.0, 0.0, 0.0});
    ids.push_back(t.id);
    EXPECT_LE(engine.pending(), 8u);
  }
  // 100 predictions into a buffer of 8: 92 evicted, oldest first.
  EXPECT_EQ(engine.evicted(), 92u);
  EXPECT_EQ(engine.pending(), 8u);

  // Labels for evicted ids are unknown (never applied, counted) ...
  EXPECT_EQ(engine.Label(ids[0], 1), LabelOutcome::kUnknown);
  EXPECT_EQ(engine.Label(ids[91], 1), LabelOutcome::kUnknown);
  // ... as are ids never issued.
  EXPECT_EQ(engine.Label(999999, 1), LabelOutcome::kUnknown);
  EXPECT_EQ(engine.unmatched_labels(), 3u);
  EXPECT_EQ(engine.position(), 0u);  // Nothing completed.

  // The 8 survivors all complete.
  for (size_t i = 92; i < 100; ++i) {
    EXPECT_EQ(engine.Label(ids[i], static_cast<int>(i % 3)),
              LabelOutcome::kApplied);
  }
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(engine.position(), 8u);
  // Double-labelling a completed prediction is unknown, not a crash.
  EXPECT_EQ(engine.Label(ids[99], 1), LabelOutcome::kUnknown);
}

TEST(MonitorEngineTest, CapacityIsClampedToOne) {
  StreamSchema schema(2, 2, "synthetic");
  FrozenClassifier clf(schema);
  MonitorEngine engine(schema, &clf, nullptr, ShortConfig(), EngineHooks{},
                       /*pending_capacity=*/0);
  engine.Predict({0.0, 0.0});
  engine.Predict({1.0, 0.0});
  EXPECT_EQ(engine.pending(), 1u);
  EXPECT_EQ(engine.evicted(), 1u);
}

// ------------------------------------------------- (d) batch push surface

// FeedBatch in chunks (including an empty one) is the per-instance Feed
// sequence, bit for bit — the batch entry changes call granularity only.
TEST(MonitorEngineTest, FeedBatchIsBitIdenticalToFeed) {
  const StreamSpec* spec = FindStreamSpec("RBF5");
  ASSERT_NE(spec, nullptr);
  BuildOptions options;
  options.scale = 0.001;
  PrequentialConfig cfg = ShortConfig();

  BuiltStream built = BuildStream(*spec, options);
  std::vector<Instance> data = Take(built.stream.get(), cfg.max_instances);

  GaussianNaiveBayes clf_one(built.stream->schema());
  Ddm det_one;
  MonitorEngine one(built.stream->schema(), &clf_one, &det_one, cfg);
  for (const Instance& inst : data) one.Feed(inst);

  GaussianNaiveBayes clf_batch(built.stream->schema());
  Ddm det_batch;
  MonitorEngine batched(built.stream->schema(), &clf_batch, &det_batch, cfg);
  size_t i = 0;
  for (size_t chunk : {1u, 7u, 0u, 64u, 256u}) {
    const size_t end = std::min(data.size(), i + chunk);
    batched.FeedBatch({data.begin() + static_cast<long>(i),
                       data.begin() + static_cast<long>(end)});
    i = end;
  }
  batched.FeedBatch({data.begin() + static_cast<long>(i), data.end()});
  ExpectBitIdentical(one.Result(), batched.Result());
}

// PredictBatch + LabelBatch is the split Predict/Label cycle, bit for
// bit, ticket ids and outcomes included.
TEST(MonitorEngineTest, BatchServingCycleMatchesSplit) {
  const StreamSpec* spec = FindStreamSpec("RBF5");
  ASSERT_NE(spec, nullptr);
  BuildOptions options;
  options.scale = 0.001;
  PrequentialConfig cfg = ShortConfig();

  BuiltStream built = BuildStream(*spec, options);
  std::vector<Instance> data = Take(built.stream.get(), cfg.max_instances);

  constexpr size_t kChunk = 37;  // Deliberately not a divisor of the run.

  // Per-instance reference with the SAME phasing as the batch API: all
  // predicts of a chunk land before its labels (Label trains the
  // classifier, so phasing is semantically load-bearing, not cosmetic).
  GaussianNaiveBayes clf_split(built.stream->schema());
  Fhddm det_split;
  MonitorEngine split(built.stream->schema(), &clf_split, &det_split, cfg);
  std::vector<uint64_t> split_ids;
  for (size_t at = 0; at < data.size(); at += kChunk) {
    const size_t end = std::min(data.size(), at + kChunk);
    for (size_t j = at; j < end; ++j) {
      split_ids.push_back(split.Predict(data[j].features, data[j].weight).id);
    }
    for (size_t j = at; j < end; ++j) {
      ASSERT_EQ(split.Label(split_ids[j], data[j].label),
                LabelOutcome::kApplied);
    }
  }

  GaussianNaiveBayes clf_batch(built.stream->schema());
  Fhddm det_batch;
  MonitorEngine batched(built.stream->schema(), &clf_batch, &det_batch, cfg);
  std::vector<MonitorEngine::Ticket> tickets;
  std::vector<LabelRequest> labels;
  std::vector<LabelOutcome> outcomes;
  size_t seen = 0;
  for (size_t at = 0; at < data.size(); at += kChunk) {
    const size_t end = std::min(data.size(), at + kChunk);
    const std::vector<Instance> chunk(data.begin() + static_cast<long>(at),
                                      data.begin() + static_cast<long>(end));
    batched.PredictBatch(chunk, &tickets);
    ASSERT_EQ(tickets.size(), chunk.size());
    labels.resize(chunk.size());
    for (size_t j = 0; j < chunk.size(); ++j) {
      EXPECT_EQ(tickets[j].id, split_ids[seen + j]);
      labels[j].id = tickets[j].id;
      labels[j].label = chunk[j].label;
    }
    batched.LabelBatch(labels, &outcomes);
    ASSERT_EQ(outcomes.size(), chunk.size());
    for (LabelOutcome outcome : outcomes) {
      EXPECT_EQ(outcome, LabelOutcome::kApplied);
    }
    seen = end;
  }
  ExpectBitIdentical(split.Result(), batched.Result());
  EXPECT_EQ(batched.pending(), 0u);
  EXPECT_EQ(batched.evicted(), 0u);
}

// Eviction and unmatched-label accounting under LabelBatch with
// out-of-order and duplicate ids must match the per-instance Label path
// exactly: same counters, same per-request outcomes, same result.
TEST(MonitorEngineTest, LabelBatchAccountingMatchesPerInstance) {
  const StreamSpec* spec = FindStreamSpec("RBF5");
  ASSERT_NE(spec, nullptr);
  BuildOptions options;
  options.scale = 0.001;
  PrequentialConfig cfg = ShortConfig();
  cfg.max_instances = 200;

  BuiltStream built = BuildStream(*spec, options);
  std::vector<Instance> data = Take(built.stream.get(), cfg.max_instances);

  // Twin engines with a tight ring: predictions overflow it, so some of
  // the labels below address evicted predictions.
  GaussianNaiveBayes clf_one(built.stream->schema());
  MonitorEngine one(built.stream->schema(), &clf_one, nullptr, cfg,
                    EngineHooks{}, /*pending_capacity=*/8);
  GaussianNaiveBayes clf_batch(built.stream->schema());
  MonitorEngine batched(built.stream->schema(), &clf_batch, nullptr, cfg,
                        EngineHooks{}, /*pending_capacity=*/8);

  std::vector<uint64_t> ids_one, ids_batch;
  std::vector<MonitorEngine::Ticket> tickets;
  constexpr size_t kChunk = 12;  // > capacity: every chunk evicts.
  for (size_t at = 0; at < data.size(); at += kChunk) {
    const size_t end = std::min(data.size(), at + kChunk);
    const std::vector<Instance> chunk(data.begin() + static_cast<long>(at),
                                      data.begin() + static_cast<long>(end));
    for (const Instance& inst : chunk) {
      ids_one.push_back(one.Predict(inst.features, inst.weight).id);
    }
    batched.PredictBatch(chunk, &tickets);
    for (const MonitorEngine::Ticket& t : tickets) ids_batch.push_back(t.id);

    // Label the chunk in reverse (out of order), then re-send the last
    // two ids (duplicates -> already completed) and one never-issued id.
    std::vector<LabelRequest> requests;
    for (size_t j = end; j-- > at;) {
      requests.push_back({ids_batch[j], chunk[j - at].label});
    }
    requests.push_back({ids_batch[end - 1], chunk[end - 1 - at].label});
    requests.push_back({ids_batch[at], chunk[0].label});
    requests.push_back({999999999u, 0});

    std::vector<LabelOutcome> one_outcomes;
    for (const LabelRequest& req : requests) {
      // Same ticket ids on both engines: reuse the batch-built requests.
      one_outcomes.push_back(one.Label(req.id, req.label));
    }
    std::vector<LabelOutcome> batch_outcomes;
    batched.LabelBatch(requests, &batch_outcomes);
    ASSERT_EQ(batch_outcomes, one_outcomes);

    ASSERT_EQ(batched.pending(), one.pending());
    ASSERT_EQ(batched.evicted(), one.evicted());
    ASSERT_EQ(batched.unmatched_labels(), one.unmatched_labels());
  }
  EXPECT_EQ(ids_one, ids_batch);
  EXPECT_GT(batched.evicted(), 0u);
  EXPECT_GT(batched.unmatched_labels(), 0u);
  ExpectBitIdentical(one.Result(), batched.Result());
}

// -------------------------------------------------- events and snapshots

TEST(MonitorEngineTest, DriftEventsCarryDriftedClasses) {
  StreamSchema schema(3, 4, "synthetic");
  FrozenClassifier clf(schema);
  ScriptedLocalDetector det;
  PrequentialConfig cfg = ShortConfig();
  cfg.warmup = 100;

  std::vector<DriftAlarm> seen;
  std::vector<MetricsSnapshot> metric_events;
  EngineHooks hooks;
  hooks.on_drift = [&](const DriftAlarm& a, const MetricsSnapshot& m) {
    seen.push_back(a);
    EXPECT_EQ(m.position, a.position);
    EXPECT_GT(m.window_size, 0u);
  };
  hooks.on_metrics = [&](const MetricsSnapshot& m) {
    metric_events.push_back(m);
  };
  MonitorEngine engine(schema, &clf, &det, cfg, std::move(hooks));

  for (int i = 0; i < 1500; ++i) {
    engine.Feed(Instance({static_cast<double>(i % 5), 0.0, 0.0}, i % 4));
  }
  PrequentialResult r = engine.Result();
  // The detector fires on its 400th and 900th Observe() call; the engine
  // feeds it warmup data too, so those land at stream positions 399/899.
  ASSERT_EQ(r.drift_events.size(), 2u);
  EXPECT_EQ(r.drift_events[0].position, 399u);
  EXPECT_EQ(r.drift_events[1].position, 899u);
  EXPECT_EQ(r.drift_events[0].drifted_classes, (std::vector<int>{1, 2}));
  EXPECT_EQ(r.drift_positions,
            (std::vector<uint64_t>{399u, 899u}));
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(r.drift_events, seen);

  // on_metrics fired exactly at the sampled positions of the series.
  ASSERT_EQ(metric_events.size(), r.pmauc_series.size());
  for (size_t i = 0; i < metric_events.size(); ++i) {
    EXPECT_EQ(metric_events[i].position, r.pmauc_series[i].first);
    EXPECT_EQ(metric_events[i].pmauc, r.pmauc_series[i].second);
  }
}

TEST(MonitorEngineTest, WarningFiresOncePerRegionEntry) {
  StreamSchema schema(3, 4, "synthetic");
  FrozenClassifier clf(schema);
  WarningRegionDetector det;
  PrequentialConfig cfg = ShortConfig();
  cfg.warmup = 100;

  std::vector<uint64_t> warnings;
  EngineHooks hooks;
  hooks.on_warning = [&](uint64_t position, const MetricsSnapshot&) {
    warnings.push_back(position);
  };
  MonitorEngine engine(schema, &clf, &det, cfg, std::move(hooks));
  for (int i = 0; i < 1000; ++i) {
    engine.Feed(Instance({static_cast<double>(i % 5), 0.0, 0.0}, i % 4));
  }
  // One callback per region *entry* (positions 299 and 599: the 300th and
  // 600th Observe), not one per warning instance.
  EXPECT_EQ(warnings, (std::vector<uint64_t>{299u, 599u}));
}

// ---------------------------------------------------- hook reentrancy

// Regression for the callback-reentrancy hole: hooks fire mid-step (the
// triggering instance is only half applied), so a hook calling back into
// the engine's mutating surface used to silently interleave two
// prequential steps. The engine now rejects it loudly; read-only
// accessors stay legal from hooks.
TEST(MonitorEngineTest, HooksMustNotReenterTheMutatingSurface) {
  StreamSchema schema(3, 4, "synthetic");
  FrozenClassifier clf(schema);
  PrequentialConfig cfg = ShortConfig();
  cfg.warmup = 100;

  int rejected = 0;
  int snapshots_from_hook = 0;
  EngineHooks hooks;
  MonitorEngine* self = nullptr;
  hooks.on_metrics = [&](const MetricsSnapshot&) {
    // Every mutating entry point throws std::logic_error naming the
    // violation...
    const Instance instance({1.0, 0.0, 0.0}, 1);
    try {
      self->Feed(instance);
      ADD_FAILURE() << "reentrant Feed() was not rejected";
    } catch (const std::logic_error& e) {
      EXPECT_NE(std::string(e.what()).find("reentrant"), std::string::npos);
      ++rejected;
    }
    EXPECT_THROW(self->Predict({1.0, 0.0, 0.0}), std::logic_error);
    EXPECT_THROW(self->Label(1, 2), std::logic_error);
    EXPECT_THROW(self->Restore(EngineSnapshot{}), std::logic_error);
    EXPECT_THROW(self->Pause(), std::logic_error);
    EXPECT_THROW(self->Resume(), std::logic_error);
    // ... while the read-only surface stays usable for observability.
    (void)self->position();
    (void)self->Result();
    (void)self->Snapshot();
    ++snapshots_from_hook;
  };
  MonitorEngine engine(schema, &clf, nullptr, cfg, std::move(hooks));
  self = &engine;

  for (int i = 0; i < 700; ++i) {
    engine.Feed(Instance({static_cast<double>(i % 5), 0.0, 0.0}, i % 4));
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(rejected, snapshots_from_hook);
  // The guarded hook never corrupted the run: every push is accounted.
  EXPECT_EQ(engine.position(), 700u);
}

// A hook that lets the reentrancy error escape fails the outer push, but
// the guard flag unwinds with it — the engine is not bricked into
// rejecting every later call.
TEST(MonitorEngineTest, HookExceptionUnwindsTheReentrancyGuard) {
  StreamSchema schema(3, 4, "synthetic");
  FrozenClassifier clf(schema);
  ScriptedLocalDetector det;
  PrequentialConfig cfg = ShortConfig();
  cfg.warmup = 100;

  bool armed = true;
  EngineHooks hooks;
  MonitorEngine* self = nullptr;
  hooks.on_drift = [&](const DriftAlarm&, const MetricsSnapshot&) {
    if (armed) self->Feed(Instance({0.0, 0.0, 0.0}, 0));  // Throws.
  };
  MonitorEngine engine(schema, &clf, &det, cfg, std::move(hooks));
  self = &engine;

  // The detector fires on its 400th Observe (position 399): that Feed
  // propagates the hook's reentrancy error.
  int i = 0;
  EXPECT_THROW(
      {
        for (; i < 700; ++i) {
          engine.Feed(
              Instance({static_cast<double>(i % 5), 0.0, 0.0}, i % 4));
        }
      },
      std::logic_error);
  EXPECT_EQ(i, 399);
  // Disarmed, the engine keeps serving.
  armed = false;
  const uint64_t before = engine.position();
  engine.Feed(Instance({1.0, 0.0, 0.0}, 1));
  EXPECT_EQ(engine.position(), before + 1);
}

TEST(MonitorEngineTest, SnapshotCapturesRunState) {
  StreamSchema schema(3, 4, "synthetic");
  FrozenClassifier clf(schema);
  ScriptedLocalDetector det;
  PrequentialConfig cfg = ShortConfig();
  cfg.warmup = 100;
  MonitorEngine engine(schema, &clf, &det, cfg);

  for (int i = 0; i < 700; ++i) {
    engine.Feed(Instance({static_cast<double>(i % 5), 0.0, 0.0}, i % 4));
  }
  engine.Predict({1.0, 2.0, 3.0});

  EngineSnapshot s = engine.Snapshot();
  EXPECT_EQ(s.position, 700u);
  EXPECT_EQ(s.pending, 1u);
  EXPECT_EQ(s.evicted, 0u);
  ASSERT_EQ(s.drift_log.size(), 1u);
  EXPECT_EQ(s.drift_log[0].position, 399u);
  ASSERT_EQ(s.class_counts.size(), 4u);
  uint64_t total = 0;
  for (uint64_t c : s.class_counts) total += c;
  EXPECT_EQ(total, 700u);
  // 600 measured instances into a 400-wide window.
  EXPECT_EQ(s.window.size(), 400u);
  EXPECT_GT(s.metric_samples, 0u);
}

TEST(MonitorEngineTest, PauseRefusesIntakeButDrainsLabels) {
  StreamSchema schema(2, 2, "synthetic");
  FrozenClassifier clf(schema);
  MonitorEngine engine(schema, &clf, nullptr, ShortConfig());

  MonitorEngine::Ticket t = engine.Predict({1.0, 2.0});
  engine.Pause();
  EXPECT_TRUE(engine.paused());
  EXPECT_THROW(engine.Predict({0.0, 1.0}), std::logic_error);
  EXPECT_THROW(engine.Feed(Instance({0.0, 1.0}, 0)), std::logic_error);
  // Draining in-flight work stays legal while paused.
  EXPECT_EQ(engine.Label(t.id, 1), LabelOutcome::kApplied);
  engine.Resume();
  EXPECT_FALSE(engine.paused());
  engine.Feed(Instance({0.0, 1.0}, 0));
  EXPECT_EQ(engine.position(), 2u);
}

TEST(MonitorEngineTest, NullClassifierIsRejected) {
  StreamSchema schema(2, 2, "synthetic");
  EXPECT_THROW(MonitorEngine(schema, nullptr, nullptr, ShortConfig()),
               std::invalid_argument);
}

// ------------------------------------------------------- api::Monitor

TEST(ApiMonitorTest, BuilderComposesAndRunsEndToEnd) {
  const StreamSpec* spec = FindStreamSpec("RBF5");
  ASSERT_NE(spec, nullptr);
  BuildOptions options;
  options.scale = 0.001;
  BuiltStream built = BuildStream(*spec, options);
  const StreamSchema& schema = built.stream->schema();

  PrequentialConfig cfg = ShortConfig();
  int drift_callbacks = 0;
  api::Monitor monitor = api::MonitorBuilder()
                             .Schema(schema)
                             .Classifier("cs-ptree")
                             .Detector("FHDDM")
                             .Seed(42)
                             .Protocol(cfg)
                             .PendingCapacity(16)
                             .OnDrift([&](const DriftAlarm&,
                                          const MetricsSnapshot&) {
                               ++drift_callbacks;
                             })
                             .Build();

  // Identical composition through Experiment: same engine, same numbers.
  PrequentialResult offline = api::Experiment()
                                  .Stream(*spec)
                                  .Options(options)
                                  .Classifier("cs-ptree")
                                  .Detector("FHDDM")
                                  .Prequential(cfg)
                                  .Run();

  for (uint64_t i = 0; i < cfg.max_instances; ++i) {
    Instance inst = built.stream->Next();
    if (i % 2 == 0) {
      monitor.Feed(inst);
    } else {
      api::Monitor::Prediction p = monitor.Predict(inst.features, inst.weight);
      EXPECT_EQ(static_cast<size_t>(schema.num_classes), p.scores.size());
      EXPECT_TRUE(monitor.Label(p.id, inst.label));
    }
  }
  ExpectBitIdentical(offline, monitor.Result());
  EXPECT_EQ(drift_callbacks, static_cast<int>(monitor.Result().drifts));
}

TEST(ApiMonitorTest, BuilderValidation) {
  // Schema is mandatory and must be sane.
  EXPECT_THROW(api::MonitorBuilder().Build(), api::ApiError);
  EXPECT_THROW(api::MonitorBuilder().Schema(0, 1).Build(), api::ApiError);
  // Unknown components throw the registry's listing error.
  EXPECT_THROW(
      api::MonitorBuilder().Schema(4, 2).Detector("NotADetector").Build(),
      api::ApiError);
  EXPECT_THROW(
      api::MonitorBuilder().Schema(4, 2).Classifier("NotAClassifier").Build(),
      api::ApiError);
  // Degenerate protocols are an ApiError at Build(), not UB later.
  PrequentialConfig bad;
  bad.eval_interval = 0;
  EXPECT_THROW(api::MonitorBuilder().Schema(4, 2).Protocol(bad).Build(),
               api::ApiError);
}

TEST(ApiMonitorTest, PauseSnapshotResumeRoundTrip) {
  api::Monitor monitor =
      api::MonitorBuilder().Schema(4, 3).Classifier("naive-bayes").Build();
  for (int i = 0; i < 40; ++i) {
    monitor.Feed(Instance({1.0 * i, 0.0, 0.0, 0.0}, i % 3));
  }
  monitor.Pause();
  EXPECT_THROW(monitor.Feed(Instance({0.0, 0.0, 0.0, 0.0}, 0)),
               std::logic_error);
  EngineSnapshot s = monitor.Snapshot();
  EXPECT_EQ(s.position, 40u);
  monitor.Resume();
  monitor.Feed(Instance({0.0, 0.0, 0.0, 0.0}, 0));
  EXPECT_EQ(monitor.position(), 41u);
}

}  // namespace
}  // namespace ccd
