#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "detectors/adwin.h"
#include "detectors/ddm.h"
#include "detectors/ddm_oci.h"
#include "detectors/detector.h"
#include "detectors/eddm.h"
#include "detectors/fhddm.h"
#include "detectors/hddm.h"
#include "detectors/perfsim.h"
#include "detectors/rddm.h"
#include "detectors/ecdd.h"
#include "detectors/page_hinkley.h"
#include "detectors/wstd.h"
#include "utils/rng.h"

namespace ccd {
namespace {

/// Drives an error-rate detector with a Bernoulli error stream whose rate
/// jumps from p0 to p1 at `change_at`. Returns the first detection index
/// (or -1) and the number of detections before the change (false alarms).
struct DriveResult {
  long long first_detection = -1;
  int false_alarms = 0;
  int total_detections = 0;
};

DriveResult DriveErrorStream(ErrorRateDetector* detector, double p0, double p1,
                             int change_at, int total, uint64_t seed) {
  Rng rng(seed);
  DriveResult out;
  for (int i = 0; i < total; ++i) {
    double p = i < change_at ? p0 : p1;
    detector->AddError(rng.Bernoulli(p));
    if (detector->state() == DetectorState::kDrift) {
      ++out.total_detections;
      if (i < change_at) {
        ++out.false_alarms;
      } else if (out.first_detection < 0) {
        out.first_detection = i - change_at;
      }
    }
  }
  return out;
}

// ------------------------------------------------------------- shared tests
// Parameterized over all error-rate detectors: each must (a) stay quiet on
// a stationary error stream and (b) fire after a large error-rate jump.
using DetectorFactory = std::function<std::unique_ptr<ErrorRateDetector>()>;

struct NamedFactory {
  std::string name;
  DetectorFactory make;
};

class ErrorDetectorSuite : public ::testing::TestWithParam<NamedFactory> {};

TEST_P(ErrorDetectorSuite, QuietOnStationaryStream) {
  auto detector = GetParam().make();
  DriveResult r =
      DriveErrorStream(detector.get(), 0.2, 0.2, 20000, 20000, 42);
  // Allow a small number of spurious alarms over 20k stationary instances
  // (detectors test repeatedly, so nominal significance accumulates).
  EXPECT_LE(r.total_detections, 5) << GetParam().name;
}

TEST_P(ErrorDetectorSuite, DetectsLargeErrorJump) {
  auto detector = GetParam().make();
  DriveResult r = DriveErrorStream(detector.get(), 0.1, 0.6, 10000, 20000, 42);
  EXPECT_GE(r.first_detection, 0) << GetParam().name;
  EXPECT_LT(r.first_detection, 2500) << GetParam().name;
}

TEST_P(ErrorDetectorSuite, ResetRestoresStableState) {
  auto detector = GetParam().make();
  DriveErrorStream(detector.get(), 0.1, 0.9, 500, 1500, 42);
  detector->Reset();
  EXPECT_EQ(detector->state(), DetectorState::kStable) << GetParam().name;
}

TEST_P(ErrorDetectorSuite, SurvivesAllErrorAndAllCorrectRuns) {
  auto detector = GetParam().make();
  for (int i = 0; i < 500; ++i) detector->AddError(true);
  for (int i = 0; i < 500; ++i) detector->AddError(false);
  SUCCEED();  // No crash / no NaN poisoning.
}

INSTANTIATE_TEST_SUITE_P(
    AllErrorDetectors, ErrorDetectorSuite,
    ::testing::Values(
        NamedFactory{"DDM", [] { return std::make_unique<Ddm>(); }},
        NamedFactory{"EDDM",
                     [] {
                       // EDDM is tuned for slow drifts; default betas are
                       // noisy on abrupt synthetic streams, so relax them.
                       Eddm::Params p;
                       p.beta = 0.85;
                       p.alpha = 0.90;
                       return std::make_unique<Eddm>(p);
                     }},
        NamedFactory{"RDDM", [] { return std::make_unique<Rddm>(); }},
        NamedFactory{"ADWIN", [] { return std::make_unique<Adwin>(); }},
        NamedFactory{"HDDM-A", [] { return std::make_unique<HddmA>(); }},
        NamedFactory{"FHDDM", [] { return std::make_unique<Fhddm>(); }},
        NamedFactory{"PageHinkley",
                     [] { return std::make_unique<PageHinkley>(); }},
        NamedFactory{"ECDD", [] { return std::make_unique<Ecdd>(); }},
        NamedFactory{"WSTD", [] { return std::make_unique<Wstd>(); }}),
    [](const ::testing::TestParamInfo<NamedFactory>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --------------------------------------------------------------- DDM basics
TEST(DdmTest, WarningPrecedesDrift) {
  Ddm ddm;
  Rng rng(3);
  bool saw_warning = false;
  for (int i = 0; i < 5000; ++i) {
    ddm.AddError(rng.Bernoulli(0.05));
  }
  for (int i = 0; i < 5000; ++i) {
    ddm.AddError(rng.Bernoulli(0.5));
    if (ddm.state() == DetectorState::kWarning) saw_warning = true;
    if (ddm.state() == DetectorState::kDrift) break;
  }
  EXPECT_TRUE(saw_warning);
}

TEST(DdmTest, SelfRearmsAfterDrift) {
  Ddm ddm;
  Rng rng(3);
  int drifts = 0;
  // Two separate jumps; the detector must fire for each.
  for (int phase = 0; phase < 2; ++phase) {
    for (int i = 0; i < 3000; ++i) ddm.AddError(rng.Bernoulli(0.05));
    for (int i = 0; i < 3000; ++i) {
      ddm.AddError(rng.Bernoulli(0.7));
      if (ddm.state() == DetectorState::kDrift) {
        ++drifts;
        break;
      }
    }
  }
  EXPECT_EQ(drifts, 2);
}

// ------------------------------------------------------------------- ADWIN
TEST(AdwinTest, TracksWindowMean) {
  Adwin adwin;
  for (int i = 0; i < 1000; ++i) adwin.AddValue(0.5);
  EXPECT_NEAR(adwin.mean(), 0.5, 1e-9);
  EXPECT_EQ(adwin.width(), 1000);
}

TEST(AdwinTest, ShrinksWindowOnChange) {
  Adwin adwin;
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) adwin.AddValue(rng.Gaussian(0.2, 0.05));
  long long width_before = adwin.width();
  bool detected = false;
  for (int i = 0; i < 3000; ++i) {
    adwin.AddValue(rng.Gaussian(0.8, 0.05));
    if (adwin.state() == DetectorState::kDrift) detected = true;
  }
  EXPECT_TRUE(detected);
  EXPECT_LT(adwin.width(), width_before + 3000);
  EXPECT_NEAR(adwin.mean(), 0.8, 0.1);  // Window converges to new regime.
}

TEST(AdwinTest, RealValuedSignalsSupported) {
  // ADWIN must handle non-binary signals (RBM-IM feeds reconstruction
  // errors): mean shift of a continuous signal.
  Adwin adwin;
  Rng rng(7);
  bool detected = false;
  for (int i = 0; i < 2000; ++i) adwin.AddValue(rng.Uniform(0.3, 0.4));
  for (int i = 0; i < 2000; ++i) {
    adwin.AddValue(rng.Uniform(0.5, 0.6));
    if (adwin.state() == DetectorState::kDrift) detected = true;
  }
  EXPECT_TRUE(detected);
}

// ------------------------------------------------------------------- FHDDM
TEST(FhddmTest, ExactThresholdBehaviour) {
  Fhddm::Params p;
  p.window_size = 100;
  p.delta = 1e-6;
  Fhddm f(p);
  // Perfect accuracy then sharp degradation: eps = sqrt(ln(1e6)/200) ~ 0.26.
  for (int i = 0; i < 200; ++i) f.AddError(false);
  int flips = 0;
  while (f.state() != DetectorState::kDrift && flips < 100) {
    f.AddError(true);
    ++flips;
  }
  // Needs ~27 errors in the window to drop p below p_max - eps.
  EXPECT_GT(flips, 15);
  EXPECT_LT(flips, 40);
}

// ----------------------------------------------------------------- PerfSim
PerfSim::Params PerfSimParams(int classes) {
  PerfSim::Params p;
  p.num_classes = classes;
  p.chunk_size = 200;
  p.differentiation_weight = 0.2;
  p.min_errors = 0;
  return p;
}

TEST(PerfSimTest, StableConfusionNoDrift) {
  PerfSim ps(PerfSimParams(3));
  Rng rng(3);
  int drifts = 0;
  for (int i = 0; i < 10000; ++i) {
    int y = rng.UniformInt(0, 2);
    int pred = rng.Bernoulli(0.8) ? y : rng.UniformInt(0, 2);
    ps.Observe(Instance({0.0}, y), pred, {});
    if (ps.state() == DetectorState::kDrift) ++drifts;
  }
  EXPECT_EQ(drifts, 0);
}

TEST(PerfSimTest, ConfusionShiftDetected) {
  PerfSim ps(PerfSimParams(3));
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    int y = rng.UniformInt(0, 2);
    ps.Observe(Instance({0.0}, y), y, {});  // Perfect predictions.
  }
  // Class 2 collapses onto class 0: its confusion row shifts entirely.
  bool detected = false;
  std::vector<int> flagged;
  for (int i = 0; i < 5000 && !detected; ++i) {
    int y = rng.UniformInt(0, 2);
    int pred = y == 2 ? 0 : y;
    ps.Observe(Instance({0.0}, y), pred, {});
    if (ps.state() == DetectorState::kDrift) {
      detected = true;
      flagged = ps.drifted_classes();
    }
  }
  EXPECT_TRUE(detected);
  bool has2 = false;
  for (int k : flagged) has2 |= (k == 2);
  EXPECT_TRUE(has2);
}

// ----------------------------------------------------------------- DDM-OCI
DdmOci::Params OciParams(int classes) {
  DdmOci::Params p;
  p.num_classes = classes;
  return p;
}

TEST(DdmOciTest, TracksPerClassRecall) {
  DdmOci::Params params = OciParams(2);
  params.min_class_count = 100000;  // Observe only: no detection resets.
  DdmOci oci(params);
  // Class 0 always right, class 1 always wrong.
  for (int i = 0; i < 200; ++i) {
    oci.Observe(Instance({0.0}, 0), 0, {});
    oci.Observe(Instance({0.0}, 1), 0, {});
  }
  EXPECT_GT(oci.recall(0), 0.9);
  EXPECT_LT(oci.recall(1), 0.4);
}

TEST(DdmOciTest, MinorityRecallDropFiresAndNamesClass) {
  DdmOci oci(OciParams(3));
  Rng rng(3);
  // Warm phase: 90% recall everywhere, class 2 is rare (5%).
  for (int i = 0; i < 20000; ++i) {
    int y = rng.Bernoulli(0.05) ? 2 : rng.UniformInt(0, 1);
    int pred = rng.Bernoulli(0.9) ? y : (y + 1) % 3;
    oci.Observe(Instance({0.0}, y), pred, {});
  }
  // Class 2's recall collapses; majority classes unaffected.
  bool detected = false;
  std::vector<int> flagged;
  for (int i = 0; i < 40000 && !detected; ++i) {
    int y = rng.Bernoulli(0.05) ? 2 : rng.UniformInt(0, 1);
    int pred = y == 2 ? 0 : (rng.Bernoulli(0.9) ? y : (y + 1) % 3);
    oci.Observe(Instance({0.0}, y), pred, {});
    if (oci.state() == DetectorState::kDrift) {
      detected = true;
      flagged = oci.drifted_classes();
    }
  }
  ASSERT_TRUE(detected);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], 2);
}

TEST(DdmOciTest, StableRecallStaysQuiet) {
  DdmOci oci(OciParams(4));
  Rng rng(5);
  int drifts = 0;
  for (int i = 0; i < 30000; ++i) {
    int y = rng.UniformInt(0, 3);
    int pred = rng.Bernoulli(0.8) ? y : rng.UniformInt(0, 3);
    oci.Observe(Instance({0.0}, y), pred, {});
    if (oci.state() == DetectorState::kDrift) ++drifts;
  }
  EXPECT_LE(drifts, 2);
}

// ------------------------------------------------------- observe interface
TEST(ErrorRateDetectorTest, ObserveDerivesErrorIndicator) {
  Ddm ddm;
  // 100 correct then growing errors via the Observe() interface.
  for (int i = 0; i < 1000; ++i) {
    ddm.Observe(Instance({0.0}, 1), 1, {});
  }
  bool fired = false;
  for (int i = 0; i < 1000; ++i) {
    ddm.Observe(Instance({0.0}, 1), 0, {});  // All wrong now.
    if (ddm.state() == DetectorState::kDrift) {
      fired = true;
      break;
    }
  }
  EXPECT_TRUE(fired);
}

TEST(DetectorStateTest, Names) {
  EXPECT_STREQ(DetectorStateName(DetectorState::kStable), "stable");
  EXPECT_STREQ(DetectorStateName(DetectorState::kWarning), "warning");
  EXPECT_STREQ(DetectorStateName(DetectorState::kDrift), "drift");
}

}  // namespace
}  // namespace ccd
