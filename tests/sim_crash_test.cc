// Crash and io fault schedules over the deterministic harness:
//
//  (a) persist-at-seeded-times + crash — producers push under the sim
//      scheduler while a persister task cuts a durable generation at a
//      seeded virtual time; the process then "dies" (monitor destroyed),
//      reopens via ShardedMonitor::Open and keeps serving. The history
//      checker's rollback semantics (everything after the last Persist
//      never happened) validate the whole run, across seeds.
//  (b) crash-at-every-generation-boundary — the in-process
//      generalization of io_store_test's single fork+SIGKILL point
//      (which stays as the real-OS smoke check): for *every* generation
//      g the run is killed right after the g-th Persist, reopened, and
//      driven to the end — final state must be bit-identical to an
//      uninterrupted oracle.
//  (c) torn frames and half-written sockets — byte-split-point schedules
//      against io::ReadFrame and a live io::FrameServer. Real sockets
//      are kernel objects the lock shim cannot schedule, so the fault
//      plane here is exhaustive *byte* positions rather than seeded
//      interleavings: a frame cut at any byte must either deliver whole
//      or fail typed — never invoke the handler on garbage, never kill
//      the server.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "api/sharded_monitor.h"
#include "io/frame.h"
#include "io/frame_server.h"
#include "io/snapshot_store.h"
#include "io/state_codec.h"
#include "io/wire.h"
#include "runtime/sim.h"
#include "runtime/sync.h"
#include "sim_harness.h"
#include "testing_util.h"

namespace ccd {
namespace {

namespace sim = runtime::sim;
using test_util::DelayedPush;
using test_util::ExpectBitIdentical;
using test_util::ExpectSnapshotEq;
using test_util::HistoryChecker;
using test_util::KeyedInstance;
using test_util::KeysForSlot;
using test_util::MakeDelaySchedule;
using test_util::MakeKeyedSchedule;
using test_util::MakeServing;
using test_util::RecordCrashRestart;
using test_util::RecordingMonitor;
using test_util::RunDelayedProducer;
using test_util::SimCheckResult;
using test_util::SimHistory;
using test_util::SimServingConfig;

std::string ScratchDir(const std::string& name) {
  return ::testing::TempDir() + "ccd-" + name + "-" +
         std::to_string(::getpid());
}

void RemoveTree(const std::string& dir) {
  io::SnapshotStore store(dir);
  for (const std::string& name : store.List()) store.Remove(name);
  ::rmdir(dir.c_str());
}

// -------------------------------------- (a) persist + crash under sim

/// One full persist/crash/reopen run: segment 1 under the sim scheduler
/// with a persister cutting a generation at a seeded virtual time, then
/// process death (the monitor's destructor — disk only ever changes via
/// the atomic Persist, so in-process death is the valid crash model;
/// io_store_test's fork+SIGKILL covers the no-destructors case), then
/// segment 2 on the reopened monitor under a second seeded schedule.
SimCheckResult RunPersistCrashScenario(uint64_t seed, uint64_t* digest) {
  SimServingConfig config;
  config.shards = 3;
  const std::string dir =
      ScratchDir("sim-crash-" + std::to_string(seed));
  SimHistory history;

  std::vector<std::vector<DelayedPush>> first;
  std::vector<std::vector<DelayedPush>> second;
  for (int t = 0; t < 3; ++t) {
    first.push_back(MakeDelaySchedule(KeysForSlot(t, 3, 6), 60,
                                      /*seed=*/71 + static_cast<uint64_t>(t),
                                      /*max_delay=*/3));
    second.push_back(MakeDelaySchedule(KeysForSlot(t, 3, 6), 40,
                                       /*seed=*/81 + static_cast<uint64_t>(t),
                                       /*max_delay=*/0));
  }

  {
    auto monitor = MakeServing(config);
    RecordingMonitor recording(&monitor, &history);
    sim::Scheduler sched(seed);
    for (int t = 0; t < 3; ++t) {
      sched.Spawn("producer-" + std::to_string(t), [&recording, &first, t] {
        RunDelayedProducer(recording, first[static_cast<size_t>(t)],
                           /*depth=*/4);
      });
    }
    sched.Spawn("persister", [&recording, &dir] {
      sim::SleepFor(5 + sim::Choice(120));
      recording.Persist(dir);
    });
    sched.Run();
    if (digest != nullptr) *digest = sched.digest();
  }  // Crash: every effect after the persist is gone from the process.

  auto reopened = api::ShardedMonitor::Open(dir);
  RecordCrashRestart(&history);
  RecordingMonitor recording(&reopened, &history);
  sim::Scheduler sched(seed ^ 0x9e3779b97f4a7c15ull);
  for (int t = 0; t < 3; ++t) {
    sched.Spawn("producer-" + std::to_string(t), [&recording, &second, t] {
      RunDelayedProducer(recording, second[static_cast<size_t>(t)],
                         /*depth=*/3);
    });
  }
  sched.Run();

  HistoryChecker checker(config);
  const SimCheckResult result = checker.Check(history, reopened);
  RemoveTree(dir);
  return result;
}

int SweepSeeds() {
  const char* env = std::getenv("CCD_SIM_SEEDS");
  if (env == nullptr) return 5;
  const int n = std::atoi(env);
  return n < 1 ? 1 : n;
}

/// Crash with ingress entries queued: async feeders run against a
/// persister under the sim scheduler — Persist drains every queue, so
/// entries queued at the cut are durable. After the schedule ends, more
/// entries are parked in the queues with provably nothing draining them,
/// and the process dies. Queued-but-undrained entries die with it; the
/// history checker models exactly that, because their kFeed records sit
/// after the last kPersist and the kCrashRestart rollback erases them.
SimCheckResult RunIngressCrashScenario(uint64_t seed) {
  SimServingConfig config;
  config.shards = 3;
  const std::string dir =
      ScratchDir("sim-ingress-crash-" + std::to_string(seed));
  SimHistory history;

  std::vector<std::vector<KeyedInstance>> first;
  std::vector<std::vector<DelayedPush>> second;
  for (int t = 0; t < 3; ++t) {
    first.push_back(MakeKeyedSchedule(KeysForSlot(t, 3, 6), 50,
                                      /*seed=*/91 + static_cast<uint64_t>(t)));
    second.push_back(MakeDelaySchedule(KeysForSlot(t, 3, 6), 30,
                                       /*seed=*/101 + static_cast<uint64_t>(t),
                                       /*max_delay=*/0));
  }

  {
    auto monitor = MakeServing(config);
    RecordingMonitor recording(&monitor, &history);
    sim::Scheduler sched(seed);
    for (int t = 0; t < 3; ++t) {
      sched.Spawn("feeder-" + std::to_string(t), [&recording, &first, t] {
        size_t n = 0;
        for (const KeyedInstance& push : first[static_cast<size_t>(t)]) {
          if (++n % 4 == 0) {
            recording.Feed(push.key, push.instance);  // Locked push: drains.
          } else {
            while (!recording.FeedAsync(push.key, push.instance)) {
              recording.Flush();
            }
          }
          if (n % 8 == 0) sim::SleepFor(1 + sim::Choice(3));
        }
      });
    }
    sched.Spawn("persister", [&recording, &dir] {
      sim::SleepFor(5 + sim::Choice(80));
      recording.Persist(dir);  // Drains the queues: queued feeds are durable.
    });
    sched.Run();
    // Park entries in the queues with no drain between here and death:
    // no locked push, no Flush, no Persist. Their kFeed records are the
    // post-cut suffix the rollback must erase.
    for (size_t i = 0; i < 3; ++i) {
      recording.FeedAsync(first[0][i].key, first[0][i].instance);
    }
  }  // Crash: the queued entries die with the process.

  auto reopened = api::ShardedMonitor::Open(dir);
  RecordCrashRestart(&history);
  RecordingMonitor recording(&reopened, &history);
  sim::Scheduler sched(seed ^ 0x9e3779b97f4a7c15ull);
  for (int t = 0; t < 3; ++t) {
    sched.Spawn("producer-" + std::to_string(t), [&recording, &second, t] {
      RunDelayedProducer(recording, second[static_cast<size_t>(t)],
                         /*depth=*/3);
    });
  }
  sched.Run();

  HistoryChecker checker(config);
  const SimCheckResult result = checker.Check(history, reopened);
  RemoveTree(dir);
  return result;
}

TEST(SimCrashTest, CrashWithIngressEntriesQueued) {
  const int seeds = SweepSeeds();
  for (int s = 0; s < seeds; ++s) {
    const uint64_t seed = 7000 + static_cast<uint64_t>(s);
    const SimCheckResult result = RunIngressCrashScenario(seed);
    if (!result.ok) {
      std::cerr << "CCD_SIM_FAIL scenario=ingress_crash seed=" << seed
                << " error=" << result.error << std::endl;
      ADD_FAILURE() << "ingress_crash seed " << seed << ": " << result.error;
    }
  }
}

TEST(SimCrashTest, PersistAtSeededTimesThenCrashAndContinue) {
  const int seeds = SweepSeeds();
  for (int s = 0; s < seeds; ++s) {
    const uint64_t seed = 5000 + static_cast<uint64_t>(s);
    const SimCheckResult result = RunPersistCrashScenario(seed, nullptr);
    if (!result.ok) {
      std::cerr << "CCD_SIM_FAIL scenario=persist_crash seed=" << seed
                << " error=" << result.error << std::endl;
      ADD_FAILURE() << "persist_crash seed " << seed << ": " << result.error;
    }
  }
}

TEST(SimCrashTest, CrashRunsAreBitIdentical) {
  uint64_t digest_a = 0;
  uint64_t digest_b = 0;
  const SimCheckResult a = RunPersistCrashScenario(42, &digest_a);
  const SimCheckResult b = RunPersistCrashScenario(42, &digest_b);
  EXPECT_EQ(digest_a, digest_b);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.error, b.error);
}

// ------------------------- (b) crash at every generation boundary

void ExpectMonitorsEqual(const api::ShardedMonitor& a,
                         const api::ShardedMonitor& b) {
  ASSERT_EQ(a.shards(), b.shards());
  for (int i = 0; i < a.shards(); ++i) {
    SCOPED_TRACE("shard " + std::to_string(i));
    ExpectSnapshotEq(a.ShardSnapshot(i), b.ShardSnapshot(i));
  }
  ExpectBitIdentical(a.Result(), b.Result());
}

// io_store_test kills one forked child at one arbitrary feed count; this
// is the exhaustive in-process version — a crash immediately after
// *every* generation's commit point must reopen at exactly that
// generation and continue bit-identically to a run that never died.
TEST(CrashGenerationTest, CrashAfterEveryGenerationContinuesBitIdentically) {
  constexpr int kSegments = 5;
  constexpr size_t kPerSegment = 200;
  SimServingConfig config;
  config.shards = 3;
  const std::vector<uint64_t> keys = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  const std::vector<KeyedInstance> schedule =
      MakeKeyedSchedule(keys, kSegments * kPerSegment, /*seed=*/19);

  auto oracle = MakeServing(config);
  for (const KeyedInstance& push : schedule) {
    oracle.Feed(push.key, push.instance);
  }

  for (int boundary = 1; boundary <= kSegments; ++boundary) {
    SCOPED_TRACE("crash after generation " + std::to_string(boundary));
    const std::string dir =
        ScratchDir("gen-boundary-" + std::to_string(boundary));
    {
      auto monitor = MakeServing(config);
      for (int segment = 0; segment < boundary; ++segment) {
        for (size_t i = static_cast<size_t>(segment) * kPerSegment;
             i < static_cast<size_t>(segment + 1) * kPerSegment; ++i) {
          monitor.Feed(schedule[i].key, schedule[i].instance);
        }
        monitor.Persist(dir);
      }
    }  // Crash exactly at generation `boundary`'s commit point.

    io::SnapshotStore store(dir);
    const io::Manifest manifest =
        io::DecodeManifest(store.Read(io::kManifestName));
    EXPECT_EQ(manifest.generation, static_cast<uint64_t>(boundary));

    auto reopened = api::ShardedMonitor::Open(dir);
    EXPECT_EQ(reopened.position(),
              static_cast<uint64_t>(boundary) * kPerSegment);
    for (size_t i = static_cast<size_t>(boundary) * kPerSegment;
         i < schedule.size(); ++i) {
      reopened.Feed(schedule[i].key, schedule[i].instance);
    }
    ExpectMonitorsEqual(reopened, oracle);
    RemoveTree(dir);
  }
}

// ------------------------------- (c) torn frames / half-written sockets

/// The exact bytes io::WriteFrame puts on the wire for `payload`.
std::string FrameBytes(const std::string& payload) {
  const uint32_t length = static_cast<uint32_t>(payload.size());
  std::string bytes;
  bytes.push_back(static_cast<char>(length & 0xFF));
  bytes.push_back(static_cast<char>((length >> 8) & 0xFF));
  bytes.push_back(static_cast<char>((length >> 16) & 0xFF));
  bytes.push_back(static_cast<char>((length >> 24) & 0xFF));
  bytes += payload;
  return bytes;
}

// Every byte split point of a frame: the reader must deliver the whole
// frame (all bytes present), report clean EOF (cut at the boundary,
// before any byte), or throw a typed WireError (cut mid-frame) — and
// nothing else, at any cut.
TEST(TornFrameTest, EveryByteSplitPointDeliversWholeOrFailsTyped) {
  const std::string bytes = FrameBytes("torn-frame-payload");
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ASSERT_EQ(::write(fds[1], bytes.data(), cut),
              static_cast<ssize_t>(cut));
    ::close(fds[1]);  // The peer dies here.
    std::string payload;
    if (cut == bytes.size()) {
      EXPECT_TRUE(io::ReadFrame(fds[0], &payload));
      EXPECT_EQ(payload, "torn-frame-payload");
      EXPECT_FALSE(io::ReadFrame(fds[0], &payload));  // Then clean EOF.
    } else if (cut == 0) {
      EXPECT_FALSE(io::ReadFrame(fds[0], &payload));  // Clean EOF.
    } else {
      EXPECT_THROW(io::ReadFrame(fds[0], &payload), io::WireError);
    }
    ::close(fds[0]);
  }
}

TEST(TornFrameTest, OversizedLengthPrefixIsRejectedBeforeAllocating) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const unsigned char huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_EQ(::write(fds[1], huge, 4), 4);
  ::close(fds[1]);
  std::string payload;
  EXPECT_THROW(io::ReadFrame(fds[0], &payload), io::WireError);
  ::close(fds[0]);
}

/// A raw client that can stop mid-frame — the half-written-socket fault
/// FrameClient (which always writes whole frames) cannot produce.
int RawConnect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

// A live FrameServer fed every byte-split of a request frame: a torn
// request must never reach the handler, a complete frame whose client
// hangs up before the response must not hurt the server, and well-formed
// clients keep getting served throughout.
TEST(TornFrameTest, FrameServerSurvivesHalfWrittenConnections) {
  const std::string path = ::testing::TempDir() + "ccd-torn-" +
                           std::to_string(::getpid()) + ".sock";
  runtime::Mutex mutex;
  int handler_calls = 0;
  const std::string bytes = FrameBytes("request");
  {
    io::FrameServer server(path, [&](const std::string& request) {
      runtime::MutexLock lock(&mutex);
      ++handler_calls;
      return "ok:" + request;
    });

    // Torn requests: every proper prefix of the frame, then hangup.
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      const int fd = RawConnect(path);
      ASSERT_EQ(::write(fd, bytes.data(), cut), static_cast<ssize_t>(cut));
      ::close(fd);
    }
    // The server still serves a well-formed client.
    io::FrameClient good(path);
    EXPECT_EQ(good.Call("request"), "ok:request");

    // Complete frame, then hangup before the response is read: the
    // handler runs once; the failed response write is that connection's
    // problem, not the server's.
    const int fd = RawConnect(path);
    ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
    ::close(fd);

    io::FrameClient again(path);
    EXPECT_EQ(again.Call("request"), "ok:request");
  }  // Destructor stops the server and joins every connection worker.

  // Exactly the three complete frames reached the handler; no torn
  // prefix ever did.
  EXPECT_EQ(handler_calls, 3);
}

}  // namespace
}  // namespace ccd
