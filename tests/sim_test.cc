// Deterministic simulation harness (runtime/sim.h + tests/sim_harness.h):
//
//  (a) scheduler primitives — mutual exclusion, condvars, TryLock,
//      ThreadPool/RunThreads adoption, the virtual clock, deadlock
//      diagnosis and task-exception propagation all behave under the
//      seeded cooperative scheduler;
//  (b) determinism — the same seed yields a bit-identical schedule
//      digest and checker verdict, different seeds explore genuinely
//      different interleavings, and one pinned digest guards the
//      schedule encoding itself against silent drift;
//  (c) the four target scenarios — reshard-during-predict,
//      drain-with-labels-in-flight, SHIP/LOAD under traffic, and a
//      dropped/duplicated-label plane over a small pending buffer — each
//      swept over seeds and validated by the history checker's
//      sequential-spec oracle;
//  (d) injected-bug self-tests — histories broken in known ways
//      (dropped applied-label record, mis-sharded feed, tampered
//      outcome, spurious crash marker) make the checker fire, proving
//      the oracle can actually fail.
//
// Sweep width: 5 seeds per scenario by default (tier-1); set
// CCD_SIM_SEEDS=1000 for the full sweep (the dedicated CI leg). Failing
// seeds print one `CCD_SIM_FAIL scenario=<name> seed=<n>` line each so
// CI can archive them.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/sim.h"
#include "runtime/sync.h"
#include "runtime/thread_pool.h"
#include "sim_harness.h"
#include "testing_util.h"

namespace ccd {
namespace {

namespace sim = runtime::sim;
using runtime::CondVar;
using runtime::Mutex;
using runtime::MutexLock;
using test_util::DelayedPush;
using test_util::FaultPlane;
using test_util::FeedRetry;
using test_util::HistoryChecker;
using test_util::KeyedInstance;
using test_util::KeysForSlot;
using test_util::MakeDelaySchedule;
using test_util::MakeKeyedSchedule;
using test_util::MakeServing;
using test_util::RecordingMonitor;
using test_util::RunDelayedProducer;
using test_util::SimCheckResult;
using test_util::SimHistory;
using test_util::SimOp;
using test_util::SimOpKind;
using test_util::SimServingConfig;

// ------------------------------------------------ scheduler primitives

TEST(SimSchedulerTest, MutualExclusionHoldsAcrossYields) {
  sim::Scheduler sched(1);
  Mutex mu;
  int counter = 0;
  bool inside = false;  // Plain bools: sim-atomic between schedule points.
  for (int t = 0; t < 4; ++t) {
    sched.Spawn("worker-" + std::to_string(t), [&] {
      for (int i = 0; i < 25; ++i) {
        MutexLock lock(&mu);
        EXPECT_FALSE(inside);  // Nobody else inside the critical section.
        inside = true;
        ++counter;
        sim::Yield();  // Invite a context switch mid-critical-section.
        inside = false;
      }
    });
  }
  sched.Run();
  EXPECT_EQ(counter, 100);
  EXPECT_GT(sched.steps(), 100u);
}

TEST(SimSchedulerTest, CondVarProducerConsumer) {
  sim::Scheduler sched(2);
  Mutex mu;
  CondVar cv;
  std::vector<int> queue;
  bool done = false;
  int consumed = 0;
  sched.Spawn("producer", [&] {
    for (int i = 0; i < 50; ++i) {
      {
        MutexLock lock(&mu);
        queue.push_back(i);
      }
      cv.NotifyOne();
    }
    {
      MutexLock lock(&mu);
      done = true;
    }
    cv.NotifyAll();
  });
  sched.Spawn("consumer", [&] {
    for (;;) {
      MutexLock lock(&mu);
      while (queue.empty() && !done) cv.Wait(mu);
      if (queue.empty()) return;
      queue.erase(queue.begin());
      ++consumed;
    }
  });
  sched.Run();
  EXPECT_EQ(consumed, 50);
}

TEST(SimSchedulerTest, TryLockObservesContention) {
  sim::Scheduler sched(3);
  Mutex mu;
  bool holder_has_it = false;
  bool saw_contended_failure = false;
  bool saw_uncontended_success = false;
  sched.Spawn("holder", [&] {
    mu.Lock();
    holder_has_it = true;
    for (int i = 0; i < 10; ++i) sim::Yield();
    holder_has_it = false;
    mu.Unlock();
  });
  sched.Spawn("prober", [&] {
    for (int i = 0; i < 40; ++i) {
      if (mu.TryLock()) {
        EXPECT_FALSE(holder_has_it);
        saw_uncontended_success = true;
        mu.Unlock();
      } else {
        EXPECT_TRUE(holder_has_it);
        saw_contended_failure = true;
      }
      sim::Yield();
    }
  });
  sched.Run();
  EXPECT_TRUE(saw_contended_failure);
  EXPECT_TRUE(saw_uncontended_success);
}

TEST(SimSchedulerTest, ThreadPoolWorkersAreAdopted) {
  sim::Scheduler sched(4);
  int ran = 0;
  Mutex mu;
  sched.Spawn("driver", [&] {
    runtime::ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&] {
        MutexLock lock(&mu);
        ++ran;
      });
    }
    pool.Wait();
  });
  sched.Run();
  EXPECT_EQ(ran, 20);
}

TEST(SimSchedulerTest, RunThreadsBarrierWorksUnderSim) {
  sim::Scheduler sched(5);
  std::vector<int> order;
  Mutex mu;
  sched.Spawn("driver", [&] {
    runtime::RunThreads(4, [&](int t) {
      MutexLock lock(&mu);
      order.push_back(t);
    });
  });
  sched.Run();
  EXPECT_EQ(order.size(), 4u);
}

TEST(SimSchedulerTest, VirtualClockAdvancesAndSleepersWake) {
  sim::Scheduler sched(6);
  uint64_t woke_short = 0;
  uint64_t woke_long = 0;
  sched.Spawn("short-sleeper", [&] {
    sim::SleepFor(10);
    woke_short = sim::Now();
  });
  sched.Spawn("long-sleeper", [&] {
    sim::SleepFor(500);
    woke_long = sim::Now();
  });
  sched.Run();
  EXPECT_GE(woke_short, 10u);
  EXPECT_GE(woke_long, 500u);
  EXPECT_LT(woke_short, woke_long);  // Virtual time orders the wakeups.
  EXPECT_GE(sched.now(), 500u);      // The clock jumped, no wall time spent.
}

TEST(SimSchedulerTest, DeadlockIsDiagnosedByName) {
  sim::Scheduler sched(7);
  Mutex first;
  Mutex second;
  bool holds_first = false;
  bool holds_second = false;
  // Flag-coordinated lock inversion: both tasks take their first lock
  // before either tries the other's, whatever the seed.
  sched.Spawn("alpha", [&] {
    MutexLock lock(&first);
    holds_first = true;
    while (!holds_second) sim::Yield();
    MutexLock inner(&second);
  });
  sched.Spawn("beta", [&] {
    MutexLock lock(&second);
    holds_second = true;
    while (!holds_first) sim::Yield();
    MutexLock inner(&first);
  });
  try {
    sched.Run();
    FAIL() << "deadlock not detected";
  } catch (const sim::SimDeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("alpha"), std::string::npos) << what;
    EXPECT_NE(what.find("beta"), std::string::npos) << what;
  }
}

TEST(SimSchedulerTest, TaskExceptionWinsOverSecondaryDeadlock) {
  sim::Scheduler sched(8);
  Mutex mu;
  CondVar cv;
  bool never = false;
  // The waiter would deadlock once the thrower dies — the original
  // exception must still be what Run() reports.
  sched.Spawn("waiter", [&] {
    MutexLock lock(&mu);
    while (!never) cv.Wait(mu);
  });
  sched.Spawn("thrower", [&] {
    sim::Yield();
    throw std::runtime_error("injected task failure");
  });
  try {
    sched.Run();
    FAIL() << "exception not propagated";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "injected task failure");
  }
}

TEST(SimSchedulerTest, LockMisuseIsAnError) {
  {
    sim::Scheduler sched(9);
    Mutex mu;
    sched.Spawn("recursive", [&] {
      MutexLock outer(&mu);
      mu.Lock();  // Self-deadlock: the sim reports it instead of hanging.
    });
    EXPECT_THROW(sched.Run(), std::logic_error);
  }
  {
    sim::Scheduler sched(10);
    Mutex mu;
    sched.Spawn("unlocker", [&] { mu.Unlock(); });
    EXPECT_THROW(sched.Run(), std::logic_error);
  }
}

TEST(SimSchedulerTest, ChoiceAndChanceAreSeedDeterministic) {
  auto draw = [](uint64_t seed) {
    std::vector<uint64_t> values;
    sim::Scheduler sched(seed);
    sched.Spawn("drawer", [&] {
      for (int i = 0; i < 16; ++i) values.push_back(sim::Choice(1000));
    });
    sched.Run();
    return values;
  };
  EXPECT_EQ(draw(11), draw(11));
  EXPECT_NE(draw(11), draw(12));
  // Chance outside a simulation: the degenerate planes never draw.
  EXPECT_FALSE(sim::Chance(0.0));
  EXPECT_TRUE(sim::Chance(1.0));
}

// ---------------------------------------------------------- determinism

/// A small contended program whose schedule varies with the seed: two
/// tasks tag a shared log around yields.
std::vector<int> InterleavingOf(uint64_t seed, uint64_t* digest) {
  sim::Scheduler sched(seed);
  Mutex mu;
  std::vector<int> log;
  for (int t = 0; t < 2; ++t) {
    sched.Spawn("tagger-" + std::to_string(t), [&, t] {
      for (int i = 0; i < 8; ++i) {
        {
          MutexLock lock(&mu);
          log.push_back(t);
        }
        sim::Yield();
      }
    });
  }
  sched.Run();
  if (digest != nullptr) *digest = sched.digest();
  return log;
}

TEST(SimDeterminismTest, SameSeedSameScheduleDifferentSeedsExplore) {
  uint64_t digest_a = 0;
  uint64_t digest_b = 0;
  EXPECT_EQ(InterleavingOf(42, &digest_a), InterleavingOf(42, &digest_b));
  EXPECT_EQ(digest_a, digest_b);

  std::set<std::vector<int>> interleavings;
  std::set<uint64_t> digests;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    uint64_t digest = 0;
    interleavings.insert(InterleavingOf(seed, &digest));
    digests.insert(digest);
  }
  // 30 seeds must explore more than one interleaving, and schedules that
  // differ must hash differently.
  EXPECT_GT(interleavings.size(), 1u);
  EXPECT_GE(digests.size(), interleavings.size());
}

TEST(SimDeterminismTest, PinnedDigestGuardsScheduleEncoding) {
  // Change-detector for the schedule encoding itself: if the event
  // stream, the RNG, or the digest chaining changes, this value moves —
  // bump it knowingly, because recorded failing seeds lose their meaning
  // across such a change.
  uint64_t digest = 0;
  InterleavingOf(1234, &digest);
  EXPECT_EQ(digest, 14041876966732498738ull);
}

// ------------------------------------------------------- the scenarios

struct ScenarioOutcome {
  uint64_t digest = 0;
  SimCheckResult check;
};

/// Reshard during predict: producers push keyed traffic (ticket-shard
/// labelling, so reshard-proof) while a controller grows the table and
/// then drains a random shard.
ScenarioOutcome RunReshardScenario(uint64_t seed) {
  SimServingConfig config;
  config.shards = 3;
  auto monitor = MakeServing(config);
  SimHistory history;
  RecordingMonitor recording(&monitor, &history);

  std::vector<std::vector<DelayedPush>> schedules;
  for (int t = 0; t < 3; ++t) {
    schedules.push_back(MakeDelaySchedule(KeysForSlot(t, 3, 6), 80,
                                          /*seed=*/7 + static_cast<uint64_t>(t),
                                          /*max_delay=*/0));
  }

  sim::Scheduler sched(seed);
  for (int t = 0; t < 3; ++t) {
    sched.Spawn("producer-" + std::to_string(t),
                [&recording, &schedules, t] {
                  RunDelayedProducer(recording, schedules[static_cast<size_t>(t)],
                                     /*depth=*/3);
                });
  }
  sched.Spawn("controller", [&recording] {
    sim::SleepFor(40);
    recording.AddShard();
    sim::SleepFor(40);
    recording.DrainShard(static_cast<int>(sim::Choice(4)));
  });
  sched.Run();

  HistoryChecker checker(config);
  ScenarioOutcome outcome;
  outcome.digest = sched.digest();
  outcome.check = checker.Check(history, monitor);
  return outcome;
}

/// Drain with labels in flight: verification latency keeps a deep
/// in-flight queue while the controller drains every shard in turn —
/// pending-label buffers must migrate intact.
ScenarioOutcome RunDrainScenario(uint64_t seed) {
  SimServingConfig config;
  config.shards = 3;
  auto monitor = MakeServing(config);
  SimHistory history;
  RecordingMonitor recording(&monitor, &history);

  std::vector<std::vector<DelayedPush>> schedules;
  for (int t = 0; t < 3; ++t) {
    schedules.push_back(MakeDelaySchedule(KeysForSlot(t, 3, 6), 70,
                                          /*seed=*/21 + static_cast<uint64_t>(t),
                                          /*max_delay=*/4));
  }

  sim::Scheduler sched(seed);
  for (int t = 0; t < 3; ++t) {
    sched.Spawn("producer-" + std::to_string(t),
                [&recording, &schedules, t] {
                  RunDelayedProducer(recording, schedules[static_cast<size_t>(t)],
                                     /*depth=*/5);
                });
  }
  sched.Spawn("drainer", [&recording] {
    for (int s = 0; s < 3; ++s) {
      sim::SleepFor(25);
      recording.DrainShard(s);
    }
  });
  sched.Run();

  HistoryChecker checker(config);
  ScenarioOutcome outcome;
  outcome.digest = sched.digest();
  outcome.check = checker.Check(history, monitor);
  return outcome;
}

/// SHIP/LOAD under traffic: the controller round-trips shard state
/// through the migration payload with a stretched pause window, so
/// producers provably run into the paused engine and retry.
ScenarioOutcome RunShipLoadScenario(uint64_t seed) {
  SimServingConfig config;
  config.shards = 3;
  auto monitor = MakeServing(config);
  SimHistory history;
  RecordingMonitor recording(&monitor, &history);

  std::vector<std::vector<DelayedPush>> schedules;
  for (int t = 0; t < 3; ++t) {
    schedules.push_back(MakeDelaySchedule(KeysForSlot(t, 3, 6), 70,
                                          /*seed=*/33 + static_cast<uint64_t>(t),
                                          /*max_delay=*/0));
  }

  sim::Scheduler sched(seed);
  for (int t = 0; t < 3; ++t) {
    sched.Spawn("producer-" + std::to_string(t),
                [&recording, &schedules, t] {
                  RunDelayedProducer(recording, schedules[static_cast<size_t>(t)],
                                     /*depth=*/3);
                });
  }
  sched.Spawn("migrator", [&recording] {
    for (int round = 0; round < 3; ++round) {
      sim::SleepFor(30);
      recording.ShipRestore(static_cast<int>(sim::Choice(3)),
                            /*hold_ticks=*/15);
    }
  });
  sched.Run();

  HistoryChecker checker(config);
  ScenarioOutcome outcome;
  outcome.digest = sched.digest();
  outcome.check = checker.Check(history, monitor);
  return outcome;
}

/// Label-plane faults over a small pending buffer: labels are dropped and
/// duplicated from the seed stream while the in-flight depth exceeds the
/// pending capacity, so eviction, exactly-once application and
/// unmatched-label accounting all get exercised — and must match the
/// sequential spec fed the same fault pattern.
ScenarioOutcome RunFaultPlaneScenario(uint64_t seed) {
  SimServingConfig config;
  config.shards = 3;
  config.pending_capacity = 8;
  auto monitor = MakeServing(config);
  SimHistory history;
  FaultPlane faults;
  faults.drop_label = 0.2;
  faults.dup_label = 0.2;
  RecordingMonitor recording(&monitor, &history, faults);

  std::vector<std::vector<DelayedPush>> schedules;
  for (int t = 0; t < 3; ++t) {
    schedules.push_back(MakeDelaySchedule(KeysForSlot(t, 3, 6), 70,
                                          /*seed=*/55 + static_cast<uint64_t>(t),
                                          /*max_delay=*/0));
  }

  sim::Scheduler sched(seed);
  for (int t = 0; t < 3; ++t) {
    sched.Spawn("producer-" + std::to_string(t),
                [&recording, &schedules, t] {
                  // Depth 10 > capacity 8: the oldest tickets evict, so
                  // some labels legitimately return false.
                  RunDelayedProducer(recording, schedules[static_cast<size_t>(t)],
                                     /*depth=*/10);
                });
  }
  sched.Run();

  HistoryChecker checker(config);
  ScenarioOutcome outcome;
  outcome.digest = sched.digest();
  outcome.check = checker.Check(history, monitor);
  return outcome;
}

/// Drives one keyed schedule through the lock-free ingress: mostly
/// FeedAsync (retrying via Flush on backpressure), with a locked Feed
/// every few pushes so the queue drains mid-run and the two paths
/// interleave on the same shard.
void RunAsyncFeeder(RecordingMonitor& recording,
                    const std::vector<KeyedInstance>& schedule) {
  size_t n = 0;
  for (const KeyedInstance& push : schedule) {
    if (++n % 5 == 0) {
      FeedRetry(recording, push.key, push.instance);  // Locked push: drains.
    } else {
      while (!recording.FeedAsync(push.key, push.instance)) {
        recording.Flush();  // Queue full: drain it ourselves, then retry.
      }
    }
    if (n % 8 == 0) sim::SleepFor(1 + sim::Choice(3));
  }
}

/// Async ingress during reshard: lock-free feeders run against delayed
/// predict/label producers while the controller grows the table, flushes,
/// and drains a shard — entries queued at drain time must migrate with
/// the outgoing engine's state, and the enqueue-order history must stay
/// the order the engines observed.
ScenarioOutcome RunAsyncIngressScenario(uint64_t seed) {
  SimServingConfig config;
  config.shards = 3;
  auto monitor = MakeServing(config);
  SimHistory history;
  RecordingMonitor recording(&monitor, &history);

  std::vector<std::vector<KeyedInstance>> feeds;
  std::vector<std::vector<DelayedPush>> predicts;
  for (int t = 0; t < 3; ++t) {
    feeds.push_back(MakeKeyedSchedule(KeysForSlot(t, 3, 6), 70,
                                      /*seed=*/61 + static_cast<uint64_t>(t)));
    predicts.push_back(MakeDelaySchedule(KeysForSlot(t, 3, 6), 40,
                                         /*seed=*/67 + static_cast<uint64_t>(t),
                                         /*max_delay=*/2));
  }

  sim::Scheduler sched(seed);
  for (int t = 0; t < 3; ++t) {
    sched.Spawn("feeder-" + std::to_string(t), [&recording, &feeds, t] {
      RunAsyncFeeder(recording, feeds[static_cast<size_t>(t)]);
    });
  }
  for (int t = 0; t < 2; ++t) {
    sched.Spawn("producer-" + std::to_string(t),
                [&recording, &predicts, t] {
                  RunDelayedProducer(recording, predicts[static_cast<size_t>(t)],
                                     /*depth=*/3);
                });
  }
  sched.Spawn("controller", [&recording] {
    sim::SleepFor(30);
    recording.AddShard();
    sim::SleepFor(20);
    recording.Flush();
    sim::SleepFor(20);
    recording.DrainShard(static_cast<int>(sim::Choice(4)));
  });
  sched.Run();
  recording.Flush();  // Aggregate reads never drain: apply the tail.

  HistoryChecker checker(config);
  ScenarioOutcome outcome;
  outcome.digest = sched.digest();
  outcome.check = checker.Check(history, monitor);
  return outcome;
}

/// Queue-full backpressure: a tiny ingress bound with bursty feeders, so
/// TryPush provably fails (each burst of 4 overruns capacity 2) and the
/// retry path — Flush, then push again — runs constantly. Rejected
/// pushes must leave no trace; accepted ones must all land.
ScenarioOutcome RunIngressBackpressureScenario(uint64_t seed) {
  SimServingConfig config;
  config.shards = 3;
  config.ingress_capacity = 2;
  auto monitor = MakeServing(config);
  SimHistory history;
  RecordingMonitor recording(&monitor, &history);

  std::vector<std::vector<KeyedInstance>> feeds;
  for (int t = 0; t < 3; ++t) {
    feeds.push_back(MakeKeyedSchedule(KeysForSlot(t, 3, 6), 60,
                                      /*seed=*/83 + static_cast<uint64_t>(t)));
  }

  sim::Scheduler sched(seed);
  for (int t = 0; t < 3; ++t) {
    sched.Spawn("feeder-" + std::to_string(t), [&recording, &feeds, t] {
      const std::vector<KeyedInstance>& schedule =
          feeds[static_cast<size_t>(t)];
      for (size_t i = 0; i < schedule.size(); ++i) {
        while (!recording.FeedAsync(schedule[i].key, schedule[i].instance)) {
          recording.Flush();
        }
        if (i % 4 == 3) sim::SleepFor(1 + sim::Choice(2));
      }
    });
  }
  sched.Run();
  recording.Flush();

  HistoryChecker checker(config);
  ScenarioOutcome outcome;
  outcome.digest = sched.digest();
  outcome.check = checker.Check(history, monitor);
  if (outcome.check.ok && recording.rejected_feeds() == 0) {
    outcome.check.ok = false;
    outcome.check.error = "backpressure never triggered (capacity 2, bursts "
                          "of 4: TryPush should have failed)";
  }
  return outcome;
}

// ------------------------------------------------------------- sweeps

/// Seeds per scenario: 5 in tier-1, CCD_SIM_SEEDS (e.g. 1000) in the
/// dedicated CI leg.
int SweepSeeds() {
  const char* env = std::getenv("CCD_SIM_SEEDS");
  if (env == nullptr) return 5;
  const int n = std::atoi(env);
  return n < 1 ? 1 : n;
}

using ScenarioFn = ScenarioOutcome (*)(uint64_t);

void Sweep(const char* name, ScenarioFn scenario) {
  const int seeds = SweepSeeds();
  for (int s = 0; s < seeds; ++s) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(s);
    const ScenarioOutcome outcome = scenario(seed);
    if (!outcome.check.ok) {
      // One grep-able line per failing seed; the CI sim leg archives them.
      std::cerr << "CCD_SIM_FAIL scenario=" << name << " seed=" << seed
                << " error=" << outcome.check.error << std::endl;
      ADD_FAILURE() << "scenario " << name << " seed " << seed << ": "
                    << outcome.check.error;
    }
  }
}

TEST(SimSweepTest, ReshardDuringPredict) { Sweep("reshard", RunReshardScenario); }

TEST(SimSweepTest, DrainWithLabelsInFlight) { Sweep("drain", RunDrainScenario); }

TEST(SimSweepTest, ShipLoadUnderTraffic) {
  Sweep("ship_load", RunShipLoadScenario);
}

TEST(SimSweepTest, DroppedAndDuplicatedLabels) {
  Sweep("fault_plane", RunFaultPlaneScenario);
}

TEST(SimSweepTest, AsyncIngressDuringReshard) {
  Sweep("async_ingress", RunAsyncIngressScenario);
}

TEST(SimSweepTest, IngressBackpressure) {
  Sweep("ingress_backpressure", RunIngressBackpressureScenario);
}

// Acceptance: same seed → bit-identical schedule digest *and* checker
// verdict, through the full stack (monitor, faults, checker).
TEST(SimDeterminismTest, ScenarioRunsAreBitIdentical) {
  const ScenarioOutcome a = RunFaultPlaneScenario(77);
  const ScenarioOutcome b = RunFaultPlaneScenario(77);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.check.ok, b.check.ok);
  EXPECT_EQ(a.check.error, b.check.error);
}

// ----------------------------------------- injected-bug self-tests

/// Records a clean single-threaded run the self-tests then break. The
/// wrapper works outside a simulation (zero fault plane never draws).
void RecordCleanRun(api::ShardedMonitor& monitor, SimHistory& history) {
  RecordingMonitor recording(&monitor, &history);
  const auto schedule = MakeKeyedSchedule(KeysForSlot(0, 2, 4), 60, /*seed=*/3);
  std::vector<std::pair<api::ShardedMonitor::Prediction, int>> in_flight;
  for (const auto& push : schedule) {
    in_flight.emplace_back(recording.Predict(push.key, push.instance.features,
                                             push.instance.weight),
                           push.instance.label);
    if (in_flight.size() >= 3) {
      recording.Label(in_flight.front().first.shard,
                      in_flight.front().first.id, in_flight.front().second);
      in_flight.erase(in_flight.begin());
    }
  }
  for (const auto& entry : in_flight) {
    recording.Label(entry.first.shard, entry.first.id, entry.second);
  }
}

class SimCheckerSelfTest : public ::testing::Test {
 protected:
  SimCheckerSelfTest() : monitor_(MakeServing(MakeConfig())) {
    config_ = MakeConfig();
    RecordCleanRun(monitor_, history_);
  }

  static SimServingConfig MakeConfig() {
    SimServingConfig config;
    config.shards = 2;
    return config;
  }

  SimCheckResult Check(const SimHistory& history) {
    HistoryChecker checker(config_);
    return checker.Check(history, monitor_);
  }

  SimServingConfig config_;
  api::ShardedMonitor monitor_;
  SimHistory history_;
};

TEST_F(SimCheckerSelfTest, CleanHistoryPasses) {
  const SimCheckResult result = Check(history_);
  EXPECT_TRUE(result.ok) << result.error;
}

TEST_F(SimCheckerSelfTest, DroppedAppliedLabelRecordFires) {
  SimHistory broken = history_;
  for (size_t i = broken.ops.size(); i-- > 0;) {
    if (broken.ops[i].kind == SimOpKind::kLabel && broken.ops[i].applied) {
      broken.ops.erase(broken.ops.begin() + static_cast<long>(i));
      break;
    }
  }
  ASSERT_LT(broken.ops.size(), history_.ops.size());
  const SimCheckResult result = Check(broken);
  EXPECT_FALSE(result.ok);
}

TEST_F(SimCheckerSelfTest, MisShardedOpFires) {
  SimHistory broken = history_;
  for (SimOp& op : broken.ops) {
    if (op.kind == SimOpKind::kPredict) {
      op.shard ^= 1;  // The other of the two shards.
      break;
    }
  }
  const SimCheckResult result = Check(broken);
  EXPECT_FALSE(result.ok);
}

TEST_F(SimCheckerSelfTest, TamperedPredictionOutcomeFires) {
  SimHistory broken = history_;
  for (SimOp& op : broken.ops) {
    if (op.kind == SimOpKind::kPredict) {
      op.predicted = (op.predicted + 1) % 3;
      break;
    }
  }
  const SimCheckResult result = Check(broken);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("predicted label"), std::string::npos)
      << result.error;
}

TEST_F(SimCheckerSelfTest, SpuriousCrashMarkerFires) {
  // A crash record without a real crash: the checker rolls the whole
  // history back (no persist), the live monitor visibly did not.
  SimHistory broken = history_;
  SimOp crash;
  crash.kind = SimOpKind::kCrashRestart;
  broken.ops.push_back(crash);
  const SimCheckResult result = Check(broken);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("final"), std::string::npos) << result.error;
}

}  // namespace
}  // namespace ccd
