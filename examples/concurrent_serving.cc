// Concurrent serving with api::ShardedMonitor: four producer threads push
// keyed traffic from a drifting stream into a hash-routed monitor while
// shard-tagged drift alerts fan in, then the fleet is resharded live —
// AddShard() grows the table mid-traffic and DrainShard() migrates one
// shard's complete EngineState onto a fresh engine — and serving simply
// continues. Ends with the cross-shard merged result.
//
// Usage: concurrent_serving [--instances 40000] [--threads 4] [--shards 4]
//                           [--seed 42]

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/api.h"
#include "generators/registry.h"
#include "utils/cli.h"

int main(int argc, char** argv) try {
  ccd::Cli cli(argc, argv);
  const size_t instances = static_cast<size_t>(cli.GetInt("instances", 40000));
  const int threads = cli.GetInt("threads", 4);
  const int shards = cli.GetInt("shards", 4);
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));

  // Materialize a drifting benchmark stream up front; the serving loop
  // then pushes it as if users were producing it.
  ccd::BuildOptions options;
  options.seed = seed;
  ccd::BuiltStream built =
      ccd::BuildStream(*ccd::FindStreamSpec("RBF5"), options);
  const std::vector<ccd::Instance> data =
      ccd::Take(built.stream.get(), instances);

  std::mutex log_mutex;
  auto monitor =
      ccd::api::ShardedMonitorBuilder()
          .Schema(built.stream->schema())
          .Classifier("naive-bayes")
          .Detector("DDM")
          .Seed(seed)
          .Shards(shards)
          .OnDrift([&](int shard, const ccd::DriftAlarm& alarm,
                       const ccd::MetricsSnapshot& metrics) {
            std::lock_guard<std::mutex> lock(log_mutex);
            std::printf("  [shard %d] drift at local position %llu "
                        "(pmAUC %.3f over %zu)\n",
                        shard,
                        static_cast<unsigned long long>(alarm.position),
                        metrics.pmauc, metrics.window_size);
          })
          .Build();

  std::printf("serving %zu instances on %d shards from %d producers...\n",
              data.size(), shards, threads);

  // Push the first half concurrently: thread t owns the stride t, t+N, ...
  // and keys by instance index, so each key's substream stays ordered.
  auto push_range = [&](size_t begin, size_t end) {
    std::vector<std::thread> workers;
    std::atomic<size_t> next{begin};
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        for (size_t i = next.fetch_add(1); i < end; i = next.fetch_add(1)) {
          monitor.Feed(static_cast<uint64_t>(i), data[i]);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  };
  push_range(0, data.size() / 2);

  // Live resharding mid-traffic: grow the fleet, then migrate shard 0's
  // complete state (EngineState: snapshot + component clones) onto a
  // fresh engine. Traffic after this re-routes over the grown table.
  const int added = monitor.AddShard();
  monitor.DrainShard(0);
  std::printf("resharded: added shard %d, drained shard 0 (position %llu "
              "migrated)\n",
              added,
              static_cast<unsigned long long>(
                  monitor.ShardSnapshot(0).position));
  push_range(data.size() / 2, data.size());

  const ccd::PrequentialResult result = monitor.Result();
  std::printf("\nserved %llu instances over %d shards\n",
              static_cast<unsigned long long>(result.instances),
              monitor.shards());
  for (int s = 0; s < monitor.shards(); ++s) {
    std::printf("  shard %d: %llu instances, %zu drift alarms\n", s,
                static_cast<unsigned long long>(
                    monitor.ShardSnapshot(s).position),
                monitor.ShardSnapshot(s).drift_log.size());
  }
  std::printf("aggregate: mean pmAUC %.3f, mean pmG-mean %.3f, %llu drift "
              "alarms\n",
              result.mean_pmauc, result.mean_pmgm,
              static_cast<unsigned long long>(result.drifts));
  return 0;
} catch (const ccd::api::ApiError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
} catch (const ccd::CliError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
