// Scenario 3 / Experiment 2 of the paper, as an explainability demo: a
// 10-class imbalanced stream where only the two smallest minority classes
// undergo real concept drift. A global detector can at best say "something
// changed"; RBM-IM's per-class monitors say *which classes* changed, which
// is the paper's "crucial step towards explainable drift detection".
//
// The demo contrasts RBM-IM's localization with DDM-OCI (per-class recall
// monitor) and FHDDM (global accuracy monitor) on the same stream
// realization, printing every alarm each detector raises.

#include <cstdio>
#include <memory>

#include "api/api.h"

namespace {

void Report(const char* who, uint64_t t, const std::vector<int>& classes) {
  std::printf("t=%6llu  %-8s drift", static_cast<unsigned long long>(t), who);
  if (classes.empty()) {
    std::printf(" (global signal, no localization)");
  } else {
    std::printf(" on classes:");
    for (int k : classes) std::printf(" %d", k);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const ccd::StreamSpec* spec = ccd::FindStreamSpec("RBF10");
  if (spec == nullptr) return 1;

  ccd::BuildOptions options;
  options.scale = 0.05;           // 50k instances, drifts at 12.5k/25k/37.5k.
  options.seed = 3;
  options.local_drift_classes = 2;  // Only classes 9 and 8 (smallest) drift.

  // Three identical stream realizations, one per detector, so alarms are
  // directly comparable (BuildStream is deterministic in (spec, options)).
  ccd::BuiltStream s1 = ccd::BuildStream(*spec, options);
  ccd::BuiltStream s2 = ccd::BuildStream(*spec, options);
  ccd::BuiltStream s3 = ccd::BuildStream(*spec, options);

  // The three contrasted monitors, by registry name. Their capability
  // cards already tell the story this demo prints: only RBM-IM and
  // DDM-OCI carry the kExplainsLocalDrift flag.
  auto rbm_im = ccd::api::MakeDetector("RBM-IM", s1.stream->schema(), 3);
  auto ddm_oci = ccd::api::MakeDetector("DDM-OCI", s2.stream->schema(), 3);
  auto fhddm = ccd::api::MakeDetector("FHDDM", s3.stream->schema(), 3);

  auto c1 = ccd::api::MakeClassifier("cs-ptree", s1.stream->schema());
  auto c2 = ccd::api::MakeClassifier("cs-ptree", s2.stream->schema());
  auto c3 = ccd::api::MakeClassifier("cs-ptree", s3.stream->schema());

  std::printf(
      "RBF10, local drift on the two smallest classes (9, 8) at t=%llu, "
      "%llu, %llu\n\n",
      static_cast<unsigned long long>(s1.stream->events()[0].start),
      static_cast<unsigned long long>(s1.stream->events()[1].start),
      static_cast<unsigned long long>(s1.stream->events()[2].start));

  struct Lane {
    ccd::BuiltStream* built;
    ccd::OnlineClassifier* clf;
    ccd::DriftDetector* det;
    const char* name;
  };
  Lane lanes[] = {{&s1, c1.get(), rbm_im.get(), "RBM-IM"},
                  {&s2, c2.get(), ddm_oci.get(), "DDM-OCI"},
                  {&s3, c3.get(), fhddm.get(), "FHDDM"}};

  for (uint64_t t = 0; t < s1.length; ++t) {
    for (Lane& lane : lanes) {
      ccd::Instance inst = lane.built->stream->Next();
      auto scores = lane.clf->PredictScores(inst);
      int predicted = 0;
      for (size_t c = 1; c < scores.size(); ++c) {
        if (scores[c] > scores[predicted]) predicted = static_cast<int>(c);
      }
      lane.det->Observe(inst, predicted, scores);
      if (lane.det->state() == ccd::DetectorState::kDrift) {
        Report(lane.name, t, lane.det->drifted_classes());
        lane.clf->Reset();
      }
      lane.clf->Train(inst);
    }
  }
  std::printf(
      "\nGround truth: only classes 9 and 8 drifted. Alarms naming exactly "
      "those\nclasses demonstrate correct localization.\n");
  return 0;
}
