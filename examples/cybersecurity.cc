// Cybersecurity scenario from the paper's motivation (Sec. IV): network
// traffic where benign flows are the overwhelming majority and several
// attack families appear with very different, evolving frequencies. Attacks
// mutate over time to evade detection (local real drift on the attack
// classes) while benign traffic stays stationary — exactly Scenario 3.
//
// The example builds that stream, runs the full pipeline (cost-sensitive
// perceptron tree + RBM-IM), and reports per-attack-class recall before and
// after the mutation plus where the detector localized the change.

#include <cstdio>
#include <memory>
#include <vector>

#include "api/api.h"
#include "eval/confusion.h"
#include "generators/drifting_stream.h"
#include "generators/rbf.h"

namespace {

constexpr int kClasses = 6;  // 0=benign, 1..5 attack families.
const char* kClassNames[kClasses] = {"benign",   "ddos",      "portscan",
                                     "botnet",   "bruteforce", "zero-day"};

}  // namespace

int main() {
  // --- Traffic model: 24 aggregate flow features; each class is a mixture
  //     of behaviours (RBF centroids).
  ccd::RbfConcept::Options concept_opt;
  concept_opt.num_features = 24;
  concept_opt.num_classes = kClasses;
  concept_opt.centroids_per_class = 4;

  std::vector<std::unique_ptr<ccd::Concept>> concepts;
  concepts.push_back(std::make_unique<ccd::RbfConcept>(concept_opt, 101));
  concepts.push_back(std::make_unique<ccd::RbfConcept>(concept_opt, 202));

  // --- The mutation: at t=40000 the botnet and zero-day families change
  //     their behaviour (real local drift); benign and the rest are stable.
  ccd::DriftEvent mutation;
  mutation.start = 40000;
  mutation.width = 4000;  // A gradual campaign roll-out.
  mutation.type = ccd::DriftType::kGradual;
  mutation.affected = {3, 5};

  // --- Extreme imbalance: benign dominates at IR ~ 300, and the attack mix
  //     itself oscillates over time.
  ccd::ImbalanceSchedule::Options imbalance;
  imbalance.num_classes = kClasses;
  imbalance.dynamic = true;
  imbalance.ir_low = 150.0;
  imbalance.ir_high = 300.0;
  imbalance.ir_period = 30000;

  ccd::DriftingClassStream stream(std::move(concepts), {mutation},
                                  ccd::ImbalanceSchedule(imbalance), 7);

  // Components come from the public registry; the stream itself is custom,
  // so the detector is sized from its schema. With IR up to 300 the rare
  // attack families need a longer per-class warm-up before their
  // reconstruction baselines are trustworthy — one string override.
  auto classifier = ccd::api::MakeClassifier("cs-ptree", stream.schema());
  auto detector =
      ccd::api::MakeDetector("RBM-IM", stream.schema(), 7, {"min_batches=32"});

  ccd::ConfusionMatrix before(kClasses), after(kClasses);
  const uint64_t kTotal = 80000;
  std::printf("streaming %llu flows (mutation of %s+%s at t=40000)...\n",
              static_cast<unsigned long long>(kTotal), kClassNames[3],
              kClassNames[5]);

  for (uint64_t t = 0; t < kTotal; ++t) {
    ccd::Instance flow = stream.Next();
    int predicted = classifier->Predict(flow);
    (t < 40000 ? before : after).Add(flow.label, predicted);

    detector->Observe(flow, predicted, classifier->PredictScores(flow));
    if (detector->state() == ccd::DetectorState::kDrift) {
      std::printf("t=%6llu  ALERT: behavioural drift in {",
                  static_cast<unsigned long long>(t));
      for (int k : detector->drifted_classes()) {
        std::printf(" %s", kClassNames[k]);
      }
      std::printf(" } -> retraining the classifier\n");
      classifier->Reset();
    }
    classifier->Train(flow);
  }

  std::printf("\nper-class recall (before / after mutation window):\n");
  for (int k = 0; k < kClasses; ++k) {
    std::printf("  %-11s %5.1f%%  /  %5.1f%%\n", kClassNames[k],
                100.0 * before.Recall(k), 100.0 * after.Recall(k));
  }
  std::printf("\nG-mean before=%.3f after=%.3f (drift handled: recovery).\n",
              before.GMean(), after.GMean());
  return 0;
}
