// Scenario 2 of the paper: global concept drift + dynamic imbalance ratio +
// *changing class roles* — the majority class periodically becomes the
// smallest minority and vice versa. Static detectors keep statistics keyed
// to "the majority", which invalidates them at every switch; a trainable
// detector just keeps following the stream.
//
// This example uses the registry's Scenario-2 configuration of the RBF10
// benchmark and prints the evolving class priors together with the
// detector's signals, so the interplay is visible in the output.

#include <cstdio>

#include "api/api.h"
#include "eval/metrics.h"

int main() {
  const ccd::StreamSpec* spec = ccd::FindStreamSpec("RBF10");
  if (spec == nullptr) return 1;

  ccd::BuildOptions options;
  options.scale = 0.06;          // 60k instances.
  options.seed = 11;
  options.role_switching = true;  // Scenario 2.

  ccd::BuiltStream built = ccd::BuildStream(*spec, options);
  const ccd::ImbalanceSchedule& imbalance = built.stream->imbalance();

  auto classifier = ccd::api::MakeClassifier("cs-ptree", built.stream->schema());
  auto detector = ccd::api::MakeDetector("RBM-IM", built.stream->schema(), 11);

  ccd::WindowedMetrics metrics(spec->num_classes, 1000);

  std::printf("RBF10 / Scenario 2: role switches every %llu instances\n\n",
              static_cast<unsigned long long>(
                  imbalance.options().role_switch_period));

  for (uint64_t t = 0; t < built.length; ++t) {
    ccd::Instance inst = built.stream->Next();
    auto scores = classifier->PredictScores(inst);
    int predicted = 0;
    for (size_t c = 1; c < scores.size(); ++c) {
      if (scores[c] > scores[predicted]) predicted = static_cast<int>(c);
    }
    metrics.Add(inst.label, predicted, scores);

    detector->Observe(inst, predicted, scores);
    if (detector->state() == ccd::DetectorState::kDrift) {
      std::printf("t=%6llu  drift detected on classes:",
                  static_cast<unsigned long long>(t));
      for (int k : detector->drifted_classes()) std::printf(" %d", k);
      std::printf("\n");
      classifier->Reset();
    }
    classifier->Train(inst);

    if (t % 10000 == 9999) {
      int majority = imbalance.ClassAtRung(t, 0);
      int smallest = imbalance.ClassAtRung(t, spec->num_classes - 1);
      std::printf(
          "t=%6llu  majority=class %d  smallest=class %d  IR=%5.1f  "
          "pmAUC=%.3f  pmGM=%.3f\n",
          static_cast<unsigned long long>(t), majority, smallest,
          imbalance.IrAt(t), metrics.PmAuc(), metrics.PmGMean());
    }
  }
  return 0;
}
