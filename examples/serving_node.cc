// Two-process serving with a live shard handoff — the io layer end to
// end. The driver forks two serving nodes, each an api::ShardedMonitor
// behind an io::FrameServer on a Unix-domain socket, then:
//
//   1. streams keyed traffic to node A over the socket dialect,
//   2. SHIPs shard 1 out of A (which pauses it) and LOADs the state
//      image into node B — a cross-process shard migration,
//   3. splits the remaining traffic between the two nodes by key, and
//   4. proves the fleet is exactly one logical monitor: probe
//      predictions from the nodes match an in-process oracle that never
//      split, digit for digit (%.17g), and node B's state survives a
//      PERSIST + ShardedMonitor::Open round trip.
//
// Run it from the build tree:   ./serving_node
//
// The fork happens before any thread exists in the child, so the server
// threads (accept loop + pool workers) are all post-fork — the only
// fork/thread ordering that is safe.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include "api/api.h"
#include "api/sharded_monitor.h"
#include "generators/rbf.h"
#include "io/frame_server.h"
#include "io/monitor_service.h"
#include "io/snapshot_store.h"
#include "io/wire.h"
#include "runtime/router.h"

namespace {

constexpr int kShards = 2;
constexpr size_t kPhase1 = 600;
constexpr size_t kPhase2 = 600;

ccd::StreamSchema Schema() { return ccd::StreamSchema(6, 3, "serving-demo"); }

ccd::api::ShardedMonitor MakeNode() {
  ccd::PrequentialConfig cfg;
  cfg.metric_window = 400;
  cfg.eval_interval = 100;
  cfg.warmup = 100;
  cfg.timing = false;
  return ccd::api::ShardedMonitorBuilder()
      .Schema(Schema())
      .Classifier("naive-bayes")
      .Detector("DDM")
      .Seed(42)
      .Shards(kShards)
      .Protocol(cfg)
      .Build();
}

/// Child: serve one monitor on `socket_path` until a QUIT frame arrives.
int RunNode(const std::string& socket_path) {
  ccd::api::ShardedMonitor monitor = MakeNode();
  ccd::io::MonitorService service(&monitor);
  std::promise<void> quit;
  auto done = quit.get_future();
  ccd::io::FrameServer server(
      socket_path, [&](const std::string& request) -> std::string {
        if (request == "QUIT") {
          quit.set_value();
          return "OK bye";
        }
        return service.Handle(request);
      });
  done.wait();
  server.Stop();
  return 0;
}

/// Connects to a node, retrying while its server is still coming up.
std::unique_ptr<ccd::io::FrameClient> Connect(const std::string& path) {
  for (int attempt = 0; attempt < 2000; ++attempt) {
    try {
      return std::make_unique<ccd::io::FrameClient>(path);
    } catch (const ccd::io::WireError&) {
      ::usleep(2000);
    }
  }
  std::fprintf(stderr, "could not reach %s\n", path.c_str());
  std::exit(1);
}

std::string FormatInstance(const ccd::Instance& inst) {
  std::string out = std::to_string(inst.label);
  char buf[32];
  for (double f : inst.features) {
    std::snprintf(buf, sizeof(buf), " %.17g", f);
    out += buf;
  }
  return out;
}

/// The keyed demo traffic: a 3-class RBF stream, keys spread over both
/// shards. Deterministic, so the oracle sees byte-identical pushes.
struct Push {
  uint64_t key;
  ccd::Instance instance;
};

std::vector<Push> MakeTraffic(size_t count) {
  ccd::RbfConcept::Options options;
  options.num_features = 6;
  options.num_classes = 3;
  ccd::RbfConcept concept(options, /*seed=*/1);
  ccd::Rng rng(99);
  std::vector<Push> traffic(count);
  for (size_t i = 0; i < count; ++i) {
    const int label = static_cast<int>(i % 3);
    traffic[i].key = 1000 + (i * 7919) % 97;
    traffic[i].instance.features = concept.SampleForClass(label, &rng);
    traffic[i].instance.label = label;
  }
  return traffic;
}

}  // namespace

int main() {
  const std::string dir = "/tmp/ccd-serving-node-" + std::to_string(::getpid());
  const std::string path_a = dir + "-a.sock";
  const std::string path_b = dir + "-b.sock";

  // Fork the two serving nodes first — no threads exist yet.
  pid_t node_a = ::fork();
  if (node_a == 0) ::_exit(RunNode(path_a));
  pid_t node_b = ::fork();
  if (node_b == 0) ::_exit(RunNode(path_b));

  auto a = Connect(path_a);
  auto b = Connect(path_b);
  ccd::api::ShardedMonitor oracle = MakeNode();

  const std::vector<Push> traffic = MakeTraffic(kPhase1 + kPhase2);

  // Phase 1: everything lands on node A; the oracle sees the same pushes.
  for (size_t i = 0; i < kPhase1; ++i) {
    const std::string reply = a->Call("FEED " + std::to_string(traffic[i].key) +
                                      " " + FormatInstance(traffic[i].instance));
    if (reply != "OK") {
      std::fprintf(stderr, "feed %zu failed: %s\n", i, reply.c_str());
      return 1;
    }
    oracle.Feed(traffic[i].key, traffic[i].instance);
  }
  std::printf("phase 1: %zu instances -> node A\n", kPhase1);
  std::printf("  A %s\n", a->Call("STATS").c_str());

  // Migrate: SHIP pauses A's shard 1 and returns its sealed state image;
  // LOAD makes it live inside node B — a different process.
  const std::string shipped = a->Call("SHIP 1");
  if (shipped.rfind("OK\n", 0) != 0) {
    std::fprintf(stderr, "ship failed: %s\n", shipped.c_str());
    return 1;
  }
  const std::string image = shipped.substr(3);
  std::printf("shipped shard 1 from A (%zu bytes) -> B\n", image.size());
  if (b->Call("LOAD 1\n" + image) != "OK") {
    std::fprintf(stderr, "load into B failed\n");
    return 1;
  }

  // Phase 2: route by key — shard-0 keys stay on A, shard-1 keys now
  // belong to B. The oracle keeps serving both, unsplit.
  for (size_t i = kPhase1; i < traffic.size(); ++i) {
    const int slot = ccd::runtime::Router::KeySlot(traffic[i].key, kShards);
    ccd::io::FrameClient* node = slot == 1 ? b.get() : a.get();
    node->Call("FEED " + std::to_string(traffic[i].key) + " " +
               FormatInstance(traffic[i].instance));
    oracle.Feed(traffic[i].key, traffic[i].instance);
  }
  std::printf("phase 2: %zu instances split A/B by key\n", kPhase2);
  std::printf("  A %s\n  B %s\n", a->Call("STATS").c_str(),
              b->Call("STATS").c_str());

  // Probe: score 20 unlabeled instances on whichever node owns the key
  // and on the oracle; %.17g strings must match digit for digit.
  size_t mismatches = 0;
  for (size_t i = 0; i < 20; ++i) {
    const Push& probe = traffic[i * 7];
    const int slot = ccd::runtime::Router::KeySlot(probe.key, kShards);
    ccd::io::FrameClient* node = slot == 1 ? b.get() : a.get();
    std::string features;
    char buf[32];
    for (double f : probe.instance.features) {
      std::snprintf(buf, sizeof(buf), " %.17g", f);
      features += buf;
    }
    const std::string served =
        node->Call("PREDICT " + std::to_string(probe.key) + features);
    auto want = oracle.Predict(probe.key, probe.instance.features);
    // served = "OK <shard> <id> <label> <scores...>": compare the scores.
    std::string expect;
    for (double s : want.scores) {
      std::snprintf(buf, sizeof(buf), " %.17g", s);
      expect += buf;
    }
    if (served.find(expect) == std::string::npos) {
      std::fprintf(stderr, "probe %zu diverged:\n  served %s\n  want%s\n", i,
                   served.c_str(), expect.c_str());
      ++mismatches;
    }
  }
  std::printf("probes: 20/20 scored, %zu mismatches\n", mismatches);

  // Durability: node B persists itself; reopening the directory in this
  // process yields the same logical monitor.
  if (b->Call("PERSIST " + dir).rfind("OK", 0) != 0) {
    std::fprintf(stderr, "persist failed\n");
    return 1;
  }
  ccd::api::ShardedMonitor reopened = ccd::api::ShardedMonitor::Open(dir);
  std::printf("reopened node B from %s: position=%llu shards=%d\n",
              dir.c_str(),
              static_cast<unsigned long long>(reopened.position()),
              reopened.shards());

  // The nodes tear down as soon as QUIT lands; the goodbye frame may lose
  // the race against the shutdown, which is fine.
  for (ccd::io::FrameClient* node : {a.get(), b.get()}) {
    try {
      node->Call("QUIT");
    } catch (const ccd::io::WireError&) {
    }
  }
  int status = 0;
  ::waitpid(node_a, &status, 0);
  ::waitpid(node_b, &status, 0);
  ccd::io::SnapshotStore store(dir);
  for (const std::string& name : store.List()) store.Remove(name);
  ::rmdir(dir.c_str());

  if (mismatches != 0) {
    std::fprintf(stderr, "FAILED: the split fleet diverged from the oracle\n");
    return 1;
  }
  std::printf("two-process fleet == single-process oracle, bit for bit\n");
  return 0;
}
