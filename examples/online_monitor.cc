// Online monitoring with delayed labels: the push-based serving surface.
//
// A fraud-detection-style deployment: transactions arrive and must be
// scored *now*, but ground truth (was it actually fraud?) shows up only
// after a verification delay — and for some transactions, never. The
// pull-based Experiment cannot express this; api::Monitor is built for it:
//
//  1. Build a Monitor from registered components (no stream attached —
//     events are pushed in).
//  2. For each arriving instance: Predict() immediately, queue the label
//     with a random verification delay, deliver queued labels as their
//     deadline passes; drop a fraction entirely (label never arrives).
//  3. Drift alerts and periodic metric samples arrive through callbacks,
//     carrying the implicated classes and windowed pmAUC/pmGM snapshots.
//  4. Pause + Snapshot at the end: the run state a future intra-stream
//     shard handoff would transfer.
//
// The label delay is simulated with the library's own deterministic Rng,
// so two runs print the same report.

#include <cstdio>
#include <queue>
#include <string>
#include <vector>

#include "api/api.h"
#include "generators/registry.h"
#include "utils/cli.h"
#include "utils/rng.h"

namespace {

struct DelayedLabel {
  uint64_t due = 0;       ///< Arrival time (instance index) of the label.
  uint64_t id = 0;        ///< Prediction ticket to complete.
  int label = -1;
};

/// Min-heap on verification deadline: a short verification on a recent
/// transaction overtakes a long one on an older transaction, so labels
/// genuinely arrive out of prediction order.
struct LaterDue {
  bool operator()(const DelayedLabel& a, const DelayedLabel& b) const {
    return a.due > b.due;
  }
};

}  // namespace

int main(int argc, char** argv) try {
  ccd::Cli cli(argc, argv);
  const uint64_t kInstances =
      static_cast<uint64_t>(cli.GetInt("instances", 20000));
  const int kMaxDelay = cli.GetInt("max_delay", 200);
  const double kLossRate = cli.GetDouble("loss", 0.05);

  // --- 1. A benchmark stream as the traffic source, a Monitor as the
  //        serving endpoint. The monitor never sees the stream object.
  const ccd::StreamSpec* spec = ccd::FindStreamSpec("RBF5");
  if (spec == nullptr) {
    std::fprintf(stderr, "error: stream 'RBF5' not registered\n");
    return 1;
  }
  ccd::BuildOptions options;
  options.scale = 0.05;
  options.seed = 7;
  ccd::BuiltStream built = ccd::BuildStream(*spec, options);

  uint64_t alerts = 0;
  ccd::api::Monitor monitor =
      ccd::api::MonitorBuilder()
          .Schema(built.stream->schema())
          .Classifier("cs-ptree")
          .Detector("DDM-OCI")  // Per-class recall monitor: explains *which*
                                // classes drifted, not just *that* something did.
          .Seed(7)
          .PendingCapacity(1024)
          .OnDrift([&](const ccd::DriftAlarm& alarm,
                       const ccd::MetricsSnapshot& m) {
            ++alerts;
            std::printf("[drift]   t=%-7llu pmAUC=%.3f pmGM=%.3f classes:",
                        static_cast<unsigned long long>(alarm.position),
                        m.pmauc, m.pmgm);
            if (alarm.drifted_classes.empty()) std::printf(" (global)");
            for (int c : alarm.drifted_classes) std::printf(" %d", c);
            std::printf("\n");
          })
          .OnMetrics([](const ccd::MetricsSnapshot& m) {
            if (m.position % 2500 == 0) {
              std::printf("[metrics] t=%-7llu pmAUC=%.3f pmGM=%.3f acc=%.3f\n",
                          static_cast<unsigned long long>(m.position),
                          m.pmauc, m.pmgm, m.accuracy);
            }
          })
          .Build();

  // --- 2. Serve: predict now, label late (or never).
  ccd::Rng delay_rng(99);
  std::priority_queue<DelayedLabel, std::vector<DelayedLabel>, LaterDue>
      label_queue;
  uint64_t dropped = 0;

  for (uint64_t t = 0; t < kInstances; ++t) {
    // Deliver every label whose verification completed by now — in
    // *verification* order, which is not prediction order.
    while (!label_queue.empty() && label_queue.top().due <= t) {
      monitor.Label(label_queue.top().id, label_queue.top().label);
      label_queue.pop();
    }

    ccd::Instance instance = built.stream->Next();
    ccd::api::Monitor::Prediction p = monitor.Predict(instance.features);
    (void)p.label;  // A real deployment would act on the prediction here.

    if (delay_rng.NextDouble() < kLossRate) {
      ++dropped;  // Verification never happens for this transaction.
      continue;
    }
    DelayedLabel dl;
    dl.due = t + 1 + static_cast<uint64_t>(delay_rng.UniformInt(0, kMaxDelay));
    dl.id = p.id;
    dl.label = instance.label;
    label_queue.push(dl);
  }
  // End of traffic: flush the verification queue.
  while (!label_queue.empty()) {
    monitor.Label(label_queue.top().id, label_queue.top().label);
    label_queue.pop();
  }

  // --- 3. Pause the intake and snapshot the run state — what a shard
  //        handoff would serialize.
  monitor.Pause();
  ccd::EngineSnapshot snap = monitor.Snapshot();
  ccd::PrequentialResult result = monitor.Result();

  std::printf("\n--- run state (Snapshot) ---\n");
  std::printf("completed instances : %llu\n",
              static_cast<unsigned long long>(snap.position));
  std::printf("labels never arrived: %llu predictions simulated-dropped, "
              "%llu evicted from the pending buffer\n",
              static_cast<unsigned long long>(dropped),
              static_cast<unsigned long long>(snap.evicted));
  std::printf("pending at shutdown : %llu (deliberately unlabelled)\n",
              static_cast<unsigned long long>(snap.pending));
  std::printf("metric window holds : %zu outcomes\n", snap.window.size());
  std::printf("drift alarms        : %llu (%llu via callback)\n",
              static_cast<unsigned long long>(result.drifts),
              static_cast<unsigned long long>(alerts));
  std::printf("class counts        :");
  for (uint64_t c : snap.class_counts) {
    std::printf(" %llu", static_cast<unsigned long long>(c));
  }
  std::printf("\nfinal pmAUC=%.3f pmGM=%.3f accuracy=%.3f kappa=%.3f\n",
              result.mean_pmauc, result.mean_pmgm, result.mean_accuracy,
              result.mean_kappa);
  return 0;
} catch (const ccd::api::ApiError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
} catch (const ccd::CliError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
