// Quickstart: the smallest end-to-end use of the library.
//
// Builds a 5-class imbalanced RBF stream with one sudden global drift,
// attaches the paper's base classifier (cost-sensitive perceptron tree)
// and the RBM-IM drift detector, runs the prequential loop and prints
// where drift was detected and how the per-class signals localized it.

#include <cstdio>
#include <memory>

#include "classifiers/cs_perceptron_tree.h"
#include "core/rbm_im.h"
#include "eval/metrics.h"
#include "generators/drifting_stream.h"
#include "generators/rbf.h"

int main() {
  // --- 1. Compose a stream: two RBF concepts, one sudden drift at t=15000,
  //        geometric class imbalance with max/min ratio 20.
  ccd::RbfConcept::Options concept_opt;
  concept_opt.num_features = 12;
  concept_opt.num_classes = 5;

  std::vector<std::unique_ptr<ccd::Concept>> concepts;
  concepts.push_back(std::make_unique<ccd::RbfConcept>(concept_opt, /*seed=*/1));
  concepts.push_back(std::make_unique<ccd::RbfConcept>(concept_opt, /*seed=*/2));

  ccd::DriftEvent drift;
  drift.start = 15000;
  drift.type = ccd::DriftType::kSudden;

  ccd::ImbalanceSchedule::Options imbalance;
  imbalance.num_classes = 5;
  imbalance.base_ir = 20.0;

  ccd::DriftingClassStream stream(std::move(concepts), {drift},
                                  ccd::ImbalanceSchedule(imbalance),
                                  /*seed=*/7);

  // --- 2. Classifier + detector.
  ccd::CsPerceptronTree classifier(stream.schema());

  ccd::RbmIm::Params det_params;
  det_params.num_features = stream.schema().num_features;
  det_params.num_classes = stream.schema().num_classes;
  ccd::RbmIm detector(det_params, /*seed=*/7);

  // --- 3. Prequential loop (test -> detect -> train).
  ccd::WindowedMetrics metrics(stream.schema().num_classes, 1000);
  const uint64_t kTotal = 30000;
  for (uint64_t i = 0; i < kTotal; ++i) {
    ccd::Instance instance = stream.Next();
    std::vector<double> scores = classifier.PredictScores(instance);
    int predicted = 0;
    for (size_t c = 1; c < scores.size(); ++c) {
      if (scores[c] > scores[predicted]) predicted = static_cast<int>(c);
    }
    metrics.Add(instance.label, predicted, scores);

    detector.Observe(instance, predicted, scores);
    if (detector.state() == ccd::DetectorState::kDrift) {
      std::printf("t=%6llu  DRIFT detected on classes:",
                  static_cast<unsigned long long>(i));
      for (int k : detector.drifted_classes()) std::printf(" %d", k);
      std::printf("   (true drift injected at t=15000)\n");
      classifier.Reset();
    }
    classifier.Train(instance);

    if (i > 0 && i % 5000 == 0) {
      std::printf("t=%6llu  pmAUC=%.3f  pmG-mean=%.3f  acc=%.3f\n",
                  static_cast<unsigned long long>(i), metrics.PmAuc(),
                  metrics.PmGMean(), metrics.Accuracy());
    }
  }
  std::printf("done: final pmAUC=%.3f pmG-mean=%.3f\n", metrics.PmAuc(),
              metrics.PmGMean());
  return 0;
}
