// Quickstart: the smallest end-to-end use of the library through the
// public ccd::api layer.
//
// 1. Lists the registered components (the registry is the front door:
//    everything constructible by name, with capability flags).
// 2. Composes an experiment with the fluent builder — a 5-class
//    imbalanced RBF benchmark, the paper's base classifier, and the
//    RBM-IM drift detector with two knobs overridden from strings —
//    and runs the prequential protocol.
// 3. Prints where drift was detected and the final skew-aware metrics.

#include <cstdio>

#include "api/api.h"

int main() {
  // --- 1. What is available?
  std::printf("registered detectors:\n");
  for (const ccd::api::ComponentInfo& info : ccd::api::Detectors().List()) {
    std::printf("  %-12s %s%s%s\n", info.name.c_str(),
                info.description.c_str(),
                info.has(ccd::api::kTrainable) ? " [trainable]" : "",
                info.has(ccd::api::kExplainsLocalDrift)
                    ? " [explains local drift]"
                    : "");
  }
  std::printf("registered classifiers:\n");
  for (const ccd::api::ComponentInfo& info : ccd::api::Classifiers().List()) {
    std::printf("  %-12s %s\n", info.name.c_str(), info.description.c_str());
  }

  // --- 2. Compose and run: every component resolved by name, every knob
  //        settable as a key=value string (no recompiling for a sweep).
  ccd::PrequentialResult result = ccd::api::Experiment()
                                      .Stream("RBF5")
                                      .Scale(0.03)  // 30k instances.
                                      .Seed(7)
                                      .Classifier("cs-ptree")
                                      .Detector("RBM-IM", {"batch_size=50",
                                                           "jump_sigmas=4.0"})
                                      .Run();

  // --- 3. Outcome.
  std::printf("\nran %llu instances; %llu drift alarms at:",
              static_cast<unsigned long long>(result.instances),
              static_cast<unsigned long long>(result.drifts));
  for (uint64_t t : result.drift_positions) {
    std::printf(" %llu", static_cast<unsigned long long>(t));
  }
  std::printf("\n(three drifts are injected, evenly spaced)\n");
  std::printf("final pmAUC=%.3f pmG-mean=%.3f accuracy=%.3f kappa=%.3f\n",
              result.mean_pmauc, result.mean_pmgm, result.mean_accuracy,
              result.mean_kappa);
  return 0;
}
