# Negative-compile checks for the thread-safety annotations.
#
# Each case in tests/negative_compile/ is compiled twice at configure
# time with clang's -Werror=thread-safety:
#   1. control (no defines)          — must succeed, proving the case is
#                                      otherwise well-formed and the
#                                      harness isn't vacuously "passing".
#   2. -DCCD_EXPECT_VIOLATION=1      — must FAIL, proving the analysis
#                                      actually rejects the violation.
# Any other outcome is a FATAL_ERROR: a silently-neutered annotation
# layer (e.g. someone edits CCD_TSA to a no-op under clang) breaks the
# configure, not just a code review.
#
# Clang-only: GCC has no thread-safety analysis, so under GCC the checks
# are skipped (the annotations compile to nothing there by design).

function(ccd_negative_compile_check name source)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    message(STATUS "Negative-compile check '${name}': skipped (requires clang)")
    return()
  endif()

  set(_common_flags
    "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src"
    "-DCMAKE_CXX_STANDARD=17"
    "-DCMAKE_CXX_STANDARD_REQUIRED=ON")

  # try_compile must not attempt to link: these cases reference symbols
  # whose definitions live in the main library.
  set(CMAKE_TRY_COMPILE_TARGET_TYPE STATIC_LIBRARY)

  try_compile(_control_ok
    "${CMAKE_BINARY_DIR}/negative_compile/${name}_control"
    "${source}"
    CMAKE_FLAGS ${_common_flags}
    COMPILE_DEFINITIONS "-Wthread-safety -Werror=thread-safety"
    OUTPUT_VARIABLE _control_log)
  if(NOT _control_ok)
    message(FATAL_ERROR
      "Negative-compile check '${name}': control build FAILED — the case "
      "is broken independent of the violation under test.\n${_control_log}")
  endif()

  try_compile(_violation_ok
    "${CMAKE_BINARY_DIR}/negative_compile/${name}_violation"
    "${source}"
    CMAKE_FLAGS ${_common_flags}
    COMPILE_DEFINITIONS
      "-Wthread-safety -Werror=thread-safety -DCCD_EXPECT_VIOLATION=1")
  if(_violation_ok)
    message(FATAL_ERROR
      "Negative-compile check '${name}': the violating build COMPILED — "
      "the thread-safety annotations are not being enforced.")
  endif()

  message(STATUS "Negative-compile check '${name}': passed")
endfunction()
