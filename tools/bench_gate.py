#!/usr/bin/env python3
"""Perf regression gate over the bench JSON artifacts.

Compares a freshly produced bench JSON (bench_engine --json /
bench_serving --json) against the committed baseline under
bench/baselines/ and fails when a throughput row dropped past the
tolerance. The tolerance is deliberately loose (default 0.4): CI
runners and the machines that record baselines differ, and the gate
exists to catch *large* regressions — an accidentally quadratic hot
path, a lock held across a batch, a lost fast path — not 10% noise.

Cross-machine-robust checks ride along: batch_speedup (batch vs
per-instance push, a within-run ratio) must stay above
--min-batch-speedup on every row that records one. The default floor
(0.9) asserts "batching is never materially slower than per-instance
push"; the absolute speedup is contention-dependent (it grows with
core count and producer threads), so the recorded trajectory, not the
floor, is the number to watch across runs.

Usage:
  bench_gate.py --baseline bench/baselines/BENCH_engine.json \
                --current BENCH_engine.json [--min-ratio 0.4] \
                [--min-batch-speedup 0.9]

Exit codes: 0 clean, 1 regression / mismatched schema, 2 bad input.
"""

import argparse
import json
import sys

# Per-bench row identity and the throughput field the ratio check runs on.
BENCH_SHAPES = {
    "engine": {"key": "path", "throughput": "per_sec"},
    "serving": {"key": "shards", "throughput": "pushes_per_sec"},
}

SCHEMA_VERSION = 1


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def check(baseline, current, min_ratio, min_batch_speedup):
    failures = []
    for doc, name in ((baseline, "baseline"), (current, "current")):
        if doc.get("schema_version") != SCHEMA_VERSION:
            failures.append(
                f"{name} schema_version is {doc.get('schema_version')!r}, "
                f"gate speaks {SCHEMA_VERSION}; refusing to compare")
    if failures:
        return failures
    kind = baseline.get("bench")
    if current.get("bench") != kind:
        return [f"bench kind mismatch: baseline={kind!r} "
                f"current={current.get('bench')!r}"]
    shape = BENCH_SHAPES.get(kind)
    if shape is None:
        return [f"unknown bench kind {kind!r}"]

    key, field = shape["key"], shape["throughput"]
    base_rows = {row[key]: row for row in baseline.get("rows", [])}
    cur_rows = {row[key]: row for row in current.get("rows", [])}
    for row_key, base in sorted(base_rows.items(), key=lambda kv: str(kv[0])):
        cur = cur_rows.get(row_key)
        if cur is None:
            failures.append(f"row {key}={row_key} vanished from current run")
            continue
        base_v, cur_v = base.get(field, 0.0), cur.get(field, 0.0)
        if base_v > 0 and cur_v < min_ratio * base_v:
            failures.append(
                f"row {key}={row_key}: {field} {cur_v:.0f} is below "
                f"{min_ratio:.2f}x baseline {base_v:.0f}")
        speedup = cur.get("batch_speedup")
        if speedup is not None and speedup > 0 and \
                speedup < min_batch_speedup:
            failures.append(
                f"row {key}={row_key}: batch_speedup {speedup:.3f} below "
                f"floor {min_batch_speedup:.2f} — batch push regressed "
                f"against per-instance push")
    # Engine bench: the batch paths are recorded as sibling rows; apply the
    # same within-run floor to feed_batch/feed and serve_batch/serve.
    if kind == "engine":
        for per, batch in (("feed", "feed_batch"), ("serve", "serve_batch")):
            if per in cur_rows and batch in cur_rows:
                per_v = cur_rows[per].get(field, 0.0)
                batch_v = cur_rows[batch].get(field, 0.0)
                if per_v > 0 and batch_v / per_v < min_batch_speedup:
                    failures.append(
                        f"{batch}/{per} ratio {batch_v / per_v:.3f} below "
                        f"floor {min_batch_speedup:.2f}")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--min-ratio", type=float, default=0.4,
                    help="current/baseline throughput floor per row")
    ap.add_argument("--min-batch-speedup", type=float, default=0.9,
                    help="within-run batch vs per-instance floor")
    args = ap.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    failures = check(baseline, current, args.min_ratio,
                     args.min_batch_speedup)
    if failures:
        for f in failures:
            print(f"bench_gate: FAIL {f}", file=sys.stderr)
        return 1
    print(f"bench_gate: OK {args.current} vs {args.baseline} "
          f"(min-ratio {args.min_ratio}, "
          f"min-batch-speedup {args.min_batch_speedup})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
