#!/usr/bin/env python3
"""Determinism & concurrency-hygiene lint for src/.

The reproduction's headline guarantee is bit-identical results for a given
(seed, config, stream) triple — across runs, thread counts, and shard
layouts.  That guarantee dies the moment hidden nondeterminism leaks into a
result path, so this lint bans the usual suspects at the source level:

  * std::random_device, rand()/srand()    — unseeded entropy.
  * time(NULL/nullptr/0)                  — wall-clock in logic.
  * std::chrono::*_clock::now()           — ditto, the C++ spelling.
  * std::hash                             — libstdc++/libc++ divergence and
                                            (for strings) per-process salt;
                                            routing uses the pinned
                                            Router::HashKey (FNV-1a) instead.
  * std::unordered_map / std::unordered_set
                                          — iteration order is
                                            implementation-defined; a
                                            range-for over one in a result
                                            path silently reorders output.
  * raw std::mutex / std::shared_mutex / std::condition_variable
                                          — every lock in src/ must be a
                                            capability-annotated wrapper
                                            from runtime/sync.h so clang's
                                            -Wthread-safety sees it.
  * memcpy / reinterpret_cast in src/io/  — float punning and aliasing
                                            casts belong in exactly one
                                            place, wire.cc's audited
                                            codec; everywhere else in the
                                            io layer must go through the
                                            typed Writer/Reader surface
                                            (POSIX call sites that need a
                                            sockaddr cast are allowlisted
                                            individually).

Scope: src/ only (a rule may narrow itself further via a path prefix,
as the memcpy/reinterpret_cast rules do to src/io/).  tests/ and bench/
may measure wall-clock time and use ad-hoc containers; they never feed
result paths.

Allowlist: (file, token) pairs below grant narrow, justified exceptions.
Each entry must say *why* the use cannot bias results.

Exit status: 0 when clean, 1 with one "file:line: message" per finding.
"""

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# (rule name, compiled regex, message[, path-prefix scope]) — rules with a
# scope only apply to files whose repo-relative path starts with it.
RULES = [
    (
        "random_device",
        re.compile(r"std::random_device"),
        "std::random_device is unseeded entropy; take the seed from config",
    ),
    (
        "c_rand",
        re.compile(r"(?<![\w.>:])s?rand\s*\("),
        "rand()/srand() is hidden global state; use a seeded std::mt19937",
    ),
    (
        "c_time",
        re.compile(r"(?<![\w.>:])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
        "time() is wall-clock; results must not depend on when they ran",
    ),
    (
        "chrono_clock",
        re.compile(r"std::chrono::\w*clock\w*::now"),
        "clock::now() in a result path breaks run-to-run reproducibility",
    ),
    (
        "std_hash",
        re.compile(r"std::hash\s*<"),
        "std::hash is implementation-defined; use the pinned Router::HashKey",
    ),
    (
        "unordered",
        re.compile(r"std::unordered_(?:map|set|multimap|multiset)\b"),
        "unordered container iteration order is implementation-defined; "
        "use std::map/std::vector",
    ),
    (
        "raw_mutex",
        re.compile(
            r"std::(?:mutex|shared_mutex|timed_mutex|recursive_mutex|"
            r"condition_variable\w*)\b"
        ),
        "raw std lock primitive; use the annotated wrappers in "
        "runtime/sync.h so clang -Wthread-safety can check it",
    ),
    (
        "io_memcpy",
        re.compile(r"(?<![\w.>:])(?:std::)?memcpy\s*\("),
        "raw memcpy in the io layer; float punning lives only in wire.cc's "
        "DoubleBits/DoubleFromBits — use the typed Writer/Reader calls",
        "src/io/",
    ),
    (
        "io_reinterpret_cast",
        re.compile(r"\breinterpret_cast\s*<"),
        "reinterpret_cast in the io layer; aliasing casts outside the "
        "audited codec (wire.cc) and POSIX call sites undermine the "
        "wire-format guarantees — use the typed Writer/Reader calls",
        "src/io/",
    ),
]

# (path relative to repo root, rule name) -> justification.
ALLOWLIST = {
    # The opt-in PrequentialConfig::timing stopwatch: measures elapsed time
    # *about* a finished run, never feeds a decision inside one.
    ("src/eval/engine.cc", "chrono_clock"):
        "opt-in wall-clock stopwatch reported beside results, not in them",
    # runtime/sync.h wraps the raw primitives; it is the one place they
    # may be spelled.
    ("src/runtime/sync.h", "raw_mutex"):
        "the annotated wrapper layer itself",
    # The deterministic simulation scheduler sits *beneath* the wrappers:
    # sync.h routes every operation to sim.cc when a Scheduler is active,
    # so the scheduler's own context-switch machinery (one global mutex,
    # per-task park/unpark condvars) must be the raw primitives — going
    # through the wrappers it intercepts would recurse. No scheduling
    # decision reads a clock, an address, or other ambient entropy; the
    # seed stream is the only decision input (tests/sim_test.cc pins the
    # schedule digest to prove it).
    ("src/runtime/sim.cc", "raw_mutex"):
        "the scheduler beneath the wrapper layer; routing through the "
        "wrappers it intercepts would recurse",
    # wire.cc *is* the audited codec: DoubleBits/DoubleFromBits do the one
    # sanctioned float<->u64 pun (memcpy, the defined-behavior spelling)
    # and LoadRawU32 reads bytes as unsigned char, which may alias anything.
    ("src/io/wire.cc", "io_memcpy"):
        "the codec's own defined-behavior float<->u64 punning",
    ("src/io/wire.cc", "io_reinterpret_cast"):
        "byte access via unsigned char*, the aliasing-safe read",
    # POSIX surfaces: read(2) wants char*, bind(2)/connect(2) want the
    # classic sockaddr* cast, sun_path is a char array to fill. None of
    # these bytes ever reach a result path.
    ("src/io/frame.cc", "io_reinterpret_cast"):
        "read(2) buffer pointer for the 4-byte length prefix",
    ("src/io/frame_server.cc", "io_memcpy"):
        "filling sockaddr_un::sun_path, a POSIX char array",
    ("src/io/frame_server.cc", "io_reinterpret_cast"):
        "the sockaddr* casts bind(2)/connect(2) require",
}

LINE_COMMENT = re.compile(r"//.*$")
BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
STRING_LIT = re.compile(r'"(?:[^"\\]|\\.)*"')


def strip_noise(text: str) -> str:
    """Blanks out comments and string literals, preserving line numbers."""

    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    text = BLOCK_COMMENT.sub(blank, text)
    out_lines = []
    for line in text.split("\n"):
        line = STRING_LIT.sub(lambda m: " " * len(m.group(0)), line)
        line = LINE_COMMENT.sub(lambda m: " " * len(m.group(0)), line)
        out_lines.append(line)
    return "\n".join(out_lines)


def lint_file(path: Path, repo: Path) -> list:
    rel = path.relative_to(repo).as_posix()
    text = strip_noise(path.read_text(encoding="utf-8"))
    findings = []
    for rule in RULES:
        name, pattern, message = rule[0], rule[1], rule[2]
        scope = rule[3] if len(rule) > 3 else None
        if scope is not None and not rel.startswith(scope):
            continue
        if (rel, name) in ALLOWLIST:
            continue
        for i, line in enumerate(text.split("\n"), start=1):
            if pattern.search(line):
                findings.append(f"{rel}:{i}: [{name}] {message}")
    return findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repo",
        type=Path,
        default=REPO,
        help="repo root to lint (scans <repo>/src; default: this repo). "
        "The self-test points this at fixture trees.",
    )
    args = parser.parse_args(argv)
    repo = args.repo.resolve()
    src = repo / "src"
    if not src.is_dir():
        print(f"lint_determinism: missing {src}", file=sys.stderr)
        return 2
    files = sorted(
        p for p in src.rglob("*") if p.suffix in {".h", ".cc", ".cpp", ".hpp"}
    )
    findings = []
    for path in files:
        findings.extend(lint_file(path, repo))
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"lint_determinism: {len(findings)} finding(s) in "
            f"{len(files)} files",
            file=sys.stderr,
        )
        return 1
    print(f"lint_determinism: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
