#!/usr/bin/env python3
"""Determinism & concurrency-hygiene lint for src/.

The reproduction's headline guarantee is bit-identical results for a given
(seed, config, stream) triple — across runs, thread counts, and shard
layouts.  That guarantee dies the moment hidden nondeterminism leaks into a
result path, so this lint bans the usual suspects at the source level:

  * std::random_device, rand()/srand()    — unseeded entropy.
  * time(NULL/nullptr/0)                  — wall-clock in logic.
  * std::chrono::*_clock::now()           — ditto, the C++ spelling.
  * std::hash                             — libstdc++/libc++ divergence and
                                            (for strings) per-process salt;
                                            routing uses the pinned
                                            Router::HashKey (FNV-1a) instead.
  * std::unordered_map / std::unordered_set
                                          — iteration order is
                                            implementation-defined; a
                                            range-for over one in a result
                                            path silently reorders output.
  * raw std::mutex / std::shared_mutex / std::condition_variable
                                          — every lock in src/ must be a
                                            capability-annotated wrapper
                                            from runtime/sync.h so clang's
                                            -Wthread-safety sees it.

Scope: src/ only.  tests/ and bench/ may measure wall-clock time and use
ad-hoc containers; they never feed result paths.

Allowlist: (file, token) pairs below grant narrow, justified exceptions.
Each entry must say *why* the use cannot bias results.

Exit status: 0 when clean, 1 with one "file:line: message" per finding.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# (rule name, compiled regex, message)
RULES = [
    (
        "random_device",
        re.compile(r"std::random_device"),
        "std::random_device is unseeded entropy; take the seed from config",
    ),
    (
        "c_rand",
        re.compile(r"(?<![\w.>:])s?rand\s*\("),
        "rand()/srand() is hidden global state; use a seeded std::mt19937",
    ),
    (
        "c_time",
        re.compile(r"(?<![\w.>:])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
        "time() is wall-clock; results must not depend on when they ran",
    ),
    (
        "chrono_clock",
        re.compile(r"std::chrono::\w*clock\w*::now"),
        "clock::now() in a result path breaks run-to-run reproducibility",
    ),
    (
        "std_hash",
        re.compile(r"std::hash\s*<"),
        "std::hash is implementation-defined; use the pinned Router::HashKey",
    ),
    (
        "unordered",
        re.compile(r"std::unordered_(?:map|set|multimap|multiset)\b"),
        "unordered container iteration order is implementation-defined; "
        "use std::map/std::vector",
    ),
    (
        "raw_mutex",
        re.compile(
            r"std::(?:mutex|shared_mutex|timed_mutex|recursive_mutex|"
            r"condition_variable\w*)\b"
        ),
        "raw std lock primitive; use the annotated wrappers in "
        "runtime/sync.h so clang -Wthread-safety can check it",
    ),
]

# (path relative to repo root, rule name) -> justification.
ALLOWLIST = {
    # The opt-in PrequentialConfig::timing stopwatch: measures elapsed time
    # *about* a finished run, never feeds a decision inside one.
    ("src/eval/engine.cc", "chrono_clock"):
        "opt-in wall-clock stopwatch reported beside results, not in them",
    # runtime/sync.h wraps the raw primitives; it is the one place they
    # may be spelled.
    ("src/runtime/sync.h", "raw_mutex"):
        "the annotated wrapper layer itself",
}

LINE_COMMENT = re.compile(r"//.*$")
BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
STRING_LIT = re.compile(r'"(?:[^"\\]|\\.)*"')


def strip_noise(text: str) -> str:
    """Blanks out comments and string literals, preserving line numbers."""

    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    text = BLOCK_COMMENT.sub(blank, text)
    out_lines = []
    for line in text.split("\n"):
        line = STRING_LIT.sub(lambda m: " " * len(m.group(0)), line)
        line = LINE_COMMENT.sub(lambda m: " " * len(m.group(0)), line)
        out_lines.append(line)
    return "\n".join(out_lines)


def lint_file(path: Path) -> list:
    rel = path.relative_to(REPO).as_posix()
    text = strip_noise(path.read_text(encoding="utf-8"))
    findings = []
    for name, pattern, message in RULES:
        if (rel, name) in ALLOWLIST:
            continue
        for i, line in enumerate(text.split("\n"), start=1):
            if pattern.search(line):
                findings.append(f"{rel}:{i}: [{name}] {message}")
    return findings


def main() -> int:
    if not SRC.is_dir():
        print(f"lint_determinism: missing {SRC}", file=sys.stderr)
        return 2
    files = sorted(
        p for p in SRC.rglob("*") if p.suffix in {".h", ".cc", ".cpp", ".hpp"}
    )
    findings = []
    for path in files:
        findings.extend(lint_file(path))
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"lint_determinism: {len(findings)} finding(s) in "
            f"{len(files)} files",
            file=sys.stderr,
        )
        return 1
    print(f"lint_determinism: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
