// statedump — inspect a persisted api::ShardedMonitor directory (or a
// single sealed state-image file) without loading it into a monitor.
//
//   statedump <directory>            # manifest + every shard file
//   statedump <directory> --verify   # also fully decode every image
//   statedump --image <file>         # one sealed .state image
//
// Either mode accepts --schema <tools/wire_schema.json>: every decoded
// image's raw tag stream is additionally cross-checked against the
// per-component wire grammars the static auditor pinned in the manifest
// (see src/io/schema_check.h) — catching decoder drift that CRCs are
// blind to, because a re-encoded-but-wrong blob still checksums fine.
//
// Prints the wire-format version, the fleet identity (classifier /
// detector registry names and params), per-shard counters and CRCs.
// Exit status: 0 when everything checks out, 2 on any corruption — a
// truncated file, a CRC mismatch, a foreign version, a schema mismatch —
// so the tool can gate a restore in scripts. All integrity failures are
// io::WireError; nothing here is allowed to crash on hostile bytes.

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "io/schema_check.h"
#include "io/snapshot_store.h"
#include "io/state_codec.h"
#include "io/wire.h"
#include "utils/cli.h"

namespace {

const char* ModeName(uint8_t mode) {
  return mode == 0 ? "hash-key" : "round-robin";
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ccd::io::WireError("file", 0, path + ": cannot open");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void PrintImage(const std::string& label, const ccd::io::StateImage& image) {
  const ccd::EngineSnapshot& s = image.state.snapshot;
  std::printf("%s\n", label.c_str());
  std::printf("  schema      %d features, %d classes (%s)\n",
              image.schema.num_features, image.schema.num_classes,
              image.schema.name.c_str());
  std::printf("  classifier  %s%s%s\n", image.classifier.c_str(),
              image.classifier_params.empty() ? "" : "  ",
              image.classifier_params.c_str());
  std::printf("  detector    %s%s%s\n",
              image.detector.empty() ? "(none)" : image.detector.c_str(),
              image.detector_params.empty() ? "" : "  ",
              image.detector_params.c_str());
  std::printf("  seed        %llu\n",
              static_cast<unsigned long long>(image.seed));
  std::printf(
      "  counters    position=%llu pending=%llu evicted=%llu "
      "unmatched=%llu drifts=%zu\n",
      static_cast<unsigned long long>(s.position),
      static_cast<unsigned long long>(s.pending),
      static_cast<unsigned long long>(s.evicted),
      static_cast<unsigned long long>(s.unmatched_labels),
      s.drift_log.size());
}

/// The --schema cross-check on one sealed blob. Returns the number of
/// mismatches (0 when conformant); prints each error.
int CheckAgainstSchema(const std::string& label, const std::string& bytes,
                       const std::map<std::string, std::string>& schema) {
  ccd::io::SchemaCheckReport report = ccd::io::CheckStateSchema(bytes, schema);
  if (report.ok()) {
    std::printf("  schema-ok   %d section(s) match the audited grammar\n",
                report.sections_matched);
    return 0;
  }
  for (const std::string& err : report.errors) {
    std::fprintf(stderr, "%s: schema mismatch: %s\n", label.c_str(),
                 err.c_str());
  }
  return static_cast<int>(report.errors.size());
}

/// Dump one sealed image file; returns the process exit code.
int DumpImage(const std::string& path, bool decoded_ok_only,
              const std::map<std::string, std::string>* schema) {
  const std::string bytes = ReadFileOrDie(path);
  ccd::io::StateImage image = ccd::io::DecodeStateImage(bytes);
  if (!decoded_ok_only) {
    std::printf("%s: sealed state image, format v%u, %zu bytes, crc %08x\n",
                path.c_str(), ccd::io::kFormatVersion, bytes.size(),
                ccd::io::Crc32(bytes.data(), bytes.size()));
    PrintImage("", image);
  }
  if (schema != nullptr && CheckAgainstSchema(path, bytes, *schema) != 0) {
    return 2;
  }
  return 0;
}

int DumpDirectory(const std::string& dir, bool verify,
                  const std::map<std::string, std::string>* schema) {
  ccd::io::SnapshotStore store(dir);
  const std::string manifest_bytes = store.Read(ccd::io::kManifestName);
  const ccd::io::Manifest m = ccd::io::DecodeManifest(manifest_bytes);

  std::printf("%s: persisted monitor, format v%u, generation %llu\n",
              dir.c_str(), ccd::io::kFormatVersion,
              static_cast<unsigned long long>(m.generation));
  std::printf("  schema      %d features, %d classes (%s)\n",
              m.schema.num_features, m.schema.num_classes,
              m.schema.name.c_str());
  std::printf("  classifier  %s%s%s\n", m.classifier.c_str(),
              m.classifier_params.empty() ? "" : "  ",
              m.classifier_params.c_str());
  std::printf("  detector    %s%s%s\n",
              m.detector.empty() ? "(none)" : m.detector.c_str(),
              m.detector_params.empty() ? "" : "  ",
              m.detector_params.c_str());
  std::printf("  routing     %s, %zu shard(s), pending capacity %llu\n",
              ModeName(m.mode), m.shards.size(),
              static_cast<unsigned long long>(m.pending_capacity));
  std::printf("  seed        %llu   completed_total %llu\n",
              static_cast<unsigned long long>(m.seed),
              static_cast<unsigned long long>(m.completed_total));

  int failures = 0;
  for (size_t i = 0; i < m.shards.size(); ++i) {
    const ccd::io::Manifest::ShardFile& f = m.shards[i];
    std::printf("  shard %-3zu   %s  %llu bytes  crc %08x", i, f.file.c_str(),
                static_cast<unsigned long long>(f.size), f.crc);
    try {
      const std::string bytes = store.Read(f.file);
      // Manifest CRCs are seeded with the shard index (see
      // ShardedMonitor::Persist) so swapped shard files fail here.
      if (bytes.size() != f.size ||
          ccd::io::Crc32(bytes.data(), bytes.size(),
                         static_cast<uint32_t>(i)) != f.crc) {
        throw ccd::io::WireError(
            f.file, 0, "shard file does not match its manifest entry");
      }
      if (verify) {
        ccd::io::StateImage image = ccd::io::DecodeStateImage(bytes);
        std::printf("  position=%llu drifts=%zu",
                    static_cast<unsigned long long>(
                        image.state.snapshot.position),
                    image.state.snapshot.drift_log.size());
      }
      std::printf("  ok\n");
      if (schema != nullptr &&
          CheckAgainstSchema(f.file, bytes, *schema) != 0) {
        ++failures;
      }
    } catch (const ccd::io::WireError& e) {
      std::printf("  CORRUPT: %s\n", e.what());
      ++failures;
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "%d of %zu shard file(s) failed verification\n",
                 failures, m.shards.size());
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  ccd::Cli cli(argc, argv);
  const bool verify = cli.Has("verify");
  const std::string image = cli.GetString("image", "");
  const std::string schema_path = cli.GetString("schema", "");
  std::map<std::string, std::string> schema;
  if (!schema_path.empty()) {
    schema = ccd::io::ParseWireSchema(ReadFileOrDie(schema_path));
  }
  const std::map<std::string, std::string>* schema_ptr =
      schema_path.empty() ? nullptr : &schema;
  if (!image.empty()) {
    return DumpImage(image, /*decoded_ok_only=*/false, schema_ptr);
  }
  if (cli.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: statedump <directory> [--verify]"
                 " [--schema tools/wire_schema.json]\n"
                 "       statedump --image <file>"
                 " [--schema tools/wire_schema.json]\n");
    return 1;
  }
  return DumpDirectory(cli.positional()[0], verify, schema_ptr);
} catch (const ccd::io::WireError& e) {
  std::fprintf(stderr, "corrupt: %s\n", e.what());
  return 2;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
