#!/usr/bin/env python3
"""State-surface completeness auditor for src/.

Every component in this repo maintains up to four parallel state-transfer
surfaces by hand: CloneState() (sharded handoff), SaveState()/LoadState()
(the durable wire format), and Snapshot()/Restore() (the engine's run
state). The determinism contract — bit-identical results across shard
layouts, crash-restores and cross-process SHIP/LOAD — dies the moment one
data member is forgotten on one of those paths, and nothing in the type
system notices. This auditor makes the contract machine-checked:

  1. Coverage  — for every class implementing any state surface, every
     non-static data member must be referenced in *every* surface the
     class implements. Genuinely derived/transient fields are skipped via
     an inline justified allowlist:  // ccd:state-skip(<field>, <reason>)
     placed inside the class body. Unjustified (empty/short reason),
     unknown-field and stale (field actually covered everywhere) skips
     are findings too, so the annotations stay honest.
  2. Symmetry  — SaveState and LoadState must issue the same sequence of
     typed wire calls (count, order, primitive type, section names, loop/
     conditional nesting). Reader::Count is the read of a Writer::U32
     length prefix and normalizes to U32; the io::Write*/Read* codec
     helper pairs and nested component SaveState/LoadState calls are
     matched as opaque typed units.
  3. Schema drift — each serialized class gets a canonical fingerprint
     (field set + wire call sequence) recorded in tools/wire_schema.json.
     A fingerprint change without bumping kStateSchemaVersion in
     src/io/codecs.h fails CI; bump the constant and re-run with
     --update to re-pin the manifest. The manifest also carries a
     per-class wire *pattern* (a regex over one tag character per wire
     primitive) that `statedump --verify --schema` checks decoded state
     images against (src/io/schema_check.cc).

Two interchangeable frontends produce the same intermediate model:

  * clang — drives `clang++ -Xclang -ast-dump=json` with the flags from
    the build's compile_commands.json (exported by every configure) and
    reads fields, member references and wire calls out of the AST. Used
    by the static-analysis CI job; requires a clang binary.
  * text  — a comment/string-aware tokenizer over the sources. No
    toolchain dependency, runs in the plain gcc container and in the
    ctest self-test (tests/state_audit_test.py) which proves both
    frontends and all three checks fire on known-bad fixtures.

`--frontend auto` (default) picks clang when both a clang++ binary and a
compile_commands.json are present, else text. The skip allowlist is
always collected textually — comments do not survive into the AST.

Exit status: 0 clean, 1 with findings, 2 usage/environment error.
"""

import argparse
import hashlib
import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# ------------------------------------------------------------ wire model

# Writer/Reader primitive methods -> canonical unit name. Reader::Count
# reads the U32 length prefix Writer::U32 wrote, so it normalizes to U32.
PRIMITIVES = {
    "U8": "U8", "U32": "U32", "U64": "U64", "I64": "I64", "F64": "F64",
    "Bool": "Bool", "String": "String", "Bytes": "Bytes",
    "F64Array": "F64Array", "Count": "U32",
}

# io/codecs.h helper pairs -> (unit, body tag-pattern). The tag pattern is
# the exact byte-level grammar the helper emits, one character per wire
# tag: b=u8 u=u32 q=u64 i=i64 d=f64 o=bool s=string y=bytes a=f64-array,
# ( ) = section open/close. Used for the manifest wire_pattern that
# statedump --schema re-checks against real state images.
HELPERS = {
    "WriteSchema": ("Schema", r"\(iis\)"),
    "ReadSchema": ("Schema", None),
    "WriteInstance": ("Instance", r"aid"),
    "ReadInstance": ("Instance", None),
    "WriteDetectorState": ("DetectorState", r"b"),
    "ReadDetectorState": ("DetectorState", None),
    "WriteWelford": ("Welford", r"qdd"),
    "ReadWelford": ("Welford", None),
    "WriteRng": ("Rng", r"qqod"),
    "ReadRngInto": ("Rng", None),
    "WriteTrend": ("Trend", r"qqu(?:qd)*dddd"),
    "ReadTrendInto": ("Trend", None),
    "WriteNormalizer": ("Normalizer", r"aao"),
    "ReadNormalizerInto": ("Normalizer", None),
    "WriteF64Deque": ("F64Deque", r"a"),
    "ReadF64Deque": ("F64Deque", None),
    "WriteBoolDeque": ("BoolDeque", r"ub*"),
    "ReadBoolDeque": ("BoolDeque", None),
    "WriteBoolVector": ("BoolVector", r"ub*"),
    "ReadBoolVector": ("BoolVector", None),
    "WriteI64Vector": ("I64Vector", r"ui*"),
    "ReadI64Vector": ("I64Vector", None),
    "WriteIntVector": ("IntVector", r"ui*"),
    "ReadIntVector": ("IntVector", None),
}

HELPER_PATTERNS = {unit: pat for unit, pat in HELPERS.values() if pat}
# A nested component SaveState/LoadState: dynamic type, opaque bytes.
HELPER_PATTERNS["Component"] = r".*"

PRIMITIVE_CHARS = {
    "U8": "b", "U32": "u", "U64": "q", "I64": "i", "F64": "d",
    "Bool": "o", "String": "s", "Bytes": "y", "F64Array": "a",
}

SURFACES = ("SaveState", "LoadState", "CloneState", "Snapshot", "Restore")

SKIP_RE = re.compile(r"//\s*ccd:state-skip\(\s*(\w+)\s*,\s*([^)]*)\)")
MIN_SKIP_REASON = 10  # characters; an empty or token reason is no reason


class WireCall:
    """One typed wire call inside a surface body."""

    def __init__(self, unit, loop, cond, section=None, path=()):
        self.unit = unit        # U8/../F64Array, Begin, End, or helper unit
        self.loop = loop        # enclosing loop nesting depth
        self.cond = cond        # enclosing conditional nesting depth
        self.section = section  # BeginSection name, when known
        # Identity path of the enclosing control frames, outermost first:
        # ((frame_id, "loop"|"cond"), ...). Distinguishes two *adjacent*
        # loops from one loop when reconstructing the wire grammar —
        # depths alone cannot. Frame ids differ between frontends; the
        # path feeds only the wire_pattern, never fingerprints.
        self.path = tuple(path)

    def sym_key(self):
        # Symmetry compares count, order, type, loop nesting and section
        # names. Conditional *shape* may legitimately differ: a writer
        # guards with `if (x == nullptr) continue;` where the reader
        # branches on `if (r.Bool(f)) { ... }`.
        return (self.unit, self.loop, self.section)

    def __repr__(self):
        tag = self.unit if self.section is None else (
            f"{self.unit}:{self.section}")
        mods = (f"|l{self.loop}" if self.loop else "") + (
            f"|c{self.cond}" if self.cond else "")
        return tag + mods


class Surface:
    def __init__(self, kind, file, line):
        self.kind = kind        # one of SURFACES
        self.file = file
        self.line = line
        self.refs = set()       # member names referenced in the body
        self.calls = []         # ordered list of WireCall
        self.whole_object = False  # body uses *this (copy-construction)
        self.has_body = False


class ClassModel:
    def __init__(self, name, file, line):
        self.name = name
        self.file = file        # file of the class definition
        self.line = line
        self.fields = []        # [(name, line)]
        self.surfaces = {}      # kind -> Surface
        self.skips = {}         # field -> (reason, file, line)

    def audited(self):
        kinds = set(self.surfaces)
        if kinds & {"SaveState", "LoadState", "CloneState"}:
            return True
        return {"Snapshot", "Restore"} <= kinds

    def serialized(self):
        save = self.surfaces.get("SaveState")
        return bool(save and save.has_body and save.calls)


# ------------------------------------------------------- source scanning

BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
LINE_COMMENT = re.compile(r"//[^\n]*")
STRING_LIT = re.compile(r'"(?:[^"\\\n]|\\.)*"')
CHAR_LIT = re.compile(r"'(?:[^'\\\n]|\\.)*'")


def _blank(match):
    return re.sub(r"[^\n]", " ", match.group(0))


def strip_comments(text):
    """Blanks comments, keeping strings and line numbers intact."""
    text = BLOCK_COMMENT.sub(_blank, text)
    return LINE_COMMENT.sub(_blank, text)


def strip_strings(text):
    text = STRING_LIT.sub(_blank, text)
    return CHAR_LIT.sub(_blank, text)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def match_brace(text, open_pos):
    """Index just past the brace matching text[open_pos] == '{'."""
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


CLASS_RE = re.compile(
    r"\b(class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^{;]*)?\{")
OUT_OF_LINE_RE = re.compile(
    r"\b(?:\w+\s*::\s*)*(\w+)\s*::\s*"
    r"(SaveState|LoadState|CloneState|Snapshot|Restore)\s*\(([^)]*)\)"
    r"\s*(?:const\s*)?(?:noexcept\s*)?\{")
IN_CLASS_METHOD_RE = re.compile(
    r"\b(SaveState|LoadState|CloneState|Snapshot|Restore)\s*\(([^)]*)\)")


def surface_signature_ok(kind, params):
    """The overload sets the auditor owns, by parameter text."""
    if kind == "SaveState":
        return "Writer" in params
    if kind == "LoadState":
        return "Reader" in params
    # CloneState/Snapshot()/Restore(snapshot) — any arity.
    return True


CALL_RE = re.compile(
    r"(?:([A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)\s*(?:\.|->)\s*)?"
    r"\b([A-Za-z_]\w*)\s*\(")
CONTROL_KEYWORDS = ("for", "while", "if", "switch", "do")


def control_frames(body):
    """Control-flow frames of a body: [(start, end, kind)] in source order.

    A control keyword opens a frame covering its statement or brace
    block; `for`/`while`/`do` frames are "loop" frames and include their
    header (it re-executes every iteration), `if`/`switch`/`else` are
    "cond" frames covering only the dependent statement — a call in an
    if *condition* executes unconditionally (`if (r.Bool(f))` must pair
    with the writer's unconditional `w.Bool(x)`). Matches the clang
    frontend's rule. Ternaries are not tracked (no wire call in this
    codebase sits under one; the self-test pins the supported shapes).
    """
    n = len(body)
    frames = []
    for m in re.finditer(r"\b(for|while|if|switch|do|else)\b", body):
        kw = m.group(1)
        pos = m.end()
        # Header parens (absent for `do` and `else`).
        if kw not in ("do", "else"):
            paren = body.find("(", pos)
            if paren < 0:
                continue
            depth = 0
            i = paren
            while i < n:
                if body[i] == "(":
                    depth += 1
                elif body[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            pos = i + 1
        # Body: next non-space char opens a block or a single statement.
        j = pos
        while j < n and body[j].isspace():
            j += 1
        if j < n and body[j] == "{":
            end = match_brace(body, j)
        else:
            end = body.find(";", j)
            end = n if end < 0 else end + 1
        is_loop = kw in ("for", "while", "do")
        start = m.start() if is_loop else pos
        frames.append((start, min(end, n), "loop" if is_loop else "cond"))
    return frames


def frame_path(frames, pos):
    """The frames containing `pos`, outermost first, as WireCall.path."""
    inside = [
        (start, end, kind, idx)
        for idx, (start, end, kind) in enumerate(frames)
        if start <= pos < end]
    inside.sort(key=lambda f: (f[0], -f[1]))
    return tuple((idx, kind) for _, _, kind, idx in inside)


def repo_rel(path):
    try:
        return path.resolve().relative_to(REPO).as_posix()
    except ValueError:
        return path.as_posix()


def section_name_at(text_with_strings, pos):
    m = re.compile(r'\(\s*"((?:[^"\\]|\\.)*)"').match(text_with_strings, pos)
    return m.group(1) if m else None


def extract_calls(body_nostr, body_str):
    """Ordered WireCalls from one surface body.

    `body_nostr` has comments+strings blanked (drives matching);
    `body_str` keeps strings (section names).
    """
    frames = control_frames(body_nostr)
    calls = []
    for m in CALL_RE.finditer(body_nostr):
        base, name = m.group(1), m.group(2)
        at = m.start(2)
        path = frame_path(frames, at)
        loop = sum(1 for _, kind in path if kind == "loop")
        cond = sum(1 for _, kind in path if kind == "cond")
        if name in PRIMITIVES and base is not None:
            calls.append(WireCall(PRIMITIVES[name], loop, cond, path=path))
        elif name == "BeginSection":
            paren = body_nostr.find("(", m.end(2))
            calls.append(
                WireCall("Begin", loop, cond,
                         section_name_at(body_str, paren), path=path))
        elif name == "EndSection":
            calls.append(WireCall("End", loop, cond, path=path))
        elif name in HELPERS:
            calls.append(WireCall(HELPERS[name][0], loop, cond, path=path))
        elif name in ("SaveState", "LoadState") and base is not None:
            # Nested component state: rbm_.SaveState(w), perc->LoadState(r).
            calls.append(WireCall("Component", loop, cond, path=path))
    return calls


def extract_refs(body_nostr, field_names):
    idents = set(re.findall(r"[A-Za-z_]\w*", body_nostr))
    return idents & field_names


WHOLE_OBJECT_RE = re.compile(r"\*\s*this\b")

FIELD_STMT_SKIP = re.compile(
    r"^\s*(public|private|protected|using|typedef|friend|static|enum|class|"
    r"struct|template|constexpr|explicit|virtual|operator)\b")


def split_declarators(stmt):
    """Top-level comma split of a declaration statement's declarators."""
    parts = []
    depth = 0
    angle = 0
    cur = []
    for c in stmt:
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "<":
            angle += 1
        elif c == ">":
            angle = max(0, angle - 1)
        elif c == "," and depth == 0 and angle == 0:
            parts.append("".join(cur))
            cur = []
            continue
        cur.append(c)
    parts.append("".join(cur))
    return parts


def has_toplevel_paren(stmt):
    angle = 0
    brace = 0
    for c in stmt:
        if c == "<":
            angle += 1
        elif c == ">":
            angle = max(0, angle - 1)
        elif c == "{":
            brace += 1
        elif c == "}":
            brace = max(0, brace - 1)
        elif c == "(" and angle == 0 and brace == 0:
            return True
    return False


def parse_fields(class_body_nostr, body_offset, full_text):
    """Non-static data members declared at class-body depth 1."""
    fields = []
    i = 0
    n = len(class_body_nostr)
    stmt_start = 0
    while i < n:
        c = class_body_nostr[i]
        if c == "{":
            end = match_brace(class_body_nostr, i)
            # Next non-space char: ';' or ',' or '=' continues a
            # brace-initialized declarator; anything else means this was
            # a method body / nested class — drop the pending statement.
            j = end
            while j < n and class_body_nostr[j].isspace():
                j += 1
            if j < n and class_body_nostr[j] in ";,=":
                i = end
                continue
            i = end
            stmt_start = i
            continue
        if c == ";":
            stmt = class_body_nostr[stmt_start:i]
            stmt_clean = re.sub(r"\{[^{}]*\}", "", stmt)
            if (stmt_clean.strip() and not FIELD_STMT_SKIP.match(stmt_clean)
                    and not has_toplevel_paren(stmt_clean)):
                for idx, decl in enumerate(split_declarators(stmt_clean)):
                    decl = re.split(r"=", decl, maxsplit=1)[0]
                    decl = re.sub(r"\[[^\]]*\]", "", decl)
                    words = re.findall(r"[A-Za-z_]\w*", decl)
                    # Later declarators of `double a_ = 0, b_ = 0;` carry
                    # only the name, no type.
                    if len(words) >= 2 or (idx > 0 and words):
                        fields.append(
                            (words[-1],
                             line_of(full_text, body_offset + stmt_start)))
            stmt_start = i + 1
        i += 1
    return fields


def text_frontend(files, classes):
    """Tokenizer frontend: fills `classes` (name -> ClassModel)."""
    for path in files:
        rel = repo_rel(path)
        raw = path.read_text(encoding="utf-8")
        nocomment = strip_comments(raw)
        nostr = strip_strings(nocomment)

        # Class definitions (and in-class surface bodies + fields).
        for cm in CLASS_RE.finditer(nostr):
            if re.search(r"\benum\s*$", nostr[: cm.start()]):
                continue
            name = cm.group(2)
            open_brace = cm.end() - 1
            close = match_brace(nostr, open_brace)
            body = nostr[open_brace + 1: close - 1]
            body_off = open_brace + 1
            model = classes.get(name)
            if model is None:
                model = classes[name] = ClassModel(
                    name, rel, line_of(raw, cm.start()))
            if not getattr(model, "defined", False):
                # The class *definition* (not an out-of-line method seen
                # earlier) owns the reported location and the field list.
                model.defined = True
                model.file = rel
                model.line = line_of(raw, cm.start())
                model.fields = parse_fields(body, body_off, raw)
            # Skip annotations live inside the class body (raw text —
            # comments were blanked above).
            raw_body = raw[body_off: close - 1]
            for sm in SKIP_RE.finditer(raw_body):
                model.skips[sm.group(1)] = (
                    sm.group(2).strip(), rel,
                    line_of(raw, body_off + sm.start()))
            # In-class surface definitions/declarations at any depth-1 spot.
            for mm in IN_CLASS_METHOD_RE.finditer(body):
                kind, params = mm.group(1), mm.group(2)
                if not surface_signature_ok(kind, params):
                    continue
                # Body or declaration?
                after = body.find("{", mm.end())
                semi = body.find(";", mm.end())
                line = line_of(raw, body_off + mm.start())
                surface = model.surfaces.setdefault(
                    kind, Surface(kind, rel, line))
                if after != -1 and (semi == -1 or after < semi):
                    b_end = match_brace(body, after)
                    _fill_surface(surface, body[after:b_end],
                                  nocomment[body_off + after:
                                            body_off + b_end])

        # Out-of-line definitions: Class::Surface(...) { ... }
        for om in OUT_OF_LINE_RE.finditer(nostr):
            cls, kind, params = om.group(1), om.group(2), om.group(3)
            if not surface_signature_ok(kind, params):
                continue
            open_brace = nostr.find("{", om.end() - 1)
            b_end = match_brace(nostr, open_brace)
            model = classes.setdefault(
                cls, ClassModel(cls, rel, line_of(raw, om.start())))
            surface = model.surfaces.setdefault(
                kind, Surface(kind, rel, line_of(raw, om.start())))
            surface.file = rel
            surface.line = line_of(raw, om.start())
            _fill_surface(surface, nostr[open_brace:b_end],
                          nocomment[open_brace:b_end])


def _fill_surface(surface, body_nostr, body_str):
    surface.has_body = True
    surface.calls = extract_calls(body_nostr, body_str)
    surface.whole_object = bool(WHOLE_OBJECT_RE.search(body_nostr))
    surface._body_nostr = body_nostr  # refs resolved once fields are known


def resolve_refs(classes):
    for model in classes.values():
        names = {f for f, _ in model.fields}
        for surface in model.surfaces.values():
            body = getattr(surface, "_body_nostr", None)
            if body is not None:
                surface.refs = extract_refs(body, names)


# ------------------------------------------------------- clang frontend

def clang_available():
    return shutil.which("clang++") is not None


class ClangTU:
    """Field/surface extraction from one `-ast-dump=json` translation unit."""

    def __init__(self, root, want_classes):
        self.want = want_classes
        self.classes = {}       # name -> ClassModel
        self.field_ids = {}     # AST node id -> (class name, field name)
        self.class_ids = {}     # AST node id -> class name
        self.method_class = {}  # method node id -> class name
        self._collect(root)

    def _collect(self, node, parent_class=None):
        if not isinstance(node, dict):
            return
        kind = node.get("kind")
        if kind == "CXXRecordDecl" and node.get("completeDefinition"):
            name = node.get("name")
            if name in self.want:
                self._read_class(node)
                return  # _read_class recursed already
        for child in node.get("inner", []) or []:
            self._collect(child)
        # Out-of-line definitions are CXXMethodDecl at namespace scope
        # linked to the class by parentDeclContextId.
        if kind == "CXXMethodDecl" and node.get("name") in SURFACES:
            cls = self.class_ids.get(node.get("parentDeclContextId"))
            if cls is None:
                prev = self.method_class.get(node.get("previousDecl"))
                cls = prev
            if cls is not None and self._has_body(node):
                self._read_surface(self.classes[cls], node)

    def _read_class(self, node):
        name = node["name"]
        loc = node.get("loc", {}) or {}
        model = self.classes.setdefault(
            name, ClassModel(name, loc.get("file", "?"),
                             loc.get("line", 0)))
        self.class_ids[node.get("id")] = name
        for child in node.get("inner", []) or []:
            ckind = child.get("kind")
            if ckind == "FieldDecl" and child.get("name"):
                model.fields.append(
                    (child["name"],
                     (child.get("loc", {}) or {}).get("line", 0)))
                self.field_ids[child.get("id")] = (name, child["name"])
            elif (ckind == "CXXMethodDecl"
                  and child.get("name") in SURFACES):
                self.method_class[child.get("id")] = name
                params = self._param_types(child)
                if not surface_signature_ok(child["name"], params):
                    continue
                model.surfaces.setdefault(
                    child["name"],
                    Surface(child["name"], model.file,
                            (child.get("loc", {}) or {}).get("line", 0)))
                if self._has_body(child):
                    self._read_surface(model, child)
            elif ckind == "CXXRecordDecl" and child.get(
                    "completeDefinition"):
                if child.get("name") in self.want:
                    self._read_class(child)

    @staticmethod
    def _param_types(method):
        types = []
        for child in method.get("inner", []) or []:
            if child.get("kind") == "ParmVarDecl":
                types.append(
                    (child.get("type", {}) or {}).get("qualType", ""))
        return " ".join(types)

    @staticmethod
    def _has_body(method):
        return any(c.get("kind") == "CompoundStmt"
                   for c in method.get("inner", []) or [])

    def _read_surface(self, model, method):
        kind = method["name"]
        params = self._param_types(method)
        if not surface_signature_ok(kind, params):
            return
        surface = model.surfaces.setdefault(
            kind, Surface(kind, model.file,
                          (method.get("loc", {}) or {}).get("line", 0)))
        surface.has_body = True
        surface.calls = []
        surface.refs = set()
        for child in method.get("inner", []) or []:
            if child.get("kind") == "CompoundStmt":
                self._walk_body(child, model, surface, ())

    LOOP_KINDS = {"ForStmt", "WhileStmt", "DoStmt", "CXXForRangeStmt"}
    COND_KINDS = {"IfStmt", "SwitchStmt", "ConditionalOperator"}

    def _walk_body(self, node, model, surface, path):
        if not isinstance(node, dict):
            return
        kind = node.get("kind")
        if kind in self.LOOP_KINDS:
            path = path + ((node.get("id", id(node)), "loop"),)
        if kind == "MemberExpr":
            ref = self.field_ids.get(node.get("referencedMemberDecl"))
            if ref and ref[0] == model.name:
                surface.refs.add(ref[1])
        if kind == "UnaryOperator" and node.get("opcode") == "Deref":
            if any(c.get("kind") == "CXXThisExpr"
                   for c in node.get("inner", []) or []):
                surface.whole_object = True
        call = self._classify_call(node)
        if call is not None:
            unit, section = call
            loop = sum(1 for _, k in path if k == "loop")
            cond = sum(1 for _, k in path if k == "cond")
            surface.calls.append(
                WireCall(unit, loop, cond, section, path=path))
        inner = node.get("inner", []) or []
        for i, child in enumerate(inner):
            # A condition executes unconditionally: only the dependent
            # branches of if/switch/?: take the conditional frame (the
            # text frontend applies the same rule to if/switch headers).
            child_path = path
            if kind in self.COND_KINDS and i > 0:
                child_path = path + ((node.get("id", id(node)), "cond"),)
            self._walk_body(child, model, surface, child_path)

    def _classify_call(self, node):
        kind = node.get("kind")
        inner = node.get("inner", []) or []
        if kind == "CXXMemberCallExpr" and inner:
            callee = inner[0]
            if callee.get("kind") != "MemberExpr":
                return None
            name = callee.get("name")
            base_type = ""
            for c in callee.get("inner", []) or []:
                base_type = (c.get("type", {}) or {}).get("qualType", "")
                break
            on_wire = "Writer" in base_type or "Reader" in base_type
            if name in PRIMITIVES and on_wire:
                return (PRIMITIVES[name], None)
            if name == "BeginSection" and on_wire:
                return ("Begin", self._string_arg(inner[1:]))
            if name == "EndSection" and on_wire:
                return ("End", None)
            if name in ("SaveState", "LoadState") and not on_wire:
                return ("Component", None)
            return None
        if kind == "CallExpr" and inner:
            name = self._callee_name(inner[0])
            if name in HELPERS:
                return (HELPERS[name][0], None)
        return None

    def _callee_name(self, node):
        if not isinstance(node, dict):
            return None
        if node.get("kind") == "DeclRefExpr":
            return (node.get("referencedDecl", {}) or {}).get("name")
        for child in node.get("inner", []) or []:
            name = self._callee_name(child)
            if name:
                return name
        return None

    def _string_arg(self, nodes):
        for node in nodes:
            lit = self._find_string(node)
            if lit is not None:
                return lit
        return None

    def _find_string(self, node):
        if not isinstance(node, dict):
            return None
        if node.get("kind") == "StringLiteral":
            value = node.get("value", "")
            return value[1:-1] if value.startswith('"') else value
        for child in node.get("inner", []) or []:
            lit = self._find_string(child)
            if lit is not None:
                return lit
        return None


def load_compile_commands(build_dir):
    cc = Path(build_dir) / "compile_commands.json"
    if not cc.is_file():
        return None
    entries = {}
    for entry in json.loads(cc.read_text()):
        entries[Path(entry["file"]).resolve()] = entry
    return entries


def tu_for_file(path, compile_commands):
    """The translation unit whose AST covers `path`."""
    resolved = path.resolve()
    if resolved in compile_commands:
        return resolved
    if path.suffix in (".h", ".hpp"):
        sibling = path.with_suffix(".cc").resolve()
        if sibling in compile_commands:
            return sibling
    return None


def clang_ast(entry):
    args = entry.get("arguments")
    if not args:
        args = entry["command"].split()
    cmd = ["clang++", "-fsyntax-only", "-Xclang", "-ast-dump=json"]
    skip_next = False
    for arg in args[1:]:
        if skip_next:
            skip_next = False
            continue
        if arg in ("-c", args[0]):
            continue
        if arg == "-o":
            skip_next = True
            continue
        if arg == entry["file"]:
            continue
        cmd.append(arg)
    cmd.append(entry["file"])
    proc = subprocess.run(cmd, cwd=entry.get("directory", "."),
                          capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"clang AST dump failed for {entry['file']}:\n{proc.stderr}")
    return json.loads(proc.stdout)


def clang_frontend(files, classes, build_dir):
    """Re-derives fields/surfaces from clang ASTs, replacing the text
    model's semantic facts (skips stay textual)."""
    compile_commands = load_compile_commands(build_dir)
    if compile_commands is None:
        raise RuntimeError(
            f"no compile_commands.json under {build_dir} "
            "(configure with cmake first)")
    audited_names = {m.name for m in classes.values() if m.audited()}
    tus = {}
    for model in classes.values():
        if not model.audited():
            continue
        for cand in {model.file} | {
                s.file for s in model.surfaces.values()}:
            tu = tu_for_file(REPO / cand, compile_commands)
            if tu is not None:
                tus[tu] = compile_commands[tu]
    fresh = {}
    for tu in sorted(tus):
        ast = clang_ast(tus[tu])
        parsed = ClangTU(ast, audited_names)
        for name, model in parsed.classes.items():
            have = fresh.get(name)
            if have is None:
                fresh[name] = model
            else:
                # Merge surfaces found in another TU (defs split across
                # files); fields come from whichever saw the definition.
                for kind, surface in model.surfaces.items():
                    if surface.has_body or kind not in have.surfaces:
                        have.surfaces[kind] = surface
                if not have.fields:
                    have.fields = model.fields
    for name, model in fresh.items():
        old = classes.get(name)
        if old is not None:
            model.skips = old.skips
        classes[name] = model
    missing = audited_names - set(fresh)
    if missing:
        raise RuntimeError(
            "clang frontend lost audited classes (no TU found?): "
            + ", ".join(sorted(missing)))


# -------------------------------------------------------------- checks

def check_coverage(model, findings):
    skips_used = set()
    for kind, surface in sorted(model.surfaces.items()):
        if not surface.has_body:
            # Declared-but-undefined (e.g. pure/defaulted elsewhere):
            # nothing to check against.
            continue
        if surface.whole_object:
            continue  # copy-construction covers every member
        for field, line in model.fields:
            if field in model.skips:
                skips_used.add(field)
                continue
            if field not in surface.refs:
                findings.append(
                    f"{surface.file}:{surface.line}: [state-coverage] "
                    f"{model.name}::{field} (declared at "
                    f"{model.file}:{line}) is not referenced in {kind}(); "
                    f"add it or annotate the field with "
                    f"// ccd:state-skip({field}, <why it need not move>)")
    field_names = {f for f, _ in model.fields}
    for field, (reason, file, line) in sorted(model.skips.items()):
        if field not in field_names:
            findings.append(
                f"{file}:{line}: [state-skip] ccd:state-skip names "
                f"unknown field '{field}' of {model.name}")
            continue
        if len(reason) < MIN_SKIP_REASON:
            findings.append(
                f"{file}:{line}: [state-skip] unjustified skip for "
                f"{model.name}::{field}: reason '{reason}' is too short "
                f"to justify anything")
            continue
        covered = [
            kind for kind, s in model.surfaces.items()
            if s.has_body and not s.whole_object]
        if covered and all(
                field in model.surfaces[k].refs for k in covered):
            findings.append(
                f"{file}:{line}: [state-skip] stale skip: "
                f"{model.name}::{field} is referenced in every "
                f"implemented surface; drop the annotation")


def check_symmetry(model, findings):
    save = model.surfaces.get("SaveState")
    load = model.surfaces.get("LoadState")
    if not (save and load and save.has_body and load.has_body):
        return
    s_seq = [c.sym_key() for c in save.calls]
    l_seq = [c.sym_key() for c in load.calls]
    if s_seq == l_seq:
        return
    # Pinpoint the first divergence for the report.
    at = next((i for i, (a, b) in enumerate(zip(s_seq, l_seq)) if a != b),
              min(len(s_seq), len(l_seq)))
    s_at = save.calls[at] if at < len(s_seq) else "<end>"
    l_at = load.calls[at] if at < len(l_seq) else "<end>"
    findings.append(
        f"{load.file}:{load.line}: [save-load-symmetry] {model.name}: "
        f"SaveState writes {len(s_seq)} wire value(s), LoadState reads "
        f"{len(l_seq)}; first divergence at call {at + 1}: "
        f"SaveState={s_at!r} vs LoadState={l_at!r}")


def wire_pattern(calls):
    """Superset regex (one char per wire tag) for a Save sequence.

    Rebuilds the loop/conditional nesting from each call's control-frame
    path: entering a loop frame opens a `(?:` group closed with `)*`,
    a conditional frame one closed with `)?`. The result is a superset
    of the exact emission grammar — every real emission matches, some
    impossible ones too (e.g. per-iteration counts are not related back
    to their length prefixes). That is the right polarity for a
    conformance check.
    """
    out = []
    stack = []  # the currently open frames, outermost first

    def close_to(common):
        while len(stack) > common:
            _, kind = stack.pop()
            out.append(")*" if kind == "loop" else ")?")

    for call in calls:
        path = list(call.path)
        common = 0
        while (common < len(stack) and common < len(path)
               and stack[common] == path[common]):
            common += 1
        close_to(common)
        for frame in path[common:]:
            stack.append(frame)
            out.append("(?:")
        if call.unit == "Begin":
            out.append(r"\(")
        elif call.unit == "End":
            out.append(r"\)")
        else:
            out.append(PRIMITIVE_CHARS.get(call.unit)
                       or HELPER_PATTERNS.get(call.unit, ""))
    close_to(0)
    return "".join(out)


def fingerprint(model):
    # Only the serialized surface is fingerprinted: unskipped members plus
    # the exact SaveState call sequence. Justified-skip scratch members are
    # excluded — they never reach the wire, so adding one must not demand a
    # kStateSchemaVersion bump (the coverage check still forces every new
    # member to be either serialized or explicitly skip-annotated).
    save = model.surfaces["SaveState"]
    payload = {
        "fields": sorted(
            f for f, _ in model.fields if f not in model.skips),
        "save_sequence": [repr(c) for c in save.calls],
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()
    return payload, digest


def manifest_entry(model):
    save = model.surfaces["SaveState"]
    payload, digest = fingerprint(model)
    section = next(
        (c.section for c in save.calls if c.unit == "Begin"), None)
    inner = [c for c in save.calls[1:-1]] if section else save.calls
    return {
        "section": section,
        "fields": payload["fields"],
        "save_sequence": payload["save_sequence"],
        "wire_pattern": "^" + wire_pattern(inner) + "$",
        "fingerprint": "sha256:" + digest,
    }


def read_wire_version(header_path, findings):
    text = Path(header_path).read_text(encoding="utf-8")
    m = re.search(r"kStateSchemaVersion\s*=\s*(\d+)", text)
    if not m:
        findings.append(
            f"{header_path}: [schema-drift] kStateSchemaVersion constant "
            f"not found")
        return None
    return int(m.group(1))


def check_manifest(classes, manifest_path, header_path, findings):
    current = {
        m.name: manifest_entry(m)
        for m in classes.values() if m.audited() and m.serialized()}
    version = read_wire_version(header_path, findings)
    if version is None:
        return current, None
    path = Path(manifest_path)
    if not path.is_file():
        findings.append(
            f"{manifest_path}: [schema-drift] manifest missing; run "
            f"state_audit.py --update to create it")
        return current, version
    try:
        stored = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as err:
        findings.append(
            f"{manifest_path}: [schema-drift] unreadable manifest: {err}")
        return current, version
    stored_classes = stored.get("classes", {})
    stored_version = stored.get("wire_version")
    drift = []
    for name in sorted(set(current) | set(stored_classes)):
        if name not in stored_classes:
            drift.append(f"{name} is new (not in manifest)")
        elif name not in current:
            drift.append(f"{name} vanished from the tree")
        elif (stored_classes[name].get("fingerprint")
              != current[name]["fingerprint"]):
            old_fields = set(stored_classes[name].get("fields", []))
            new_fields = set(current[name]["fields"])
            delta = []
            if new_fields - old_fields:
                delta.append("+" + ",".join(sorted(new_fields - old_fields)))
            if old_fields - new_fields:
                delta.append("-" + ",".join(sorted(old_fields - new_fields)))
            what = " ".join(delta) if delta else "wire sequence changed"
            drift.append(f"{name} changed ({what})")
    if drift:
        if stored_version == version:
            for item in drift:
                findings.append(
                    f"{manifest_path}: [schema-drift] {item}, but "
                    f"kStateSchemaVersion is still {version}; bump it in "
                    f"src/io/codecs.h and re-run "
                    f"tools/state_audit.py --update")
        else:
            findings.append(
                f"{manifest_path}: [schema-drift] field schemas changed "
                f"and kStateSchemaVersion was bumped "
                f"({stored_version} -> {version}); re-run "
                f"tools/state_audit.py --update to re-pin the manifest")
    elif stored_version != version:
        findings.append(
            f"{manifest_path}: [schema-drift] manifest pinned at wire "
            f"version {stored_version} but kStateSchemaVersion is "
            f"{version}; re-run tools/state_audit.py --update")
    return current, version


def write_manifest(classes, manifest_path, header_path):
    findings = []
    current = {
        m.name: manifest_entry(m)
        for m in classes.values() if m.audited() and m.serialized()}
    version = read_wire_version(header_path, findings)
    if findings:
        return findings
    path = Path(manifest_path)
    if path.is_file():
        try:
            stored = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            stored = {}
        stored_classes = stored.get("classes", {})
        changed = any(
            stored_classes.get(n, {}).get("fingerprint")
            != e["fingerprint"]
            for n, e in current.items()) or set(stored_classes) != set(
                current)
        if changed and stored.get("wire_version") == version:
            return [
                f"{manifest_path}: [schema-drift] refusing --update: "
                f"field schemas changed but kStateSchemaVersion is still "
                f"{version}; bump it in src/io/codecs.h first"]
    doc = {
        "_comment": (
            "Generated by tools/state_audit.py --update. Canonical "
            "per-class field schemas and wire grammars; CI fails when "
            "these drift without a kStateSchemaVersion bump."),
        "wire_version": version,
        "classes": {n: current[n] for n in sorted(current)},
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n",
                    encoding="utf-8")
    print(f"state_audit: wrote {manifest_path} "
          f"({len(current)} classes at wire version {version})")
    return []


# ---------------------------------------------------------------- main

def gather_files(src):
    return sorted(
        p for p in Path(src).rglob("*")
        if p.suffix in (".h", ".hh", ".hpp", ".cc", ".cpp"))


def build_model(args):
    files = gather_files(args.src)
    if not files:
        raise RuntimeError(f"no C++ sources under {args.src}")
    classes = {}
    text_frontend(files, classes)
    frontend = args.frontend
    if frontend == "auto":
        frontend = "clang" if (
            clang_available()
            and load_compile_commands(args.build) is not None) else "text"
    if frontend == "clang":
        if not clang_available():
            raise RuntimeError("--frontend clang: no clang++ binary found")
        clang_frontend(files, classes, args.build)
    resolve_refs(classes)
    return classes, frontend, len(files)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="State-surface completeness auditor")
    parser.add_argument("--src", default=str(REPO / "src"),
                        help="source tree to audit")
    parser.add_argument("--manifest",
                        default=str(REPO / "tools" / "wire_schema.json"))
    parser.add_argument("--wire-header",
                        default=str(REPO / "src" / "io" / "codecs.h"),
                        help="header holding kStateSchemaVersion")
    parser.add_argument("--build", default=str(REPO / "build"),
                        help="build dir with compile_commands.json")
    parser.add_argument("--frontend",
                        choices=("auto", "clang", "text"), default="auto")
    parser.add_argument("--update", action="store_true",
                        help="re-pin the schema manifest (requires a "
                             "version bump when fingerprints changed)")
    parser.add_argument("--list", action="store_true",
                        help="print the audited classes and exit")
    args = parser.parse_args(argv)

    try:
        classes, frontend, nfiles = build_model(args)
    except RuntimeError as err:
        print(f"state_audit: {err}", file=sys.stderr)
        return 2

    audited = sorted(
        (m for m in classes.values() if m.audited()),
        key=lambda m: m.name)
    if args.list:
        for model in audited:
            kinds = ",".join(sorted(model.surfaces))
            print(f"{model.name} ({model.file}): {len(model.fields)} "
                  f"fields; surfaces: {kinds}"
                  + ("; serialized" if model.serialized() else ""))
        return 0

    if args.update:
        errors = write_manifest(classes, args.manifest, args.wire_header)
        for err in errors:
            print(err)
        return 1 if errors else 0

    findings = []
    for model in audited:
        check_coverage(model, findings)
        check_symmetry(model, findings)
    check_manifest(classes, args.manifest, args.wire_header, findings)

    for finding in findings:
        print(finding)
    if findings:
        print(
            f"state_audit[{frontend}]: {len(findings)} finding(s) over "
            f"{len(audited)} audited classes in {nfiles} files",
            file=sys.stderr)
        return 1
    serialized = sum(1 for m in audited if m.serialized())
    print(f"state_audit[{frontend}]: clean — {len(audited)} audited "
          f"classes ({serialized} serialized) in {nfiles} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
