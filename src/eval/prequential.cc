#include "eval/prequential.h"

#include <chrono>
#include <stdexcept>
#include <string>

#include "eval/metrics.h"

namespace ccd {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

void ValidatePrequentialConfig(const PrequentialConfig& config) {
  if (config.eval_interval <= 0) {
    throw std::invalid_argument(
        "PrequentialConfig.eval_interval must be >= 1 (got " +
        std::to_string(config.eval_interval) + ")");
  }
  if (config.metric_window <= 0) {
    throw std::invalid_argument(
        "PrequentialConfig.metric_window must be >= 1 (got " +
        std::to_string(config.metric_window) + ")");
  }
}

PrequentialResult RunPrequential(InstanceStream* stream,
                                 OnlineClassifier* classifier,
                                 DriftDetector* detector,
                                 const PrequentialConfig& config) {
  ValidatePrequentialConfig(config);
  PrequentialResult result;
  const StreamSchema& schema = stream->schema();
  WindowedMetrics metrics(schema.num_classes, config.metric_window);
  result.class_counts.assign(
      schema.num_classes > 0 ? static_cast<size_t>(schema.num_classes) : 0, 0);

  double sum_pmauc = 0.0, sum_pmgm = 0.0, sum_acc = 0.0, sum_kappa = 0.0;
  uint64_t samples = 0;

  for (uint64_t i = 0; i < config.max_instances; ++i) {
    Instance instance = stream->Next();
    ++result.instances;
    if (instance.label >= 0 &&
        static_cast<size_t>(instance.label) < result.class_counts.size()) {
      ++result.class_counts[static_cast<size_t>(instance.label)];
    }

    if (i < config.warmup) {
      classifier->Train(instance);
      // Let trainable detectors see warmup data too (the paper trains
      // RBM-IM on the first batches before monitoring).
      if (detector != nullptr) {
        detector->Observe(instance, instance.label, {});
        // Consume (and discard) any drift signaled on warmup data. A
        // detector whose drift flag latches until read would otherwise
        // carry a warmup alarm into the first measured instance and force
        // a spurious classifier reset there.
        (void)detector->state();
      }
      continue;
    }

    std::vector<double> scores = classifier->PredictScores(instance);
    // Argmax over the scores; an empty or short vector is legal (missing
    // support counts as zero), so an all-missing prediction is class 0.
    int predicted = 0;
    for (size_t c = 1; c < scores.size(); ++c) {
      if (scores[c] > scores[predicted]) predicted = static_cast<int>(c);
    }
    metrics.Add(instance.label, predicted, scores);

    if (detector != nullptr) {
      if (config.timing) {
        auto t0 = Clock::now();
        detector->Observe(instance, predicted, scores);
        result.detector_seconds += Seconds(t0, Clock::now());
      } else {
        detector->Observe(instance, predicted, scores);
      }
      if (detector->state() == DetectorState::kDrift) {
        ++result.drifts;
        result.drift_positions.push_back(i);
        if (config.reset_on_drift) classifier->Reset();
      }
    }

    if (config.timing) {
      auto t0 = Clock::now();
      classifier->Train(instance);
      result.classifier_seconds += Seconds(t0, Clock::now());
    } else {
      classifier->Train(instance);
    }

    if ((i - config.warmup) % static_cast<uint64_t>(config.eval_interval) ==
            0 &&
        metrics.size() >= 50) {
      double pmauc = metrics.PmAuc();
      sum_pmauc += pmauc;
      sum_pmgm += metrics.PmGMean();
      sum_acc += metrics.Accuracy();
      sum_kappa += metrics.Kappa();
      ++samples;
      result.pmauc_series.emplace_back(i, pmauc);
    }
  }

  if (samples > 0) {
    result.mean_pmauc = sum_pmauc / samples;
    result.mean_pmgm = sum_pmgm / samples;
    result.mean_accuracy = sum_acc / samples;
    result.mean_kappa = sum_kappa / samples;
  }
  return result;
}

}  // namespace ccd
