#include "eval/prequential.h"

#include <chrono>

#include "eval/metrics.h"

namespace ccd {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

PrequentialResult RunPrequential(InstanceStream* stream,
                                 OnlineClassifier* classifier,
                                 DriftDetector* detector,
                                 const PrequentialConfig& config) {
  PrequentialResult result;
  const StreamSchema& schema = stream->schema();
  WindowedMetrics metrics(schema.num_classes, config.metric_window);

  double sum_pmauc = 0.0, sum_pmgm = 0.0, sum_acc = 0.0, sum_kappa = 0.0;
  uint64_t samples = 0;

  for (uint64_t i = 0; i < config.max_instances; ++i) {
    Instance instance = stream->Next();
    ++result.instances;

    if (i < config.warmup) {
      classifier->Train(instance);
      // Let trainable detectors see warmup data too (the paper trains
      // RBM-IM on the first batches before monitoring).
      if (detector != nullptr) {
        detector->Observe(instance, instance.label, {});
      }
      continue;
    }

    std::vector<double> scores = classifier->PredictScores(instance);
    int predicted = 0;
    for (size_t c = 1; c < scores.size(); ++c) {
      if (scores[c] > scores[predicted]) predicted = static_cast<int>(c);
    }
    metrics.Add(instance.label, predicted, scores);

    if (detector != nullptr) {
      if (config.timing) {
        auto t0 = Clock::now();
        detector->Observe(instance, predicted, scores);
        result.detector_seconds += Seconds(t0, Clock::now());
      } else {
        detector->Observe(instance, predicted, scores);
      }
      if (detector->state() == DetectorState::kDrift) {
        ++result.drifts;
        result.drift_positions.push_back(i);
        if (config.reset_on_drift) classifier->Reset();
      }
    }

    if (config.timing) {
      auto t0 = Clock::now();
      classifier->Train(instance);
      result.classifier_seconds += Seconds(t0, Clock::now());
    } else {
      classifier->Train(instance);
    }

    if ((i - config.warmup) % static_cast<uint64_t>(config.eval_interval) ==
            0 &&
        metrics.size() >= 50) {
      double pmauc = metrics.PmAuc();
      sum_pmauc += pmauc;
      sum_pmgm += metrics.PmGMean();
      sum_acc += metrics.Accuracy();
      sum_kappa += metrics.Kappa();
      ++samples;
      result.pmauc_series.emplace_back(i, pmauc);
    }
  }

  if (samples > 0) {
    result.mean_pmauc = sum_pmauc / samples;
    result.mean_pmgm = sum_pmgm / samples;
    result.mean_accuracy = sum_acc / samples;
    result.mean_kappa = sum_kappa / samples;
  }
  return result;
}

}  // namespace ccd
