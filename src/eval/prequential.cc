#include "eval/prequential.h"

#include <stdexcept>
#include <string>

#include "eval/engine.h"
#include "eval/sharded.h"

namespace ccd {

void ValidatePrequentialConfig(const PrequentialConfig& config) {
  if (config.eval_interval <= 0) {
    throw std::invalid_argument(
        "PrequentialConfig.eval_interval must be >= 1 (got " +
        std::to_string(config.eval_interval) + ")");
  }
  if (config.metric_window <= 0) {
    throw std::invalid_argument(
        "PrequentialConfig.metric_window must be >= 1 (got " +
        std::to_string(config.metric_window) + ")");
  }
  if (config.shards <= 0) {
    throw std::invalid_argument("PrequentialConfig.shards must be >= 1 (got " +
                                std::to_string(config.shards) + ")");
  }
}

PrequentialResult RunPrequential(InstanceStream* stream,
                                 OnlineClassifier* classifier,
                                 DriftDetector* detector,
                                 const PrequentialConfig& config) {
  if (config.shards > 1) {
    return RunShardedPrequential(stream, classifier, detector, config);
  }
  // Offline evaluation = the push engine fed with immediate labels. The
  // engine owns the whole prequential step (warmup, metrics, drift
  // coupling, sampling); this adapter only drains the stream into it.
  MonitorEngine engine(stream->schema(), classifier, detector, config);
  for (uint64_t i = 0; i < config.max_instances; ++i) {
    engine.Feed(stream->Next());
  }
  return engine.Result();
}

}  // namespace ccd
