#ifndef CCD_EVAL_PREQUENTIAL_H_
#define CCD_EVAL_PREQUENTIAL_H_

#include <cstdint>
#include <vector>

#include "classifiers/classifier.h"
#include "detectors/detector.h"
#include "stream/stream.h"

namespace ccd {

/// Configuration of a prequential (test-then-train) evaluation run.
struct PrequentialConfig {
  uint64_t max_instances = 100000;
  int metric_window = 1000;   ///< W for pmAUC / pmGM (paper: 1000).
  int eval_interval = 250;    ///< Sample the windowed metrics every N inst.
  uint64_t warmup = 500;      ///< Train-only prefix (no metrics, no drift).
  bool reset_on_drift = true; ///< Reset the classifier when drift fires.
  bool timing = true;         ///< Measure detector/classifier wall time.
  /// Intra-stream sharding degree: > 1 splits the run into this many
  /// sequential-handoff blocks evaluated through EngineState transfer on a
  /// thread pool (eval/sharded.h) — bit-identical to the sequential run.
  /// 1 is the classic single-pass loop.
  int shards = 1;
};

/// Throws std::invalid_argument when `config` is degenerate: a
/// non-positive `eval_interval` (the sampling modulus — zero is a literal
/// division by zero), a non-positive `metric_window` (WindowedMetrics
/// would evict every entry immediately and never accumulate a window), or
/// a non-positive `shards` count. RunPrequential calls this up front;
/// api::Experiment::Build performs the same checks and reports them as
/// ApiError.
void ValidatePrequentialConfig(const PrequentialConfig& config);

/// One detection-side drift event: where a detector fired and which
/// classes it implicated (empty = global drift, or a detector that only
/// monitors the aggregate stream). This is the detector's *answer*; the
/// generator-side ground truth is ccd::DriftEvent (generators/drift.h).
struct DriftAlarm {
  uint64_t position = 0;
  std::vector<int> drifted_classes;
};

inline bool operator==(const DriftAlarm& a, const DriftAlarm& b) {
  return a.position == b.position && a.drifted_classes == b.drifted_classes;
}
inline bool operator!=(const DriftAlarm& a, const DriftAlarm& b) {
  return !(a == b);
}

/// Aggregate outcome of a run.
struct PrequentialResult {
  double mean_pmauc = 0.0;   ///< Mean of windowed pmAUC samples, in [0,1].
  double mean_pmgm = 0.0;
  double mean_accuracy = 0.0;
  double mean_kappa = 0.0;
  uint64_t instances = 0;
  uint64_t drifts = 0;
  std::vector<uint64_t> drift_positions;
  /// Detection-side drift log, parallel to `drift_positions` but carrying
  /// the classes each alarm implicated (detectors without local-drift
  /// explanations leave them empty).
  std::vector<DriftAlarm> drift_events;
  /// Realized per-class instance counts over the whole run (warmup
  /// included); labels outside [0, num_classes) are not counted.
  std::vector<uint64_t> class_counts;
  /// (position, pmAUC) samples for plotting metric evolution.
  std::vector<std::pair<uint64_t, double>> pmauc_series;
  /// Total seconds spent inside DriftDetector::Observe (the paper's
  /// "test time") and in classifier Train ("update time" proxy).
  double detector_seconds = 0.0;
  double classifier_seconds = 0.0;
};

/// Runs the prequential protocol: for each instance, predict, feed the
/// detector, record metrics, then train. When the detector signals drift
/// (after warmup) the classifier is reset — the paper's coupling for
/// measuring how detector quality drives classifier recovery. `detector`
/// may be null (pure classifier baseline).
///
/// This is a thin adapter over MonitorEngine (eval/engine.h): it drains
/// `stream` through the push-based engine with immediate labels, so
/// offline evaluation and online serving share one implementation.
///
/// With config.shards > 1 the run is delegated to RunShardedPrequential
/// (eval/sharded.h): same instances, same numbers — proven bit-identical
/// by tests/sharded_test.cc — but evaluated as pipelined handoff blocks.
/// shards == 1 is the unchanged sequential baseline.
PrequentialResult RunPrequential(InstanceStream* stream,
                                 OnlineClassifier* classifier,
                                 DriftDetector* detector,
                                 const PrequentialConfig& config);

}  // namespace ccd

#endif  // CCD_EVAL_PREQUENTIAL_H_
