#ifndef CCD_EVAL_SHARDED_H_
#define CCD_EVAL_SHARDED_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "eval/engine.h"
#include "eval/prequential.h"
#include "runtime/thread_pool.h"

namespace ccd {

/// The complete evaluation state at a shard boundary: the engine's run
/// state (counters, drift log, metric window, pending predictions) plus
/// deep clones of the learned components. Handing an EngineState to a
/// fresh MonitorEngine (RestoreEngineState) resumes evaluation exactly
/// where it stopped — the payload of the intra-stream handoff, and the
/// unit the future "one engine per shard, router above" serving design
/// will ship between workers.
struct EngineState {
  EngineState() = default;
  /// Explicitly move-only: an EngineState is a *handoff token* — exactly
  /// one engine may own (and mutate) the component clones it carries.
  /// Copying would silently alias live classifiers across shards; the
  /// deleted copy operations turn that bug into a compile error
  /// (tests/sharded_test.cc pins this down with static_asserts).
  EngineState(EngineState&&) = default;
  EngineState& operator=(EngineState&&) = default;
  EngineState(const EngineState&) = delete;
  EngineState& operator=(const EngineState&) = delete;

  EngineSnapshot snapshot;
  std::unique_ptr<OnlineClassifier> classifier;
  std::unique_ptr<DriftDetector> detector;  ///< Null when no detector runs.
};

/// Captures `engine`'s full state: its Snapshot() plus CloneState() copies
/// of the components it runs on. `detector` may be null. Throws
/// std::logic_error when a component does not implement CloneState().
EngineState CaptureEngineState(const MonitorEngine& engine,
                               const OnlineClassifier& classifier,
                               const DriftDetector* detector);

/// Builds a fresh engine on the state's own component clones and restores
/// the snapshot into it. The returned engine references
/// `state.classifier`/`state.detector`, so `state` must outlive it.
MonitorEngine RestoreEngineState(const StreamSchema& schema,
                                 const PrequentialConfig& config,
                                 EngineState& state,
                                 EngineHooks hooks = {});

/// [begin, end) instance ranges of the handoff blocks: `shards` blocks
/// whose sizes differ by at most one (earlier blocks absorb the remainder
/// of a non-divisible split). `shards` is clamped to [1, instances] (one
/// block of zero instances when the stream is empty).
std::vector<std::pair<uint64_t, uint64_t>> ShardBlocks(uint64_t instances,
                                                       int shards);

/// Intra-stream sharded prequential evaluation: the stream's
/// `config.max_instances` instances are split into `config.shards`
/// sequential-handoff blocks; block k+1 runs on a thread-pool worker
/// seeded with block k's EngineState, while the (inherently sequential)
/// stream generator materializes blocks ahead of the evaluator on another
/// worker. Generation therefore overlaps evaluation within one run, and
/// several concurrent runs (e.g. api::Suite grid cells) interleave their
/// blocks — long streams pipeline instead of serializing.
///
/// Bit-identical to RunPrequential by construction: the stream is drained
/// in order, and every handoff transfers the complete engine state
/// (classifier, detector — with its embedded normalizer, when it has one —
/// metric windows, drift log, counters, warning latch). tests/
/// sharded_test.cc proves the equivalence differentially over a
/// (shards × generator × detector) grid. Only the wall-clock
/// `*_seconds` fields differ run to run, exactly as they do sequentially.
///
/// `pool` runs the block tasks; nullptr creates a private two-worker pool
/// (one materializer + one evaluator is the maximum intra-run
/// parallelism). A shared pool must not be the one the calling thread is
/// itself a worker of. Unlike RunPrequential, the caller's classifier and
/// detector only ever see block 0 — later blocks train handoff clones.
///
/// Requires every component to implement CloneState() when
/// config.shards > 1 (std::logic_error otherwise, naming the component).
PrequentialResult RunShardedPrequential(InstanceStream* stream,
                                        OnlineClassifier* classifier,
                                        DriftDetector* detector,
                                        const PrequentialConfig& config,
                                        runtime::ThreadPool* pool = nullptr);

}  // namespace ccd

#endif  // CCD_EVAL_SHARDED_H_
