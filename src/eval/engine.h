#ifndef CCD_EVAL_ENGINE_H_
#define CCD_EVAL_ENGINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "classifiers/classifier.h"
#include "detectors/detector.h"
#include "eval/metrics.h"
#include "eval/prequential.h"

namespace ccd {

/// Windowed-metric snapshot attached to engine events: the state of the
/// sliding evaluation window at `position` completed instances.
struct MetricsSnapshot {
  uint64_t position = 0;
  double pmauc = 0.0;
  double pmgm = 0.0;
  double accuracy = 0.0;
  double kappa = 0.0;
  size_t window_size = 0;
};

/// Optional event callbacks of a MonitorEngine. All fire synchronously on
/// the thread driving the engine; metric snapshots (an O(W log W) pmAUC
/// pass) are only computed for callbacks that are actually installed.
///
/// Hooks must NOT call back into the engine's mutating surface: they fire
/// mid-step, while the instance that triggered them is only half applied
/// (metrics recorded, classifier not yet trained, position not yet
/// advanced), so a reentrant Feed/Predict/Label/Restore would interleave
/// two prequential steps and silently corrupt the run. The engine enforces
/// this — a reentrant mutating call throws std::logic_error naming the
/// violation. Read-only accessors (position(), Result(), Snapshot()) stay
/// callable from hooks.
struct EngineHooks {
  /// A drift alarm on a measured (post-warmup) instance, before the
  /// classifier reset/train for that instance.
  std::function<void(const DriftAlarm&, const MetricsSnapshot&)> on_drift;
  /// The detector *entered* its warning zone on this instance — fired on
  /// the transition only, not on every instance of a persistent warning
  /// region (DDM-family detectors re-report kWarning per observation, and
  /// the snapshot is too expensive for per-instance use).
  std::function<void(uint64_t position, const MetricsSnapshot&)> on_warning;
  /// A periodic metric sample (every `eval_interval` measured instances,
  /// once the window holds enough entries) — the same samples that feed
  /// PrequentialResult::pmauc_series and the result means.
  std::function<void(const MetricsSnapshot&)> on_metrics;
};

/// Copyable run state of a MonitorEngine at a point in time: everything an
/// intra-stream shard needs to resume evaluation mid-stream (prefix-state
/// handoff, see eval/sharded.h), and everything an operator needs to
/// inspect a live monitor. Together with clones of the classifier and
/// detector (CloneState()) this is the *complete* engine state:
/// MonitorEngine::Restore() rebuilds an engine whose subsequent behavior —
/// and whose own Snapshot() — is bit-identical to the original's.
struct EngineSnapshot {
  /// One parked serving-path prediction, so a restored engine can still
  /// accept the late Label() calls of its predecessor.
  struct PendingEntry {
    uint64_t id = 0;
    Instance instance;  ///< Features + weight; label still unknown.
    int predicted = 0;
    std::vector<double> scores;
  };

  uint64_t position = 0;           ///< Completed (labelled) instances.
  uint64_t pending = 0;            ///< Predictions still awaiting a label.
  uint64_t evicted = 0;            ///< Predictions whose label never came.
  uint64_t unmatched_labels = 0;   ///< Label() calls with no pending match.
  uint64_t metric_samples = 0;     ///< Periodic samples taken so far.
  uint64_t next_id = 1;            ///< Next Predict() ticket id.
  /// Detector state after the most recent measured step — the warning-zone
  /// latch. Without it a restored engine would re-fire on_warning on the
  /// first instance of a warning region the original had already entered.
  DetectorState last_detector_state = DetectorState::kStable;
  std::vector<DriftAlarm> drift_log;
  std::vector<uint64_t> class_counts;
  /// Contents of the sliding metric window, oldest first.
  std::vector<WindowedMetrics::Entry> window;
  /// Contents of the pending buffer, ascending by id.
  std::vector<PendingEntry> pending_predictions;
  /// Accumulated periodic metric samples (the running means of Result()).
  double sum_pmauc = 0.0;
  double sum_pmgm = 0.0;
  double sum_accuracy = 0.0;
  double sum_kappa = 0.0;
  std::vector<std::pair<uint64_t, double>> pmauc_series;
  /// Accumulated wall time (only meaningful with config.timing).
  double detector_seconds = 0.0;
  double classifier_seconds = 0.0;
};

/// A drift alarm attributed to the serving shard whose engine raised it —
/// the fan-in payload of a sharded monitor's aggregate drift log (each
/// per-shard DriftAlarm::position is a *shard-local* instance count).
struct ShardAlarm {
  int shard = 0;
  DriftAlarm alarm;
};

inline bool operator==(const ShardAlarm& a, const ShardAlarm& b) {
  return a.shard == b.shard && a.alarm == b.alarm;
}
inline bool operator!=(const ShardAlarm& a, const ShardAlarm& b) {
  return !(a == b);
}

/// Aggregate view over per-shard engine snapshots: counters and metric
/// accumulators summed, class counts added element-wise, drift logs and
/// pmAUC series concatenated in ascending position order (ties keep shard
/// order). The merge is an *observability* artifact, not a restore
/// payload: positions are shard-local so the interleaving is lost, and the
/// per-shard metric-window / pending-buffer contents are deliberately not
/// carried over (their sizes still are, via `pending` and
/// `metric_samples`). `next_id` is the max over shards and
/// `last_detector_state` the most severe current state. Throws
/// std::invalid_argument when the snapshots disagree on class arity.
/// An empty input merges to a default snapshot.
EngineSnapshot MergeSnapshots(const std::vector<EngineSnapshot>& shards);

/// The drift logs of all shards, tagged with their shard index and merged
/// in ascending position order (ties keep shard order) — the aggregate
/// alarm history of a sharded monitor.
std::vector<ShardAlarm> MergeShardAlarms(
    const std::vector<EngineSnapshot>& shards);

/// Aggregate PrequentialResult over per-shard snapshots: instance/drift/
/// class counts summed, mean metrics the sample-weighted means over all
/// shards' periodic samples (identical to one engine's Result() when given
/// a single snapshot). Wall-clock fields are summed.
PrequentialResult MergedResult(const std::vector<EngineSnapshot>& shards);

/// Outcome of MonitorEngine::Label().
enum class LabelOutcome {
  kApplied,  ///< The pending prediction was found and the step completed.
  kUnknown,  ///< No pending prediction with that id (evicted or bogus).
};

/// One late ground-truth delivery, the element of LabelBatch(): the ticket
/// id returned by Predict() plus the true label that finally arrived.
struct LabelRequest {
  uint64_t id = 0;
  int label = 0;
};

/// Push-driven online evaluation engine: one (classifier, detector,
/// windowed-metrics) triple behind a serving-style surface. The engine
/// inverts the control flow of the classic pull-based prequential loop —
/// instead of draining an InstanceStream, callers push events in:
///
///  * Feed(instance)       — immediate-label fast path: one full
///                           test-then-train prequential step. Pushing a
///                           stream through Feed() is bit-identical to the
///                           pre-engine RunPrequential loop.
///  * Predict(features)    — serving path, prediction side: returns a
///                           ticket {id, predicted, scores} and parks the
///                           prediction in a bounded pending buffer.
///  * Label(id, label)     — serving path, label side: completes the
///                           parked prediction with the (possibly late)
///                           ground truth, using the scores captured at
///                           prediction time, exactly as test-then-train
///                           demands.
///
/// Verification latency: labels may arrive any number of predictions
/// later, or never. The pending buffer is bounded; when full, the oldest
/// prediction is evicted and counted (`evicted()`), so an engine under a
/// label outage degrades to a bounded-memory predictor instead of leaking.
///
/// The engine is single-threaded by design: one engine per stream shard,
/// sharding above it (api::Suite today, intra-stream sharding next — see
/// Snapshot()).
class MonitorEngine {
 public:
  /// A prediction handed back to the caller: the opaque id to label later,
  /// plus the argmax label and per-class scores computed now.
  struct Ticket {
    uint64_t id = 0;
    int predicted = 0;
    std::vector<double> scores;
  };

  /// `classifier` must outlive the engine and be non-null; `detector` may
  /// be null (pure classifier baseline). `config` is validated as in
  /// RunPrequential (`max_instances` is ignored — push streams are
  /// unbounded, the caller decides when to stop). `pending_capacity` bounds
  /// the delayed-label buffer and is clamped to >= 1.
  MonitorEngine(const StreamSchema& schema, OnlineClassifier* classifier,
                DriftDetector* detector, const PrequentialConfig& config,
                EngineHooks hooks = {}, size_t pending_capacity = 1024);

  MonitorEngine(MonitorEngine&&) = default;
  MonitorEngine& operator=(MonitorEngine&&) = default;

  /// Immediate-label fast path: one prequential step (warmup handling,
  /// predict, metrics, detector, drift coupling, train, sampling).
  /// Throws std::logic_error while paused. Allocation-free in steady state:
  /// scores are computed into a reused scratch buffer
  /// (OnlineClassifier::PredictScoresInto) and the metric window recycles
  /// its entry slots.
  void Feed(const Instance& instance);

  /// Batch form of Feed(): applies every instance in order, bit-identical
  /// to the equivalent sequence of Feed() calls (the differential tests
  /// pin this). Exists so callers holding a shard lock can amortize it
  /// over the whole batch.
  void FeedBatch(const std::vector<Instance>& batch);

  /// Serving path, prediction side. Scores come from the classifier as it
  /// is *now*; a later Label() completes the step with these scores, so
  /// prequential semantics (test before train) hold under verification
  /// latency. Throws std::logic_error while paused.
  Ticket Predict(const std::vector<double>& features, double weight = 1.0);

  /// Allocation-free form of Predict(): fills `out` in place, reusing its
  /// score-vector capacity. Bit-identical to the by-value overload.
  void Predict(const std::vector<double>& features, double weight,
               Ticket* out);

  /// Batch form of Predict(): one ticket per instance (labels ignored,
  /// weights honored), in order, bit-identical to per-instance calls.
  /// `out` is resized to the batch and its tickets' capacity reused.
  void PredictBatch(const std::vector<Instance>& batch,
                    std::vector<Ticket>* out);

  /// Serving path, label side. Ids are matched against the pending buffer;
  /// evicted or never-issued ids return kUnknown and are counted. Allowed
  /// while paused, so in-flight predictions can be drained before a
  /// Snapshot() handoff.
  LabelOutcome Label(uint64_t id, int true_label);

  /// Batch form of Label(): applies the requests strictly in order, so the
  /// evicted()/unmatched_labels() accounting under out-of-order or
  /// duplicate ids is exactly that of the per-instance calls. When
  /// `outcomes` is non-null it is cleared and filled with one outcome per
  /// request.
  void LabelBatch(const std::vector<LabelRequest>& batch,
                  std::vector<LabelOutcome>* outcomes = nullptr);

  /// Pause() refuses new work (Feed/Predict throw std::logic_error) while
  /// still accepting Label() for in-flight predictions — the drain step of
  /// a shard handoff. Resume() re-opens the intake. Both are mutating
  /// entry points: called from inside a hook they throw like Feed() does,
  /// instead of silently stalling the engine mid-step.
  void Pause() {
    RequireNotInHook("Pause()");
    paused_ = true;
  }
  void Resume() {
    RequireNotInHook("Resume()");
    paused_ = false;
  }
  bool paused() const { return paused_; }

  uint64_t position() const { return completed_; }
  size_t pending() const { return pending_count_; }
  uint64_t evicted() const { return evicted_; }
  uint64_t unmatched_labels() const { return unmatched_; }
  /// Detector state after the most recent measured step (kStable when no
  /// detector is attached or nothing completed yet).
  DetectorState last_detector_state() const { return last_state_; }
  const StreamSchema& schema() const { return schema_; }
  const PrequentialConfig& config() const { return config_; }

  /// Copyable run state for inspection and shard handoff.
  EngineSnapshot Snapshot() const;

  /// Replaces this engine's run state with `snapshot`, so that continuing
  /// from here is bit-identical to continuing the engine that produced it —
  /// provided classifier and detector were restored to the same point
  /// (CloneState() at Snapshot() time). Validates internal consistency
  /// (window within the configured metric window, class counts matching
  /// the schema, pending ids ascending and below next_id, pending count
  /// within this engine's capacity) and throws std::invalid_argument on
  /// violations. Clears any paused state.
  void Restore(const EngineSnapshot& snapshot);

  /// Aggregate result over everything completed so far. Callable at any
  /// time; the engine keeps accepting events afterwards.
  PrequentialResult Result() const;

 private:
  struct PendingPrediction {
    uint64_t id = 0;
    Instance instance;  ///< Features + weight; label filled at Label().
    int predicted = 0;
    std::vector<double> scores;
  };

  /// One completed (labelled) instance — the body of the prequential loop.
  /// `measured` is false for the warmup prefix (train-only, no metrics).
  void Complete(const Instance& instance, bool measured, int predicted,
                const std::vector<double>& scores);
  /// The k-th oldest parked prediction (logical ring indexing).
  PendingPrediction& PendingAt(size_t k) {
    return pending_slots_[(pending_head_ + k) % capacity_];
  }
  const PendingPrediction& PendingAt(size_t k) const {
    return pending_slots_[(pending_head_ + k) % capacity_];
  }
  MetricsSnapshot TakeSnapshot(uint64_t position) const;
  /// Throws std::logic_error when called from inside an EngineHooks
  /// callback — the reentrancy guard of every mutating entry point.
  void RequireNotInHook(const char* operation) const;

  // Construction-time wiring, not run state: Snapshot()/Restore() move an
  // engine's *evaluation* state between engines that were each built with
  // their own schema/config/components (EngineState carries the component
  // clones separately; RestoreEngineState re-supplies schema and config).
  // ccd:state-skip(schema_, construction-time wiring; a restored engine is built with its own schema)
  StreamSchema schema_;
  // ccd:state-skip(classifier_, non-owning component pointer; EngineState ships CloneState copies instead)
  OnlineClassifier* classifier_ = nullptr;
  // ccd:state-skip(detector_, non-owning component pointer; EngineState ships CloneState copies instead)
  DriftDetector* detector_ = nullptr;
  // ccd:state-skip(config_, construction-time wiring; a restored engine is built with its own config)
  PrequentialConfig config_;
  // ccd:state-skip(hooks_, callbacks bind to the owning process; they never transfer between engines)
  EngineHooks hooks_;
  size_t capacity_ = 1024;

  WindowedMetrics metrics_;
  /// Pending-prediction ring, preallocated to `capacity_` at construction
  /// so a steady-state Predict/Label cycle never touches the heap: slot
  /// `(pending_head_ + k) % capacity_` is the k-th oldest parked
  /// prediction; slots keep their feature/score vector capacity across
  /// reuse. Ids are ascending in logical order (Label() binary-searches).
  std::vector<PendingPrediction> pending_slots_;
  size_t pending_head_ = 0;
  size_t pending_count_ = 0;
  uint64_t next_id_ = 1;
  uint64_t completed_ = 0;
  uint64_t evicted_ = 0;
  uint64_t unmatched_ = 0;
  // ccd:state-skip(paused_, Restore deliberately lands unpaused; pausing is an operator action, not run state)
  bool paused_ = false;
  // ccd:state-skip(in_hook_, transient reentrancy guard; Snapshot is only callable when no hook is running)
  bool in_hook_ = false;  ///< True while an EngineHooks callback runs.
  DetectorState last_state_ = DetectorState::kStable;

  /// Accumulating result; means are finalized in Result().
  PrequentialResult acc_;
  double sum_pmauc_ = 0.0, sum_pmgm_ = 0.0, sum_acc_ = 0.0, sum_kappa_ = 0.0;
  uint64_t samples_ = 0;
  // ccd:state-skip(scores_scratch_, transient Feed-path scratch rewritten every push; holds no run state)
  std::vector<double> scores_scratch_;
};

}  // namespace ccd

#endif  // CCD_EVAL_ENGINE_H_
