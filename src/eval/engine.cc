#include "eval/engine.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace ccd {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Argmax over the scores; an empty or short vector is legal (missing
/// support counts as zero), so an all-missing prediction is class 0.
int Argmax(const std::vector<double>& scores) {
  int predicted = 0;
  for (size_t c = 1; c < scores.size(); ++c) {
    if (scores[c] > scores[predicted]) predicted = static_cast<int>(c);
  }
  return predicted;
}

/// Restores `*flag` to false even when the hook throws, so an engine whose
/// callback failed is not bricked into permanent "reentrant" rejections.
///
/// Deliberately *not* a runtime::Mutex capability: the no-reentry
/// invariant crosses a type-erased std::function boundary (engine →
/// user hook → engine), which Thread Safety Analysis cannot see through —
/// a phantom capability here would compile-time-check nothing. The
/// invariant stays a runtime guard (std::logic_error on mutating
/// reentry), pinned by monitor_test's reentrancy regression tests; the
/// engine itself is externally synchronized by its owner's slot lock
/// (CCD_GUARDED_BY on api::ShardedMonitor::Shard::engine).
class HookScope {
 public:
  explicit HookScope(bool* flag) : flag_(flag) { *flag_ = true; }
  ~HookScope() { *flag_ = false; }
  HookScope(const HookScope&) = delete;
  HookScope& operator=(const HookScope&) = delete;

 private:
  bool* flag_;
};

}  // namespace

MonitorEngine::MonitorEngine(const StreamSchema& schema,
                             OnlineClassifier* classifier,
                             DriftDetector* detector,
                             const PrequentialConfig& config,
                             EngineHooks hooks, size_t pending_capacity)
    : schema_(schema),
      classifier_(classifier),
      detector_(detector),
      config_(config),
      hooks_(std::move(hooks)),
      capacity_(pending_capacity < 1 ? 1 : pending_capacity),
      metrics_(schema.num_classes, config.metric_window) {
  if (classifier_ == nullptr) {
    throw std::invalid_argument("MonitorEngine: classifier must not be null");
  }
  ValidatePrequentialConfig(config_);
  acc_.class_counts.assign(
      schema_.num_classes > 0 ? static_cast<size_t>(schema_.num_classes) : 0,
      0);
  // Preallocate the pending ring up front: growing a ring while rotated
  // would scramble the logical order, and the hot path must not allocate.
  pending_slots_.resize(capacity_);
}

void MonitorEngine::RequireNotInHook(const char* operation) const {
  if (in_hook_) {
    throw std::logic_error(
        std::string("MonitorEngine: reentrant ") + operation +
        " from inside an engine callback — on_drift/on_warning/on_metrics "
        "fire mid-step, so hooks must not call back into the engine's "
        "mutating surface (read-only accessors are fine)");
  }
}

void MonitorEngine::Feed(const Instance& instance) {
  RequireNotInHook("Feed()");
  if (paused_) {
    throw std::logic_error("MonitorEngine: Feed() on a paused engine");
  }
  if (completed_ < config_.warmup) {
    Complete(instance, /*measured=*/false, 0, {});
    return;
  }
  classifier_->PredictScoresInto(instance, scores_scratch_);
  int predicted = Argmax(scores_scratch_);
  Complete(instance, /*measured=*/true, predicted, scores_scratch_);
}

void MonitorEngine::FeedBatch(const std::vector<Instance>& batch) {
  for (const Instance& instance : batch) Feed(instance);
}

MonitorEngine::Ticket MonitorEngine::Predict(
    const std::vector<double>& features, double weight) {
  Ticket ticket;
  Predict(features, weight, &ticket);
  return ticket;
}

void MonitorEngine::Predict(const std::vector<double>& features, double weight,
                            Ticket* out) {
  RequireNotInHook("Predict()");
  if (paused_) {
    throw std::logic_error("MonitorEngine: Predict() on a paused engine");
  }
  // Build the prediction directly in its ring slot, reusing the slot's
  // feature/score capacity. When full, the oldest prediction is evicted
  // (its label is the most overdue) and its slot becomes the new back.
  size_t slot;
  if (pending_count_ >= capacity_) {
    slot = pending_head_;
    pending_head_ = (pending_head_ + 1) % capacity_;
    ++evicted_;
  } else {
    slot = (pending_head_ + pending_count_) % capacity_;
    ++pending_count_;
  }
  PendingPrediction& p = pending_slots_[slot];
  p.id = next_id_++;
  p.instance.features = features;
  p.instance.label = -1;
  p.instance.weight = weight;
  classifier_->PredictScoresInto(p.instance, p.scores);
  p.predicted = Argmax(p.scores);

  out->id = p.id;
  out->predicted = p.predicted;
  out->scores = p.scores;
}

void MonitorEngine::PredictBatch(const std::vector<Instance>& batch,
                                 std::vector<Ticket>* out) {
  out->resize(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    Predict(batch[i].features, batch[i].weight, &(*out)[i]);
  }
}

LabelOutcome MonitorEngine::Label(uint64_t id, int true_label) {
  RequireNotInHook("Label()");
  // Ids are issued monotonically and the ring is ordered, so the lookup is
  // a binary search over logical indices even when labels arrive out of
  // order.
  size_t lo = 0, hi = pending_count_;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (PendingAt(mid).id < id) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == pending_count_ || PendingAt(lo).id != id) {
    ++unmatched_;
    return LabelOutcome::kUnknown;
  }
  // Bubble the match to the nearer edge of the ring and pop it there: the
  // remaining predictions keep their relative (id) order, no slot's buffer
  // capacity is lost, and an in-order label (the common case) costs no
  // swaps at all. The popped element's data stays in the vacated physical
  // slot, which nothing can touch until the next Predict().
  size_t vacated;
  if (lo < pending_count_ - 1 - lo) {
    for (size_t k = lo; k > 0; --k) {
      std::swap(PendingAt(k), PendingAt(k - 1));
    }
    vacated = pending_head_;
    pending_head_ = (pending_head_ + 1) % capacity_;
    --pending_count_;
  } else {
    for (size_t k = lo; k + 1 < pending_count_; ++k) {
      std::swap(PendingAt(k), PendingAt(k + 1));
    }
    --pending_count_;
    vacated = (pending_head_ + pending_count_) % capacity_;
  }
  PendingPrediction& p = pending_slots_[vacated];
  p.instance.label = true_label;
  const bool measured = completed_ >= config_.warmup;
  Complete(p.instance, measured, p.predicted, p.scores);
  return LabelOutcome::kApplied;
}

void MonitorEngine::LabelBatch(const std::vector<LabelRequest>& batch,
                               std::vector<LabelOutcome>* outcomes) {
  if (outcomes != nullptr) {
    outcomes->clear();
    outcomes->reserve(batch.size());
  }
  for (const LabelRequest& req : batch) {
    LabelOutcome outcome = Label(req.id, req.label);
    if (outcomes != nullptr) outcomes->push_back(outcome);
  }
}

void MonitorEngine::Complete(const Instance& instance, bool measured,
                             int predicted,
                             const std::vector<double>& scores) {
  const uint64_t i = completed_;
  ++acc_.instances;
  if (instance.label >= 0 &&
      static_cast<size_t>(instance.label) < acc_.class_counts.size()) {
    ++acc_.class_counts[static_cast<size_t>(instance.label)];
  }

  if (!measured) {
    classifier_->Train(instance);
    // Let trainable detectors see warmup data too (the paper trains
    // RBM-IM on the first batches before monitoring).
    if (detector_ != nullptr) {
      detector_->Observe(instance, instance.label, {});
      // Consume (and discard) any drift signaled on warmup data. A
      // detector whose drift flag latches until read would otherwise
      // carry a warmup alarm into the first measured instance and force
      // a spurious classifier reset there.
      (void)detector_->state();
    }
    ++completed_;
    return;
  }

  metrics_.Add(instance.label, predicted, scores);

  if (detector_ != nullptr) {
    if (config_.timing) {
      auto t0 = Clock::now();
      detector_->Observe(instance, predicted, scores);
      acc_.detector_seconds += Seconds(t0, Clock::now());
    } else {
      detector_->Observe(instance, predicted, scores);
    }
    // Read state() exactly once per observation: latching detectors
    // consume their flag on read.
    const DetectorState st = detector_->state();
    const DetectorState prev = last_state_;
    last_state_ = st;
    if (st == DetectorState::kDrift) {
      ++acc_.drifts;
      acc_.drift_positions.push_back(i);
      acc_.drift_events.push_back(DriftAlarm{i, detector_->drifted_classes()});
      if (hooks_.on_drift) {
        HookScope scope(&in_hook_);
        hooks_.on_drift(acc_.drift_events.back(), TakeSnapshot(i));
      }
      if (config_.reset_on_drift) classifier_->Reset();
    } else if (st == DetectorState::kWarning &&
               prev != DetectorState::kWarning && hooks_.on_warning) {
      // Fire on the *transition* into the warning zone only: DDM-family
      // detectors sit in kWarning for whole regions, and the snapshot's
      // pmAUC pass is too expensive to run per instance.
      HookScope scope(&in_hook_);
      hooks_.on_warning(i, TakeSnapshot(i));
    }
  }

  if (config_.timing) {
    auto t0 = Clock::now();
    classifier_->Train(instance);
    acc_.classifier_seconds += Seconds(t0, Clock::now());
  } else {
    classifier_->Train(instance);
  }

  if ((i - config_.warmup) % static_cast<uint64_t>(config_.eval_interval) ==
          0 &&
      metrics_.size() >= 50) {
    double pmauc = metrics_.PmAuc();
    double pmgm = metrics_.PmGMean();
    double accuracy = metrics_.Accuracy();
    double kappa = metrics_.Kappa();
    sum_pmauc_ += pmauc;
    sum_pmgm_ += pmgm;
    sum_acc_ += accuracy;
    sum_kappa_ += kappa;
    ++samples_;
    acc_.pmauc_series.emplace_back(i, pmauc);
    if (hooks_.on_metrics) {
      MetricsSnapshot snapshot;
      snapshot.position = i;
      snapshot.pmauc = pmauc;
      snapshot.pmgm = pmgm;
      snapshot.accuracy = accuracy;
      snapshot.kappa = kappa;
      snapshot.window_size = metrics_.size();
      HookScope scope(&in_hook_);
      hooks_.on_metrics(snapshot);
    }
  }
  ++completed_;
}

MetricsSnapshot MonitorEngine::TakeSnapshot(uint64_t position) const {
  MetricsSnapshot snapshot;
  snapshot.position = position;
  snapshot.pmauc = metrics_.PmAuc();
  snapshot.pmgm = metrics_.PmGMean();
  snapshot.accuracy = metrics_.Accuracy();
  snapshot.kappa = metrics_.Kappa();
  snapshot.window_size = metrics_.size();
  return snapshot;
}

EngineSnapshot MonitorEngine::Snapshot() const {
  EngineSnapshot s;
  s.position = completed_;
  s.pending = pending_count_;
  s.evicted = evicted_;
  s.unmatched_labels = unmatched_;
  s.metric_samples = samples_;
  s.next_id = next_id_;
  s.last_detector_state = last_state_;
  s.drift_log = acc_.drift_events;
  s.class_counts = acc_.class_counts;
  metrics_.CopyWindow(&s.window);
  s.pending_predictions.reserve(pending_count_);
  for (size_t k = 0; k < pending_count_; ++k) {
    const PendingPrediction& p =
        pending_slots_[(pending_head_ + k) % capacity_];
    s.pending_predictions.push_back(
        EngineSnapshot::PendingEntry{p.id, p.instance, p.predicted, p.scores});
  }
  s.sum_pmauc = sum_pmauc_;
  s.sum_pmgm = sum_pmgm_;
  s.sum_accuracy = sum_acc_;
  s.sum_kappa = sum_kappa_;
  s.pmauc_series = acc_.pmauc_series;
  s.detector_seconds = acc_.detector_seconds;
  s.classifier_seconds = acc_.classifier_seconds;
  return s;
}

void MonitorEngine::Restore(const EngineSnapshot& s) {
  RequireNotInHook("Restore()");
  if (static_cast<int>(s.window.size()) > config_.metric_window) {
    throw std::invalid_argument(
        "MonitorEngine::Restore: snapshot window holds " +
        std::to_string(s.window.size()) + " entries, metric_window is " +
        std::to_string(config_.metric_window));
  }
  const size_t expected_classes =
      schema_.num_classes > 0 ? static_cast<size_t>(schema_.num_classes) : 0;
  if (s.class_counts.size() != expected_classes) {
    throw std::invalid_argument(
        "MonitorEngine::Restore: snapshot carries " +
        std::to_string(s.class_counts.size()) +
        " class counts, schema declares " + std::to_string(expected_classes) +
        " classes");
  }
  if (s.pending_predictions.size() > capacity_) {
    throw std::invalid_argument(
        "MonitorEngine::Restore: snapshot carries " +
        std::to_string(s.pending_predictions.size()) +
        " pending predictions, this engine's capacity is " +
        std::to_string(capacity_));
  }
  uint64_t prev_id = 0;
  for (const EngineSnapshot::PendingEntry& p : s.pending_predictions) {
    if (p.id <= prev_id || p.id >= s.next_id) {
      throw std::invalid_argument(
          "MonitorEngine::Restore: pending prediction ids must be strictly "
          "ascending and below next_id");
    }
    prev_id = p.id;
  }

  completed_ = s.position;
  evicted_ = s.evicted;
  unmatched_ = s.unmatched_labels;
  samples_ = s.metric_samples;
  next_id_ = s.next_id;
  last_state_ = s.last_detector_state;
  paused_ = false;

  // Rebuild the metric window by replaying the snapshotted entries: the
  // confusion counts are unit-weight integers, so a fresh sum over the
  // window contents is bit-identical to the original's add/evict history.
  metrics_ = WindowedMetrics(schema_.num_classes, config_.metric_window);
  for (const WindowedMetrics::Entry& e : s.window) {
    metrics_.Add(e.truth, e.predicted, e.scores);
  }

  // Re-linearize the pending ring (capacity was validated above). Slots
  // beyond the restored count keep their old buffers for reuse; they are
  // logically absent.
  pending_head_ = 0;
  pending_count_ = s.pending_predictions.size();
  for (size_t k = 0; k < pending_count_; ++k) {
    const EngineSnapshot::PendingEntry& p = s.pending_predictions[k];
    PendingPrediction& slot = pending_slots_[k];
    slot.id = p.id;
    slot.instance = p.instance;
    slot.predicted = p.predicted;
    slot.scores = p.scores;
  }

  acc_ = PrequentialResult{};
  acc_.instances = s.position;
  acc_.drifts = s.drift_log.size();
  acc_.drift_events = s.drift_log;
  acc_.drift_positions.reserve(s.drift_log.size());
  for (const DriftAlarm& a : s.drift_log) {
    acc_.drift_positions.push_back(a.position);
  }
  acc_.class_counts = s.class_counts;
  acc_.pmauc_series = s.pmauc_series;
  acc_.detector_seconds = s.detector_seconds;
  acc_.classifier_seconds = s.classifier_seconds;
  sum_pmauc_ = s.sum_pmauc;
  sum_pmgm_ = s.sum_pmgm;
  sum_acc_ = s.sum_accuracy;
  sum_kappa_ = s.sum_kappa;
}

namespace {

/// kStable < kWarning < kDrift, for picking the most severe shard state.
int Severity(DetectorState s) {
  switch (s) {
    case DetectorState::kStable:
      return 0;
    case DetectorState::kWarning:
      return 1;
    case DetectorState::kDrift:
      return 2;
  }
  return 0;
}

}  // namespace

EngineSnapshot MergeSnapshots(const std::vector<EngineSnapshot>& shards) {
  EngineSnapshot merged;
  if (shards.empty()) return merged;
  merged.next_id = 0;
  merged.class_counts.assign(shards.front().class_counts.size(), 0);
  for (const EngineSnapshot& s : shards) {
    if (s.class_counts.size() != merged.class_counts.size()) {
      throw std::invalid_argument(
          "MergeSnapshots: shard snapshots disagree on class arity (" +
          std::to_string(merged.class_counts.size()) + " vs " +
          std::to_string(s.class_counts.size()) + ")");
    }
    merged.position += s.position;
    merged.pending += s.pending;
    merged.evicted += s.evicted;
    merged.unmatched_labels += s.unmatched_labels;
    merged.metric_samples += s.metric_samples;
    merged.next_id = std::max(merged.next_id, s.next_id);
    if (Severity(s.last_detector_state) >
        Severity(merged.last_detector_state)) {
      merged.last_detector_state = s.last_detector_state;
    }
    for (size_t c = 0; c < s.class_counts.size(); ++c) {
      merged.class_counts[c] += s.class_counts[c];
    }
    merged.drift_log.insert(merged.drift_log.end(), s.drift_log.begin(),
                            s.drift_log.end());
    merged.pmauc_series.insert(merged.pmauc_series.end(),
                               s.pmauc_series.begin(), s.pmauc_series.end());
    merged.sum_pmauc += s.sum_pmauc;
    merged.sum_pmgm += s.sum_pmgm;
    merged.sum_accuracy += s.sum_accuracy;
    merged.sum_kappa += s.sum_kappa;
    merged.detector_seconds += s.detector_seconds;
    merged.classifier_seconds += s.classifier_seconds;
  }
  // Positions are shard-local; present the aggregate logs in ascending
  // position order, ties keeping shard (concatenation) order.
  std::stable_sort(merged.drift_log.begin(), merged.drift_log.end(),
                   [](const DriftAlarm& a, const DriftAlarm& b) {
                     return a.position < b.position;
                   });
  std::stable_sort(merged.pmauc_series.begin(), merged.pmauc_series.end(),
                   [](const std::pair<uint64_t, double>& a,
                      const std::pair<uint64_t, double>& b) {
                     return a.first < b.first;
                   });
  return merged;
}

std::vector<ShardAlarm> MergeShardAlarms(
    const std::vector<EngineSnapshot>& shards) {
  std::vector<ShardAlarm> alarms;
  for (size_t i = 0; i < shards.size(); ++i) {
    for (const DriftAlarm& a : shards[i].drift_log) {
      alarms.push_back(ShardAlarm{static_cast<int>(i), a});
    }
  }
  std::stable_sort(alarms.begin(), alarms.end(),
                   [](const ShardAlarm& a, const ShardAlarm& b) {
                     return a.alarm.position < b.alarm.position;
                   });
  return alarms;
}

PrequentialResult MergedResult(const std::vector<EngineSnapshot>& shards) {
  const EngineSnapshot merged = MergeSnapshots(shards);
  PrequentialResult r;
  r.instances = merged.position;
  r.drifts = merged.drift_log.size();
  r.drift_events = merged.drift_log;
  r.drift_positions.reserve(merged.drift_log.size());
  for (const DriftAlarm& a : merged.drift_log) {
    r.drift_positions.push_back(a.position);
  }
  r.class_counts = merged.class_counts;
  r.pmauc_series = merged.pmauc_series;
  r.detector_seconds = merged.detector_seconds;
  r.classifier_seconds = merged.classifier_seconds;
  if (merged.metric_samples > 0) {
    const double n = static_cast<double>(merged.metric_samples);
    r.mean_pmauc = merged.sum_pmauc / n;
    r.mean_pmgm = merged.sum_pmgm / n;
    r.mean_accuracy = merged.sum_accuracy / n;
    r.mean_kappa = merged.sum_kappa / n;
  }
  return r;
}

PrequentialResult MonitorEngine::Result() const {
  PrequentialResult r = acc_;
  if (samples_ > 0) {
    r.mean_pmauc = sum_pmauc_ / static_cast<double>(samples_);
    r.mean_pmgm = sum_pmgm_ / static_cast<double>(samples_);
    r.mean_accuracy = sum_acc_ / static_cast<double>(samples_);
    r.mean_kappa = sum_kappa_ / static_cast<double>(samples_);
  }
  return r;
}

}  // namespace ccd
