#include "eval/engine.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace ccd {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Argmax over the scores; an empty or short vector is legal (missing
/// support counts as zero), so an all-missing prediction is class 0.
int Argmax(const std::vector<double>& scores) {
  int predicted = 0;
  for (size_t c = 1; c < scores.size(); ++c) {
    if (scores[c] > scores[predicted]) predicted = static_cast<int>(c);
  }
  return predicted;
}

}  // namespace

MonitorEngine::MonitorEngine(const StreamSchema& schema,
                             OnlineClassifier* classifier,
                             DriftDetector* detector,
                             const PrequentialConfig& config,
                             EngineHooks hooks, size_t pending_capacity)
    : schema_(schema),
      classifier_(classifier),
      detector_(detector),
      config_(config),
      hooks_(std::move(hooks)),
      capacity_(pending_capacity < 1 ? 1 : pending_capacity),
      metrics_(schema.num_classes, config.metric_window) {
  if (classifier_ == nullptr) {
    throw std::invalid_argument("MonitorEngine: classifier must not be null");
  }
  ValidatePrequentialConfig(config_);
  acc_.class_counts.assign(
      schema_.num_classes > 0 ? static_cast<size_t>(schema_.num_classes) : 0,
      0);
}

void MonitorEngine::Feed(const Instance& instance) {
  if (paused_) {
    throw std::logic_error("MonitorEngine: Feed() on a paused engine");
  }
  if (completed_ < config_.warmup) {
    Complete(instance, /*measured=*/false, 0, {});
    return;
  }
  std::vector<double> scores = classifier_->PredictScores(instance);
  int predicted = Argmax(scores);
  Complete(instance, /*measured=*/true, predicted, scores);
}

MonitorEngine::Ticket MonitorEngine::Predict(
    const std::vector<double>& features, double weight) {
  if (paused_) {
    throw std::logic_error("MonitorEngine: Predict() on a paused engine");
  }
  PendingPrediction p;
  p.id = next_id_++;
  p.instance = Instance(features, /*y=*/-1, weight);
  p.scores = classifier_->PredictScores(p.instance);
  p.predicted = Argmax(p.scores);

  Ticket ticket;
  ticket.id = p.id;
  ticket.predicted = p.predicted;
  ticket.scores = p.scores;

  if (pending_.size() >= capacity_) {
    pending_.pop_front();  // Oldest first: its label is the most overdue.
    ++evicted_;
  }
  pending_.push_back(std::move(p));
  return ticket;
}

LabelOutcome MonitorEngine::Label(uint64_t id, int true_label) {
  // Ids are issued monotonically and the buffer is ordered, so the lookup
  // is a binary search even when labels arrive out of order.
  auto it = std::lower_bound(
      pending_.begin(), pending_.end(), id,
      [](const PendingPrediction& p, uint64_t v) { return p.id < v; });
  if (it == pending_.end() || it->id != id) {
    ++unmatched_;
    return LabelOutcome::kUnknown;
  }
  PendingPrediction p = std::move(*it);
  pending_.erase(it);
  p.instance.label = true_label;
  const bool measured = completed_ >= config_.warmup;
  Complete(p.instance, measured, p.predicted, p.scores);
  return LabelOutcome::kApplied;
}

void MonitorEngine::Complete(const Instance& instance, bool measured,
                             int predicted,
                             const std::vector<double>& scores) {
  const uint64_t i = completed_;
  ++acc_.instances;
  if (instance.label >= 0 &&
      static_cast<size_t>(instance.label) < acc_.class_counts.size()) {
    ++acc_.class_counts[static_cast<size_t>(instance.label)];
  }

  if (!measured) {
    classifier_->Train(instance);
    // Let trainable detectors see warmup data too (the paper trains
    // RBM-IM on the first batches before monitoring).
    if (detector_ != nullptr) {
      detector_->Observe(instance, instance.label, {});
      // Consume (and discard) any drift signaled on warmup data. A
      // detector whose drift flag latches until read would otherwise
      // carry a warmup alarm into the first measured instance and force
      // a spurious classifier reset there.
      (void)detector_->state();
    }
    ++completed_;
    return;
  }

  metrics_.Add(instance.label, predicted, scores);

  if (detector_ != nullptr) {
    if (config_.timing) {
      auto t0 = Clock::now();
      detector_->Observe(instance, predicted, scores);
      acc_.detector_seconds += Seconds(t0, Clock::now());
    } else {
      detector_->Observe(instance, predicted, scores);
    }
    // Read state() exactly once per observation: latching detectors
    // consume their flag on read.
    const DetectorState st = detector_->state();
    const DetectorState prev = last_state_;
    last_state_ = st;
    if (st == DetectorState::kDrift) {
      ++acc_.drifts;
      acc_.drift_positions.push_back(i);
      acc_.drift_events.push_back(DriftAlarm{i, detector_->drifted_classes()});
      if (hooks_.on_drift) {
        hooks_.on_drift(acc_.drift_events.back(), TakeSnapshot(i));
      }
      if (config_.reset_on_drift) classifier_->Reset();
    } else if (st == DetectorState::kWarning &&
               prev != DetectorState::kWarning && hooks_.on_warning) {
      // Fire on the *transition* into the warning zone only: DDM-family
      // detectors sit in kWarning for whole regions, and the snapshot's
      // pmAUC pass is too expensive to run per instance.
      hooks_.on_warning(i, TakeSnapshot(i));
    }
  }

  if (config_.timing) {
    auto t0 = Clock::now();
    classifier_->Train(instance);
    acc_.classifier_seconds += Seconds(t0, Clock::now());
  } else {
    classifier_->Train(instance);
  }

  if ((i - config_.warmup) % static_cast<uint64_t>(config_.eval_interval) ==
          0 &&
      metrics_.size() >= 50) {
    double pmauc = metrics_.PmAuc();
    double pmgm = metrics_.PmGMean();
    double accuracy = metrics_.Accuracy();
    double kappa = metrics_.Kappa();
    sum_pmauc_ += pmauc;
    sum_pmgm_ += pmgm;
    sum_acc_ += accuracy;
    sum_kappa_ += kappa;
    ++samples_;
    acc_.pmauc_series.emplace_back(i, pmauc);
    if (hooks_.on_metrics) {
      MetricsSnapshot snapshot;
      snapshot.position = i;
      snapshot.pmauc = pmauc;
      snapshot.pmgm = pmgm;
      snapshot.accuracy = accuracy;
      snapshot.kappa = kappa;
      snapshot.window_size = metrics_.size();
      hooks_.on_metrics(snapshot);
    }
  }
  ++completed_;
}

MetricsSnapshot MonitorEngine::TakeSnapshot(uint64_t position) const {
  MetricsSnapshot snapshot;
  snapshot.position = position;
  snapshot.pmauc = metrics_.PmAuc();
  snapshot.pmgm = metrics_.PmGMean();
  snapshot.accuracy = metrics_.Accuracy();
  snapshot.kappa = metrics_.Kappa();
  snapshot.window_size = metrics_.size();
  return snapshot;
}

EngineSnapshot MonitorEngine::Snapshot() const {
  EngineSnapshot s;
  s.position = completed_;
  s.pending = pending_.size();
  s.evicted = evicted_;
  s.unmatched_labels = unmatched_;
  s.metric_samples = samples_;
  s.drift_log = acc_.drift_events;
  s.class_counts = acc_.class_counts;
  s.window.assign(metrics_.entries().begin(), metrics_.entries().end());
  return s;
}

PrequentialResult MonitorEngine::Result() const {
  PrequentialResult r = acc_;
  if (samples_ > 0) {
    r.mean_pmauc = sum_pmauc_ / static_cast<double>(samples_);
    r.mean_pmgm = sum_pmgm_ / static_cast<double>(samples_);
    r.mean_accuracy = sum_acc_ / static_cast<double>(samples_);
    r.mean_kappa = sum_kappa_ / static_cast<double>(samples_);
  }
  return r;
}

}  // namespace ccd
