#include "eval/confusion.h"

#include <cmath>

namespace ccd {

double ConfusionMatrix::RowTotal(int k) const {
  double s = 0.0;
  for (int j = 0; j < k_; ++j) s += cell(k, j);
  return s;
}

double ConfusionMatrix::ColTotal(int k) const {
  double s = 0.0;
  for (int i = 0; i < k_; ++i) s += cell(i, k);
  return s;
}

double ConfusionMatrix::Accuracy() const {
  if (total_ <= 0.0) return 0.0;
  double correct = 0.0;
  for (int i = 0; i < k_; ++i) correct += cell(i, i);
  return correct / total_;
}

double ConfusionMatrix::Recall(int k, double fallback) const {
  double row = RowTotal(k);
  if (row <= 0.0) return fallback;
  return cell(k, k) / row;
}

double ConfusionMatrix::GMean() const {
  double log_sum = 0.0;
  int present = 0;
  for (int k = 0; k < k_; ++k) {
    double row = RowTotal(k);
    if (row <= 0.0) continue;
    ++present;
    double recall = cell(k, k) / row;
    if (recall <= 0.0) return 0.0;
    log_sum += std::log(recall);
  }
  if (present == 0) return 0.0;
  return std::exp(log_sum / present);
}

double ConfusionMatrix::GMeanSmoothed(double alpha) const {
  double log_sum = 0.0;
  int present = 0;
  for (int k = 0; k < k_; ++k) {
    double row = RowTotal(k);
    if (row <= 0.0) continue;
    ++present;
    double recall = (cell(k, k) + alpha) / (row + 2.0 * alpha);
    log_sum += std::log(recall);
  }
  if (present == 0) return 0.0;
  return std::exp(log_sum / present);
}

double ConfusionMatrix::Kappa() const {
  if (total_ <= 0.0) return 0.0;
  double po = Accuracy();
  double pe = 0.0;
  for (int k = 0; k < k_; ++k) {
    pe += (RowTotal(k) / total_) * (ColTotal(k) / total_);
  }
  if (pe >= 1.0) return 0.0;
  return (po - pe) / (1.0 - pe);
}

}  // namespace ccd
