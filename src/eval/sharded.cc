#include "eval/sharded.h"

#include <exception>

#include "runtime/sync.h"
#include "stream/stream.h"

namespace ccd {

EngineState CaptureEngineState(const MonitorEngine& engine,
                               const OnlineClassifier& classifier,
                               const DriftDetector* detector) {
  EngineState state;
  state.snapshot = engine.Snapshot();
  state.classifier = classifier.CloneState();
  if (detector != nullptr) state.detector = detector->CloneState();
  return state;
}

MonitorEngine RestoreEngineState(const StreamSchema& schema,
                                 const PrequentialConfig& config,
                                 EngineState& state, EngineHooks hooks) {
  MonitorEngine engine(schema, state.classifier.get(), state.detector.get(),
                       config, std::move(hooks));
  engine.Restore(state.snapshot);
  return engine;
}

std::vector<std::pair<uint64_t, uint64_t>> ShardBlocks(uint64_t instances,
                                                       int shards) {
  uint64_t k = shards < 1 ? 1 : static_cast<uint64_t>(shards);
  if (k > instances) k = instances == 0 ? 1 : instances;
  const uint64_t base = instances / k;
  const uint64_t rem = instances % k;
  std::vector<std::pair<uint64_t, uint64_t>> blocks;
  blocks.reserve(static_cast<size_t>(k));
  uint64_t begin = 0;
  for (uint64_t i = 0; i < k; ++i) {
    uint64_t size = base + (i < rem ? 1 : 0);
    blocks.emplace_back(begin, begin + size);
    begin += size;
  }
  return blocks;
}

namespace {

/// Coordinator of one sharded run: two task chains on the pool, linked by
/// handoff state.
///
///   MAT(k):  drain block k's instances from the stream into a slot
///            (sequential — streams are cursors; at most one in flight).
///   EVAL(k): run block k through an engine seeded with block k-1's
///            EngineState, then capture the state for block k+1
///            (sequential-handoff — at most one in flight).
///
/// MAT runs at most kLookahead blocks ahead of EVAL, bounding resident
/// instances to ~lookahead blocks; evaluated blocks are freed eagerly.
/// The two chains overlap (generation of block k+1 proceeds while block k
/// evaluates), and several ShardedRuns sharing one pool interleave their
/// tasks. Tasks never throw into the pool: the first failure aborts the
/// schedule and rethrows from Run().
class ShardedRun {
 public:
  ShardedRun(InstanceStream* stream, OnlineClassifier* classifier,
             DriftDetector* detector, const PrequentialConfig& config,
             runtime::ThreadPool* pool)
      : stream_(stream),
        classifier_(classifier),
        detector_(detector),
        config_(config),
        pool_(pool),
        blocks_(ShardBlocks(config.max_instances, config.shards)),
        slots_(blocks_.size()) {}

  PrequentialResult Run() {
    runtime::MutexLock lock(&mutex_);
    MaybeSubmitLocked();
    while (mat_in_flight_ || eval_in_flight_ ||
           (!aborted_ && eval_done_ != blocks_.size())) {
      done_.Wait(mutex_);
    }
    if (error_) std::rethrow_exception(error_);
    return std::move(result_);
  }

 private:
  static constexpr size_t kLookahead = 2;

  /// Submits every task whose dependencies are met. Invariants: one MAT
  /// and one EVAL in flight at most; MAT(k) needs MAT(k-1) done and
  /// k < eval_done + lookahead; EVAL(k) needs MAT(k) and EVAL(k-1) done.
  void MaybeSubmitLocked() CCD_REQUIRES(mutex_) {
    if (aborted_) return;
    if (!mat_in_flight_ && mat_done_ < blocks_.size() &&
        mat_done_ < eval_done_ + kLookahead) {
      mat_in_flight_ = true;
      const size_t k = mat_done_;
      pool_->Submit([this, k] { MatTask(k); });
    }
    if (!eval_in_flight_ && eval_done_ < mat_done_) {
      eval_in_flight_ = true;
      const size_t k = eval_done_;
      pool_->Submit([this, k] { EvalTask(k); });
    }
  }

  void MatTask(size_t k) {
    try {
      const uint64_t size = blocks_[k].second - blocks_[k].first;
      std::vector<Instance> block = Take(stream_, static_cast<size_t>(size));
      runtime::MutexLock lock(&mutex_);
      slots_[k] = std::move(block);
      mat_in_flight_ = false;
      ++mat_done_;
      MaybeSubmitLocked();
      done_.NotifyAll();
    } catch (...) {
      Fail(/*was_mat=*/true);
    }
  }

  void EvalTask(size_t k) {
    try {
      EngineState prev;
      std::vector<Instance> block;
      {
        runtime::MutexLock lock(&mutex_);
        prev = std::move(handoff_);
        block = std::move(slots_[k]);
        slots_[k].clear();
        slots_[k].shrink_to_fit();
      }
      // Block 0 evaluates on the caller's components; later blocks on the
      // clones handed off by their predecessor. `prev` owns those clones
      // and must stay alive for the whole block.
      OnlineClassifier* classifier =
          k == 0 ? classifier_ : prev.classifier.get();
      DriftDetector* detector = k == 0 ? detector_ : prev.detector.get();
      MonitorEngine engine(stream_->schema(), classifier, detector, config_);
      if (k > 0) engine.Restore(prev.snapshot);
      for (const Instance& instance : block) engine.Feed(instance);

      EngineState next;
      PrequentialResult result;
      const bool last = k + 1 == blocks_.size();
      if (last) {
        result = engine.Result();
      } else {
        next = CaptureEngineState(engine, *classifier, detector);
      }
      runtime::MutexLock lock(&mutex_);
      if (last) {
        result_ = std::move(result);
      } else {
        handoff_ = std::move(next);
      }
      eval_in_flight_ = false;
      ++eval_done_;
      MaybeSubmitLocked();
      done_.NotifyAll();
    } catch (...) {
      Fail(/*was_mat=*/false);
    }
  }

  void Fail(bool was_mat) {
    runtime::MutexLock lock(&mutex_);
    if (!error_) error_ = std::current_exception();
    aborted_ = true;
    if (was_mat) {
      mat_in_flight_ = false;
    } else {
      eval_in_flight_ = false;
    }
    done_.NotifyAll();
  }

  InstanceStream* stream_;
  OnlineClassifier* classifier_;
  DriftDetector* detector_;
  PrequentialConfig config_;
  runtime::ThreadPool* pool_;
  const std::vector<std::pair<uint64_t, uint64_t>> blocks_;

  runtime::Mutex mutex_;
  runtime::CondVar done_;
  /// Materialized blocks.
  std::vector<std::vector<Instance>> slots_ CCD_GUARDED_BY(mutex_);
  /// State between EVAL(k) and EVAL(k+1).
  EngineState handoff_ CCD_GUARDED_BY(mutex_);
  /// Written by the last EVAL.
  PrequentialResult result_ CCD_GUARDED_BY(mutex_);
  size_t mat_done_ CCD_GUARDED_BY(mutex_) = 0;
  size_t eval_done_ CCD_GUARDED_BY(mutex_) = 0;
  bool mat_in_flight_ CCD_GUARDED_BY(mutex_) = false;
  bool eval_in_flight_ CCD_GUARDED_BY(mutex_) = false;
  bool aborted_ CCD_GUARDED_BY(mutex_) = false;
  std::exception_ptr error_ CCD_GUARDED_BY(mutex_);
};

}  // namespace

PrequentialResult RunShardedPrequential(InstanceStream* stream,
                                        OnlineClassifier* classifier,
                                        DriftDetector* detector,
                                        const PrequentialConfig& config,
                                        runtime::ThreadPool* pool) {
  ValidatePrequentialConfig(config);
  if (pool == nullptr) {
    // One materializer + one evaluator is all the intra-run parallelism
    // a single sharded run can use.
    runtime::ThreadPool local(2);
    ShardedRun run(stream, classifier, detector, config, &local);
    return run.Run();
  }
  ShardedRun run(stream, classifier, detector, config, pool);
  return run.Run();
}

}  // namespace ccd
