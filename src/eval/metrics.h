#ifndef CCD_EVAL_METRICS_H_
#define CCD_EVAL_METRICS_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "eval/confusion.h"

namespace ccd {

/// Sliding-window prequential metrics for multi-class imbalanced streams:
/// pmAUC (prequential multi-class AUC, the windowed one-vs-one average AUC
/// of Wang & Minku) and pmGM (windowed geometric mean of class recalls),
/// plus accuracy and Cohen's kappa. The paper evaluates with window
/// W = 1000.
class WindowedMetrics {
 public:
  WindowedMetrics(int num_classes, int window = 1000)
      : num_classes_(num_classes), window_(window), confusion_(num_classes) {}

  /// Records one prequential outcome (scores are the classifier's
  /// normalized per-class supports for the instance).
  void Add(int truth, int predicted, const std::vector<double>& scores);

  /// pmAUC over the current window: mean over ordered class pairs (i < j),
  /// restricted to pairs with at least one instance of each class, of the
  /// pairwise AUC computed from normalized score ratios. O(W log W) — call
  /// at a sampling interval, not per instance.
  double PmAuc() const;

  /// pmGM over the current window (Laplace-smoothed recalls; see
  /// ConfusionMatrix::GMeanSmoothed for why).
  double PmGMean() const { return confusion_.GMeanSmoothed(); }
  double Accuracy() const { return confusion_.Accuracy(); }
  double Kappa() const { return confusion_.Kappa(); }

  size_t size() const { return entries_.size(); }
  const ConfusionMatrix& confusion() const { return confusion_; }

  /// One windowed outcome. Public so the monitoring engine can snapshot
  /// the window contents for shard handoff (prefix-state transfer).
  struct Entry {
    int truth;
    int predicted;
    std::vector<double> scores;

    friend bool operator==(const Entry& a, const Entry& b) {
      return a.truth == b.truth && a.predicted == b.predicted &&
             a.scores == b.scores;
    }
    friend bool operator!=(const Entry& a, const Entry& b) { return !(a == b); }
  };

  /// Window contents, oldest first. Together with the schema this is the
  /// complete metric state of a run at a point in time.
  const std::deque<Entry>& entries() const { return entries_; }

 private:
  int num_classes_;
  int window_;
  std::deque<Entry> entries_;
  ConfusionMatrix confusion_;
};

/// AUC of binary scores-vs-labels via the rank-sum estimator (midranks for
/// ties). `positive_scores` are scores of true positives; `negative_scores`
/// of true negatives. Returns 0.5 when either side is empty.
double BinaryAuc(const std::vector<double>& positive_scores,
                 const std::vector<double>& negative_scores);

}  // namespace ccd

#endif  // CCD_EVAL_METRICS_H_
