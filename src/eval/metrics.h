#ifndef CCD_EVAL_METRICS_H_
#define CCD_EVAL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "eval/confusion.h"

namespace ccd {

/// Sliding-window prequential metrics for multi-class imbalanced streams:
/// pmAUC (prequential multi-class AUC, the windowed one-vs-one average AUC
/// of Wang & Minku) and pmGM (windowed geometric mean of class recalls),
/// plus accuracy and Cohen's kappa. The paper evaluates with window
/// W = 1000.
///
/// The window is a preallocated ring and the per-true-class buckets pmAUC
/// needs are maintained incrementally on Add/evict, so an evaluation tick
/// never re-scans or re-buckets the window and a steady-state Add performs
/// no heap allocation (entry slots and score vectors are reused in place).
/// Peak memory is bounded at construction: window entries plus one
/// window-sized index ring per class.
class WindowedMetrics {
 public:
  WindowedMetrics(int num_classes, int window = 1000);

  /// Records one prequential outcome (scores are the classifier's
  /// normalized per-class supports for the instance). Allocation-free once
  /// the window has filled and score widths have stabilized.
  void Add(int truth, int predicted, const std::vector<double>& scores);

  /// pmAUC over the current window: mean over ordered class pairs (i < j),
  /// restricted to pairs with at least one instance of each class, of the
  /// pairwise AUC computed from normalized score ratios. O(W log W) — call
  /// at a sampling interval, not per instance.
  double PmAuc() const;

  /// pmGM over the current window (Laplace-smoothed recalls; see
  /// ConfusionMatrix::GMeanSmoothed for why).
  double PmGMean() const { return confusion_.GMeanSmoothed(); }
  double Accuracy() const { return confusion_.Accuracy(); }
  double Kappa() const { return confusion_.Kappa(); }

  size_t size() const { return ring_.size(); }
  const ConfusionMatrix& confusion() const { return confusion_; }

  /// One windowed outcome. Public so the monitoring engine can snapshot
  /// the window contents for shard handoff (prefix-state transfer).
  struct Entry {
    int truth;
    int predicted;
    std::vector<double> scores;

    friend bool operator==(const Entry& a, const Entry& b) {
      return a.truth == b.truth && a.predicted == b.predicted &&
             a.scores == b.scores;
    }
    friend bool operator!=(const Entry& a, const Entry& b) { return !(a == b); }
  };

  /// Appends the window contents, oldest first, to `out`. Together with
  /// the schema this is the complete metric state of a run at a point in
  /// time (the linearized form of the internal ring).
  void CopyWindow(std::vector<Entry>* out) const;

 private:
  /// Fixed-capacity FIFO of ring-slot indices — the per-class bucket.
  /// Capacity is the window size (a single class can own the whole
  /// window), so push/pop never allocate.
  struct SlotRing {
    std::vector<uint32_t> slots;
    size_t head = 0;
    size_t count = 0;

    void PushBack(uint32_t slot) {
      slots[(head + count) % slots.size()] = slot;
      ++count;
    }
    void PopFront() {
      head = (head + 1) % slots.size();
      --count;
    }
    uint32_t At(size_t i) const { return slots[(head + i) % slots.size()]; }
  };

  int num_classes_;
  int window_;
  /// Window entries in a ring: ring_[(head_ + k) % window_] is the k-th
  /// oldest. Grows by push_back only while filling (head_ == 0), then
  /// entries are overwritten in place.
  std::vector<Entry> ring_;
  size_t head_ = 0;
  ConfusionMatrix confusion_;
  /// bucket_[c] lists the ring slots whose entry has truth c, oldest
  /// first — maintained incrementally so PmAuc never re-buckets.
  std::vector<SlotRing> bucket_;
  /// PmAuc scratch (reused across pairs and calls; no metric state).
  mutable std::vector<double> pos_scratch_;
  mutable std::vector<double> neg_scratch_;
  mutable std::vector<std::pair<double, int>> pool_scratch_;
};

/// AUC of binary scores-vs-labels via the rank-sum estimator (midranks for
/// ties). `positive_scores` are scores of true positives; `negative_scores`
/// of true negatives. Returns 0.5 when either side is empty.
double BinaryAuc(const std::vector<double>& positive_scores,
                 const std::vector<double>& negative_scores);

/// Scratch-buffer overload for allocation-free callers: `pool` is cleared
/// and reused for the rank pooling (capacity persists across calls).
double BinaryAuc(const std::vector<double>& positive_scores,
                 const std::vector<double>& negative_scores,
                 std::vector<std::pair<double, int>>& pool);

}  // namespace ccd

#endif  // CCD_EVAL_METRICS_H_
