#include "eval/metrics.h"

#include <algorithm>

namespace ccd {

double BinaryAuc(const std::vector<double>& positive_scores,
                 const std::vector<double>& negative_scores) {
  std::vector<std::pair<double, int>> pool;
  return BinaryAuc(positive_scores, negative_scores, pool);
}

double BinaryAuc(const std::vector<double>& positive_scores,
                 const std::vector<double>& negative_scores,
                 std::vector<std::pair<double, int>>& pool) {
  if (positive_scores.empty() || negative_scores.empty()) return 0.5;
  // Pool, sort, midrank; AUC = (rank_sum_pos - n_pos(n_pos+1)/2) / (n_pos*n_neg).
  pool.clear();
  pool.reserve(positive_scores.size() + negative_scores.size());
  for (double s : positive_scores) pool.emplace_back(s, 1);
  for (double s : negative_scores) pool.emplace_back(s, 0);
  std::sort(pool.begin(), pool.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < pool.size()) {
    size_t j = i;
    while (j + 1 < pool.size() && pool[j + 1].first == pool[i].first) ++j;
    double midrank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t m = i; m <= j; ++m) {
      if (pool[m].second == 1) rank_sum_pos += midrank;
    }
    i = j + 1;
  }
  double np = static_cast<double>(positive_scores.size());
  double nn = static_cast<double>(negative_scores.size());
  return (rank_sum_pos - np * (np + 1.0) / 2.0) / (np * nn);
}

WindowedMetrics::WindowedMetrics(int num_classes, int window)
    : num_classes_(num_classes), window_(window), confusion_(num_classes) {
  if (window_ > 0) {
    ring_.reserve(static_cast<size_t>(window_));
  }
  // Buckets exist even for a degenerate (<= 0) window: PmAuc indexes
  // bucket_[c] for every class unconditionally. Their slot rings are
  // empty then — Add never stores, so counts stay 0.
  bucket_.resize(static_cast<size_t>(num_classes_ > 0 ? num_classes_ : 0));
  for (SlotRing& b : bucket_) {
    b.slots.resize(static_cast<size_t>(window_ > 0 ? window_ : 0));
  }
}

void WindowedMetrics::Add(int truth, int predicted,
                          const std::vector<double>& scores) {
  if (window_ <= 0) {
    // Degenerate window: the entry enters and leaves immediately, exactly
    // as in the naive push-then-evict formulation.
    confusion_.Add(truth, predicted);
    confusion_.Remove(truth, predicted);
    return;
  }
  confusion_.Add(truth, predicted);
  uint32_t slot;
  if (ring_.size() < static_cast<size_t>(window_)) {
    // Filling: head_ is still 0, so physical == logical order.
    slot = static_cast<uint32_t>(ring_.size());
    ring_.push_back(Entry{truth, predicted, scores});
  } else {
    // Full: the oldest entry (at head_) is evicted and its slot reused for
    // the newcomer, which thereby becomes the logical back.
    slot = static_cast<uint32_t>(head_);
    Entry& old = ring_[head_];
    confusion_.Remove(old.truth, old.predicted);
    if (old.truth >= 0 && old.truth < num_classes_) {
      // The globally oldest entry is also the oldest of its class.
      bucket_[static_cast<size_t>(old.truth)].PopFront();
    }
    old.truth = truth;
    old.predicted = predicted;
    old.scores = scores;  // Copy-assign reuses the slot's capacity.
    head_ = (head_ + 1) % static_cast<size_t>(window_);
  }
  if (truth >= 0 && truth < num_classes_) {
    bucket_[static_cast<size_t>(truth)].PushBack(slot);
  }
}

double WindowedMetrics::PmAuc() const {
  double auc_sum = 0.0;
  int pairs = 0;
  for (int i = 0; i < num_classes_; ++i) {
    const SlotRing& bi = bucket_[static_cast<size_t>(i)];
    if (bi.count == 0) continue;
    for (int j = i + 1; j < num_classes_; ++j) {
      const SlotRing& bj = bucket_[static_cast<size_t>(j)];
      if (bj.count == 0) continue;
      // One-vs-one AUC between classes i (positive) and j (negative),
      // scoring each instance by its normalized support for class i.
      // Stored score vectors may be shorter than num_classes (a classifier
      // that scores only the classes it has seen, or none at all); a class
      // with no stored score has zero support.
      auto support = [](const Entry& e, int c) {
        return static_cast<size_t>(c) < e.scores.size()
                   ? e.scores[static_cast<size_t>(c)]
                   : 0.0;
      };
      auto score_ratio = [&](const Entry& e) {
        double si = support(e, i);
        double sj = support(e, j);
        double denom = si + sj;
        return denom > 0.0 ? si / denom : 0.5;
      };
      pos_scratch_.clear();
      neg_scratch_.clear();
      for (size_t n = 0; n < bi.count; ++n) {
        pos_scratch_.push_back(score_ratio(ring_[bi.At(n)]));
      }
      for (size_t n = 0; n < bj.count; ++n) {
        neg_scratch_.push_back(score_ratio(ring_[bj.At(n)]));
      }
      auc_sum += BinaryAuc(pos_scratch_, neg_scratch_, pool_scratch_);
      ++pairs;
    }
  }
  return pairs > 0 ? auc_sum / pairs : 0.5;
}

void WindowedMetrics::CopyWindow(std::vector<Entry>* out) const {
  const size_t n = ring_.size();
  out->reserve(out->size() + n);
  for (size_t k = 0; k < n; ++k) {
    out->push_back(ring_[(head_ + k) % n]);
  }
}

}  // namespace ccd
