#include "eval/metrics.h"

#include <algorithm>

namespace ccd {

double BinaryAuc(const std::vector<double>& positive_scores,
                 const std::vector<double>& negative_scores) {
  if (positive_scores.empty() || negative_scores.empty()) return 0.5;
  // Pool, sort, midrank; AUC = (rank_sum_pos - n_pos(n_pos+1)/2) / (n_pos*n_neg).
  std::vector<std::pair<double, int>> pooled;
  pooled.reserve(positive_scores.size() + negative_scores.size());
  for (double s : positive_scores) pooled.emplace_back(s, 1);
  for (double s : negative_scores) pooled.emplace_back(s, 0);
  std::sort(pooled.begin(), pooled.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < pooled.size()) {
    size_t j = i;
    while (j + 1 < pooled.size() && pooled[j + 1].first == pooled[i].first) ++j;
    double midrank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t m = i; m <= j; ++m) {
      if (pooled[m].second == 1) rank_sum_pos += midrank;
    }
    i = j + 1;
  }
  double np = static_cast<double>(positive_scores.size());
  double nn = static_cast<double>(negative_scores.size());
  return (rank_sum_pos - np * (np + 1.0) / 2.0) / (np * nn);
}

void WindowedMetrics::Add(int truth, int predicted,
                          const std::vector<double>& scores) {
  entries_.push_back({truth, predicted, scores});
  confusion_.Add(truth, predicted);
  if (static_cast<int>(entries_.size()) > window_) {
    const Entry& old = entries_.front();
    confusion_.Remove(old.truth, old.predicted);
    entries_.pop_front();
  }
}

double WindowedMetrics::PmAuc() const {
  // Bucket window entries per true class once.
  std::vector<std::vector<const Entry*>> by_class(
      static_cast<size_t>(num_classes_));
  for (const Entry& e : entries_) {
    if (e.truth >= 0 && e.truth < num_classes_) {
      by_class[static_cast<size_t>(e.truth)].push_back(&e);
    }
  }
  double auc_sum = 0.0;
  int pairs = 0;
  for (int i = 0; i < num_classes_; ++i) {
    if (by_class[static_cast<size_t>(i)].empty()) continue;
    for (int j = i + 1; j < num_classes_; ++j) {
      if (by_class[static_cast<size_t>(j)].empty()) continue;
      // One-vs-one AUC between classes i (positive) and j (negative),
      // scoring each instance by its normalized support for class i.
      // Stored score vectors may be shorter than num_classes (a classifier
      // that scores only the classes it has seen, or none at all); a class
      // with no stored score has zero support.
      std::vector<double> pos, neg;
      auto support = [](const Entry* e, int c) {
        return static_cast<size_t>(c) < e->scores.size()
                   ? e->scores[static_cast<size_t>(c)]
                   : 0.0;
      };
      auto score_ratio = [&](const Entry* e) {
        double si = support(e, i);
        double sj = support(e, j);
        double denom = si + sj;
        return denom > 0.0 ? si / denom : 0.5;
      };
      for (const Entry* e : by_class[static_cast<size_t>(i)]) {
        pos.push_back(score_ratio(e));
      }
      for (const Entry* e : by_class[static_cast<size_t>(j)]) {
        neg.push_back(score_ratio(e));
      }
      auc_sum += BinaryAuc(pos, neg);
      ++pairs;
    }
  }
  return pairs > 0 ? auc_sum / pairs : 0.5;
}

}  // namespace ccd
