#ifndef CCD_EVAL_SELF_TUNING_H_
#define CCD_EVAL_SELF_TUNING_H_

#include <functional>
#include <vector>

#include "stats/nelder_mead.h"

namespace ccd {

/// Self hyper-parameter tuning for streaming learners (Veloso, Gama &
/// Malheiro, DS 2018) — the protocol the paper applies to every detector:
/// given a parameter vector in a box, minimize (1 - metric) measured by a
/// short prequential run on a stream prefix with online Nelder-Mead.
///
/// `evaluate` must build a fresh (stream, classifier, detector) pipeline
/// from the parameter vector, run the prefix, and return the metric (higher
/// is better, e.g. mean pmAUC). Deterministic seeding inside `evaluate`
/// makes the tuning itself deterministic.
struct SelfTuningResult {
  std::vector<double> best_params;
  double best_metric = 0.0;
  int evaluations = 0;
};

inline SelfTuningResult SelfTuneOnPrefix(
    const std::function<double(const std::vector<double>&)>& evaluate,
    const std::vector<double>& initial, const std::vector<double>& lower,
    const std::vector<double>& upper, int budget = 40) {
  NelderMeadOptions options;
  options.max_evaluations = budget;
  NelderMeadResult r = NelderMeadMinimize(
      [&evaluate](const std::vector<double>& p) { return 1.0 - evaluate(p); },
      initial, lower, upper, options);
  SelfTuningResult out;
  out.best_params = r.best_point;
  out.best_metric = 1.0 - r.best_value;
  out.evaluations = r.evaluations;
  return out;
}

}  // namespace ccd

#endif  // CCD_EVAL_SELF_TUNING_H_
