#ifndef CCD_EVAL_CONFUSION_H_
#define CCD_EVAL_CONFUSION_H_

#include <cstddef>
#include <vector>

namespace ccd {

/// Dense K x K confusion matrix with the derived multi-class metrics the
/// evaluation protocol needs (recall vector, G-mean, accuracy, Cohen's
/// kappa).
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes)
      : k_(num_classes),
        cells_(static_cast<size_t>(num_classes) *
                   static_cast<size_t>(num_classes),
               0.0) {}

  void Add(int truth, int predicted, double weight = 1.0) {
    if (truth < 0 || truth >= k_ || predicted < 0 || predicted >= k_) return;
    cells_[static_cast<size_t>(truth) * k_ + static_cast<size_t>(predicted)] +=
        weight;
    total_ += weight;
  }

  void Remove(int truth, int predicted, double weight = 1.0) {
    Add(truth, predicted, -weight);
  }

  void Clear() {
    cells_.assign(cells_.size(), 0.0);
    total_ = 0.0;
  }

  double cell(int truth, int predicted) const {
    return cells_[static_cast<size_t>(truth) * k_ +
                  static_cast<size_t>(predicted)];
  }
  double total() const { return total_; }
  int num_classes() const { return k_; }

  /// Instances with true class k.
  double RowTotal(int k) const;
  /// Instances predicted as class k.
  double ColTotal(int k) const;

  double Accuracy() const;
  /// Recall of class k; `fallback` is returned for unseen classes.
  double Recall(int k, double fallback = 0.0) const;
  /// Geometric mean of recalls over classes present in the window
  /// (pmGM when computed over a sliding window).
  double GMean() const;
  /// G-mean over Laplace-smoothed recalls (TP+alpha)/(n+2*alpha). With many
  /// classes and a finite window, some class almost always has one missed
  /// instance, which pins the raw G-mean at exactly 0; the smoothed variant
  /// keeps the metric informative (used by the prequential pmGM).
  double GMeanSmoothed(double alpha = 1.0) const;
  /// Cohen's kappa (chance-corrected accuracy).
  double Kappa() const;

 private:
  int k_;
  std::vector<double> cells_;
  double total_ = 0.0;
};

}  // namespace ccd

#endif  // CCD_EVAL_CONFUSION_H_
