#ifndef CCD_STATS_DISTRIBUTIONS_H_
#define CCD_STATS_DISTRIBUTIONS_H_

namespace ccd {

/// Cumulative distribution functions and special functions needed by the
/// statistical tests in this library (Wilcoxon, Granger/F, Friedman/chi²,
/// Student-t). Implementations follow the classic series / continued
/// fraction expansions (Numerical Recipes style) and are accurate to ~1e-10
/// over the parameter ranges used here.

/// Natural log of the gamma function (Lanczos approximation).
double LogGamma(double x);

/// Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a), a > 0, x >= 0.
double RegularizedGammaP(double a, double x);

/// Regularized incomplete beta I_x(a, b), a,b > 0, x in [0,1].
double RegularizedBeta(double a, double b, double x);

/// Standard normal CDF Φ(x).
double NormalCdf(double x);

/// Two-sided p-value for a standard normal statistic z.
double NormalTwoSidedPValue(double z);

/// Chi-square CDF with k degrees of freedom.
double ChiSquareCdf(double x, double k);

/// Upper-tail p-value for a chi-square statistic.
double ChiSquarePValue(double x, double k);

/// F-distribution CDF with (d1, d2) degrees of freedom.
double FCdf(double x, double d1, double d2);

/// Upper-tail p-value for an F statistic.
double FPValue(double x, double d1, double d2);

/// Two-sided p-value for a Student-t statistic with v degrees of freedom.
double StudentTTwoSidedPValue(double t, double v);

}  // namespace ccd

#endif  // CCD_STATS_DISTRIBUTIONS_H_
