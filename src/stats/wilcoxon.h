#ifndef CCD_STATS_WILCOXON_H_
#define CCD_STATS_WILCOXON_H_

#include <vector>

namespace ccd {

/// Result of a two-sample rank test.
struct RankTestResult {
  double statistic = 0.0;  ///< Mann-Whitney U (rank-sum form).
  double z = 0.0;          ///< Normal approximation z-score.
  double p_value = 1.0;    ///< Two-sided p-value.
  bool valid = false;      ///< False when a sample is too small/degenerate.
};

/// Wilcoxon rank-sum (Mann-Whitney U) test with tie correction and normal
/// approximation, as used by the WSTD drift detector to compare the error
/// behaviour in two sub-windows.
RankTestResult WilcoxonRankSum(const std::vector<double>& a,
                               const std::vector<double>& b);

/// Wilcoxon signed-rank test for paired samples (used in analysis helpers).
/// Zero differences are dropped per standard practice.
RankTestResult WilcoxonSignedRank(const std::vector<double>& a,
                                  const std::vector<double>& b);

}  // namespace ccd

#endif  // CCD_STATS_WILCOXON_H_
