#ifndef CCD_STATS_GRANGER_H_
#define CCD_STATS_GRANGER_H_

#include <vector>

namespace ccd {

/// Result of a Granger causality test.
struct GrangerResult {
  double f_stat = 0.0;
  double p_value = 1.0;
  /// True when both regressions could be fitted (enough observations,
  /// non-singular designs). When false, callers should treat the outcome as
  /// "no evidence either way".
  bool valid = false;
  /// Convenience: p_value < alpha given the alpha used at the call site.
  bool causality_rejected = false;
};

/// Bivariate Granger causality F-test: does the history of `x` help predict
/// `y` beyond y's own history?
///
/// Fits the restricted model  y_t = c + Σ_{i=1..p} a_i y_{t-i}
/// and the unrestricted one   y_t = c + Σ a_i y_{t-i} + Σ b_i x_{t-i},
/// then F = ((RSS_r - RSS_u)/p) / (RSS_u/(n - 2p - 1)).
///
/// Rejecting the null (p_value < alpha) means x *does* Granger-cause y.
/// The RBM-IM detector applies this to reconstruction-error trends of
/// consecutive windows: an accepted causality relationship means the stream
/// is stable; rejection signals concept drift (Sec. V-B of the paper).
GrangerResult GrangerCausality(const std::vector<double>& x,
                               const std::vector<double>& y, int lag,
                               double alpha);

/// Variant on first differences (Δx_t = x_t - x_{t-1}), the form the paper
/// prescribes for non-stationary processes.
GrangerResult GrangerCausalityFirstDiff(const std::vector<double>& x,
                                        const std::vector<double>& y, int lag,
                                        double alpha);

}  // namespace ccd

#endif  // CCD_STATS_GRANGER_H_
