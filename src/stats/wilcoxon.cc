#include "stats/wilcoxon.h"

#include <algorithm>
#include <cmath>

#include "stats/distributions.h"

namespace ccd {
namespace {

/// Assigns midranks to the pooled sorted values; returns the rank of each
/// element of the pooled array and the tie-correction term Σ(t³ - t).
double Midranks(std::vector<std::pair<double, int>>* pooled,
                std::vector<double>* ranks) {
  std::sort(pooled->begin(), pooled->end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  const size_t n = pooled->size();
  ranks->assign(n, 0.0);
  double tie_term = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && (*pooled)[j + 1].first == (*pooled)[i].first) ++j;
    double rank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t k = i; k <= j; ++k) (*ranks)[k] = rank;
    double t = static_cast<double>(j - i + 1);
    if (t > 1.0) tie_term += t * t * t - t;
    i = j + 1;
  }
  return tie_term;
}

}  // namespace

RankTestResult WilcoxonRankSum(const std::vector<double>& a,
                               const std::vector<double>& b) {
  RankTestResult out;
  const double n1 = static_cast<double>(a.size());
  const double n2 = static_cast<double>(b.size());
  if (a.size() < 2 || b.size() < 2) return out;

  std::vector<std::pair<double, int>> pooled;
  pooled.reserve(a.size() + b.size());
  for (double v : a) pooled.emplace_back(v, 0);
  for (double v : b) pooled.emplace_back(v, 1);
  std::vector<double> ranks;
  double tie_term = Midranks(&pooled, &ranks);

  double rank_sum_a = 0.0;
  for (size_t i = 0; i < pooled.size(); ++i) {
    if (pooled[i].second == 0) rank_sum_a += ranks[i];
  }
  double u = rank_sum_a - n1 * (n1 + 1.0) / 2.0;
  double mu = n1 * n2 / 2.0;
  double n = n1 + n2;
  double sigma2 =
      n1 * n2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
  out.statistic = u;
  if (sigma2 <= 0.0) {
    // All values tied: the two windows are indistinguishable.
    out.z = 0.0;
    out.p_value = 1.0;
    out.valid = true;
    return out;
  }
  out.z = (u - mu) / std::sqrt(sigma2);
  out.p_value = NormalTwoSidedPValue(out.z);
  out.valid = true;
  return out;
}

RankTestResult WilcoxonSignedRank(const std::vector<double>& a,
                                  const std::vector<double>& b) {
  RankTestResult out;
  if (a.size() != b.size()) return out;
  std::vector<double> diffs;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    if (d != 0.0) diffs.push_back(d);
  }
  const size_t n = diffs.size();
  if (n < 5) return out;

  std::vector<std::pair<double, int>> pooled;
  pooled.reserve(n);
  for (double d : diffs) pooled.emplace_back(std::fabs(d), d > 0 ? 0 : 1);
  std::vector<double> ranks;
  Midranks(&pooled, &ranks);
  double w_plus = 0.0;
  for (size_t i = 0; i < pooled.size(); ++i) {
    if (pooled[i].second == 0) w_plus += ranks[i];
  }
  double nn = static_cast<double>(n);
  double mu = nn * (nn + 1.0) / 4.0;
  double sigma = std::sqrt(nn * (nn + 1.0) * (2.0 * nn + 1.0) / 24.0);
  out.statistic = w_plus;
  out.z = (w_plus - mu) / sigma;
  out.p_value = NormalTwoSidedPValue(out.z);
  out.valid = true;
  return out;
}

}  // namespace ccd
