#ifndef CCD_STATS_RANKING_H_
#define CCD_STATS_RANKING_H_

#include <string>
#include <vector>

namespace ccd {

/// Result of the Friedman ranking test with Bonferroni-Dunn post-hoc
/// analysis over N datasets x k algorithms (Demsar's protocol, the one the
/// paper uses for Figs. 4-5).
struct FriedmanResult {
  std::vector<double> average_ranks;  ///< Per algorithm; rank 1 = best.
  double chi_square = 0.0;            ///< Friedman chi² statistic.
  double p_value = 1.0;               ///< Upper-tail chi² p-value.
  double critical_difference = 0.0;   ///< Bonferroni-Dunn CD at given alpha.
  bool valid = false;
};

/// Runs the Friedman test on a score matrix `scores[dataset][algorithm]`.
/// `higher_is_better` controls rank direction (true for pmAUC/pmGM).
/// `alpha` selects the Bonferroni-Dunn critical value (0.05 or 0.10
/// supported; other values fall back to 0.05).
FriedmanResult FriedmanTest(const std::vector<std::vector<double>>& scores,
                            bool higher_is_better = true, double alpha = 0.05);

/// Renders a textual critical-difference diagram (the ASCII analogue of the
/// paper's Figs. 4-5): algorithms placed on a rank axis, with groups not
/// statistically distinguishable from the best marked.
std::string RenderCriticalDifferenceDiagram(
    const std::vector<std::string>& names, const FriedmanResult& result);

/// Result of the Bayesian signed test (Benavoli et al., JMLR 2017) comparing
/// two algorithms over paired per-dataset scores (paper Figs. 6-7).
struct BayesianSignedResult {
  double p_left = 0.0;   ///< P(algorithm A practically better).
  double p_rope = 0.0;   ///< P(practical equivalence).
  double p_right = 0.0;  ///< P(algorithm B practically better).
  /// Mean posterior barycentric weights (θ_left, θ_rope, θ_right).
  double mean_left = 0.0, mean_rope = 0.0, mean_right = 0.0;
  bool valid = false;
};

/// Monte-Carlo Bayesian signed test. `a` and `b` are paired scores over
/// datasets; `rope` is the region of practical equivalence half-width in the
/// same units as the scores (the paper's plots use 1 percentage point);
/// `samples` controls MC precision; `seed` makes runs reproducible.
BayesianSignedResult BayesianSignedTest(const std::vector<double>& a,
                                        const std::vector<double>& b,
                                        double rope, int samples = 20000,
                                        uint64_t seed = 7);

}  // namespace ccd

#endif  // CCD_STATS_RANKING_H_
