#include "stats/ranking.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "stats/distributions.h"
#include "utils/rng.h"

namespace ccd {
namespace {

/// Two-tailed Bonferroni-Dunn critical values q_alpha for comparing k
/// algorithms (Demsar 2006, Table 5(b)). Index = k; entry 0/1 unused.
const double kDunnQ05[] = {0, 0, 1.960, 2.241, 2.394, 2.498, 2.576,
                           2.638, 2.690, 2.724, 2.773};
const double kDunnQ10[] = {0, 0, 1.645, 1.960, 2.128, 2.241, 2.326,
                           2.394, 2.450, 2.498, 2.539};

double DunnQ(int k, double alpha) {
  const double* table = (alpha >= 0.10) ? kDunnQ10 : kDunnQ05;
  if (k < 2) return 0.0;
  if (k > 10) k = 10;  // Conservative clamp; the paper compares 6.
  return table[k];
}

}  // namespace

FriedmanResult FriedmanTest(const std::vector<std::vector<double>>& scores,
                            bool higher_is_better, double alpha) {
  FriedmanResult out;
  const size_t n = scores.size();
  if (n == 0) return out;
  const size_t k = scores[0].size();
  if (k < 2) return out;

  out.average_ranks.assign(k, 0.0);
  for (const auto& row : scores) {
    if (row.size() != k) return out;
    // Midrank assignment within this dataset.
    std::vector<size_t> idx(k);
    for (size_t i = 0; i < k; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
      return higher_is_better ? row[a] > row[b] : row[a] < row[b];
    });
    size_t i = 0;
    while (i < k) {
      size_t j = i;
      while (j + 1 < k && row[idx[j + 1]] == row[idx[i]]) ++j;
      double rank = 0.5 * static_cast<double>(i + j) + 1.0;
      for (size_t m = i; m <= j; ++m) out.average_ranks[idx[m]] += rank;
      i = j + 1;
    }
  }
  for (double& r : out.average_ranks) r /= static_cast<double>(n);

  double sum_r2 = 0.0;
  for (double r : out.average_ranks) sum_r2 += r * r;
  const double kk = static_cast<double>(k);
  const double nn = static_cast<double>(n);
  out.chi_square =
      12.0 * nn / (kk * (kk + 1.0)) * (sum_r2 - kk * (kk + 1.0) * (kk + 1.0) / 4.0);
  out.p_value = ChiSquarePValue(out.chi_square, kk - 1.0);
  out.critical_difference =
      DunnQ(static_cast<int>(k), alpha) * std::sqrt(kk * (kk + 1.0) / (6.0 * nn));
  out.valid = true;
  return out;
}

std::string RenderCriticalDifferenceDiagram(
    const std::vector<std::string>& names, const FriedmanResult& result) {
  std::ostringstream out;
  if (!result.valid || names.size() != result.average_ranks.size()) {
    return "(invalid ranking)\n";
  }
  std::vector<size_t> order(names.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return result.average_ranks[a] < result.average_ranks[b];
  });
  double best = result.average_ranks[order[0]];
  out << "Friedman chi2=" << result.chi_square << " p=" << result.p_value
      << "  CD(Bonferroni-Dunn)=" << result.critical_difference << "\n";
  for (size_t i : order) {
    bool tied_with_best =
        result.average_ranks[i] - best <= result.critical_difference;
    out << "  rank " << result.average_ranks[i] << "  " << names[i]
        << (i == order[0] ? "  (best)"
                          : (tied_with_best ? "  (within CD of best)" : ""))
        << "\n";
  }
  return out.str();
}

BayesianSignedResult BayesianSignedTest(const std::vector<double>& a,
                                        const std::vector<double>& b,
                                        double rope, int samples,
                                        uint64_t seed) {
  BayesianSignedResult out;
  if (a.size() != b.size() || a.empty() || samples < 100) return out;

  // Count observations in each region; the Dirichlet prior puts one
  // pseudo-observation on the rope (Benavoli et al.'s s=1, z0=rope choice).
  double n_left = 0, n_rope = 1.0, n_right = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    if (d > rope) {
      n_left += 1.0;  // A practically better.
    } else if (d < -rope) {
      n_right += 1.0;  // B practically better.
    } else {
      n_rope += 1.0;
    }
  }

  Rng rng(seed);
  // Sample Dirichlet(n_left, n_rope, n_right) via Gamma marginals.
  auto sample_gamma = [&rng](double shape) {
    // Marsaglia-Tsang; for shape < 1 boost via G(a) = G(a+1) * U^{1/a}.
    double boost = 1.0;
    if (shape < 1.0) {
      boost = std::pow(rng.NextDouble() + 1e-300, 1.0 / shape);
      shape += 1.0;
    }
    double d = shape - 1.0 / 3.0;
    double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x = rng.Gaussian();
      double v = 1.0 + c * x;
      if (v <= 0.0) continue;
      v = v * v * v;
      double u = rng.NextDouble();
      if (u < 1.0 - 0.0331 * x * x * x * x) return boost * d * v;
      if (std::log(u + 1e-300) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
        return boost * d * v;
    }
  };

  int wins_left = 0, wins_rope = 0, wins_right = 0;
  double sum_l = 0, sum_m = 0, sum_r = 0;
  for (int s = 0; s < samples; ++s) {
    double gl = n_left > 0 ? sample_gamma(n_left) : 0.0;
    double gm = sample_gamma(n_rope);
    double gr = n_right > 0 ? sample_gamma(n_right) : 0.0;
    double tot = gl + gm + gr;
    double tl = gl / tot, tm = gm / tot, tr = gr / tot;
    sum_l += tl;
    sum_m += tm;
    sum_r += tr;
    if (tl >= tm && tl >= tr) {
      ++wins_left;
    } else if (tr >= tl && tr >= tm) {
      ++wins_right;
    } else {
      ++wins_rope;
    }
  }
  out.p_left = static_cast<double>(wins_left) / samples;
  out.p_rope = static_cast<double>(wins_rope) / samples;
  out.p_right = static_cast<double>(wins_right) / samples;
  out.mean_left = sum_l / samples;
  out.mean_rope = sum_m / samples;
  out.mean_right = sum_r / samples;
  out.valid = true;
  return out;
}

}  // namespace ccd
