#ifndef CCD_STATS_WELFORD_H_
#define CCD_STATS_WELFORD_H_

#include <cmath>
#include <cstdint>

namespace ccd {

/// Numerically stable running mean/variance (Welford's algorithm). Used by
/// detectors that track error-rate statistics incrementally.
class Welford {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  void Reset() {
    n_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }

  /// Population variance (divide by n).
  double Variance() const { return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0; }

  /// Sample variance (divide by n-1).
  double SampleVariance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

  double StdDev() const { return std::sqrt(Variance()); }

  /// Raw second central moment — serialization access. mean/m2 must be
  /// persisted verbatim: recomputing them from samples would not reproduce
  /// the incremental floating-point history bit for bit.
  double m2() const { return m2_; }

  void RestoreState(uint64_t n, double mean, double m2) {
    n_ = n;
    mean_ = mean;
    m2_ = m2;
  }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Hoeffding deviation bound ε(δ, n) = sqrt(R² ln(1/δ) / (2n)) for a random
/// variable with range R. Shared by the Hoeffding-style detectors and the
/// Hoeffding-tree split test.
inline double HoeffdingBound(double range, double delta, double n) {
  if (n <= 0.0) return 1e300;
  double ln_inv = std::log(1.0 / delta);
  return std::sqrt(range * range * ln_inv / (2.0 * n));
}

}  // namespace ccd

#endif  // CCD_STATS_WELFORD_H_
