#ifndef CCD_STATS_NELDER_MEAD_H_
#define CCD_STATS_NELDER_MEAD_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace ccd {

/// Options for the Nelder-Mead simplex optimizer.
struct NelderMeadOptions {
  int max_evaluations = 200;
  double tolerance = 1e-6;       ///< Stop when simplex f-spread is below.
  double initial_step = 0.25;    ///< Relative step for the initial simplex.
  uint64_t seed = 13;            ///< For tie-breaking jitter.
};

/// Result of an optimization run.
struct NelderMeadResult {
  std::vector<double> best_point;
  double best_value = 0.0;
  int evaluations = 0;
};

/// Derivative-free Nelder-Mead minimizer with box constraints (points are
/// clamped to [lo, hi] per dimension). This powers the "self hyper-parameter
/// tuning" used by the paper's experimental protocol (Veloso et al., DS'18):
/// detector parameters are tuned on a stream prefix by minimizing
/// (1 - metric).
NelderMeadResult NelderMeadMinimize(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<double>& x0, const std::vector<double>& lo,
    const std::vector<double>& hi, const NelderMeadOptions& options = {});

}  // namespace ccd

#endif  // CCD_STATS_NELDER_MEAD_H_
