#include "stats/granger.h"

#include <cmath>

#include "stats/distributions.h"
#include "utils/matrix.h"

namespace ccd {
namespace {

std::vector<double> FirstDiff(const std::vector<double>& v) {
  std::vector<double> d;
  if (v.size() < 2) return d;
  d.reserve(v.size() - 1);
  for (size_t i = 1; i < v.size(); ++i) d.push_back(v[i] - v[i - 1]);
  return d;
}

}  // namespace

GrangerResult GrangerCausality(const std::vector<double>& x,
                               const std::vector<double>& y, int lag,
                               double alpha) {
  GrangerResult out;
  if (lag < 1) return out;
  const size_t p = static_cast<size_t>(lag);
  if (x.size() != y.size() || y.size() < p + 3) return out;
  const size_t n = y.size() - p;  // usable observations
  const size_t k_unres = 1 + 2 * p;
  if (n <= k_unres) return out;

  // Restricted design: intercept + p lags of y.
  Matrix ar(n, 1 + p);
  // Unrestricted design: intercept + p lags of y + p lags of x.
  Matrix au(n, k_unres);
  std::vector<double> target(n);
  for (size_t t = 0; t < n; ++t) {
    target[t] = y[t + p];
    ar(t, 0) = 1.0;
    au(t, 0) = 1.0;
    for (size_t i = 1; i <= p; ++i) {
      ar(t, i) = y[t + p - i];
      au(t, i) = y[t + p - i];
      au(t, p + i) = x[t + p - i];
    }
  }

  std::vector<double> beta_r, beta_u;
  if (!SolveLeastSquares(ar, target, &beta_r) ||
      !SolveLeastSquares(au, target, &beta_u)) {
    return out;
  }
  double rss_r = ResidualSumSquares(ar, target, beta_r);
  double rss_u = ResidualSumSquares(au, target, beta_u);
  double dof = static_cast<double>(n) - static_cast<double>(k_unres);
  if (dof <= 0.0) return out;

  if (rss_u <= 1e-300) {
    // Perfect unrestricted fit: x's lags fully explain y - treat as strong
    // causality evidence (null of no-causality rejected).
    out.f_stat = 1e12;
    out.p_value = 0.0;
    out.valid = true;
    out.causality_rejected = true;
    return out;
  }
  out.f_stat = ((rss_r - rss_u) / static_cast<double>(p)) / (rss_u / dof);
  if (out.f_stat < 0.0) out.f_stat = 0.0;
  out.p_value = FPValue(out.f_stat, static_cast<double>(p), dof);
  out.valid = true;
  out.causality_rejected = out.p_value < alpha;
  return out;
}

GrangerResult GrangerCausalityFirstDiff(const std::vector<double>& x,
                                        const std::vector<double>& y, int lag,
                                        double alpha) {
  return GrangerCausality(FirstDiff(x), FirstDiff(y), lag, alpha);
}

}  // namespace ccd
