#include "stats/distributions.h"

#include <cmath>
#include <limits>

namespace ccd {
namespace {

constexpr double kEps = 1e-14;
constexpr int kMaxIter = 500;

// Continued fraction for the regularized incomplete beta (Lentz's method).
double BetaContinuedFraction(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < 1e-300) d = 1e-300;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = 1.0 + aa / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = 1.0 + aa / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double LogGamma(double x) {
  // Lanczos, g = 7, n = 9.
  static const double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoef[0];
  double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoef[i] / (x + i);
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t + std::log(a);
}

double RegularizedGammaP(double a, double x) {
  if (x <= 0.0) return 0.0;
  if (a <= 0.0) return 1.0;
  if (x < a + 1.0) {
    // Series expansion.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int n = 0; n < kMaxIter; ++n) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::fabs(del) < std::fabs(sum) * kEps) break;
    }
    return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
  }
  // Continued fraction for Q(a,x), then P = 1 - Q.
  double b = x + 1.0 - a;
  double c = 1e300;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    double an = -static_cast<double>(i) * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  double q = std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
  return 1.0 - q;
}

double RegularizedBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  double ln_front =
      LogGamma(a + b) - LogGamma(a) - LogGamma(b) + a * std::log(x) +
      b * std::log(1.0 - x);
  double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalTwoSidedPValue(double z) {
  double p = 2.0 * (1.0 - NormalCdf(std::fabs(z)));
  return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
}

double ChiSquareCdf(double x, double k) {
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(k / 2.0, x / 2.0);
}

double ChiSquarePValue(double x, double k) { return 1.0 - ChiSquareCdf(x, k); }

double FCdf(double x, double d1, double d2) {
  if (x <= 0.0) return 0.0;
  double u = d1 * x / (d1 * x + d2);
  return RegularizedBeta(d1 / 2.0, d2 / 2.0, u);
}

double FPValue(double x, double d1, double d2) { return 1.0 - FCdf(x, d1, d2); }

double StudentTTwoSidedPValue(double t, double v) {
  if (v <= 0.0) return 1.0;
  double x = v / (v + t * t);
  return RegularizedBeta(v / 2.0, 0.5, x);
}

}  // namespace ccd
