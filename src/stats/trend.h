#ifndef CCD_STATS_TREND_H_
#define CCD_STATS_TREND_H_

#include <cstdint>
#include <deque>

namespace ccd {

/// Sliding-window linear-regression trend of a time series (Eq. 28-37 of the
/// paper). Maintains the running sums Σt·R, Σt, ΣR, Σt² over the last W
/// observations incrementally, so each update is O(1), and exposes the OLS
/// slope
///
///   Q_r(t) = (n ΣtR − Σt ΣR) / (n Σt² − (Σt)²).
///
/// The window size may be changed on the fly (the RBM-IM detector drives it
/// from ADWIN): shrinking evicts the oldest points immediately.
class SlidingTrend {
 public:
  struct Point {
    uint64_t t;
    double r;
  };

  explicit SlidingTrend(size_t window) : window_(window) {}

  /// Appends observation R at the next time index and updates the sums
  /// (Eq. 29-32 below capacity, Eq. 33-36 once the window is saturated).
  void Push(double r) {
    ++t_;
    points_.push_back({t_, r});
    sum_tr_ += static_cast<double>(t_) * r;
    sum_t_ += static_cast<double>(t_);
    sum_r_ += r;
    sum_t2_ += static_cast<double>(t_) * static_cast<double>(t_);
    EvictToCapacity();
  }

  /// Adjusts the window size W; takes effect immediately.
  void set_window(size_t w) {
    window_ = w == 0 ? 1 : w;
    EvictToCapacity();
  }

  size_t window() const { return window_; }
  size_t size() const { return points_.size(); }
  uint64_t time() const { return t_; }

  /// Current OLS slope; 0 when fewer than 2 points or a degenerate design.
  double Slope() const {
    const double n = static_cast<double>(points_.size());
    if (n < 2.0) return 0.0;
    double denom = n * sum_t2_ - sum_t_ * sum_t_;
    if (denom == 0.0) return 0.0;
    return (n * sum_tr_ - sum_t_ * sum_r_) / denom;
  }

  /// Mean of the windowed observations.
  double Mean() const {
    return points_.empty() ? 0.0 : sum_r_ / static_cast<double>(points_.size());
  }

  void Reset() {
    points_.clear();
    sum_tr_ = sum_t_ = sum_r_ = sum_t2_ = 0.0;
    // Keep t_ running: the regression is over absolute batch indices.
  }

  /// Serialization access. The four running sums carry the incremental
  /// add/subtract floating-point history of every eviction; recomputing
  /// them from the surviving points would give a numerically different
  /// value, so they are persisted and restored verbatim.
  const std::deque<Point>& points() const { return points_; }
  double sum_tr() const { return sum_tr_; }
  double sum_t() const { return sum_t_; }
  double sum_r() const { return sum_r_; }
  double sum_t2() const { return sum_t2_; }

  void RestoreState(size_t window, uint64_t t, std::deque<Point> points,
                    double sum_tr, double sum_t, double sum_r, double sum_t2) {
    window_ = window == 0 ? 1 : window;
    t_ = t;
    points_ = std::move(points);
    sum_tr_ = sum_tr;
    sum_t_ = sum_t;
    sum_r_ = sum_r;
    sum_t2_ = sum_t2;
  }

 private:
  void EvictToCapacity() {
    while (points_.size() > window_) {
      const Point& p = points_.front();
      sum_tr_ -= static_cast<double>(p.t) * p.r;
      sum_t_ -= static_cast<double>(p.t);
      sum_r_ -= p.r;
      sum_t2_ -= static_cast<double>(p.t) * static_cast<double>(p.t);
      points_.pop_front();
    }
  }

  size_t window_;
  std::deque<Point> points_;
  uint64_t t_ = 0;
  double sum_tr_ = 0.0;
  double sum_t_ = 0.0;
  double sum_r_ = 0.0;
  double sum_t2_ = 0.0;
};

}  // namespace ccd

#endif  // CCD_STATS_TREND_H_
