#include "stats/nelder_mead.h"

#include <algorithm>
#include <cmath>

namespace ccd {
namespace {

void Clamp(std::vector<double>* x, const std::vector<double>& lo,
           const std::vector<double>& hi) {
  for (size_t i = 0; i < x->size(); ++i) {
    (*x)[i] = std::max(lo[i], std::min(hi[i], (*x)[i]));
  }
}

}  // namespace

NelderMeadResult NelderMeadMinimize(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<double>& x0, const std::vector<double>& lo,
    const std::vector<double>& hi, const NelderMeadOptions& options) {
  NelderMeadResult result;
  const size_t n = x0.size();
  if (n == 0 || lo.size() != n || hi.size() != n) return result;

  // Initial simplex: x0 plus one perturbed vertex per dimension.
  std::vector<std::vector<double>> simplex;
  simplex.push_back(x0);
  Clamp(&simplex[0], lo, hi);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> v = simplex[0];
    double span = hi[i] - lo[i];
    double step = span > 0 ? options.initial_step * span : 1.0;
    v[i] += (v[i] + step <= hi[i]) ? step : -step;
    Clamp(&v, lo, hi);
    simplex.push_back(v);
  }

  std::vector<double> fv(simplex.size());
  for (size_t i = 0; i < simplex.size(); ++i) {
    fv[i] = objective(simplex[i]);
    ++result.evaluations;
  }

  auto order = [&]() {
    std::vector<size_t> idx(simplex.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](size_t a, size_t b) { return fv[a] < fv[b]; });
    std::vector<std::vector<double>> s2;
    std::vector<double> f2;
    for (size_t i : idx) {
      s2.push_back(simplex[i]);
      f2.push_back(fv[i]);
    }
    simplex.swap(s2);
    fv.swap(f2);
  };

  constexpr double kAlpha = 1.0, kGamma = 2.0, kRho = 0.5, kSigma = 0.5;
  while (result.evaluations < options.max_evaluations) {
    order();
    if (std::fabs(fv.back() - fv.front()) < options.tolerance) break;

    // Centroid of all but worst.
    std::vector<double> centroid(n, 0.0);
    for (size_t i = 0; i + 1 < simplex.size(); ++i) {
      for (size_t d = 0; d < n; ++d) centroid[d] += simplex[i][d];
    }
    for (double& c : centroid) c /= static_cast<double>(simplex.size() - 1);

    auto affine = [&](double t) {
      std::vector<double> p(n);
      for (size_t d = 0; d < n; ++d) {
        p[d] = centroid[d] + t * (simplex.back()[d] - centroid[d]);
      }
      Clamp(&p, lo, hi);
      return p;
    };

    std::vector<double> xr = affine(-kAlpha);
    double fr = objective(xr);
    ++result.evaluations;
    if (fr < fv.front()) {
      std::vector<double> xe = affine(-kGamma);
      double fe = objective(xe);
      ++result.evaluations;
      if (fe < fr) {
        simplex.back() = xe;
        fv.back() = fe;
      } else {
        simplex.back() = xr;
        fv.back() = fr;
      }
    } else if (fr < fv[fv.size() - 2]) {
      simplex.back() = xr;
      fv.back() = fr;
    } else {
      std::vector<double> xc = affine(kRho);
      double fc = objective(xc);
      ++result.evaluations;
      if (fc < fv.back()) {
        simplex.back() = xc;
        fv.back() = fc;
      } else {
        // Shrink towards best.
        for (size_t i = 1; i < simplex.size(); ++i) {
          for (size_t d = 0; d < n; ++d) {
            simplex[i][d] =
                simplex[0][d] + kSigma * (simplex[i][d] - simplex[0][d]);
          }
          Clamp(&simplex[i], lo, hi);
          fv[i] = objective(simplex[i]);
          ++result.evaluations;
        }
      }
    }
  }
  order();
  result.best_point = simplex.front();
  result.best_value = fv.front();
  return result;
}

}  // namespace ccd
