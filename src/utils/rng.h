#ifndef CCD_UTILS_RNG_H_
#define CCD_UTILS_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ccd {

/// Deterministic, seedable pseudo-random number generator (PCG32).
///
/// All stochastic components in the library (generators, RBM sampling,
/// Monte-Carlo statistics) draw from an explicitly passed Rng so that every
/// experiment is reproducible from a single seed. PCG32 is small, fast and
/// has far better statistical quality than std::minstd / rand().
class Rng {
 public:
  /// Creates a generator from a 64-bit seed. Two generators created with the
  /// same seed produce identical sequences.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Reseed(seed); }

  /// Re-initializes the internal state from `seed`.
  void Reseed(uint64_t seed) {
    state_ = 0u;
    inc_ = (seed << 1u) | 1u;
    NextU32();
    state_ += 0x853c49e6748fea9bULL + seed;
    NextU32();
    has_gauss_ = false;
  }

  /// Returns the next 32 uniformly distributed bits.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return NextU32() * (1.0 / 4294967296.0); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in the inclusive range [lo, hi].
  int UniformInt(int lo, int hi) {
    if (hi <= lo) return lo;
    uint32_t span = static_cast<uint32_t>(hi - lo) + 1u;
    return lo + static_cast<int>(NextU32() % span);
  }

  /// Returns true with probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal deviate scaled to (mean, stddev), via Marsaglia polar.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    if (has_gauss_) {
      has_gauss_ = false;
      return mean + stddev * cached_gauss_;
    }
    double u, v, s;
    do {
      u = Uniform(-1.0, 1.0);
      v = Uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    double mul = Sqrt(-2.0 * Log(s) / s);
    cached_gauss_ = v * mul;
    has_gauss_ = true;
    return mean + stddev * u * mul;
  }

  /// Samples an index with probability proportional to `weights[i]`.
  /// Weights need not be normalized; non-positive weights are treated as 0.
  /// Returns 0 if all weights are non-positive.
  int Discrete(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) {
      if (w > 0.0) total += w;
    }
    if (total <= 0.0) return 0;
    double r = NextDouble() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      if (weights[i] > 0.0) {
        acc += weights[i];
        if (r < acc) return static_cast<int>(i);
      }
    }
    return static_cast<int>(weights.size()) - 1;
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator; used to give each stream
  /// component its own deterministic sub-sequence.
  Rng Split() { return Rng((static_cast<uint64_t>(NextU32()) << 32) | NextU32()); }

  /// Complete generator state — the PCG cursor plus the Marsaglia-polar
  /// Gaussian cache. Restoring this (not just the seed) is what makes a
  /// deserialized component continue the exact deviate sequence of the
  /// original, which the bit-identical persistence contract requires.
  struct State {
    uint64_t state = 0;
    uint64_t inc = 0;
    bool has_gauss = false;
    double cached_gauss = 0.0;
  };

  State SaveState() const { return {state_, inc_, has_gauss_, cached_gauss_}; }

  void RestoreState(const State& s) {
    state_ = s.state;
    inc_ = s.inc;
    has_gauss_ = s.has_gauss;
    cached_gauss_ = s.cached_gauss;
  }

 private:
  // Local wrappers avoid pulling <cmath> into every includer's macro scope.
  static double Sqrt(double x);
  static double Log(double x);

  uint64_t state_ = 0;
  uint64_t inc_ = 0;
  bool has_gauss_ = false;
  double cached_gauss_ = 0.0;
};

}  // namespace ccd

#endif  // CCD_UTILS_RNG_H_
