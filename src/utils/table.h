#ifndef CCD_UTILS_TABLE_H_
#define CCD_UTILS_TABLE_H_

#include <string>
#include <vector>

namespace ccd {

/// Accumulates rows of string cells and renders them either as an aligned
/// plain-text table (for terminal output of the benchmark harnesses) or as
/// CSV (for post-processing / plotting). The first added row is treated as
/// the header.
class Table {
 public:
  /// Sets the header row. Must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats a double with `precision` decimals.
  static std::string Num(double v, int precision = 2);

  /// Renders an aligned, human-readable table.
  std::string ToText() const;

  /// Renders RFC-4180-ish CSV (cells containing commas are quoted).
  std::string ToCsv() const;

  /// Writes ToCsv() to `path`; returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ccd

#endif  // CCD_UTILS_TABLE_H_
