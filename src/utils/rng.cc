#include "utils/rng.h"

#include <cmath>

namespace ccd {

double Rng::Sqrt(double x) { return std::sqrt(x); }
double Rng::Log(double x) { return std::log(x); }

}  // namespace ccd
