#include "utils/cli.h"

#include <cstdlib>

namespace ccd {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string name = arg.substr(2);
      std::string value = "1";
      auto eq = name.find('=');
      if (eq != std::string::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
      flags_[name] = value;
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Cli::Has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::GetString(const std::string& name,
                           const std::string& def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

int Cli::GetInt(const std::string& name, int def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : std::atoi(it->second.c_str());
}

double Cli::GetDouble(const std::string& name, double def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : std::atof(it->second.c_str());
}

bool Cli::GetBool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second != "0" && it->second != "false" && it->second != "no";
}

}  // namespace ccd
