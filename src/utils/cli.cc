#include "utils/cli.h"

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>

namespace ccd {
namespace {

[[noreturn]] void ThrowMalformed(const std::string& name,
                                 const std::string& value,
                                 const char* expected) {
  throw CliError("--" + name + ": expected " + expected + ", got '" + value +
                 "'");
}

}  // namespace

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string name = arg.substr(2);
      std::string value = "1";
      auto eq = name.find('=');
      if (eq != std::string::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
      flags_[name] = value;
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Cli::Has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::GetString(const std::string& name,
                           const std::string& def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

int Cli::GetInt(const std::string& name, int def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& value = it->second;
  errno = 0;
  char* end = nullptr;
  long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    ThrowMalformed(name, value, "an integer");
  }
  if (errno == ERANGE || parsed < INT_MIN || parsed > INT_MAX) {
    throw CliError("--" + name + ": integer out of range: '" + value + "'");
  }
  return static_cast<int>(parsed);
}

double Cli::GetDouble(const std::string& name, double def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& value = it->second;
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    ThrowMalformed(name, value, "a number");
  }
  // ERANGE also fires on *underflow*, where strtod still returns the best
  // representable value (a subnormal or zero) — only overflow is an error.
  if (errno == ERANGE && (parsed == HUGE_VAL || parsed == -HUGE_VAL)) {
    throw CliError("--" + name + ": number out of range: '" + value + "'");
  }
  return parsed;
}

bool Cli::GetBool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& value = it->second;
  if (value == "1" || value == "true" || value == "yes" || value == "on") {
    return true;
  }
  if (value == "0" || value == "false" || value == "no" || value == "off") {
    return false;
  }
  ThrowMalformed(name, value, "a boolean (1/0/true/false/yes/no/on/off)");
}

}  // namespace ccd
