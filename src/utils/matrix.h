#ifndef CCD_UTILS_MATRIX_H_
#define CCD_UTILS_MATRIX_H_

#include <cstddef>
#include <vector>

namespace ccd {

/// Minimal row-major dense matrix of doubles.
///
/// Sized for the library's needs: ordinary-least-squares fits inside the
/// Granger causality test, RBM weight blocks, and the Bayesian signed test.
/// Not a general-purpose linear-algebra library — only the operations the
/// reproduction requires are provided, all bounds-unchecked in release.
class Matrix {
 public:
  Matrix() = default;
  /// Creates a rows x cols matrix initialized to `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Returns this^T * this (Gram matrix), used by normal-equation solvers.
  Matrix Gram() const;

  /// Returns this^T * v; v.size() must equal rows().
  std::vector<double> TransposeTimes(const std::vector<double>& v) const;

  /// Returns this * v; v.size() must equal cols().
  std::vector<double> Times(const std::vector<double>& v) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves the square system A x = b with Gaussian elimination and partial
/// pivoting. Returns false if A is (numerically) singular; in that case `x`
/// is left unspecified. A and b are copied internally.
bool SolveLinearSystem(const Matrix& a, const std::vector<double>& b,
                       std::vector<double>* x);

/// Solves min_x ||A x - b||_2 via the normal equations with ridge damping
/// `lambda` (0 keeps plain OLS; a tiny lambda stabilizes collinear designs).
/// Returns false when the normal matrix is singular even after damping.
bool SolveLeastSquares(const Matrix& a, const std::vector<double>& b,
                       std::vector<double>* x, double lambda = 0.0);

/// Residual sum of squares ||A x - b||^2 for a fitted coefficient vector.
double ResidualSumSquares(const Matrix& a, const std::vector<double>& b,
                          const std::vector<double>& x);

}  // namespace ccd

#endif  // CCD_UTILS_MATRIX_H_
