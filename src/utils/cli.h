#ifndef CCD_UTILS_CLI_H_
#define CCD_UTILS_CLI_H_

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace ccd {

/// Thrown by the typed Cli getters on a malformed flag value. The message
/// always names the offending flag and the value it carried.
class CliError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Tiny `--flag value` / `--flag` command-line parser used by the benchmark
/// and example binaries. Unknown flags are kept so callers can forward the
/// remainder (e.g. to google-benchmark).
class Cli {
 public:
  Cli(int argc, char** argv);

  /// True if `--name` was passed (with or without a value).
  bool Has(const std::string& name) const;

  /// Value of `--name`, or `def` when absent. The typed getters throw
  /// CliError on malformed values — trailing garbage ("10x"), non-numeric
  /// text, or out-of-range magnitudes — instead of silently truncating.
  std::string GetString(const std::string& name, const std::string& def) const;
  int GetInt(const std::string& name, int def) const;
  double GetDouble(const std::string& name, double def) const;
  /// Accepts 1/true/yes/on and 0/false/no/off; anything else is a CliError.
  bool GetBool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ccd

#endif  // CCD_UTILS_CLI_H_
