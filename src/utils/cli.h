#ifndef CCD_UTILS_CLI_H_
#define CCD_UTILS_CLI_H_

#include <map>
#include <string>
#include <vector>

namespace ccd {

/// Tiny `--flag value` / `--flag` command-line parser used by the benchmark
/// and example binaries. Unknown flags are kept so callers can forward the
/// remainder (e.g. to google-benchmark).
class Cli {
 public:
  Cli(int argc, char** argv);

  /// True if `--name` was passed (with or without a value).
  bool Has(const std::string& name) const;

  /// Value of `--name`, or `def` when absent.
  std::string GetString(const std::string& name, const std::string& def) const;
  int GetInt(const std::string& name, int def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ccd

#endif  // CCD_UTILS_CLI_H_
