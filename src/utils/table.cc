#include "utils/table.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ccd {

void Table::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.empty() ? row.size() : header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::ToText() const {
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i >= widths.size()) widths.resize(i + 1, 0);
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  auto emit = [&out, &widths](const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out << cell << std::string(widths[i] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  emit(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      const std::string& cell = row[i];
      if (cell.find(',') != std::string::npos) {
        out << '"' << cell << '"';
      } else {
        out << cell;
      }
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

bool Table::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << ToCsv();
  return static_cast<bool>(f);
}

}  // namespace ccd
