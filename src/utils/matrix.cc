#include "utils/matrix.h"

#include <cmath>
#include <cstdlib>

namespace ccd {

Matrix Matrix::Gram() const {
  Matrix g(cols_, cols_);
  for (size_t i = 0; i < cols_; ++i) {
    for (size_t j = i; j < cols_; ++j) {
      double s = 0.0;
      for (size_t r = 0; r < rows_; ++r) {
        s += (*this)(r, i) * (*this)(r, j);
      }
      g(i, j) = s;
      g(j, i) = s;
    }
  }
  return g;
}

std::vector<double> Matrix::TransposeTimes(const std::vector<double>& v) const {
  std::vector<double> out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double vr = v[r];
    for (size_t c = 0; c < cols_; ++c) {
      out[c] += (*this)(r, c) * vr;
    }
  }
  return out;
}

std::vector<double> Matrix::Times(const std::vector<double>& v) const {
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (size_t c = 0; c < cols_; ++c) {
      s += (*this)(r, c) * v[c];
    }
    out[r] = s;
  }
  return out;
}

bool SolveLinearSystem(const Matrix& a, const std::vector<double>& b,
                       std::vector<double>* x) {
  const size_t n = a.rows();
  if (a.cols() != n || b.size() != n) return false;
  Matrix m = a;
  std::vector<double> rhs = b;

  for (size_t col = 0; col < n; ++col) {
    // Partial pivot: pick the largest magnitude entry in this column.
    size_t pivot = col;
    double best = std::fabs(m(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::fabs(m(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) return false;
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(m(col, c), m(pivot, c));
      std::swap(rhs[col], rhs[pivot]);
    }
    double inv = 1.0 / m(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      double f = m(r, col) * inv;
      if (f == 0.0) continue;
      for (size_t c = col; c < n; ++c) m(r, c) -= f * m(col, c);
      rhs[r] -= f * rhs[col];
    }
  }
  x->assign(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double s = rhs[ri];
    for (size_t c = ri + 1; c < n; ++c) s -= m(ri, c) * (*x)[c];
    (*x)[ri] = s / m(ri, ri);
  }
  return true;
}

bool SolveLeastSquares(const Matrix& a, const std::vector<double>& b,
                       std::vector<double>* x, double lambda) {
  if (a.rows() != b.size() || a.cols() == 0) return false;
  Matrix gram = a.Gram();
  for (size_t i = 0; i < gram.rows(); ++i) gram(i, i) += lambda;
  std::vector<double> atb = a.TransposeTimes(b);
  if (SolveLinearSystem(gram, atb, x)) return true;
  // Retry once with a small ridge term: collinear designs occur when trend
  // windows contain constant series.
  for (size_t i = 0; i < gram.rows(); ++i) gram(i, i) += 1e-8;
  return SolveLinearSystem(gram, atb, x);
}

double ResidualSumSquares(const Matrix& a, const std::vector<double>& b,
                          const std::vector<double>& x) {
  double rss = 0.0;
  for (size_t r = 0; r < a.rows(); ++r) {
    double pred = 0.0;
    for (size_t c = 0; c < a.cols(); ++c) pred += a(r, c) * x[c];
    double e = b[r] - pred;
    rss += e * e;
  }
  return rss;
}

}  // namespace ccd
