#ifndef CCD_STREAM_STREAM_H_
#define CCD_STREAM_STREAM_H_

#include <memory>
#include <vector>

#include "stream/instance.h"

namespace ccd {

/// Abstract source of a (conceptually unbounded) sequence of labelled
/// instances <S_1, S_2, ...>. Implementations include synthetic concept
/// generators, drift/imbalance wrappers, and in-memory replay streams.
///
/// A stream is one way — the offline way — of driving evaluation: the
/// RunPrequential adapter drains it into a MonitorEngine with immediate
/// labels. Live deployments skip streams entirely and push instances
/// (and late labels) into api::Monitor themselves.
class InstanceStream {
 public:
  virtual ~InstanceStream() = default;

  /// Schema of the emitted instances; constant over the stream's lifetime
  /// (concept drift changes distributions, never arity).
  virtual const StreamSchema& schema() const = 0;

  /// Produces the next instance. Streams in this library are unbounded; the
  /// caller decides how many instances to draw.
  virtual Instance Next() = 0;

  /// Index of the next instance to be emitted (0-based); useful for
  /// positioning drift events in tests.
  virtual uint64_t position() const = 0;
};

/// Replays a fixed in-memory sequence, optionally looping. Used by tests and
/// by harnesses that need to evaluate several detectors on the exact same
/// realization of a stochastic stream.
class VectorStream : public InstanceStream {
 public:
  VectorStream(StreamSchema schema, std::vector<Instance> data, bool loop = false)
      : schema_(std::move(schema)), data_(std::move(data)), loop_(loop) {}

  const StreamSchema& schema() const override { return schema_; }

  Instance Next() override {
    Instance out = data_[static_cast<size_t>(pos_ % data_.size())];
    ++pos_;
    if (!loop_ && pos_ > data_.size()) pos_ = data_.size();
    return out;
  }

  uint64_t position() const override { return pos_; }

  size_t size() const { return data_.size(); }

 private:
  StreamSchema schema_;
  std::vector<Instance> data_;
  bool loop_ = false;
  uint64_t pos_ = 0;
};

/// Materializes the next `n` instances of `stream` into memory.
std::vector<Instance> Take(InstanceStream* stream, size_t n);

}  // namespace ccd

#endif  // CCD_STREAM_STREAM_H_
