#ifndef CCD_STREAM_WINDOW_H_
#define CCD_STREAM_WINDOW_H_

#include <deque>
#include <vector>

namespace ccd {

/// Fixed-capacity sliding window over a numeric series. Pushing beyond the
/// capacity evicts the oldest element. Maintains the running sum so that
/// Mean() is O(1).
class SlidingWindow {
 public:
  explicit SlidingWindow(size_t capacity) : capacity_(capacity) {}

  void Push(double v) {
    buf_.push_back(v);
    sum_ += v;
    if (buf_.size() > capacity_) {
      sum_ -= buf_.front();
      buf_.pop_front();
    }
  }

  void Clear() {
    buf_.clear();
    sum_ = 0.0;
  }

  size_t size() const { return buf_.size(); }
  size_t capacity() const { return capacity_; }
  bool Full() const { return buf_.size() == capacity_; }
  double Sum() const { return sum_; }
  double Mean() const { return buf_.empty() ? 0.0 : sum_ / buf_.size(); }
  double operator[](size_t i) const { return buf_[i]; }
  double Front() const { return buf_.front(); }
  double Back() const { return buf_.back(); }

  /// Copies the window content, oldest first.
  std::vector<double> ToVector() const {
    return std::vector<double>(buf_.begin(), buf_.end());
  }

 private:
  size_t capacity_;
  std::deque<double> buf_;
  double sum_ = 0.0;
};

/// Groups consecutive instances into mini-batches of size n (the unit the
/// RBM-IM detector trains on and monitors, Sec. V of the paper).
template <typename T>
class Batcher {
 public:
  explicit Batcher(size_t batch_size) : batch_size_(batch_size) {}

  /// Adds one element; returns true when a full batch just completed, in
  /// which case TakeBatch() yields it.
  bool Push(T v) {
    current_.push_back(std::move(v));
    return current_.size() >= batch_size_;
  }

  /// Moves the accumulated batch out and starts a new one.
  std::vector<T> TakeBatch() {
    std::vector<T> out;
    out.swap(current_);
    return out;
  }

  size_t pending() const { return current_.size(); }
  size_t batch_size() const { return batch_size_; }

 private:
  size_t batch_size_;
  std::vector<T> current_;
};

}  // namespace ccd

#endif  // CCD_STREAM_WINDOW_H_
