#include "stream/stream.h"

namespace ccd {

std::vector<Instance> Take(InstanceStream* stream, size_t n) {
  std::vector<Instance> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(stream->Next());
  return out;
}

}  // namespace ccd
