#ifndef CCD_STREAM_INSTANCE_H_
#define CCD_STREAM_INSTANCE_H_

#include <string>
#include <vector>

namespace ccd {

/// A single labelled stream element S_j ~ p_j(x, y): a dense d-dimensional
/// feature vector with an integer class label in [0, num_classes).
struct Instance {
  std::vector<double> features;
  int label = -1;
  /// Importance weight; 1.0 for ordinary instances. Cost-sensitive
  /// classifiers may scale their updates by this.
  double weight = 1.0;

  Instance() = default;
  Instance(std::vector<double> x, int y, double w = 1.0)
      : features(std::move(x)), label(y), weight(w) {}

  size_t dim() const { return features.size(); }
};

/// Static description of a stream: dimensionality and class count. All
/// generators, detectors and classifiers size their internal state from the
/// schema handed to them at construction or first use.
struct StreamSchema {
  int num_features = 0;
  int num_classes = 0;
  std::string name;

  StreamSchema() = default;
  StreamSchema(int d, int k, std::string n = "")
      : num_features(d), num_classes(k), name(std::move(n)) {}

  bool Valid() const { return num_features > 0 && num_classes >= 2; }
};

}  // namespace ccd

#endif  // CCD_STREAM_INSTANCE_H_
