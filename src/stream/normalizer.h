#ifndef CCD_STREAM_NORMALIZER_H_
#define CCD_STREAM_NORMALIZER_H_

#include <stdexcept>
#include <string>
#include <vector>

#include "stream/instance.h"

namespace ccd {

/// Online per-feature min-max normalizer mapping raw features into [0, 1].
///
/// The RBM visible layer models binary/unit-interval units, so features must
/// be squashed before reconstruction error is meaningful. Bounds are learned
/// incrementally from the stream (expanding only), which is the standard
/// streaming practice when the domain is unknown a priori.
class MinMaxNormalizer {
 public:
  explicit MinMaxNormalizer(int num_features)
      : lo_(num_features, 0.0), hi_(num_features, 0.0), seen_(false) {}

  /// Updates the bounds from a raw instance. Throws std::invalid_argument
  /// when `x` does not have the declared number of features — indexing
  /// lo_/hi_ by a wider vector would read and write out of bounds.
  void Observe(const std::vector<double>& x) {
    CheckWidth(x);
    if (!seen_) {
      lo_ = x;
      hi_ = x;
      seen_ = true;
      return;
    }
    for (size_t i = 0; i < x.size(); ++i) {
      if (x[i] < lo_[i]) lo_[i] = x[i];
      if (x[i] > hi_[i]) hi_[i] = x[i];
    }
  }

  /// Maps `x` into [0,1]^d with the current bounds. Constant features map
  /// to 0.5. Does not update the bounds. Throws std::invalid_argument on a
  /// width mismatch, like Observe().
  std::vector<double> Transform(const std::vector<double>& x) const {
    CheckWidth(x);
    std::vector<double> out(x.size());
    for (size_t i = 0; i < x.size(); ++i) {
      double span = hi_[i] - lo_[i];
      if (span <= 0.0 || !seen_) {
        out[i] = 0.5;
      } else {
        double v = (x[i] - lo_[i]) / span;
        out[i] = v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v);
      }
    }
    return out;
  }

  /// Allocation-free form of Transform(): writes into `out`, reusing its
  /// capacity. `out` must not alias `x`. Bit-identical to Transform().
  void TransformInto(const std::vector<double>& x,
                     std::vector<double>* out) const {
    CheckWidth(x);
    out->resize(x.size());
    for (size_t i = 0; i < x.size(); ++i) {
      double span = hi_[i] - lo_[i];
      if (span <= 0.0 || !seen_) {
        (*out)[i] = 0.5;
      } else {
        double v = (x[i] - lo_[i]) / span;
        (*out)[i] = v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v);
      }
    }
  }

  /// Observe + Transform in one call (the usual streaming order).
  std::vector<double> ObserveTransform(const std::vector<double>& x) {
    Observe(x);
    return Transform(x);
  }

  /// Allocation-free ObserveTransform(): the per-push path of RBM-IM's
  /// pending mini-batch, which recycles its instance slots.
  void ObserveTransformInto(const std::vector<double>& x,
                            std::vector<double>* out) {
    Observe(x);
    TransformInto(x, out);
  }

  bool seen() const { return seen_; }

  /// Serialization access: the learned bounds are stream state and must
  /// survive a persist/restore round trip verbatim.
  const std::vector<double>& lower() const { return lo_; }
  const std::vector<double>& upper() const { return hi_; }

  /// Replaces the learned bounds. Throws std::invalid_argument when the
  /// two bound vectors disagree in width or do not match the width this
  /// normalizer was constructed for.
  void RestoreState(std::vector<double> lo, std::vector<double> hi,
                    bool seen) {
    if (lo.size() != hi.size() || lo.size() != lo_.size()) {
      throw std::invalid_argument(
          "MinMaxNormalizer::RestoreState: bound width mismatch");
    }
    lo_ = std::move(lo);
    hi_ = std::move(hi);
    seen_ = seen;
  }

 private:
  void CheckWidth(const std::vector<double>& x) const {
    if (x.size() != lo_.size()) {
      throw std::invalid_argument(
          "MinMaxNormalizer: instance has " + std::to_string(x.size()) +
          " features, normalizer was sized for " + std::to_string(lo_.size()));
    }
  }

  std::vector<double> lo_;
  std::vector<double> hi_;
  bool seen_;
};

}  // namespace ccd

#endif  // CCD_STREAM_NORMALIZER_H_
