#ifndef CCD_API_SHARDED_MONITOR_H_
#define CCD_API_SHARDED_MONITOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/component_registry.h"
#include "api/param_map.h"
#include "eval/engine.h"
#include "runtime/mpsc_queue.h"
#include "runtime/router.h"

namespace ccd {
namespace io {
struct StateImage;  // io/state_codec.h — only the .cc depends on the io layer.
}  // namespace io
namespace api {

/// Aggregate callbacks of a ShardedMonitor: the per-shard engine events
/// fan in here with the shard id attached. They fire synchronously on the
/// pushing thread *while that shard's lock is held*, so:
///
///  * callbacks from different shards run concurrently — handlers must be
///    thread-safe;
///  * callbacks must NOT call back into the monitor (any method): the
///    shard and routing locks are not reentrant, and the underlying engine
///    additionally rejects mutating reentry with std::logic_error. Hand
///    the event to a queue and act on another thread instead.
struct ShardedHooks {
  /// A drift alarm from shard `shard`. The alarm position is shard-local
  /// (that engine's completed-instance count).
  std::function<void(int shard, const DriftAlarm&, const MetricsSnapshot&)>
      on_drift;
  /// Shard `shard` entered its detector's warning zone.
  std::function<void(int shard, uint64_t position, const MetricsSnapshot&)>
      on_warning;
  /// A periodic per-shard metric sample.
  std::function<void(int shard, const MetricsSnapshot&)> on_metrics;
  /// A periodic *cross-shard* aggregate (every MergeEvery(n) completed
  /// labels): the EngineState merge of all shards, reported as total
  /// position, summed window size and sample-weighted lifetime means.
  std::function<void(const MetricsSnapshot&)> on_merged_metrics;
};

/// Concurrent serving router: K independent MonitorEngine shards — each
/// with its own classifier/detector — behind a runtime::Router, so pushes
/// from many threads land on disjoint engines and only serialize when they
/// hit the *same* shard. This is the horizontal layer above api::Monitor:
/// a Monitor serializes every push through one engine; a ShardedMonitor
/// scales push throughput with the shard count (see bench/bench_serving).
///
///   auto monitor = api::ShardedMonitorBuilder()
///                      .Schema(20, 5)
///                      .Classifier("naive-bayes")
///                      .Detector("DDM")
///                      .Shards(8)
///                      .OnDrift([](int shard, const ccd::DriftAlarm& a,
///                                  const ccd::MetricsSnapshot& m) {
///                        alert(shard, a.position, m.pmauc);
///                      })
///                      .Build();
///
///   // Hash mode (default): same key -> same shard, always.
///   auto p = monitor.Predict(user_id, features);
///   ...
///   monitor.Label(p.shard, p.id, observed_outcome);
///
/// Routing modes:
///  * kHashKey (default) — Predict(key, ...)/Feed(key, ...) route by
///    runtime::Router::HashKey, so each key's instance sequence is handled
///    by one engine in push order: per-key streams keep exact prequential
///    semantics, and a single-threaded run is bit-identical to K
///    independent api::Monitors fed the key-partitioned substreams
///    (tests/router_test.cc proves it, multi-threaded included).
///  * kRoundRobin — unkeyed Predict(...)/Feed(...) cycle over the shards;
///    per-shard numbers become load-balanced samples of one logical
///    stream, re-aggregated by Result()/Snapshot() and the periodic
///    on_merged_metrics EngineState merge.
///
/// Live resharding — EngineState is the migration payload:
///  * DrainShard(i) pauses shard i, captures its complete EngineState
///    (engine snapshot incl. the pending-label buffer + CloneState()
///    component clones) and hands it to a fresh replacement engine via
///    Restore(); subsequent keys re-route to the new owner. Serving
///    continues exactly where the drained engine stopped — results are
///    bit-identical to never having moved.
///  * AddShard() grows the table with a fresh, empty shard; keyed routing
///    hashes over the grown table, so a slice of every old shard's *new*
///    traffic re-routes to it (histories stay where they are).
///
/// Shard i's components are built with seed `Seed() + i` — a documented
/// contract, so an external baseline can reconstruct any shard exactly.
///
/// Thread-safety: every public method is safe to call concurrently.
/// Aggregate accessors (Result(), Snapshot(), position(), ...) lock shards
/// one at a time, so they observe each shard consistently but not the
/// fleet atomically while producers keep pushing. The monitor is neither
/// copyable nor movable (engines hold routing state by address); it is
/// created in place by ShardedMonitorBuilder::Build().
class ShardedMonitor {
 public:
  /// What a Predict() call hands back: the shard that served it plus that
  /// engine's ticket. Ids are shard-local — Label() needs both.
  struct Prediction {
    int shard = 0;
    uint64_t id = 0;
    int label = 0;  ///< Argmax of `scores`.
    std::vector<double> scores;
  };

  /// One element of a keyed batch push (FeedBatch / PredictBatch).
  struct KeyedInstance {
    uint64_t key = 0;
    Instance instance;
  };

  /// One element of a batch label (LabelBatch): addressed like Label(),
  /// by the ticket's shard and shard-local id.
  struct ShardLabel {
    int shard = 0;
    uint64_t id = 0;
    int label = 0;
  };

  ShardedMonitor(const ShardedMonitor&) = delete;
  ShardedMonitor& operator=(const ShardedMonitor&) = delete;
  ShardedMonitor(ShardedMonitor&&) = delete;
  ShardedMonitor& operator=(ShardedMonitor&&) = delete;

  // --- Hash-key mode pushes (throw std::logic_error in round-robin mode).

  /// Routes `key` to its shard and scores `features` there.
  Prediction Predict(uint64_t key, const std::vector<double>& features,
                     double weight = 1.0);
  /// Immediate-label fast path for `key`'s shard.
  void Feed(uint64_t key, const Instance& instance);
  /// Completes prediction `id` on the shard `key` currently routes to.
  /// Only equivalent to Label(prediction.shard, ...) while no AddShard()
  /// intervened — prefer the ticket's shard for reshard-proof labelling.
  bool LabelKey(uint64_t key, uint64_t id, int true_label);

  /// Lock-free feed ingress: enqueues the instance on the shard `key`
  /// routes to *without contending on that shard's lock* — the producer
  /// only holds the shared table lock. Returns false when the shard's
  /// bounded ingress queue is full (explicit backpressure: retry, call
  /// Flush(), or fall back to the locked Feed()).
  ///
  /// Determinism contract: queued entries are applied, in enqueue order,
  /// under the shard lock *before* the next locked push on that shard and
  /// before any state capture (Persist / DrainShard / ShipShard) — so
  /// every capture is a consistent cut and results are bit-identical to
  /// having called Feed() at the drain point. Entries enqueued while a
  /// shard is shipped (paused) stay queued and apply to its successor
  /// after RestoreShard()/DrainShard(). Aggregate *reads* (Snapshot,
  /// Result, position, ...) do not drain — call Flush() first when
  /// producers have stopped and every entry must be reflected.
  bool FeedAsync(uint64_t key, const Instance& instance);

  /// Drains every shard's ingress queue (skipping paused shards), taking
  /// each shard lock once. Call after producers quiesce, before reading
  /// aggregate state.
  void Flush();

  /// Batch pushes: partition the batch by the shard each key routes to,
  /// take each involved shard's lock once, and apply that shard's
  /// elements in batch order. Per-shard relative order equals batch
  /// order, so per-shard results are bit-identical to per-instance calls.
  /// `out` is resized to the batch size, element i answering batch[i].
  void FeedBatch(const std::vector<KeyedInstance>& batch);
  void PredictBatch(const std::vector<KeyedInstance>& batch,
                    std::vector<Prediction>* out);
  /// Mode-independent (like Label()). Validates every shard index before
  /// applying anything (std::out_of_range on a bogus one is a no-op).
  void LabelBatch(const std::vector<ShardLabel>& batch,
                  std::vector<LabelOutcome>* outcomes = nullptr);

  // --- Round-robin mode pushes (throw std::logic_error in hash mode).

  /// Scores `features` on the next shard in rotation.
  Prediction Predict(const std::vector<double>& features, double weight = 1.0);
  /// Immediate-label fast path on the next shard in rotation.
  void Feed(const Instance& instance);

  // --- Mode-independent.

  /// Completes prediction `id` on shard `shard` (from the Prediction
  /// ticket). Returns false when the id is unknown there — evicted, never
  /// issued, or already labelled. Throws std::out_of_range on a bogus
  /// shard index.
  bool Label(int shard, uint64_t id, int true_label);

  /// Grows the table with a fresh, empty shard (components built with
  /// seed `Seed() + index`) and returns its index. Takes the table
  /// exclusively: blocks until in-flight pushes drain, then re-routes
  /// subsequent keyed traffic over the grown table.
  int AddShard();

  /// Pauses shard `shard`, moves its complete EngineState (pending-label
  /// buffer included) onto a fresh replacement engine via CloneState() +
  /// Restore(), and re-routes subsequent keys to the new owner. Behavior
  /// afterwards is bit-identical to never having drained. Throws
  /// std::out_of_range on a bogus index, std::logic_error when a component
  /// does not implement CloneState().
  void DrainShard(int shard);

  int shards() const;
  runtime::RoutingMode mode() const { return router_.mode(); }
  const StreamSchema& schema() const { return schema_; }

  /// Per-shard run state / result (the engine's own, shard-local view).
  EngineSnapshot ShardSnapshot(int shard) const;
  PrequentialResult ShardResult(int shard) const;

  /// Cross-shard aggregates (MergeSnapshots / MergedResult over all
  /// shards; see eval/engine.h for the merge semantics).
  EngineSnapshot Snapshot() const;
  PrequentialResult Result() const;
  /// Every shard's drift alarms, shard-tagged, ascending by position.
  std::vector<ShardAlarm> DriftLog() const;

  uint64_t position() const;          ///< Completed labels, all shards.
  uint64_t pending() const;           ///< Parked predictions, all shards.
  uint64_t evicted() const;
  uint64_t unmatched_labels() const;

  // --- Durability (implemented on the io layer; see src/io/).

  /// Atomically persists the complete monitor into `directory`: one
  /// envelope-sealed state image per shard plus a manifest, written as a
  /// new generation (`shard-<i>-g<N>.state`) with the manifest renamed
  /// into place last — the commit point. A crash at any moment leaves the
  /// directory openable at either the previous or the new generation,
  /// never a torn mix; superseded generation files are deleted only after
  /// the new manifest is durable. Takes the table exclusively (blocks
  /// until in-flight pushes drain), so the persisted fleet is a
  /// consistent cut. Throws io::WireError on I/O failure,
  /// std::logic_error when a component does not implement SaveState().
  void Persist(const std::string& directory);

  /// Reopens a monitor persisted by Persist(): validates the manifest and
  /// every shard file (size + CRC before decoding a byte), rebuilds the
  /// components through the registries and restores their learned state.
  /// Serving then continues bit-identically to the monitor that persisted
  /// — tests/io_store_test.cc proves it across a SIGKILL. Hooks are not
  /// persisted; pass them anew. Throws io::WireError on any corruption.
  static ShardedMonitor Open(const std::string& directory,
                             ShardedHooks hooks = {});

  /// Envelope-sealed state image of one shard — a consistent copy taken
  /// under the shard lock; the shard keeps serving. The bytes are what
  /// RestoreShard() accepts, also across processes (io::MonitorService
  /// SHIP/LOAD speak exactly this payload).
  std::string SerializeShard(int shard) const;

  /// SerializeShard() + Pause() on the source engine, atomically under
  /// the exclusive table lock: the migration-source half of a shard
  /// handoff. The shipped shard stops serving (pushes routed to it throw
  /// std::logic_error) until the operator drains or restores it — exactly
  /// one side of the handoff may accept traffic.
  std::string ShipShard(int shard);

  /// Replaces shard `shard` with the state image in `bytes` (the
  /// migration-target half; the shard's previous state is discarded).
  /// Validates the image before touching the shard: malformed bytes throw
  /// io::WireError, a schema mismatch with this monitor throws ApiError,
  /// and either way the failed restore is a no-op. Resumes serving
  /// immediately (any persisted pause state is cleared).
  void RestoreShard(int shard, const std::string& bytes);

 private:
  friend class ShardedMonitorBuilder;

  /// One slot of the striped-lock discipline: the slot mutex lives in the
  /// same struct as the engine it guards, so Thread Safety Analysis can
  /// tie them together (`CCD_GUARDED_BY(mu)` needs a syntactic path from
  /// the access to its capability — call sites bind `Shard& s = *shards_[i]`
  /// once and lock `s.mu`). Heap-allocated (Mutex is immovable) and never
  /// replaced once published, so a reference obtained under the table
  /// lock stays valid for the monitor's lifetime.
  struct Shard {
    Shard(std::unique_ptr<OnlineClassifier> c, std::unique_ptr<DriftDetector> d,
          std::unique_ptr<MonitorEngine> e, size_t ingress_capacity)
        : ingress(ingress_capacity), classifier(std::move(c)),
          detector(std::move(d)), engine(std::move(e)) {}

    /// mutable: const sweeps (SerializeShard, Snapshot, ...) still lock.
    mutable runtime::Mutex mu;
    /// Bounded lock-free feed ingress (see FeedAsync). The producer side
    /// is internally synchronized; the consumer side (TryPop, inside
    /// DrainIngress) runs under `mu` — a contract TSA cannot express for
    /// an internally-locked type, hence no CCD_GUARDED_BY here.
    runtime::MpscQueue<Instance> ingress;
    // Declaration order matters: the engine holds raw pointers into the
    // components, so they must outlive it on destruction.
    std::unique_ptr<OnlineClassifier> classifier CCD_GUARDED_BY(mu);
    std::unique_ptr<DriftDetector> detector CCD_GUARDED_BY(mu);
    std::unique_ptr<MonitorEngine> engine CCD_GUARDED_BY(mu);
    /// Consumer-side pop buffer: reused so draining never allocates in
    /// steady state.
    Instance ingress_scratch CCD_GUARDED_BY(mu);
  };

  ShardedMonitor(const StreamSchema& schema, const PrequentialConfig& config,
                 std::string classifier_name, ParamMap classifier_params,
                 std::string detector_name, ParamMap detector_params,
                 uint64_t seed, size_t pending_capacity, int shards,
                 runtime::RoutingMode mode, uint64_t merge_every,
                 size_t ingress_capacity, ShardedHooks hooks);

  /// Restore path of Open(): adopts one decoded state image per shard
  /// instead of building fresh components. Defined in the .cc, where
  /// io::StateImage is complete.
  ShardedMonitor(const StreamSchema& schema, const PrequentialConfig& config,
                 std::string classifier_name, ParamMap classifier_params,
                 std::string detector_name, ParamMap detector_params,
                 uint64_t seed, size_t pending_capacity,
                 runtime::RoutingMode mode, uint64_t merge_every,
                 size_t ingress_capacity, ShardedHooks hooks,
                 uint64_t completed_total, uint64_t generation,
                 std::vector<io::StateImage>&& images);

  /// The identity half of shard `shard`'s state image (seed_ + shard and
  /// the registry names/params); the caller adds the captured state.
  io::StateImage MakeShardImage(int shard) const;

  /// Builds shard `shard`'s fresh components + engine (seed_ + shard).
  std::unique_ptr<Shard> MakeShard(int shard) const;
  /// Engine hooks forwarding to hooks_ with `shard` attached; empty slots
  /// stay empty so uninstalled callbacks keep costing nothing.
  EngineHooks MakeShardHooks(int shard) const;
  void RequireMode(runtime::RoutingMode expected, const char* operation,
                   const char* alternative) const;
  /// Applies every queued ingress entry of `s` to its engine, in enqueue
  /// order; returns how many were applied (the caller owes that many
  /// NoteCompleted() calls, made with no locks held). Skips a paused
  /// (shipped) shard — the entries wait for its successor.
  size_t DrainIngress(Shard& s) CCD_REQUIRES(s.mu);
  /// Counts one completed label and fires the periodic merged-metrics
  /// aggregate when the cadence is hit. Call with no locks held.
  void NoteCompleted();
  std::vector<EngineSnapshot> CollectSnapshots() const;
  /// Sums `read(engine)` over all shards, locking one slot at a time —
  /// the shared sweep behind the aggregate counters.
  uint64_t SumOverShards(
      const std::function<uint64_t(const MonitorEngine&)>& read) const;

  const StreamSchema schema_;
  const PrequentialConfig config_;
  const std::string classifier_name_;
  const ParamMap classifier_params_;
  const std::string detector_name_;  ///< Empty = no detector.
  const ParamMap detector_params_;
  const uint64_t seed_;
  const size_t pending_capacity_;
  const uint64_t merge_every_;  ///< 0 = no periodic merge.
  /// Per-shard ingress queue bound (serving knob, not persisted state:
  /// Open() rebuilds queues at the builder default, empty by definition —
  /// Persist() drains before capturing).
  const size_t ingress_capacity_;
  const ShardedHooks hooks_;

  runtime::Router router_;
  /// Parallel to the router's slot table: the vector itself is guarded by
  /// the table capability (readers index it, only the exclusive writer
  /// grows it), each entry's payload by its own Shard::mu. Lock order is
  /// table-then-slot, always.
  std::vector<std::unique_ptr<Shard>> shards_
      CCD_GUARDED_BY(router_.TableMutex());
  std::atomic<uint64_t> completed_total_{0};
  /// Generation of the last Persist() from this process (Open() resumes
  /// from the manifest's value).
  uint64_t generation_ CCD_GUARDED_BY(router_.TableMutex()) = 0;
};

/// Fluent composer of a ShardedMonitor, mirroring api::MonitorBuilder:
/// components resolved by registered name, paper-protocol defaults,
/// ApiError on invalid configuration. Defaults: 1 shard (a sanity
/// baseline — size real deployments with Shards(k)), hash-key routing,
/// classifier "cs-ptree", no detector, pending capacity 1024 *per shard*,
/// no periodic merge.
class ShardedMonitorBuilder {
 public:
  ShardedMonitorBuilder() = default;

  ShardedMonitorBuilder& Schema(const StreamSchema& schema);
  ShardedMonitorBuilder& Schema(int num_features, int num_classes);

  ShardedMonitorBuilder& Classifier(const std::string& name,
                                    ParamMap params = {});
  ShardedMonitorBuilder& Detector(const std::string& name, ParamMap params = {});
  ShardedMonitorBuilder& NoDetector();

  /// Base seed: shard i's components are created with seed + i.
  ShardedMonitorBuilder& Seed(uint64_t seed);
  ShardedMonitorBuilder& Protocol(const PrequentialConfig& config);
  /// Per-shard delayed-label buffer bound (clamped to >= 1).
  ShardedMonitorBuilder& PendingCapacity(size_t capacity);

  /// Initial shard count (>= 1; ApiError otherwise).
  ShardedMonitorBuilder& Shards(int shards);
  ShardedMonitorBuilder& Mode(runtime::RoutingMode mode);
  /// Fire on_merged_metrics every `n` completed labels (0 disables).
  ShardedMonitorBuilder& MergeEvery(uint64_t n);
  /// Per-shard FeedAsync queue bound (rounded up to a power of two,
  /// clamped to >= 1; default 1024).
  ShardedMonitorBuilder& IngressCapacity(size_t capacity);

  ShardedMonitorBuilder& OnDrift(
      std::function<void(int, const DriftAlarm&, const MetricsSnapshot&)>
          callback);
  ShardedMonitorBuilder& OnWarning(
      std::function<void(int, uint64_t, const MetricsSnapshot&)> callback);
  ShardedMonitorBuilder& OnMetrics(
      std::function<void(int, const MetricsSnapshot&)> callback);
  ShardedMonitorBuilder& OnMergedMetrics(
      std::function<void(const MetricsSnapshot&)> callback);

  /// Instantiates the shards and their engines. Throws ApiError on a
  /// missing/invalid schema, unknown component names, a degenerate
  /// protocol or shard count. The result is constructed in place
  /// (guaranteed copy elision) — bind it directly:
  ///   auto monitor = builder.Build();
  ShardedMonitor Build() const;

 private:
  StreamSchema schema_;
  bool has_schema_ = false;
  std::string classifier_name_ = "cs-ptree";
  ParamMap classifier_params_;
  std::string detector_name_;  ///< Empty = no detector.
  ParamMap detector_params_;
  uint64_t seed_ = 42;
  bool has_config_ = false;
  PrequentialConfig config_;
  size_t pending_capacity_ = 1024;
  int shards_ = 1;
  runtime::RoutingMode mode_ = runtime::RoutingMode::kHashKey;
  uint64_t merge_every_ = 0;
  size_t ingress_capacity_ = 1024;
  ShardedHooks hooks_;
};

}  // namespace api
}  // namespace ccd

#endif  // CCD_API_SHARDED_MONITOR_H_
