// Registration of every detector and classifier shipped with the library.
//
// Each block binds a registry name to a factory that maps ParamMap
// overrides onto the component's Params struct, so every knob a Params
// struct exposes is reachable from a `key=value` string (CLI, config,
// test fixture) without recompiling. Keep the getter key names identical
// to the Params field names — that is the documented contract.

#include "api/component_registry.h"
#include "classifiers/cs_perceptron_tree.h"
#include "classifiers/naive_bayes.h"
#include "classifiers/perceptron.h"
#include "core/rbm_im.h"
#include "detectors/adwin.h"
#include "detectors/ddm.h"
#include "detectors/ddm_oci.h"
#include "detectors/ecdd.h"
#include "detectors/eddm.h"
#include "detectors/fhddm.h"
#include "detectors/hddm.h"
#include "detectors/page_hinkley.h"
#include "detectors/perfsim.h"
#include "detectors/rddm.h"
#include "detectors/wstd.h"

namespace ccd {
namespace api {
namespace {

SoftmaxPerceptron::Params PerceptronParams(const ParamMap& p,
                                           const std::string& prefix = "") {
  SoftmaxPerceptron::Params out;
  out.learning_rate = p.GetDouble(prefix + "learning_rate", out.learning_rate);
  out.cost_sensitive = p.GetBool(prefix + "cost_sensitive", out.cost_sensitive);
  out.count_decay = p.GetDouble(prefix + "count_decay", out.count_decay);
  out.max_cost = p.GetDouble(prefix + "max_cost", out.max_cost);
  return out;
}

}  // namespace

// --- Detectors: the paper's six study detectors first (Table III column
// --- order), then the extra classic baselines.

CCD_REGISTER_DETECTOR(
    "WSTD", "Wilcoxon rank-sum test drift detector (de Barros et al. 2018)",
    kNoCaps, [](const StreamSchema&, uint64_t, const ParamMap& p) {
      Wstd::Params o;
      o.window_size = p.GetInt("window_size", o.window_size);
      o.warning_significance =
          p.GetDouble("warning_significance", o.warning_significance);
      o.drift_significance =
          p.GetDouble("drift_significance", o.drift_significance);
      o.max_old_instances = p.GetInt("max_old_instances", o.max_old_instances);
      o.check_interval = p.GetInt("check_interval", o.check_interval);
      return std::make_unique<Wstd>(o);
    });

CCD_REGISTER_DETECTOR(
    "RDDM", "Reactive Drift Detection Method (de Barros et al. 2017)",
    kNoCaps, [](const StreamSchema&, uint64_t, const ParamMap& p) {
      Rddm::Params o;
      o.warning_level = p.GetDouble("warning_level", o.warning_level);
      o.drift_level = p.GetDouble("drift_level", o.drift_level);
      o.min_errors = p.GetInt("min_errors", o.min_errors);
      o.min_instances = p.GetInt("min_instances", o.min_instances);
      o.max_instances = p.GetInt("max_instances", o.max_instances);
      o.warn_limit = p.GetInt("warn_limit", o.warn_limit);
      return std::make_unique<Rddm>(o);
    });

CCD_REGISTER_DETECTOR(
    "FHDDM", "Fast Hoeffding Drift Detection Method (Pesaranghader 2016)",
    kNoCaps, [](const StreamSchema&, uint64_t, const ParamMap& p) {
      Fhddm::Params o;
      o.window_size = p.GetInt("window_size", o.window_size);
      o.delta = p.GetDouble("delta", o.delta);
      return std::make_unique<Fhddm>(o);
    });

CCD_REGISTER_DETECTOR(
    "PerfSim", "Confusion-matrix cosine-similarity detector (Antwi 2012)",
    kExplainsLocalDrift | kNeedsSchema,
    [](const StreamSchema& schema, uint64_t, const ParamMap& p) {
      PerfSim::Params o;
      o.num_classes = schema.num_classes;
      o.chunk_size = p.GetInt("chunk_size", o.chunk_size);
      o.differentiation_weight =
          p.GetDouble("differentiation_weight", o.differentiation_weight);
      o.min_errors = p.GetInt("min_errors", o.min_errors);
      return std::make_unique<PerfSim>(o);
    });

CCD_REGISTER_DETECTOR(
    "DDM-OCI", "Per-class recall monitor for imbalanced streams (Wang et al.)",
    kExplainsLocalDrift | kNeedsSchema,
    [](const StreamSchema& schema, uint64_t, const ParamMap& p) {
      DdmOci::Params o;
      o.num_classes = schema.num_classes;
      o.warning_threshold =
          p.GetDouble("warning_threshold", o.warning_threshold);
      o.drift_threshold = p.GetDouble("drift_threshold", o.drift_threshold);
      o.decay = p.GetDouble("decay", o.decay);
      o.min_class_count = p.GetInt("min_class_count", o.min_class_count);
      o.consecutive_violations =
          p.GetInt("consecutive_violations", o.consecutive_violations);
      o.max_decay = p.GetDouble("max_decay", o.max_decay);
      return std::make_unique<DdmOci>(o);
    });

CCD_REGISTER_DETECTOR(
    "RBM-IM",
    "Trainable RBM drift detector for imbalanced streams (the paper's method)",
    kExplainsLocalDrift | kTrainable | kNeedsSchema,
    [](const StreamSchema& schema, uint64_t seed, const ParamMap& p) {
      RbmIm::Params o;
      o.num_features = schema.num_features;
      o.num_classes = schema.num_classes;
      o.batch_size = p.GetInt("batch_size", o.batch_size);
      o.hidden_ratio = p.GetDouble("hidden_ratio", o.hidden_ratio);
      o.learning_rate = p.GetDouble("learning_rate", o.learning_rate);
      o.cd_steps = p.GetInt("cd_steps", o.cd_steps);
      o.class_balanced = p.GetBool("class_balanced", o.class_balanced);
      o.beta = p.GetDouble("beta", o.beta);
      o.trigger = p.GetEnum("trigger", o.trigger,
                            {{"combined", RbmIm::Trigger::kCombined},
                             {"zscore", RbmIm::Trigger::kZScore},
                             {"adwin", RbmIm::Trigger::kAdwinOnly},
                             {"granger", RbmIm::Trigger::kGranger}});
      o.jump_sigmas = p.GetDouble("jump_sigmas", o.jump_sigmas);
      o.cusum_slack = p.GetDouble("cusum_slack", o.cusum_slack);
      o.cusum_threshold = p.GetDouble("cusum_threshold", o.cusum_threshold);
      o.baseline_decay = p.GetDouble("baseline_decay", o.baseline_decay);
      o.sigma_floor = p.GetDouble("sigma_floor", o.sigma_floor);
      o.granger_window = p.GetInt("granger_window", o.granger_window);
      o.granger_lag = p.GetInt("granger_lag", o.granger_lag);
      o.granger_alpha = p.GetDouble("granger_alpha", o.granger_alpha);
      o.slope_sigmas = p.GetDouble("slope_sigmas", o.slope_sigmas);
      o.adwin_delta = p.GetDouble("adwin_delta", o.adwin_delta);
      o.min_batches = p.GetInt("min_batches", o.min_batches);
      o.warmup_batches = p.GetInt("warmup_batches", o.warmup_batches);
      o.trend_window_min = p.GetInt("trend_window_min", o.trend_window_min);
      o.trend_window_max = p.GetInt("trend_window_max", o.trend_window_max);
      o.post_drift_boost = p.GetInt("post_drift_boost", o.post_drift_boost);
      o.eval_pool = p.GetInt("eval_pool", o.eval_pool);
      return std::make_unique<RbmIm>(o, seed);
    });

CCD_REGISTER_DETECTOR(
    "DDM", "Drift Detection Method (Gama et al. 2004)", kNoCaps,
    [](const StreamSchema&, uint64_t, const ParamMap& p) {
      Ddm::Params o;
      o.warning_level = p.GetDouble("warning_level", o.warning_level);
      o.drift_level = p.GetDouble("drift_level", o.drift_level);
      o.min_instances = p.GetInt("min_instances", o.min_instances);
      return std::make_unique<Ddm>(o);
    });

CCD_REGISTER_DETECTOR(
    "EDDM", "Early Drift Detection Method (Baena-Garcia et al. 2006)",
    kNoCaps, [](const StreamSchema&, uint64_t, const ParamMap& p) {
      Eddm::Params o;
      o.alpha = p.GetDouble("alpha", o.alpha);
      o.beta = p.GetDouble("beta", o.beta);
      o.min_errors = p.GetInt("min_errors", o.min_errors);
      return std::make_unique<Eddm>(o);
    });

CCD_REGISTER_DETECTOR(
    "ADWIN", "ADaptive WINdowing (Bifet & Gavalda 2007)", kNoCaps,
    [](const StreamSchema&, uint64_t, const ParamMap& p) {
      Adwin::Params o;
      o.delta = p.GetDouble("delta", o.delta);
      o.max_buckets = p.GetInt("max_buckets", o.max_buckets);
      o.min_window = p.GetInt("min_window", o.min_window);
      o.check_interval = p.GetInt("check_interval", o.check_interval);
      return std::make_unique<Adwin>(o);
    });

CCD_REGISTER_DETECTOR(
    "HDDM-A", "Hoeffding-bound drift detection, A-test (Frias-Blanco 2015)",
    kNoCaps, [](const StreamSchema&, uint64_t, const ParamMap& p) {
      HddmA::Params o;
      o.drift_confidence = p.GetDouble("drift_confidence", o.drift_confidence);
      o.warning_confidence =
          p.GetDouble("warning_confidence", o.warning_confidence);
      o.min_instances = p.GetInt("min_instances", o.min_instances);
      return std::make_unique<HddmA>(o);
    });

CCD_REGISTER_DETECTOR(
    "PageHinkley", "Page-Hinkley sequential change test", kNoCaps,
    [](const StreamSchema&, uint64_t, const ParamMap& p) {
      PageHinkley::Params o;
      o.delta = p.GetDouble("delta", o.delta);
      o.lambda = p.GetDouble("lambda", o.lambda);
      o.alpha = p.GetDouble("alpha", o.alpha);
      o.min_instances = p.GetInt("min_instances", o.min_instances);
      return std::make_unique<PageHinkley>(o);
    });

CCD_REGISTER_DETECTOR(
    "ECDD", "EWMA control chart for the error stream (Ross et al. 2012)",
    kNoCaps, [](const StreamSchema&, uint64_t, const ParamMap& p) {
      Ecdd::Params o;
      o.lambda = p.GetDouble("lambda", o.lambda);
      o.drift_l = p.GetDouble("drift_l", o.drift_l);
      o.warning_l = p.GetDouble("warning_l", o.warning_l);
      o.min_instances = p.GetInt("min_instances", o.min_instances);
      return std::make_unique<Ecdd>(o);
    });

// --- Classifiers.

CCD_REGISTER_CLASSIFIER(
    "cs-ptree",
    "Adaptive Cost-Sensitive Perceptron Tree (the paper's base classifier)",
    kNeedsSchema, [](const StreamSchema& schema, uint64_t, const ParamMap& p) {
      CsPerceptronTree::Params o;
      o.grace_period = p.GetInt("grace_period", o.grace_period);
      o.split_confidence =
          p.GetDouble("split_confidence", o.split_confidence);
      o.tie_threshold = p.GetDouble("tie_threshold", o.tie_threshold);
      o.max_depth = p.GetInt("max_depth", o.max_depth);
      o.max_leaves = p.GetInt("max_leaves", o.max_leaves);
      o.leaf_params = PerceptronParams(p, "leaf_");
      return std::make_unique<CsPerceptronTree>(schema, o);
    });

CCD_REGISTER_CLASSIFIER(
    "naive-bayes", "Online Gaussian naive Bayes", kNeedsSchema,
    [](const StreamSchema& schema, uint64_t, const ParamMap&) {
      return std::make_unique<GaussianNaiveBayes>(schema);
    });

CCD_REGISTER_CLASSIFIER(
    "perceptron", "Online multi-class softmax perceptron", kNeedsSchema,
    [](const StreamSchema& schema, uint64_t, const ParamMap& p) {
      return std::make_unique<SoftmaxPerceptron>(schema, PerceptronParams(p));
    });

namespace detail {

void EnsureBuiltinComponentsLinked() {}

}  // namespace detail
}  // namespace api
}  // namespace ccd
