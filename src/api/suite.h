#ifndef CCD_API_SUITE_H_
#define CCD_API_SUITE_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/experiment.h"
#include "stats/welford.h"

namespace ccd {
namespace api {

/// One cell of an experiment grid: a fully resolved (stream, detector,
/// classifier, repeat) combination. Cells are value types — each one owns
/// copies of its spec, options and parameter maps, so running them on
/// worker threads shares no mutable state.
struct SuiteCell {
  /// Axis coordinates inside the expanded grid (stream-major order).
  size_t stream_index = 0;
  size_t detector_index = 0;
  size_t classifier_index = 0;
  int repeat = 0;

  StreamSpec spec;
  std::string stream_label;  ///< Display label; defaults to spec.name.
  /// Build options with the repeat already mixed into the seed
  /// (seed = axis seed + repeat), so every repeat is a distinct but
  /// reproducible run.
  BuildOptions options;
  std::string classifier;
  ParamMap classifier_params;
  std::string detector;  ///< Empty = pure-classifier baseline.
  ParamMap detector_params;
  std::string detector_label;  ///< Defaults to the name, or "none".
  bool has_config = false;
  PrequentialConfig config;
  /// Intra-stream sharding degree of this cell (Suite::Shards); the
  /// default runner routes it through Experiment::Shards. Custom runners
  /// may honor or ignore it.
  int shards = 1;
};

/// Outcome of one executed cell.
struct SuiteCellResult {
  SuiteCell cell;
  PrequentialResult result;
};

/// Mean ± std (Welford) over the repeats of one (stream, detector,
/// classifier) grid position.
struct SuiteAggregate {
  size_t stream_index = 0;
  size_t detector_index = 0;
  size_t classifier_index = 0;
  std::string stream_label;
  std::string detector_label;
  std::string classifier;
  uint64_t instances = 0;  ///< Instances of the first repeat.

  Welford pmauc;
  Welford pmgm;
  Welford accuracy;
  Welford kappa;
  Welford drifts;
  Welford detector_seconds;
  Welford classifier_seconds;
};

/// Everything a suite run produced, in deterministic grid order (streams
/// outermost, then detectors, classifiers, repeats) regardless of the
/// worker count or scheduling.
struct SuiteResult {
  std::vector<SuiteCellResult> cells;
  std::vector<SuiteAggregate> aggregates;
};

/// Output plug of a suite run. Sinks are invoked once, after every cell
/// has finished, on the thread that called Suite::Run().
class SuiteSink {
 public:
  virtual ~SuiteSink() = default;
  virtual void Write(const SuiteResult& result) = 0;
};

/// Writes one CSV row per cell (kCells) or per aggregate (kAggregates),
/// with full-precision numbers for post-processing / plotting.
class CsvSink : public SuiteSink {
 public:
  enum Level { kCells, kAggregates };
  explicit CsvSink(std::string path, Level level = kCells)
      : path_(std::move(path)), level_(level) {}
  void Write(const SuiteResult& result) override;

 private:
  std::string path_;
  Level level_;
};

/// Writes the whole result (cells with drift positions, plus aggregates)
/// as a single JSON document.
class JsonSink : public SuiteSink {
 public:
  explicit JsonSink(std::string path) : path_(std::move(path)) {}
  void Write(const SuiteResult& result) override;

 private:
  std::string path_;
};

/// Renders the aggregate grid as an aligned text table (utils/table) to a
/// FILE* — the quick human-readable view. nullptr means stdout.
class TableSink : public SuiteSink {
 public:
  explicit TableSink(std::FILE* out = nullptr) : out_(out) {}
  void Write(const SuiteResult& result) override;

 private:
  std::FILE* out_;
};

/// Deterministic parallel runner for grids of prequential experiments —
/// the paper's tables and figures are (stream × detector × seed) grids,
/// and Suite shards them across a fixed-size thread pool (runtime::
/// ThreadPool) instead of the serial loops the bench binaries used to
/// hand-roll:
///
///   api::SuiteResult res = api::Suite()
///                              .Streams({"RBF5", "RBF10"})
///                              .Detectors({"RBM-IM", "DDM-OCI"})
///                              .Scale(0.01)
///                              .Repeats(5)
///                              .Threads(8)
///                              .Sink(std::make_unique<api::CsvSink>("r.csv"))
///                              .Run();
///
/// Determinism: every cell derives its seed from the grid coordinates
/// alone (axis seed + repeat), builds its own stream/classifier/detector,
/// and writes only its own result slot — so the same grid produces
/// bit-identical per-cell PrequentialResults with 1 thread or with 64.
///
/// Cells default to Experiment::Run() (stream → classifier → optional
/// detector, the paper's protocol). Callers with a different per-cell
/// protocol (e.g. stream audits, detector micro-timing) keep the grid,
/// sharding, seeding and aggregation machinery by supplying a Runner().
class Suite {
 public:
  using CellRunner = std::function<PrequentialResult(const SuiteCell&)>;
  /// Progress callback; invoked serialized (under a lock) as cells finish,
  /// in completion order — which is *not* deterministic across runs.
  using CellCallback =
      std::function<void(const SuiteCell&, const PrequentialResult&)>;

  Suite() = default;

  /// Appends one entry to the stream axis; by-name lookups throw ApiError
  /// listing the registered streams. The three-argument form carries
  /// per-entry build options (e.g. a drift/imbalance override sweep) and
  /// an optional display label.
  Suite& Stream(const std::string& name);
  Suite& Stream(const StreamSpec& spec);
  Suite& Stream(const StreamSpec& spec, const BuildOptions& options,
                std::string label = "");
  Suite& Streams(const std::vector<std::string>& names);

  /// Appends one entry to the detector axis. `label` distinguishes
  /// variants of the same component (e.g. ablations via ParamMap);
  /// it defaults to the detector name. Unknown names throw at Run() —
  /// before any cell executes — unless a custom Runner() is installed.
  Suite& Detector(const std::string& name, ParamMap params = {},
                  std::string label = "");
  Suite& Detectors(const std::vector<std::string>& names);
  /// Appends the pure-classifier baseline (label "none") to the detector
  /// axis. A suite with no detector entries runs baselines only.
  Suite& NoDetector();

  /// Appends one entry to the classifier axis; defaults to a single
  /// "cs-ptree" (the paper's base learner) when never called.
  Suite& Classifier(const std::string& name, ParamMap params = {});

  /// Base build options for stream entries added without their own.
  Suite& Options(const BuildOptions& options);
  Suite& Seed(uint64_t seed);
  Suite& Scale(double scale);

  /// Evaluation protocol override for every cell (validated at Run()).
  Suite& Prequential(const PrequentialConfig& config);

  /// Repeats per grid position; repeat r runs with seed (axis seed + r).
  /// Values < 1 are clamped to 1.
  Suite& Repeats(int repeats);

  /// Worker thread count; < 1 means runtime::ThreadPool::DefaultThreads().
  Suite& Threads(int threads);

  /// Intra-stream sharding degree for every cell: k > 1 evaluates each
  /// cell's stream as k sequential-handoff blocks pipelined on a private
  /// two-worker pool (eval/sharded.h) — per-cell results stay bit-identical
  /// to shards=1, so grid outputs are unchanged; long streams just overlap
  /// generation with evaluation instead of serializing. Values < 1 clamp
  /// to 1. Applies to the default runner; custom runners receive
  /// SuiteCell::shards and decide themselves.
  Suite& Shards(int shards);

  /// Replaces the per-cell protocol (default: Experiment::Run()).
  Suite& Runner(CellRunner runner);

  /// Installs a progress callback (see CellCallback).
  Suite& OnCellDone(CellCallback callback);

  /// Attaches an output sink; sinks fire in attachment order after the
  /// grid completes.
  Suite& Sink(std::unique_ptr<SuiteSink> sink);

  /// The expanded grid in deterministic order, without running anything.
  std::vector<SuiteCell> Cells() const;

  /// Executes the grid on the thread pool, aggregates repeats, feeds the
  /// sinks, and returns everything. The first cell error (in grid order)
  /// is rethrown after all cells finish.
  SuiteResult Run() const;

 private:
  struct StreamEntry {
    StreamSpec spec;
    BuildOptions options;
    bool has_options = false;
    std::string label;
  };
  struct DetectorEntry {
    std::string name;  ///< Empty = baseline.
    ParamMap params;
    std::string label;
  };
  struct ClassifierEntry {
    std::string name;
    ParamMap params;
  };

  std::vector<StreamEntry> streams_;
  std::vector<DetectorEntry> detectors_;
  std::vector<ClassifierEntry> classifiers_;
  BuildOptions options_;
  bool has_config_ = false;
  PrequentialConfig config_;
  int repeats_ = 1;
  int threads_ = 0;
  int shards_ = 1;
  CellRunner runner_;
  CellCallback on_cell_done_;
  std::vector<std::shared_ptr<SuiteSink>> sinks_;
};

}  // namespace api
}  // namespace ccd

#endif  // CCD_API_SUITE_H_
