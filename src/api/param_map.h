#ifndef CCD_API_PARAM_MAP_H_
#define CCD_API_PARAM_MAP_H_

#include <initializer_list>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ccd {
namespace api {

/// Error type of the public API layer. Every misuse (unknown component,
/// malformed parameter, missing stream) surfaces as an ApiError whose
/// message names the offender and, where possible, lists the valid choices.
class ApiError : public std::runtime_error {
 public:
  explicit ApiError(const std::string& what) : std::runtime_error(what) {}
};

/// Typed view over a set of `key=value` override strings.
///
/// ParamMap is how CLI flags, config files and test fixtures reach a
/// component's Params struct without recompiling: a factory registered with
/// the component registry receives the map, pulls the knobs it understands
/// with the typed getters, and the registry rejects whatever is left over —
/// so a typo like `bacth_size=75` fails loudly instead of being ignored.
///
/// Construction parses eagerly and throws ApiError on malformed input:
/// entries must be non-empty `key=value` with a non-empty key and value,
/// and duplicate keys are rejected. Typed getters throw when the stored
/// text does not fully parse as the requested type.
class ParamMap {
 public:
  ParamMap() = default;
  /// `ParamMap{"batch_size=75", "trigger=granger"}`.
  ParamMap(std::initializer_list<std::string> overrides);
  explicit ParamMap(const std::vector<std::string>& overrides);

  /// Parses a whitespace- or comma-separated run of `key=value` tokens,
  /// e.g. `"batch_size=75 trigger=granger"` (the CLI `--params` format).
  static ParamMap Parse(const std::string& text);

  /// Inserts one override; throws ApiError on malformed input or duplicate.
  void Set(const std::string& entry);

  bool Has(const std::string& key) const;
  bool empty() const { return values_.empty(); }
  size_t size() const { return values_.size(); }

  /// Typed getters: return `def` when the key is absent; throw ApiError
  /// when present but unparsable. Reading a key marks it as consumed.
  int GetInt(const std::string& key, int def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;
  std::string GetString(const std::string& key, const std::string& def) const;

  /// Enum getter: maps the stored token through `choices`
  /// (e.g. {{"combined", Trigger::kCombined}, {"granger", ...}}); an
  /// unknown token throws an ApiError listing the valid choices.
  template <typename E>
  E GetEnum(const std::string& key, E def,
            std::initializer_list<std::pair<const char*, E>> choices) const {
    const std::string* raw = Raw(key);
    if (raw == nullptr) return def;
    for (const auto& c : choices) {
      if (*raw == c.first) return c.second;
    }
    std::string msg = "invalid value '" + *raw + "' for parameter '" + key +
                      "'; valid choices:";
    for (const auto& c : choices) msg += std::string(" ") + c.first;
    throw ApiError(msg);
  }

  /// Keys never touched by any typed getter. A factory's caller uses this
  /// (via ThrowIfUnused) to reject parameters the component doesn't have.
  std::vector<std::string> UnusedKeys() const;

  /// Forgets which keys were consumed, so the same map can be validated
  /// afresh against another consumer (Registry::Create calls this on its
  /// per-call copy — consumption by one factory must not vouch for the
  /// next).
  void ResetUsage() const { used_.clear(); }

  /// Throws ApiError naming `component` and the unused keys, if any.
  void ThrowIfUnused(const std::string& component) const;

  /// Canonical `key=value` form (sorted by key), re-parsable by Parse().
  std::string ToString() const;

 private:
  /// Stored text of `key`, or nullptr; marks the key consumed.
  const std::string* Raw(const std::string& key) const;

  std::map<std::string, std::string> values_;
  mutable std::set<std::string> used_;
};

}  // namespace api
}  // namespace ccd

#endif  // CCD_API_PARAM_MAP_H_
