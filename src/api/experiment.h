#ifndef CCD_API_EXPERIMENT_H_
#define CCD_API_EXPERIMENT_H_

#include <memory>
#include <string>

#include "api/component_registry.h"
#include "api/param_map.h"
#include "eval/prequential.h"
#include "generators/registry.h"

namespace ccd {
namespace api {

/// Fluent builder of one prequential experiment: a benchmark stream, a
/// base classifier, an optional drift detector, and the evaluation
/// protocol. This is the library's front door — bench binaries, examples
/// and tests all compose runs through it:
///
///   PrequentialResult r = api::Experiment()
///                             .Stream("RBF10")
///                             .Scale(0.01)
///                             .Seed(42)
///                             .Detector("RBM-IM", {"batch_size=75",
///                                                  "trigger=granger"})
///                             .Run();
///
/// Defaults: classifier "cs-ptree" (the paper's base learner), no
/// detector, BuildOptions{} (seed 42, scale 1.0), and the paper's
/// evaluation protocol (window 1000, eval every 250, warmup 500, reset on
/// drift) over the full realized stream length. Every unknown name throws
/// an ApiError listing the registered alternatives.
class Experiment {
 public:
  /// Components of a composed experiment, for callers that drive the
  /// prequential loop themselves (detector is null when none was set).
  struct Built {
    BuiltStream stream;
    std::unique_ptr<OnlineClassifier> classifier;
    std::unique_ptr<DriftDetector> detector;
    PrequentialConfig config;
  };

  Experiment() = default;

  /// Selects a registered benchmark stream by name (see AllStreamSpecs());
  /// throws an ApiError listing all stream names when unknown.
  Experiment& Stream(const std::string& name);
  /// Uses an explicit spec (e.g. a custom stream not in the registry).
  Experiment& Stream(const StreamSpec& spec);

  /// Replaces the stream build options wholesale.
  Experiment& Options(const BuildOptions& options);
  /// Shorthands for the two most-tuned options.
  Experiment& Seed(uint64_t seed);
  Experiment& Scale(double scale);

  Experiment& Classifier(const std::string& name, ParamMap params = {});
  Experiment& Detector(const std::string& name, ParamMap params = {});
  /// Pure-classifier baseline (explicitly document that no detector runs).
  Experiment& NoDetector();

  /// Overrides the evaluation protocol. A zero `max_instances` means "the
  /// full realized stream length".
  Experiment& Prequential(const PrequentialConfig& config);

  /// Intra-stream sharding degree (PrequentialConfig::shards): k > 1
  /// evaluates the stream as k sequential-handoff blocks pipelined on a
  /// thread pool, bit-identical to the sequential run (eval/sharded.h).
  /// Overrides whatever Prequential() carried; 1 restores the sequential
  /// baseline. Values < 1 are rejected at Build().
  Experiment& Shards(int shards);

  /// Instantiates stream, classifier and detector without running.
  Built Build() const;

  /// Build() + RunPrequential().
  PrequentialResult Run() const;

 private:
  bool has_spec_ = false;
  StreamSpec spec_;
  BuildOptions options_;
  std::string classifier_name_ = "cs-ptree";
  ParamMap classifier_params_;
  std::string detector_name_;  ///< Empty = no detector.
  ParamMap detector_params_;
  bool has_config_ = false;
  PrequentialConfig config_;
  bool has_shards_ = false;
  int shards_ = 1;
};

}  // namespace api
}  // namespace ccd

#endif  // CCD_API_EXPERIMENT_H_
