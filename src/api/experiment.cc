#include "api/experiment.h"

namespace ccd {
namespace api {

Experiment& Experiment::Stream(const std::string& name) {
  const StreamSpec* spec = FindStreamSpec(name);
  if (spec == nullptr) {
    std::string msg = "unknown stream '" + name + "'; registered streams:";
    for (const StreamSpec& s : AllStreamSpecs()) msg += " " + s.name;
    throw ApiError(msg);
  }
  return Stream(*spec);
}

Experiment& Experiment::Stream(const StreamSpec& spec) {
  spec_ = spec;
  has_spec_ = true;
  return *this;
}

Experiment& Experiment::Options(const BuildOptions& options) {
  options_ = options;
  return *this;
}

Experiment& Experiment::Seed(uint64_t seed) {
  options_.seed = seed;
  return *this;
}

Experiment& Experiment::Scale(double scale) {
  options_.scale = scale;
  return *this;
}

Experiment& Experiment::Classifier(const std::string& name, ParamMap params) {
  classifier_name_ = name;
  classifier_params_ = std::move(params);
  return *this;
}

Experiment& Experiment::Detector(const std::string& name, ParamMap params) {
  detector_name_ = name;
  detector_params_ = std::move(params);
  return *this;
}

Experiment& Experiment::NoDetector() {
  detector_name_.clear();
  detector_params_ = ParamMap();
  return *this;
}

Experiment& Experiment::Prequential(const PrequentialConfig& config) {
  config_ = config;
  has_config_ = true;
  return *this;
}

Experiment& Experiment::Shards(int shards) {
  shards_ = shards;
  has_shards_ = true;
  return *this;
}

Experiment::Built Experiment::Build() const {
  if (!has_spec_) {
    throw ApiError(
        "Experiment: no stream configured; call Stream(name) or "
        "Stream(spec) before Build()/Run()");
  }
  Built out;
  out.stream = BuildStream(spec_, options_);
  const StreamSchema& schema = out.stream.stream->schema();

  out.classifier = Classifiers().Create(classifier_name_, schema,
                                        options_.seed, classifier_params_);
  if (!detector_name_.empty()) {
    out.detector = Detectors().Create(detector_name_, schema, options_.seed,
                                      detector_params_);
  }

  if (has_config_) {
    out.config = config_;
    if (out.config.max_instances == 0) out.config.max_instances = out.stream.length;
  } else {
    // The paper's protocol: windowed metrics over W=1000 sampled every 250
    // instances after a 500-instance warmup, over the realized length.
    out.config.max_instances = out.stream.length;
    out.config.metric_window = 1000;
    out.config.eval_interval = 250;
    out.config.warmup = 500;
  }
  if (has_shards_) out.config.shards = shards_;
  // Reject degenerate protocols here, where the caller composed them —
  // RunPrequential would throw std::invalid_argument later, but an
  // ApiError at Build() points at the Experiment that carried them.
  try {
    ValidatePrequentialConfig(out.config);
  } catch (const std::invalid_argument& e) {
    throw ApiError(e.what());
  }
  return out;
}

PrequentialResult Experiment::Run() const {
  Built b = Build();
  return RunPrequential(b.stream.stream.get(), b.classifier.get(),
                        b.detector.get(), b.config);
}

}  // namespace api
}  // namespace ccd
