#include "api/monitor.h"

#include <stdexcept>
#include <utility>

namespace ccd {
namespace api {

// ---------------------------------------------------------------- Monitor

Monitor::Monitor(const StreamSchema& schema,
                 std::unique_ptr<OnlineClassifier> classifier,
                 std::unique_ptr<DriftDetector> detector,
                 const PrequentialConfig& config, EngineHooks hooks,
                 size_t pending_capacity)
    : classifier_(std::move(classifier)), detector_(std::move(detector)) {
  engine_ = std::make_unique<MonitorEngine>(schema, classifier_.get(),
                                            detector_.get(), config,
                                            std::move(hooks), pending_capacity);
}

Monitor::Prediction Monitor::Predict(const std::vector<double>& features,
                                     double weight) {
  MonitorEngine::Ticket t = engine_->Predict(features, weight);
  Prediction p;
  p.id = t.id;
  p.label = t.predicted;
  p.scores = std::move(t.scores);
  return p;
}

bool Monitor::Label(uint64_t id, int true_label) {
  return engine_->Label(id, true_label) == LabelOutcome::kApplied;
}

void Monitor::Feed(const Instance& instance) { engine_->Feed(instance); }

void Monitor::FeedBatch(const std::vector<Instance>& batch) {
  engine_->FeedBatch(batch);
}

void Monitor::PredictBatch(const std::vector<Instance>& batch,
                           std::vector<Prediction>* out) {
  out->resize(batch.size());
  MonitorEngine::Ticket t;  // Reused: scores capacity survives iterations.
  for (size_t i = 0; i < batch.size(); ++i) {
    engine_->Predict(batch[i].features, batch[i].weight, &t);
    Prediction& p = (*out)[i];
    p.id = t.id;
    p.label = t.predicted;
    p.scores = t.scores;
  }
}

void Monitor::LabelBatch(const std::vector<LabelRequest>& batch,
                         std::vector<LabelOutcome>* outcomes) {
  engine_->LabelBatch(batch, outcomes);
}

void Monitor::Pause() { engine_->Pause(); }
void Monitor::Resume() { engine_->Resume(); }
bool Monitor::paused() const { return engine_->paused(); }

EngineSnapshot Monitor::Snapshot() const { return engine_->Snapshot(); }
PrequentialResult Monitor::Result() const { return engine_->Result(); }

uint64_t Monitor::position() const { return engine_->position(); }
size_t Monitor::pending() const { return engine_->pending(); }
uint64_t Monitor::evicted() const { return engine_->evicted(); }
uint64_t Monitor::unmatched_labels() const {
  return engine_->unmatched_labels();
}
DetectorState Monitor::last_detector_state() const {
  return engine_->last_detector_state();
}
const StreamSchema& Monitor::schema() const { return engine_->schema(); }

// --------------------------------------------------------- MonitorBuilder

MonitorBuilder& MonitorBuilder::Schema(const StreamSchema& schema) {
  schema_ = schema;
  has_schema_ = true;
  return *this;
}

MonitorBuilder& MonitorBuilder::Schema(int num_features, int num_classes) {
  return Schema(StreamSchema(num_features, num_classes, "monitor"));
}

MonitorBuilder& MonitorBuilder::Classifier(const std::string& name,
                                           ParamMap params) {
  classifier_name_ = name;
  classifier_params_ = std::move(params);
  return *this;
}

MonitorBuilder& MonitorBuilder::Detector(const std::string& name,
                                         ParamMap params) {
  detector_name_ = name;
  detector_params_ = std::move(params);
  return *this;
}

MonitorBuilder& MonitorBuilder::NoDetector() {
  detector_name_.clear();
  detector_params_ = ParamMap();
  return *this;
}

MonitorBuilder& MonitorBuilder::Seed(uint64_t seed) {
  seed_ = seed;
  return *this;
}

MonitorBuilder& MonitorBuilder::Protocol(const PrequentialConfig& config) {
  config_ = config;
  has_config_ = true;
  return *this;
}

MonitorBuilder& MonitorBuilder::PendingCapacity(size_t capacity) {
  pending_capacity_ = capacity < 1 ? 1 : capacity;
  return *this;
}

MonitorBuilder& MonitorBuilder::OnDrift(
    std::function<void(const DriftAlarm&, const MetricsSnapshot&)> callback) {
  hooks_.on_drift = std::move(callback);
  return *this;
}

MonitorBuilder& MonitorBuilder::OnWarning(
    std::function<void(uint64_t, const MetricsSnapshot&)> callback) {
  hooks_.on_warning = std::move(callback);
  return *this;
}

MonitorBuilder& MonitorBuilder::OnMetrics(
    std::function<void(const MetricsSnapshot&)> callback) {
  hooks_.on_metrics = std::move(callback);
  return *this;
}

Monitor MonitorBuilder::Build() const {
  if (!has_schema_) {
    throw ApiError(
        "MonitorBuilder: no schema configured; call Schema(features, "
        "classes) before Build() — a push monitor has no stream to infer "
        "it from");
  }
  if (!schema_.Valid()) {
    throw ApiError("MonitorBuilder: invalid schema (need num_features > 0 "
                   "and num_classes >= 2)");
  }

  PrequentialConfig config;
  if (has_config_) {
    config = config_;
    try {
      ValidatePrequentialConfig(config);
    } catch (const std::invalid_argument& e) {
      throw ApiError(e.what());
    }
  } else {
    // The paper's protocol; timing off — a serving monitor wants alerts,
    // not per-call stopwatches.
    config.metric_window = 1000;
    config.eval_interval = 250;
    config.warmup = 500;
    config.timing = false;
  }

  std::unique_ptr<OnlineClassifier> classifier =
      Classifiers().Create(classifier_name_, schema_, seed_,
                           classifier_params_);
  std::unique_ptr<DriftDetector> detector;
  if (!detector_name_.empty()) {
    detector = Detectors().Create(detector_name_, schema_, seed_,
                                  detector_params_);
  }
  return Monitor(schema_, std::move(classifier), std::move(detector), config,
                 hooks_, pending_capacity_);
}

}  // namespace api
}  // namespace ccd
