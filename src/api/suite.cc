#include "api/suite.h"

#include <cstdio>
#include <exception>
#include <fstream>
#include <utility>

#include "runtime/sync.h"
#include "runtime/thread_pool.h"
#include "utils/table.h"

namespace ccd {
namespace api {
namespace {

/// Full-precision double for CSV/JSON (round-trips through strtod).
std::string FmtG(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

PrequentialResult RunDefaultCell(const SuiteCell& cell) {
  Experiment e;
  e.Stream(cell.spec)
      .Options(cell.options)
      .Classifier(cell.classifier, cell.classifier_params);
  if (!cell.detector.empty()) e.Detector(cell.detector, cell.detector_params);
  if (cell.has_config) e.Prequential(cell.config);
  if (cell.shards > 1) e.Shards(cell.shards);
  return e.Run();
}

}  // namespace

// ----------------------------------------------------------------- sinks

void CsvSink::Write(const SuiteResult& result) {
  Table t;
  if (level_ == kCells) {
    t.SetHeader({"stream", "detector", "classifier", "repeat", "seed",
                 "instances", "pmauc", "pmgm", "accuracy", "kappa", "drifts",
                 "detector_seconds", "classifier_seconds"});
    for (const SuiteCellResult& c : result.cells) {
      t.AddRow({c.cell.stream_label, c.cell.detector_label, c.cell.classifier,
                std::to_string(c.cell.repeat),
                std::to_string(c.cell.options.seed),
                std::to_string(c.result.instances), FmtG(c.result.mean_pmauc),
                FmtG(c.result.mean_pmgm), FmtG(c.result.mean_accuracy),
                FmtG(c.result.mean_kappa), std::to_string(c.result.drifts),
                FmtG(c.result.detector_seconds),
                FmtG(c.result.classifier_seconds)});
    }
  } else {
    t.SetHeader({"stream", "detector", "classifier", "repeats", "instances",
                 "pmauc_mean", "pmauc_std", "pmgm_mean", "pmgm_std",
                 "accuracy_mean", "accuracy_std", "kappa_mean", "kappa_std",
                 "drifts_mean", "drifts_std"});
    for (const SuiteAggregate& a : result.aggregates) {
      t.AddRow({a.stream_label, a.detector_label, a.classifier,
                std::to_string(a.pmauc.count()), std::to_string(a.instances),
                FmtG(a.pmauc.mean()), FmtG(a.pmauc.StdDev()),
                FmtG(a.pmgm.mean()), FmtG(a.pmgm.StdDev()),
                FmtG(a.accuracy.mean()), FmtG(a.accuracy.StdDev()),
                FmtG(a.kappa.mean()), FmtG(a.kappa.StdDev()),
                FmtG(a.drifts.mean()), FmtG(a.drifts.StdDev())});
    }
  }
  if (!t.WriteCsv(path_)) {
    std::fprintf(stderr, "error: CsvSink failed to write %s\n", path_.c_str());
  }
}

void JsonSink::Write(const SuiteResult& result) {
  std::ofstream out(path_);
  if (!out) {
    std::fprintf(stderr, "error: JsonSink failed to open %s\n", path_.c_str());
    return;
  }
  out << "{\n  \"cells\": [";
  for (size_t i = 0; i < result.cells.size(); ++i) {
    const SuiteCellResult& c = result.cells[i];
    out << (i == 0 ? "" : ",") << "\n    {\"stream\": \""
        << JsonEscape(c.cell.stream_label) << "\", \"detector\": \""
        << JsonEscape(c.cell.detector_label) << "\", \"classifier\": \""
        << JsonEscape(c.cell.classifier) << "\", \"repeat\": " << c.cell.repeat
        << ", \"seed\": " << c.cell.options.seed
        << ", \"instances\": " << c.result.instances
        << ", \"pmauc\": " << FmtG(c.result.mean_pmauc)
        << ", \"pmgm\": " << FmtG(c.result.mean_pmgm)
        << ", \"accuracy\": " << FmtG(c.result.mean_accuracy)
        << ", \"kappa\": " << FmtG(c.result.mean_kappa)
        << ", \"drifts\": " << c.result.drifts << ", \"drift_positions\": [";
    for (size_t p = 0; p < c.result.drift_positions.size(); ++p) {
      out << (p == 0 ? "" : ", ") << c.result.drift_positions[p];
    }
    out << "], \"drift_events\": [";
    for (size_t p = 0; p < c.result.drift_events.size(); ++p) {
      const DriftAlarm& alarm = c.result.drift_events[p];
      out << (p == 0 ? "" : ", ") << "{\"position\": " << alarm.position
          << ", \"drifted_classes\": [";
      for (size_t k = 0; k < alarm.drifted_classes.size(); ++k) {
        out << (k == 0 ? "" : ", ") << alarm.drifted_classes[k];
      }
      out << "]}";
    }
    out << "], \"detector_seconds\": " << FmtG(c.result.detector_seconds)
        << ", \"classifier_seconds\": " << FmtG(c.result.classifier_seconds)
        << "}";
  }
  out << "\n  ],\n  \"aggregates\": [";
  for (size_t i = 0; i < result.aggregates.size(); ++i) {
    const SuiteAggregate& a = result.aggregates[i];
    out << (i == 0 ? "" : ",") << "\n    {\"stream\": \""
        << JsonEscape(a.stream_label) << "\", \"detector\": \""
        << JsonEscape(a.detector_label) << "\", \"classifier\": \""
        << JsonEscape(a.classifier) << "\", \"repeats\": " << a.pmauc.count()
        << ", \"instances\": " << a.instances
        << ", \"pmauc_mean\": " << FmtG(a.pmauc.mean())
        << ", \"pmauc_std\": " << FmtG(a.pmauc.StdDev())
        << ", \"pmgm_mean\": " << FmtG(a.pmgm.mean())
        << ", \"pmgm_std\": " << FmtG(a.pmgm.StdDev())
        << ", \"drifts_mean\": " << FmtG(a.drifts.mean())
        << ", \"drifts_std\": " << FmtG(a.drifts.StdDev()) << "}";
  }
  out << "\n  ]\n}\n";
}

void TableSink::Write(const SuiteResult& result) {
  Table t;
  t.SetHeader({"Stream", "Detector", "Classifier", "Repeats", "pmAUC", "±",
               "pmGM", "±", "Acc", "Kappa", "Drifts"});
  for (const SuiteAggregate& a : result.aggregates) {
    t.AddRow({a.stream_label, a.detector_label, a.classifier,
              std::to_string(a.pmauc.count()),
              Table::Num(100.0 * a.pmauc.mean()),
              Table::Num(100.0 * a.pmauc.StdDev()),
              Table::Num(100.0 * a.pmgm.mean()),
              Table::Num(100.0 * a.pmgm.StdDev()),
              Table::Num(100.0 * a.accuracy.mean()),
              Table::Num(a.kappa.mean()), Table::Num(a.drifts.mean(), 1)});
  }
  std::FILE* out = out_ == nullptr ? stdout : out_;
  std::fputs(t.ToText().c_str(), out);
}

// ----------------------------------------------------------------- suite

Suite& Suite::Stream(const std::string& name) {
  const StreamSpec* spec = FindStreamSpec(name);
  if (spec == nullptr) {
    std::string msg = "unknown stream '" + name + "'; registered streams:";
    for (const StreamSpec& s : AllStreamSpecs()) msg += " " + s.name;
    throw ApiError(msg);
  }
  return Stream(*spec);
}

Suite& Suite::Stream(const StreamSpec& spec) {
  streams_.push_back(StreamEntry{spec, BuildOptions{}, false, spec.name});
  return *this;
}

Suite& Suite::Stream(const StreamSpec& spec, const BuildOptions& options,
                     std::string label) {
  streams_.push_back(StreamEntry{
      spec, options, true, label.empty() ? spec.name : std::move(label)});
  return *this;
}

Suite& Suite::Streams(const std::vector<std::string>& names) {
  for (const std::string& name : names) Stream(name);
  return *this;
}

Suite& Suite::Detector(const std::string& name, ParamMap params,
                       std::string label) {
  detectors_.push_back(DetectorEntry{
      name, std::move(params), label.empty() ? name : std::move(label)});
  return *this;
}

Suite& Suite::Detectors(const std::vector<std::string>& names) {
  for (const std::string& name : names) Detector(name);
  return *this;
}

Suite& Suite::NoDetector() {
  detectors_.push_back(DetectorEntry{"", ParamMap(), "none"});
  return *this;
}

Suite& Suite::Classifier(const std::string& name, ParamMap params) {
  classifiers_.push_back(ClassifierEntry{name, std::move(params)});
  return *this;
}

Suite& Suite::Options(const BuildOptions& options) {
  options_ = options;
  return *this;
}

Suite& Suite::Seed(uint64_t seed) {
  options_.seed = seed;
  return *this;
}

Suite& Suite::Scale(double scale) {
  options_.scale = scale;
  return *this;
}

Suite& Suite::Prequential(const PrequentialConfig& config) {
  config_ = config;
  has_config_ = true;
  return *this;
}

Suite& Suite::Repeats(int repeats) {
  repeats_ = repeats < 1 ? 1 : repeats;
  return *this;
}

Suite& Suite::Threads(int threads) {
  threads_ = threads;
  return *this;
}

Suite& Suite::Shards(int shards) {
  shards_ = shards < 1 ? 1 : shards;
  return *this;
}

Suite& Suite::Runner(CellRunner runner) {
  runner_ = std::move(runner);
  return *this;
}

Suite& Suite::OnCellDone(CellCallback callback) {
  on_cell_done_ = std::move(callback);
  return *this;
}

Suite& Suite::Sink(std::unique_ptr<SuiteSink> sink) {
  sinks_.push_back(std::shared_ptr<SuiteSink>(std::move(sink)));
  return *this;
}

std::vector<SuiteCell> Suite::Cells() const {
  if (streams_.empty()) {
    throw ApiError(
        "Suite: no streams configured; call Stream()/Streams() before "
        "Cells()/Run()");
  }
  // Missing axes fall back to singleton defaults, mirroring Experiment.
  std::vector<DetectorEntry> detectors = detectors_;
  if (detectors.empty()) detectors.push_back(DetectorEntry{"", {}, "none"});
  std::vector<ClassifierEntry> classifiers = classifiers_;
  if (classifiers.empty()) {
    classifiers.push_back(ClassifierEntry{"cs-ptree", {}});
  }

  std::vector<SuiteCell> cells;
  cells.reserve(streams_.size() * detectors.size() * classifiers.size() *
                static_cast<size_t>(repeats_));
  for (size_t s = 0; s < streams_.size(); ++s) {
    const StreamEntry& se = streams_[s];
    for (size_t d = 0; d < detectors.size(); ++d) {
      for (size_t c = 0; c < classifiers.size(); ++c) {
        for (int r = 0; r < repeats_; ++r) {
          SuiteCell cell;
          cell.stream_index = s;
          cell.detector_index = d;
          cell.classifier_index = c;
          cell.repeat = r;
          cell.spec = se.spec;
          cell.stream_label = se.label;
          cell.options = se.has_options ? se.options : options_;
          // Deterministic per-repeat seeding: a pure function of the grid
          // coordinates, never of scheduling.
          cell.options.seed += static_cast<uint64_t>(r);
          cell.classifier = classifiers[c].name;
          cell.classifier_params = classifiers[c].params;
          cell.detector = detectors[d].name;
          cell.detector_params = detectors[d].params;
          cell.detector_label = detectors[d].label;
          cell.has_config = has_config_;
          cell.config = config_;
          cell.shards = shards_;
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  return cells;
}

SuiteResult Suite::Run() const {
  std::vector<SuiteCell> cells = Cells();

  // Fail fast on the whole grid before any evaluation work starts: a typo
  // must not surface hours into a sweep. (A custom runner may interpret
  // names its own way, so only the default Experiment path is validated.)
  if (!runner_) {
    for (const DetectorEntry& d : detectors_) {
      if (!d.name.empty()) ::ccd::api::Detectors().Require(d.name);
    }
    for (const ClassifierEntry& c : classifiers_) {
      ::ccd::api::Classifiers().Require(c.name);
    }
    if (has_config_) {
      try {
        ValidatePrequentialConfig(config_);
      } catch (const std::invalid_argument& e) {
        throw ApiError(e.what());
      }
    }
  }

  const CellRunner runner = runner_ ? runner_ : CellRunner(RunDefaultCell);

  SuiteResult out;
  out.cells.resize(cells.size());
  std::vector<std::exception_ptr> errors(cells.size());
  runtime::Mutex callback_mutex;
  {
    runtime::ThreadPool pool(threads_ < 1
                                 ? runtime::ThreadPool::DefaultThreads()
                                 : threads_);
    for (size_t i = 0; i < cells.size(); ++i) {
      pool.Submit([&, i] {
        try {
          PrequentialResult r = runner(cells[i]);
          if (on_cell_done_) {
            runtime::MutexLock lock(&callback_mutex);
            on_cell_done_(cells[i], r);
          }
          out.cells[i] = SuiteCellResult{std::move(cells[i]), std::move(r)};
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.Wait();
  }
  for (std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // Collapse the repeats of each grid position (cells are grid-ordered, so
  // every consecutive run of `repeats_` cells shares its axes).
  for (size_t i = 0; i < out.cells.size(); i += static_cast<size_t>(repeats_)) {
    const SuiteCell& first = out.cells[i].cell;
    SuiteAggregate agg;
    agg.stream_index = first.stream_index;
    agg.detector_index = first.detector_index;
    agg.classifier_index = first.classifier_index;
    agg.stream_label = first.stream_label;
    agg.detector_label = first.detector_label;
    agg.classifier = first.classifier;
    agg.instances = out.cells[i].result.instances;
    for (int r = 0; r < repeats_; ++r) {
      const PrequentialResult& res = out.cells[i + static_cast<size_t>(r)].result;
      agg.pmauc.Add(res.mean_pmauc);
      agg.pmgm.Add(res.mean_pmgm);
      agg.accuracy.Add(res.mean_accuracy);
      agg.kappa.Add(res.mean_kappa);
      agg.drifts.Add(static_cast<double>(res.drifts));
      agg.detector_seconds.Add(res.detector_seconds);
      agg.classifier_seconds.Add(res.classifier_seconds);
    }
    out.aggregates.push_back(std::move(agg));
  }

  for (const std::shared_ptr<SuiteSink>& sink : sinks_) sink->Write(out);
  return out;
}

}  // namespace api
}  // namespace ccd
