#ifndef CCD_API_API_H_
#define CCD_API_API_H_

/// Umbrella header of the public `ccd::api` layer:
///
///  * ParamMap       — typed `key=value` parameter overrides,
///  * Registry       — string-keyed, introspectable component factories
///                     (api::Detectors(), api::Classifiers(),
///                      api::MakeDetector(), api::MakeClassifier()),
///  * Experiment     — fluent builder of prequential experiment runs,
///  * Suite          — deterministic parallel runner for experiment grids
///                     (streams × detectors × classifiers × repeats) with
///                     Welford aggregation and CSV/JSON/table sinks,
///  * Monitor        — push-based online monitoring surface (decoupled
///                     Predict/Label with delayed-label buffering, drift
///                     event callbacks, snapshotable run state), built on
///                     the same engine the offline protocol runs on,
///  * ShardedMonitor — concurrent serving router over K per-shard engines
///                     (hash-key or round-robin routing, striped locks,
///                     live resharding via EngineState migration,
///                     shard-tagged drift fan-in).
///
/// Components self-register via CCD_REGISTER_DETECTOR /
/// CCD_REGISTER_CLASSIFIER; every lookup failure throws api::ApiError with
/// the registered alternatives spelled out.

#include "api/component_registry.h"
#include "api/experiment.h"
#include "api/monitor.h"
#include "api/param_map.h"
#include "api/sharded_monitor.h"
#include "api/suite.h"

#endif  // CCD_API_API_H_
