#include "api/param_map.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace ccd {
namespace api {

namespace {

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

ParamMap::ParamMap(std::initializer_list<std::string> overrides) {
  for (const std::string& o : overrides) Set(o);
}

ParamMap::ParamMap(const std::vector<std::string>& overrides) {
  for (const std::string& o : overrides) Set(o);
}

ParamMap ParamMap::Parse(const std::string& text) {
  ParamMap out;
  std::string token;
  for (char c : text + " ") {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      if (!token.empty()) out.Set(token);
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  return out;
}

void ParamMap::Set(const std::string& entry) {
  std::string e = Trim(entry);
  size_t eq = e.find('=');
  if (eq == std::string::npos) {
    throw ApiError("malformed parameter '" + entry +
                   "': expected key=value");
  }
  std::string key = Trim(e.substr(0, eq));
  std::string value = Trim(e.substr(eq + 1));
  if (key.empty() || value.empty()) {
    throw ApiError("malformed parameter '" + entry +
                   "': key and value must be non-empty");
  }
  if (values_.count(key)) {
    throw ApiError("duplicate parameter '" + key + "'");
  }
  values_[key] = value;
}

bool ParamMap::Has(const std::string& key) const {
  return values_.count(key) != 0;
}

const std::string* ParamMap::Raw(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return nullptr;
  used_.insert(key);
  return &it->second;
}

int ParamMap::GetInt(const std::string& key, int def) const {
  const std::string* raw = Raw(key);
  if (raw == nullptr) return def;
  char* end = nullptr;
  errno = 0;
  long v = std::strtol(raw->c_str(), &end, 10);
  if (end == raw->c_str() || *end != '\0') {
    throw ApiError("parameter '" + key + "=" + *raw + "' is not an integer");
  }
  if (errno == ERANGE || v < INT_MIN || v > INT_MAX) {
    throw ApiError("parameter '" + key + "=" + *raw +
                   "' is out of integer range");
  }
  return static_cast<int>(v);
}

double ParamMap::GetDouble(const std::string& key, double def) const {
  const std::string* raw = Raw(key);
  if (raw == nullptr) return def;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(raw->c_str(), &end);
  if (end == raw->c_str() || *end != '\0') {
    throw ApiError("parameter '" + key + "=" + *raw + "' is not a number");
  }
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
    throw ApiError("parameter '" + key + "=" + *raw +
                   "' is out of double range");
  }
  return v;
}

bool ParamMap::GetBool(const std::string& key, bool def) const {
  const std::string* raw = Raw(key);
  if (raw == nullptr) return def;
  if (*raw == "true" || *raw == "1" || *raw == "on" || *raw == "yes") {
    return true;
  }
  if (*raw == "false" || *raw == "0" || *raw == "off" || *raw == "no") {
    return false;
  }
  throw ApiError("parameter '" + key + "=" + *raw +
                 "' is not a boolean (use true/false/1/0/on/off/yes/no)");
}

std::string ParamMap::GetString(const std::string& key,
                                const std::string& def) const {
  const std::string* raw = Raw(key);
  return raw == nullptr ? def : *raw;
}

std::vector<std::string> ParamMap::UnusedKeys() const {
  std::vector<std::string> out;
  for (const auto& kv : values_) {
    if (!used_.count(kv.first)) out.push_back(kv.first);
  }
  return out;
}

void ParamMap::ThrowIfUnused(const std::string& component) const {
  std::vector<std::string> unused = UnusedKeys();
  if (unused.empty()) return;
  std::string msg = "unknown parameter";
  if (unused.size() > 1) msg += "s";
  for (const std::string& k : unused) msg += " '" + k + "'";
  msg += " for " + component;
  throw ApiError(msg);
}

std::string ParamMap::ToString() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& kv : values_) {
    if (!first) out << " ";
    out << kv.first << "=" << kv.second;
    first = false;
  }
  return out.str();
}

}  // namespace api
}  // namespace ccd
