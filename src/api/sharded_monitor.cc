#include "api/sharded_monitor.h"

#include <stdexcept>
#include <utility>

#include "eval/sharded.h"
#include "io/snapshot_store.h"
#include "io/state_codec.h"
#include "io/wire.h"

namespace ccd {
namespace api {

// --------------------------------------------------------- ShardedMonitor

ShardedMonitor::ShardedMonitor(const StreamSchema& schema,
                               const PrequentialConfig& config,
                               std::string classifier_name,
                               ParamMap classifier_params,
                               std::string detector_name,
                               ParamMap detector_params, uint64_t seed,
                               size_t pending_capacity, int shards,
                               runtime::RoutingMode mode, uint64_t merge_every,
                               size_t ingress_capacity, ShardedHooks hooks)
    : schema_(schema),
      config_(config),
      classifier_name_(std::move(classifier_name)),
      classifier_params_(std::move(classifier_params)),
      detector_name_(std::move(detector_name)),
      detector_params_(std::move(detector_params)),
      seed_(seed),
      pending_capacity_(pending_capacity),
      merge_every_(merge_every),
      ingress_capacity_(ingress_capacity),
      hooks_(std::move(hooks)),
      router_(shards, mode) {
  // Constructor: the monitor is not published yet, so the analysis (and
  // reality) exempt these guarded writes from the lock discipline.
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(MakeShard(i));
  }
}

std::unique_ptr<ShardedMonitor::Shard> ShardedMonitor::MakeShard(
    int shard) const {
  const uint64_t seed = seed_ + static_cast<uint64_t>(shard);
  std::unique_ptr<OnlineClassifier> classifier =
      Classifiers().Create(classifier_name_, schema_, seed, classifier_params_);
  std::unique_ptr<DriftDetector> detector;
  if (!detector_name_.empty()) {
    detector =
        Detectors().Create(detector_name_, schema_, seed, detector_params_);
  }
  auto engine = std::make_unique<MonitorEngine>(
      schema_, classifier.get(), detector.get(), config_,
      MakeShardHooks(shard), pending_capacity_);
  return std::make_unique<Shard>(std::move(classifier), std::move(detector),
                                 std::move(engine), ingress_capacity_);
}

size_t ShardedMonitor::DrainIngress(Shard& s) {
  // A shipped (paused) shard keeps its entries queued: Feed() on a paused
  // engine throws, and the documented handoff semantics give them to the
  // successor engine instead.
  if (s.engine->paused()) return 0;
  size_t drained = 0;
  while (s.ingress.TryPop(&s.ingress_scratch)) {
    s.engine->Feed(s.ingress_scratch);
    ++drained;
  }
  return drained;
}

EngineHooks ShardedMonitor::MakeShardHooks(int shard) const {
  EngineHooks h;
  // Only occupied fan-in slots are wired through, so a monitor without
  // callbacks keeps the engine's no-snapshot fast path.
  if (hooks_.on_drift) {
    h.on_drift = [this, shard](const DriftAlarm& a, const MetricsSnapshot& m) {
      hooks_.on_drift(shard, a, m);
    };
  }
  if (hooks_.on_warning) {
    h.on_warning = [this, shard](uint64_t position, const MetricsSnapshot& m) {
      hooks_.on_warning(shard, position, m);
    };
  }
  if (hooks_.on_metrics) {
    h.on_metrics = [this, shard](const MetricsSnapshot& m) {
      hooks_.on_metrics(shard, m);
    };
  }
  return h;
}

void ShardedMonitor::RequireMode(runtime::RoutingMode expected,
                                 const char* operation,
                                 const char* alternative) const {
  if (router_.mode() != expected) {
    throw std::logic_error(std::string("ShardedMonitor: ") + operation +
                           " requires " + runtime::RoutingModeName(expected) +
                           " routing, this monitor uses " +
                           runtime::RoutingModeName(router_.mode()) +
                           "; use " + alternative + " instead");
  }
}

ShardedMonitor::Prediction ShardedMonitor::Predict(
    uint64_t key, const std::vector<double>& features, double weight) {
  RequireMode(runtime::RoutingMode::kHashKey, "Predict(key, features)",
              "Predict(features)");
  Prediction p;
  size_t drained = 0;
  {
    runtime::ReaderLock table(&router_.TableMutex());
    const int slot = router_.RouteKey(key);
    Shard& s = *shards_[static_cast<size_t>(slot)];
    runtime::MutexLock lock(&s.mu);
    drained = DrainIngress(s);
    MonitorEngine::Ticket t = s.engine->Predict(features, weight);
    p.shard = slot;
    p.id = t.id;
    p.label = t.predicted;
    p.scores = std::move(t.scores);
  }
  for (size_t i = 0; i < drained; ++i) NoteCompleted();
  return p;
}

void ShardedMonitor::Feed(uint64_t key, const Instance& instance) {
  RequireMode(runtime::RoutingMode::kHashKey, "Feed(key, instance)",
              "Feed(instance)");
  size_t drained = 0;
  {
    runtime::ReaderLock table(&router_.TableMutex());
    const int slot = router_.RouteKey(key);
    Shard& s = *shards_[static_cast<size_t>(slot)];
    runtime::MutexLock lock(&s.mu);
    drained = DrainIngress(s);
    s.engine->Feed(instance);
  }
  for (size_t i = 0; i < drained + 1; ++i) NoteCompleted();
}

bool ShardedMonitor::LabelKey(uint64_t key, uint64_t id, int true_label) {
  RequireMode(runtime::RoutingMode::kHashKey, "LabelKey(key, id, label)",
              "Label(shard, id, label)");
  bool applied;
  size_t drained = 0;
  {
    runtime::ReaderLock table(&router_.TableMutex());
    const int slot = router_.RouteKey(key);
    Shard& s = *shards_[static_cast<size_t>(slot)];
    runtime::MutexLock lock(&s.mu);
    drained = DrainIngress(s);
    applied = s.engine->Label(id, true_label) == LabelOutcome::kApplied;
  }
  for (size_t i = 0; i < drained + (applied ? 1u : 0u); ++i) NoteCompleted();
  return applied;
}

ShardedMonitor::Prediction ShardedMonitor::Predict(
    const std::vector<double>& features, double weight) {
  RequireMode(runtime::RoutingMode::kRoundRobin, "Predict(features)",
              "Predict(key, features)");
  Prediction p;
  size_t drained = 0;
  {
    runtime::ReaderLock table(&router_.TableMutex());
    const int slot = router_.RouteNext();
    Shard& s = *shards_[static_cast<size_t>(slot)];
    runtime::MutexLock lock(&s.mu);
    drained = DrainIngress(s);
    MonitorEngine::Ticket t = s.engine->Predict(features, weight);
    p.shard = slot;
    p.id = t.id;
    p.label = t.predicted;
    p.scores = std::move(t.scores);
  }
  for (size_t i = 0; i < drained; ++i) NoteCompleted();
  return p;
}

void ShardedMonitor::Feed(const Instance& instance) {
  RequireMode(runtime::RoutingMode::kRoundRobin, "Feed(instance)",
              "Feed(key, instance)");
  size_t drained = 0;
  {
    runtime::ReaderLock table(&router_.TableMutex());
    const int slot = router_.RouteNext();
    Shard& s = *shards_[static_cast<size_t>(slot)];
    runtime::MutexLock lock(&s.mu);
    drained = DrainIngress(s);
    s.engine->Feed(instance);
  }
  for (size_t i = 0; i < drained + 1; ++i) NoteCompleted();
}

bool ShardedMonitor::Label(int shard, uint64_t id, int true_label) {
  bool applied;
  size_t drained = 0;
  {
    runtime::ReaderLock table(&router_.TableMutex());
    router_.RequireSlot(shard);
    Shard& s = *shards_[static_cast<size_t>(shard)];
    runtime::MutexLock lock(&s.mu);
    drained = DrainIngress(s);
    applied = s.engine->Label(id, true_label) == LabelOutcome::kApplied;
  }
  for (size_t i = 0; i < drained + (applied ? 1u : 0u); ++i) NoteCompleted();
  return applied;
}

bool ShardedMonitor::FeedAsync(uint64_t key, const Instance& instance) {
  RequireMode(runtime::RoutingMode::kHashKey, "FeedAsync(key, instance)",
              "Feed(key, instance)");
  runtime::ReaderLock table(&router_.TableMutex());
  const int slot = router_.RouteKey(key);
  Shard& s = *shards_[static_cast<size_t>(slot)];
  return s.ingress.TryPush(instance);
}

void ShardedMonitor::Flush() {
  const int n = router_.slots();
  for (int i = 0; i < n; ++i) {
    size_t drained;
    {
      runtime::ReaderLock table(&router_.TableMutex());
      Shard& s = *shards_[static_cast<size_t>(i)];
      runtime::MutexLock lock(&s.mu);
      drained = DrainIngress(s);
    }
    for (size_t k = 0; k < drained; ++k) NoteCompleted();
  }
}

void ShardedMonitor::FeedBatch(const std::vector<KeyedInstance>& batch) {
  RequireMode(runtime::RoutingMode::kHashKey, "FeedBatch(batch)",
              "Feed(instance) per element");
  size_t completed = 0;
  {
    runtime::ReaderLock table(&router_.TableMutex());
    // Partition by destination shard; per-shard order follows batch order.
    std::vector<std::vector<size_t>> by_slot;
    for (size_t i = 0; i < batch.size(); ++i) {
      const size_t slot =
          static_cast<size_t>(router_.RouteKey(batch[i].key));
      if (by_slot.size() <= slot) by_slot.resize(slot + 1);
      by_slot[slot].push_back(i);
    }
    for (size_t slot = 0; slot < by_slot.size(); ++slot) {
      if (by_slot[slot].empty()) continue;
      Shard& s = *shards_[slot];
      runtime::MutexLock lock(&s.mu);
      completed += DrainIngress(s);
      for (size_t i : by_slot[slot]) {
        s.engine->Feed(batch[i].instance);
        ++completed;
      }
    }
  }
  for (size_t i = 0; i < completed; ++i) NoteCompleted();
}

void ShardedMonitor::PredictBatch(const std::vector<KeyedInstance>& batch,
                                  std::vector<Prediction>* out) {
  RequireMode(runtime::RoutingMode::kHashKey, "PredictBatch(batch, out)",
              "Predict(key, features) per element");
  out->resize(batch.size());
  size_t drained = 0;
  {
    runtime::ReaderLock table(&router_.TableMutex());
    std::vector<std::vector<size_t>> by_slot;
    for (size_t i = 0; i < batch.size(); ++i) {
      const size_t slot =
          static_cast<size_t>(router_.RouteKey(batch[i].key));
      if (by_slot.size() <= slot) by_slot.resize(slot + 1);
      by_slot[slot].push_back(i);
    }
    MonitorEngine::Ticket t;  // Reused across elements.
    for (size_t slot = 0; slot < by_slot.size(); ++slot) {
      if (by_slot[slot].empty()) continue;
      Shard& s = *shards_[slot];
      runtime::MutexLock lock(&s.mu);
      drained += DrainIngress(s);
      for (size_t i : by_slot[slot]) {
        s.engine->Predict(batch[i].instance.features,
                          batch[i].instance.weight, &t);
        Prediction& p = (*out)[i];
        p.shard = static_cast<int>(slot);
        p.id = t.id;
        p.label = t.predicted;
        p.scores = t.scores;
      }
    }
  }
  for (size_t i = 0; i < drained; ++i) NoteCompleted();
}

void ShardedMonitor::LabelBatch(const std::vector<ShardLabel>& batch,
                                std::vector<LabelOutcome>* outcomes) {
  if (outcomes) outcomes->resize(batch.size());
  size_t completed = 0;
  {
    runtime::ReaderLock table(&router_.TableMutex());
    // Validate every index before applying anything: a bogus shard makes
    // the whole batch a no-op instead of a half-applied one.
    for (const ShardLabel& l : batch) router_.RequireSlot(l.shard);
    std::vector<std::vector<size_t>> by_slot;
    for (size_t i = 0; i < batch.size(); ++i) {
      const size_t slot = static_cast<size_t>(batch[i].shard);
      if (by_slot.size() <= slot) by_slot.resize(slot + 1);
      by_slot[slot].push_back(i);
    }
    for (size_t slot = 0; slot < by_slot.size(); ++slot) {
      if (by_slot[slot].empty()) continue;
      Shard& s = *shards_[slot];
      runtime::MutexLock lock(&s.mu);
      completed += DrainIngress(s);
      for (size_t i : by_slot[slot]) {
        const LabelOutcome outcome =
            s.engine->Label(batch[i].id, batch[i].label);
        if (outcome == LabelOutcome::kApplied) ++completed;
        if (outcomes) (*outcomes)[i] = outcome;
      }
    }
  }
  for (size_t i = 0; i < completed; ++i) NoteCompleted();
}

int ShardedMonitor::AddShard() {
  runtime::WriterLock table(&router_.TableMutex());
  // Strict throw-before-commit order: everything that can fail (component
  // construction, both allocations) happens before the router advertises
  // the new slot, so an exception leaves table and shard vector in step —
  // never a slot whose shards_ entry is missing.
  shards_.reserve(shards_.size() + 1);
  const int shard = static_cast<int>(shards_.size());
  std::unique_ptr<Shard> fresh = MakeShard(shard);
  router_.AddSlot(table);
  shards_.push_back(std::move(fresh));  // No-throw: capacity reserved.
  return shard;
}

void ShardedMonitor::DrainShard(int shard) {
  size_t drained = 0;
  {
    runtime::WriterLock table(&router_.TableMutex());
    router_.RequireSlot(shard);
    Shard& s = *shards_[static_cast<size_t>(shard)];
    // Under the exclusive table hold no push is in flight, but the slot
    // lock is still taken (uncontended) so every guarded access happens
    // under its declared capability.
    runtime::MutexLock lock(&s.mu);
    // Queued ingress entries belong to the outgoing engine's history:
    // apply them before the capture so the handoff is a consistent cut.
    drained = DrainIngress(s);
    // Every step that can fail — CaptureEngineState throws for components
    // without CloneState() — runs before the old shard is touched, so a
    // failed drain is a no-op (the shard keeps serving), never a shard
    // bricked in a paused state.
    EngineState state =
        CaptureEngineState(*s.engine, *s.classifier, s.detector.get());
    auto engine = std::make_unique<MonitorEngine>(
        schema_, state.classifier.get(), state.detector.get(), config_,
        MakeShardHooks(shard), pending_capacity_);
    engine->Restore(state.snapshot);  // Also clears any paused state.
    // The documented drain step. Under the exclusive table lock nothing can
    // push anyway, but pausing the outgoing engine keeps the handoff
    // protocol (Pause → state moves → successor serves) explicit and
    // identical to the intra-stream sharding one.
    s.engine->Pause();
    // Commit — no-throw moves: the outgoing engine dies first (it holds raw
    // pointers into the outgoing components), then the components are
    // replaced by the clones the replacement engine points into.
    s.engine = std::move(engine);
    s.classifier = std::move(state.classifier);
    s.detector = std::move(state.detector);
  }
  for (size_t i = 0; i < drained; ++i) NoteCompleted();
}

int ShardedMonitor::shards() const { return router_.slots(); }

// ----------------------------------------------------------- durability

ShardedMonitor::ShardedMonitor(
    const StreamSchema& schema, const PrequentialConfig& config,
    std::string classifier_name, ParamMap classifier_params,
    std::string detector_name, ParamMap detector_params, uint64_t seed,
    size_t pending_capacity, runtime::RoutingMode mode, uint64_t merge_every,
    size_t ingress_capacity, ShardedHooks hooks, uint64_t completed_total,
    uint64_t generation, std::vector<io::StateImage>&& images)
    : schema_(schema),
      config_(config),
      classifier_name_(std::move(classifier_name)),
      classifier_params_(std::move(classifier_params)),
      detector_name_(std::move(detector_name)),
      detector_params_(std::move(detector_params)),
      seed_(seed),
      pending_capacity_(pending_capacity),
      merge_every_(merge_every),
      ingress_capacity_(ingress_capacity),
      hooks_(std::move(hooks)),
      router_(static_cast<int>(images.size()), mode),
      completed_total_(completed_total),
      generation_(generation) {
  shards_.reserve(images.size());
  for (size_t i = 0; i < images.size(); ++i) {
    io::StateImage& image = images[i];
    auto engine = std::make_unique<MonitorEngine>(
        schema_, image.state.classifier.get(), image.state.detector.get(),
        config_, MakeShardHooks(static_cast<int>(i)), pending_capacity_);
    engine->Restore(image.state.snapshot);
    shards_.push_back(std::make_unique<Shard>(
        std::move(image.state.classifier), std::move(image.state.detector),
        std::move(engine), ingress_capacity_));
  }
}

io::StateImage ShardedMonitor::MakeShardImage(int shard) const {
  io::StateImage image;
  image.schema = schema_;
  image.classifier = classifier_name_;
  image.classifier_params = classifier_params_.ToString();
  image.detector = detector_name_;
  image.detector_params = detector_params_.ToString();
  image.seed = seed_ + static_cast<uint64_t>(shard);
  image.config = config_;
  return image;
}

void ShardedMonitor::Persist(const std::string& directory) {
  runtime::WriterLock table(&router_.TableMutex());
  // Apply queued ingress entries first: the persisted cut must reflect
  // every accepted FeedAsync (reopened queues start empty). The
  // merged-metrics cadence hook is not fired from inside the exclusive
  // persist window — only the counter advances, under NoteCompleted()'s
  // own enablement guard.
  {
    uint64_t drained = 0;
    for (size_t i = 0; i < shards_.size(); ++i) {
      Shard& s = *shards_[i];
      runtime::MutexLock lock(&s.mu);
      drained += DrainIngress(s);
    }
    if (merge_every_ != 0 && hooks_.on_merged_metrics) {
      completed_total_.fetch_add(drained, std::memory_order_relaxed);
    }
  }
  io::SnapshotStore store(directory);
  const uint64_t next_gen = generation_ + 1;

  io::Manifest manifest;
  manifest.schema = schema_;
  manifest.classifier = classifier_name_;
  manifest.classifier_params = classifier_params_.ToString();
  manifest.detector = detector_name_;
  manifest.detector_params = detector_params_.ToString();
  manifest.seed = seed_;
  manifest.config = config_;
  manifest.pending_capacity = pending_capacity_;
  manifest.mode = static_cast<uint8_t>(router_.mode());
  manifest.merge_every = merge_every_;
  manifest.completed_total = completed_total_.load(std::memory_order_relaxed);
  manifest.generation = next_gen;
  manifest.shards.reserve(shards_.size());

  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = *shards_[i];
    runtime::MutexLock lock(&s.mu);
    io::StateImage image = MakeShardImage(static_cast<int>(i));
    image.state =
        CaptureEngineState(*s.engine, *s.classifier, s.detector.get());
    const std::string bytes = io::EncodeStateImage(image);
    io::Manifest::ShardFile f;
    f.file = "shard-" + std::to_string(i) + "-g" + std::to_string(next_gen) +
             ".state";
    f.size = bytes.size();
    // Seeded with the shard index: a sealed envelope's whole-file CRC is
    // the fixed CRC-32 residue (the trailer is its own checksum), so an
    // unseeded digest could not tell shard files apart when swapped.
    f.crc = io::Crc32(bytes.data(), bytes.size(), static_cast<uint32_t>(i));
    store.Write(f.file, bytes);
    manifest.shards.push_back(std::move(f));
  }

  // Commit point: the manifest names only the new generation's files, and
  // its atomic rename flips the directory from old generation to new.
  store.Write(io::kManifestName, io::EncodeManifest(manifest));

  // Only now is the old generation (and any crash debris) garbage.
  for (const std::string& name : store.List()) {
    if (name == io::kManifestName) continue;
    bool live = false;
    for (const io::Manifest::ShardFile& f : manifest.shards) {
      if (f.file == name) {
        live = true;
        break;
      }
    }
    if (!live) store.Remove(name);
  }
  generation_ = next_gen;
}

ShardedMonitor ShardedMonitor::Open(const std::string& directory,
                                    ShardedHooks hooks) {
  io::SnapshotStore store(directory);
  io::Manifest m = io::DecodeManifest(store.Read(io::kManifestName));
  std::vector<io::StateImage> images;
  images.reserve(m.shards.size());
  for (size_t i = 0; i < m.shards.size(); ++i) {
    const io::Manifest::ShardFile& f = m.shards[i];
    const std::string bytes = store.Read(f.file);
    if (bytes.size() != f.size ||
        io::Crc32(bytes.data(), bytes.size(), static_cast<uint32_t>(i)) !=
            f.crc) {
      throw io::WireError(
          store.Path(f.file), 0,
          "shard file does not match its manifest entry (size " +
              std::to_string(bytes.size()) + " vs " + std::to_string(f.size) +
              ", or CRC mismatch) — swapped or torn file");
    }
    io::StateImage image = io::DecodeStateImage(bytes);
    if (image.schema.num_features != m.schema.num_features ||
        image.schema.num_classes != m.schema.num_classes) {
      throw io::WireError(store.Path(f.file), 0,
                          "shard schema disagrees with the manifest");
    }
    images.push_back(std::move(image));
  }
  // Ingress queues are a serving knob, not persisted state (Persist()
  // drains them, so they are empty by construction): reopen at the
  // builder default.
  return ShardedMonitor(
      m.schema, m.config, m.classifier, ParamMap::Parse(m.classifier_params),
      m.detector, ParamMap::Parse(m.detector_params), m.seed,
      static_cast<size_t>(m.pending_capacity),
      static_cast<runtime::RoutingMode>(m.mode), m.merge_every,
      /*ingress_capacity=*/1024, std::move(hooks), m.completed_total,
      m.generation, std::move(images));
}

std::string ShardedMonitor::SerializeShard(int shard) const {
  runtime::ReaderLock table(&router_.TableMutex());
  router_.RequireSlot(shard);
  const Shard& s = *shards_[static_cast<size_t>(shard)];
  runtime::MutexLock lock(&s.mu);
  io::StateImage image = MakeShardImage(shard);
  image.state = CaptureEngineState(*s.engine, *s.classifier, s.detector.get());
  return io::EncodeStateImage(image);
}

std::string ShardedMonitor::ShipShard(int shard) {
  std::string bytes;
  size_t drained = 0;
  {
    runtime::WriterLock table(&router_.TableMutex());
    router_.RequireSlot(shard);
    Shard& s = *shards_[static_cast<size_t>(shard)];
    runtime::MutexLock lock(&s.mu);
    // Queued ingress entries must ship with the state — the source pauses
    // below and would otherwise strand them until a restore.
    drained = DrainIngress(s);
    io::StateImage image = MakeShardImage(shard);
    image.state =
        CaptureEngineState(*s.engine, *s.classifier, s.detector.get());
    bytes = io::EncodeStateImage(image);
    // Capture succeeded — only now stop the source, so a failed ship
    // leaves the shard serving.
    s.engine->Pause();
  }
  for (size_t i = 0; i < drained; ++i) NoteCompleted();
  return bytes;
}

void ShardedMonitor::RestoreShard(int shard, const std::string& bytes) {
  // Decode (and thereby fully validate) before taking any lock or
  // touching the target shard: malformed bytes must leave it serving.
  io::StateImage image = io::DecodeStateImage(bytes);
  if (image.schema.num_features != schema_.num_features ||
      image.schema.num_classes != schema_.num_classes) {
    throw ApiError(
        "ShardedMonitor::RestoreShard: image schema (" +
        std::to_string(image.schema.num_features) + " features, " +
        std::to_string(image.schema.num_classes) +
        " classes) does not match this monitor (" +
        std::to_string(schema_.num_features) + ", " +
        std::to_string(schema_.num_classes) + ")");
  }
  runtime::WriterLock table(&router_.TableMutex());
  router_.RequireSlot(shard);
  Shard& s = *shards_[static_cast<size_t>(shard)];
  runtime::MutexLock lock(&s.mu);
  auto engine = std::make_unique<MonitorEngine>(
      schema_, image.state.classifier.get(), image.state.detector.get(),
      config_, MakeShardHooks(shard), pending_capacity_);
  engine->Restore(image.state.snapshot);  // Clears any pause state.
  // Commit — no-throw moves, old engine first (see DrainShard).
  s.engine = std::move(engine);
  s.classifier = std::move(image.state.classifier);
  s.detector = std::move(image.state.detector);
}

EngineSnapshot ShardedMonitor::ShardSnapshot(int shard) const {
  runtime::ReaderLock table(&router_.TableMutex());
  router_.RequireSlot(shard);
  const Shard& s = *shards_[static_cast<size_t>(shard)];
  runtime::MutexLock lock(&s.mu);
  return s.engine->Snapshot();
}

PrequentialResult ShardedMonitor::ShardResult(int shard) const {
  runtime::ReaderLock table(&router_.TableMutex());
  router_.RequireSlot(shard);
  const Shard& s = *shards_[static_cast<size_t>(shard)];
  runtime::MutexLock lock(&s.mu);
  return s.engine->Result();
}

std::vector<EngineSnapshot> ShardedMonitor::CollectSnapshots() const {
  // Slots are locked one at a time (table lock re-taken per slot), so
  // producers on other shards keep flowing while we sweep; each per-shard
  // snapshot is internally consistent, the fleet view is advisory. The
  // table never shrinks, so the count stays a valid lower bound.
  const int n = router_.slots();
  std::vector<EngineSnapshot> snapshots;
  snapshots.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    runtime::ReaderLock table(&router_.TableMutex());
    const Shard& s = *shards_[static_cast<size_t>(i)];
    runtime::MutexLock lock(&s.mu);
    snapshots.push_back(s.engine->Snapshot());
  }
  return snapshots;
}

EngineSnapshot ShardedMonitor::Snapshot() const {
  return MergeSnapshots(CollectSnapshots());
}

PrequentialResult ShardedMonitor::Result() const {
  return MergedResult(CollectSnapshots());
}

std::vector<ShardAlarm> ShardedMonitor::DriftLog() const {
  return MergeShardAlarms(CollectSnapshots());
}

uint64_t ShardedMonitor::SumOverShards(
    const std::function<uint64_t(const MonitorEngine&)>& read) const {
  uint64_t sum = 0;
  const int n = router_.slots();
  for (int i = 0; i < n; ++i) {
    runtime::ReaderLock table(&router_.TableMutex());
    const Shard& s = *shards_[static_cast<size_t>(i)];
    runtime::MutexLock lock(&s.mu);
    sum += read(*s.engine);
  }
  return sum;
}

uint64_t ShardedMonitor::position() const {
  return SumOverShards([](const MonitorEngine& e) { return e.position(); });
}

uint64_t ShardedMonitor::pending() const {
  return SumOverShards(
      [](const MonitorEngine& e) { return static_cast<uint64_t>(e.pending()); });
}

uint64_t ShardedMonitor::evicted() const {
  return SumOverShards([](const MonitorEngine& e) { return e.evicted(); });
}

uint64_t ShardedMonitor::unmatched_labels() const {
  return SumOverShards(
      [](const MonitorEngine& e) { return e.unmatched_labels(); });
}

void ShardedMonitor::NoteCompleted() {
  if (merge_every_ == 0 || !hooks_.on_merged_metrics) return;
  const uint64_t n =
      completed_total_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % merge_every_ != 0) return;
  const std::vector<EngineSnapshot> snapshots = CollectSnapshots();
  size_t window_total = 0;
  for (const EngineSnapshot& s : snapshots) window_total += s.window.size();
  const EngineSnapshot merged = MergeSnapshots(snapshots);
  MetricsSnapshot m;
  m.position = merged.position;
  m.window_size = window_total;
  if (merged.metric_samples > 0) {
    const double samples = static_cast<double>(merged.metric_samples);
    m.pmauc = merged.sum_pmauc / samples;
    m.pmgm = merged.sum_pmgm / samples;
    m.accuracy = merged.sum_accuracy / samples;
    m.kappa = merged.sum_kappa / samples;
  }
  hooks_.on_merged_metrics(m);
}

// -------------------------------------------------- ShardedMonitorBuilder

ShardedMonitorBuilder& ShardedMonitorBuilder::Schema(
    const StreamSchema& schema) {
  schema_ = schema;
  has_schema_ = true;
  return *this;
}

ShardedMonitorBuilder& ShardedMonitorBuilder::Schema(int num_features,
                                                     int num_classes) {
  return Schema(StreamSchema(num_features, num_classes, "sharded-monitor"));
}

ShardedMonitorBuilder& ShardedMonitorBuilder::Classifier(
    const std::string& name, ParamMap params) {
  classifier_name_ = name;
  classifier_params_ = std::move(params);
  return *this;
}

ShardedMonitorBuilder& ShardedMonitorBuilder::Detector(const std::string& name,
                                                       ParamMap params) {
  detector_name_ = name;
  detector_params_ = std::move(params);
  return *this;
}

ShardedMonitorBuilder& ShardedMonitorBuilder::NoDetector() {
  detector_name_.clear();
  detector_params_ = ParamMap();
  return *this;
}

ShardedMonitorBuilder& ShardedMonitorBuilder::Seed(uint64_t seed) {
  seed_ = seed;
  return *this;
}

ShardedMonitorBuilder& ShardedMonitorBuilder::Protocol(
    const PrequentialConfig& config) {
  config_ = config;
  has_config_ = true;
  return *this;
}

ShardedMonitorBuilder& ShardedMonitorBuilder::PendingCapacity(size_t capacity) {
  pending_capacity_ = capacity < 1 ? 1 : capacity;
  return *this;
}

ShardedMonitorBuilder& ShardedMonitorBuilder::Shards(int shards) {
  shards_ = shards;
  return *this;
}

ShardedMonitorBuilder& ShardedMonitorBuilder::Mode(runtime::RoutingMode mode) {
  mode_ = mode;
  return *this;
}

ShardedMonitorBuilder& ShardedMonitorBuilder::MergeEvery(uint64_t n) {
  merge_every_ = n;
  return *this;
}

ShardedMonitorBuilder& ShardedMonitorBuilder::IngressCapacity(size_t capacity) {
  ingress_capacity_ = capacity < 1 ? 1 : capacity;
  return *this;
}

ShardedMonitorBuilder& ShardedMonitorBuilder::OnDrift(
    std::function<void(int, const DriftAlarm&, const MetricsSnapshot&)>
        callback) {
  hooks_.on_drift = std::move(callback);
  return *this;
}

ShardedMonitorBuilder& ShardedMonitorBuilder::OnWarning(
    std::function<void(int, uint64_t, const MetricsSnapshot&)> callback) {
  hooks_.on_warning = std::move(callback);
  return *this;
}

ShardedMonitorBuilder& ShardedMonitorBuilder::OnMetrics(
    std::function<void(int, const MetricsSnapshot&)> callback) {
  hooks_.on_metrics = std::move(callback);
  return *this;
}

ShardedMonitorBuilder& ShardedMonitorBuilder::OnMergedMetrics(
    std::function<void(const MetricsSnapshot&)> callback) {
  hooks_.on_merged_metrics = std::move(callback);
  return *this;
}

ShardedMonitor ShardedMonitorBuilder::Build() const {
  if (!has_schema_) {
    throw ApiError(
        "ShardedMonitorBuilder: no schema configured; call Schema(features, "
        "classes) before Build() — a push monitor has no stream to infer it "
        "from");
  }
  if (!schema_.Valid()) {
    throw ApiError(
        "ShardedMonitorBuilder: invalid schema (need num_features > 0 and "
        "num_classes >= 2)");
  }
  if (shards_ < 1) {
    throw ApiError("ShardedMonitorBuilder: Shards(" + std::to_string(shards_) +
                   ") is degenerate; a serving router needs >= 1 shard");
  }

  PrequentialConfig config;
  if (has_config_) {
    config = config_;
    try {
      ValidatePrequentialConfig(config);
    } catch (const std::invalid_argument& e) {
      throw ApiError(e.what());
    }
  } else {
    // The paper's protocol; timing off, as in MonitorBuilder — a serving
    // monitor wants alerts, not per-call stopwatches.
    config.metric_window = 1000;
    config.eval_interval = 250;
    config.warmup = 500;
    config.timing = false;
  }

  // Resolve the component names eagerly so an unknown name is an ApiError
  // at Build(), not inside the first AddShard() mid-serving.
  Classifiers().Require(classifier_name_);
  if (!detector_name_.empty()) Detectors().Require(detector_name_);

  return ShardedMonitor(schema_, config, classifier_name_, classifier_params_,
                        detector_name_, detector_params_, seed_,
                        pending_capacity_, shards_, mode_, merge_every_,
                        ingress_capacity_, hooks_);
}

}  // namespace api
}  // namespace ccd
