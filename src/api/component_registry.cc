#include "api/component_registry.h"

namespace ccd {
namespace api {

namespace detail {

Registry<DriftDetector>& DetectorsRaw() {
  static Registry<DriftDetector>* r = new Registry<DriftDetector>("detector");
  return *r;
}

Registry<OnlineClassifier>& ClassifiersRaw() {
  static Registry<OnlineClassifier>* r =
      new Registry<OnlineClassifier>("classifier");
  return *r;
}

}  // namespace detail

Registry<DriftDetector>& Detectors() {
  detail::EnsureBuiltinComponentsLinked();
  return detail::DetectorsRaw();
}

Registry<OnlineClassifier>& Classifiers() {
  detail::EnsureBuiltinComponentsLinked();
  return detail::ClassifiersRaw();
}

std::unique_ptr<DriftDetector> MakeDetector(const std::string& name,
                                            const StreamSchema& schema,
                                            uint64_t seed,
                                            const ParamMap& params) {
  return Detectors().Create(name, schema, seed, params);
}

std::unique_ptr<OnlineClassifier> MakeClassifier(const std::string& name,
                                                 const StreamSchema& schema,
                                                 uint64_t seed,
                                                 const ParamMap& params) {
  return Classifiers().Create(name, schema, seed, params);
}

}  // namespace api
}  // namespace ccd
