#ifndef CCD_API_COMPONENT_REGISTRY_H_
#define CCD_API_COMPONENT_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/param_map.h"
#include "classifiers/classifier.h"
#include "detectors/detector.h"
#include "stream/instance.h"

namespace ccd {
namespace api {

/// Capability flags advertised by a registered component, so callers can
/// select components by what they can do instead of hard-coding names
/// (e.g. "every detector that explains local drift").
enum ComponentCaps : unsigned {
  kNoCaps = 0,
  /// drifted_classes() names the classes implicated in a drift signal —
  /// the paper's "explainable / local drift" distinction.
  kExplainsLocalDrift = 1u << 0,
  /// The component learns a model of the data distribution itself
  /// (RBM-IM), not just a statistic of the classifier's errors.
  kTrainable = 1u << 1,
  /// The factory reads the stream schema (class count / feature count) to
  /// size internal state. Components without this flag ignore the schema.
  kNeedsSchema = 1u << 2,
};

/// Registry card of one component: its lookup name, a one-line
/// human-readable description, and capability flags.
struct ComponentInfo {
  std::string name;
  std::string description;
  unsigned caps = kNoCaps;

  bool has(ComponentCaps c) const { return (caps & c) != 0; }
};

/// String-keyed factory registry for one component interface (detectors or
/// classifiers). Entries keep registration order, lookups are by exact
/// name, and every failure mode produces an ApiError that lists the valid
/// alternatives — never a silent nullptr.
template <typename Interface>
class Registry {
 public:
  /// Factories take the stream schema, a seed, and the `key=value`
  /// overrides; they must consume every override they understand (the
  /// registry rejects leftovers after the factory returns).
  using Factory = std::function<std::unique_ptr<Interface>(
      const StreamSchema& schema, uint64_t seed, const ParamMap& params)>;

  /// Adds a component; duplicate names throw (two components silently
  /// shadowing each other is exactly the bug class this API removes).
  void Register(ComponentInfo info, Factory factory) {
    if (FindEntry(info.name) != nullptr) {
      throw ApiError("duplicate " + kind_ + " registration '" + info.name +
                     "'");
    }
    entries_.push_back(Entry{std::move(info), std::move(factory)});
  }

  /// Builds `name` or throws an ApiError listing every registered name.
  /// Unused parameter keys are rejected with the component named.
  std::unique_ptr<Interface> Create(const std::string& name,
                                    const StreamSchema& schema, uint64_t seed,
                                    const ParamMap& params = {}) const {
    const Entry* e = FindEntry(name);
    if (e == nullptr) ThrowUnknown(name);
    // Validate against per-call consumption state: a caller may reuse one
    // ParamMap across several Create() calls, and keys consumed by an
    // earlier factory must not vouch for this one.
    ParamMap fresh = params;
    fresh.ResetUsage();
    std::unique_ptr<Interface> built = e->factory(schema, seed, fresh);
    fresh.ThrowIfUnused(kind_ + " '" + name + "'");
    return built;
  }

  /// Validates that `name` is registered — same ApiError as Create() when
  /// unknown. Lets CLI front-ends reject a typo'd name before starting a
  /// long sweep instead of aborting mid-run.
  void Require(const std::string& name) const {
    if (FindEntry(name) == nullptr) ThrowUnknown(name);
  }

  /// Registry card of `name`, or nullptr when unknown.
  const ComponentInfo* Find(const std::string& name) const {
    const Entry* e = FindEntry(name);
    return e == nullptr ? nullptr : &e->info;
  }

  /// All cards, in registration order.
  std::vector<ComponentInfo> List() const {
    std::vector<ComponentInfo> out;
    for (const Entry& e : entries_) out.push_back(e.info);
    return out;
  }

  /// All names, in registration order.
  std::vector<std::string> Names() const {
    std::vector<std::string> out;
    for (const Entry& e : entries_) out.push_back(e.info.name);
    return out;
  }

  explicit Registry(std::string kind) : kind_(std::move(kind)) {}

 private:
  struct Entry {
    ComponentInfo info;
    Factory factory;
  };

  const Entry* FindEntry(const std::string& name) const {
    for (const Entry& e : entries_) {
      if (e.info.name == name) return &e;
    }
    return nullptr;
  }

  [[noreturn]] void ThrowUnknown(const std::string& name) const {
    std::string msg =
        "unknown " + kind_ + " '" + name + "'; registered " + kind_ + "s:";
    for (const Entry& entry : entries_) msg += " " + entry.info.name;
    throw ApiError(msg);
  }

  std::string kind_;
  std::vector<Entry> entries_;
};

namespace detail {

/// Raw registry singletons: registration targets for the self-registration
/// macros below. Use the public Detectors()/Classifiers() accessors for
/// lookups — they guarantee the built-in components are linked in.
Registry<DriftDetector>& DetectorsRaw();
Registry<OnlineClassifier>& ClassifiersRaw();

/// No-op anchor defined in builtin_components.cc. Calling it forces the
/// linker to keep that translation unit (and with it the file-scope
/// registrars) even when the library is consumed as a static archive.
void EnsureBuiltinComponentsLinked();

}  // namespace detail

/// The process-wide detector registry, built-ins guaranteed present.
Registry<DriftDetector>& Detectors();

/// The process-wide classifier registry, built-ins guaranteed present.
Registry<OnlineClassifier>& Classifiers();

/// Convenience one-shot builders over the two registries.
std::unique_ptr<DriftDetector> MakeDetector(const std::string& name,
                                            const StreamSchema& schema,
                                            uint64_t seed,
                                            const ParamMap& params = {});
std::unique_ptr<OnlineClassifier> MakeClassifier(const std::string& name,
                                                 const StreamSchema& schema,
                                                 uint64_t seed = 0,
                                                 const ParamMap& params = {});

#define CCD_API_CONCAT_INNER(a, b) a##b
#define CCD_API_CONCAT(a, b) CCD_API_CONCAT_INNER(a, b)

/// Self-registration at static-initialization time. Use at namespace scope
/// in a .cc file:
///
///   CCD_REGISTER_DETECTOR("DDM", "Drift Detection Method", kNoCaps,
///       [](const StreamSchema&, uint64_t, const ParamMap& p) { ... });
///
/// Note for static-library consumers: the linker only runs registrars of
/// object files it keeps, so a component registered outside this library
/// must live in a translation unit the binary already references.
#define CCD_REGISTER_DETECTOR(name, description, caps, ...)             \
  static const bool CCD_API_CONCAT(ccd_detector_registrar_, __LINE__) = \
      (::ccd::api::detail::DetectorsRaw().Register(                     \
           ::ccd::api::ComponentInfo{name, description, caps},          \
           __VA_ARGS__),                                                \
       true)

#define CCD_REGISTER_CLASSIFIER(name, description, caps, ...)             \
  static const bool CCD_API_CONCAT(ccd_classifier_registrar_, __LINE__) = \
      (::ccd::api::detail::ClassifiersRaw().Register(                     \
           ::ccd::api::ComponentInfo{name, description, caps},            \
           __VA_ARGS__),                                                  \
       true)

}  // namespace api
}  // namespace ccd

#endif  // CCD_API_COMPONENT_REGISTRY_H_
