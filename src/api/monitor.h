#ifndef CCD_API_MONITOR_H_
#define CCD_API_MONITOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/component_registry.h"
#include "api/param_map.h"
#include "eval/engine.h"

namespace ccd {
namespace api {

/// Push-based online drift monitor: the serving-side front door of the
/// library. Where api::Experiment pulls a benchmark stream through the
/// prequential protocol, a Monitor is *pushed* events by the caller —
/// predictions and (possibly late, possibly never-arriving) labels — and
/// emits drift alerts through callbacks. Both surfaces run on the same
/// MonitorEngine, so offline numbers and online behavior cannot diverge.
///
///   api::Monitor monitor =
///       api::MonitorBuilder()
///           .Schema(20, 5)
///           .Classifier("cs-ptree")
///           .Detector("RBM-IM", {"batch_size=75"})
///           .PendingCapacity(4096)
///           .OnDrift([](const DriftAlarm& a, const MetricsSnapshot& m) {
///             alert(a.position, a.drifted_classes, m.pmauc);
///           })
///           .Build();
///
///   // Serving: predict now, label whenever ground truth shows up.
///   auto p = monitor.Predict(features);       // {id, label, scores}
///   ...
///   monitor.Label(p.id, observed_outcome);    // false if evicted
///
///   // Backfill / replay: label known immediately.
///   monitor.Feed(instance);
///
/// A Monitor owns its classifier and detector and is single-threaded; run
/// one per stream shard and shard above it.
class Monitor {
 public:
  /// What a Predict() call hands back to the serving layer.
  struct Prediction {
    uint64_t id = 0;      ///< Pass to Label() when ground truth arrives.
    int label = 0;        ///< Argmax of `scores`.
    std::vector<double> scores;
  };

  Monitor(Monitor&&) = default;
  Monitor& operator=(Monitor&&) = default;
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Prediction path: score `features` with the classifier as trained so
  /// far, park the prediction for its future label, return it. When the
  /// pending buffer is full the oldest prediction is evicted and counted —
  /// see evicted(). Throws std::logic_error while paused.
  Prediction Predict(const std::vector<double>& features, double weight = 1.0);

  /// Label path: completes the parked prediction `id` with the true label
  /// (metrics, detector, drift coupling, training — one prequential step
  /// using the scores captured at prediction time). Returns false when the
  /// id is unknown — evicted or never issued. Allowed while paused.
  bool Label(uint64_t id, int true_label);

  /// Immediate-label fast path: one full prequential step. Equivalent to
  /// Predict() + Label() back to back, minus the buffer round-trip.
  void Feed(const Instance& instance);

  /// Batch forms: each is bit-identical to calling its per-instance
  /// sibling in element order, but amortizes the call overhead (and, on
  /// ShardedMonitor, the per-push lock round-trip). `out` vectors are
  /// resized to the batch size, reusing their capacity across calls.
  void FeedBatch(const std::vector<Instance>& batch);
  void PredictBatch(const std::vector<Instance>& batch,
                    std::vector<Prediction>* out);
  /// One LabelOutcome per request, in request order (kApplied / kUnknown).
  void LabelBatch(const std::vector<LabelRequest>& batch,
                  std::vector<LabelOutcome>* outcomes = nullptr);

  /// Pause/Resume the intake (Feed/Predict); Label() keeps draining
  /// in-flight predictions. Snapshot() of a paused, drained monitor is the
  /// handoff payload for intra-stream sharding.
  void Pause();
  void Resume();
  bool paused() const;

  /// Copyable run state: instance counts, pending/evicted counters, drift
  /// log, metric-window contents.
  EngineSnapshot Snapshot() const;

  /// Aggregate prequential result over everything labelled so far.
  PrequentialResult Result() const;

  uint64_t position() const;          ///< Completed (labelled) instances.
  size_t pending() const;             ///< Predictions awaiting a label.
  uint64_t evicted() const;           ///< Labels that never arrived.
  uint64_t unmatched_labels() const;  ///< Label() calls with no match.
  DetectorState last_detector_state() const;
  const StreamSchema& schema() const;

 private:
  friend class MonitorBuilder;
  Monitor(const StreamSchema& schema,
          std::unique_ptr<OnlineClassifier> classifier,
          std::unique_ptr<DriftDetector> detector,
          const PrequentialConfig& config, EngineHooks hooks,
          size_t pending_capacity);

  // Declaration order matters: the engine holds raw pointers into the two
  // components, so they must outlive it on destruction (members destroy in
  // reverse order).
  std::unique_ptr<OnlineClassifier> classifier_;
  std::unique_ptr<DriftDetector> detector_;
  std::unique_ptr<MonitorEngine> engine_;
};

/// Fluent composer of a Monitor, mirroring api::Experiment: components are
/// resolved by registered name, protocol knobs default to the paper's
/// values, unknown names throw ApiError listing the alternatives.
///
/// Required: Schema() (a push monitor has no stream to infer it from).
/// Defaults: classifier "cs-ptree", no detector, the paper's protocol
/// (window 1000, sample every 250, warmup 500, reset on drift), pending
/// capacity 1024, timing off (serving cares about alerts, not
/// microbenchmarks — Protocol() overrides).
class MonitorBuilder {
 public:
  MonitorBuilder() = default;

  MonitorBuilder& Schema(const StreamSchema& schema);
  MonitorBuilder& Schema(int num_features, int num_classes);

  MonitorBuilder& Classifier(const std::string& name, ParamMap params = {});
  MonitorBuilder& Detector(const std::string& name, ParamMap params = {});
  MonitorBuilder& NoDetector();

  /// Seed handed to the component factories (default 42).
  MonitorBuilder& Seed(uint64_t seed);

  /// Overrides the evaluation protocol (warmup / metric window / sampling
  /// interval / reset-on-drift). `max_instances` is ignored: a push
  /// monitor runs until its owner stops pushing.
  MonitorBuilder& Protocol(const PrequentialConfig& config);

  /// Bounds the delayed-label buffer (clamped to >= 1).
  MonitorBuilder& PendingCapacity(size_t capacity);

  MonitorBuilder& OnDrift(
      std::function<void(const DriftAlarm&, const MetricsSnapshot&)> callback);
  MonitorBuilder& OnWarning(
      std::function<void(uint64_t, const MetricsSnapshot&)> callback);
  MonitorBuilder& OnMetrics(std::function<void(const MetricsSnapshot&)> callback);

  /// Instantiates the components and wires the engine. Throws ApiError on
  /// a missing/invalid schema, unknown component names, or a degenerate
  /// protocol.
  Monitor Build() const;

 private:
  StreamSchema schema_;
  bool has_schema_ = false;
  std::string classifier_name_ = "cs-ptree";
  ParamMap classifier_params_;
  std::string detector_name_;  ///< Empty = no detector.
  ParamMap detector_params_;
  uint64_t seed_ = 42;
  bool has_config_ = false;
  PrequentialConfig config_;
  size_t pending_capacity_ = 1024;
  EngineHooks hooks_;
};

}  // namespace api
}  // namespace ccd

#endif  // CCD_API_MONITOR_H_
