#include "detectors/hddm.h"

#include <cmath>

#include "io/codecs.h"

namespace ccd {

void HddmA::Reset() {
  state_ = DetectorState::kStable;
  n_ = 0.0;
  sum_ = 0.0;
  n_min_ = 0.0;
  sum_min_ = 0.0;
  best_bound_ = 1e300;
}

double HddmA::Bound(double n, double confidence) const {
  if (n <= 0.0) return 1e300;
  return std::sqrt(1.0 / (2.0 * n) * std::log(1.0 / confidence));
}

void HddmA::AddError(bool error) {
  if (state_ == DetectorState::kDrift) Reset();

  n_ += 1.0;
  sum_ += error ? 1.0 : 0.0;
  double mean = sum_ / n_;
  double upper = mean + Bound(n_, params_.drift_confidence);
  if (upper < best_bound_) {
    best_bound_ = upper;
    n_min_ = n_;
    sum_min_ = sum_;
  }

  if (n_ < params_.min_instances || n_min_ <= 0.0 || n_ <= n_min_) {
    state_ = DetectorState::kStable;
    return;
  }
  double n_suffix = n_ - n_min_;
  double mean_prefix = sum_min_ / n_min_;
  double mean_suffix = (sum_ - sum_min_) / n_suffix;
  double m = 1.0 / (1.0 / n_min_ + 1.0 / n_suffix);
  double diff = mean_suffix - mean_prefix;
  if (diff > Bound(m, params_.drift_confidence)) {
    state_ = DetectorState::kDrift;
  } else if (diff > Bound(m, params_.warning_confidence)) {
    state_ = DetectorState::kWarning;
  } else {
    state_ = DetectorState::kStable;
  }
}

void HddmA::SaveState(io::Writer& w) const {
  w.BeginSection("HDDM-A");
  w.F64(params_.drift_confidence);
  w.F64(params_.warning_confidence);
  w.I64(params_.min_instances);
  io::WriteDetectorState(w, state_);
  w.F64(n_);
  w.F64(sum_);
  w.F64(n_min_);
  w.F64(sum_min_);
  w.F64(best_bound_);
  w.EndSection();
}

void HddmA::LoadState(io::Reader& r) {
  r.BeginSection("HDDM-A");
  params_.drift_confidence = r.F64("hddm.drift_confidence");
  params_.warning_confidence = r.F64("hddm.warning_confidence");
  params_.min_instances = static_cast<int>(r.I64("hddm.min_instances"));
  state_ = io::ReadDetectorState(r, "hddm.state");
  n_ = r.F64("hddm.n");
  sum_ = r.F64("hddm.sum");
  n_min_ = r.F64("hddm.n_min");
  sum_min_ = r.F64("hddm.sum_min");
  best_bound_ = r.F64("hddm.best_bound");
  r.EndSection("HDDM-A");
}

}  // namespace ccd
