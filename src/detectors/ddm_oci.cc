#include "detectors/ddm_oci.h"

#include <cmath>

#include "io/codecs.h"

namespace ccd {

void DdmOci::Reset() {
  state_ = DetectorState::kStable;
  size_t k = static_cast<size_t>(params_.num_classes);
  recall_.assign(k, 1.0);
  recall_max_.assign(k, 0.0);
  sigma_max_.assign(k, 0.0);
  count_.assign(k, 0);
  violations_.assign(k, 0);
  drifted_.clear();
}

void DdmOci::Observe(const Instance& instance, int predicted,
                     const std::vector<double>& /*scores*/) {
  if (state_ == DetectorState::kDrift) {
    // Re-arm only the tripped classes; the others keep their statistics
    // (the drift was local to the flagged classes).
    for (int k : drifted_) {
      recall_[static_cast<size_t>(k)] = 1.0;
      recall_max_[static_cast<size_t>(k)] = 0.0;
      sigma_max_[static_cast<size_t>(k)] = 0.0;
      count_[static_cast<size_t>(k)] = 0;
      violations_[static_cast<size_t>(k)] = 0;
    }
    drifted_.clear();
    state_ = DetectorState::kStable;
  }

  int y = instance.label;
  if (y < 0 || y >= params_.num_classes) return;
  size_t yk = static_cast<size_t>(y);
  double correct = predicted == y ? 1.0 : 0.0;
  recall_[yk] = params_.decay * recall_[yk] + (1.0 - params_.decay) * correct;
  ++count_[yk];
  if (count_[yk] < params_.min_class_count) return;

  double n = static_cast<double>(count_[yk]);
  double sigma = std::sqrt(recall_[yk] * (1.0 - recall_[yk]) / n);
  recall_max_[yk] *= params_.max_decay;
  if (recall_[yk] >= recall_max_[yk]) {
    recall_max_[yk] = recall_[yk];
    sigma_max_[yk] = sigma;
  }
  double baseline = recall_max_[yk] - sigma_max_[yk];
  if (baseline <= 0.0) return;

  if (recall_[yk] + sigma < params_.drift_threshold * baseline) {
    if (++violations_[yk] >= params_.consecutive_violations) {
      state_ = DetectorState::kDrift;
      drifted_.push_back(y);
      violations_[yk] = 0;
    }
  } else {
    violations_[yk] = 0;
    if (recall_[yk] + sigma < params_.warning_threshold * baseline &&
        state_ == DetectorState::kStable) {
      state_ = DetectorState::kWarning;
    }
  }
}

void DdmOci::SaveState(io::Writer& w) const {
  w.BeginSection("DDM-OCI");
  w.I64(params_.num_classes);
  w.F64(params_.warning_threshold);
  w.F64(params_.drift_threshold);
  w.F64(params_.decay);
  w.I64(params_.min_class_count);
  w.I64(params_.consecutive_violations);
  w.F64(params_.max_decay);
  io::WriteDetectorState(w, state_);
  w.F64Array(recall_);
  w.F64Array(recall_max_);
  w.F64Array(sigma_max_);
  io::WriteI64Vector(w, count_);
  io::WriteIntVector(w, violations_);
  io::WriteIntVector(w, drifted_);
  w.EndSection();
}

void DdmOci::LoadState(io::Reader& r) {
  r.BeginSection("DDM-OCI");
  params_.num_classes = static_cast<int>(r.I64("ddm_oci.num_classes"));
  params_.warning_threshold = r.F64("ddm_oci.warning_threshold");
  params_.drift_threshold = r.F64("ddm_oci.drift_threshold");
  params_.decay = r.F64("ddm_oci.decay");
  params_.min_class_count = static_cast<int>(r.I64("ddm_oci.min_class_count"));
  params_.consecutive_violations =
      static_cast<int>(r.I64("ddm_oci.consecutive_violations"));
  params_.max_decay = r.F64("ddm_oci.max_decay");
  state_ = io::ReadDetectorState(r, "ddm_oci.state");
  recall_ = r.F64Array("ddm_oci.recall");
  recall_max_ = r.F64Array("ddm_oci.recall_max");
  sigma_max_ = r.F64Array("ddm_oci.sigma_max");
  count_ = io::ReadI64Vector(r, "ddm_oci.count");
  violations_ = io::ReadIntVector(r, "ddm_oci.violations");
  drifted_ = io::ReadIntVector(r, "ddm_oci.drifted");
  size_t k = static_cast<size_t>(params_.num_classes);
  if (recall_.size() != k || recall_max_.size() != k ||
      sigma_max_.size() != k || count_.size() != k ||
      violations_.size() != k) {
    r.Fail("ddm_oci.recall",
           "per-class vectors do not match num_classes " + std::to_string(k));
  }
  r.EndSection("DDM-OCI");
}

}  // namespace ccd
