#include "detectors/ddm_oci.h"

#include <cmath>

namespace ccd {

void DdmOci::Reset() {
  state_ = DetectorState::kStable;
  size_t k = static_cast<size_t>(params_.num_classes);
  recall_.assign(k, 1.0);
  recall_max_.assign(k, 0.0);
  sigma_max_.assign(k, 0.0);
  count_.assign(k, 0);
  violations_.assign(k, 0);
  drifted_.clear();
}

void DdmOci::Observe(const Instance& instance, int predicted,
                     const std::vector<double>& /*scores*/) {
  if (state_ == DetectorState::kDrift) {
    // Re-arm only the tripped classes; the others keep their statistics
    // (the drift was local to the flagged classes).
    for (int k : drifted_) {
      recall_[static_cast<size_t>(k)] = 1.0;
      recall_max_[static_cast<size_t>(k)] = 0.0;
      sigma_max_[static_cast<size_t>(k)] = 0.0;
      count_[static_cast<size_t>(k)] = 0;
      violations_[static_cast<size_t>(k)] = 0;
    }
    drifted_.clear();
    state_ = DetectorState::kStable;
  }

  int y = instance.label;
  if (y < 0 || y >= params_.num_classes) return;
  size_t yk = static_cast<size_t>(y);
  double correct = predicted == y ? 1.0 : 0.0;
  recall_[yk] = params_.decay * recall_[yk] + (1.0 - params_.decay) * correct;
  ++count_[yk];
  if (count_[yk] < params_.min_class_count) return;

  double n = static_cast<double>(count_[yk]);
  double sigma = std::sqrt(recall_[yk] * (1.0 - recall_[yk]) / n);
  recall_max_[yk] *= params_.max_decay;
  if (recall_[yk] >= recall_max_[yk]) {
    recall_max_[yk] = recall_[yk];
    sigma_max_[yk] = sigma;
  }
  double baseline = recall_max_[yk] - sigma_max_[yk];
  if (baseline <= 0.0) return;

  if (recall_[yk] + sigma < params_.drift_threshold * baseline) {
    if (++violations_[yk] >= params_.consecutive_violations) {
      state_ = DetectorState::kDrift;
      drifted_.push_back(y);
      violations_[yk] = 0;
    }
  } else {
    violations_[yk] = 0;
    if (recall_[yk] + sigma < params_.warning_threshold * baseline &&
        state_ == DetectorState::kStable) {
      state_ = DetectorState::kWarning;
    }
  }
}

}  // namespace ccd
