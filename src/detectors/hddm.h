#ifndef CCD_DETECTORS_HDDM_H_
#define CCD_DETECTORS_HDDM_H_

#include "detectors/detector.h"

namespace ccd {

/// HDDM-A (Frias-Blanco et al., TKDE 2015): drift detection via Hoeffding's
/// inequality on moving averages, A-test variant.
///
/// Tracks the overall error mean and the prefix that minimizes the upper
/// confidence bound on the mean (the "best" historical regime). Drift fires
/// when the suffix mean after that prefix exceeds the prefix mean by more
/// than the Hoeffding deviation at confidence `drift_confidence`.
class HddmA : public ErrorRateDetector {
 public:
  struct Params {
    double drift_confidence = 0.001;
    double warning_confidence = 0.005;
    int min_instances = 30;
  };

  HddmA() : HddmA(Params()) {}
  explicit HddmA(const Params& params) : params_(params) { Reset(); }

  void AddError(bool error) override;
  DetectorState state() const override { return state_; }
  void Reset() override;
  std::string name() const override { return "HDDM-A"; }
  std::unique_ptr<DriftDetector> CloneState() const override {
    return std::make_unique<HddmA>(*this);
  }
  void SaveState(io::Writer& writer) const override;
  void LoadState(io::Reader& reader) override;

 private:
  double Bound(double n, double confidence) const;

  Params params_;
  DetectorState state_ = DetectorState::kStable;
  double n_ = 0.0;
  double sum_ = 0.0;
  double n_min_ = 0.0;
  double sum_min_ = 0.0;
  double best_bound_ = 1e300;
};

}  // namespace ccd

#endif  // CCD_DETECTORS_HDDM_H_
