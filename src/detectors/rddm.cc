#include "detectors/rddm.h"

#include <cmath>

namespace ccd {

void Rddm::Reset() {
  state_ = DetectorState::kStable;
  SoftReset();
  recent_.assign(static_cast<size_t>(params_.min_instances), false);
  recent_pos_ = 0;
  recent_full_ = false;
}

void Rddm::SoftReset() {
  n_ = 0;
  errors_ = 0;
  p_ = 0.0;
  p_min_ = 1e300;
  s_min_ = 1e300;
  warn_count_ = 0;
}

void Rddm::Push(bool error) {
  recent_[recent_pos_] = error;
  recent_pos_ = (recent_pos_ + 1) % recent_.size();
  if (recent_pos_ == 0) recent_full_ = true;
}

void Rddm::AddError(bool error) {
  if (state_ == DetectorState::kDrift) {
    // Rebuild the statistics from the stored recent window so the detector
    // restarts already warmed up on the new concept.
    SoftReset();
    size_t count = recent_full_ ? recent_.size() : recent_pos_;
    size_t start = recent_full_ ? recent_pos_ : 0;
    long long replay_n = 0;
    double replay_p = 0.0;
    for (size_t i = 0; i < count; ++i) {
      bool e = recent_[(start + i) % recent_.size()];
      ++replay_n;
      replay_p += (static_cast<double>(e) - replay_p) / replay_n;
    }
    n_ = replay_n;
    p_ = replay_p;
    state_ = DetectorState::kStable;
  }

  Push(error);
  ++n_;
  if (error) ++errors_;
  p_ += (static_cast<double>(error) - p_) / static_cast<double>(n_);

  // Stale-history pruning: restart statistics from the recent window.
  if (n_ > params_.max_instances) {
    double keep_p_min = p_min_, keep_s_min = s_min_;
    SoftReset();
    size_t count = recent_full_ ? recent_.size() : recent_pos_;
    size_t start = recent_full_ ? recent_pos_ : 0;
    for (size_t i = 0; i < count; ++i) {
      bool e = recent_[(start + i) % recent_.size()];
      ++n_;
      p_ += (static_cast<double>(e) - p_) / static_cast<double>(n_);
    }
    p_min_ = keep_p_min;
    s_min_ = keep_s_min;
  }

  if (errors_ < params_.min_errors) {
    state_ = DetectorState::kStable;
    return;
  }
  double s = std::sqrt(p_ * (1.0 - p_) / static_cast<double>(n_));
  if (p_ + s <= p_min_ + s_min_) {
    p_min_ = p_;
    s_min_ = s;
  }
  if (p_ + s > p_min_ + params_.drift_level * s_min_) {
    state_ = DetectorState::kDrift;
    return;
  }
  if (p_ + s > p_min_ + params_.warning_level * s_min_) {
    state_ = DetectorState::kWarning;
    if (++warn_count_ > params_.warn_limit) {
      state_ = DetectorState::kDrift;
      warn_count_ = 0;
    }
  } else {
    state_ = DetectorState::kStable;
    warn_count_ = 0;
  }
}

}  // namespace ccd
