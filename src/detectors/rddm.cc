#include "detectors/rddm.h"

#include <cmath>

#include "io/codecs.h"

namespace ccd {

void Rddm::Reset() {
  state_ = DetectorState::kStable;
  SoftReset();
  recent_.assign(static_cast<size_t>(params_.min_instances), false);
  recent_pos_ = 0;
  recent_full_ = false;
}

void Rddm::SoftReset() {
  n_ = 0;
  errors_ = 0;
  p_ = 0.0;
  p_min_ = 1e300;
  s_min_ = 1e300;
  warn_count_ = 0;
}

void Rddm::Push(bool error) {
  recent_[recent_pos_] = error;
  recent_pos_ = (recent_pos_ + 1) % recent_.size();
  if (recent_pos_ == 0) recent_full_ = true;
}

void Rddm::AddError(bool error) {
  if (state_ == DetectorState::kDrift) {
    // Rebuild the statistics from the stored recent window so the detector
    // restarts already warmed up on the new concept.
    SoftReset();
    size_t count = recent_full_ ? recent_.size() : recent_pos_;
    size_t start = recent_full_ ? recent_pos_ : 0;
    long long replay_n = 0;
    double replay_p = 0.0;
    for (size_t i = 0; i < count; ++i) {
      bool e = recent_[(start + i) % recent_.size()];
      ++replay_n;
      replay_p += (static_cast<double>(e) - replay_p) / replay_n;
    }
    n_ = replay_n;
    p_ = replay_p;
    state_ = DetectorState::kStable;
  }

  Push(error);
  ++n_;
  if (error) ++errors_;
  p_ += (static_cast<double>(error) - p_) / static_cast<double>(n_);

  // Stale-history pruning: restart statistics from the recent window.
  if (n_ > params_.max_instances) {
    double keep_p_min = p_min_, keep_s_min = s_min_;
    SoftReset();
    size_t count = recent_full_ ? recent_.size() : recent_pos_;
    size_t start = recent_full_ ? recent_pos_ : 0;
    for (size_t i = 0; i < count; ++i) {
      bool e = recent_[(start + i) % recent_.size()];
      ++n_;
      p_ += (static_cast<double>(e) - p_) / static_cast<double>(n_);
    }
    p_min_ = keep_p_min;
    s_min_ = keep_s_min;
  }

  if (errors_ < params_.min_errors) {
    state_ = DetectorState::kStable;
    return;
  }
  double s = std::sqrt(p_ * (1.0 - p_) / static_cast<double>(n_));
  if (p_ + s <= p_min_ + s_min_) {
    p_min_ = p_;
    s_min_ = s;
  }
  if (p_ + s > p_min_ + params_.drift_level * s_min_) {
    state_ = DetectorState::kDrift;
    return;
  }
  if (p_ + s > p_min_ + params_.warning_level * s_min_) {
    state_ = DetectorState::kWarning;
    if (++warn_count_ > params_.warn_limit) {
      state_ = DetectorState::kDrift;
      warn_count_ = 0;
    }
  } else {
    state_ = DetectorState::kStable;
    warn_count_ = 0;
  }
}

void Rddm::SaveState(io::Writer& w) const {
  w.BeginSection("RDDM");
  w.F64(params_.warning_level);
  w.F64(params_.drift_level);
  w.I64(params_.min_errors);
  w.I64(params_.min_instances);
  w.I64(params_.max_instances);
  w.I64(params_.warn_limit);
  io::WriteDetectorState(w, state_);
  w.I64(n_);
  w.I64(errors_);
  w.F64(p_);
  w.F64(p_min_);
  w.F64(s_min_);
  w.I64(warn_count_);
  io::WriteBoolVector(w, recent_);
  w.U64(recent_pos_);
  w.Bool(recent_full_);
  w.EndSection();
}

void Rddm::LoadState(io::Reader& r) {
  r.BeginSection("RDDM");
  params_.warning_level = r.F64("rddm.warning_level");
  params_.drift_level = r.F64("rddm.drift_level");
  params_.min_errors = static_cast<int>(r.I64("rddm.min_errors"));
  params_.min_instances = static_cast<int>(r.I64("rddm.min_instances"));
  params_.max_instances = static_cast<int>(r.I64("rddm.max_instances"));
  params_.warn_limit = static_cast<int>(r.I64("rddm.warn_limit"));
  state_ = io::ReadDetectorState(r, "rddm.state");
  n_ = r.I64("rddm.n");
  errors_ = r.I64("rddm.errors");
  p_ = r.F64("rddm.p");
  p_min_ = r.F64("rddm.p_min");
  s_min_ = r.F64("rddm.s_min");
  warn_count_ = static_cast<int>(r.I64("rddm.warn_count"));
  recent_ = io::ReadBoolVector(r, "rddm.recent");
  uint64_t pos = r.U64("rddm.recent_pos");
  if (recent_.empty() || pos >= recent_.size()) {
    r.Fail("rddm.recent_pos",
           "cursor " + std::to_string(pos) + " outside circular buffer of " +
               std::to_string(recent_.size()));
  }
  recent_pos_ = static_cast<size_t>(pos);
  recent_full_ = r.Bool("rddm.recent_full");
  r.EndSection("RDDM");
}

}  // namespace ccd
