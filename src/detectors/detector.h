#ifndef CCD_DETECTORS_DETECTOR_H_
#define CCD_DETECTORS_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "stream/instance.h"

namespace ccd {
namespace io {
class Writer;
class Reader;
}  // namespace io

/// Detector status after the most recent observation.
enum class DetectorState {
  kStable,
  kWarning,
  kDrift,
};

const char* DetectorStateName(DetectorState s);

/// Common interface of all concept drift detectors.
///
/// Detectors are driven prequentially by MonitorEngine (eval/engine.h),
/// whether the labels arrive with their instances (offline RunPrequential)
/// or late through the push API (api::Monitor): for every *labelled*
/// instance the engine calls Observe() with the true instance, the label
/// the classifier predicted at prediction time and its per-class scores,
/// always *before* the classifier trains on the instance. Statistical
/// detectors only use the implied error indicator; detectors designed for
/// imbalanced streams (PerfSim, DDM-OCI, RBM-IM) use the label structure;
/// the trainable RBM-IM uses the full feature vector.
class DriftDetector {
 public:
  virtual ~DriftDetector() = default;

  virtual void Observe(const Instance& instance, int predicted,
                       const std::vector<double>& scores) = 0;

  /// State resulting from the latest Observe() call. A drift signal is
  /// sticky for exactly one observation; detectors re-arm themselves.
  /// Consume-on-read (latching) implementations are legal: the engine
  /// reads state() exactly once per Observe(), including on warmup data,
  /// and never replays a signal.
  virtual DetectorState state() const = 0;

  /// Clears all adaptive statistics (new concept assumed).
  virtual void Reset() = 0;

  /// Deep copy *including all adaptive statistics*: the copy's future
  /// Observe()/state() behavior is bit-identical to this detector's. This
  /// is the detector half of the intra-stream shard handoff
  /// (eval/sharded.h). The default implementation throws std::logic_error;
  /// every detector registered with the api layer implements it (the
  /// snapshot/restore property test loops over the registry to keep that
  /// true). Value-semantic detectors implement it as a one-line copy.
  virtual std::unique_ptr<DriftDetector> CloneState() const;

  /// Serializes *all* adaptive statistics (parameters, windows, counters,
  /// RNG cursors) to the versioned wire format — the durable sibling of
  /// CloneState(): LoadState() on a freshly registry-constructed instance
  /// of the same type must make its future Observe()/state() behavior
  /// bit-identical to this detector's, across processes and machines. The
  /// defaults throw std::logic_error naming the component; every
  /// registered detector implements both (the io round-trip property test
  /// loops over the registry to keep that true).
  virtual void SaveState(io::Writer& writer) const;
  virtual void LoadState(io::Reader& reader);

  virtual std::string name() const = 0;

  /// Classes implicated in the latest drift signal; empty for detectors
  /// that only monitor the global stream (the paper's key distinction —
  /// only per-class monitors can explain *local* drift). The engine reads
  /// this immediately after a kDrift state() and publishes it in
  /// PrequentialResult::drift_events and the OnDrift callback, so it must
  /// stay valid (and const) right after the signal.
  virtual std::vector<int> drifted_classes() const { return {}; }
};

/// Convenience base for detectors that monitor the binary error indicator
/// of the classifier. Subclasses implement AddError(); Observe() derives
/// the indicator. AddError is public so unit tests can drive detectors with
/// synthetic Bernoulli error streams directly.
class ErrorRateDetector : public DriftDetector {
 public:
  void Observe(const Instance& instance, int predicted,
               const std::vector<double>& /*scores*/) override {
    AddError(predicted != instance.label);
  }

  /// Feeds one error indicator (true = misclassified).
  virtual void AddError(bool error) = 0;
};

}  // namespace ccd

#endif  // CCD_DETECTORS_DETECTOR_H_
