#ifndef CCD_DETECTORS_FHDDM_H_
#define CCD_DETECTORS_FHDDM_H_

#include <deque>

#include "detectors/detector.h"

namespace ccd {

/// Fast Hoeffding Drift Detection Method (Pesaranghader & Viktor,
/// ECML-PKDD 2016).
///
/// Slides a window of the last `window_size` correct-prediction bits,
/// remembers the maximum in-window accuracy p_max seen on the current
/// concept, and signals drift when accuracy falls below p_max by more than
/// the Hoeffding deviation eps = sqrt(ln(1/delta) / (2*window_size)).
class Fhddm : public ErrorRateDetector {
 public:
  struct Params {
    int window_size = 100;
    double delta = 1e-6;
  };

  Fhddm() : Fhddm(Params()) {}
  explicit Fhddm(const Params& params) : params_(params) { Reset(); }

  void AddError(bool error) override;
  DetectorState state() const override { return state_; }
  void Reset() override;
  std::string name() const override { return "FHDDM"; }
  std::unique_ptr<DriftDetector> CloneState() const override {
    return std::make_unique<Fhddm>(*this);
  }
  void SaveState(io::Writer& writer) const override;
  void LoadState(io::Reader& reader) override;

 private:
  Params params_;
  DetectorState state_ = DetectorState::kStable;
  std::deque<bool> window_;  ///< true = correct prediction.
  int correct_ = 0;
  double p_max_ = 0.0;
  double epsilon_ = 0.0;
};

}  // namespace ccd

#endif  // CCD_DETECTORS_FHDDM_H_
