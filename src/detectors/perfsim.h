#ifndef CCD_DETECTORS_PERFSIM_H_
#define CCD_DETECTORS_PERFSIM_H_

#include <vector>

#include "detectors/detector.h"

namespace ccd {

/// PerfSim (Antwi, Viktor & Japkowicz, ICDM-W 2012): drift detection for
/// imbalanced streams by monitoring the *entire confusion matrix*.
///
/// Accumulates a confusion matrix over consecutive chunks and compares each
/// new chunk's matrix to the reference (last stable) matrix with a cosine
/// similarity over all K² cells. A similarity drop below
/// 1 - differentiation_weight signals drift, after which the current chunk
/// becomes the new reference. Because every cell participates, minority
/// misclassification shifts register even when accuracy barely moves.
class PerfSim : public DriftDetector {
 public:
  struct Params {
    int num_classes = 2;
    int chunk_size = 500;
    double differentiation_weight = 0.2;  ///< λ in the paper's grid.
    int min_errors = 30;  ///< Chunk must carry at least this much signal.
  };

  explicit PerfSim(const Params& params) : params_(params) { Reset(); }

  void Observe(const Instance& instance, int predicted,
               const std::vector<double>& scores) override;
  DetectorState state() const override { return state_; }
  void Reset() override;
  std::string name() const override { return "PerfSim"; }
  std::vector<int> drifted_classes() const override { return drifted_; }
  std::unique_ptr<DriftDetector> CloneState() const override {
    return std::make_unique<PerfSim>(*this);
  }
  void SaveState(io::Writer& writer) const override;
  void LoadState(io::Reader& reader) override;

 private:
  static double CosineSimilarity(const std::vector<double>& a,
                                 const std::vector<double>& b);

  Params params_;
  DetectorState state_ = DetectorState::kStable;
  std::vector<double> reference_;  ///< K*K reference confusion cells.
  std::vector<double> current_;
  int in_chunk_ = 0;
  int chunk_errors_ = 0;
  bool has_reference_ = false;
  std::vector<int> drifted_;
};

}  // namespace ccd

#endif  // CCD_DETECTORS_PERFSIM_H_
