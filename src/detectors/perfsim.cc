#include "detectors/perfsim.h"

#include <cmath>

#include "io/codecs.h"

namespace ccd {

void PerfSim::Reset() {
  state_ = DetectorState::kStable;
  size_t cells = static_cast<size_t>(params_.num_classes) *
                 static_cast<size_t>(params_.num_classes);
  reference_.assign(cells, 0.0);
  current_.assign(cells, 0.0);
  in_chunk_ = 0;
  chunk_errors_ = 0;
  has_reference_ = false;
  drifted_.clear();
}

double PerfSim::CosineSimilarity(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 1.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

void PerfSim::Observe(const Instance& instance, int predicted,
                      const std::vector<double>& /*scores*/) {
  if (state_ == DetectorState::kDrift) {
    state_ = DetectorState::kStable;
    drifted_.clear();
  }
  int y = instance.label;
  if (y < 0 || y >= params_.num_classes || predicted < 0 ||
      predicted >= params_.num_classes) {
    return;
  }
  current_[static_cast<size_t>(y) * params_.num_classes +
           static_cast<size_t>(predicted)] += 1.0;
  if (predicted != y) ++chunk_errors_;
  if (++in_chunk_ < params_.chunk_size) return;

  if (!has_reference_) {
    reference_ = current_;
    has_reference_ = true;
  } else if (chunk_errors_ >= params_.min_errors ||
             params_.min_errors == 0) {
    double sim = CosineSimilarity(reference_, current_);
    if (sim < 1.0 - params_.differentiation_weight) {
      state_ = DetectorState::kDrift;
      // Localize: classes whose row changed the most (relative L1 shift).
      drifted_.clear();
      for (int k = 0; k < params_.num_classes; ++k) {
        double shift = 0.0, mass = 0.0;
        for (int j = 0; j < params_.num_classes; ++j) {
          size_t idx = static_cast<size_t>(k) * params_.num_classes + j;
          shift += std::fabs(current_[idx] - reference_[idx]);
          mass += reference_[idx] + current_[idx];
        }
        if (mass > 0.0 && shift / mass > params_.differentiation_weight) {
          drifted_.push_back(k);
        }
      }
      reference_ = current_;
    } else {
      // Slowly blend the stable chunk into the reference so the detector
      // follows benign evolution without firing.
      for (size_t i = 0; i < reference_.size(); ++i) {
        reference_[i] = 0.8 * reference_[i] + 0.2 * current_[i];
      }
    }
  }
  current_.assign(current_.size(), 0.0);
  in_chunk_ = 0;
  chunk_errors_ = 0;
}

void PerfSim::SaveState(io::Writer& w) const {
  w.BeginSection("PerfSim");
  w.I64(params_.num_classes);
  w.I64(params_.chunk_size);
  w.F64(params_.differentiation_weight);
  w.I64(params_.min_errors);
  io::WriteDetectorState(w, state_);
  w.F64Array(reference_);
  w.F64Array(current_);
  w.I64(in_chunk_);
  w.I64(chunk_errors_);
  w.Bool(has_reference_);
  io::WriteIntVector(w, drifted_);
  w.EndSection();
}

void PerfSim::LoadState(io::Reader& r) {
  r.BeginSection("PerfSim");
  params_.num_classes = static_cast<int>(r.I64("perfsim.num_classes"));
  params_.chunk_size = static_cast<int>(r.I64("perfsim.chunk_size"));
  params_.differentiation_weight = r.F64("perfsim.differentiation_weight");
  params_.min_errors = static_cast<int>(r.I64("perfsim.min_errors"));
  state_ = io::ReadDetectorState(r, "perfsim.state");
  reference_ = r.F64Array("perfsim.reference");
  current_ = r.F64Array("perfsim.current");
  size_t cells = static_cast<size_t>(params_.num_classes) *
                 static_cast<size_t>(params_.num_classes);
  if (reference_.size() != cells || current_.size() != cells) {
    r.Fail("perfsim.reference",
           "confusion matrix has " + std::to_string(reference_.size()) +
               " cells, expected " + std::to_string(cells));
  }
  in_chunk_ = static_cast<int>(r.I64("perfsim.in_chunk"));
  chunk_errors_ = static_cast<int>(r.I64("perfsim.chunk_errors"));
  has_reference_ = r.Bool("perfsim.has_reference");
  drifted_ = io::ReadIntVector(r, "perfsim.drifted");
  r.EndSection("PerfSim");
}

}  // namespace ccd
