#ifndef CCD_DETECTORS_ECDD_H_
#define CCD_DETECTORS_ECDD_H_

#include "detectors/detector.h"

namespace ccd {

/// ECDD (Ross et al., 2012): an EWMA control chart for the Bernoulli error
/// stream. Tracks the exponentially weighted error estimate Z_t and its
/// analytic standard deviation under the estimated stationary rate p̂_t;
/// fires when Z_t exceeds p̂_t + L·σ_Z. Another classic lightweight
/// baseline beyond the paper's set.
class Ecdd : public ErrorRateDetector {
 public:
  struct Params {
    double lambda = 0.05;  ///< EWMA smoothing of the monitored estimate.
    double drift_l = 4.0;  ///< Control limit in sigmas.
    double warning_l = 2.5;
    int min_instances = 30;
  };

  Ecdd() : Ecdd(Params()) {}
  explicit Ecdd(const Params& params) : params_(params) { Reset(); }

  void AddError(bool error) override;
  DetectorState state() const override { return state_; }
  void Reset() override;
  std::string name() const override { return "ECDD"; }
  std::unique_ptr<DriftDetector> CloneState() const override {
    return std::make_unique<Ecdd>(*this);
  }
  void SaveState(io::Writer& writer) const override;
  void LoadState(io::Reader& reader) override;

 private:
  Params params_;
  DetectorState state_ = DetectorState::kStable;
  long long n_ = 0;
  double p_hat_ = 0.0;  ///< Running estimate of the stationary error rate.
  double z_ = 0.0;      ///< EWMA of the error indicator.
};

}  // namespace ccd

#endif  // CCD_DETECTORS_ECDD_H_
