#ifndef CCD_DETECTORS_EDDM_H_
#define CCD_DETECTORS_EDDM_H_

#include "detectors/detector.h"

namespace ccd {

/// Early Drift Detection Method (Baena-Garcia et al., 2006).
///
/// Instead of the raw error rate, EDDM monitors the *distance* (number of
/// instances) between consecutive errors: a stable concept keeps the mean
/// distance p' growing; a (slow, gradual) drift shrinks it. The statistic
/// (p' + 2s') is compared against its historical maximum: warning below
/// `alpha`, drift below `beta` of the maximum.
class Eddm : public ErrorRateDetector {
 public:
  struct Params {
    double alpha = 0.95;  ///< Warning ratio.
    double beta = 0.90;   ///< Drift ratio.
    int min_errors = 30;  ///< Errors required before testing.
  };

  Eddm() : Eddm(Params()) {}
  explicit Eddm(const Params& params) : params_(params) { Reset(); }

  void AddError(bool error) override;
  DetectorState state() const override { return state_; }
  void Reset() override;
  std::string name() const override { return "EDDM"; }
  std::unique_ptr<DriftDetector> CloneState() const override {
    return std::make_unique<Eddm>(*this);
  }
  void SaveState(io::Writer& writer) const override;
  void LoadState(io::Reader& reader) override;

 private:
  Params params_;
  DetectorState state_ = DetectorState::kStable;
  long long instances_ = 0;
  long long last_error_at_ = 0;
  long long num_errors_ = 0;
  double dist_mean_ = 0.0;
  double dist_m2_ = 0.0;
  double max_stat_ = -1e300;
};

}  // namespace ccd

#endif  // CCD_DETECTORS_EDDM_H_
