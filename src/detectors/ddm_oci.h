#ifndef CCD_DETECTORS_DDM_OCI_H_
#define CCD_DETECTORS_DDM_OCI_H_

#include <vector>

#include "detectors/detector.h"

namespace ccd {

/// DDM-OCI — Drift Detection Method for Online Class Imbalance (Wang et
/// al.), the recall-monitoring detector the paper uses as its strongest
/// skew-insensitive baseline.
///
/// Maintains a time-decayed recall estimate per class. For each class the
/// historical maximum recall (with its binomial deviation) is remembered;
/// a class whose current recall falls below `drift_threshold` x maximum
/// (minus deviation) triggers a drift, below `warning_threshold` x maximum
/// a warning. Because every class is tracked separately, minority-class
/// degradation is not masked by majority accuracy — but only *performance*
/// is observed, not the data distribution itself (the weakness RBM-IM
/// addresses).
class DdmOci : public DriftDetector {
 public:
  struct Params {
    int num_classes = 2;
    double warning_threshold = 0.95;
    double drift_threshold = 0.90;
    double decay = 0.995;   ///< Time-decay factor of the recall estimate.
    int min_class_count = 30;  ///< Observations of a class before testing.
    /// A class must violate the drift condition this many times in a row
    /// before firing (debounces the noisy decayed-recall estimate).
    int consecutive_violations = 2;
    /// Slow decay of the remembered maximum recall, so an early lucky
    /// streak cannot pin the baseline unreachably high forever.
    double max_decay = 0.99995;
  };

  explicit DdmOci(const Params& params) : params_(params) { Reset(); }

  void Observe(const Instance& instance, int predicted,
               const std::vector<double>& scores) override;
  DetectorState state() const override { return state_; }
  void Reset() override;
  std::string name() const override { return "DDM-OCI"; }
  std::vector<int> drifted_classes() const override { return drifted_; }
  std::unique_ptr<DriftDetector> CloneState() const override {
    return std::make_unique<DdmOci>(*this);
  }
  void SaveState(io::Writer& writer) const override;
  void LoadState(io::Reader& reader) override;

  /// Current decayed recall of class k (exposed for tests/diagnostics).
  double recall(int k) const { return recall_[static_cast<size_t>(k)]; }

 private:
  Params params_;
  DetectorState state_ = DetectorState::kStable;
  std::vector<double> recall_;
  std::vector<double> recall_max_;
  std::vector<double> sigma_max_;
  std::vector<long long> count_;
  std::vector<int> violations_;
  std::vector<int> drifted_;
};

}  // namespace ccd

#endif  // CCD_DETECTORS_DDM_OCI_H_
