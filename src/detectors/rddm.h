#ifndef CCD_DETECTORS_RDDM_H_
#define CCD_DETECTORS_RDDM_H_

#include <vector>

#include "detectors/detector.h"

namespace ccd {

/// Reactive Drift Detection Method (de Barros et al., ESWA 2017).
///
/// A DDM derivative that fixes DDM's desensitization on long stable runs:
/// it keeps a bounded buffer of recent predictions, periodically rebuilds
/// the DDM statistics from only that recent window (discarding stale
/// history), and force-fires a drift when a warning persists for more than
/// `warn_limit` instances.
class Rddm : public ErrorRateDetector {
 public:
  struct Params {
    double warning_level = 1.773;
    double drift_level = 2.258;
    int min_errors = 30;        ///< Errors required before testing.
    int min_instances = 3000;   ///< Size of the rebuilt window.
    int max_instances = 30000;  ///< Rebuild when the run exceeds this.
    int warn_limit = 1200;      ///< Persisting warning forces a drift.
  };

  Rddm() : Rddm(Params()) {}
  explicit Rddm(const Params& params) : params_(params) { Reset(); }

  void AddError(bool error) override;
  DetectorState state() const override { return state_; }
  void Reset() override;
  std::string name() const override { return "RDDM"; }
  std::unique_ptr<DriftDetector> CloneState() const override {
    return std::make_unique<Rddm>(*this);
  }
  void SaveState(io::Writer& writer) const override;
  void LoadState(io::Reader& reader) override;

 private:
  void SoftReset();
  void Push(bool error);

  Params params_;
  DetectorState state_ = DetectorState::kStable;
  long long n_ = 0;
  long long errors_ = 0;
  double p_ = 0.0;
  double p_min_ = 1e300;
  double s_min_ = 1e300;
  int warn_count_ = 0;
  std::vector<bool> recent_;  ///< Circular buffer of recent error bits.
  size_t recent_pos_ = 0;
  bool recent_full_ = false;
};

}  // namespace ccd

#endif  // CCD_DETECTORS_RDDM_H_
