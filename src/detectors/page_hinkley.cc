#include "detectors/page_hinkley.h"

#include <algorithm>

namespace ccd {

void PageHinkley::Reset() {
  state_ = DetectorState::kStable;
  n_ = 0;
  mean_ = 0.0;
  cumulative_ = 0.0;
  min_cumulative_ = 0.0;
}

void PageHinkley::AddError(bool error) {
  if (state_ == DetectorState::kDrift) Reset();

  double x = error ? 1.0 : 0.0;
  ++n_;
  // Fading mean keeps the reference adaptive on very long streams.
  mean_ = mean_ + (x - mean_) / std::min<double>(
                                   static_cast<double>(n_),
                                   1.0 / (1.0 - params_.alpha));
  cumulative_ += x - mean_ - params_.delta;
  min_cumulative_ = std::min(min_cumulative_, cumulative_);

  if (n_ < params_.min_instances) return;
  double ph = cumulative_ - min_cumulative_;
  if (ph > params_.lambda) {
    state_ = DetectorState::kDrift;
  } else if (ph > 0.8 * params_.lambda) {
    state_ = DetectorState::kWarning;
  } else {
    state_ = DetectorState::kStable;
  }
}

}  // namespace ccd
