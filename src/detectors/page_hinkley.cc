#include "detectors/page_hinkley.h"

#include <algorithm>

#include "io/codecs.h"

namespace ccd {

void PageHinkley::Reset() {
  state_ = DetectorState::kStable;
  n_ = 0;
  mean_ = 0.0;
  cumulative_ = 0.0;
  min_cumulative_ = 0.0;
}

void PageHinkley::AddError(bool error) {
  if (state_ == DetectorState::kDrift) Reset();

  double x = error ? 1.0 : 0.0;
  ++n_;
  // Fading mean keeps the reference adaptive on very long streams.
  mean_ = mean_ + (x - mean_) / std::min<double>(
                                   static_cast<double>(n_),
                                   1.0 / (1.0 - params_.alpha));
  cumulative_ += x - mean_ - params_.delta;
  min_cumulative_ = std::min(min_cumulative_, cumulative_);

  if (n_ < params_.min_instances) return;
  double ph = cumulative_ - min_cumulative_;
  if (ph > params_.lambda) {
    state_ = DetectorState::kDrift;
  } else if (ph > 0.8 * params_.lambda) {
    state_ = DetectorState::kWarning;
  } else {
    state_ = DetectorState::kStable;
  }
}

void PageHinkley::SaveState(io::Writer& w) const {
  w.BeginSection("PageHinkley");
  w.F64(params_.delta);
  w.F64(params_.lambda);
  w.F64(params_.alpha);
  w.I64(params_.min_instances);
  io::WriteDetectorState(w, state_);
  w.I64(n_);
  w.F64(mean_);
  w.F64(cumulative_);
  w.F64(min_cumulative_);
  w.EndSection();
}

void PageHinkley::LoadState(io::Reader& r) {
  r.BeginSection("PageHinkley");
  params_.delta = r.F64("ph.delta");
  params_.lambda = r.F64("ph.lambda");
  params_.alpha = r.F64("ph.alpha");
  params_.min_instances = static_cast<int>(r.I64("ph.min_instances"));
  state_ = io::ReadDetectorState(r, "ph.state");
  n_ = r.I64("ph.n");
  mean_ = r.F64("ph.mean");
  cumulative_ = r.F64("ph.cumulative");
  min_cumulative_ = r.F64("ph.min_cumulative");
  r.EndSection("PageHinkley");
}

}  // namespace ccd
