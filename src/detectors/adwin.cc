#include "detectors/adwin.h"

#include <cmath>

#include "io/codecs.h"

namespace ccd {

void Adwin::Reset() {
  state_ = DetectorState::kStable;
  rows_.clear();
  rows_.emplace_back();
  total_sum_ = 0.0;
  total_var_ = 0.0;
  total_count_ = 0;
  since_check_ = 0;
}

void Adwin::AddValue(double value) {
  state_ = DetectorState::kStable;
  // New observations enter row 0 as singleton buckets.
  Bucket b;
  b.sum = value;
  b.count = 1;
  rows_[0].push_front(b);
  if (total_count_ > 0) {
    double mean = total_sum_ / static_cast<double>(total_count_);
    total_var_ += (value - mean) * (value - mean) * total_count_ /
                  static_cast<double>(total_count_ + 1);
  }
  total_sum_ += value;
  ++total_count_;
  Compress();

  if (++since_check_ >= params_.check_interval &&
      total_count_ >= params_.min_window) {
    since_check_ = 0;
    bool cut = false;
    while (DetectCut()) cut = true;
    if (cut) state_ = DetectorState::kDrift;
  }
}

void Adwin::Compress() {
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (static_cast<int>(rows_[r].size()) <= params_.max_buckets) break;
    // Merge the two oldest buckets of this row into the next row.
    if (r + 1 == rows_.size()) rows_.emplace_back();
    Bucket a = rows_[r].back();
    rows_[r].pop_back();
    Bucket b = rows_[r].back();
    rows_[r].pop_back();
    Bucket merged;
    merged.count = a.count + b.count;
    merged.sum = a.sum + b.sum;
    double mean_a = a.sum / a.count, mean_b = b.sum / b.count;
    merged.variance_sum = a.variance_sum + b.variance_sum +
                          (mean_a - mean_b) * (mean_a - mean_b) * a.count *
                              b.count / merged.count;
    rows_[r + 1].push_front(merged);
  }
}

bool Adwin::DetectCut() {
  if (total_count_ < params_.min_window) return false;
  // Scan split points from oldest to newest: W = W0 (old) + W1 (new).
  double sum0 = 0.0;
  long long n0 = 0;
  double variance =
      total_count_ > 1 ? total_var_ / static_cast<double>(total_count_) : 0.0;
  double delta_prime =
      params_.delta / std::log(static_cast<double>(total_count_) + 1.0);

  for (size_t r = rows_.size(); r-- > 0;) {
    for (size_t i = rows_[r].size(); i-- > 0;) {
      const Bucket& b = rows_[r][i];
      sum0 += b.sum;
      n0 += b.count;
      long long n1 = total_count_ - n0;
      if (n0 < 1 || n1 < 1) continue;
      double mean0 = sum0 / static_cast<double>(n0);
      double mean1 = (total_sum_ - sum0) / static_cast<double>(n1);
      double m = 1.0 / (1.0 / static_cast<double>(n0) +
                        1.0 / static_cast<double>(n1));
      double ln_term = std::log(2.0 / delta_prime);
      double eps = std::sqrt(2.0 / m * variance * ln_term) +
                   2.0 / (3.0 * m) * ln_term;
      if (std::fabs(mean0 - mean1) > eps) {
        // Drop the oldest bucket (shrink the window) and report the cut.
        size_t oldest_row = rows_.size();
        while (oldest_row-- > 0) {
          if (!rows_[oldest_row].empty()) break;
        }
        const Bucket& drop = rows_[oldest_row].back();
        total_sum_ -= drop.sum;
        total_count_ -= drop.count;
        total_var_ = total_var_ > drop.variance_sum
                         ? total_var_ - drop.variance_sum
                         : 0.0;
        rows_[oldest_row].pop_back();
        return true;
      }
    }
  }
  return false;
}

void Adwin::SaveState(io::Writer& w) const {
  w.BeginSection("ADWIN");
  w.F64(params_.delta);
  w.I64(params_.max_buckets);
  w.I64(params_.min_window);
  w.I64(params_.check_interval);
  io::WriteDetectorState(w, state_);
  w.U32(static_cast<uint32_t>(rows_.size()));
  for (const std::deque<Bucket>& row : rows_) {
    w.U32(static_cast<uint32_t>(row.size()));
    for (const Bucket& b : row) {
      w.F64(b.sum);
      w.F64(b.variance_sum);
      w.I64(b.count);
    }
  }
  w.F64(total_sum_);
  w.F64(total_var_);
  w.I64(total_count_);
  w.I64(since_check_);
  w.EndSection();
}

void Adwin::LoadState(io::Reader& r) {
  r.BeginSection("ADWIN");
  params_.delta = r.F64("adwin.delta");
  params_.max_buckets = static_cast<int>(r.I64("adwin.max_buckets"));
  params_.min_window = static_cast<int>(r.I64("adwin.min_window"));
  params_.check_interval = static_cast<int>(r.I64("adwin.check_interval"));
  state_ = io::ReadDetectorState(r, "adwin.state");
  uint32_t nrows = r.Count("adwin.rows");
  if (nrows == 0) r.Fail("adwin.rows", "a live ADWIN always has row 0");
  rows_.clear();
  for (uint32_t i = 0; i < nrows; ++i) {
    rows_.emplace_back();
    uint32_t nbuckets = r.Count("adwin.row");
    for (uint32_t j = 0; j < nbuckets; ++j) {
      Bucket b;
      b.sum = r.F64("adwin.bucket.sum");
      b.variance_sum = r.F64("adwin.bucket.variance_sum");
      b.count = r.I64("adwin.bucket.count");
      rows_.back().push_back(b);
    }
  }
  total_sum_ = r.F64("adwin.total_sum");
  total_var_ = r.F64("adwin.total_var");
  total_count_ = r.I64("adwin.total_count");
  since_check_ = r.I64("adwin.since_check");
  r.EndSection("ADWIN");
}

}  // namespace ccd
