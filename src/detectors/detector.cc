#include "detectors/detector.h"

namespace ccd {

const char* DetectorStateName(DetectorState s) {
  switch (s) {
    case DetectorState::kStable:
      return "stable";
    case DetectorState::kWarning:
      return "warning";
    case DetectorState::kDrift:
      return "drift";
  }
  return "?";
}

}  // namespace ccd
