#include "detectors/detector.h"

#include <stdexcept>

namespace ccd {

std::unique_ptr<DriftDetector> DriftDetector::CloneState() const {
  throw std::logic_error("detector '" + name() +
                         "' does not implement CloneState(); it cannot "
                         "participate in sharded evaluation / state handoff");
}

const char* DetectorStateName(DetectorState s) {
  switch (s) {
    case DetectorState::kStable:
      return "stable";
    case DetectorState::kWarning:
      return "warning";
    case DetectorState::kDrift:
      return "drift";
  }
  return "?";
}

}  // namespace ccd
