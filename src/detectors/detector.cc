#include "detectors/detector.h"

#include <stdexcept>

namespace ccd {

std::unique_ptr<DriftDetector> DriftDetector::CloneState() const {
  throw std::logic_error("detector '" + name() +
                         "' does not implement CloneState(); it cannot "
                         "participate in sharded evaluation / state handoff");
}

void DriftDetector::SaveState(io::Writer& /*writer*/) const {
  throw std::logic_error("detector '" + name() +
                         "' does not implement SaveState(); it cannot be "
                         "persisted or shipped across processes");
}

void DriftDetector::LoadState(io::Reader& /*reader*/) {
  throw std::logic_error("detector '" + name() +
                         "' does not implement LoadState(); it cannot be "
                         "restored from a snapshot");
}

const char* DetectorStateName(DetectorState s) {
  switch (s) {
    case DetectorState::kStable:
      return "stable";
    case DetectorState::kWarning:
      return "warning";
    case DetectorState::kDrift:
      return "drift";
  }
  return "?";
}

}  // namespace ccd
