#include "detectors/ddm.h"

#include <cmath>

namespace ccd {

void Ddm::Reset() {
  state_ = DetectorState::kStable;
  n_ = 0;
  p_ = 0.0;
  p_min_ = 1e300;
  s_min_ = 1e300;
}

void Ddm::AddError(bool error) {
  if (state_ == DetectorState::kDrift) Reset();

  ++n_;
  p_ += (static_cast<double>(error) - p_) / static_cast<double>(n_);
  if (n_ < params_.min_instances) {
    state_ = DetectorState::kStable;
    return;
  }
  double s = std::sqrt(p_ * (1.0 - p_) / static_cast<double>(n_));
  if (p_ + s <= p_min_ + s_min_) {
    p_min_ = p_;
    s_min_ = s;
  }
  if (p_ + s > p_min_ + params_.drift_level * s_min_) {
    state_ = DetectorState::kDrift;
  } else if (p_ + s > p_min_ + params_.warning_level * s_min_) {
    state_ = DetectorState::kWarning;
  } else {
    state_ = DetectorState::kStable;
  }
}

}  // namespace ccd
