#include "detectors/ddm.h"

#include <cmath>

#include "io/codecs.h"

namespace ccd {

void Ddm::Reset() {
  state_ = DetectorState::kStable;
  n_ = 0;
  p_ = 0.0;
  p_min_ = 1e300;
  s_min_ = 1e300;
}

void Ddm::AddError(bool error) {
  if (state_ == DetectorState::kDrift) Reset();

  ++n_;
  p_ += (static_cast<double>(error) - p_) / static_cast<double>(n_);
  if (n_ < params_.min_instances) {
    state_ = DetectorState::kStable;
    return;
  }
  double s = std::sqrt(p_ * (1.0 - p_) / static_cast<double>(n_));
  if (p_ + s <= p_min_ + s_min_) {
    p_min_ = p_;
    s_min_ = s;
  }
  if (p_ + s > p_min_ + params_.drift_level * s_min_) {
    state_ = DetectorState::kDrift;
  } else if (p_ + s > p_min_ + params_.warning_level * s_min_) {
    state_ = DetectorState::kWarning;
  } else {
    state_ = DetectorState::kStable;
  }
}

void Ddm::SaveState(io::Writer& w) const {
  w.BeginSection("DDM");
  w.F64(params_.warning_level);
  w.F64(params_.drift_level);
  w.I64(params_.min_instances);
  io::WriteDetectorState(w, state_);
  w.I64(n_);
  w.F64(p_);
  w.F64(p_min_);
  w.F64(s_min_);
  w.EndSection();
}

void Ddm::LoadState(io::Reader& r) {
  r.BeginSection("DDM");
  params_.warning_level = r.F64("ddm.warning_level");
  params_.drift_level = r.F64("ddm.drift_level");
  params_.min_instances = static_cast<int>(r.I64("ddm.min_instances"));
  state_ = io::ReadDetectorState(r, "ddm.state");
  n_ = r.I64("ddm.n");
  p_ = r.F64("ddm.p");
  p_min_ = r.F64("ddm.p_min");
  s_min_ = r.F64("ddm.s_min");
  r.EndSection("DDM");
}

}  // namespace ccd
