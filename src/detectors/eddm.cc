#include "detectors/eddm.h"

#include <cmath>

#include "io/codecs.h"

namespace ccd {

void Eddm::Reset() {
  state_ = DetectorState::kStable;
  instances_ = 0;
  last_error_at_ = 0;
  num_errors_ = 0;
  dist_mean_ = 0.0;
  dist_m2_ = 0.0;
  max_stat_ = -1e300;
}

void Eddm::AddError(bool error) {
  if (state_ == DetectorState::kDrift) Reset();

  ++instances_;
  if (!error) {
    if (state_ == DetectorState::kWarning) state_ = DetectorState::kWarning;
    return;
  }
  double distance = static_cast<double>(instances_ - last_error_at_);
  last_error_at_ = instances_;
  ++num_errors_;
  double delta = distance - dist_mean_;
  dist_mean_ += delta / static_cast<double>(num_errors_);
  dist_m2_ += delta * (distance - dist_mean_);
  if (num_errors_ < params_.min_errors) {
    state_ = DetectorState::kStable;
    return;
  }
  double var = dist_m2_ / static_cast<double>(num_errors_);
  double stat = dist_mean_ + 2.0 * std::sqrt(var);
  if (stat > max_stat_) {
    max_stat_ = stat;
    state_ = DetectorState::kStable;
    return;
  }
  double ratio = stat / max_stat_;
  if (ratio < params_.beta) {
    state_ = DetectorState::kDrift;
  } else if (ratio < params_.alpha) {
    state_ = DetectorState::kWarning;
  } else {
    state_ = DetectorState::kStable;
  }
}

void Eddm::SaveState(io::Writer& w) const {
  w.BeginSection("EDDM");
  w.F64(params_.alpha);
  w.F64(params_.beta);
  w.I64(params_.min_errors);
  io::WriteDetectorState(w, state_);
  w.I64(instances_);
  w.I64(last_error_at_);
  w.I64(num_errors_);
  w.F64(dist_mean_);
  w.F64(dist_m2_);
  w.F64(max_stat_);
  w.EndSection();
}

void Eddm::LoadState(io::Reader& r) {
  r.BeginSection("EDDM");
  params_.alpha = r.F64("eddm.alpha");
  params_.beta = r.F64("eddm.beta");
  params_.min_errors = static_cast<int>(r.I64("eddm.min_errors"));
  state_ = io::ReadDetectorState(r, "eddm.state");
  instances_ = r.I64("eddm.instances");
  last_error_at_ = r.I64("eddm.last_error_at");
  num_errors_ = r.I64("eddm.num_errors");
  dist_mean_ = r.F64("eddm.dist_mean");
  dist_m2_ = r.F64("eddm.dist_m2");
  max_stat_ = r.F64("eddm.max_stat");
  r.EndSection("EDDM");
}

}  // namespace ccd
