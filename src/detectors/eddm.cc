#include "detectors/eddm.h"

#include <cmath>

namespace ccd {

void Eddm::Reset() {
  state_ = DetectorState::kStable;
  instances_ = 0;
  last_error_at_ = 0;
  num_errors_ = 0;
  dist_mean_ = 0.0;
  dist_m2_ = 0.0;
  max_stat_ = -1e300;
}

void Eddm::AddError(bool error) {
  if (state_ == DetectorState::kDrift) Reset();

  ++instances_;
  if (!error) {
    if (state_ == DetectorState::kWarning) state_ = DetectorState::kWarning;
    return;
  }
  double distance = static_cast<double>(instances_ - last_error_at_);
  last_error_at_ = instances_;
  ++num_errors_;
  double delta = distance - dist_mean_;
  dist_mean_ += delta / static_cast<double>(num_errors_);
  dist_m2_ += delta * (distance - dist_mean_);
  if (num_errors_ < params_.min_errors) {
    state_ = DetectorState::kStable;
    return;
  }
  double var = dist_m2_ / static_cast<double>(num_errors_);
  double stat = dist_mean_ + 2.0 * std::sqrt(var);
  if (stat > max_stat_) {
    max_stat_ = stat;
    state_ = DetectorState::kStable;
    return;
  }
  double ratio = stat / max_stat_;
  if (ratio < params_.beta) {
    state_ = DetectorState::kDrift;
  } else if (ratio < params_.alpha) {
    state_ = DetectorState::kWarning;
  } else {
    state_ = DetectorState::kStable;
  }
}

}  // namespace ccd
