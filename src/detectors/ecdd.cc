#include "detectors/ecdd.h"

#include <cmath>

#include "io/codecs.h"

namespace ccd {

void Ecdd::Reset() {
  state_ = DetectorState::kStable;
  n_ = 0;
  p_hat_ = 0.0;
  z_ = 0.0;
}

void Ecdd::AddError(bool error) {
  if (state_ == DetectorState::kDrift) Reset();

  double x = error ? 1.0 : 0.0;
  ++n_;
  p_hat_ += (x - p_hat_) / static_cast<double>(n_);
  z_ = (1.0 - params_.lambda) * z_ + params_.lambda * x;

  if (n_ < params_.min_instances) {
    state_ = DetectorState::kStable;
    return;
  }
  // Exact EWMA variance after n steps under Bernoulli(p_hat).
  double lam = params_.lambda;
  double var_factor =
      lam / (2.0 - lam) *
      (1.0 - std::pow(1.0 - lam, 2.0 * static_cast<double>(n_)));
  double sigma = std::sqrt(p_hat_ * (1.0 - p_hat_) * var_factor);
  if (sigma <= 0.0) {
    state_ = DetectorState::kStable;
    return;
  }
  if (z_ > p_hat_ + params_.drift_l * sigma) {
    state_ = DetectorState::kDrift;
  } else if (z_ > p_hat_ + params_.warning_l * sigma) {
    state_ = DetectorState::kWarning;
  } else {
    state_ = DetectorState::kStable;
  }
}

void Ecdd::SaveState(io::Writer& w) const {
  w.BeginSection("ECDD");
  w.F64(params_.lambda);
  w.F64(params_.drift_l);
  w.F64(params_.warning_l);
  w.I64(params_.min_instances);
  io::WriteDetectorState(w, state_);
  w.I64(n_);
  w.F64(p_hat_);
  w.F64(z_);
  w.EndSection();
}

void Ecdd::LoadState(io::Reader& r) {
  r.BeginSection("ECDD");
  params_.lambda = r.F64("ecdd.lambda");
  params_.drift_l = r.F64("ecdd.drift_l");
  params_.warning_l = r.F64("ecdd.warning_l");
  params_.min_instances = static_cast<int>(r.I64("ecdd.min_instances"));
  state_ = io::ReadDetectorState(r, "ecdd.state");
  n_ = r.I64("ecdd.n");
  p_hat_ = r.F64("ecdd.p_hat");
  z_ = r.F64("ecdd.z");
  r.EndSection("ECDD");
}

}  // namespace ccd
