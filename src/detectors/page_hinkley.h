#ifndef CCD_DETECTORS_PAGE_HINKLEY_H_
#define CCD_DETECTORS_PAGE_HINKLEY_H_

#include "detectors/detector.h"

namespace ccd {

/// Page-Hinkley test (Page 1954; the streaming adaptation of Gama et al.),
/// a classic sequential change detector over the error indicator: maintains
/// the cumulative deviation of the signal from its running mean and fires
/// when it exceeds the historical minimum by more than `lambda`.
/// Included beyond the paper's baseline set to widen the detector zoo.
class PageHinkley : public ErrorRateDetector {
 public:
  struct Params {
    double delta = 0.005;   ///< Tolerated drift magnitude.
    double lambda = 50.0;   ///< Detection threshold.
    double alpha = 0.9999;  ///< Forgetting factor of the running mean.
    int min_instances = 30;
  };

  PageHinkley() : PageHinkley(Params()) {}
  explicit PageHinkley(const Params& params) : params_(params) { Reset(); }

  void AddError(bool error) override;
  DetectorState state() const override { return state_; }
  void Reset() override;
  std::string name() const override { return "PageHinkley"; }
  std::unique_ptr<DriftDetector> CloneState() const override {
    return std::make_unique<PageHinkley>(*this);
  }
  void SaveState(io::Writer& writer) const override;
  void LoadState(io::Reader& reader) override;

 private:
  Params params_;
  DetectorState state_ = DetectorState::kStable;
  long long n_ = 0;
  double mean_ = 0.0;
  double cumulative_ = 0.0;
  double min_cumulative_ = 0.0;
};

}  // namespace ccd

#endif  // CCD_DETECTORS_PAGE_HINKLEY_H_
