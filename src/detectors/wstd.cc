#include "detectors/wstd.h"

#include <vector>

#include "io/codecs.h"
#include "stats/wilcoxon.h"

namespace ccd {

void Wstd::Reset() {
  state_ = DetectorState::kStable;
  history_.clear();
  since_check_ = 0;
}

void Wstd::AddError(bool error) {
  if (state_ == DetectorState::kDrift) Reset();

  history_.push_back(error ? 1.0 : 0.0);
  size_t cap = static_cast<size_t>(params_.max_old_instances) +
               static_cast<size_t>(params_.window_size);
  while (history_.size() > cap) history_.pop_front();

  if (history_.size() <
      static_cast<size_t>(2 * params_.window_size)) {
    state_ = DetectorState::kStable;
    return;
  }
  if (++since_check_ < params_.check_interval) return;
  since_check_ = 0;

  size_t recent_begin = history_.size() - static_cast<size_t>(params_.window_size);
  std::vector<double> older(history_.begin(),
                            history_.begin() + static_cast<long>(recent_begin));
  std::vector<double> recent(history_.begin() + static_cast<long>(recent_begin),
                             history_.end());
  RankTestResult r = WilcoxonRankSum(older, recent);
  if (!r.valid) {
    state_ = DetectorState::kStable;
    return;
  }
  if (r.p_value < params_.drift_significance) {
    state_ = DetectorState::kDrift;
  } else if (r.p_value < params_.warning_significance) {
    state_ = DetectorState::kWarning;
  } else {
    state_ = DetectorState::kStable;
  }
}

void Wstd::SaveState(io::Writer& w) const {
  w.BeginSection("WSTD");
  w.I64(params_.window_size);
  w.F64(params_.warning_significance);
  w.F64(params_.drift_significance);
  w.I64(params_.max_old_instances);
  w.I64(params_.check_interval);
  io::WriteDetectorState(w, state_);
  io::WriteF64Deque(w, history_);
  w.I64(since_check_);
  w.EndSection();
}

void Wstd::LoadState(io::Reader& r) {
  r.BeginSection("WSTD");
  params_.window_size = static_cast<int>(r.I64("wstd.window_size"));
  params_.warning_significance = r.F64("wstd.warning_significance");
  params_.drift_significance = r.F64("wstd.drift_significance");
  params_.max_old_instances = static_cast<int>(r.I64("wstd.max_old_instances"));
  params_.check_interval = static_cast<int>(r.I64("wstd.check_interval"));
  state_ = io::ReadDetectorState(r, "wstd.state");
  history_ = io::ReadF64Deque(r, "wstd.history");
  since_check_ = static_cast<int>(r.I64("wstd.since_check"));
  r.EndSection("WSTD");
}

}  // namespace ccd
