#ifndef CCD_DETECTORS_DDM_H_
#define CCD_DETECTORS_DDM_H_

#include "detectors/detector.h"

namespace ccd {

/// Drift Detection Method (Gama et al., SBIA 2004).
///
/// Models the classifier's error count as a binomial process: tracks the
/// running error rate p_i with deviation s_i = sqrt(p_i(1-p_i)/i) and the
/// historical minimum of p+s. Warning fires when p_i + s_i exceeds
/// p_min + warning_level * s_min; drift when it exceeds
/// p_min + drift_level * s_min (classically 2 and 3 sigma).
class Ddm : public ErrorRateDetector {
 public:
  struct Params {
    double warning_level = 2.0;
    double drift_level = 3.0;
    int min_instances = 30;
  };

  Ddm() : Ddm(Params()) {}
  explicit Ddm(const Params& params) : params_(params) { Reset(); }

  void AddError(bool error) override;
  DetectorState state() const override { return state_; }
  void Reset() override;
  std::string name() const override { return "DDM"; }
  std::unique_ptr<DriftDetector> CloneState() const override {
    return std::make_unique<Ddm>(*this);
  }
  void SaveState(io::Writer& writer) const override;
  void LoadState(io::Reader& reader) override;

 private:
  Params params_;
  DetectorState state_ = DetectorState::kStable;
  long long n_ = 0;
  double p_ = 0.0;
  double p_min_ = 1e300;
  double s_min_ = 1e300;
};

}  // namespace ccd

#endif  // CCD_DETECTORS_DDM_H_
