#ifndef CCD_DETECTORS_WSTD_H_
#define CCD_DETECTORS_WSTD_H_

#include <deque>

#include "detectors/detector.h"

namespace ccd {

/// Wilcoxon rank Sum Test Drift detector (de Barros et al.,
/// Neurocomputing 2018).
///
/// Splits the recent prediction-correctness history into an "older"
/// sub-window (up to `max_old_instances`) and a "recent" sub-window of
/// `window_size` bits and compares them with the Wilcoxon rank-sum test:
/// p-value below `warning_significance` raises a warning, below
/// `drift_significance` a drift. The rank-sum test is O(n log n), so the
/// scan runs every `check_interval` observations (the cost the paper's
/// Tab. III reflects in WSTD's high test time).
class Wstd : public ErrorRateDetector {
 public:
  struct Params {
    int window_size = 50;
    double warning_significance = 0.01;
    double drift_significance = 0.0005;
    int max_old_instances = 2000;
    int check_interval = 8;
  };

  Wstd() : Wstd(Params()) {}
  explicit Wstd(const Params& params) : params_(params) { Reset(); }

  void AddError(bool error) override;
  DetectorState state() const override { return state_; }
  void Reset() override;
  std::string name() const override { return "WSTD"; }
  std::unique_ptr<DriftDetector> CloneState() const override {
    return std::make_unique<Wstd>(*this);
  }
  void SaveState(io::Writer& writer) const override;
  void LoadState(io::Reader& reader) override;

 private:
  Params params_;
  DetectorState state_ = DetectorState::kStable;
  std::deque<double> history_;  ///< 1.0 = error, oldest first.
  int since_check_ = 0;
};

}  // namespace ccd

#endif  // CCD_DETECTORS_WSTD_H_
