#include "detectors/fhddm.h"

#include <cmath>

#include "io/codecs.h"

namespace ccd {

void Fhddm::Reset() {
  state_ = DetectorState::kStable;
  window_.clear();
  correct_ = 0;
  p_max_ = 0.0;
  epsilon_ = std::sqrt(std::log(1.0 / params_.delta) /
                       (2.0 * static_cast<double>(params_.window_size)));
}

void Fhddm::AddError(bool error) {
  if (state_ == DetectorState::kDrift) Reset();

  bool correct = !error;
  window_.push_back(correct);
  if (correct) ++correct_;
  if (static_cast<int>(window_.size()) > params_.window_size) {
    if (window_.front()) --correct_;
    window_.pop_front();
  }
  if (static_cast<int>(window_.size()) < params_.window_size) {
    state_ = DetectorState::kStable;
    return;
  }
  double p = static_cast<double>(correct_) / params_.window_size;
  if (p > p_max_) p_max_ = p;
  state_ = (p_max_ - p > epsilon_) ? DetectorState::kDrift
                                   : DetectorState::kStable;
}

void Fhddm::SaveState(io::Writer& w) const {
  w.BeginSection("FHDDM");
  w.I64(params_.window_size);
  w.F64(params_.delta);
  io::WriteDetectorState(w, state_);
  io::WriteBoolDeque(w, window_);
  w.I64(correct_);
  w.F64(p_max_);
  w.F64(epsilon_);
  w.EndSection();
}

void Fhddm::LoadState(io::Reader& r) {
  r.BeginSection("FHDDM");
  params_.window_size = static_cast<int>(r.I64("fhddm.window_size"));
  params_.delta = r.F64("fhddm.delta");
  state_ = io::ReadDetectorState(r, "fhddm.state");
  window_ = io::ReadBoolDeque(r, "fhddm.window");
  correct_ = static_cast<int>(r.I64("fhddm.correct"));
  p_max_ = r.F64("fhddm.p_max");
  epsilon_ = r.F64("fhddm.epsilon");
  r.EndSection("FHDDM");
}

}  // namespace ccd
