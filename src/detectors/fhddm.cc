#include "detectors/fhddm.h"

#include <cmath>

namespace ccd {

void Fhddm::Reset() {
  state_ = DetectorState::kStable;
  window_.clear();
  correct_ = 0;
  p_max_ = 0.0;
  epsilon_ = std::sqrt(std::log(1.0 / params_.delta) /
                       (2.0 * static_cast<double>(params_.window_size)));
}

void Fhddm::AddError(bool error) {
  if (state_ == DetectorState::kDrift) Reset();

  bool correct = !error;
  window_.push_back(correct);
  if (correct) ++correct_;
  if (static_cast<int>(window_.size()) > params_.window_size) {
    if (window_.front()) --correct_;
    window_.pop_front();
  }
  if (static_cast<int>(window_.size()) < params_.window_size) {
    state_ = DetectorState::kStable;
    return;
  }
  double p = static_cast<double>(correct_) / params_.window_size;
  if (p > p_max_) p_max_ = p;
  state_ = (p_max_ - p > epsilon_) ? DetectorState::kDrift
                                   : DetectorState::kStable;
}

}  // namespace ccd
