#ifndef CCD_DETECTORS_ADWIN_H_
#define CCD_DETECTORS_ADWIN_H_

#include <deque>
#include <vector>

#include "detectors/detector.h"

namespace ccd {

/// ADaptive WINdowing (Bifet & Gavaldà, SDM 2007).
///
/// Maintains a variable-length window of the monitored real-valued signal
/// in exponential-histogram buckets. Whenever the means of any two adjacent
/// sub-windows differ by more than a Hoeffding-style cut threshold, the
/// older sub-window is dropped and a change is reported. Besides acting as
/// a drift detector, ADWIN serves as the *self-adaptive window size*
/// oracle for RBM-IM's trend tracking (Sec. V-B of the paper cites it for
/// exactly this purpose).
class Adwin : public ErrorRateDetector {
 public:
  struct Params {
    double delta = 0.002;     ///< Confidence of the cut test.
    int max_buckets = 5;      ///< Buckets per exponential row.
    int min_window = 10;      ///< No cuts below this total length.
    int check_interval = 4;   ///< Run the cut scan every k-th insert.
  };

  Adwin() : Adwin(Params()) {}
  explicit Adwin(const Params& params) : params_(params) { Reset(); }

  /// Inserts a real-valued observation (not only 0/1 errors).
  void AddValue(double value);

  void AddError(bool error) override { AddValue(error ? 1.0 : 0.0); }
  DetectorState state() const override { return state_; }
  void Reset() override;
  std::string name() const override { return "ADWIN"; }
  std::unique_ptr<DriftDetector> CloneState() const override {
    return std::make_unique<Adwin>(*this);
  }
  void SaveState(io::Writer& writer) const override;
  void LoadState(io::Reader& reader) override;

  /// Current adaptive window length.
  long long width() const { return total_count_; }
  /// Mean of the current window.
  double mean() const {
    return total_count_ > 0 ? total_sum_ / static_cast<double>(total_count_)
                            : 0.0;
  }

 private:
  struct Bucket {
    double sum = 0.0;
    double variance_sum = 0.0;  // Within-bucket variance * count.
    long long count = 0;
  };

  void Compress();
  bool DetectCut();

  Params params_;
  DetectorState state_ = DetectorState::kStable;
  /// rows_[r] holds buckets of capacity 2^r, newest first within a row.
  std::vector<std::deque<Bucket>> rows_;
  double total_sum_ = 0.0;
  double total_var_ = 0.0;
  long long total_count_ = 0;
  long long since_check_ = 0;
};

}  // namespace ccd

#endif  // CCD_DETECTORS_ADWIN_H_
