#ifndef CCD_CORE_RBM_H_
#define CCD_CORE_RBM_H_

#include <vector>

#include "stream/instance.h"
#include "utils/rng.h"

namespace ccd {
namespace io {
class Writer;
class Reader;
}  // namespace io

/// Skew-insensitive three-layer Restricted Boltzmann Machine (Sec. V-A of
/// the paper): a visible layer v of V unit-interval units, a hidden layer h
/// of H binary units, and a class layer z of Z softmax units, with weights
/// W (V x H) between v and h and U (H x Z) between h and z, plus biases
/// a, b, c (Eq. 8).
///
/// Training is mini-batch Contrastive Divergence with k Gibbs steps
/// (Eq. 16-21). Skew-insensitivity follows the class-balanced loss of Cui
/// et al. (CVPR 2019): each instance's gradient contribution is scaled by
/// (1-beta) / (1-beta^{n_y}) where n_y is the (decayed) number of samples
/// of its class seen so far (Eq. 13) — minority instances weigh more, so
/// the model represents all classes even under extreme imbalance.
///
/// Features fed to the RBM must already be scaled to [0,1] (see
/// MinMaxNormalizer); RBM-IM does this internally.
class Rbm {
 public:
  struct Params {
    int visible = 0;
    int hidden = 0;
    int classes = 0;
    double learning_rate = 0.05;   ///< η in Eq. 17.
    /// Learning rate of the additional discriminative step on (U, c): after
    /// each CD update the class layer is nudged along the gradient of
    /// -log P(y | v) so that the softmax read-out tracks p(y|x). Without
    /// it, generative CD alone leaves the class layer too flat for the
    /// label-reconstruction part of Eq. 26 to carry signal. 0 disables.
    double discriminative_rate = 0.1;
    int cd_steps = 1;              ///< k of CD-k.
    double weight_init_sigma = 0.01;
    bool class_balanced = true;    ///< Enable Eq. 13 weighting (ablatable).
    double beta = 0.999;           ///< Effective-number-of-samples base.
    double count_decay = 0.9999;   ///< Forgetting factor for class counts.
  };

  Rbm(const Params& params, uint64_t seed);

  /// One CD-k update from a mini-batch (Eq. 15-21). Instances' features
  /// must be in [0,1]; labels in [0, classes).
  void TrainBatch(const std::vector<Instance>& batch);
  /// Pointer-range form, for callers that recycle a larger instance buffer
  /// and train on its used prefix (RBM-IM's pending mini-batch).
  void TrainBatch(const Instance* batch, size_t count);

  /// Per-class activation probabilities of h given clamped v and z
  /// (Eq. 10).
  std::vector<double> HiddenProbs(const std::vector<double>& v,
                                  const std::vector<double>& z) const;
  /// P(v_i = 1 | h), Eq. 11.
  std::vector<double> VisibleProbs(const std::vector<double>& h) const;
  /// Hidden activations driven by the visible layer only (class input 0);
  /// the encoding used for the label read-out.
  std::vector<double> HiddenFromVisible(const std::vector<double>& v) const;
  /// Softmax label read-out from the visible layer: P(z | h(v)) — the
  /// "class layer activated to reconstruct the class label" of Sec. V-B.
  std::vector<double> ClassReadout(const std::vector<double>& v) const;
  /// Softmax class activations given h, Eq. 12.
  std::vector<double> ClassProbs(const std::vector<double>& h) const;

  /// Allocation-free forms of the feed-forward passes above: each writes
  /// into `out` (resized in place, capacity reused) with arithmetic
  /// bit-identical to its by-value sibling. These are the per-push hot
  /// path — ReconstructionError() and TrainBatch() route everything
  /// through reused scratch so a trained, steady-state RBM performs no
  /// heap allocation per evaluated instance. `out` must not alias `v`,
  /// `z`, or `h`.
  void HiddenProbsInto(const std::vector<double>& v,
                       const std::vector<double>& z,
                       std::vector<double>* out) const;
  void VisibleProbsInto(const std::vector<double>& h,
                        std::vector<double>* out) const;
  void HiddenFromVisibleInto(const std::vector<double>& v,
                             std::vector<double>* out) const;
  void ClassReadoutInto(const std::vector<double>& v,
                        std::vector<double>* out) const;
  void ClassProbsInto(const std::vector<double>& h,
                      std::vector<double>* out) const;
  void ClassifyProbsInto(const std::vector<double>& x,
                         std::vector<double>* out) const;

  /// Reconstruction error R(S_n^m) of Eq. 26, normalized by sqrt(V + Z)
  /// into [0,1] so downstream change detection sees a bounded signal. The
  /// feature part reconstructs x~ through the label-clamped pass (Eq. 25,
  /// 23); the label part y~ is the ClassReadout from v alone — clamping y
  /// into the class layer would merely echo the label back and hide
  /// changes of p(y|x) (virtual-vs-real drift would be indistinguishable).
  double ReconstructionError(const std::vector<double>& x, int y) const;

  /// Discriminative use of the class layer: P(y | x) via free energy
  /// (softmax over c_y + sum_j softplus(b_j + W_j.x + u_jy)). Lets the RBM
  /// double as a classifier and is exercised by tests.
  std::vector<double> ClassifyProbs(const std::vector<double>& x) const;

  /// Class-balanced gradient weight of class y (Eq. 13 coefficient,
  /// normalized so the average over observed classes is ~1).
  double ClassWeight(int y) const;

  /// Energy E(v, h, z) of Eq. 8 (used by invariant tests).
  double Energy(const std::vector<double>& v, const std::vector<double>& h,
                const std::vector<double>& z) const;

  const Params& params() const { return params_; }
  /// Decayed observation count of class y.
  double class_count(int y) const { return class_counts_[static_cast<size_t>(y)]; }

  /// Serializes the complete model — parameters, every weight and bias,
  /// the decayed class counts, and the RNG cursor (the CD-k Gibbs chain
  /// must continue the exact deviate sequence after a restore).
  void SaveState(io::Writer& writer) const;
  /// Inverse of SaveState(); resizes all layers to the serialized
  /// dimensions. Throws io::WireError when weight array sizes disagree
  /// with the serialized layer dimensions.
  void LoadState(io::Reader& reader);

 private:
  double& W(int i, int j) { return w_[static_cast<size_t>(i) * params_.hidden + j]; }
  double Wc(int i, int j) const {
    return w_[static_cast<size_t>(i) * params_.hidden + j];
  }
  double& U(int j, int k) { return u_[static_cast<size_t>(j) * params_.classes + k]; }
  double Uc(int j, int k) const {
    return u_[static_cast<size_t>(j) * params_.classes + k];
  }

  /// Reused feed-forward / CD buffers so the hot paths never allocate.
  /// Pure scratch: every vector is fully rewritten before it is read, so
  /// the buffers carry no model state and never serialize.
  struct Scratch {
    std::vector<double> z, h, h2, xr, zr, base;       // Feed-forward.
    std::vector<double> gw, gu, ga, gb, gc;           // CD gradients.
    std::vector<double> z0, h_state, ph0, vk, zk, phk;  // Gibbs chain.
    std::vector<double> hv, py, dh;                   // Discriminative step.
  };

  Params params_;
  Rng rng_;
  std::vector<double> w_;  ///< V x H.
  std::vector<double> u_;  ///< H x Z.
  std::vector<double> a_;  ///< Visible biases.
  std::vector<double> b_;  ///< Hidden biases.
  std::vector<double> c_;  ///< Class biases.
  std::vector<double> class_counts_;
  // ccd:state-skip(scratch_, transient feed-forward/CD scratch fully rewritten before every read; no model state)
  mutable Scratch scratch_;
};

}  // namespace ccd

#endif  // CCD_CORE_RBM_H_
