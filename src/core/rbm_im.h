#ifndef CCD_CORE_RBM_IM_H_
#define CCD_CORE_RBM_IM_H_

#include <deque>
#include <memory>
#include <vector>

#include "core/rbm.h"
#include "detectors/adwin.h"
#include "detectors/detector.h"
#include "stats/trend.h"
#include "stats/welford.h"
#include "stream/normalizer.h"

namespace ccd {

/// RBM-IM — the paper's trainable drift detector for multi-class imbalanced
/// data streams (Sec. V).
///
/// Pipeline per arriving mini-batch M_t (size `batch_size`):
///   1. *monitor*: for every class m present in the batch, compute the mean
///      normalized reconstruction error R(M_t^m) against the current RBM
///      (Eq. 26-27) — new data that no longer matches the stored concept
///      reconstructs poorly;
///   2. *decide*: per class, two complementary change tests:
///        - a *jump* test: R(M_t^m) is compared against an exponentially
///          weighted baseline of that class's own history; a z-score above
///          `jump_sigmas` marks an abrupt mismatch (sudden drift);
///        - a *trend* test: the linear-regression slope of R over a
///          self-adaptive window (Eq. 28-37, window size from a per-class
///          ADWIN) feeds a first-difference Granger causality test between
///          the previous and current trend windows — causality between
///          consecutive windows means the concept continues; its absence,
///          with an outlying positive slope, signals slow (gradual /
///          incremental) drift (Sec. V-B);
///   3. *adapt*: CD-k train the RBM on the batch with the class-balanced
///      loss, so the stored concept follows the stream, its imbalance
///      ratio, and evolving class roles.
///
/// `trigger` selects the decision rule for the ablation study: kCombined
/// (default) ORs the jump and trend tests; kZScore uses only the jump test;
/// kAdwinOnly replaces both with a plain per-class ADWIN on R (no Granger);
/// kGranger uses only the trend/Granger path.
class RbmIm : public DriftDetector {
 public:
  enum class Trigger { kCombined, kZScore, kAdwinOnly, kGranger };

  struct Params {
    int num_features = 0;
    int num_classes = 0;
    // Table II grid knobs.
    int batch_size = 50;        ///< M ∈ {25, 50, 75, 100}.
    double hidden_ratio = 0.5;  ///< H = ratio * V, ∈ {0.25, 0.5, 0.75, 1}.
    double learning_rate = 0.05;  ///< η ∈ {0.01, 0.03, 0.05, 0.07}.
    int cd_steps = 1;           ///< Gibbs k ∈ {1, 2, 3, 4}.
    // Skew-insensitive loss.
    bool class_balanced = true;
    double beta = 0.999;
    // Drift decision.
    Trigger trigger = Trigger::kCombined;
    double jump_sigmas = 4.0;      ///< z threshold of the jump test.
    /// CUSUM companion of the jump test: the one-sided statistic
    /// max(0, C + z - cusum_slack) crossing cusum_threshold signals drift.
    /// Catches the persistent moderate elevation typical of rare classes,
    /// whose single-batch z stays below jump_sigmas because their R
    /// estimate is noisy.
    double cusum_slack = 0.75;
    double cusum_threshold = 7.0;
    double baseline_decay = 0.98;  ///< EWMA decay of the per-class baseline.
    double sigma_floor = 0.01;     ///< Lower bound on the baseline sigma.
    int granger_window = 8;        ///< L: half-window of trend values tested.
    int granger_lag = 1;
    double granger_alpha = 0.05;
    double slope_sigmas = 3.0;  ///< Trend-magnitude gate (z-score).
    double adwin_delta = 0.002;
    int min_batches = 16;       ///< Per-class batches before testing.
    int warmup_batches = 5;     ///< Paper: first batch(es) only train.
    int trend_window_min = 4;
    int trend_window_max = 64;
    /// Extra CD passes over the batch right after a detected drift, so the
    /// RBM re-centers on the new concept faster.
    int post_drift_boost = 2;
    /// Per-class evaluation pool: R(M_t^m) is averaged over up to this many
    /// recent instances of class m (Eq. 27 with a cross-batch pool), which
    /// stabilizes the estimate for rare classes.
    int eval_pool = 16;
  };

  RbmIm(const Params& params, uint64_t seed);

  void Observe(const Instance& instance, int predicted,
               const std::vector<double>& scores) override;
  DetectorState state() const override { return state_; }
  void Reset() override;
  std::string name() const override { return "RBM-IM"; }
  std::vector<int> drifted_classes() const override { return drifted_; }
  /// Deep copy of the full detector state: RBM weights *and* its RNG
  /// cursor, the streaming normalizer bounds, the pending mini-batch, and
  /// every per-class monitor (ADWIN, trend window, baselines) — so the
  /// copy's future batch decisions are bit-identical.
  std::unique_ptr<DriftDetector> CloneState() const override;
  /// Durable form of CloneState(): writes the RBM (weights + RNG cursor),
  /// normalizer bounds, pending mini-batch, and every per-class monitor
  /// (ADWIN buckets, trend sums, baselines, CUSUM) to the wire format.
  void SaveState(io::Writer& writer) const override;
  void LoadState(io::Reader& reader) override;

  /// Introspection for tests and diagnostics.
  const Rbm& rbm() const { return *rbm_; }
  double last_reconstruction(int k) const;
  double trend_slope(int k) const;
  /// Jump-test z-score of class k's latest batch (0 until baseline ready).
  double last_z(int k) const;
  uint64_t batches_processed() const { return batches_; }

 private:
  /// Exponentially weighted mean/variance, the per-class R baseline. Unlike
  /// a plain Welford it follows the slow decline of R while the RBM keeps
  /// converging, so jumps remain visible at any stream age.
  struct EwmaBaseline {
    double mean = 0.0;
    double var = 0.0;
    long long n = 0;

    void Add(double x, double decay) {
      if (n == 0) {
        mean = x;
        var = 0.0;
        n = 1;
        return;
      }
      double d = x - mean;
      mean += (1.0 - decay) * d;
      var = decay * (var + (1.0 - decay) * d * d);
      ++n;
    }
    double StdDev() const;
  };

  struct ClassMonitor {
    /// Recent instances of this class (normalized), pooled across batches
    /// so minority classes get a smoothed R estimate instead of a 1-2
    /// sample one. Re-evaluated against the *current* RBM every time the
    /// class appears.
    std::deque<std::vector<double>> recent;
    std::unique_ptr<Adwin> adwin;
    std::unique_ptr<SlidingTrend> trend;
    std::deque<double> trend_history;  ///< Recent Q_r values.
    Welford slope_stats;               ///< Long-run slope distribution.
    EwmaBaseline baseline;
    double cusum = 0.0;
    double last_r = 0.0;
    double last_z = 0.0;
    int batches_seen = 0;
  };

  void ProcessBatch();
  bool DecideDrift(ClassMonitor* m);
  bool JumpTest(ClassMonitor* m) const;
  bool TrendTest(ClassMonitor* m) const;
  void ResetMonitor(ClassMonitor* m);

  Params params_;
  uint64_t seed_;
  std::unique_ptr<Rbm> rbm_;
  MinMaxNormalizer normalizer_;
  /// Current mini-batch buffer. Only the first `pending_used_` entries are
  /// live: slots (and their feature vectors) are recycled across batches so
  /// the per-push path never allocates once the buffer has grown.
  std::vector<Instance> pending_;
  size_t pending_used_ = 0;
  std::vector<ClassMonitor> monitors_;  ///< One per class.
  // Per-batch pooling scratch, reused across ProcessBatch calls so the
  // batch boundary only allocates inside the decision statistics (ADWIN
  // buckets, Granger regressions), never for bookkeeping.
  // ccd:state-skip(fresh_scratch_, transient ProcessBatch scratch fully rewritten per batch; no run state)
  std::vector<bool> fresh_scratch_;
  // ccd:state-skip(r_sum_scratch_, transient ProcessBatch scratch fully rewritten per batch; no run state)
  std::vector<double> r_sum_scratch_;
  // ccd:state-skip(r_count_scratch_, transient ProcessBatch scratch fully rewritten per batch; no run state)
  std::vector<int> r_count_scratch_;
  // ccd:state-skip(batch_count_scratch_, transient ProcessBatch scratch fully rewritten per batch; no run state)
  std::vector<int> batch_count_scratch_;
  DetectorState state_ = DetectorState::kStable;
  std::vector<int> drifted_;
  uint64_t batches_ = 0;
};

}  // namespace ccd

#endif  // CCD_CORE_RBM_IM_H_
