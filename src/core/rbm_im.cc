#include "core/rbm_im.h"

#include <algorithm>
#include <cmath>

#include "io/codecs.h"
#include "stats/granger.h"

namespace ccd {

double RbmIm::EwmaBaseline::StdDev() const { return std::sqrt(var); }

RbmIm::RbmIm(const Params& params, uint64_t seed)
    : params_(params), seed_(seed), normalizer_(params.num_features) {
  Reset();
}

void RbmIm::Reset() {
  Rbm::Params rp;
  rp.visible = params_.num_features;
  rp.hidden = std::max(4, static_cast<int>(params_.hidden_ratio *
                                           params_.num_features));
  rp.classes = params_.num_classes;
  rp.learning_rate = params_.learning_rate;
  rp.cd_steps = params_.cd_steps;
  rp.class_balanced = params_.class_balanced;
  rp.beta = params_.beta;
  rbm_ = std::make_unique<Rbm>(rp, seed_);
  normalizer_ = MinMaxNormalizer(params_.num_features);
  pending_.clear();
  pending_used_ = 0;
  monitors_.clear();
  monitors_.resize(static_cast<size_t>(params_.num_classes));
  for (auto& m : monitors_) {
    Adwin::Params ap;
    ap.delta = params_.adwin_delta;
    ap.min_window = params_.min_batches;
    ap.check_interval = 1;
    m.adwin = std::make_unique<Adwin>(ap);
    m.trend = std::make_unique<SlidingTrend>(
        static_cast<size_t>(params_.trend_window_max));
  }
  state_ = DetectorState::kStable;
  drifted_.clear();
  batches_ = 0;
}

std::unique_ptr<DriftDetector> RbmIm::CloneState() const {
  auto copy = std::make_unique<RbmIm>(params_, seed_);
  copy->rbm_ = std::make_unique<Rbm>(*rbm_);
  copy->normalizer_ = normalizer_;
  copy->pending_ = pending_;
  copy->pending_used_ = pending_used_;
  copy->state_ = state_;
  copy->drifted_ = drifted_;
  copy->batches_ = batches_;
  copy->monitors_.clear();
  copy->monitors_.resize(monitors_.size());
  for (size_t k = 0; k < monitors_.size(); ++k) {
    const ClassMonitor& src = monitors_[k];
    ClassMonitor& dst = copy->monitors_[k];
    dst.recent = src.recent;
    dst.adwin = std::make_unique<Adwin>(*src.adwin);
    dst.trend = std::make_unique<SlidingTrend>(*src.trend);
    dst.trend_history = src.trend_history;
    dst.slope_stats = src.slope_stats;
    dst.baseline = src.baseline;
    dst.cusum = src.cusum;
    dst.last_r = src.last_r;
    dst.last_z = src.last_z;
    dst.batches_seen = src.batches_seen;
  }
  return copy;
}

void RbmIm::SaveState(io::Writer& w) const {
  w.BeginSection("RBM-IM");
  w.I64(params_.num_features);
  w.I64(params_.num_classes);
  w.I64(params_.batch_size);
  w.F64(params_.hidden_ratio);
  w.F64(params_.learning_rate);
  w.I64(params_.cd_steps);
  w.Bool(params_.class_balanced);
  w.F64(params_.beta);
  w.U8(static_cast<uint8_t>(params_.trigger));
  w.F64(params_.jump_sigmas);
  w.F64(params_.cusum_slack);
  w.F64(params_.cusum_threshold);
  w.F64(params_.baseline_decay);
  w.F64(params_.sigma_floor);
  w.I64(params_.granger_window);
  w.I64(params_.granger_lag);
  w.F64(params_.granger_alpha);
  w.F64(params_.slope_sigmas);
  w.F64(params_.adwin_delta);
  w.I64(params_.min_batches);
  w.I64(params_.warmup_batches);
  w.I64(params_.trend_window_min);
  w.I64(params_.trend_window_max);
  w.I64(params_.post_drift_boost);
  w.I64(params_.eval_pool);
  w.U64(seed_);
  rbm_->SaveState(w);
  io::WriteNormalizer(w, normalizer_);
  // Only the used prefix is live state; slots beyond it are recycled
  // capacity. Wire-identical to serializing a trimmed vector.
  w.U32(static_cast<uint32_t>(pending_used_));
  for (size_t i = 0; i < pending_used_; ++i) io::WriteInstance(w, pending_[i]);
  w.U32(static_cast<uint32_t>(monitors_.size()));
  for (const ClassMonitor& m : monitors_) {
    w.U32(static_cast<uint32_t>(m.recent.size()));
    for (const std::vector<double>& x : m.recent) w.F64Array(x);
    m.adwin->SaveState(w);
    io::WriteTrend(w, *m.trend);
    io::WriteF64Deque(w, m.trend_history);
    io::WriteWelford(w, m.slope_stats);
    w.F64(m.baseline.mean);
    w.F64(m.baseline.var);
    w.I64(m.baseline.n);
    w.F64(m.cusum);
    w.F64(m.last_r);
    w.F64(m.last_z);
    w.I64(m.batches_seen);
  }
  io::WriteDetectorState(w, state_);
  io::WriteIntVector(w, drifted_);
  w.U64(batches_);
  w.EndSection();
}

void RbmIm::LoadState(io::Reader& r) {
  r.BeginSection("RBM-IM");
  Params p;
  p.num_features = static_cast<int>(r.I64("rbm_im.num_features"));
  p.num_classes = static_cast<int>(r.I64("rbm_im.num_classes"));
  p.batch_size = static_cast<int>(r.I64("rbm_im.batch_size"));
  p.hidden_ratio = r.F64("rbm_im.hidden_ratio");
  p.learning_rate = r.F64("rbm_im.learning_rate");
  p.cd_steps = static_cast<int>(r.I64("rbm_im.cd_steps"));
  p.class_balanced = r.Bool("rbm_im.class_balanced");
  p.beta = r.F64("rbm_im.beta");
  uint8_t trigger = r.U8("rbm_im.trigger");
  if (trigger > static_cast<uint8_t>(Trigger::kGranger)) {
    r.Fail("rbm_im.trigger", "invalid trigger value " + std::to_string(trigger));
  }
  p.trigger = static_cast<Trigger>(trigger);
  p.jump_sigmas = r.F64("rbm_im.jump_sigmas");
  p.cusum_slack = r.F64("rbm_im.cusum_slack");
  p.cusum_threshold = r.F64("rbm_im.cusum_threshold");
  p.baseline_decay = r.F64("rbm_im.baseline_decay");
  p.sigma_floor = r.F64("rbm_im.sigma_floor");
  p.granger_window = static_cast<int>(r.I64("rbm_im.granger_window"));
  p.granger_lag = static_cast<int>(r.I64("rbm_im.granger_lag"));
  p.granger_alpha = r.F64("rbm_im.granger_alpha");
  p.slope_sigmas = r.F64("rbm_im.slope_sigmas");
  p.adwin_delta = r.F64("rbm_im.adwin_delta");
  p.min_batches = static_cast<int>(r.I64("rbm_im.min_batches"));
  p.warmup_batches = static_cast<int>(r.I64("rbm_im.warmup_batches"));
  p.trend_window_min = static_cast<int>(r.I64("rbm_im.trend_window_min"));
  p.trend_window_max = static_cast<int>(r.I64("rbm_im.trend_window_max"));
  p.post_drift_boost = static_cast<int>(r.I64("rbm_im.post_drift_boost"));
  p.eval_pool = static_cast<int>(r.I64("rbm_im.eval_pool"));
  if (p.num_features <= 0 || p.num_classes <= 0 || p.batch_size <= 0) {
    r.Fail("rbm_im.num_features", "non-positive dimension");
  }
  params_ = p;
  seed_ = r.U64("rbm_im.seed");
  // Rebuild the component skeleton for the serialized dimensions (fresh
  // RBM, normalizer, per-class monitors), then overwrite every piece of
  // adaptive state from the wire.
  Reset();
  rbm_->LoadState(r);
  io::ReadNormalizerInto(r, &normalizer_);
  uint32_t npending = r.Count("rbm_im.pending");
  pending_.clear();
  for (uint32_t i = 0; i < npending; ++i) {
    pending_.push_back(io::ReadInstance(r));
  }
  pending_used_ = pending_.size();
  uint32_t nmonitors = r.Count("rbm_im.monitors");
  if (nmonitors != monitors_.size()) {
    r.Fail("rbm_im.monitors",
           std::to_string(nmonitors) + " monitors serialized, schema has " +
               std::to_string(monitors_.size()) + " classes");
  }
  for (ClassMonitor& m : monitors_) {
    uint32_t nrecent = r.Count("rbm_im.monitor.recent");
    m.recent.clear();
    for (uint32_t i = 0; i < nrecent; ++i) {
      m.recent.push_back(r.F64Array("rbm_im.monitor.recent_instance"));
    }
    m.adwin->LoadState(r);
    io::ReadTrendInto(r, m.trend.get());
    m.trend_history = io::ReadF64Deque(r, "rbm_im.monitor.trend_history");
    m.slope_stats = io::ReadWelford(r);
    m.baseline.mean = r.F64("rbm_im.monitor.baseline_mean");
    m.baseline.var = r.F64("rbm_im.monitor.baseline_var");
    m.baseline.n = r.I64("rbm_im.monitor.baseline_n");
    m.cusum = r.F64("rbm_im.monitor.cusum");
    m.last_r = r.F64("rbm_im.monitor.last_r");
    m.last_z = r.F64("rbm_im.monitor.last_z");
    m.batches_seen = static_cast<int>(r.I64("rbm_im.monitor.batches_seen"));
  }
  state_ = io::ReadDetectorState(r, "rbm_im.state");
  drifted_ = io::ReadIntVector(r, "rbm_im.drifted");
  batches_ = r.U64("rbm_im.batches");
  r.EndSection("RBM-IM");
}

void RbmIm::ResetMonitor(ClassMonitor* m) {
  // Keep `recent`: the pooled instances describe the *new* concept as soon
  // as fresh data arrives and stale entries rotate out quickly.
  m->adwin->Reset();
  m->trend->Reset();
  m->trend_history.clear();
  m->slope_stats.Reset();
  m->baseline = EwmaBaseline();
  m->cusum = 0.0;
  m->batches_seen = 0;
  m->last_z = 0.0;
}

double RbmIm::last_reconstruction(int k) const {
  return monitors_[static_cast<size_t>(k)].last_r;
}

double RbmIm::trend_slope(int k) const {
  return monitors_[static_cast<size_t>(k)].trend->Slope();
}

double RbmIm::last_z(int k) const {
  return monitors_[static_cast<size_t>(k)].last_z;
}

void RbmIm::Observe(const Instance& instance, int /*predicted*/,
                    const std::vector<double>& /*scores*/) {
  // A drift signal is sticky for exactly one observation.
  if (state_ == DetectorState::kDrift) {
    state_ = DetectorState::kStable;
    drifted_.clear();
  }
  // The normalizer is sized for params_.num_features and validates the
  // width: an instance that does not match the declared schema throws
  // std::invalid_argument here instead of corrupting the bounds arrays.
  // Recycle a previously grown slot when one exists so the steady-state
  // push performs no heap allocation.
  if (pending_used_ < pending_.size()) {
    Instance& slot = pending_[pending_used_];
    normalizer_.ObserveTransformInto(instance.features, &slot.features);
    slot.label = instance.label;
    slot.weight = instance.weight;
  } else {
    Instance normalized(normalizer_.ObserveTransform(instance.features),
                        instance.label, instance.weight);
    pending_.push_back(std::move(normalized));
  }
  ++pending_used_;
  if (pending_used_ >= static_cast<size_t>(params_.batch_size)) {
    ProcessBatch();
    pending_used_ = 0;
  }
}

void RbmIm::ProcessBatch() {
  ++batches_;
  const bool warm = batches_ <= static_cast<uint64_t>(params_.warmup_batches);

  // ---- Monitor: pool this batch's instances per class, then compute the
  // per-class mean reconstruction error (Eq. 27) over the pooled recent
  // instances against the *current* model, before it trains on this batch.
  // Pooling across batches gives minority classes a low-variance estimate.
  std::vector<bool>& fresh = fresh_scratch_;
  fresh.assign(static_cast<size_t>(params_.num_classes), false);
  for (size_t i = 0; i < pending_used_; ++i) {
    const Instance& s = pending_[i];
    if (s.label < 0 || s.label >= params_.num_classes) continue;
    ClassMonitor& m = monitors_[static_cast<size_t>(s.label)];
    if (m.recent.size() >= static_cast<size_t>(params_.eval_pool)) {
      // Pool is full: recycle the evicted oldest entry's buffer for the
      // incoming copy, so steady-state pooling reuses capacity instead of
      // allocating a fresh vector per instance.
      std::vector<double> slot = std::move(m.recent.front());
      m.recent.pop_front();
      slot.assign(s.features.begin(), s.features.end());
      m.recent.push_back(std::move(slot));
    } else {
      m.recent.push_back(s.features);
    }
    fresh[static_cast<size_t>(s.label)] = true;
  }
  std::vector<double>& r_sum = r_sum_scratch_;
  r_sum.assign(static_cast<size_t>(params_.num_classes), 0.0);
  std::vector<int>& r_count = r_count_scratch_;
  r_count.assign(static_cast<size_t>(params_.num_classes), 0);
  if (!warm) {
    std::vector<int>& batch_count = batch_count_scratch_;
    batch_count.assign(static_cast<size_t>(params_.num_classes), 0);
    for (size_t i = 0; i < pending_used_; ++i) {
      const Instance& s = pending_[i];
      if (s.label >= 0 && s.label < params_.num_classes) {
        ++batch_count[static_cast<size_t>(s.label)];
      }
    }
    for (int k = 0; k < params_.num_classes; ++k) {
      if (!fresh[static_cast<size_t>(k)]) continue;  // No new data: no verdict.
      ClassMonitor& m = monitors_[static_cast<size_t>(k)];
      // Evaluate the newest max(4, batch_count) pooled instances: frequent
      // classes use exactly this batch's data (undiluted signal); rare
      // classes borrow a few recent older instances to tame variance.
      int n_eval = std::max(8, batch_count[static_cast<size_t>(k)]);
      n_eval = std::min<int>(n_eval, static_cast<int>(m.recent.size()));
      for (int i = 0; i < n_eval; ++i) {
        const auto& x = m.recent[m.recent.size() - 1 - static_cast<size_t>(i)];
        r_sum[static_cast<size_t>(k)] += rbm_->ReconstructionError(x, k);
      }
      r_count[static_cast<size_t>(k)] = n_eval;
    }
  }

  // ---- Decide: feed monitors and run the per-class drift tests.
  bool any_drift = false;
  if (!warm) {
    for (int k = 0; k < params_.num_classes; ++k) {
      if (r_count[static_cast<size_t>(k)] == 0) continue;
      ClassMonitor& m = monitors_[static_cast<size_t>(k)];
      double r = r_sum[static_cast<size_t>(k)] /
                 static_cast<double>(r_count[static_cast<size_t>(k)]);
      m.last_r = r;
      ++m.batches_seen;

      // Jump-test z-score against the EWMA baseline (before updating it).
      // The variance floor keeps a freshly warmed (near-constant) baseline
      // from turning ordinary fluctuations into huge z-scores.
      double sd = std::max(m.baseline.StdDev(), params_.sigma_floor);
      m.last_z = m.baseline.n >= params_.min_batches
                     ? (r - m.baseline.mean) / sd
                     : 0.0;
      // Classic one-sided CUSUM on the z-score: stable phases (z ~ 0) drain
      // it by `slack` per batch, persistent elevation accumulates.
      m.cusum = std::max(0.0, m.cusum + m.last_z - params_.cusum_slack);

      m.adwin->AddValue(r);
      // Self-adaptive trend window, driven by ADWIN's current width
      // (Sec. V-B: "we propose to use a self-adaptive window size [19]").
      long long w = m.adwin->width();
      w = std::clamp<long long>(w, params_.trend_window_min,
                                params_.trend_window_max);
      m.trend->set_window(static_cast<size_t>(w));
      m.trend->Push(r);

      double slope = m.trend->Slope();
      m.trend_history.push_back(slope);
      size_t cap = 2 * static_cast<size_t>(params_.granger_window);
      while (m.trend_history.size() > cap) m.trend_history.pop_front();

      bool drifted = false;
      if (m.batches_seen >= params_.min_batches && DecideDrift(&m)) {
        any_drift = true;
        drifted = true;
        drifted_.push_back(k);
        ResetMonitor(&m);
      }
      if (!drifted) {
        m.baseline.Add(r, params_.baseline_decay);
        m.slope_stats.Add(slope);
      }
    }
  }
  if (any_drift) {
    state_ = DetectorState::kDrift;
  }

  // ---- Adapt: online CD-k update with the skew-insensitive loss. After a
  // detected drift the batch is replayed to accelerate re-alignment.
  rbm_->TrainBatch(pending_.data(), pending_used_);
  if (any_drift) {
    for (int i = 0; i < params_.post_drift_boost; ++i) {
      rbm_->TrainBatch(pending_.data(), pending_used_);
    }
  }
}

bool RbmIm::JumpTest(ClassMonitor* m) const {
  if (m->baseline.n < params_.min_batches) return false;
  return m->last_z > params_.jump_sigmas ||
         m->cusum > params_.cusum_threshold;
}

bool RbmIm::TrendTest(ClassMonitor* m) const {
  // Reconstruction error must actually be deteriorating...
  bool error_increasing =
      m->trend->Slope() > 0.0 && m->last_r > m->trend->Mean();

  // ...with a slope that is an outlier of the class's own history...
  bool slope_outlier = false;
  if (m->slope_stats.count() >= static_cast<uint64_t>(params_.min_batches)) {
    double sd = m->slope_stats.StdDev();
    if (sd > 1e-12) {
      slope_outlier = (m->trend->Slope() - m->slope_stats.mean()) >
                      params_.slope_sigmas * sd;
    }
  }
  if (!error_increasing || !slope_outlier) return false;

  // ...and the Granger stage (Sec. V-B) must fail to tie the previous and
  // current trend windows causally (continuity lost => drift).
  size_t need = 2 * static_cast<size_t>(params_.granger_window);
  if (m->trend_history.size() < need) return true;  // Magnitude-only early.
  std::vector<double> prev(m->trend_history.begin(),
                           m->trend_history.begin() +
                               static_cast<long>(params_.granger_window));
  std::vector<double> cur(m->trend_history.begin() +
                              static_cast<long>(params_.granger_window),
                          m->trend_history.end());
  GrangerResult g = GrangerCausalityFirstDiff(prev, cur, params_.granger_lag,
                                              params_.granger_alpha);
  return !g.valid || !g.causality_rejected;
}

bool RbmIm::DecideDrift(ClassMonitor* m) {
  switch (params_.trigger) {
    case Trigger::kZScore:
      return JumpTest(m);
    case Trigger::kAdwinOnly:
      return m->adwin->state() == DetectorState::kDrift &&
             m->last_r > m->trend->Mean();
    case Trigger::kGranger:
      return TrendTest(m);
    case Trigger::kCombined:
      // Jump test catches abrupt mismatches; the trend/Granger path slow
      // deteriorations; the ADWIN cut sustained mean shifts of R that are
      // individually too small for either (long gradual transitions).
      return JumpTest(m) || TrendTest(m) ||
             (m->adwin->state() == DetectorState::kDrift &&
              m->last_r > m->baseline.mean +
                              std::max(m->baseline.StdDev(),
                                       params_.sigma_floor));
  }
  return false;
}

}  // namespace ccd
