#include "core/rbm.h"

#include <algorithm>
#include <cmath>

#include "io/codecs.h"

namespace ccd {
namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

double Softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return 0.0;
  return std::log1p(std::exp(x));
}

}  // namespace

Rbm::Rbm(const Params& params, uint64_t seed) : params_(params), rng_(seed) {
  const size_t v = static_cast<size_t>(params_.visible);
  const size_t h = static_cast<size_t>(params_.hidden);
  const size_t z = static_cast<size_t>(params_.classes);
  w_.resize(v * h);
  u_.resize(h * z);
  for (double& x : w_) x = rng_.Gaussian(0.0, params_.weight_init_sigma);
  for (double& x : u_) x = rng_.Gaussian(0.0, params_.weight_init_sigma);
  a_.assign(v, 0.0);
  b_.assign(h, 0.0);
  c_.assign(z, 0.0);
  class_counts_.assign(z, 0.0);
}

std::vector<double> Rbm::HiddenProbs(const std::vector<double>& v,
                                     const std::vector<double>& z) const {
  std::vector<double> ph;
  HiddenProbsInto(v, z, &ph);
  return ph;
}

void Rbm::HiddenProbsInto(const std::vector<double>& v,
                          const std::vector<double>& z,
                          std::vector<double>* out) const {
  std::vector<double>& ph = *out;
  ph.resize(static_cast<size_t>(params_.hidden));
  for (int j = 0; j < params_.hidden; ++j) {
    double act = b_[static_cast<size_t>(j)];
    for (int i = 0; i < params_.visible; ++i) {
      act += v[static_cast<size_t>(i)] * Wc(i, j);
    }
    for (int k = 0; k < params_.classes; ++k) {
      act += z[static_cast<size_t>(k)] * Uc(j, k);
    }
    ph[static_cast<size_t>(j)] = Sigmoid(act);
  }
}

std::vector<double> Rbm::VisibleProbs(const std::vector<double>& h) const {
  std::vector<double> pv;
  VisibleProbsInto(h, &pv);
  return pv;
}

void Rbm::VisibleProbsInto(const std::vector<double>& h,
                           std::vector<double>* out) const {
  std::vector<double>& pv = *out;
  pv.resize(static_cast<size_t>(params_.visible));
  for (int i = 0; i < params_.visible; ++i) {
    double act = a_[static_cast<size_t>(i)];
    for (int j = 0; j < params_.hidden; ++j) {
      act += h[static_cast<size_t>(j)] * Wc(i, j);
    }
    pv[static_cast<size_t>(i)] = Sigmoid(act);
  }
}

std::vector<double> Rbm::HiddenFromVisible(const std::vector<double>& v) const {
  std::vector<double> ph;
  HiddenFromVisibleInto(v, &ph);
  return ph;
}

void Rbm::HiddenFromVisibleInto(const std::vector<double>& v,
                                std::vector<double>* out) const {
  std::vector<double>& ph = *out;
  ph.resize(static_cast<size_t>(params_.hidden));
  for (int j = 0; j < params_.hidden; ++j) {
    double act = b_[static_cast<size_t>(j)];
    for (int i = 0; i < params_.visible; ++i) {
      act += v[static_cast<size_t>(i)] * Wc(i, j);
    }
    ph[static_cast<size_t>(j)] = Sigmoid(act);
  }
}

std::vector<double> Rbm::ClassReadout(const std::vector<double>& v) const {
  std::vector<double> out;
  ClassReadoutInto(v, &out);
  return out;
}

void Rbm::ClassReadoutInto(const std::vector<double>& v,
                           std::vector<double>* out) const {
  HiddenFromVisibleInto(v, &scratch_.h2);
  ClassProbsInto(scratch_.h2, out);
}

std::vector<double> Rbm::ClassProbs(const std::vector<double>& h) const {
  std::vector<double> logits;
  ClassProbsInto(h, &logits);
  return logits;
}

void Rbm::ClassProbsInto(const std::vector<double>& h,
                         std::vector<double>* out) const {
  std::vector<double>& logits = *out;
  logits.resize(static_cast<size_t>(params_.classes));
  double max_logit = -1e300;
  for (int k = 0; k < params_.classes; ++k) {
    double act = c_[static_cast<size_t>(k)];
    for (int j = 0; j < params_.hidden; ++j) {
      act += h[static_cast<size_t>(j)] * Uc(j, k);
    }
    logits[static_cast<size_t>(k)] = act;
    if (act > max_logit) max_logit = act;
  }
  double total = 0.0;
  for (double& l : logits) {
    l = std::exp(l - max_logit);
    total += l;
  }
  for (double& l : logits) l /= total;
}

double Rbm::ClassWeight(int y) const {
  if (!params_.class_balanced) return 1.0;
  // Effective number of samples E_n = (1 - beta^n) / (1 - beta); raw
  // weight = 1/E_n. Normalize by the mean raw weight over observed classes
  // so the global learning-rate scale is unaffected by K or stream length.
  auto raw = [this](double n) {
    if (n <= 0.0) return 1.0;  // Unseen class: maximal raw weight.
    double eff = (1.0 - std::pow(params_.beta, n)) / (1.0 - params_.beta);
    return 1.0 / eff;
  };
  double sum = 0.0;
  int seen = 0;
  for (double n : class_counts_) {
    if (n > 0.0) {
      sum += raw(n);
      ++seen;
    }
  }
  if (seen == 0) return 1.0;
  double mean = sum / seen;
  double w = raw(class_counts_[static_cast<size_t>(y)]) / mean;
  // Clamp to keep one rare instance from destabilizing the whole model.
  return w > 50.0 ? 50.0 : w;
}

void Rbm::TrainBatch(const std::vector<Instance>& batch) {
  TrainBatch(batch.data(), batch.size());
}

void Rbm::TrainBatch(const Instance* batch, size_t count) {
  if (count == 0) return;
  const size_t v_n = static_cast<size_t>(params_.visible);
  const size_t h_n = static_cast<size_t>(params_.hidden);
  const size_t z_n = static_cast<size_t>(params_.classes);

  std::vector<double>& gw = scratch_.gw;
  std::vector<double>& gu = scratch_.gu;
  std::vector<double>& ga = scratch_.ga;
  std::vector<double>& gb = scratch_.gb;
  std::vector<double>& gc = scratch_.gc;
  gw.assign(v_n * h_n, 0.0);
  gu.assign(h_n * z_n, 0.0);
  ga.assign(v_n, 0.0);
  gb.assign(h_n, 0.0);
  gc.assign(z_n, 0.0);

  // Update the decayed class counts first so this batch's weights reflect
  // its own composition.
  for (size_t bi = 0; bi < count; ++bi) {
    const Instance& s = batch[bi];
    for (double& n : class_counts_) n *= params_.count_decay;
    if (s.label >= 0 && s.label < params_.classes) {
      class_counts_[static_cast<size_t>(s.label)] += 1.0;
    }
  }

  std::vector<double>& z0 = scratch_.z0;
  std::vector<double>& h_state = scratch_.h_state;
  z0.resize(z_n);
  h_state.resize(h_n);
  for (size_t bi = 0; bi < count; ++bi) {
    const Instance& s = batch[bi];
    if (s.label < 0 || s.label >= params_.classes) continue;
    const std::vector<double>& v0 = s.features;
    std::fill(z0.begin(), z0.end(), 0.0);
    z0[static_cast<size_t>(s.label)] = 1.0;
    double weight = ClassWeight(s.label);

    // Positive phase: E_data[.] with clamped (v0, z0).
    std::vector<double>& ph0 = scratch_.ph0;
    HiddenProbsInto(v0, z0, &ph0);

    // Negative phase: CD-k. Hidden states are sampled; visible and class
    // reconstructions use probabilities (standard CD practice).
    for (size_t j = 0; j < h_n; ++j) {
      h_state[j] = rng_.Bernoulli(ph0[j]) ? 1.0 : 0.0;
    }
    std::vector<double>& vk = scratch_.vk;
    std::vector<double>& zk = scratch_.zk;
    std::vector<double>& phk = scratch_.phk;
    for (int step = 0; step < params_.cd_steps; ++step) {
      VisibleProbsInto(h_state, &vk);
      ClassProbsInto(h_state, &zk);
      HiddenProbsInto(vk, zk, &phk);
      if (step + 1 < params_.cd_steps) {
        for (size_t j = 0; j < h_n; ++j) {
          h_state[j] = rng_.Bernoulli(phk[j]) ? 1.0 : 0.0;
        }
      }
    }

    // Weighted gradient accumulation: E_data - E_recon (Eq. 16).
    for (size_t i = 0; i < v_n; ++i) {
      double vi0 = v0[i], vik = vk[i];
      for (size_t j = 0; j < h_n; ++j) {
        gw[i * h_n + j] += weight * (vi0 * ph0[j] - vik * phk[j]);
      }
      ga[i] += weight * (vi0 - vik);
    }
    for (size_t j = 0; j < h_n; ++j) {
      for (size_t k = 0; k < z_n; ++k) {
        gu[j * z_n + k] += weight * (ph0[j] * z0[k] - phk[j] * zk[k]);
      }
      gb[j] += weight * (ph0[j] - phk[j]);
    }
    for (size_t k = 0; k < z_n; ++k) {
      gc[k] += weight * (z0[k] - zk[k]);
    }

    // Discriminative step: cross-entropy gradient of -log P(y | v),
    // backpropagated through the visible-only hidden encoding (one-hidden-
    // layer MLP step on U, c, W, b). This is what makes the class read-out
    // track p(y|x) sharply enough for Eq. 26's label term to carry signal.
    if (params_.discriminative_rate > 0.0) {
      std::vector<double>& hv = scratch_.hv;
      std::vector<double>& py = scratch_.py;
      HiddenFromVisibleInto(v0, &hv);
      ClassProbsInto(hv, &py);
      // Per-instance SGD step (unlike the CD update, which is a batch
      // mean); the cost clamp keeps extreme minority weights from blowing
      // up a single step.
      double dlr = params_.discriminative_rate * std::min(weight, 5.0);
      std::vector<double>& dh = scratch_.dh;
      dh.assign(h_n, 0.0);
      for (size_t k = 0; k < z_n; ++k) {
        double err = z0[k] - py[k];
        if (err == 0.0) continue;
        c_[k] += dlr * err;
        for (size_t j = 0; j < h_n; ++j) {
          dh[j] += err * Uc(static_cast<int>(j), static_cast<int>(k));
          U(static_cast<int>(j), static_cast<int>(k)) += dlr * err * hv[j];
        }
      }
      for (size_t j = 0; j < h_n; ++j) {
        double g = dh[j] * hv[j] * (1.0 - hv[j]);
        if (g == 0.0) continue;
        b_[j] += dlr * g;
        for (size_t i = 0; i < v_n; ++i) {
          W(static_cast<int>(i), static_cast<int>(j)) += dlr * g * v0[i];
        }
      }
    }
  }

  double lr = params_.learning_rate / static_cast<double>(count);
  for (size_t i = 0; i < w_.size(); ++i) w_[i] += lr * gw[i];
  for (size_t i = 0; i < u_.size(); ++i) u_[i] += lr * gu[i];
  for (size_t i = 0; i < a_.size(); ++i) a_[i] += lr * ga[i];
  for (size_t i = 0; i < b_.size(); ++i) b_[i] += lr * gb[i];
  for (size_t i = 0; i < c_.size(); ++i) c_[i] += lr * gc[i];
}

double Rbm::ReconstructionError(const std::vector<double>& x, int y) const {
  std::vector<double>& z = scratch_.z;
  z.assign(static_cast<size_t>(params_.classes), 0.0);
  if (y >= 0 && y < params_.classes) z[static_cast<size_t>(y)] = 1.0;
  std::vector<double>& h = scratch_.h;
  std::vector<double>& xr = scratch_.xr;
  std::vector<double>& zr = scratch_.zr;
  HiddenProbsInto(x, z, &h);  // Mean-field h | v, z (Eq. 25).
  VisibleProbsInto(h, &xr);   // Eq. 23.
  ClassReadoutInto(x, &zr);   // Eq. 24, read out from v.
  double sq = 0.0;
  for (int i = 0; i < params_.visible; ++i) {
    double d = x[static_cast<size_t>(i)] - xr[static_cast<size_t>(i)];
    sq += d * d;
  }
  for (int k = 0; k < params_.classes; ++k) {
    double d = z[static_cast<size_t>(k)] - zr[static_cast<size_t>(k)];
    sq += d * d;
  }
  // Eq. 26 with a 1/sqrt(V+Z) normalization for a bounded signal.
  return std::sqrt(sq) /
         std::sqrt(static_cast<double>(params_.visible + params_.classes));
}

std::vector<double> Rbm::ClassifyProbs(const std::vector<double>& x) const {
  std::vector<double> logits;
  ClassifyProbsInto(x, &logits);
  return logits;
}

void Rbm::ClassifyProbsInto(const std::vector<double>& x,
                            std::vector<double>* out) const {
  // Free-energy discriminative read-out:
  //   log P(y|x) ∝ c_y + sum_j softplus(b_j + W_.j x + u_jy).
  std::vector<double>& base = scratch_.base;
  base.resize(static_cast<size_t>(params_.hidden));
  for (int j = 0; j < params_.hidden; ++j) {
    double act = b_[static_cast<size_t>(j)];
    for (int i = 0; i < params_.visible; ++i) {
      act += x[static_cast<size_t>(i)] * Wc(i, j);
    }
    base[static_cast<size_t>(j)] = act;
  }
  std::vector<double>& logits = *out;
  logits.resize(static_cast<size_t>(params_.classes));
  double max_logit = -1e300;
  for (int k = 0; k < params_.classes; ++k) {
    double l = c_[static_cast<size_t>(k)];
    for (int j = 0; j < params_.hidden; ++j) {
      l += Softplus(base[static_cast<size_t>(j)] + Uc(j, k));
    }
    logits[static_cast<size_t>(k)] = l;
    if (l > max_logit) max_logit = l;
  }
  double total = 0.0;
  for (double& l : logits) {
    l = std::exp(l - max_logit);
    total += l;
  }
  for (double& l : logits) l /= total;
}

double Rbm::Energy(const std::vector<double>& v, const std::vector<double>& h,
                   const std::vector<double>& z) const {
  double e = 0.0;
  for (int i = 0; i < params_.visible; ++i) {
    e -= v[static_cast<size_t>(i)] * a_[static_cast<size_t>(i)];
  }
  for (int j = 0; j < params_.hidden; ++j) {
    e -= h[static_cast<size_t>(j)] * b_[static_cast<size_t>(j)];
  }
  for (int k = 0; k < params_.classes; ++k) {
    e -= z[static_cast<size_t>(k)] * c_[static_cast<size_t>(k)];
  }
  for (int i = 0; i < params_.visible; ++i) {
    for (int j = 0; j < params_.hidden; ++j) {
      e -= v[static_cast<size_t>(i)] * h[static_cast<size_t>(j)] * Wc(i, j);
    }
  }
  for (int j = 0; j < params_.hidden; ++j) {
    for (int k = 0; k < params_.classes; ++k) {
      e -= h[static_cast<size_t>(j)] * z[static_cast<size_t>(k)] * Uc(j, k);
    }
  }
  return e;
}

void Rbm::SaveState(io::Writer& w) const {
  w.BeginSection("rbm");
  w.I64(params_.visible);
  w.I64(params_.hidden);
  w.I64(params_.classes);
  w.F64(params_.learning_rate);
  w.F64(params_.discriminative_rate);
  w.I64(params_.cd_steps);
  w.F64(params_.weight_init_sigma);
  w.Bool(params_.class_balanced);
  w.F64(params_.beta);
  w.F64(params_.count_decay);
  io::WriteRng(w, rng_);
  w.F64Array(w_);
  w.F64Array(u_);
  w.F64Array(a_);
  w.F64Array(b_);
  w.F64Array(c_);
  w.F64Array(class_counts_);
  w.EndSection();
}

void Rbm::LoadState(io::Reader& r) {
  r.BeginSection("rbm");
  Params p;
  p.visible = static_cast<int>(r.I64("rbm.visible"));
  p.hidden = static_cast<int>(r.I64("rbm.hidden"));
  p.classes = static_cast<int>(r.I64("rbm.classes"));
  p.learning_rate = r.F64("rbm.learning_rate");
  p.discriminative_rate = r.F64("rbm.discriminative_rate");
  p.cd_steps = static_cast<int>(r.I64("rbm.cd_steps"));
  p.weight_init_sigma = r.F64("rbm.weight_init_sigma");
  p.class_balanced = r.Bool("rbm.class_balanced");
  p.beta = r.F64("rbm.beta");
  p.count_decay = r.F64("rbm.count_decay");
  if (p.visible <= 0 || p.hidden <= 0 || p.classes <= 0) {
    r.Fail("rbm.visible", "non-positive layer dimension");
  }
  io::ReadRngInto(r, &rng_);
  std::vector<double> w_in = r.F64Array("rbm.w");
  std::vector<double> u_in = r.F64Array("rbm.u");
  std::vector<double> a_in = r.F64Array("rbm.a");
  std::vector<double> b_in = r.F64Array("rbm.b");
  std::vector<double> c_in = r.F64Array("rbm.c");
  std::vector<double> counts_in = r.F64Array("rbm.class_counts");
  size_t v = static_cast<size_t>(p.visible);
  size_t h = static_cast<size_t>(p.hidden);
  size_t z = static_cast<size_t>(p.classes);
  if (w_in.size() != v * h || u_in.size() != h * z || a_in.size() != v ||
      b_in.size() != h || c_in.size() != z || counts_in.size() != z) {
    r.Fail("rbm.w", "weight array sizes disagree with layer dimensions " +
                        std::to_string(p.visible) + "x" +
                        std::to_string(p.hidden) + "x" +
                        std::to_string(p.classes));
  }
  params_ = p;
  w_ = std::move(w_in);
  u_ = std::move(u_in);
  a_ = std::move(a_in);
  b_ = std::move(b_in);
  c_ = std::move(c_in);
  class_counts_ = std::move(counts_in);
  r.EndSection("rbm");
}

}  // namespace ccd
