#ifndef CCD_CLASSIFIERS_CS_PERCEPTRON_TREE_H_
#define CCD_CLASSIFIERS_CS_PERCEPTRON_TREE_H_

#include <memory>
#include <vector>

#include "classifiers/classifier.h"
#include "classifiers/perceptron.h"
#include "stats/welford.h"

namespace ccd {

/// Adaptive Cost-Sensitive Perceptron Tree (after Krawczyk & Skryjomski,
/// ECML PKDD 2017) — the base classifier of the paper's experimental study.
///
/// A Hoeffding-style incremental decision tree whose leaves hold
/// cost-sensitive softmax perceptrons:
///
///  * every leaf keeps per-class Gaussian estimators for each feature;
///    every `grace_period` instances it evaluates candidate binary splits
///    (thresholds at the class means) by information gain and splits when
///    the Hoeffding bound separates the two best candidates (or they tie
///    within `tie_threshold`);
///  * each leaf trains a SoftmaxPerceptron on the instances it receives,
///    with updates weighted by inverse class frequency (skew-insensitive);
///  * predictions route to a leaf and blend the leaf perceptron's scores
///    with the leaf's class frequencies while the perceptron is young.
///
/// The tree has no embedded drift handling by design: it relies on an
/// external drift detector to call Reset() — exactly the coupling the
/// paper's experiments measure.
class CsPerceptronTree : public OnlineClassifier {
 public:
  struct Params {
    int grace_period = 200;
    double split_confidence = 1e-6;  ///< Hoeffding bound delta.
    double tie_threshold = 0.05;
    int max_depth = 10;
    int max_leaves = 64;
    SoftmaxPerceptron::Params leaf_params;
  };

  explicit CsPerceptronTree(const StreamSchema& schema)
      : CsPerceptronTree(schema, Params()) {}
  CsPerceptronTree(const StreamSchema& schema, const Params& params);

  const StreamSchema& schema() const override { return schema_; }
  void Train(const Instance& instance) override;
  std::vector<double> PredictScores(const Instance& instance) const override;
  void PredictScoresInto(const Instance& instance,
                         std::vector<double>& out) const override;
  void Reset() override;
  std::unique_ptr<OnlineClassifier> Clone() const override;
  /// Deep copy of the whole tree — node topology, per-leaf Gaussian
  /// estimators and trained leaf perceptrons.
  std::unique_ptr<OnlineClassifier> CloneState() const override;
  std::string name() const override { return "CSPerceptronTree"; }
  /// Durable form of CloneState(): serializes node topology, per-leaf
  /// Gaussian estimators and the trained leaf perceptrons.
  void SaveState(io::Writer& writer) const override;
  void LoadState(io::Reader& reader) override;

  int num_leaves() const { return num_leaves_; }
  int depth() const;

 private:
  struct Leaf {
    std::vector<double> class_counts;
    /// feature_stats[i][k] = Welford of feature i under class k.
    std::vector<std::vector<Welford>> feature_stats;
    std::unique_ptr<SoftmaxPerceptron> perceptron;
    int since_split_check = 0;
    double total = 0.0;
  };

  struct Node {
    int feature = -1;  ///< -1 marks a leaf.
    double threshold = 0.0;
    int left = -1, right = -1;
    int depth = 0;
    std::unique_ptr<Leaf> leaf;
  };

  int Route(const Instance& instance) const;
  void InitLeaf(Node* node);
  void MaybeSplit(int node_index);
  double Entropy(const std::vector<double>& counts) const;
  /// Information gain of splitting `leaf` on (feature, threshold) with
  /// class-conditional Gaussian feature models.
  double SplitGain(const Leaf& leaf, int feature, double threshold) const;

  StreamSchema schema_;
  Params params_;
  std::vector<Node> nodes_;
  int num_leaves_ = 0;
};

}  // namespace ccd

#endif  // CCD_CLASSIFIERS_CS_PERCEPTRON_TREE_H_
