#ifndef CCD_CLASSIFIERS_NAIVE_BAYES_H_
#define CCD_CLASSIFIERS_NAIVE_BAYES_H_

#include <memory>
#include <vector>

#include "classifiers/classifier.h"
#include "stats/welford.h"

namespace ccd {

/// Online Gaussian naive Bayes: per class and feature an incremental
/// mean/variance estimate, with Laplace-smoothed class priors. A standard
/// lightweight streaming learner; used in tests and as an alternative leaf
/// predictor.
class GaussianNaiveBayes : public OnlineClassifier {
 public:
  explicit GaussianNaiveBayes(const StreamSchema& schema);

  const StreamSchema& schema() const override { return schema_; }
  void Train(const Instance& instance) override;
  std::vector<double> PredictScores(const Instance& instance) const override;
  void PredictScoresInto(const Instance& instance,
                         std::vector<double>& out) const override;
  void Reset() override;
  std::unique_ptr<OnlineClassifier> Clone() const override;
  std::unique_ptr<OnlineClassifier> CloneState() const override {
    return std::make_unique<GaussianNaiveBayes>(*this);
  }
  std::string name() const override { return "GaussianNB"; }
  void SaveState(io::Writer& writer) const override;
  void LoadState(io::Reader& reader) override;

 private:
  StreamSchema schema_;
  /// stats_[k][i] models feature i under class k.
  std::vector<std::vector<Welford>> stats_;
  std::vector<double> class_counts_;
  double total_ = 0.0;
};

}  // namespace ccd

#endif  // CCD_CLASSIFIERS_NAIVE_BAYES_H_
