#include "classifiers/classifier.h"

namespace ccd {

int OnlineClassifier::Predict(const Instance& instance) const {
  std::vector<double> scores = PredictScores(instance);
  int best = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[best]) best = static_cast<int>(i);
  }
  return best;
}

}  // namespace ccd
