#include "classifiers/classifier.h"

#include <stdexcept>

namespace ccd {

std::unique_ptr<OnlineClassifier> OnlineClassifier::CloneState() const {
  throw std::logic_error("classifier '" + name() +
                         "' does not implement CloneState(); it cannot "
                         "participate in sharded evaluation / state handoff");
}

void OnlineClassifier::SaveState(io::Writer& /*writer*/) const {
  throw std::logic_error("classifier '" + name() +
                         "' does not implement SaveState(); it cannot be "
                         "persisted or shipped across processes");
}

void OnlineClassifier::LoadState(io::Reader& /*reader*/) {
  throw std::logic_error("classifier '" + name() +
                         "' does not implement LoadState(); it cannot be "
                         "restored from a snapshot");
}

void OnlineClassifier::PredictScoresInto(const Instance& instance,
                                         std::vector<double>& out) const {
  out = PredictScores(instance);
}

int OnlineClassifier::Predict(const Instance& instance) const {
  std::vector<double> scores = PredictScores(instance);
  int best = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[best]) best = static_cast<int>(i);
  }
  return best;
}

}  // namespace ccd
