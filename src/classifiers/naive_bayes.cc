#include "classifiers/naive_bayes.h"

#include <cmath>

namespace ccd {

GaussianNaiveBayes::GaussianNaiveBayes(const StreamSchema& schema)
    : schema_(schema) {
  Reset();
}

void GaussianNaiveBayes::Reset() {
  stats_.assign(static_cast<size_t>(schema_.num_classes),
                std::vector<Welford>(static_cast<size_t>(schema_.num_features)));
  class_counts_.assign(static_cast<size_t>(schema_.num_classes), 0.0);
  total_ = 0.0;
}

void GaussianNaiveBayes::Train(const Instance& instance) {
  int y = instance.label;
  if (y < 0 || y >= schema_.num_classes) return;
  auto& row = stats_[static_cast<size_t>(y)];
  size_t d = std::min(instance.features.size(), row.size());
  for (size_t i = 0; i < d; ++i) row[i].Add(instance.features[i]);
  class_counts_[static_cast<size_t>(y)] += 1.0;
  total_ += 1.0;
}

std::vector<double> GaussianNaiveBayes::PredictScores(
    const Instance& instance) const {
  const size_t k = stats_.size();
  std::vector<double> log_probs(k, 0.0);
  double max_lp = -1e300;
  for (size_t c = 0; c < k; ++c) {
    // Laplace-smoothed prior.
    double lp = std::log((class_counts_[c] + 1.0) /
                         (total_ + static_cast<double>(k)));
    const auto& row = stats_[c];
    size_t d = std::min(instance.features.size(), row.size());
    for (size_t i = 0; i < d; ++i) {
      if (row[i].count() < 2) continue;
      double var = row[i].Variance() + 1e-4;  // Variance floor.
      double diff = instance.features[i] - row[i].mean();
      lp += -0.5 * (std::log(2.0 * M_PI * var) + diff * diff / var);
    }
    log_probs[c] = lp;
    if (lp > max_lp) max_lp = lp;
  }
  double totalp = 0.0;
  for (double& lp : log_probs) {
    lp = std::exp(lp - max_lp);
    totalp += lp;
  }
  for (double& lp : log_probs) lp /= totalp;
  return log_probs;
}

std::unique_ptr<OnlineClassifier> GaussianNaiveBayes::Clone() const {
  return std::make_unique<GaussianNaiveBayes>(schema_);
}

}  // namespace ccd
