#include "classifiers/naive_bayes.h"

#include <cmath>

#include "io/codecs.h"

namespace ccd {

GaussianNaiveBayes::GaussianNaiveBayes(const StreamSchema& schema)
    : schema_(schema) {
  Reset();
}

void GaussianNaiveBayes::Reset() {
  stats_.assign(static_cast<size_t>(schema_.num_classes),
                std::vector<Welford>(static_cast<size_t>(schema_.num_features)));
  class_counts_.assign(static_cast<size_t>(schema_.num_classes), 0.0);
  total_ = 0.0;
}

void GaussianNaiveBayes::Train(const Instance& instance) {
  int y = instance.label;
  if (y < 0 || y >= schema_.num_classes) return;
  auto& row = stats_[static_cast<size_t>(y)];
  size_t d = std::min(instance.features.size(), row.size());
  for (size_t i = 0; i < d; ++i) row[i].Add(instance.features[i]);
  class_counts_[static_cast<size_t>(y)] += 1.0;
  total_ += 1.0;
}

std::vector<double> GaussianNaiveBayes::PredictScores(
    const Instance& instance) const {
  std::vector<double> scores;
  PredictScoresInto(instance, scores);
  return scores;
}

void GaussianNaiveBayes::PredictScoresInto(const Instance& instance,
                                           std::vector<double>& out) const {
  const size_t k = stats_.size();
  out.assign(k, 0.0);
  std::vector<double>& log_probs = out;
  double max_lp = -1e300;
  for (size_t c = 0; c < k; ++c) {
    // Laplace-smoothed prior.
    double lp = std::log((class_counts_[c] + 1.0) /
                         (total_ + static_cast<double>(k)));
    const auto& row = stats_[c];
    size_t d = std::min(instance.features.size(), row.size());
    for (size_t i = 0; i < d; ++i) {
      if (row[i].count() < 2) continue;
      double var = row[i].Variance() + 1e-4;  // Variance floor.
      double diff = instance.features[i] - row[i].mean();
      lp += -0.5 * (std::log(2.0 * M_PI * var) + diff * diff / var);
    }
    log_probs[c] = lp;
    if (lp > max_lp) max_lp = lp;
  }
  double totalp = 0.0;
  for (double& lp : log_probs) {
    lp = std::exp(lp - max_lp);
    totalp += lp;
  }
  for (double& lp : log_probs) lp /= totalp;
}

std::unique_ptr<OnlineClassifier> GaussianNaiveBayes::Clone() const {
  return std::make_unique<GaussianNaiveBayes>(schema_);
}

void GaussianNaiveBayes::SaveState(io::Writer& w) const {
  w.BeginSection("GaussianNB");
  io::WriteSchema(w, schema_);
  w.U32(static_cast<uint32_t>(stats_.size()));
  for (const std::vector<Welford>& row : stats_) {
    w.U32(static_cast<uint32_t>(row.size()));
    for (const Welford& s : row) io::WriteWelford(w, s);
  }
  w.F64Array(class_counts_);
  w.F64(total_);
  w.EndSection();
}

void GaussianNaiveBayes::LoadState(io::Reader& r) {
  r.BeginSection("GaussianNB");
  schema_ = io::ReadSchema(r);
  uint32_t k = r.Count("nb.stats");
  if (k != static_cast<uint32_t>(schema_.num_classes)) {
    r.Fail("nb.stats", std::to_string(k) + " class rows, schema has " +
                           std::to_string(schema_.num_classes));
  }
  stats_.clear();
  for (uint32_t c = 0; c < k; ++c) {
    uint32_t d = r.Count("nb.stats.row");
    if (d != static_cast<uint32_t>(schema_.num_features)) {
      r.Fail("nb.stats.row", std::to_string(d) + " features, schema has " +
                                 std::to_string(schema_.num_features));
    }
    std::vector<Welford> row;
    row.reserve(d);
    for (uint32_t i = 0; i < d; ++i) row.push_back(io::ReadWelford(r));
    stats_.push_back(std::move(row));
  }
  class_counts_ = r.F64Array("nb.class_counts");
  if (class_counts_.size() != static_cast<size_t>(schema_.num_classes)) {
    r.Fail("nb.class_counts", "size does not match schema");
  }
  total_ = r.F64("nb.total");
  r.EndSection("GaussianNB");
}

}  // namespace ccd
