#include "classifiers/cs_perceptron_tree.h"

#include <algorithm>
#include <cmath>

#include "io/codecs.h"
#include "stats/distributions.h"

namespace ccd {

CsPerceptronTree::CsPerceptronTree(const StreamSchema& schema,
                                   const Params& params)
    : schema_(schema), params_(params) {
  Reset();
}

void CsPerceptronTree::Reset() {
  nodes_.clear();
  nodes_.emplace_back();
  nodes_[0].depth = 0;
  InitLeaf(&nodes_[0]);
  num_leaves_ = 1;
}

void CsPerceptronTree::InitLeaf(Node* node) {
  node->feature = -1;
  node->leaf = std::make_unique<Leaf>();
  Leaf& leaf = *node->leaf;
  leaf.class_counts.assign(static_cast<size_t>(schema_.num_classes), 0.0);
  leaf.feature_stats.assign(
      static_cast<size_t>(schema_.num_features),
      std::vector<Welford>(static_cast<size_t>(schema_.num_classes)));
  leaf.perceptron =
      std::make_unique<SoftmaxPerceptron>(schema_, params_.leaf_params);
}

int CsPerceptronTree::Route(const Instance& instance) const {
  int cur = 0;
  while (nodes_[static_cast<size_t>(cur)].feature >= 0) {
    const Node& n = nodes_[static_cast<size_t>(cur)];
    double v = n.feature < static_cast<int>(instance.features.size())
                   ? instance.features[static_cast<size_t>(n.feature)]
                   : 0.0;
    cur = v < n.threshold ? n.left : n.right;
  }
  return cur;
}

double CsPerceptronTree::Entropy(const std::vector<double>& counts) const {
  double total = 0.0;
  for (double c : counts) total += c;
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double c : counts) {
    if (c > 0.0) {
      double p = c / total;
      h -= p * std::log2(p);
    }
  }
  return h;
}

double CsPerceptronTree::SplitGain(const Leaf& leaf, int feature,
                                   double threshold) const {
  const size_t k = leaf.class_counts.size();
  std::vector<double> left(k, 0.0), right(k, 0.0);
  double total = 0.0;
  for (size_t c = 0; c < k; ++c) {
    double n = leaf.class_counts[c];
    if (n <= 0.0) continue;
    const Welford& w = leaf.feature_stats[static_cast<size_t>(feature)][c];
    if (w.count() < 2) {
      left[c] += n * 0.5;
      right[c] += n * 0.5;
    } else {
      double sd = std::max(std::sqrt(w.Variance()), 1e-3);
      double p_left = NormalCdf((threshold - w.mean()) / sd);
      left[c] += n * p_left;
      right[c] += n * (1.0 - p_left);
    }
    total += n;
  }
  if (total <= 0.0) return 0.0;
  double nl = 0.0, nr = 0.0;
  for (size_t c = 0; c < k; ++c) {
    nl += left[c];
    nr += right[c];
  }
  double h0 = Entropy(leaf.class_counts);
  double h_split = (nl / total) * Entropy(left) + (nr / total) * Entropy(right);
  return h0 - h_split;
}

void CsPerceptronTree::MaybeSplit(int node_index) {
  Node& node = nodes_[static_cast<size_t>(node_index)];
  Leaf& leaf = *node.leaf;
  if (node.depth >= params_.max_depth || num_leaves_ >= params_.max_leaves) {
    return;
  }

  // Candidate thresholds: per feature, the class-conditional means.
  double best_gain = 0.0, second_gain = 0.0;
  int best_feature = -1;
  double best_threshold = 0.0;
  for (int f = 0; f < schema_.num_features; ++f) {
    for (size_t c = 0; c < leaf.class_counts.size(); ++c) {
      const Welford& w = leaf.feature_stats[static_cast<size_t>(f)][c];
      if (w.count() < 5) continue;
      double gain = SplitGain(leaf, f, w.mean());
      if (gain > best_gain) {
        second_gain = best_gain;
        best_gain = gain;
        best_feature = f;
        best_threshold = w.mean();
      } else if (gain > second_gain) {
        second_gain = gain;
      }
    }
  }
  if (best_feature < 0) return;

  double range = std::log2(std::max(2, schema_.num_classes));
  double eps = HoeffdingBound(range, params_.split_confidence, leaf.total);
  bool separated = best_gain - second_gain > eps;
  bool tie = eps < params_.tie_threshold;
  if (best_gain <= 1e-3 || (!separated && !tie)) return;

  // Split: children inherit the parent's perceptron configuration; their
  // statistics restart (standard Hoeffding-tree behaviour).
  int left_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  int right_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  // note: `node` reference may dangle after emplace_back; re-acquire.
  Node& parent = nodes_[static_cast<size_t>(node_index)];
  nodes_[static_cast<size_t>(left_index)].depth = parent.depth + 1;
  nodes_[static_cast<size_t>(right_index)].depth = parent.depth + 1;
  InitLeaf(&nodes_[static_cast<size_t>(left_index)]);
  InitLeaf(&nodes_[static_cast<size_t>(right_index)]);
  parent.feature = best_feature;
  parent.threshold = best_threshold;
  parent.left = left_index;
  parent.right = right_index;
  parent.leaf.reset();
  num_leaves_ += 1;  // One leaf became two.
}

void CsPerceptronTree::Train(const Instance& instance) {
  int y = instance.label;
  if (y < 0 || y >= schema_.num_classes) return;
  int idx = Route(instance);
  Node& node = nodes_[static_cast<size_t>(idx)];
  Leaf& leaf = *node.leaf;

  leaf.class_counts[static_cast<size_t>(y)] += 1.0;
  leaf.total += 1.0;
  size_t d = std::min(instance.features.size(), leaf.feature_stats.size());
  for (size_t i = 0; i < d; ++i) {
    leaf.feature_stats[i][static_cast<size_t>(y)].Add(instance.features[i]);
  }
  leaf.perceptron->Train(instance);

  if (++leaf.since_split_check >= params_.grace_period) {
    leaf.since_split_check = 0;
    MaybeSplit(idx);
  }
}

std::vector<double> CsPerceptronTree::PredictScores(
    const Instance& instance) const {
  std::vector<double> scores;
  PredictScoresInto(instance, scores);
  return scores;
}

void CsPerceptronTree::PredictScoresInto(const Instance& instance,
                                         std::vector<double>& out) const {
  int idx = Route(instance);
  const Leaf& leaf = *nodes_[static_cast<size_t>(idx)].leaf;
  leaf.perceptron->PredictScoresInto(instance, out);
  std::vector<double>& scores = out;

  // Young leaves have unreliable perceptrons: blend with the leaf's class
  // frequency estimate (Laplace-smoothed), fading out by 100 instances.
  double maturity = std::min(leaf.total / 100.0, 1.0);
  double total = leaf.total + static_cast<double>(schema_.num_classes);
  for (size_t c = 0; c < scores.size(); ++c) {
    double freq = (leaf.class_counts[c] + 1.0) / total;
    scores[c] = maturity * scores[c] + (1.0 - maturity) * freq;
  }
  // Renormalize (the blend keeps it close to 1 already).
  double s = 0.0;
  for (double v : scores) s += v;
  for (double& v : scores) v /= s;
}

int CsPerceptronTree::depth() const {
  int max_depth = 0;
  for (const Node& n : nodes_) max_depth = std::max(max_depth, n.depth);
  return max_depth;
}

std::unique_ptr<OnlineClassifier> CsPerceptronTree::Clone() const {
  return std::make_unique<CsPerceptronTree>(schema_, params_);
}

std::unique_ptr<OnlineClassifier> CsPerceptronTree::CloneState() const {
  auto copy = std::make_unique<CsPerceptronTree>(schema_, params_);
  copy->num_leaves_ = num_leaves_;
  copy->nodes_.clear();
  copy->nodes_.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    Node n;
    n.feature = node.feature;
    n.threshold = node.threshold;
    n.left = node.left;
    n.right = node.right;
    n.depth = node.depth;
    if (node.leaf != nullptr) {
      n.leaf = std::make_unique<Leaf>();
      n.leaf->class_counts = node.leaf->class_counts;
      n.leaf->feature_stats = node.leaf->feature_stats;
      n.leaf->since_split_check = node.leaf->since_split_check;
      n.leaf->total = node.leaf->total;
      if (node.leaf->perceptron != nullptr) {
        n.leaf->perceptron =
            std::make_unique<SoftmaxPerceptron>(*node.leaf->perceptron);
      }
    }
    copy->nodes_.push_back(std::move(n));
  }
  return copy;
}

void CsPerceptronTree::SaveState(io::Writer& w) const {
  w.BeginSection("CSPerceptronTree");
  io::WriteSchema(w, schema_);
  w.I64(params_.grace_period);
  w.F64(params_.split_confidence);
  w.F64(params_.tie_threshold);
  w.I64(params_.max_depth);
  w.I64(params_.max_leaves);
  w.F64(params_.leaf_params.learning_rate);
  w.Bool(params_.leaf_params.cost_sensitive);
  w.F64(params_.leaf_params.count_decay);
  w.F64(params_.leaf_params.max_cost);
  w.I64(num_leaves_);
  w.U32(static_cast<uint32_t>(nodes_.size()));
  for (const Node& node : nodes_) {
    w.I64(node.feature);
    w.F64(node.threshold);
    w.I64(node.left);
    w.I64(node.right);
    w.I64(node.depth);
    w.Bool(node.leaf != nullptr);
    if (node.leaf == nullptr) continue;
    w.F64Array(node.leaf->class_counts);
    w.U32(static_cast<uint32_t>(node.leaf->feature_stats.size()));
    for (const std::vector<Welford>& per_class : node.leaf->feature_stats) {
      w.U32(static_cast<uint32_t>(per_class.size()));
      for (const Welford& s : per_class) io::WriteWelford(w, s);
    }
    w.Bool(node.leaf->perceptron != nullptr);
    if (node.leaf->perceptron != nullptr) {
      node.leaf->perceptron->SaveState(w);
    }
    w.I64(node.leaf->since_split_check);
    w.F64(node.leaf->total);
  }
  w.EndSection();
}

void CsPerceptronTree::LoadState(io::Reader& r) {
  r.BeginSection("CSPerceptronTree");
  schema_ = io::ReadSchema(r);
  params_.grace_period = static_cast<int>(r.I64("tree.grace_period"));
  params_.split_confidence = r.F64("tree.split_confidence");
  params_.tie_threshold = r.F64("tree.tie_threshold");
  params_.max_depth = static_cast<int>(r.I64("tree.max_depth"));
  params_.max_leaves = static_cast<int>(r.I64("tree.max_leaves"));
  params_.leaf_params.learning_rate = r.F64("tree.leaf.learning_rate");
  params_.leaf_params.cost_sensitive = r.Bool("tree.leaf.cost_sensitive");
  params_.leaf_params.count_decay = r.F64("tree.leaf.count_decay");
  params_.leaf_params.max_cost = r.F64("tree.leaf.max_cost");
  num_leaves_ = static_cast<int>(r.I64("tree.num_leaves"));
  uint32_t count = r.Count("tree.nodes");
  if (count == 0) r.Fail("tree.nodes", "a live tree always has a root");
  nodes_.clear();
  nodes_.reserve(count);
  for (uint32_t idx = 0; idx < count; ++idx) {
    Node n;
    n.feature = static_cast<int>(r.I64("tree.node.feature"));
    n.threshold = r.F64("tree.node.threshold");
    n.left = static_cast<int>(r.I64("tree.node.left"));
    n.right = static_cast<int>(r.I64("tree.node.right"));
    n.depth = static_cast<int>(r.I64("tree.node.depth"));
    if (n.feature >= schema_.num_features ||
        n.left >= static_cast<int>(count) ||
        n.right >= static_cast<int>(count)) {
      r.Fail("tree.node.feature",
             "node " + std::to_string(idx) + " references feature " +
                 std::to_string(n.feature) + " / children " +
                 std::to_string(n.left) + "," + std::to_string(n.right) +
                 " out of range");
    }
    if (r.Bool("tree.node.has_leaf")) {
      n.leaf = std::make_unique<Leaf>();
      n.leaf->class_counts = r.F64Array("tree.leaf.class_counts");
      if (n.leaf->class_counts.size() !=
          static_cast<size_t>(schema_.num_classes)) {
        r.Fail("tree.leaf.class_counts", "size does not match schema");
      }
      uint32_t d = r.Count("tree.leaf.feature_stats");
      if (d != static_cast<uint32_t>(schema_.num_features)) {
        r.Fail("tree.leaf.feature_stats",
               std::to_string(d) + " feature rows, schema has " +
                   std::to_string(schema_.num_features));
      }
      n.leaf->feature_stats.clear();
      for (uint32_t i = 0; i < d; ++i) {
        uint32_t k = r.Count("tree.leaf.feature_stats.row");
        if (k != static_cast<uint32_t>(schema_.num_classes)) {
          r.Fail("tree.leaf.feature_stats.row",
                 "class column count does not match schema");
        }
        std::vector<Welford> per_class;
        per_class.reserve(k);
        for (uint32_t c = 0; c < k; ++c) per_class.push_back(io::ReadWelford(r));
        n.leaf->feature_stats.push_back(std::move(per_class));
      }
      if (r.Bool("tree.leaf.has_perceptron")) {
        n.leaf->perceptron =
            std::make_unique<SoftmaxPerceptron>(schema_, params_.leaf_params);
        n.leaf->perceptron->LoadState(r);
      }
      n.leaf->since_split_check =
          static_cast<int>(r.I64("tree.leaf.since_split_check"));
      n.leaf->total = r.F64("tree.leaf.total");
    }
    nodes_.push_back(std::move(n));
  }
  r.EndSection("CSPerceptronTree");
}

}  // namespace ccd
