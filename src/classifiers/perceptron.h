#ifndef CCD_CLASSIFIERS_PERCEPTRON_H_
#define CCD_CLASSIFIERS_PERCEPTRON_H_

#include <memory>
#include <vector>

#include "classifiers/classifier.h"

namespace ccd {

/// Online multi-class softmax (logistic) perceptron with optional
/// cost-sensitive updates.
///
/// Maintains one weight vector (+bias) per class trained by SGD on the
/// cross-entropy loss. When `cost_sensitive` is set, each update is scaled
/// by the inverse decayed frequency of the instance's class, which is the
/// standard cost-vector choice for skewed streams and the mechanism the
/// Adaptive Cost-Sensitive Perceptron Tree (Krawczyk & Skryjomski, ECML
/// PKDD 2017) applies at its leaves.
class SoftmaxPerceptron : public OnlineClassifier {
 public:
  struct Params {
    double learning_rate = 0.1;
    bool cost_sensitive = true;
    double count_decay = 0.9995;  ///< Class-frequency forgetting factor.
    double max_cost = 10.0;       ///< Clamp on the per-class cost weight.
  };

  explicit SoftmaxPerceptron(const StreamSchema& schema)
      : SoftmaxPerceptron(schema, Params()) {}
  SoftmaxPerceptron(const StreamSchema& schema, const Params& params);

  const StreamSchema& schema() const override { return schema_; }
  void Train(const Instance& instance) override;
  std::vector<double> PredictScores(const Instance& instance) const override;
  void PredictScoresInto(const Instance& instance,
                         std::vector<double>& out) const override;
  void Reset() override;
  std::unique_ptr<OnlineClassifier> Clone() const override;
  std::unique_ptr<OnlineClassifier> CloneState() const override {
    return std::make_unique<SoftmaxPerceptron>(*this);
  }
  std::string name() const override { return "SoftmaxPerceptron"; }
  void SaveState(io::Writer& writer) const override;
  void LoadState(io::Reader& reader) override;

  /// Cost weight currently applied to class k's updates.
  double CostWeight(int k) const;

 private:
  StreamSchema schema_;
  Params params_;
  /// weights_[k] has d+1 entries (bias last).
  std::vector<std::vector<double>> weights_;
  std::vector<double> class_counts_;
  double total_count_ = 0.0;
  // ccd:state-skip(train_probs_, transient per-update scratch rewritten by every Train call; holds no learned state)
  std::vector<double> train_probs_;
};

}  // namespace ccd

#endif  // CCD_CLASSIFIERS_PERCEPTRON_H_
