#ifndef CCD_CLASSIFIERS_CLASSIFIER_H_
#define CCD_CLASSIFIERS_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "stream/instance.h"

namespace ccd {
namespace io {
class Writer;
class Reader;
}  // namespace io

/// Interface of incremental (online) classifiers used as the drift
/// detectors' backbone. The prequential protocol is test-then-train:
/// PredictScores() is always called on an instance before Train() sees it.
class OnlineClassifier {
 public:
  virtual ~OnlineClassifier() = default;

  virtual const StreamSchema& schema() const = 0;

  /// Incorporates one labelled instance.
  virtual void Train(const Instance& instance) = 0;

  /// Per-class support scores; non-negative, summing to 1 (the multi-class
  /// AUC metric relies on score ordering).
  virtual std::vector<double> PredictScores(const Instance& instance) const = 0;

  /// Allocation-free form of PredictScores(): writes the scores into `out`,
  /// reusing its capacity. Bit-identical to PredictScores() — the batch /
  /// hot-path differential tests rely on that. The default copies through
  /// PredictScores(); the built-in classifiers override it to compute in
  /// place so a steady-state push performs no heap allocation.
  virtual void PredictScoresInto(const Instance& instance,
                                 std::vector<double>& out) const;

  /// Argmax of PredictScores.
  virtual int Predict(const Instance& instance) const;

  /// Forgets everything (used when a drift detector fires).
  virtual void Reset() = 0;

  /// Fresh, untrained classifier with identical configuration.
  virtual std::unique_ptr<OnlineClassifier> Clone() const = 0;

  /// Deep copy *including all learned state*: the copy's future
  /// Train/PredictScores behavior is bit-identical to this classifier's.
  /// This is the classifier half of the intra-stream shard handoff
  /// (eval/sharded.h) — block k+1's worker resumes from block k's clone.
  /// The default implementation throws std::logic_error; every classifier
  /// registered with the api layer implements it (the snapshot/restore
  /// property test loops over the registry to keep that true).
  virtual std::unique_ptr<OnlineClassifier> CloneState() const;

  /// Serializes *all* learned state (parameters, weights, counters, RNG
  /// cursors) to the versioned wire format — the durable sibling of
  /// CloneState(): LoadState() on a freshly registry-constructed instance
  /// of the same type must make its future behavior bit-identical to this
  /// classifier's, across processes and machines. The defaults throw
  /// std::logic_error naming the component; every registered classifier
  /// implements both (the io round-trip property test loops over the
  /// registry to keep that true).
  virtual void SaveState(io::Writer& writer) const;
  virtual void LoadState(io::Reader& reader);

  virtual std::string name() const = 0;
};

}  // namespace ccd

#endif  // CCD_CLASSIFIERS_CLASSIFIER_H_
