#ifndef CCD_CLASSIFIERS_CLASSIFIER_H_
#define CCD_CLASSIFIERS_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "stream/instance.h"

namespace ccd {

/// Interface of incremental (online) classifiers used as the drift
/// detectors' backbone. The prequential protocol is test-then-train:
/// PredictScores() is always called on an instance before Train() sees it.
class OnlineClassifier {
 public:
  virtual ~OnlineClassifier() = default;

  virtual const StreamSchema& schema() const = 0;

  /// Incorporates one labelled instance.
  virtual void Train(const Instance& instance) = 0;

  /// Per-class support scores; non-negative, summing to 1 (the multi-class
  /// AUC metric relies on score ordering).
  virtual std::vector<double> PredictScores(const Instance& instance) const = 0;

  /// Argmax of PredictScores.
  virtual int Predict(const Instance& instance) const;

  /// Forgets everything (used when a drift detector fires).
  virtual void Reset() = 0;

  /// Fresh, untrained classifier with identical configuration.
  virtual std::unique_ptr<OnlineClassifier> Clone() const = 0;

  /// Deep copy *including all learned state*: the copy's future
  /// Train/PredictScores behavior is bit-identical to this classifier's.
  /// This is the classifier half of the intra-stream shard handoff
  /// (eval/sharded.h) — block k+1's worker resumes from block k's clone.
  /// The default implementation throws std::logic_error; every classifier
  /// registered with the api layer implements it (the snapshot/restore
  /// property test loops over the registry to keep that true).
  virtual std::unique_ptr<OnlineClassifier> CloneState() const;

  virtual std::string name() const = 0;
};

}  // namespace ccd

#endif  // CCD_CLASSIFIERS_CLASSIFIER_H_
