#include "classifiers/perceptron.h"

#include <algorithm>
#include <cmath>

#include "io/codecs.h"

namespace ccd {

SoftmaxPerceptron::SoftmaxPerceptron(const StreamSchema& schema,
                                     const Params& params)
    : schema_(schema), params_(params) {
  Reset();
}

void SoftmaxPerceptron::Reset() {
  weights_.assign(static_cast<size_t>(schema_.num_classes),
                  std::vector<double>(
                      static_cast<size_t>(schema_.num_features) + 1, 0.0));
  class_counts_.assign(static_cast<size_t>(schema_.num_classes), 0.0);
  total_count_ = 0.0;
}

std::vector<double> SoftmaxPerceptron::PredictScores(
    const Instance& instance) const {
  std::vector<double> scores;
  PredictScoresInto(instance, scores);
  return scores;
}

void SoftmaxPerceptron::PredictScoresInto(const Instance& instance,
                                          std::vector<double>& out) const {
  const size_t k = weights_.size();
  out.assign(k, 0.0);
  std::vector<double>& logits = out;
  double max_logit = -1e300;
  for (size_t c = 0; c < k; ++c) {
    const auto& w = weights_[c];
    double z = w.back();
    size_t d = std::min(instance.features.size(), w.size() - 1);
    for (size_t i = 0; i < d; ++i) z += w[i] * instance.features[i];
    logits[c] = z;
    max_logit = std::max(max_logit, z);
  }
  double total = 0.0;
  for (double& z : logits) {
    z = std::exp(z - max_logit);
    total += z;
  }
  for (double& z : logits) z /= total;
}

double SoftmaxPerceptron::CostWeight(int k) const {
  if (!params_.cost_sensitive || total_count_ <= 0.0) return 1.0;
  double freq = class_counts_[static_cast<size_t>(k)] / total_count_;
  double uniform = 1.0 / static_cast<double>(schema_.num_classes);
  if (freq <= 0.0) return params_.max_cost;
  return std::clamp(uniform / freq, 1.0 / params_.max_cost, params_.max_cost);
}

void SoftmaxPerceptron::Train(const Instance& instance) {
  int y = instance.label;
  if (y < 0 || y >= schema_.num_classes) return;

  // Decayed class frequency bookkeeping.
  for (double& c : class_counts_) c *= params_.count_decay;
  total_count_ = total_count_ * params_.count_decay + 1.0;
  class_counts_[static_cast<size_t>(y)] += 1.0;

  PredictScoresInto(instance, train_probs_);
  const std::vector<double>& probs = train_probs_;
  double lr = params_.learning_rate * CostWeight(y) * instance.weight;
  for (size_t c = 0; c < weights_.size(); ++c) {
    double err = (static_cast<int>(c) == y ? 1.0 : 0.0) - probs[c];
    if (err == 0.0) continue;
    auto& w = weights_[c];
    double step = lr * err;
    size_t d = std::min(instance.features.size(), w.size() - 1);
    for (size_t i = 0; i < d; ++i) w[i] += step * instance.features[i];
    w.back() += step;
  }
}

std::unique_ptr<OnlineClassifier> SoftmaxPerceptron::Clone() const {
  return std::make_unique<SoftmaxPerceptron>(schema_, params_);
}

void SoftmaxPerceptron::SaveState(io::Writer& w) const {
  w.BeginSection("SoftmaxPerceptron");
  io::WriteSchema(w, schema_);
  w.F64(params_.learning_rate);
  w.Bool(params_.cost_sensitive);
  w.F64(params_.count_decay);
  w.F64(params_.max_cost);
  w.U32(static_cast<uint32_t>(weights_.size()));
  for (const std::vector<double>& row : weights_) w.F64Array(row);
  w.F64Array(class_counts_);
  w.F64(total_count_);
  w.EndSection();
}

void SoftmaxPerceptron::LoadState(io::Reader& r) {
  r.BeginSection("SoftmaxPerceptron");
  schema_ = io::ReadSchema(r);
  params_.learning_rate = r.F64("perceptron.learning_rate");
  params_.cost_sensitive = r.Bool("perceptron.cost_sensitive");
  params_.count_decay = r.F64("perceptron.count_decay");
  params_.max_cost = r.F64("perceptron.max_cost");
  uint32_t k = r.Count("perceptron.weights");
  if (k != static_cast<uint32_t>(schema_.num_classes)) {
    r.Fail("perceptron.weights", std::to_string(k) +
                                     " weight rows, schema has " +
                                     std::to_string(schema_.num_classes));
  }
  weights_.clear();
  size_t width = static_cast<size_t>(schema_.num_features) + 1;
  for (uint32_t c = 0; c < k; ++c) {
    std::vector<double> row = r.F64Array("perceptron.weights.row");
    if (row.size() != width) {
      r.Fail("perceptron.weights.row",
             "row has " + std::to_string(row.size()) + " entries, expected " +
                 std::to_string(width));
    }
    weights_.push_back(std::move(row));
  }
  class_counts_ = r.F64Array("perceptron.class_counts");
  if (class_counts_.size() != static_cast<size_t>(schema_.num_classes)) {
    r.Fail("perceptron.class_counts", "size does not match schema");
  }
  total_count_ = r.F64("perceptron.total_count");
  r.EndSection("SoftmaxPerceptron");
}

}  // namespace ccd
