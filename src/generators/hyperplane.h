#ifndef CCD_GENERATORS_HYPERPLANE_H_
#define CCD_GENERATORS_HYPERPLANE_H_

#include <memory>
#include <vector>

#include "generators/concept.h"

namespace ccd {

/// Multi-class rotating-hyperplane concept. Features are uniform on
/// [0,1]^d; the latent score s = w·x is banded into K classes by quantile
/// thresholds (estimated at construction by probing), so class regions are
/// parallel slabs. Drift rotates the hyperplane: interpolation of weights
/// produces genuine incremental drift; re-seeding produces a new orientation
/// for sudden/gradual drift. This generalizes MOA's binary Hyperplane
/// generator to the paper's K-class variants.
class HyperplaneConcept : public Concept {
 public:
  struct Options {
    int num_features = 10;
    int num_classes = 5;
    /// Standard deviation of zero-mean noise added to the score before
    /// banding (class overlap control).
    double score_noise = 0.02;
    /// Probe draws used to estimate quantile thresholds.
    int probe_samples = 4096;
  };

  HyperplaneConcept(const Options& options, uint64_t seed);

  const StreamSchema& schema() const override { return schema_; }
  Instance Sample(Rng* rng) const override;
  std::unique_ptr<Concept> Interpolate(const Concept& target,
                                       double alpha) const override;

  const std::vector<double>& weights() const { return w_; }

 private:
  HyperplaneConcept() = default;
  void ComputeThresholds(uint64_t probe_seed);
  int Classify(double score) const;

  StreamSchema schema_;
  Options opt_;
  std::vector<double> w_;
  std::vector<double> thresholds_;  ///< K-1 ascending cut points.
};

}  // namespace ccd

#endif  // CCD_GENERATORS_HYPERPLANE_H_
