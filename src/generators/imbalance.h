#ifndef CCD_GENERATORS_IMBALANCE_H_
#define CCD_GENERATORS_IMBALANCE_H_

#include <cstdint>
#include <vector>

namespace ccd {

/// Time-varying class prior schedule π(t) modelling the paper's three
/// imbalance difficulties:
///
///  * static skew           — a geometric "ladder" of priors whose
///                            largest/smallest ratio equals `base_ir`;
///  * dynamic imbalance     — the instantaneous imbalance ratio oscillates
///                            (triangular wave) between `ir_low` and
///                            `ir_high` with period `ir_period`;
///  * changing class roles  — every `role_switch_period` instances the
///                            prior ladder is rotated by one class (the
///                            majority becomes the smallest minority and
///                            every other class moves one rung up), with a
///                            linear cross-fade over `role_switch_width`.
///
/// All three compose; Scenario 1 uses dynamics only, Scenarios 2-3 add role
/// switching (Sec. IV of the paper).
class ImbalanceSchedule {
 public:
  struct Options {
    int num_classes = 2;
    double base_ir = 1.0;          ///< max/min prior ratio when static.
    bool dynamic = false;          ///< Oscillate IR over time.
    double ir_low = 1.0;
    double ir_high = 1.0;
    uint64_t ir_period = 100000;   ///< Full low->high->low cycle length.
    uint64_t role_switch_period = 0;  ///< 0 disables role switching.
    uint64_t role_switch_width = 1000;
  };

  explicit ImbalanceSchedule(const Options& options) : opt_(options) {}

  /// Uniform priors helper.
  static ImbalanceSchedule Uniform(int num_classes) {
    Options o;
    o.num_classes = num_classes;
    return ImbalanceSchedule(o);
  }

  /// Class priors at stream position `t`; always sums to 1.
  std::vector<double> PriorsAt(uint64_t t) const;

  /// Instantaneous imbalance ratio at `t` (max prior / min prior).
  double IrAt(uint64_t t) const;

  /// Index of the class occupying ladder rung `rung` (0 = majority) at
  /// time t, ignoring any cross-fade. Exposes the role assignment so tests
  /// and harnesses can identify the "smallest class" at a given moment.
  int ClassAtRung(uint64_t t, int rung) const;

  const Options& options() const { return opt_; }

 private:
  std::vector<double> LadderPriors(double ir) const;
  int RotationAt(uint64_t t) const;

  Options opt_;
};

}  // namespace ccd

#endif  // CCD_GENERATORS_IMBALANCE_H_
