#ifndef CCD_GENERATORS_AGRAWAL_H_
#define CCD_GENERATORS_AGRAWAL_H_

#include <memory>
#include <vector>

#include "generators/concept.h"

namespace ccd {

/// Multi-class Agrawal concept. The classic Agrawal generator draws nine
/// census-style attributes (salary, commission, age, education level, car,
/// zipcode, house value, years owned, loan) and labels instances with one
/// of ten hand-crafted predicate functions. The paper's Aggrawal5/10/20
/// streams are K-class, d-feature variants; following that construction we
/// (a) keep the nine classic attributes (min-max scaled to [0,1]), padded
/// with irrelevant uniform noise features up to `num_features`, and
/// (b) replace the binary predicate with the function's underlying
/// *continuous* decision quantity, banded into K classes by quantile
/// thresholds. Switching `function_id` redefines the class regions —
/// the classic Agrawal notion of drift.
class AgrawalConcept : public Concept {
 public:
  static constexpr int kNumFunctions = 10;
  static constexpr int kBaseAttributes = 9;

  struct Options {
    int num_features = 20;   ///< >= 9; extras are noise attributes.
    int num_classes = 5;
    int function_id = 0;     ///< Concept variant in [0, kNumFunctions).
    double attribute_noise = 0.0;  ///< Stddev of post-hoc feature jitter.
    int probe_samples = 4096;
  };

  AgrawalConcept(const Options& options, uint64_t seed);

  const StreamSchema& schema() const override { return schema_; }
  Instance Sample(Rng* rng) const override;

 private:
  struct Raw {
    double salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan;
  };

  static Raw DrawRaw(Rng* rng);
  /// Continuous decision quantity of classic function `id` (piecewise in
  /// age/elevel like the original predicates).
  static double Score(int id, const Raw& r);
  void ComputeThresholds(uint64_t probe_seed);
  int Classify(double score) const;

  StreamSchema schema_;
  Options opt_;
  std::vector<double> thresholds_;
};

}  // namespace ccd

#endif  // CCD_GENERATORS_AGRAWAL_H_
