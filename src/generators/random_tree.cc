#include "generators/random_tree.h"

#include <algorithm>

namespace ccd {

RandomTreeConcept::RandomTreeConcept(const Options& options, uint64_t seed)
    : schema_(options.num_features, options.num_classes, "random_tree"),
      opt_(options) {
  Rng rng(seed);
  // Grow until every class owns at least one leaf (rarely needs retries for
  // sensible depth settings).
  for (int attempt = 0; attempt < 64; ++attempt) {
    nodes_.clear();
    leaves_.clear();
    Grow(&rng, 0, std::vector<double>(schema_.num_features, 0.0),
         std::vector<double>(schema_.num_features, 1.0));

    // Assign labels: shuffle leaves, give the first K one of each class,
    // the rest random — guarantees full class coverage.
    std::vector<int> order(leaves_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    rng.Shuffle(&order);
    if (static_cast<int>(leaves_.size()) < opt_.num_classes) {
      opt_.min_depth += 1;
      opt_.max_depth = std::max(opt_.max_depth, opt_.min_depth + 2);
      continue;
    }
    for (size_t i = 0; i < order.size(); ++i) {
      int label = i < static_cast<size_t>(opt_.num_classes)
                      ? static_cast<int>(i)
                      : rng.UniformInt(0, opt_.num_classes - 1);
      leaves_[static_cast<size_t>(order[i])].label = label;
    }
    break;
  }
  for (Node& n : nodes_) {
    if (n.leaf_index >= 0) n.label = leaves_[static_cast<size_t>(n.leaf_index)].label;
  }
  leaves_by_class_.assign(static_cast<size_t>(opt_.num_classes), {});
  for (size_t i = 0; i < leaves_.size(); ++i) {
    leaves_by_class_[static_cast<size_t>(leaves_[i].label)].push_back(
        static_cast<int>(i));
  }
}

int RandomTreeConcept::Grow(Rng* rng, int depth, std::vector<double> lo,
                            std::vector<double> hi) {
  bool make_leaf = depth >= opt_.max_depth ||
                   (depth >= opt_.min_depth && rng->Bernoulli(opt_.leaf_prob));
  int idx = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  if (make_leaf) {
    Leaf leaf;
    leaf.lo = lo;
    leaf.hi = hi;
    leaf.volume = 1.0;
    for (size_t i = 0; i < lo.size(); ++i) leaf.volume *= (hi[i] - lo[i]);
    nodes_[static_cast<size_t>(idx)].leaf_index =
        static_cast<int>(leaves_.size());
    leaves_.push_back(std::move(leaf));
    return idx;
  }
  int f = rng->UniformInt(0, schema_.num_features - 1);
  double t = rng->Uniform(lo[static_cast<size_t>(f)] + 1e-6,
                          hi[static_cast<size_t>(f)] - 1e-6);
  nodes_[static_cast<size_t>(idx)].feature = f;
  nodes_[static_cast<size_t>(idx)].threshold = t;

  std::vector<double> lhi = hi;
  lhi[static_cast<size_t>(f)] = t;
  int left = Grow(rng, depth + 1, lo, lhi);
  std::vector<double> rlo = lo;
  rlo[static_cast<size_t>(f)] = t;
  int right = Grow(rng, depth + 1, rlo, hi);
  nodes_[static_cast<size_t>(idx)].left = left;
  nodes_[static_cast<size_t>(idx)].right = right;
  return idx;
}

Instance RandomTreeConcept::Sample(Rng* rng) const {
  std::vector<double> x(static_cast<size_t>(schema_.num_features));
  for (double& v : x) v = rng->NextDouble();
  int cur = 0;
  while (nodes_[static_cast<size_t>(cur)].feature >= 0) {
    const Node& n = nodes_[static_cast<size_t>(cur)];
    cur = x[static_cast<size_t>(n.feature)] < n.threshold ? n.left : n.right;
  }
  return Instance(std::move(x), nodes_[static_cast<size_t>(cur)].label);
}

std::vector<double> RandomTreeConcept::SampleForClass(int k, Rng* rng) const {
  const auto& leaves = leaves_by_class_[static_cast<size_t>(k)];
  if (leaves.empty()) return Concept::SampleForClass(k, rng);
  std::vector<double> weights(leaves.size());
  for (size_t i = 0; i < leaves.size(); ++i) {
    weights[i] = leaves_[static_cast<size_t>(leaves[i])].volume;
  }
  const Leaf& leaf =
      leaves_[static_cast<size_t>(leaves[static_cast<size_t>(
          rng->Discrete(weights))])];
  std::vector<double> x(leaf.lo.size());
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng->Uniform(leaf.lo[i], leaf.hi[i]);
  }
  return x;
}

}  // namespace ccd
