#ifndef CCD_GENERATORS_REGISTRY_H_
#define CCD_GENERATORS_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "generators/drifting_stream.h"

namespace ccd {

/// Static description of one benchmark stream (a row of the paper's
/// Table I).
struct StreamSpec {
  std::string name;
  uint64_t full_length = 0;  ///< Instances in the paper's version.
  int num_features = 0;
  int num_classes = 0;
  double imbalance_ratio = 1.0;  ///< Max class / min class ratio.
  DriftType drift_type = DriftType::kGradual;
  int drift_events = 3;       ///< 0 = stationary.
  bool real_world = false;    ///< True for the Tab. I real-world rows
                              ///< (simulated here — see DESIGN.md).
};

/// Knobs used by the experiment harnesses when instantiating a spec.
struct BuildOptions {
  uint64_t seed = 42;
  /// Stream length multiplier relative to the paper's size (floored at
  /// 4000 instances so tiny scales still contain every drift event).
  double scale = 1.0;
  /// Override the spec's imbalance ratio (Experiment 3); <0 keeps spec.
  double ir_override = -1.0;
  /// If >= 0, only the `local_drift_classes` smallest classes are affected
  /// by the drift events (Experiment 2); <0 keeps global drift.
  int local_drift_classes = -1;
  /// Enables class-role switching (Scenarios 2-3).
  bool role_switching = false;
  /// Overrides the number of drift events; <0 keeps spec.
  int events_override = -1;
  /// Label noise probability applied after generation.
  double label_noise = 0.0;
};

/// A ready-to-run stream plus its realized length.
struct BuiltStream {
  std::unique_ptr<DriftingClassStream> stream;
  uint64_t length = 0;
  StreamSpec spec;
};

/// All 24 Table I benchmarks: 12 real-world substitutes then 12 artificial.
const std::vector<StreamSpec>& AllStreamSpecs();

/// The 12 artificial benchmarks (Agrawal/Hyperplane/RBF/RandomTree x K).
std::vector<StreamSpec> ArtificialStreamSpecs();

/// Looks a spec up by name; returns nullptr when unknown.
const StreamSpec* FindStreamSpec(const std::string& name);

/// Instantiates a benchmark stream. The same (spec, options) pair always
/// produces an identical instance sequence.
BuiltStream BuildStream(const StreamSpec& spec, const BuildOptions& options);

}  // namespace ccd

#endif  // CCD_GENERATORS_REGISTRY_H_
