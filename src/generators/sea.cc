#include "generators/sea.h"

#include <algorithm>

namespace ccd {

SeaConcept::SeaConcept(const Options& options, uint64_t seed)
    : schema_(std::max(options.num_features, 2), options.num_classes, "sea"),
      opt_(options) {
  opt_.num_features = schema_.num_features;
  int d = opt_.num_features;
  f1_ = opt_.variant % d;
  f2_ = (opt_.variant + 1) % d;
  if (f2_ == f1_) f2_ = (f1_ + 1) % d;

  Rng rng(seed ^ 0x165667b19e3779f9ULL);
  std::vector<double> scores(static_cast<size_t>(opt_.probe_samples));
  for (double& s : scores) {
    s = rng.NextDouble() + rng.NextDouble() +
        rng.Gaussian(0.0, opt_.score_noise);
  }
  std::sort(scores.begin(), scores.end());
  thresholds_.clear();
  for (int k = 1; k < opt_.num_classes; ++k) {
    size_t idx = static_cast<size_t>(
        static_cast<double>(k) / opt_.num_classes * scores.size());
    if (idx >= scores.size()) idx = scores.size() - 1;
    thresholds_.push_back(scores[idx]);
  }
}

int SeaConcept::Classify(double score) const {
  int k = 0;
  while (k < static_cast<int>(thresholds_.size()) &&
         score >= thresholds_[static_cast<size_t>(k)]) {
    ++k;
  }
  return k;
}

Instance SeaConcept::Sample(Rng* rng) const {
  std::vector<double> x(static_cast<size_t>(opt_.num_features));
  for (double& v : x) v = rng->NextDouble();
  double score = x[static_cast<size_t>(f1_)] + x[static_cast<size_t>(f2_)] +
                 rng->Gaussian(0.0, opt_.score_noise);
  return Instance(std::move(x), Classify(score));
}

}  // namespace ccd
